// E11 — flight-recorder overhead and bounds (DESIGN.md §16).
//
// The journal's contract has three measurable clauses:
//   1. *Passive*: enabling it must not perturb the simulation — every
//      virtual-time result (makespan, wire bytes, drop pattern) is
//      bit-for-bit identical with the journal on or off.  Hard-asserted
//      here (exit 1 on violation).
//   2. *Bounded*: the ring never exceeds its configured capacity no
//      matter how many events a run produces; overflow shows up as
//      `overwritten`, not as memory growth.  Hard-asserted.
//   3. *Cheap*: recording costs host time only when enabled, and the
//      disabled path is a predicted branch.  Host-time overhead of the
//      enabled journal is reported (and warned about above 2%) but not
//      asserted — wall clocks on shared CI are advisory, virtual time is
//      the contract.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"

namespace {

using namespace rafda;
using vm::Value;

constexpr int kClients = 4;
constexpr int kCallsPerClient = 64;
constexpr std::size_t kSmallRing = 256;

struct RunResult {
    std::uint64_t makespan_us = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t journal_total = 0;
    std::uint64_t journal_size = 0;
    std::uint64_t journal_overwritten = 0;
    double host_seconds = 0.0;
};

/// E9's workload shape (clients 1..N vs server 0 over RMI) with ~5% loss
/// and retries, so the journal sees sends, drops, retries and fault
/// edges, not just the happy path.
RunResult run_workload(bool journal_on, std::size_t capacity = 0) {
    model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
    runtime::SystemOptions options;
    options.network_seed = 7;
    options.reliability.attempts = 8;
    options.reliability.dedup = true;
    runtime::System system(pool, options);
    system.add_node();  // 0: server
    for (int k = 0; k < kClients; ++k) system.add_node();
    system.policy().set_instance_home("Service", 0, "RMI");
    for (int k = 1; k <= kClients; ++k) {
        net::FaultWindow w;
        w.kind = net::FaultKind::DropRate;
        w.src = static_cast<net::NodeId>(k);
        w.dst = 0;
        w.from_us = 0;
        w.until_us = ~0ULL;
        w.drop_probability = 0.05;
        system.network().fault_plan().add(w);
    }
    if (capacity) system.journal().set_capacity(capacity);
    if (journal_on) system.journal().set_enabled(true);

    runtime::WorkloadDriver driver(system);
    for (int k = 1; k <= kClients; ++k) {
        const auto client = static_cast<net::NodeId>(k);
        Value svc = system.construct(client, "Service", "()V");
        driver.add_client(client, kCallsPerClient,
                          [svc](runtime::System& sys, net::NodeId node) {
                              sys.node(node).interp().call_virtual(
                                  svc, "work", "(J)J", {Value::of_long(1)});
                          });
    }
    const auto t0 = std::chrono::steady_clock::now();
    runtime::WorkloadDriver::Report report = driver.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.makespan_us = report.makespan_us;
    const net::LinkStats total = system.network().total_stats();
    r.wire_bytes = total.bytes;
    r.journal_total = system.journal().total_recorded();
    r.journal_size = system.journal().size();
    r.journal_overwritten = system.journal().overwritten();
    r.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

void BM_JournalOff(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(false);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
}
BENCHMARK(BM_JournalOff);

void BM_JournalOn(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(true);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["events"] = static_cast<double>(r.journal_total);
}
BENCHMARK(BM_JournalOn);

int emit_summary() {
    // Virtual-time identity: journal on vs off, same seed.
    const RunResult off = run_workload(false);
    const RunResult on = run_workload(true);
    const bool identical =
        off.makespan_us == on.makespan_us && off.wire_bytes == on.wire_bytes;

    // Bounded memory: a ring far smaller than the event count must cap at
    // its capacity and account for the overflow exactly.
    const RunResult small = run_workload(true, kSmallRing);
    const bool bounded =
        small.journal_size <= kSmallRing &&
        small.journal_total == small.journal_size + small.journal_overwritten &&
        small.journal_total > kSmallRing;  // the workload really did overflow

    // Host-time overhead, best-of-N to shave scheduler noise (advisory).
    double best_off = off.host_seconds, best_on = on.host_seconds;
    for (int k = 0; k < 4; ++k) {
        best_off = std::min(best_off, run_workload(false).host_seconds);
        best_on = std::min(best_on, run_workload(true).host_seconds);
    }
    const double overhead_pct =
        best_off > 0 ? 100.0 * (best_on - best_off) / best_off : 0.0;

    bench::JsonSummary("E11")
        .add("clients", std::uint64_t{kClients})
        .add("calls_per_client", std::uint64_t{kCallsPerClient})
        .add("makespan_us", on.makespan_us)
        .add("journal_events", on.journal_total)
        .add("virtual_time_identical", std::uint64_t{identical})
        .add("ring_capacity", std::uint64_t{kSmallRing})
        .add("ring_size", small.journal_size)
        .add("ring_overwritten", small.journal_overwritten)
        .add("ring_bounded", std::uint64_t{bounded})
        .add("host_overhead_pct", overhead_pct)
        .emit();

    if (!identical) {
        std::fprintf(stderr,
                     "E11 FAIL: enabling the journal changed virtual-time results "
                     "(makespan %llu vs %llu, bytes %llu vs %llu)\n",
                     static_cast<unsigned long long>(off.makespan_us),
                     static_cast<unsigned long long>(on.makespan_us),
                     static_cast<unsigned long long>(off.wire_bytes),
                     static_cast<unsigned long long>(on.wire_bytes));
        return 1;
    }
    if (!bounded) {
        std::fprintf(stderr,
                     "E11 FAIL: ring bound violated (capacity %zu, size %llu, "
                     "total %llu, overwritten %llu)\n",
                     kSmallRing, static_cast<unsigned long long>(small.journal_size),
                     static_cast<unsigned long long>(small.journal_total),
                     static_cast<unsigned long long>(small.journal_overwritten));
        return 1;
    }
    if (overhead_pct > 2.0)
        std::fprintf(stderr,
                     "E11 WARN: enabled-journal host overhead %.2f%% > 2%% "
                     "(advisory; wall clocks are noisy)\n",
                     overhead_pct);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E11: flight-recorder overhead and bounds ===\n");
    std::printf(
        "expected shape: identical virtual-time results with the journal on or off\n"
        "(it never reads clocks or draws randomness); a small ring caps at its\n"
        "capacity with the overflow counted as overwritten; enabled-journal host\n"
        "overhead is small (reported, warned above 2%%).\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return emit_summary();
}
