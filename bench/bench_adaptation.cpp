// E6 — dynamic boundary adaptation under a changing environment (Sec 1:
// "the resulting distributed program can adapt to its environment by
// dynamically altering its distribution boundaries"; Sec 4 future work).
//
// A Worker chats with a Source whose node changes over time (the
// environment).  Three strategies over identical workloads:
//
//   pinned-0   — worker stays on node 0 (never adapts)
//   pinned-1   — worker stays on node 1
//   adaptive   — a greedy controller migrates the worker next to the
//                source whenever a phase cost exceeds the previous one
//
// The table prints per-phase virtual time per strategy; adaptive should
// track the cheaper placement after each environment change, at the price
// of one migration per change.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "runtime/adapter.hpp"
#include "runtime/system.hpp"
#include "vm/interp.hpp"

namespace {

using namespace rafda;
using vm::Value;

constexpr const char* kApp = R"RIR(
class Source {
  field reading I
  ctor ()V {
    return
  }
  method sample ()I {
    load 0
    load 0
    getfield Source.reading I
    const 3
    add
    putfield Source.reading I
    load 0
    getfield Source.reading I
    returnvalue
  }
}
class Worker {
  field src LSource;
  field total J
  ctor (LSource;)V {
    load 0
    load 1
    putfield Worker.src LSource;
    return
  }
  method process ()J {
    locals 2
    const 0
    store 1
  Top:
    load 1
    const 6
    cmpge
    iftrue Done
    load 0
    load 0
    getfield Worker.total J
    load 0
    getfield Worker.src LSource;
    invokevirtual Source.sample ()I
    conv J
    add
    putfield Worker.total J
    load 1
    const 1
    add
    store 1
    goto Top
  Done:
    load 0
    getfield Worker.total J
    returnvalue
  }
}
)RIR";

struct RunResult {
    std::vector<std::uint64_t> phase_us;
    std::uint64_t total_us = 0;
    std::uint64_t migrations = 0;
    std::int64_t outcome = 0;
};

constexpr int kPhases = 8;
constexpr int kCallsPerPhase = 12;

/// strategy: -1 = adaptive, otherwise the node the worker is pinned to.
RunResult run(int strategy) {
    model::ClassPool pool = bench::assemble_app(kApp);
    runtime::System system(pool);
    system.add_node();
    system.add_node();

    Value src = system.construct(0, "Source", "()V");
    Value worker = system.construct(0, "Worker", "(LSource;)V", {src});
    net::NodeId src_node = 0, worker_node = 0;
    vm::ObjId src_oid = src.as_ref(), worker_oid = worker.as_ref();

    if (strategy == 1) {
        worker_oid = system.migrate_instance(0, worker_oid, 1, "RMI");
        worker_node = 1;
    }

    // The adaptive strategy is the library's GreedyAdapter: the harness only
    // reports phase costs and declares the affinity target.
    std::unique_ptr<runtime::GreedyAdapter> adapter;
    if (strategy < 0)
        adapter = std::make_unique<runtime::GreedyAdapter>(system, worker_node, worker_oid, "RMI");

    RunResult result;
    for (int phase = 0; phase < kPhases; ++phase) {
        net::NodeId want = (phase / 2) % 2 == 0 ? 1 : 0;  // environment change
        if (want != src_node) {
            src_oid = system.migrate_instance(src_node, src_oid, want, "RMI");
            src_node = want;
        }
        std::uint64_t migrations_before = system.migrations();

        std::uint64_t start = system.network().now_us();
        for (int k = 0; k < kCallsPerPhase; ++k)
            result.outcome =
                system.node(0).interp().call_virtual(worker, "process", "()J").as_long();
        std::uint64_t cost = system.network().now_us() - start;
        result.phase_us.push_back(cost);
        result.total_us += cost;

        if (adapter) {
            adapter->set_affinity(src_node);
            adapter->report_phase_cost(cost);
        }
        result.migrations += system.migrations() - migrations_before;
    }
    (void)worker_oid;
    return result;
}

void print_series() {
    RunResult pinned0 = run(0);
    RunResult pinned1 = run(1);
    RunResult adaptive = run(-1);

    std::printf("per-phase virtual time (us); source hops nodes every 2 phases\n\n");
    std::printf("%-10s", "phase");
    for (int p = 0; p < kPhases; ++p) std::printf("%9d", p);
    std::printf("%12s\n", "total");
    auto row = [&](const char* name, const RunResult& r) {
        std::printf("%-10s", name);
        for (std::uint64_t us : r.phase_us) std::printf("%9llu",
                                                        static_cast<unsigned long long>(us));
        std::printf("%12llu\n", static_cast<unsigned long long>(r.total_us));
    };
    row("pinned-0", pinned0);
    row("pinned-1", pinned1);
    row("adaptive", adaptive);
    std::printf("\nadaptive used %llu worker migrations; identical results: %s\n\n",
                static_cast<unsigned long long>(adaptive.migrations),
                (pinned0.outcome == adaptive.outcome && pinned1.outcome == adaptive.outcome)
                    ? "yes"
                    : "NO");
}

void BM_PinnedWorstCase(benchmark::State& state) {
    for (auto _ : state) benchmark::DoNotOptimize(run(0).total_us);
}
BENCHMARK(BM_PinnedWorstCase);

void BM_Adaptive(benchmark::State& state) {
    std::uint64_t virt = 0;
    for (auto _ : state) {
        RunResult r = run(-1);
        virt = r.total_us;
        benchmark::DoNotOptimize(virt);
    }
    state.counters["virtual_total_us"] = static_cast<double>(virt);
}
BENCHMARK(BM_Adaptive);

void emit_summary() {
    RunResult pinned0 = run(0);
    RunResult pinned1 = run(1);
    RunResult adaptive = run(-1);
    bench::JsonSummary("E6")
        .add("pinned0_total_us", pinned0.total_us)
        .add("pinned1_total_us", pinned1.total_us)
        .add("adaptive_total_us", adaptive.total_us)
        .add("adaptive_migrations", adaptive.migrations)
        .add("identical_results",
             std::string(pinned0.outcome == adaptive.outcome &&
                                 pinned1.outcome == adaptive.outcome
                             ? "yes"
                             : "no"))
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E6: adapting distribution boundaries to the environment ===\n");
    std::printf(
        "expected shape: adaptive tracks the cheaper placement within one phase\n"
        "of each environment change; pinned placements pay full remote chatter\n"
        "half the time.\n\n");
    print_series();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
