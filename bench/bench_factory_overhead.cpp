// E7 — factory path cost (Sec 2.3).
//
// Object creation: direct `new A(...)` in the original program vs the
// transformed `A_O_Factory.make()` + `init(...)` pair.
// Static access: direct getstatic/invokestatic vs the
// `A_C_Factory.discover()` + interface-call path.
//
// Expected shape: small constant factors — the factory seam is a few extra
// dispatches per creation/access, not an asymptotic change.  (This is the
// price the paper pays for making every implementation choice late-bound.)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/interp.hpp"

namespace {

using namespace rafda;
using vm::Value;

void BM_DirectNew(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kAllocApp);
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            interp.call_static("Alloc", "burst", "(I)I", {Value::of_int(100)}));
    state.counters["allocs"] = static_cast<double>(interp.counters().allocations) /
                               static_cast<double>(state.iterations());
}
BENCHMARK(BM_DirectNew);

void BM_FactoryMakeInit(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kAllocApp);
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    for (auto _ : state)
        benchmark::DoNotOptimize(transform::call_transformed_static(
            interp, pool, result.report, "Alloc", "burst", "(I)I", {Value::of_int(100)}));
    state.counters["allocs"] = static_cast<double>(interp.counters().allocations) /
                               static_cast<double>(state.iterations());
}
BENCHMARK(BM_FactoryMakeInit);

constexpr const char* kStaticApp = R"RIR(
class Store {
  static field v J
  static method spin (I)J {
    locals 2
  Top:
    load 0
    const 0
    cmple
    iftrue Done
    getstatic Store.v J
    const 1L
    add
    putstatic Store.v J
    load 0
    const 1
    sub
    store 0
    goto Top
  Done:
    getstatic Store.v J
    returnvalue
  }
}
)RIR";

void BM_DirectStatics(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(kStaticApp);
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            interp.call_static("Store", "spin", "(I)J", {Value::of_int(200)}));
}
BENCHMARK(BM_DirectStatics);

void BM_DiscoverStatics(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(kStaticApp);
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    for (auto _ : state)
        benchmark::DoNotOptimize(transform::call_transformed_static(
            interp, pool, result.report, "Store", "spin", "(I)J", {Value::of_int(200)}));
}
BENCHMARK(BM_DiscoverStatics);

// discover() itself: first call runs clinit, later calls are cached —
// measure the steady-state lookup.
void BM_DiscoverLookup(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(kStaticApp);
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    interp.call_static("Store_C_Factory", "discover", "()LStore_C_Int;");
    for (auto _ : state)
        benchmark::DoNotOptimize(
            interp.call_static("Store_C_Factory", "discover", "()LStore_C_Int;"));
}
BENCHMARK(BM_DiscoverLookup);

/// Instruction counts for one burst(100) per creation path — exact, so
/// the seam's constant factor is pinned by a number, not a timing.
void emit_summary() {
    model::ClassPool pool = bench::assemble_app(bench::kAllocApp);
    vm::Interpreter direct(pool);
    vm::bind_prelude_natives(direct);
    direct.call_static("Alloc", "burst", "(I)I", {Value::of_int(100)});

    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter seamed(result.pool);
    vm::bind_prelude_natives(seamed);
    transform::bind_local_factories(seamed, result.report);
    transform::call_transformed_static(seamed, pool, result.report, "Alloc", "burst",
                                       "(I)I", {Value::of_int(100)});

    bench::JsonSummary("E7")
        .add("direct_instructions", direct.counters().instructions)
        .add("factory_instructions", seamed.counters().instructions)
        .add("direct_allocations", direct.counters().allocations)
        .add("factory_allocations", seamed.counters().allocations)
        .add("instruction_factor",
             static_cast<double>(seamed.counters().instructions) /
                 static_cast<double>(direct.counters().instructions))
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E7: factory seams — make/init vs new, discover vs getstatic ===\n");
    std::printf("expected shape: constant-factor overhead (a few extra dispatches).\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
