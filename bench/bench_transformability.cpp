// E3 — Section 2.4: "About 40% of the 8,200 classes and interfaces in JDK
// 1.4.1 cannot be transformed.  This percentage would increase if the user
// code contains native methods which refer to a JDK class."
//
// Regenerates that measurement on the synthetic JDK-like corpus: the
// headline row at calibrated defaults, a reason breakdown, and the native-
// density sweep backing the paper's "would increase" remark.  The timed
// benchmark measures the analysis itself (closure over 8,200 types).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "corpus/jdk_corpus.hpp"
#include "support/thread_pool.hpp"
#include "transform/analysis.hpp"
#include "transform/pipeline.hpp"

namespace {

using namespace rafda;

void print_experiment_tables() {
    std::printf("=== E3: transformability of a JDK-1.4.1-like corpus ===\n");
    std::printf("(paper: ~40%% of 8,200 classes and interfaces non-transformable)\n\n");

    corpus::JdkCorpusParams params;  // calibrated defaults
    model::ClassPool pool = corpus::generate_jdk_corpus(params);
    transform::Analysis analysis = transform::analyze(pool);

    std::printf("%-34s %8s %8s %7s\n", "corpus", "types", "non-tr.", "%");
    std::printf("%-34s %8zu %8zu %6.1f%%\n", "jdk-like (calibrated defaults)",
                analysis.total(), analysis.non_transformable_count(),
                100.0 * analysis.non_transformable_fraction());

    std::printf("\nreason breakdown (Sec 2.4 rules):\n");
    for (const auto& [reason, count] : analysis.reason_histogram())
        std::printf("  %-34s %8zu\n", std::string(transform::reason_name(reason)).c_str(),
                    count);

    std::printf("\nnative-density sweep (the paper's 'would increase' remark):\n");
    std::printf("%-14s %-14s %7s\n", "p(native|low)", "p(native|rest)", "non-tr.");
    for (double lo : {0.15, 0.25, 0.35, 0.45, 0.60}) {
        corpus::JdkCorpusParams p;
        p.native_in_lowlevel = lo;
        p.native_elsewhere = lo / 40.0;
        transform::Analysis a = transform::analyze(corpus::generate_jdk_corpus(p));
        std::printf("%-14.2f %-14.4f %6.1f%%\n", lo, lo / 40.0,
                    100.0 * a.non_transformable_fraction());
    }

    std::printf("\nseed stability (5 corpus seeds at defaults):\n  ");
    for (std::uint64_t seed = 41; seed < 46; ++seed) {
        corpus::JdkCorpusParams p;
        p.seed = seed;
        transform::Analysis a = transform::analyze(corpus::generate_jdk_corpus(p));
        std::printf("%.1f%%  ", 100.0 * a.non_transformable_fraction());
    }
    std::printf("\n\n");
}

void BM_AnalyzeJdkCorpus(benchmark::State& state) {
    corpus::JdkCorpusParams params;
    params.total_types = static_cast<std::size_t>(state.range(0));
    model::ClassPool pool = corpus::generate_jdk_corpus(params);
    std::size_t nt = 0;
    for (auto _ : state) {
        transform::Analysis a = transform::analyze(pool);
        nt = a.non_transformable_count();
        benchmark::DoNotOptimize(nt);
    }
    state.counters["types"] = static_cast<double>(params.total_types);
    state.counters["non_transformable"] = static_cast<double>(nt);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(params.total_types));
}
BENCHMARK(BM_AnalyzeJdkCorpus)->Arg(1000)->Arg(4000)->Arg(8200);

void BM_GenerateJdkCorpus(benchmark::State& state) {
    corpus::JdkCorpusParams params;
    params.total_types = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        model::ClassPool pool = corpus::generate_jdk_corpus(params);
        benchmark::DoNotOptimize(pool.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(params.total_types));
}
BENCHMARK(BM_GenerateJdkCorpus)->Arg(8200);

void emit_summary() {
    corpus::JdkCorpusParams params;
    model::ClassPool pool = corpus::generate_jdk_corpus(params);

    auto time_analyze = [&](support::ThreadPool* workers) {
        auto t0 = std::chrono::steady_clock::now();
        transform::Analysis a = transform::analyze(pool, workers);
        auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(a.non_transformable_count());
        return std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
    };
    // Warm once (fills the per-class reference caches), then time the
    // serial and pooled walks over the same corpus.
    (void)time_analyze(nullptr);
    std::int64_t serial_us = time_analyze(nullptr);
    const std::size_t nthreads = transform::resolve_transform_threads(0);
    support::ThreadPool workers(nthreads);
    std::int64_t pooled_us = time_analyze(&workers);

    transform::Analysis analysis = transform::analyze(pool);
    bench::JsonSummary("E3")
        .add("types", static_cast<std::uint64_t>(analysis.total()))
        .add("non_transformable",
             static_cast<std::uint64_t>(analysis.non_transformable_count()))
        .add("non_transformable_fraction", analysis.non_transformable_fraction())
        .add("analyze_us_serial", static_cast<std::uint64_t>(serial_us))
        .add("analyze_us_pooled", static_cast<std::uint64_t>(pooled_us))
        .add("analyze_threads", static_cast<std::uint64_t>(nthreads))
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    print_experiment_tables();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
