// E2 — Figure 1 as a measurement: what does moving a shared object cost,
// and what do calls cost before/after?
//
// Reported:
//   * migration wall time and wire bytes as the object's state grows
//     (string blob sweep);
//   * per-call virtual time before migration (local), after migration
//     (remote), and after migrating back (chained through two proxies) —
//     making the forwarding-chain cost visible.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "runtime/system.hpp"
#include "vm/interp.hpp"

namespace {

using namespace rafda;
using vm::Value;

void BM_MigrationCost(benchmark::State& state) {
    const std::size_t blob_size = static_cast<std::size_t>(state.range(0));
    double bytes = 0;
    std::uint64_t count = 0;
    for (auto _ : state) {
        state.PauseTiming();
        model::ClassPool pool = bench::assemble_app(bench::kFig1App);
        runtime::System system(pool);
        system.add_node();
        system.add_node();
        Value c = system.construct(0, "C", "()V");
        system.node(0).interp().call_virtual(
            c, "setBlob", "(S)V", {Value::of_str(std::string(blob_size, 'b'))});
        std::uint64_t wire0 = system.network().total_stats().bytes;
        state.ResumeTiming();

        benchmark::DoNotOptimize(system.migrate_instance(0, c.as_ref(), 1, "RMI"));

        state.PauseTiming();
        bytes += static_cast<double>(system.network().total_stats().bytes - wire0);
        ++count;
        state.ResumeTiming();
    }
    state.counters["wire_bytes_per_migration"] = bytes / static_cast<double>(count);
    state.counters["state_bytes"] = static_cast<double>(blob_size);
}
BENCHMARK(BM_MigrationCost)->Arg(0)->Arg(512)->Arg(8192)->Arg(65536);

/// Per-call virtual time at each stage of the Figure 1 lifecycle.
void print_lifecycle_table() {
    model::ClassPool pool = bench::assemble_app(bench::kFig1App);
    runtime::System system(pool);
    system.add_node();
    system.add_node();
    Value c = system.construct(0, "C", "()V");
    Value a = system.construct(0, "A", "(LC;)V", {c});
    vm::Interpreter& n0 = system.node(0).interp();

    auto per_call_us = [&](int calls) {
        std::uint64_t t0 = system.network().now_us();
        for (int k = 0; k < calls; ++k) n0.call_virtual(a, "act", "()I");
        return static_cast<double>(system.network().now_us() - t0) / calls;
    };

    std::printf("%-44s %14s\n", "stage (100 act() calls each)", "virt us/call");
    std::printf("%-44s %14.1f\n", "1. C local on node 0", per_call_us(100));
    vm::ObjId on1 = system.migrate_instance(0, c.as_ref(), 1, "RMI");
    std::printf("%-44s %14.1f\n", "2. C migrated to node 1 (Figure 1)", per_call_us(100));
    vm::ObjId on0 = system.migrate_instance(1, on1, 0, "RMI");
    std::printf("%-44s %14.1f\n", "3. C migrated back (2-proxy chain)", per_call_us(100));
    // Ablation: collapsing the forwarding chain restores locality — the
    // slot A references on node 0 re-points at the terminal local object.
    system.shorten_chain(0, c.as_ref());
    (void)on0;
    std::printf("%-44s %14.1f\n", "4. after shorten_chain (local loopback)",
                per_call_us(100));
    std::printf("\n");
}

/// Ablation: single-object vs closure migration for a chatty cluster
/// (engine + collaborator): remote calls per query afterwards.
void print_closure_table() {
    constexpr const char* kCluster = R"RIR(
class Eng {
  field buf LBuf;
  ctor ()V {
    load 0
    new Buf
    dup
    invokespecial Buf.<init> ()V
    putfield Eng.buf LBuf;
    return
  }
  method query (I)I {
    locals 2
    const 0
    store 2
  Top:
    load 2
    const 4
    cmpge
    iftrue Done
    load 0
    getfield Eng.buf LBuf;
    load 1
    invokevirtual Buf.touch (I)I
    pop
    load 2
    const 1
    add
    store 2
    goto Top
  Done:
    load 1
    returnvalue
  }
}
class Buf {
  field n I
  ctor ()V {
    return
  }
  method touch (I)I {
    load 0
    load 0
    getfield Buf.n I
    load 1
    add
    putfield Buf.n I
    load 0
    getfield Buf.n I
    returnvalue
  }
}
)RIR";
    auto run = [&](bool closure) {
        model::ClassPool pool = bench::assemble_app(kCluster);
        runtime::System system(pool);
        system.add_node();
        system.add_node();
        Value eng = system.construct(0, "Eng", "()V");
        if (closure) system.migrate_closure(0, eng.as_ref(), 1, "RMI");
        else system.migrate_instance(0, eng.as_ref(), 1, "RMI");
        system.reset_stats();
        system.node(0).interp().call_virtual(eng, "query", "(I)I", {Value::of_int(1)});
        return system.remote_stats().at("RMI").calls;
    };
    std::printf("%-46s %12s\n", "migrating a chatty 2-object cluster", "calls/query");
    std::printf("%-46s %12llu\n", "migrate_instance (engine only)",
                static_cast<unsigned long long>(run(false)));
    std::printf("%-46s %12llu\n", "migrate_closure (engine + buffer)",
                static_cast<unsigned long long>(run(true)));
    std::printf("\n");
}

void BM_CallAfterMigration(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kFig1App);
    runtime::System system(pool);
    system.add_node();
    system.add_node();
    Value c = system.construct(0, "C", "()V");
    Value a = system.construct(0, "A", "(LC;)V", {c});
    system.migrate_instance(0, c.as_ref(), 1, "RMI");
    vm::Interpreter& n0 = system.node(0).interp();
    for (auto _ : state)
        benchmark::DoNotOptimize(n0.call_virtual(a, "act", "()I"));
}
BENCHMARK(BM_CallAfterMigration);

void BM_CallBeforeMigration(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kFig1App);
    runtime::System system(pool);
    system.add_node();
    system.add_node();
    Value c = system.construct(0, "C", "()V");
    Value a = system.construct(0, "A", "(LC;)V", {c});
    vm::Interpreter& n0 = system.node(0).interp();
    for (auto _ : state)
        benchmark::DoNotOptimize(n0.call_virtual(a, "act", "()I"));
}
BENCHMARK(BM_CallBeforeMigration);

/// Deterministic record of the Figure 1 lifecycle, measured through the
/// metrics registry's snapshot/diff window around the first migration.
void emit_summary() {
    model::ClassPool pool = bench::assemble_app(bench::kFig1App);
    runtime::System system(pool);
    system.add_node();
    system.add_node();
    Value c = system.construct(0, "C", "()V");
    Value a = system.construct(0, "A", "(LC;)V", {c});
    vm::Interpreter& n0 = system.node(0).interp();
    auto per_call_us = [&](int calls) {
        std::uint64_t t0 = system.network().now_us();
        for (int k = 0; k < calls; ++k) n0.call_virtual(a, "act", "()I");
        return static_cast<double>(system.network().now_us() - t0) / calls;
    };

    const double local_us = per_call_us(100);
    obs::Snapshot before = system.metrics().snapshot();
    vm::ObjId on1 = system.migrate_instance(0, c.as_ref(), 1, "RMI");
    const double remote_us = per_call_us(100);
    obs::Snapshot window = obs::diff(before, system.metrics().snapshot());
    system.migrate_instance(1, on1, 0, "RMI");
    const double chained_us = per_call_us(100);
    const int hops = system.shorten_chain(0, c.as_ref());
    const double shortened_us = per_call_us(100);

    bench::JsonSummary("E2")
        .add("local_us_per_call", local_us)
        .add("remote_us_per_call", remote_us)
        .add("chained_us_per_call", chained_us)
        .add("shortened_us_per_call", shortened_us)
        .add("chain_hops_removed", static_cast<std::uint64_t>(hops))
        .add("remote_calls_after_migration",
             window.counter_value("rpc.proto.RMI.calls"))
        .add("migration_bytes", window.counter_value("runtime.migration_bytes"))
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E2: Figure 1 redistribution — migration and call costs ===\n");
    std::printf(
        "expected shape: migration wire bytes grow linearly with object state;\n"
        "remote calls pay ~2x link latency; a 2-proxy chain pays ~2x a single\n"
        "hop.\n\n");
    print_lifecycle_table();
    print_closure_table();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
