// E4 — Related Work (Sec 3): the wrapper alternative "introduces
// significantly greater overhead" than the paper's direct code
// transformation.
//
// Three executions of identical guest workloads: the untransformed
// original, the RAFDA-transformed program (local binding) and the
// wrapper-generated program.  Reported per variant: wall time plus the
// VM's dispatch/work counters (which are noise-free).  Expected shape:
// original < transformed < wrapper, with the wrapper clearly separated
// (extra forwarding call per method call, extra hop per field access, and
// 2x allocation).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "corpus/program_gen.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/interp.hpp"
#include "wrapper/wrapper_pipeline.hpp"

namespace {

using namespace rafda;

corpus::ProgramParams workload_params() {
    corpus::ProgramParams p;
    p.classes = 8;
    p.iterations = 60;
    p.seed = 9;
    return p;
}

void run_main(vm::Interpreter& interp) {
    interp.clear_output();
    interp.call_static(corpus::kProgramMain, "main", "()V");
}

void BM_Original(benchmark::State& state) {
    model::ClassPool pool = corpus::generate_program(workload_params());
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    for (auto _ : state) run_main(interp);
    state.counters["guest_instructions"] =
        static_cast<double>(interp.counters().instructions) /
        static_cast<double>(state.iterations());
    state.counters["guest_invokes"] =
        static_cast<double>(interp.counters().total_invokes()) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_Original);

void BM_RafdaTransformed(benchmark::State& state) {
    model::ClassPool pool = corpus::generate_program(workload_params());
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    for (auto _ : state) {
        interp.clear_output();
        transform::call_transformed_static(interp, pool, result.report,
                                           corpus::kProgramMain, "main", "()V");
    }
    state.counters["guest_instructions"] =
        static_cast<double>(interp.counters().instructions) /
        static_cast<double>(state.iterations());
    state.counters["guest_invokes"] =
        static_cast<double>(interp.counters().total_invokes()) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_RafdaTransformed);

void BM_Wrapper(benchmark::State& state) {
    model::ClassPool pool = corpus::generate_program(workload_params());
    wrapper::WrapperResult result = wrapper::run_wrapper_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    for (auto _ : state) run_main(interp);
    state.counters["guest_instructions"] =
        static_cast<double>(interp.counters().instructions) /
        static_cast<double>(state.iterations());
    state.counters["guest_invokes"] =
        static_cast<double>(interp.counters().total_invokes()) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_Wrapper);

// Allocation comparison on an allocation-heavy app.
void BM_AllocOriginal(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kAllocApp);
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    for (auto _ : state)
        interp.call_static("Alloc", "burst", "(I)I", {vm::Value::of_int(200)});
    state.counters["allocs_per_run"] =
        static_cast<double>(interp.counters().allocations) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_AllocOriginal);

void BM_AllocRafda(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kAllocApp);
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    for (auto _ : state)
        transform::call_transformed_static(interp, pool, result.report, "Alloc", "burst",
                                           "(I)I", {vm::Value::of_int(200)});
    state.counters["allocs_per_run"] =
        static_cast<double>(interp.counters().allocations) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_AllocRafda);

void BM_AllocWrapper(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kAllocApp);
    wrapper::WrapperResult result = wrapper::run_wrapper_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    for (auto _ : state)
        interp.call_static("Alloc", "burst", "(I)I", {vm::Value::of_int(200)});
    state.counters["allocs_per_run"] =
        static_cast<double>(interp.counters().allocations) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_AllocWrapper);

void print_preamble() {
    std::printf("=== E4: wrapper generation vs direct transformation (Sec 3) ===\n");
    std::printf(
        "expected shape: original < rafda-transformed < wrapper, wrapper clearly\n"
        "separated (forwarding call per method, extra hop per field access, 2x\n"
        "allocations).  guest_* counters are deterministic.\n\n");
}

/// One run of the identical workload per variant; the VM work counters
/// are exact, so the overhead factors are deterministic.
void emit_summary() {
    model::ClassPool pool = corpus::generate_program(workload_params());

    vm::Interpreter original(pool);
    vm::bind_prelude_natives(original);
    run_main(original);

    transform::PipelineResult transformed = transform::run_pipeline(pool);
    vm::Interpreter rafda(transformed.pool);
    vm::bind_prelude_natives(rafda);
    transform::bind_local_factories(rafda, transformed.report);
    transform::call_transformed_static(rafda, pool, transformed.report,
                                       corpus::kProgramMain, "main", "()V");

    wrapper::WrapperResult wrapped = wrapper::run_wrapper_pipeline(pool);
    vm::Interpreter wrapper_vm(wrapped.pool);
    vm::bind_prelude_natives(wrapper_vm);
    run_main(wrapper_vm);

    const double base = static_cast<double>(original.counters().instructions);
    bench::JsonSummary("E4")
        .add("original_instructions", original.counters().instructions)
        .add("rafda_instructions", rafda.counters().instructions)
        .add("wrapper_instructions", wrapper_vm.counters().instructions)
        .add("rafda_overhead_factor",
             static_cast<double>(rafda.counters().instructions) / base)
        .add("wrapper_overhead_factor",
             static_cast<double>(wrapper_vm.counters().instructions) / base)
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    print_preamble();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
