// E14 — closed-loop adaptive redistribution (DESIGN.md §19).
//
// A two-phase skewed workload over four nodes.  Two singletons start on
// node 0: `Hot`, a write-heavy counter, and `Table`, a read-mostly pair
// of fields.  Phase 1: node 1 hammers Hot while nodes 2 and 3 read
// Table.  Phase 2: the skew flips — node 2 becomes Hot's dominant
// caller while node 3 keeps reading.  The same seeded schedule runs
// with the AdaptationEngine off and on:
//
//   - on, the controller notices phase 1's one-sided Hot traffic and
//     migrates the singleton to node 1 mid-run; when the skew flips it
//     follows the traffic to node 2 — the windowed time-series shows
//     the wire quieting after each move;
//   - Table's window shows a read/write ratio above the policy
//     threshold, so its readers get node-local replicas (write-
//     invalidate consistency) and the read traffic leaves the wire;
//   - headline: adaptation-on finishes strictly earlier and moves
//     strictly fewer wire bytes than adaptation-off on the same seed,
//     with identical per-call results — and the on-configuration runs
//     twice to pin bit-for-bit determinism (same decisions at the same
//     virtual times, same digests).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"

namespace {

using namespace rafda;
using vm::Value;

constexpr const char* kAdaptiveApp = R"RIR(
class Hot {
  static field total I
  static method bump (I)I {
    getstatic Hot.total I
    load 0
    add
    dup
    putstatic Hot.total I
    returnvalue
  }
  static method total ()I {
    getstatic Hot.total I
    returnvalue
  }
}
class Table {
  static field a I
  static field b I
  static method seed (II)V {
    load 0
    putstatic Table.a I
    load 1
    putstatic Table.b I
    return
  }
  static method lookup ()I {
    getstatic Table.a I
    getstatic Table.b I
    add
    returnvalue
  }
}
)RIR";

constexpr int kHotCallsPerPhase = 48;   // the dominant caller's volume
constexpr int kReadCallsPerPhase = 32;  // each Table reader's volume
constexpr std::uint64_t kWindowUs = 500;

using DecisionKey = std::tuple<std::uint64_t, std::uint64_t, std::string,
                               std::string, net::NodeId, net::NodeId>;

struct RunResult {
    std::uint64_t makespan_us = 0;      // end-to-end, both phases
    std::uint64_t wire_bytes = 0;
    std::uint64_t digest_phase1 = 0;
    std::uint64_t digest_phase2 = 0;
    std::uint64_t tasks = 0;
    std::uint64_t faults = 0;
    std::uint64_t migrations = 0;
    std::uint64_t replications = 0;
    std::uint64_t replica_reads = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t decisions_total = 0;
    std::uint64_t bytes_saved_est = 0;
    net::NodeId hot_home = -1;          // where Hot ended up
    std::vector<DecisionKey> decisions;
    std::vector<std::int32_t> results;  // per-call returns, both classes
    std::vector<runtime::WorkloadDriver::Window> windows;
    std::string traffic_matrix;
};

RunResult run_workload(bool adapt) {
    model::ClassPool pool = bench::assemble_app(kAdaptiveApp);
    runtime::SystemOptions options;
    options.network_seed = 11;
    options.default_link = net::LinkParams{20, 0.0, 0.0};
    runtime::System system(pool, options);
    system.add_node();  // 0: initial home of Hot and Table
    system.add_node();  // 1: phase-1 Hot caller
    system.add_node();  // 2: Table reader, then phase-2 Hot caller
    system.add_node();  // 3: Table reader throughout
    system.policy().set_singleton_home("Hot", 0, "RMI");
    system.policy().set_singleton_home("Table", 0, "RMI");
    // Seed before the engine exists: the one write predates its baseline
    // snapshot, so the first observation window sees a pure-read Table.
    system.call_static(1, "Table", "seed", "(II)V",
                       {Value::of_int(5), Value::of_int(6)});
    if (adapt) {
        runtime::AdaptPolicy policy;
        policy.interval_us = 600;
        policy.migrate_threshold_bytes = 64;
        policy.replicate_ratio = 0.9;
        policy.min_window_calls = 4;
        system.enable_adaptation(policy);
    }

    RunResult r;
    runtime::WorkloadDriver driver(system);
    driver.set_window_us(kWindowUs);
    auto bump = [&r](runtime::System& sys, net::NodeId node) {
        r.results.push_back(
            sys.call_static(node, "Hot", "bump", "(I)I", {Value::of_int(1)})
                .as_int());
    };
    auto read = [&r](runtime::System& sys, net::NodeId node) {
        r.results.push_back(
            sys.call_static(node, "Table", "lookup", "()I").as_int());
    };

    // Phase 1: node 1 owns the Hot skew, nodes 2 and 3 read Table.
    driver.add_client(1, kHotCallsPerPhase, bump);
    driver.add_client(2, kReadCallsPerPhase, read);
    driver.add_client(3, kReadCallsPerPhase, read);
    runtime::WorkloadDriver::Report phase1 = driver.run();

    // Phase 2: the skew flips — node 2 becomes the dominant caller.
    driver.add_client(2, kHotCallsPerPhase, bump);
    driver.add_client(3, kReadCallsPerPhase, read);
    runtime::WorkloadDriver::Report phase2 = driver.run();

    r.makespan_us = phase2.end_us - phase1.start_us;
    r.tasks = phase1.tasks_run + phase2.tasks_run;
    r.faults = phase1.faults + phase2.faults;
    r.digest_phase1 = phase1.event_order_digest;
    r.digest_phase2 = phase2.event_order_digest;
    r.wire_bytes = system.network().total_stats().bytes;
    r.hot_home = system.find_singleton("Hot").first;
    r.windows = phase1.windows;
    r.windows.insert(r.windows.end(), phase2.windows.begin(),
                     phase2.windows.end());
    r.traffic_matrix = bench::traffic_matrix_json(system);
    if (adapt) {
        obs::Registry& m = system.metrics();
        r.migrations = m.counter("adapt.migrations").value();
        r.replications = m.counter("adapt.replications").value();
        r.replica_reads = m.counter("adapt.replica_reads").value();
        r.invalidations = m.counter("adapt.invalidations").value();
        r.decisions_total = m.counter("adapt.decisions").value();
        r.bytes_saved_est = m.counter("adapt.bytes_saved_est").value();
        for (const runtime::AdaptDecision& d :
             system.adaptation()->decisions())
            r.decisions.emplace_back(d.seq, d.t_us, d.cls,
                                     runtime::adapt_action_name(d.action),
                                     d.from, d.to);
    }
    return r;
}

std::string windows_series_json(
    const std::vector<runtime::WorkloadDriver::Window>& windows) {
    std::string out = "[";
    for (std::size_t k = 0; k < windows.size(); ++k) {
        const runtime::WorkloadDriver::Window& w = windows[k];
        if (k) out += ",";
        out += "{\"start_us\":" + std::to_string(w.start_us) +
               ",\"end_us\":" + std::to_string(w.end_us) +
               ",\"tasks\":" + std::to_string(w.tasks) +
               ",\"rpc_calls\":" + std::to_string(w.rpc_calls) +
               ",\"wire_bytes\":" + std::to_string(w.wire_bytes) + "}";
    }
    return out + "]";
}

std::string decisions_json(const std::vector<DecisionKey>& decisions) {
    std::string out = "[";
    for (std::size_t k = 0; k < decisions.size(); ++k) {
        const DecisionKey& d = decisions[k];
        if (k) out += ",";
        out += "{\"seq\":" + std::to_string(std::get<0>(d)) +
               ",\"t_us\":" + std::to_string(std::get<1>(d)) +
               ",\"class\":\"" + obs::json_escape(std::get<2>(d)) +
               "\",\"action\":\"" + obs::json_escape(std::get<3>(d)) +
               "\",\"from\":" + std::to_string(std::get<4>(d)) +
               ",\"to\":" + std::to_string(std::get<5>(d)) + "}";
    }
    return out + "]";
}

/// The post-migration throughput inflection: some window after the first
/// migration moves strictly fewer wire bytes than every window before it.
bool inflection_observed(const RunResult& r) {
    std::uint64_t first_migration_us = 0;
    for (const DecisionKey& d : r.decisions)
        if (std::get<3>(d) == "migrate") {
            first_migration_us = std::get<1>(d);
            break;
        }
    if (!first_migration_us) return false;
    std::uint64_t before_min = ~0ULL;
    std::uint64_t after_min = ~0ULL;
    for (const runtime::WorkloadDriver::Window& w : r.windows) {
        if (!w.tasks) continue;
        if (w.end_us <= first_migration_us)
            before_min = std::min(before_min, w.wire_bytes);
        else if (w.start_us >= first_migration_us)
            after_min = std::min(after_min, w.wire_bytes);
    }
    return after_min < before_min;
}

void BM_AdaptOff(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(false);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["wire_bytes"] = static_cast<double>(r.wire_bytes);
}
BENCHMARK(BM_AdaptOff);

void BM_AdaptOn(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(true);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["wire_bytes"] = static_cast<double>(r.wire_bytes);
    state.counters["migrations"] = static_cast<double>(r.migrations);
    state.counters["replications"] = static_cast<double>(r.replications);
}
BENCHMARK(BM_AdaptOn);

void emit_summary() {
    const RunResult off = run_workload(false);
    const RunResult on = run_workload(true);
    const RunResult again = run_workload(true);

    const bool deterministic =
        on.makespan_us == again.makespan_us &&
        on.wire_bytes == again.wire_bytes &&
        on.digest_phase1 == again.digest_phase1 &&
        on.digest_phase2 == again.digest_phase2 &&
        on.decisions == again.decisions && on.results == again.results &&
        on.traffic_matrix == again.traffic_matrix;

    std::printf("\n--- E14 decision log (adaptation on) ---\n");
    for (const DecisionKey& d : on.decisions)
        std::printf("  #%llu t=%lluus %-9s %-6s %d -> %d\n",
                    static_cast<unsigned long long>(std::get<0>(d)),
                    static_cast<unsigned long long>(std::get<1>(d)),
                    std::get<3>(d).c_str(), std::get<2>(d).c_str(),
                    static_cast<int>(std::get<4>(d)),
                    static_cast<int>(std::get<5>(d)));
    std::printf("off: makespan %llu us, wire %llu bytes\n",
                static_cast<unsigned long long>(off.makespan_us),
                static_cast<unsigned long long>(off.wire_bytes));
    std::printf("on:  makespan %llu us, wire %llu bytes (Hot home: %d)\n\n",
                static_cast<unsigned long long>(on.makespan_us),
                static_cast<unsigned long long>(on.wire_bytes),
                static_cast<int>(on.hot_home));

    bench::JsonSummary("E14")
        .add("tasks", on.tasks)
        .add("window_us", kWindowUs)
        .add("off_makespan_us", off.makespan_us)
        .add("on_makespan_us", on.makespan_us)
        .add("off_wire_bytes", off.wire_bytes)
        .add("on_wire_bytes", on.wire_bytes)
        .add("makespan_saved_us", off.makespan_us - on.makespan_us)
        .add("wire_bytes_saved", off.wire_bytes - on.wire_bytes)
        .add("migrations", on.migrations)
        .add("replications", on.replications)
        .add("replica_reads", on.replica_reads)
        .add("invalidations", on.invalidations)
        .add("adapt_decisions", on.decisions_total)
        .add("bytes_saved_est", on.bytes_saved_est)
        .add("hot_final_home", std::uint64_t{static_cast<std::uint64_t>(
                                   on.hot_home < 0 ? 0 : on.hot_home)})
        .add("identical_results",
             std::uint64_t{off.results == on.results && off.faults == 0 &&
                           on.faults == 0})
        .add("adapted_wins",
             std::uint64_t{on.makespan_us < off.makespan_us &&
                           on.wire_bytes < off.wire_bytes})
        .add("inflection_observed", std::uint64_t{inflection_observed(on)})
        .add("deterministic", std::uint64_t{deterministic})
        .add("event_order_digest", on.digest_phase2)
        .add_raw("decisions", decisions_json(on.decisions))
        .add_raw("windows_on", windows_series_json(on.windows))
        .add_raw("windows_off", windows_series_json(off.windows))
        .add_raw("traffic_matrix", on.traffic_matrix)
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E14: closed-loop adaptive redistribution ===\n");
    std::printf(
        "expected shape: the controller migrates the write-heavy Hot singleton\n"
        "to each phase's dominant caller and replicates the read-mostly Table to\n"
        "its readers — adaptation-on finishes earlier and moves fewer wire bytes\n"
        "than adaptation-off on the same seed, with identical per-call results\n"
        "and a visible post-migration drop in the windowed wire-byte series.\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
