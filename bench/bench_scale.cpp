// E13 — million-client scale-out on the event-heap scheduler
// (DESIGN.md §18, EXPERIMENTS.md E13).
//
// A fleet of RAFDA_SCALE_CLIENTS lightweight clients (default 10⁵) spread
// over RAFDA_SCALE_NODES nodes (default 104: 4 server nodes + 100 client
// nodes) each drives RAFDA_SCALE_TASKS Service.work calls against the
// server tier, scheduled in VirtualClock fairness: the event heap always
// runs the client earliest in virtual time, and SimNetwork completions
// land in the same heap.  The sharded object directory
// (RAFDA_SCALE_SHARDS shards, default 8) serves a resolution per client
// node, so lookup traffic spreads over the ring instead of serializing
// through one registry node.
//
// What the summary has to witness (ISSUE 8 acceptance):
//   * determinism — two full runs produce identical makespan, wire bytes
//     and event-order digest (no wall-clock, no host-order dependence);
//   * bounded memory — peak RSS is reported, and peak_pending_events ×
//     sizeof(Event) is the scheduler's actual footprint: clients cost
//     bytes per *pending event*, not a stack each;
//   * the latency distribution (p50/p99 of per-task virtual latency) and
//     per-link utilization of the server tier.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"

namespace {

using namespace rafda;
using vm::Value;

constexpr int kServers = 4;

std::uint64_t env_or(const char* name, std::uint64_t fallback) {
    const char* v = std::getenv(name);
    if (!v || !*v) return fallback;
    return std::strtoull(v, nullptr, 10);
}

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;  // bytes there
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // kilobytes
#endif
#else
    return 0;
#endif
}

struct ScaleResult {
    std::uint64_t makespan_us = 0;
    std::uint64_t tasks = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t wire_messages = 0;
    std::uint64_t latency_p50_us = 0;
    std::uint64_t latency_p99_us = 0;
    std::uint64_t events_dispatched = 0;
    std::uint64_t peak_pending_events = 0;
    std::uint64_t event_order_digest = 0;
    std::uint64_t dir_lookups = 0;
    std::uint64_t dir_remote = 0;
    std::uint64_t max_link_util_ppm = 0;
    std::string top_links;  // JSON array, hottest first
};

/// One full fleet run in a fresh System (seed fixed, so two invocations
/// must agree bit for bit).
ScaleResult run_fleet(std::uint64_t clients, std::uint64_t total_nodes,
                      std::uint32_t tasks_each, std::uint32_t shards) {
    model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
    runtime::System system(pool);
    const std::size_t nodes =
        std::max<std::size_t>(static_cast<std::size_t>(total_nodes), kServers + 1);
    for (std::size_t k = 0; k < nodes; ++k) system.add_node();

    runtime::DirectoryPolicy dp;
    dp.shards = shards;
    system.enable_directory(dp);

    // One Service per client node, homed round-robin on the server tier;
    // fleet clients on that node share its proxy (the service object is
    // the node's connection to its assigned server).
    std::vector<net::NodeId> client_nodes;
    std::vector<Value> services(nodes);
    for (std::size_t k = kServers; k < nodes; ++k) {
        const auto nid = static_cast<net::NodeId>(k);
        system.policy().set_instance_home(
            "Service", static_cast<net::NodeId>(k % kServers), "RMI");
        services[k] = system.construct(nid, "Service", "()V");
        client_nodes.push_back(nid);
        // Exercise the directory ring: each client node resolves its
        // server-side service once through the owning shard.
        system.directory_resolve(nid, static_cast<net::NodeId>(k % kServers),
                                 static_cast<vm::ObjId>(k));
    }

    runtime::WorkloadDriver driver(system);
    driver.set_fairness(runtime::WorkloadDriver::Fairness::VirtualClock);
    driver.add_fleet(client_nodes, clients, tasks_each,
                     [&services](runtime::System& sys, net::NodeId node) {
                         sys.node(node).interp().call_virtual(
                             services[static_cast<std::size_t>(node)], "work",
                             "(J)J", {Value::of_long(1)});
                     });
    runtime::WorkloadDriver::Report report = driver.run();

    ScaleResult r;
    r.makespan_us = report.makespan_us;
    r.tasks = report.tasks_run;
    r.latency_p50_us = report.latency_p50_us;
    r.latency_p99_us = report.latency_p99_us;
    r.events_dispatched = report.events_dispatched;
    r.peak_pending_events = report.peak_pending_events;
    r.event_order_digest = report.event_order_digest;
    const net::LinkStats total = system.network().total_stats();
    r.wire_bytes = total.bytes;
    r.wire_messages = total.messages + total.coalesced;
    r.dir_lookups = system.metrics().counter("directory.lookups").value();
    r.dir_remote = system.metrics().counter("directory.remote").value();

    // Per-link utilization, hottest links first (stable: visit order is
    // (src, dst), ties keep it).
    struct Row {
        net::NodeId src, dst;
        std::uint64_t bytes, util_ppm;
    };
    const std::uint64_t horizon =
        std::max<std::uint64_t>(1, system.network().now_us());
    std::vector<Row> rows;
    system.network().visit_links(
        [&](net::NodeId src, net::NodeId dst, const net::LinkStats& s) {
            rows.push_back(Row{src, dst, s.bytes, s.busy_us * 1'000'000 / horizon});
        });
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.bytes > b.bytes; });
    r.top_links = "[";
    for (std::size_t k = 0; k < rows.size(); ++k) {
        if (r.max_link_util_ppm < rows[k].util_ppm)
            r.max_link_util_ppm = rows[k].util_ppm;
        if (k >= 5) continue;  // the JSON lists the head, the max covers the rest
        if (k) r.top_links += ",";
        r.top_links += "{\"src\":" + std::to_string(rows[k].src) +
                       ",\"dst\":" + std::to_string(rows[k].dst) +
                       ",\"bytes\":" + std::to_string(rows[k].bytes) +
                       ",\"utilization_ppm\":" + std::to_string(rows[k].util_ppm) +
                       "}";
    }
    r.top_links += "]";
    return r;
}

void BM_ScaleFleet(benchmark::State& state) {
    const auto clients = static_cast<std::uint64_t>(state.range(0));
    ScaleResult r;
    for (auto _ : state) r = run_fleet(clients, 104, 1, 8);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["peak_pending"] = static_cast<double>(r.peak_pending_events);
}
BENCHMARK(BM_ScaleFleet)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void emit_summary() {
    const std::uint64_t clients = env_or("RAFDA_SCALE_CLIENTS", 100'000);
    const std::uint64_t nodes = env_or("RAFDA_SCALE_NODES", 104);
    const auto tasks_each =
        static_cast<std::uint32_t>(env_or("RAFDA_SCALE_TASKS", 2));
    const auto shards = static_cast<std::uint32_t>(env_or("RAFDA_SCALE_SHARDS", 8));

    const ScaleResult a = run_fleet(clients, nodes, tasks_each, shards);
    const ScaleResult b = run_fleet(clients, nodes, tasks_each, shards);
    const bool deterministic = a.makespan_us == b.makespan_us &&
                               a.wire_bytes == b.wire_bytes &&
                               a.event_order_digest == b.event_order_digest &&
                               a.latency_p99_us == b.latency_p99_us;

    bench::JsonSummary("E13")
        .add("clients", clients)
        .add("nodes", nodes)
        .add("tasks_per_client", static_cast<std::uint64_t>(tasks_each))
        .add("directory_shards", static_cast<std::uint64_t>(shards))
        .add("makespan_us", a.makespan_us)
        .add("tasks", a.tasks)
        .add("wire_bytes", a.wire_bytes)
        .add("wire_messages", a.wire_messages)
        .add("latency_p50_us", a.latency_p50_us)
        .add("latency_p99_us", a.latency_p99_us)
        .add("events_dispatched", a.events_dispatched)
        .add("peak_pending_events", a.peak_pending_events)
        .add("event_order_digest", a.event_order_digest)
        .add("directory_lookups", a.dir_lookups)
        .add("directory_remote", a.dir_remote)
        .add("max_link_utilization_ppm", a.max_link_util_ppm)
        .add_raw("top_links", a.top_links)
        .add("peak_rss_kb", peak_rss_kb())
        .add("deterministic", std::uint64_t{deterministic})
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E13: event-heap scheduler at scale ===\n");
    std::printf(
        "expected shape: the fleet completes with makespan, wire bytes and event\n"
        "order digest identical across two runs (seeded virtual time); pending\n"
        "events -- not client count -- bound scheduler memory; peak RSS reported.\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
