// E1 — the transformation pipeline itself (Figures 2-5 at scale).
//
// Measures pipeline throughput over growing inputs and reports the
// artefact expansion factor (a class becomes interfaces + local + proxies
// + factories), plus a breakdown table for the Figure 2 example.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "corpus/program_gen.hpp"
#include "transform/pipeline.hpp"
#include "vm/prelude.hpp"

namespace {

using namespace rafda;

void print_expansion_table() {
    corpus::ProgramParams params;
    params.classes = 10;
    params.seed = 3;
    model::ClassPool pool = corpus::generate_program(params);
    std::size_t before = pool.size();
    transform::PipelineResult result = transform::run_pipeline(pool);
    std::printf("artefact expansion (10-class program + prelude):\n");
    std::printf("  classes before: %zu   after: %zu   substituted: %zu\n", before,
                result.pool.size(), result.report.substituted_classes().size());
    std::printf(
        "  per substituted class: O_Int, O_Local, %zu O-proxies, C_Int, C_Local,\n"
        "  %zu C-proxies, O_Factory, C_Factory = %zu artefacts\n\n",
        result.report.protocols().size(), result.report.protocols().size(),
        6 + 2 * result.report.protocols().size());
}

// Args: {program classes, worker threads}.  The thread axis pins the
// determinism contract's cost: the output is byte-identical at any count,
// so the only difference worth measuring is wall time.
void BM_Pipeline(benchmark::State& state) {
    corpus::ProgramParams params;
    params.classes = static_cast<std::size_t>(state.range(0));
    params.seed = 5;
    model::ClassPool pool = corpus::generate_program(params);
    transform::PipelineOptions options;
    options.threads = static_cast<std::size_t>(state.range(1));
    std::size_t out_classes = 0;
    for (auto _ : state) {
        transform::PipelineResult result = transform::run_pipeline(pool, options);
        out_classes = result.pool.size();
        benchmark::DoNotOptimize(out_classes);
    }
    state.counters["in_classes"] = static_cast<double>(pool.size());
    state.counters["out_classes"] = static_cast<double>(out_classes);
    state.counters["threads"] =
        static_cast<double>(transform::resolve_transform_threads(options.threads));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(pool.size()));
}
BENCHMARK(BM_Pipeline)
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8});

void BM_PipelineNoVerify(benchmark::State& state) {
    corpus::ProgramParams params;
    params.classes = static_cast<std::size_t>(state.range(0));
    params.seed = 5;
    model::ClassPool pool = corpus::generate_program(params);
    transform::PipelineOptions options;
    options.verify_output = false;
    options.threads = 1;  // isolates the serial generate cost
    for (auto _ : state) {
        transform::PipelineResult result = transform::run_pipeline(pool, options);
        benchmark::DoNotOptimize(result.pool.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(pool.size()));
}
BENCHMARK(BM_PipelineNoVerify)->Arg(64);

void BM_AnalysisOnly(benchmark::State& state) {
    corpus::ProgramParams params;
    params.classes = 64;
    params.seed = 5;
    model::ClassPool pool = corpus::generate_program(params);
    for (auto _ : state) {
        transform::Analysis a = transform::analyze(pool);
        benchmark::DoNotOptimize(a.non_transformable_count());
    }
}
BENCHMARK(BM_AnalysisOnly);

void emit_summary() {
    corpus::ProgramParams params;
    params.classes = 10;
    params.seed = 3;
    model::ClassPool pool = corpus::generate_program(params);
    const std::size_t before = pool.size();
    transform::PipelineResult result = transform::run_pipeline(pool);
    bench::JsonSummary("E1")
        .add("classes_before", static_cast<std::uint64_t>(before))
        .add("classes_after", static_cast<std::uint64_t>(result.pool.size()))
        .add("substituted",
             static_cast<std::uint64_t>(result.report.substituted_classes().size()))
        .add("expansion_factor",
             static_cast<double>(result.pool.size()) / static_cast<double>(before))
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E1: transformation pipeline throughput and expansion ===\n\n");
    print_expansion_table();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
