// E8 — property-ization cost (Sec 2.1: "the first step of the
// transformation is therefore to turn every attribute into a property").
//
// A tight loop incrementing a field of another object, under three
// regimes: raw getfield/putfield (original), interface get_v/set_v calls
// (RAFDA local) and wrapper get_v/set_v with the extra target hop.
//
// Expected shape: original < rafda < wrapper; rafda pays one interface
// dispatch per access, the wrapper pays the dispatch plus the target
// indirection.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/interp.hpp"
#include "wrapper/wrapper_pipeline.hpp"

namespace {

using namespace rafda;
using vm::Value;

constexpr int kSpin = 500;

void BM_RawFieldAccess(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kHotFieldApp);
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    Value cell = interp.construct("Cell", "()V", {});
    for (auto _ : state)
        benchmark::DoNotOptimize(interp.call_static("Driver", "spin", "(LCell;I)J",
                                                    {cell, Value::of_int(kSpin)}));
    state.counters["guest_insns_per_iter"] =
        static_cast<double>(interp.counters().instructions) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_RawFieldAccess);

void BM_InterfacePropertyAccess(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kHotFieldApp);
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    Value cell = interp.call_static("Cell_O_Factory", "make", "()LCell_O_Int;");
    interp.call_static("Cell_O_Factory", "init", "(LCell_O_Int;)V", {cell});
    for (auto _ : state)
        benchmark::DoNotOptimize(transform::call_transformed_static(
            interp, pool, result.report, "Driver", "spin", "(LCell;I)J",
            {cell, Value::of_int(kSpin)}));
    state.counters["guest_insns_per_iter"] =
        static_cast<double>(interp.counters().instructions) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_InterfacePropertyAccess);

void BM_WrapperPropertyAccess(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kHotFieldApp);
    wrapper::WrapperResult result = wrapper::run_wrapper_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    Value cell = interp.call_static("Cell_Wrapper", "make", "()LCell_Wrapper;");
    interp.call_static("Cell_Wrapper", "init", "(LCell_Wrapper;)V", {cell});
    for (auto _ : state)
        benchmark::DoNotOptimize(interp.call_static("Driver", "spin", "(LCell;I)J",
                                                    {cell, Value::of_int(kSpin)}));
    state.counters["guest_insns_per_iter"] =
        static_cast<double>(interp.counters().instructions) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_WrapperPropertyAccess);

/// Exact instruction counts for one spin(500) per regime.
void emit_summary() {
    model::ClassPool pool = bench::assemble_app(bench::kHotFieldApp);

    vm::Interpreter raw(pool);
    vm::bind_prelude_natives(raw);
    Value cell = raw.construct("Cell", "()V", {});
    raw.call_static("Driver", "spin", "(LCell;I)J", {cell, Value::of_int(kSpin)});

    transform::PipelineResult transformed = transform::run_pipeline(pool);
    vm::Interpreter rafda(transformed.pool);
    vm::bind_prelude_natives(rafda);
    transform::bind_local_factories(rafda, transformed.report);
    Value prop = rafda.call_static("Cell_O_Factory", "make", "()LCell_O_Int;");
    rafda.call_static("Cell_O_Factory", "init", "(LCell_O_Int;)V", {prop});
    transform::call_transformed_static(rafda, pool, transformed.report, "Driver",
                                       "spin", "(LCell;I)J",
                                       {prop, Value::of_int(kSpin)});

    wrapper::WrapperResult wrapped = wrapper::run_wrapper_pipeline(pool);
    vm::Interpreter wrapper_vm(wrapped.pool);
    vm::bind_prelude_natives(wrapper_vm);
    Value wcell = wrapper_vm.call_static("Cell_Wrapper", "make", "()LCell_Wrapper;");
    wrapper_vm.call_static("Cell_Wrapper", "init", "(LCell_Wrapper;)V", {wcell});
    wrapper_vm.call_static("Driver", "spin", "(LCell;I)J", {wcell, Value::of_int(kSpin)});

    bench::JsonSummary("E8")
        .add("raw_instructions", raw.counters().instructions)
        .add("interface_instructions", rafda.counters().instructions)
        .add("wrapper_instructions", wrapper_vm.counters().instructions)
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E8: field access — raw vs interface properties vs wrapper ===\n");
    std::printf("expected shape: raw < interface (RAFDA) < wrapper.\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
