// E5 — interchangeability cost matrix (Sec 2: "various proxies ... provide
// alternative remote versions, e.g. SOAP-based, RMI-based").
//
// The same Service.work call measured across the four implementations a
// reference can be bound to:
//
//   untransformed        — original program, plain virtual dispatch
//   O_Local              — transformed, local implementation
//   O_Proxy_RMI          — remote over the compact binary protocol
//   O_Proxy_CORBA        — remote over the CDR/GIOP-flavoured protocol
//   O_Proxy_SOAP         — remote over the verbose text protocol
//
// Wall time captures middleware CPU cost; the `virtual_us_per_call` and
// `wire_bytes_per_call` counters capture the simulated network, where the
// RMI-vs-SOAP asymmetry shows.  A payload sweep (echo of N-byte strings)
// shows SOAP's size amplification growing with payload.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "runtime/system.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/interp.hpp"

namespace {

using namespace rafda;
using vm::Value;

void BM_Untransformed(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    Value svc = interp.construct("Service", "()V", {});
    std::int64_t k = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            interp.call_virtual(svc, "work", "(J)J", {Value::of_long(++k)}));
    state.counters["virtual_us_per_call"] = 0;
    state.counters["wire_bytes_per_call"] = 0;
}
BENCHMARK(BM_Untransformed);

void BM_TransformedLocal(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    Value svc = interp.call_static("Service_O_Factory", "make", "()LService_O_Int;");
    interp.call_static("Service_O_Factory", "init", "(LService_O_Int;)V", {svc});
    std::int64_t k = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            interp.call_virtual(svc, "work", "(J)J", {Value::of_long(++k)}));
    state.counters["virtual_us_per_call"] = 0;
    state.counters["wire_bytes_per_call"] = 0;
}
BENCHMARK(BM_TransformedLocal);

void run_remote(benchmark::State& state, const std::string& protocol) {
    model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
    runtime::SystemOptions options;
    options.pipeline.generator.protocols = {"RMI", "SOAP", "CORBA"};
    runtime::System system(pool, options);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("Service", 1, protocol);
    Value svc = system.construct(0, "Service", "()V");
    vm::Interpreter& n0 = system.node(0).interp();
    system.reset_stats();
    std::uint64_t t0 = system.network().now_us();
    std::int64_t k = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            n0.call_virtual(svc, "work", "(J)J", {Value::of_long(++k)}));
    const auto& stats = system.remote_stats().at(protocol);
    double calls = static_cast<double>(stats.calls ? stats.calls : 1);
    state.counters["virtual_us_per_call"] =
        static_cast<double>(system.network().now_us() - t0) / calls;
    state.counters["wire_bytes_per_call"] =
        static_cast<double>(stats.request_bytes + stats.reply_bytes) / calls;
}

void BM_RemoteRMI(benchmark::State& state) { run_remote(state, "RMI"); }
BENCHMARK(BM_RemoteRMI);

void BM_RemoteSOAP(benchmark::State& state) { run_remote(state, "SOAP"); }
BENCHMARK(BM_RemoteSOAP);

void BM_RemoteCORBA(benchmark::State& state) { run_remote(state, "CORBA"); }
BENCHMARK(BM_RemoteCORBA);

// Ablation: Service excluded from substitution by policy — it keeps raw
// dispatch (no interface indirection, no factory), proving the overhead is
// opt-in per class.
void BM_KeptInPlace(benchmark::State& state) {
    model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
    transform::PipelineOptions options;
    options.substitutable = std::vector<std::string>{};  // substitute nothing
    transform::PipelineResult result = transform::run_pipeline(pool, options);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    Value svc = interp.construct("Service", "()V", {});
    std::int64_t k = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            interp.call_virtual(svc, "work", "(J)J", {Value::of_long(++k)}));
    state.counters["virtual_us_per_call"] = 0;
    state.counters["wire_bytes_per_call"] = 0;
}
BENCHMARK(BM_KeptInPlace);

// Payload sweep: echo(S) with growing strings.
void run_payload(benchmark::State& state, const std::string& protocol) {
    model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
    runtime::System system(pool);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("Service", 1, protocol);
    Value svc = system.construct(0, "Service", "()V");
    vm::Interpreter& n0 = system.node(0).interp();
    std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
    system.reset_stats();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            n0.call_virtual(svc, "echo", "(S)S", {Value::of_str(payload)}));
    const auto& stats = system.remote_stats().at(protocol);
    state.counters["wire_bytes_per_call"] =
        static_cast<double>(stats.request_bytes + stats.reply_bytes) /
        static_cast<double>(stats.calls ? stats.calls : 1);
}

void BM_PayloadRMI(benchmark::State& state) { run_payload(state, "RMI"); }
BENCHMARK(BM_PayloadRMI)->Arg(16)->Arg(256)->Arg(4096);

void BM_PayloadSOAP(benchmark::State& state) { run_payload(state, "SOAP"); }
BENCHMARK(BM_PayloadSOAP)->Arg(16)->Arg(256)->Arg(4096);

/// 100 remote work() calls per protocol, measured via snapshot/diff.
void emit_summary() {
    bench::JsonSummary summary("E5");
    for (const std::string protocol : {"RMI", "CORBA", "SOAP"}) {
        model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
        runtime::SystemOptions options;
        options.pipeline.generator.protocols = {"RMI", "SOAP", "CORBA"};
        runtime::System system(pool, options);
        system.add_node();
        system.add_node();
        system.policy().set_instance_home("Service", 1, protocol);
        Value svc = system.construct(0, "Service", "()V");
        vm::Interpreter& n0 = system.node(0).interp();
        obs::Snapshot before = system.metrics().snapshot();
        const std::uint64_t t0 = system.network().now_us();
        for (std::int64_t k = 1; k <= 100; ++k)
            n0.call_virtual(svc, "work", "(J)J", {Value::of_long(k)});
        obs::Snapshot window = obs::diff(before, system.metrics().snapshot());
        const std::string prefix = "rpc.proto." + protocol + ".";
        const double calls =
            static_cast<double>(window.counter_value(prefix + "calls"));
        summary.add(protocol + "_virtual_us_per_call",
                    static_cast<double>(system.network().now_us() - t0) / calls);
        summary.add(protocol + "_wire_bytes_per_call",
                    static_cast<double>(window.counter_value(prefix + "request_bytes") +
                                        window.counter_value(prefix + "reply_bytes")) /
                        calls);
    }
    summary.emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E5: dispatch matrix — who pays what per call ===\n");
    std::printf(
        "expected shape: untransformed ~= O_Local (small constant factor)\n"
        "<< RMI < CORBA < SOAP, remote cost dominated by latency + codec; SOAP's\n"
        "wire_bytes several times RMI's, growing with payload.\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
