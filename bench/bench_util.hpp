// Shared guest programs and helpers for the experiment benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "model/assembler.hpp"
#include "model/classpool.hpp"
#include "model/verifier.hpp"
#include "obs/export.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::bench {

/// Machine-readable experiment record.  Every bench main() ends by
/// emitting one single-line JSON object — also mirrored to
/// `BENCH_<experiment>.json` in the working directory — so a harness can
/// scrape the deterministic virtual-time results without parsing the
/// human tables above it.  Values come from the simulation (virtual
/// clock, metric snapshots), never from wall-clock timings.
class JsonSummary {
public:
    explicit JsonSummary(std::string experiment) : experiment_(std::move(experiment)) {}

    JsonSummary& add(const std::string& key, std::uint64_t v) {
        fields_.emplace_back(key, std::to_string(v));
        return *this;
    }
    JsonSummary& add(const std::string& key, double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        fields_.emplace_back(key, buf);
        return *this;
    }
    JsonSummary& add(const std::string& key, const std::string& v) {
        fields_.emplace_back(key, "\"" + obs::json_escape(v) + "\"");
        return *this;
    }
    /// Splices a pre-rendered JSON value (array/object) in verbatim — for
    /// structured sections like traffic matrices and window time series.
    JsonSummary& add_raw(const std::string& key, std::string raw_json) {
        fields_.emplace_back(key, std::move(raw_json));
        return *this;
    }

    std::string str() const {
        std::string out = "{\"experiment\":\"" + obs::json_escape(experiment_) + "\"";
        for (const auto& [k, v] : fields_) out += ",\"" + obs::json_escape(k) + "\":" + v;
        out += "}";
        return out;
    }

    /// Prints the record as the final stdout line and writes the sidecar
    /// file.
    void emit() const {
        const std::string line = str();
        std::ofstream("BENCH_" + experiment_ + ".json") << line << "\n";
        std::printf("%s\n", line.c_str());
    }

private:
    std::string experiment_;
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// A compute-service class used by the dispatch/placement benches: `work`
/// mixes field access, arithmetic and an optional string payload echo.
inline constexpr const char* kServiceApp = R"RIR(
class Service {
  field acc J
  field calls I
  ctor ()V {
    return
  }
  method work (J)J {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 0
    load 0
    getfield Service.acc J
    const 3L
    mul
    load 1
    add
    putfield Service.acc J
    load 0
    getfield Service.acc J
    returnvalue
  }
  method echo (S)S {
    load 1
    returnvalue
  }
}
)RIR";

/// The Figure 1 trio (A and B sharing a C), used by the redistribution
/// bench.
inline constexpr const char* kFig1App = R"RIR(
class C {
  field state I
  field blob S
  ctor ()V {
    return
  }
  method poke ()I {
    load 0
    load 0
    getfield C.state I
    const 1
    add
    putfield C.state I
    load 0
    getfield C.state I
    returnvalue
  }
  method setBlob (S)V {
    load 0
    load 1
    putfield C.blob S
    return
  }
}
class A {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield A.c LC;
    return
  }
  method act ()I {
    load 0
    getfield A.c LC;
    invokevirtual C.poke ()I
    returnvalue
  }
}
)RIR";

/// A field-heavy class for the property-access bench.
inline constexpr const char* kHotFieldApp = R"RIR(
class Cell {
  field v J
  ctor ()V {
    return
  }
}
class Driver {
  static method spin (LCell;I)J {
    locals 2
  Top:
    load 1
    const 0
    cmple
    iftrue Done
    load 0
    load 0
    getfield Cell.v J
    const 1L
    add
    putfield Cell.v J
    load 1
    const 1
    sub
    store 1
    goto Top
  Done:
    load 0
    getfield Cell.v J
    returnvalue
  }
}
)RIR";

/// Allocation-heavy app for the factory bench.
inline constexpr const char* kAllocApp = R"RIR(
class Item {
  field id I
  ctor (I)V {
    load 0
    load 1
    putfield Item.id I
    return
  }
}
class Alloc {
  static field made I
  static method burst (I)I {
    locals 2
    const 0
    store 1
  Top:
    load 1
    load 0
    cmpge
    iftrue Done
    new Item
    dup
    load 1
    invokespecial Item.<init> (I)V
    pop
    getstatic Alloc.made I
    const 1
    add
    putstatic Alloc.made I
    load 1
    const 1
    add
    store 1
    goto Top
  Done:
    getstatic Alloc.made I
    returnvalue
  }
}
)RIR";

inline model::ClassPool assemble_app(const char* src) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, src);
    model::verify_pool(pool);
    return pool;
}

/// The per-(class, src, dst) traffic matrix as a raw JSON array, edges in
/// deterministic (class, src, dst) order: who talks to whom, how often,
/// and how many wire bytes it cost (requests + replies, retries included).
inline std::string traffic_matrix_json(const runtime::System& system) {
    std::string out = "[";
    bool first = true;
    for (const auto& [cls, t] : system.class_traffic()) {
        std::set<std::pair<net::NodeId, net::NodeId>> edges;
        for (const auto& [e, _] : t.calls) edges.insert(e);
        for (const auto& [e, _] : t.bytes) edges.insert(e);
        for (const std::pair<net::NodeId, net::NodeId>& edge : edges) {
            if (!first) out += ",";
            first = false;
            auto lookup = [&edge](const auto& m) {
                auto it = m.find(edge);
                return it == m.end() ? std::uint64_t{0} : it->second;
            };
            out += "{\"class\":\"" + obs::json_escape(cls) +
                   "\",\"src\":" + std::to_string(edge.first) +
                   ",\"dst\":" + std::to_string(edge.second) +
                   ",\"calls\":" + std::to_string(lookup(t.calls)) +
                   ",\"bytes\":" + std::to_string(lookup(t.bytes)) + "}";
        }
    }
    return out + "]";
}

/// A WorkloadDriver report's closed windows as a raw JSON array — the
/// time-series view of a run (calls and wire bytes per window of virtual
/// time).
inline std::string windows_json(const runtime::WorkloadDriver::Report& report) {
    std::string out = "[";
    for (std::size_t k = 0; k < report.windows.size(); ++k) {
        const runtime::WorkloadDriver::Window& w = report.windows[k];
        if (k) out += ",";
        out += "{\"start_us\":" + std::to_string(w.start_us) +
               ",\"end_us\":" + std::to_string(w.end_us) +
               ",\"tasks\":" + std::to_string(w.tasks) +
               ",\"rpc_calls\":" + std::to_string(w.rpc_calls) +
               ",\"wire_bytes\":" + std::to_string(w.wire_bytes) + "}";
    }
    return out + "]";
}

}  // namespace rafda::bench
