// E10 — reliable RPC under a scheduled fault plan (DESIGN.md §15).
//
// Two client nodes drive Service.work calls against one server while the
// fault plan injects ~8% loss on every client<->server link plus a 20 ms
// partition of one client's request path.  The same schedule runs three
// ways: fault-free baseline, faults with the legacy at-most-once policy
// (losses surface as RemoteFaults), and faults with retries + exactly-once
// dedup (every loss absorbed, zero duplicate executions).  The headline
// numbers are the surfaced-fault counts and the price of reliability in
// virtual-time makespan.  Everything derives from the seeded simulation,
// so the summary is bit-for-bit reproducible; determinism is verified by
// running the reliable configuration twice.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"

namespace {

using namespace rafda;
using vm::Value;

/// Like bench_util's kServiceApp but with an exact execution counter, so
/// duplicate executions from reply-loss retries are directly observable.
constexpr const char* kReliableApp = R"RIR(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (J)J {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    const 2L
    mul
    returnvalue
  }
  method calls ()I {
    load 0
    getfield Service.calls I
    returnvalue
  }
}
)RIR";

constexpr int kClients = 2;
constexpr int kCallsPerClient = 64;
constexpr double kDropRate = 0.08;
constexpr std::uint64_t kPartitionUs = 20'000;

struct RunResult {
    std::uint64_t makespan_us = 0;
    std::size_t tasks = 0;
    std::size_t faults = 0;
    std::size_t recovered = 0;
    std::uint64_t retries = 0;
    std::uint64_t reply_loss_retries = 0;
    std::uint64_t dedup_hits = 0;
    std::int64_t executions = 0;  // Service.work calls observed server-side
    std::uint64_t latency_p50_us = 0;  // exact per-task virtual latency
    std::uint64_t latency_p95_us = 0;
    std::uint64_t latency_p99_us = 0;
    std::string traffic_matrix;  // per-(class, src, dst) calls + bytes
};

RunResult run_workload(bool with_faults, bool reliable) {
    model::ClassPool pool = bench::assemble_app(kReliableApp);
    runtime::SystemOptions options;
    options.network_seed = 11;
    if (reliable) {
        options.reliability.attempts = 12;
        options.reliability.backoff_base_us = 200;
        options.reliability.backoff_multiplier = 2.0;
        options.reliability.backoff_cap_us = 30'000;
        options.reliability.dedup = true;
    }
    runtime::System system(pool, options);
    system.add_node();  // 0: server
    for (int k = 0; k < kClients; ++k) system.add_node();
    system.policy().set_instance_home("Service", 0, "RMI");

    runtime::WorkloadDriver driver(system);
    std::vector<Value> services;
    for (int k = 1; k <= kClients; ++k)
        services.push_back(
            system.construct(static_cast<net::NodeId>(k), "Service", "()V"));

    if (with_faults) {
        // Faults begin after the fault-free construction traffic.
        std::uint64_t t0 = 0;
        for (int k = 1; k <= kClients; ++k)
            t0 = std::max(t0, system.node(static_cast<net::NodeId>(k)).clock_us());
        for (int k = 1; k <= kClients; ++k) {
            for (bool inbound : {false, true}) {
                net::FaultWindow w;
                w.kind = net::FaultKind::DropRate;
                w.src = inbound ? 0 : static_cast<net::NodeId>(k);
                w.dst = inbound ? static_cast<net::NodeId>(k) : 0;
                w.from_us = t0;
                w.until_us = ~0ULL;
                w.drop_probability = kDropRate;
                system.network().fault_plan().add(w);
            }
        }
        net::FaultWindow partition;
        partition.kind = net::FaultKind::LinkDown;
        partition.src = 1;
        partition.dst = 0;
        partition.from_us = t0 + 10'000;
        partition.until_us = t0 + 10'000 + kPartitionUs;
        system.network().fault_plan().add(partition);
    }

    for (int k = 1; k <= kClients; ++k) {
        Value svc = services[static_cast<std::size_t>(k - 1)];
        driver.add_client(static_cast<net::NodeId>(k), kCallsPerClient,
                          [svc](runtime::System& sys, net::NodeId node) {
                              sys.node(node).interp().call_virtual(
                                  svc, "work", "(J)J", {Value::of_long(1)});
                          });
    }
    runtime::WorkloadDriver::Report report = driver.run();

    RunResult r;
    r.makespan_us = report.makespan_us;
    r.tasks = report.tasks_run;
    r.faults = report.faults;
    r.recovered = report.recovered;
    r.retries = system.metrics().counter("rpc.retries").value();
    r.reply_loss_retries = system.metrics().counter("rpc.retries_reply_loss").value();
    r.dedup_hits = system.metrics().counter("rpc.dedup_hits").value();
    r.latency_p50_us = report.latency_p50_us;
    r.latency_p95_us = report.latency_p95_us;
    r.latency_p99_us = report.latency_p99_us;
    r.traffic_matrix = bench::traffic_matrix_json(system);
    // Count executions straight off the instances' `calls` fields: with
    // exactly-once semantics this equals the task count.
    if (r.faults == 0) {
        for (int k = 1; k <= kClients; ++k)
            r.executions += system.node(static_cast<net::NodeId>(k))
                                .interp()
                                .call_virtual(services[static_cast<std::size_t>(k - 1)],
                                              "calls", "()I")
                                .as_int();
    }
    return r;
}

void BM_FaultFree(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(/*with_faults=*/false, /*reliable=*/false);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
}
BENCHMARK(BM_FaultFree);

void BM_FaultsUnreliable(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(/*with_faults=*/true, /*reliable=*/false);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["surfaced_faults"] = static_cast<double>(r.faults);
}
BENCHMARK(BM_FaultsUnreliable);

void BM_FaultsReliable(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(/*with_faults=*/true, /*reliable=*/true);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["retries"] = static_cast<double>(r.retries);
}
BENCHMARK(BM_FaultsReliable);

void emit_summary() {
    const RunResult baseline = run_workload(false, false);
    const RunResult unreliable = run_workload(true, false);
    const RunResult reliable = run_workload(true, true);
    const RunResult again = run_workload(true, true);

    bench::JsonSummary("E10")
        .add("clients", std::uint64_t{kClients})
        .add("calls_per_client", std::uint64_t{kCallsPerClient})
        .add("drop_rate", kDropRate)
        .add("partition_us", kPartitionUs)
        .add("faultfree_makespan_us", baseline.makespan_us)
        .add("unreliable_makespan_us", unreliable.makespan_us)
        .add("unreliable_surfaced_faults", std::uint64_t{unreliable.faults})
        .add("reliable_makespan_us", reliable.makespan_us)
        .add("reliable_surfaced_faults", std::uint64_t{reliable.faults})
        .add("reliable_recovered_tasks", std::uint64_t{reliable.recovered})
        .add("reliable_retries", reliable.retries)
        .add("reply_loss_retries", reliable.reply_loss_retries)
        .add("dedup_hits", reliable.dedup_hits)
        .add("executions", static_cast<std::uint64_t>(reliable.executions))
        .add("exactly_once",
             std::uint64_t{reliable.faults == 0 &&
                           reliable.executions ==
                               static_cast<std::int64_t>(reliable.tasks) &&
                           reliable.dedup_hits == reliable.reply_loss_retries})
        .add("reliability_cost",
             static_cast<double>(reliable.makespan_us) /
                 static_cast<double>(baseline.makespan_us ? baseline.makespan_us : 1))
        .add("latency_p50_us", reliable.latency_p50_us)
        .add("latency_p95_us", reliable.latency_p95_us)
        .add("latency_p99_us", reliable.latency_p99_us)
        .add("faultfree_latency_p99_us", baseline.latency_p99_us)
        .add_raw("traffic_matrix", reliable.traffic_matrix)
        .add("deterministic",
             std::uint64_t{reliable.makespan_us == again.makespan_us &&
                           reliable.retries == again.retries &&
                           reliable.dedup_hits == again.dedup_hits &&
                           reliable.latency_p99_us == again.latency_p99_us &&
                           reliable.traffic_matrix == again.traffic_matrix})
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E10: reliable RPC under scheduled faults ===\n");
    std::printf(
        "expected shape: with ~8%% loss plus a 20ms partition, the legacy policy\n"
        "surfaces RemoteFaults; retries+dedup complete every task with zero surfaced\n"
        "faults and zero duplicate executions (dedup hits == reply-loss retries),\n"
        "paying a modest virtual-time premium; identical numbers on every run.\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
