// E9 — concurrent multi-client serving (RAFDA follow-ups: the runtime as
// a *server* mediating many clients).
//
// N client nodes each drive K Service.work calls against one server node
// over RMI.  Under the event-sequenced virtual-time model (per-node
// clocks + per-link channel occupancy, DESIGN.md §13) the clients overlap
// everywhere except where the model says they must contend: the server's
// clock (decode + dispatch + encode serialize there) and any shared
// links.  The headline number is the *overlap speedup*: N clients finish
// in far less than N× the single-client makespan.
//
// Everything is virtual time from the seeded simulation, so the summary
// is bit-for-bit reproducible; the bench itself verifies determinism by
// running the contended configuration twice.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"

namespace {

using namespace rafda;
using vm::Value;

struct RunResult {
    std::uint64_t makespan_us = 0;
    std::uint64_t server_in_busy_us = 0;   // occupancy of the client->server links
    std::int64_t utilization_ppm = 0;      // busiest inbound link utilization
    std::size_t tasks = 0;
    std::uint64_t latency_p50_us = 0;  // exact per-task virtual latency
    std::uint64_t latency_p95_us = 0;
    std::uint64_t latency_p99_us = 0;
    std::string traffic_matrix;  // per-(class, src, dst) calls + bytes
    std::string windows;         // time-windowed counter deltas
};

/// N clients (nodes 1..N) × `calls` work() invocations against the
/// server (node 0).  `window_us` > 0 turns on windowed delta collection.
RunResult run_clients(int n_clients, int calls, std::uint64_t window_us = 0) {
    model::ClassPool pool = bench::assemble_app(bench::kServiceApp);
    runtime::System system(pool);
    runtime::Node& server = system.add_node();
    (void)server;
    for (int k = 0; k < n_clients; ++k) system.add_node();
    system.policy().set_instance_home("Service", 0, "RMI");

    runtime::WorkloadDriver driver(system);
    driver.set_window_us(window_us);
    for (int k = 1; k <= n_clients; ++k) {
        const auto client = static_cast<net::NodeId>(k);
        Value svc = system.construct(client, "Service", "()V");
        driver.add_client(client, static_cast<std::size_t>(calls),
                          [svc](runtime::System& sys, net::NodeId node) {
                              sys.node(node).interp().call_virtual(
                                  svc, "work", "(J)J", {Value::of_long(1)});
                          });
    }
    runtime::WorkloadDriver::Report report = driver.run();

    RunResult r;
    r.makespan_us = report.makespan_us;
    r.tasks = report.tasks_run;
    r.latency_p50_us = report.latency_p50_us;
    r.latency_p95_us = report.latency_p95_us;
    r.latency_p99_us = report.latency_p99_us;
    r.traffic_matrix = bench::traffic_matrix_json(system);
    r.windows = bench::windows_json(report);
    obs::Snapshot snap = system.metrics().snapshot();
    for (int k = 1; k <= n_clients; ++k) {
        const std::string prefix = "net.link." + std::to_string(k) + ".0.";
        r.server_in_busy_us += snap.counter_value(prefix + "busy_us");
        const obs::Sample* util = snap.find(prefix + "utilization_ppm");
        if (util && util->gauge > r.utilization_ppm) r.utilization_ppm = util->gauge;
    }
    return r;
}

void BM_Clients(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    RunResult r;
    for (auto _ : state) r = run_clients(n, 32);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["per_call_us"] =
        static_cast<double>(r.makespan_us) / static_cast<double>(r.tasks ? r.tasks : 1);
}
BENCHMARK(BM_Clients)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void emit_summary() {
    constexpr int kClients = 8;
    constexpr int kCalls = 64;
    constexpr std::uint64_t kWindowUs = 10'000;
    const RunResult single = run_clients(1, kCalls);
    const RunResult many = run_clients(kClients, kCalls, kWindowUs);
    const RunResult again = run_clients(kClients, kCalls, kWindowUs);

    const double naive_serial =
        static_cast<double>(kClients) * static_cast<double>(single.makespan_us);
    bench::JsonSummary("E9")
        .add("clients", std::uint64_t{kClients})
        .add("calls_per_client", std::uint64_t{kCalls})
        .add("single_makespan_us", single.makespan_us)
        .add("concurrent_makespan_us", many.makespan_us)
        .add("naive_serial_us", naive_serial)
        .add("overlap_speedup",
             naive_serial / static_cast<double>(many.makespan_us ? many.makespan_us : 1))
        .add("server_inbound_busy_us", many.server_in_busy_us)
        .add("max_inbound_utilization_ppm",
             static_cast<std::uint64_t>(many.utilization_ppm))
        .add("latency_p50_us", many.latency_p50_us)
        .add("latency_p95_us", many.latency_p95_us)
        .add("latency_p99_us", many.latency_p99_us)
        .add_raw("traffic_matrix", many.traffic_matrix)
        .add_raw("windows", many.windows)
        .add("deterministic",
             std::uint64_t{many.makespan_us == again.makespan_us &&
                           many.server_in_busy_us == again.server_in_busy_us &&
                           many.latency_p99_us == again.latency_p99_us &&
                           many.traffic_matrix == again.traffic_matrix &&
                           many.windows == again.windows})
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E9: concurrent multi-client serving ===\n");
    std::printf(
        "expected shape: N clients vs one server finish in much less than N x the\n"
        "single-client makespan (only server-side codec/dispatch work serializes);\n"
        "inbound link utilization nonzero; identical numbers on every run (seeded).\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
