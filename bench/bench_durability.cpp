// E15 — durable nodes: WAL replay vs soft state under a mid-run crash
// (DESIGN.md §20).
//
// One engineered incident: a client's call executes on the server but the
// reply path is down, so the client retries; before the retry lands the
// server crashes and restarts.  Soft state loses the reply cache with the
// node, so the post-restart retry re-executes — a duplicate the client
// cannot see.  A durable node replays its WAL (snapshot + log) on restart
// and the recovered reply cache answers the retry: executions == tasks,
// exactly-once across the crash it used to die on.  The third arm rebuilds
// the crashed server's image on a *different* live node
// (migration-by-recovery) and checks per-call results against an uncrashed
// baseline.  Everything derives from the seeded simulation, so the summary
// is bit-for-bit reproducible; determinism is verified by running the
// durable configuration twice.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"

namespace {

using namespace rafda;
using vm::Value;

/// Service with an exact execution counter, so duplicate executions from
/// a reply-loss retry against a restarted server are directly observable.
constexpr const char* kDurableApp = R"RIR(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (J)J {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    const 2L
    mul
    returnvalue
  }
  method calls ()I {
    load 0
    getfield Service.calls I
    returnvalue
  }
}
)RIR";

constexpr int kCalls = 48;
constexpr std::uint64_t kReplyDownUs = 2'000;
constexpr std::uint64_t kCrashFromUs = 1'000;
constexpr std::uint64_t kCrashUntilUs = 4'000;
constexpr std::uint64_t kSnapshotIntervalUs = 1'000;

struct RunResult {
    std::uint64_t makespan_us = 0;
    std::size_t tasks = 0;
    std::size_t faults = 0;
    std::uint64_t retries = 0;
    std::uint64_t dedup_hits = 0;
    std::int64_t executions = 0;  // Service.work calls observed server-side
    std::uint64_t wal_records = 0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t wal_snapshots = 0;
    std::uint64_t wal_recoveries = 0;
    std::uint64_t event_order_digest = 0;
    std::string traffic_matrix;
};

/// The crash-and-restart arm: server node 0, client node 1.  The client's
/// first in-driver call executes but its reply is dropped (reply-path
/// LinkDown); the server crashes before the surviving retry lands.
RunResult run_crash_workload(bool durable) {
    model::ClassPool pool = bench::assemble_app(kDurableApp);
    runtime::SystemOptions options;
    options.network_seed = 11;
    options.reliability.attempts = 12;
    options.reliability.backoff_base_us = 200;
    options.reliability.backoff_multiplier = 2.0;
    options.reliability.backoff_cap_us = 30'000;
    options.reliability.dedup = true;
    options.durability.enabled = durable;
    options.durability.snapshot_interval_us = kSnapshotIntervalUs;
    runtime::System system(pool, options);
    system.add_node();  // 0: server — crashes mid-incident
    system.add_node();  // 1: client
    system.policy().set_instance_home("Service", 0, "RMI");

    Value svc = system.construct(1, "Service", "()V");

    // Windows are anchored to the client's clock, i.e. to its first
    // in-driver call: the call executes (crash opens later), its reply is
    // dropped (reply path down), and the retry that outlives the crash
    // window meets a freshly restarted server.
    const std::uint64_t t0 = system.node(1).clock_us();
    net::FaultWindow reply_down;
    reply_down.kind = net::FaultKind::LinkDown;
    reply_down.src = 0;
    reply_down.dst = 1;
    reply_down.from_us = t0;
    reply_down.until_us = t0 + kReplyDownUs;
    system.network().fault_plan().add(reply_down);
    net::FaultWindow crash;
    crash.kind = net::FaultKind::NodeCrash;
    crash.node = 0;
    crash.from_us = t0 + kCrashFromUs;
    crash.until_us = t0 + kCrashUntilUs;
    system.network().fault_plan().add(crash);

    runtime::WorkloadDriver driver(system);
    driver.add_client(1, kCalls, [svc](runtime::System& sys, net::NodeId node) {
        sys.node(node).interp().call_virtual(svc, "work", "(J)J",
                                             {Value::of_long(1)});
    });
    runtime::WorkloadDriver::Report report = driver.run();

    RunResult r;
    r.makespan_us = report.makespan_us;
    r.tasks = report.tasks_run;
    r.faults = report.faults;
    r.event_order_digest = report.event_order_digest;
    r.retries = system.metrics().counter("rpc.retries").value();
    r.dedup_hits = system.metrics().counter("rpc.dedup_hits").value();
    r.traffic_matrix = bench::traffic_matrix_json(system);
    if (r.faults == 0)
        r.executions = system.node(1)
                           .interp()
                           .call_virtual(svc, "calls", "()I")
                           .as_int();
    if (durable) {
        const runtime::Wal* wal = system.node(0).wal();
        r.wal_records = wal->stats().records;
        r.wal_bytes = wal->log().size() + wal->snapshot().size();
        r.wal_snapshots = wal->stats().snapshots;
        r.wal_recoveries = wal->stats().recoveries;
    }
    return r;
}

struct RelocationResult {
    std::vector<std::int64_t> results;
    std::size_t faults = 0;
    std::size_t restored = 0;
};

/// The migration-by-recovery arm: half the calls land on the original
/// server, then it dies for good and its image is rebuilt on node 2; the
/// remaining calls ride the repointed proxies.  Per-call results must
/// match an uncrashed run exactly.
RelocationResult run_relocation_workload(bool crash) {
    model::ClassPool pool = bench::assemble_app(kDurableApp);
    runtime::SystemOptions options;
    options.network_seed = 11;
    options.durability.enabled = true;
    options.durability.snapshot_interval_us = kSnapshotIntervalUs;
    runtime::System system(pool, options);
    system.add_node();  // 0: client
    system.add_node();  // 1: server — dies for good in the crash arm
    system.add_node();  // 2: recovery target
    system.policy().set_instance_home("Service", 1, "RMI");

    Value svc = system.construct(0, "Service", "()V");
    RelocationResult r;
    for (int k = 0; k < kCalls; ++k) {
        if (crash && k == kCalls / 2) {
            net::FaultWindow w;
            w.kind = net::FaultKind::NodeCrash;
            w.node = 1;
            w.from_us = system.node(0).clock_us();
            w.until_us = ~0ULL;
            system.network().fault_plan().add(w);
            r.restored = system.recover_node_onto(1, 2);
        }
        try {
            r.results.push_back(
                system.node(0)
                    .interp()
                    .call_virtual(svc, "work", "(J)J", {Value::of_long(k)})
                    .as_long());
        } catch (const vm::GuestException&) {
            ++r.faults;
        }
    }
    return r;
}

void BM_SoftCrash(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_crash_workload(/*durable=*/false);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["executions"] = static_cast<double>(r.executions);
}
BENCHMARK(BM_SoftCrash);

void BM_DurableCrash(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_crash_workload(/*durable=*/true);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["executions"] = static_cast<double>(r.executions);
    state.counters["wal_bytes"] = static_cast<double>(r.wal_bytes);
}
BENCHMARK(BM_DurableCrash);

void emit_summary() {
    const RunResult soft = run_crash_workload(/*durable=*/false);
    const RunResult durable = run_crash_workload(/*durable=*/true);
    const RunResult again = run_crash_workload(/*durable=*/true);
    const RelocationResult baseline = run_relocation_workload(/*crash=*/false);
    const RelocationResult relocated = run_relocation_workload(/*crash=*/true);

    const std::int64_t tasks = static_cast<std::int64_t>(durable.tasks);
    bench::JsonSummary("E15")
        .add("calls", std::uint64_t{kCalls})
        .add("reply_down_us", kReplyDownUs)
        .add("crash_from_us", kCrashFromUs)
        .add("crash_until_us", kCrashUntilUs)
        .add("snapshot_interval_us", kSnapshotIntervalUs)
        .add("soft_makespan_us", soft.makespan_us)
        .add("soft_surfaced_faults", std::uint64_t{soft.faults})
        .add("soft_executions", static_cast<std::uint64_t>(soft.executions))
        .add("soft_duplicates",
             static_cast<std::uint64_t>(soft.executions - tasks))
        .add("durable_makespan_us", durable.makespan_us)
        .add("durable_surfaced_faults", std::uint64_t{durable.faults})
        .add("durable_executions", static_cast<std::uint64_t>(durable.executions))
        .add("durable_dedup_hits", durable.dedup_hits)
        .add("durable_retries", durable.retries)
        .add("exactly_once", std::uint64_t{durable.faults == 0 &&
                                           durable.executions == tasks})
        .add("wal_records", durable.wal_records)
        .add("wal_bytes", durable.wal_bytes)
        .add("wal_snapshots", durable.wal_snapshots)
        .add("wal_recoveries", durable.wal_recoveries)
        .add("relocated_objects", std::uint64_t{relocated.restored})
        .add("relocation_surfaced_faults", std::uint64_t{relocated.faults})
        .add("relocation_match",
             std::uint64_t{relocated.faults == 0 && baseline.faults == 0 &&
                           relocated.results == baseline.results})
        .add("event_order_digest", durable.event_order_digest)
        .add_raw("traffic_matrix", durable.traffic_matrix)
        .add("deterministic",
             std::uint64_t{durable.makespan_us == again.makespan_us &&
                           durable.executions == again.executions &&
                           durable.dedup_hits == again.dedup_hits &&
                           durable.event_order_digest ==
                               again.event_order_digest &&
                           durable.traffic_matrix == again.traffic_matrix})
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E15: durable nodes — WAL replay vs soft state ===\n");
    std::printf(
        "expected shape: a reply-loss retry that outlives a server crash\n"
        "re-executes on a soft-state node (executions = tasks + duplicates) but\n"
        "dedup-hits the WAL-recovered reply cache on a durable one (executions ==\n"
        "tasks); migration-by-recovery rebuilds the dead server on another node\n"
        "with per-call results identical to an uncrashed run; identical numbers\n"
        "on every run.\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
