// E12 — per-link call batching + pipelining on a skewed workload
// (DESIGN.md §17).
//
// Two pipelined clients drive a skewed call mix (one issues 3x the other's
// volume) against one server over slow, thin links.  The same seeded
// schedule runs twice: per-call framing, then with batching on, so
// pipelined requests that catch the link busy coalesce into the in-flight
// frame.  The headline numbers are wire bytes per call (entries drop the
// per-frame header, the src field and most of the request id), the
// server's inbound-link busy time (coalesced entries share one
// propagation window), and the virtual-time makespan — with *identical*
// per-call results, verified value by value.  A third run stacks the E10
// fault plan (8% loss both ways, retries + dedup) on top of batching to
// show exactly-once semantics survive coalescing, and the batched
// configuration runs twice to pin bit-for-bit determinism from the seed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"

namespace {

using namespace rafda;
using vm::Value;

constexpr const char* kBatchApp = R"RIR(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (J)J {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    const 2L
    mul
    returnvalue
  }
  method calls ()I {
    load 0
    getfield Service.calls I
    returnvalue
  }
}
)RIR";

constexpr int kHeavyCalls = 96;  // client 1: the hot talker
constexpr int kLightCalls = 32;  // client 2: background traffic
constexpr std::size_t kPipelineDepth = 8;
constexpr double kDropRate = 0.08;

struct RunResult {
    std::uint64_t makespan_us = 0;
    std::size_t tasks = 0;
    std::size_t faults = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t messages = 0;           // full frames
    std::uint64_t coalesced = 0;          // batch-entry continuations
    std::uint64_t inbound_busy_us = 0;    // client->server links
    std::uint64_t batch_frames = 0;
    std::uint64_t batch_coalesced = 0;
    std::uint64_t batch_entry_bytes = 0;
    std::uint64_t latency_saved_us = 0;
    std::uint64_t retries = 0;
    std::uint64_t reply_loss_retries = 0;
    std::uint64_t dedup_hits = 0;
    std::int64_t executions = 0;
    std::vector<std::int64_t> results;    // per-call return values, in order
    std::string traffic_matrix;
};

RunResult run_workload(bool batched, bool with_faults) {
    model::ClassPool pool = bench::assemble_app(kBatchApp);
    runtime::SystemOptions options;
    options.network_seed = 11;
    // Slow WAN-ish links: 400us propagation, 25 bytes/us.  Pipelined
    // requests overlap on the wire, which is the shape batching coalesces.
    options.default_link = net::LinkParams{400, 25.0, 0.0};
    options.batching.enabled = batched;
    if (with_faults) {
        options.reliability.attempts = 12;
        options.reliability.backoff_base_us = 200;
        options.reliability.backoff_multiplier = 2.0;
        options.reliability.backoff_cap_us = 30'000;
        options.reliability.dedup = true;
    }
    runtime::System system(pool, options);
    system.add_node();  // 0: server
    system.add_node();  // 1: heavy client
    system.add_node();  // 2: light client
    system.policy().set_instance_home("Service", 0, "RMI");

    std::vector<Value> services;
    for (int k = 1; k <= 2; ++k)
        services.push_back(
            system.construct(static_cast<net::NodeId>(k), "Service", "()V"));

    if (with_faults) {
        std::uint64_t t0 = 0;
        for (int k = 1; k <= 2; ++k)
            t0 = std::max(t0, system.node(static_cast<net::NodeId>(k)).clock_us());
        for (int k = 1; k <= 2; ++k) {
            for (bool inbound : {false, true}) {
                net::FaultWindow w;
                w.kind = net::FaultKind::DropRate;
                w.src = inbound ? 0 : static_cast<net::NodeId>(k);
                w.dst = inbound ? static_cast<net::NodeId>(k) : 0;
                w.from_us = t0;
                w.until_us = ~0ULL;
                w.drop_probability = kDropRate;
                system.network().fault_plan().add(w);
            }
        }
    }

    RunResult r;
    runtime::WorkloadDriver driver(system);
    driver.set_pipeline_depth(kPipelineDepth);
    for (int k = 1; k <= 2; ++k) {
        Value svc = services[static_cast<std::size_t>(k - 1)];
        std::vector<runtime::WorkloadDriver::Task> tasks;
        const int calls = k == 1 ? kHeavyCalls : kLightCalls;
        for (int c = 0; c < calls; ++c)
            tasks.push_back([svc, c, &r](runtime::System& sys, net::NodeId node) {
                Value v = sys.node(node).interp().call_virtual(
                    svc, "work", "(J)J", {Value::of_long(c + 1)});
                r.results.push_back(v.as_long());
            });
        driver.add_client(static_cast<net::NodeId>(k), std::move(tasks));
    }
    runtime::WorkloadDriver::Report report = driver.run();

    r.makespan_us = report.makespan_us;
    r.tasks = report.tasks_run;
    r.faults = report.faults;
    net::LinkStats total = system.network().total_stats();
    r.wire_bytes = total.bytes;
    r.messages = total.messages;
    r.coalesced = total.coalesced;
    for (int k = 1; k <= 2; ++k)
        r.inbound_busy_us +=
            system.network().stats(static_cast<net::NodeId>(k), 0).busy_us;
    r.batch_frames = system.metrics().counter("rpc.batch.frames").value();
    r.batch_coalesced = system.metrics().counter("rpc.batch.coalesced").value();
    r.batch_entry_bytes = system.metrics().counter("rpc.batch.entry_bytes").value();
    r.latency_saved_us =
        system.metrics().counter("rpc.batch.latency_saved_us").value();
    r.retries = system.metrics().counter("rpc.retries").value();
    r.reply_loss_retries =
        system.metrics().counter("rpc.retries_reply_loss").value();
    r.dedup_hits = system.metrics().counter("rpc.dedup_hits").value();
    r.traffic_matrix = bench::traffic_matrix_json(system);
    if (r.faults == 0)
        for (int k = 1; k <= 2; ++k)
            r.executions += system.node(static_cast<net::NodeId>(k))
                                .interp()
                                .call_virtual(services[static_cast<std::size_t>(k - 1)],
                                              "calls", "()I")
                                .as_int();
    return r;
}

void BM_Unbatched(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(/*batched=*/false, /*with_faults=*/false);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["wire_bytes"] = static_cast<double>(r.wire_bytes);
}
BENCHMARK(BM_Unbatched);

void BM_Batched(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(/*batched=*/true, /*with_faults=*/false);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["wire_bytes"] = static_cast<double>(r.wire_bytes);
    state.counters["coalesced"] = static_cast<double>(r.batch_coalesced);
}
BENCHMARK(BM_Batched);

void BM_BatchedFaulty(benchmark::State& state) {
    RunResult r;
    for (auto _ : state) r = run_workload(/*batched=*/true, /*with_faults=*/true);
    state.counters["makespan_us"] = static_cast<double>(r.makespan_us);
    state.counters["retries"] = static_cast<double>(r.retries);
}
BENCHMARK(BM_BatchedFaulty);

void emit_summary() {
    const RunResult plain = run_workload(false, false);
    const RunResult batched = run_workload(true, false);
    const RunResult again = run_workload(true, false);
    const RunResult faulty = run_workload(true, true);

    const std::size_t calls = plain.tasks;
    auto per_call = [calls](std::uint64_t bytes) {
        return static_cast<double>(bytes) /
               static_cast<double>(calls ? calls : 1);
    };

    bench::JsonSummary("E12")
        .add("tasks", std::uint64_t{calls})
        .add("pipeline_depth", std::uint64_t{kPipelineDepth})
        .add("unbatched_makespan_us", plain.makespan_us)
        .add("batched_makespan_us", batched.makespan_us)
        .add("unbatched_wire_bytes", plain.wire_bytes)
        .add("batched_wire_bytes", batched.wire_bytes)
        .add("unbatched_wire_bytes_per_call", per_call(plain.wire_bytes))
        .add("batched_wire_bytes_per_call", per_call(batched.wire_bytes))
        .add("unbatched_inbound_busy_us", plain.inbound_busy_us)
        .add("batched_inbound_busy_us", batched.inbound_busy_us)
        .add("unbatched_messages", plain.messages)
        .add("batched_messages", batched.messages)
        .add("batch_frames", batched.batch_frames)
        .add("batch_coalesced", batched.batch_coalesced)
        .add("batch_entry_bytes", batched.batch_entry_bytes)
        .add("latency_saved_us", batched.latency_saved_us)
        .add("identical_results",
             std::uint64_t{plain.results == batched.results &&
                           batched.executions ==
                               static_cast<std::int64_t>(calls)})
        .add("deterministic",
             std::uint64_t{batched.makespan_us == again.makespan_us &&
                           batched.wire_bytes == again.wire_bytes &&
                           batched.batch_coalesced == again.batch_coalesced &&
                           batched.results == again.results &&
                           batched.traffic_matrix == again.traffic_matrix})
        .add("faulty_surfaced_faults", std::uint64_t{faulty.faults})
        .add("faulty_retries", faulty.retries)
        .add("faulty_exactly_once",
             std::uint64_t{faulty.faults == 0 &&
                           faulty.executions ==
                               static_cast<std::int64_t>(faulty.tasks) &&
                           faulty.dedup_hits == faulty.reply_loss_retries})
        .add_raw("traffic_matrix", batched.traffic_matrix)
        .emit();
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== E12: per-link batching on a skewed pipelined workload ===\n");
    std::printf(
        "expected shape: with batching on, pipelined calls that catch a busy link\n"
        "coalesce into the in-flight frame — fewer wire bytes per call, less busy\n"
        "time on the server's inbound links, smaller makespan, byte-identical\n"
        "per-call results; exactly-once still holds under the E10 fault plan.\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    emit_summary();
    return 0;
}
