// self_optimizing — closing the paper's loop: the middleware *observes* who
// talks to whom, *decides* new placements (PolicyAdvisor), and *acts* by
// migrating the live objects.  No application change, no operator.
//
// Deployment starts wrong on purpose: the three services live on node 2
// while all the callers are on node 0.  After one observation window the
// advisor recommends moving every hot class to node 0; the loop applies the
// recommendations and migrates the existing instances.  The next window
// costs (almost) nothing.
#include <iomanip>
#include <iostream>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/advisor.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace {

constexpr const char* kApp = R"RIR(
class Catalog {
  field items I
  ctor ()V {
    return
  }
  method count ()I {
    load 0
    load 0
    getfield Catalog.items I
    const 1
    add
    putfield Catalog.items I
    load 0
    getfield Catalog.items I
    returnvalue
  }
}
class Pricer {
  ctor ()V {
    return
  }
  method quote (I)I {
    load 1
    const 3
    mul
    returnvalue
  }
}
class Audit {
  field entries I
  ctor ()V {
    return
  }
  method log ()V {
    load 0
    load 0
    getfield Audit.entries I
    const 1
    add
    putfield Audit.entries I
    return
  }
}
)RIR";

}  // namespace

int main() {
    using namespace rafda;
    using vm::Value;

    model::ClassPool original;
    vm::install_prelude(original);
    model::assemble_into(original, kApp);
    model::verify_pool(original);

    runtime::System system(original);
    system.add_node();  // node 0: the web tier (all the callers)
    system.add_node();  // node 1: spare
    system.add_node();  // node 2: where everything was (mis)deployed

    for (const char* cls : {"Catalog", "Pricer", "Audit"})
        system.policy().set_instance_home(cls, 2, "RMI");

    Value catalog = system.construct(0, "Catalog", "()V");
    Value pricer = system.construct(0, "Pricer", "()V");
    Value audit = system.construct(0, "Audit", "()V");
    vm::Interpreter& web = system.node(0).interp();

    auto window = [&](int requests) {
        std::uint64_t t0 = system.network().now_us();
        for (int r = 0; r < requests; ++r) {
            web.call_virtual(catalog, "count", "()I");
            web.call_virtual(pricer, "quote", "(I)I", {Value::of_int(r)});
            web.call_virtual(audit, "log", "()V");
        }
        return system.network().now_us() - t0;
    };

    std::cout << "window 1 (everything on node 2, callers on node 0): "
              << window(25) << "us\n\n";

    runtime::PolicyAdvisor advisor(system, /*min_calls=*/10, /*min_dominance=*/0.6);
    std::vector<runtime::Recommendation> recs = advisor.advise();
    std::cout << "advisor recommendations (observed " << recs.size() << " hot classes):\n";
    for (const auto& r : recs)
        std::cout << "  move " << r.cls << ": node " << r.objects_on << " -> node "
                  << r.recommended_home << "  (" << r.remote_calls << " remote calls, "
                  << std::fixed << std::setprecision(0) << 100 * r.dominance
                  << "% from one node)\n";

    // Act: new placements for future objects, migration for the live ones.
    advisor.apply(recs);
    for (Value* obj : {&catalog, &pricer, &audit}) {
        auto [n, oid] = system.resolve_terminal(0, obj->as_ref());
        if (n != 0) {
            system.migrate_instance(n, oid, 0, "RMI");
            system.shorten_chain(0, obj->as_ref());
        }
    }
    std::cout << "\napplied + migrated " << system.migrations() << " objects\n";

    std::cout << "window 2 (after self-optimisation):                  "
              << window(25) << "us\n";
    std::cout << "\nsame objects, same references, same code — the distribution\n"
                 "boundary moved itself to where the traffic is.\n";
    return 0;
}
