// transform_inspect — reproduces the paper's worked example as output.
//
// Feeds Figure 2's class X (with companions Y and Z) through the pipeline
// and prints the generated artefacts: X_O_Int / X_O_Local / proxies
// (Figure 3), X_C_Int / X_C_Local / proxies (Figure 4) and both factories
// (Figure 5), in RIR assembly.
#include <iostream>

#include "model/assembler.hpp"
#include "model/printer.hpp"
#include "model/verifier.hpp"
#include "transform/pipeline.hpp"
#include "vm/prelude.hpp"

namespace {

constexpr const char* kFigure2 = R"(
class Y {
  static field K LY;
  field seed J
  ctor (J)V {
    load 0
    load 1
    putfield Y.seed J
    return
  }
  method n (J)I {
    load 0
    getfield Y.seed J
    load 1
    add
    conv I
    returnvalue
  }
  clinit {
    new Y
    dup
    const 100L
    invokespecial Y.<init> (J)V
    putstatic Y.K LY;
    return
  }
}
class Z {
  field y LY;
  ctor (LY;)V {
    load 0
    load 1
    putfield Z.y LY;
    return
  }
  method q (I)I {
    load 1
    returnvalue
  }
}
class X {
  field private y LY;
  static field final z LZ;
  ctor (LY;)V {
    load 0
    load 1
    putfield X.y LY;
    return
  }
  protected method m (J)I {
    load 0
    getfield X.y LY;
    load 1
    invokevirtual Y.n (J)I
    returnvalue
  }
  static method p (I)I {
    getstatic X.z LZ;
    load 0
    invokevirtual Z.q (I)I
    returnvalue
  }
  clinit {
    new Z
    dup
    getstatic Y.K LY;
    invokespecial Z.<init> (LY;)V
    putstatic X.z LZ;
    return
  }
}
)";

}  // namespace

int main() {
    using namespace rafda;

    model::ClassPool original;
    vm::install_prelude(original);
    model::assemble_into(original, kFigure2);
    model::verify_pool(original);

    std::cout << "=== Input: the paper's Figure 2 sample class X ===\n\n"
              << model::print_class(original.get("X")) << "\n";

    transform::PipelineResult result = transform::run_pipeline(original);

    std::cout << "=== Figure 3: instance members transformation ===\n\n";
    for (const char* name : {"X_O_Int", "X_O_Local", "X_O_Proxy_SOAP", "X_O_Proxy_RMI"})
        std::cout << model::print_class(result.pool.get(name)) << "\n";

    std::cout << "=== Figure 4: static members transformation ===\n\n";
    for (const char* name : {"X_C_Int", "X_C_Local", "X_C_Proxy_RMI", "X_C_Proxy_SOAP"})
        std::cout << model::print_class(result.pool.get(name)) << "\n";

    std::cout << "=== Figure 5: factories ===\n\n";
    for (const char* name : {"X_O_Factory", "X_C_Factory"})
        std::cout << model::print_class(result.pool.get(name)) << "\n";

    const auto& analysis = result.report.analysis();
    std::cout << "=== Analysis summary ===\n"
              << "classes: " << analysis.total()
              << ", substituted: " << result.report.substituted_classes().size()
              << ", non-transformable: " << analysis.non_transformable_count()
              << " (prelude natives/specials)\n";
    return 0;
}
