// Quickstart — the RAFDA workflow end to end:
//
//   1. write an ordinary, non-distributed guest program (RIR assembly);
//   2. hand it to the middleware, which transforms it automatically;
//   3. run it in one address space — output X;
//   4. change ONLY the distribution policy and run the identical program
//      across two address spaces — output X again, now with real remote
//      calls underneath.
//
// No line of the application mentions distribution; that is the paper's
// point.
#include <iostream>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace {

// A small order-processing app.  Note: plain classes, plain `new`, plain
// field access and static members — nothing distribution-aware.
constexpr const char* kApp = R"RIR(
class Inventory {
  field stock I
  ctor (I)V {
    load 0
    load 1
    putfield Inventory.stock I
    return
  }
  method reserve (I)Z {
    load 0
    getfield Inventory.stock I
    load 1
    cmpge
    iffalse Fail
    load 0
    load 0
    getfield Inventory.stock I
    load 1
    sub
    putfield Inventory.stock I
    const true
    returnvalue
  Fail:
    const false
    returnvalue
  }
  method remaining ()I {
    load 0
    getfield Inventory.stock I
    returnvalue
  }
}
class OrderDesk {
  field inv LInventory;
  static field processed I
  ctor (LInventory;)V {
    load 0
    load 1
    putfield OrderDesk.inv LInventory;
    return
  }
  method place (I)S {
    load 0
    getfield OrderDesk.inv LInventory;
    load 1
    invokevirtual Inventory.reserve (I)Z
    iffalse Rejected
    getstatic OrderDesk.processed I
    const 1
    add
    putstatic OrderDesk.processed I
    const "ok("
    load 1
    concat
    const ")"
    concat
    returnvalue
  Rejected:
    const "rejected("
    load 1
    concat
    const ")"
    concat
    returnvalue
  }
}
class Main {
  static method main ()V {
    locals 2
    new Inventory
    dup
    const 10
    invokespecial Inventory.<init> (I)V
    store 0
    new OrderDesk
    dup
    load 0
    invokespecial OrderDesk.<init> (LInventory;)V
    store 1
    load 1
    const 4
    invokevirtual OrderDesk.place (I)S
    invokestatic Sys.println (S)V
    load 1
    const 5
    invokevirtual OrderDesk.place (I)S
    invokestatic Sys.println (S)V
    load 1
    const 5
    invokevirtual OrderDesk.place (I)S
    invokestatic Sys.println (S)V
    const "left="
    load 0
    invokevirtual Inventory.remaining ()I
    concat
    const " processed="
    concat
    getstatic OrderDesk.processed I
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)RIR";

void run(bool distribute) {
    using namespace rafda;

    model::ClassPool original;
    vm::install_prelude(original);
    model::assemble_into(original, kApp);
    model::verify_pool(original);

    runtime::System system(original);
    system.add_node();
    system.add_node();

    if (distribute) {
        // The ONLY difference between the two runs: inventory objects live
        // on node 1, spoken to over the RMI-like protocol.
        system.policy().set_instance_home("Inventory", 1, "RMI");
    }

    system.call_static(0, "Main", "main", "()V");
    std::cout << system.node(0).interp().output();

    auto stats = system.remote_stats();
    if (stats.empty()) {
        std::cout << "  (no remote traffic: everything ran in one address space)\n";
    } else {
        for (const auto& [proto, s] : stats)
            std::cout << "  (" << proto << ": " << s.calls << " remote calls, "
                      << s.request_bytes + s.reply_bytes << " bytes, virtual time "
                      << system.network().now_us() << "us)\n";
    }
}

}  // namespace

int main() {
    std::cout << "=== run 1: single address space ===\n";
    run(false);
    std::cout << "\n=== run 2: same program, Inventory remote on node 1 ===\n";
    run(true);
    std::cout << "\nIdentical application output; only the policy changed.\n";
    return 0;
}
