// policy_deployment — distribution captured as configuration, not code.
//
// The same transformed order-processing program is deployed three times
// from three *textual* policy descriptions (the paper's long-term goal of
// "capturing distribution policy"): all-local, split across two nodes over
// RMI, and split over SOAP with a slow lossy link.  The application output
// is identical each time; the cost profile is not.
#include <iostream>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/policy_config.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace {

constexpr const char* kApp = R"RIR(
class Ledger {
  field balance J
  ctor (J)V {
    load 0
    load 1
    putfield Ledger.balance J
    return
  }
  method post (J)J {
    load 0
    load 0
    getfield Ledger.balance J
    load 1
    add
    putfield Ledger.balance J
    load 0
    getfield Ledger.balance J
    returnvalue
  }
}
class Teller {
  field ledger LLedger;
  ctor (LLedger;)V {
    load 0
    load 1
    putfield Teller.ledger LLedger;
    return
  }
  method day ()J {
    locals 2
    const 0
    store 1
  Top:
    load 1
    const 10
    cmpge
    iftrue Done
    load 0
    getfield Teller.ledger LLedger;
    load 1
    const 100
    mul
    conv J
    invokevirtual Ledger.post (J)J
    pop
    load 1
    const 1
    add
    store 1
    goto Top
  Done:
    load 0
    getfield Teller.ledger LLedger;
    const 0L
    invokevirtual Ledger.post (J)J
    returnvalue
  }
}
)RIR";

constexpr const char* kDeployLocal = R"(
# development: one box
protocol default RMI
)";

constexpr const char* kDeploySplitRmi = R"(
# production: ledger on the database node, binary protocol
protocol default RMI
instance Ledger on 1
link 0 -> 1 latency 120
link 1 -> 0 latency 120
)";

constexpr const char* kDeploySplitSoapLossy = R"(
# interop deployment: SOAP across a slow WAN with loss
protocol default SOAP
instance Ledger on 1 via SOAP
link 0 -> 1 latency 900 bandwidth 12.5
link 1 -> 0 latency 900 bandwidth 12.5
)";

void deploy(const char* title, const char* config) {
    using namespace rafda;

    model::ClassPool original;
    vm::install_prelude(original);
    model::assemble_into(original, kApp);
    model::verify_pool(original);

    runtime::System system(original);
    system.add_node();
    system.add_node();
    runtime::apply_policy_config(config, system.policy(), &system.network());

    vm::Value ledger = system.construct(0, "Ledger", "(J)V", {vm::Value::of_long(1000)});
    vm::Value teller = system.construct(0, "Teller", "(LLedger;)V", {ledger});
    std::int64_t balance =
        system.node(0).interp().call_virtual(teller, "day", "()J").as_long();

    std::cout << title << "\n  final balance: " << balance
              << "   virtual time: " << system.network().now_us() << "us";
    std::uint64_t wire = 0;
    for (const auto& [_, s] : system.remote_stats())
        wire += s.request_bytes + s.reply_bytes;
    std::cout << "   wire bytes: " << wire << "\n";
}

}  // namespace

int main() {
    std::cout << "one program, three textual deployment descriptions:\n\n";
    deploy("[local]          ", kDeployLocal);
    deploy("[split via RMI]  ", kDeploySplitRmi);
    deploy("[split via SOAP] ", kDeploySplitSoapLossy);
    std::cout << "\nsame balance everywhere; only cost changed with the deployment.\n";
    return 0;
}
