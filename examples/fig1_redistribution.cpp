// fig1_redistribution — the paper's Figure 1, live.
//
//   "Objects of class A and class B hold references to a shared instance
//    of class C.  The application is transformed so that the instance of C
//    is remote to its reference holders.  The local instance of C is
//    replaced with a proxy, Cp, to the remote implementation, C'."
//
// The program starts fully local on node 0, then C is migrated to node 1
// *while the application keeps running*.  A and B never learn about it:
// their reference value is unchanged, the heap slot behind it became the
// proxy.
#include <iostream>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace {

constexpr const char* kApp = R"(
class C {
  field state I
  ctor ()V {
    return
  }
  method poke ()V {
    load 0
    load 0
    getfield C.state I
    const 1
    add
    putfield C.state I
    return
  }
  method read ()I {
    load 0
    getfield C.state I
    returnvalue
  }
}
class A {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield A.c LC;
    return
  }
  method act ()V {
    load 0
    getfield A.c LC;
    invokevirtual C.poke ()V
    return
  }
}
class B {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield B.c LC;
    return
  }
  method observe ()I {
    load 0
    getfield B.c LC;
    invokevirtual C.read ()I
    returnvalue
  }
}
)";

}  // namespace

int main() {
    using namespace rafda;
    using vm::Value;

    model::ClassPool original;
    vm::install_prelude(original);
    model::assemble_into(original, kApp);
    model::verify_pool(original);

    runtime::System system(original);
    system.add_node();  // node 0: where A and B live
    system.add_node();  // node 1: where C will move

    Value c = system.construct(0, "C", "()V");
    Value a = system.construct(0, "A", "(LC;)V", {c});
    Value b = system.construct(0, "B", "(LC;)V", {c});
    vm::Interpreter& n0 = system.node(0).interp();

    auto phase = [&](const char* title, int pokes) {
        for (int k = 0; k < pokes; ++k) n0.call_virtual(a, "act", "()V");
        std::cout << title << "  C is a " << n0.class_of(c.as_ref()).name
                  << ", B observes " << n0.call_virtual(b, "observe", "()I").as_int()
                  << ", virtual time " << system.network().now_us() << "us\n";
    };

    std::cout << "--- phase 1: everything local on node 0 ---\n";
    phase("after 3 pokes:", 3);

    std::cout << "\n--- migrating the shared C to node 1 (Figure 1) ---\n";
    vm::ObjId c_on_1 = system.migrate_instance(0, c.as_ref(), 1, "RMI");
    std::cout << "node 0 slot " << c.as_ref() << " is now "
              << n0.class_of(c.as_ref()).name << "; C' is object " << c_on_1
              << " on node 1 (" << system.node(1).interp().class_of(c_on_1).name << ")\n\n";

    std::cout << "--- phase 2: same objects, same code, C now remote ---\n";
    phase("after 3 more pokes:", 3);

    const auto& rmi = system.remote_stats().at("RMI");
    std::cout << "\nremote calls over RMI: " << rmi.calls << " ("
              << rmi.request_bytes + rmi.reply_bytes << " bytes on the wire), "
              << "migrations: " << system.migrations() << "\n";
    std::cout << "\nA and B were never told; their reference to C is value "
              << c.as_ref() << " in both phases.\n";
    return 0;
}
