// adaptive_policy — "the distributed program can adapt to its environment
// by dynamically altering its distribution boundaries" (paper Sec 1/4).
//
// A Worker repeatedly samples a Source.  The Source is pinned to whichever
// node its (simulated) hardware is on — and the environment moves it
// between phases.  We run the same workload twice:
//
//   static   — the Worker stays where it was deployed (node 0);
//   adaptive — after each phase a tiny controller compares the virtual
//              time the phase cost against the previous one and migrates
//              the Worker next to the Source when chattiness makes that
//              cheaper.
//
// The adaptive run finishes in a fraction of the static run's virtual time
// even though the application code is identical — only the distribution
// boundary moved.
#include <iomanip>
#include <iostream>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace {

constexpr const char* kApp = R"(
class Source {
  field reading I
  ctor ()V {
    return
  }
  method sample ()I {
    load 0
    load 0
    getfield Source.reading I
    const 7
    add
    putfield Source.reading I
    load 0
    getfield Source.reading I
    returnvalue
  }
}
class Worker {
  field src LSource;
  field total J
  ctor (LSource;)V {
    load 0
    load 1
    putfield Worker.src LSource;
    return
  }
  method process ()J {
    locals 2
    const 0
    store 1
  Top:
    load 1
    const 8
    cmpge
    iftrue Done
    load 0
    load 0
    getfield Worker.total J
    load 0
    getfield Worker.src LSource;
    invokevirtual Source.sample ()I
    conv J
    add
    putfield Worker.total J
    load 1
    const 1
    add
    store 1
    goto Top
  Done:
    load 0
    getfield Worker.total J
    returnvalue
  }
}
)";

struct PhaseResult {
    std::uint64_t time_us;
    std::int64_t total;
};

}  // namespace

int main() {
    using namespace rafda;
    using vm::Value;

    constexpr int kPhases = 6;
    constexpr int kCallsPerPhase = 10;

    auto run = [&](bool adaptive) {
        model::ClassPool original;
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);

        runtime::System system(original);
        system.add_node();
        system.add_node();

        Value src = system.construct(0, "Source", "()V");
        Value worker = system.construct(0, "Worker", "(LSource;)V", {src});
        net::NodeId src_node = 0;
        net::NodeId worker_node = 0;
        // Physical locations of the two objects: migrating returns the new
        // object id on the destination node.
        vm::ObjId src_oid = src.as_ref();
        vm::ObjId worker_oid = worker.as_ref();

        std::uint64_t prev_phase_cost = 0;
        std::uint64_t total_time = 0;
        std::int64_t last_total = 0;
        std::cout << (adaptive ? "adaptive:" : "static:  ");

        for (int phase = 0; phase < kPhases; ++phase) {
            // Environment change: the source's hardware moves every other
            // phase (sensor hot-swap between racks).
            net::NodeId want = (phase / 2) % 2 == 0 ? 1 : 0;
            if (want != src_node) {
                src_oid = system.migrate_instance(src_node, src_oid, want, "RMI");
                src_node = want;
            }

            // The driver always runs on node 0 and always uses the same
            // reference; migrations happen behind it.
            std::uint64_t start = system.network().now_us();
            for (int k = 0; k < kCallsPerPhase; ++k)
                last_total = system.node(0)
                                 .interp()
                                 .call_virtual(worker, "process", "()J")
                                 .as_long();
            std::uint64_t cost = system.network().now_us() - start;
            total_time += cost;
            std::cout << " " << std::setw(6) << cost << "us";

            if (adaptive && cost > prev_phase_cost && worker_node != src_node) {
                // The phase got pricier: co-locate the worker with the
                // source.  After migration the driver pays one remote hop
                // per process() instead of eight per-sample hops.
                worker_oid =
                    system.migrate_instance(worker_node, worker_oid, src_node, "RMI");
                worker_node = src_node;
            }
            prev_phase_cost = cost;
        }
        std::cout << "  | total " << total_time << "us, result " << last_total << "\n";
        return std::pair<std::uint64_t, std::int64_t>{total_time, last_total};
    };

    std::cout << "per-phase virtual time (" << kPhases << " phases, " << kCallsPerPhase
              << " process() calls each; source hops nodes every 2 phases)\n\n";
    auto [t_static, r_static] = run(false);
    auto [t_adaptive, r_adaptive] = run(true);

    std::cout << "\nsame application result (" << r_static << " == " << r_adaptive
              << "): " << (r_static == r_adaptive ? "yes" : "NO") << "\n";
    std::cout << "adaptive saves " << std::fixed << std::setprecision(1)
              << 100.0 * (1.0 - static_cast<double>(t_adaptive) /
                                    static_cast<double>(t_static))
              << "% of virtual time by moving the distribution boundary.\n";
    return 0;
}
