#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rafda::net {
namespace {

TEST(SimNetwork, LatencyAndBandwidthShapeDelay) {
    SimNetwork net;
    LinkParams fast{100, 1000.0, 0.0};  // 100us + size/1000
    net.set_default_link(fast);
    auto d = net.transfer(0, 1, 5000);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 105u);
    EXPECT_EQ(net.now_us(), 105u);
}

TEST(SimNetwork, ZeroBandwidthMeansLatencyOnly) {
    SimNetwork net;
    net.set_default_link(LinkParams{250, 0.0, 0.0});
    EXPECT_EQ(*net.transfer(0, 1, 1 << 20), 250u);
}

TEST(SimNetwork, PerLinkOverrides) {
    SimNetwork net;
    net.set_default_link(LinkParams{100, 0.0, 0.0});
    net.set_link(0, 1, LinkParams{5, 0.0, 0.0});
    EXPECT_EQ(*net.transfer(0, 1, 10), 5u);
    EXPECT_EQ(*net.transfer(1, 0, 10), 100u);  // override is directional
    EXPECT_EQ(*net.transfer(0, 2, 10), 100u);
}

TEST(SimNetwork, ClockAccumulates) {
    SimNetwork net;
    net.set_default_link(LinkParams{10, 0.0, 0.0});
    net.transfer(0, 1, 1);
    net.transfer(1, 0, 1);
    net.charge_compute(7);
    EXPECT_EQ(net.now_us(), 27u);
}

TEST(SimNetwork, StatsPerLink) {
    SimNetwork net;
    net.set_default_link(LinkParams{1, 0.0, 0.0});
    net.transfer(0, 1, 100);
    net.transfer(0, 1, 50);
    net.transfer(1, 0, 10);
    EXPECT_EQ(net.stats(0, 1).messages, 2u);
    EXPECT_EQ(net.stats(0, 1).bytes, 150u);
    EXPECT_EQ(net.stats(1, 0).messages, 1u);
    LinkStats total = net.total_stats();
    EXPECT_EQ(total.messages, 3u);
    EXPECT_EQ(total.bytes, 160u);
    net.reset_stats();
    EXPECT_EQ(net.total_stats().messages, 0u);
}

TEST(SimNetwork, DropInjectionIsDeterministic) {
    auto run = [](std::uint64_t seed) {
        SimNetwork net(seed);
        net.set_default_link(LinkParams{1, 0.0, 0.5});
        std::vector<bool> outcomes;
        for (int i = 0; i < 64; ++i) outcomes.push_back(net.transfer(0, 1, 1).has_value());
        return outcomes;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST(SimNetwork, DropRateApproximatesProbability) {
    SimNetwork net(123);
    net.set_default_link(LinkParams{1, 0.0, 0.25});
    int delivered = 0;
    for (int i = 0; i < 4000; ++i)
        if (net.transfer(0, 1, 1)) ++delivered;
    EXPECT_NEAR(delivered / 4000.0, 0.75, 0.03);
    EXPECT_GT(net.stats(0, 1).drops, 0u);
}

TEST(SimNetwork, DroppedTransferChargesLatency) {
    // A lost message still occupied the link: the sender's timeout clock
    // ran for at least the propagation delay.  Drops used to be free in
    // virtual time, which made lossy links *faster* than reliable ones.
    SimNetwork net;
    net.set_default_link(LinkParams{50, 0.0, 1.0});
    EXPECT_FALSE(net.transfer(0, 1, 1000).has_value());
    EXPECT_EQ(net.now_us(), 50u);
    EXPECT_FALSE(net.transfer(0, 1, 1000).has_value());
    EXPECT_EQ(net.now_us(), 100u);
}

TEST(SimNetwork, NoDropsAtZeroProbability) {
    SimNetwork net;
    net.set_default_link(LinkParams{1, 0.0, 0.0});
    for (int i = 0; i < 1000; ++i) EXPECT_TRUE(net.transfer(0, 1, 1).has_value());
}

TEST(SimNetwork, RegistryMirrorsPerLinkStats) {
    obs::Registry reg;
    SimNetwork net(123);
    net.set_default_link(LinkParams{1, 0.0, 0.25});
    net.attach_metrics(&reg);

    for (int i = 0; i < 400; ++i) net.transfer(0, 1, 8);
    net.transfer(1, 0, 16);

    const LinkStats& s01 = net.stats(0, 1);
    EXPECT_GT(s01.drops, 0u);  // the seed produces drops at p=0.25
    obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter_value("net.link.0.1.messages"), s01.messages);
    EXPECT_EQ(snap.counter_value("net.link.0.1.bytes"), s01.bytes);
    EXPECT_EQ(snap.counter_value("net.link.0.1.drops"), s01.drops);
    EXPECT_EQ(snap.counter_value("net.link.1.0.messages"), net.stats(1, 0).messages);
    EXPECT_EQ(snap.counter_value("net.link.1.0.bytes"), 16u);
}

TEST(SimNetwork, DetachingStopsMirroring) {
    obs::Registry reg;
    SimNetwork net;
    net.set_default_link(LinkParams{1, 0.0, 0.0});
    net.attach_metrics(&reg);
    net.transfer(0, 1, 5);
    net.attach_metrics(nullptr);
    net.transfer(0, 1, 5);
    EXPECT_EQ(net.stats(0, 1).messages, 2u);
    EXPECT_EQ(reg.snapshot().counter_value("net.link.0.1.messages"), 1u);
}

TEST(SimNetwork, TransfersBeforeAttachAreNotBackfilled) {
    // Attach mid-flight: the registry mirrors only what it observed, so
    // callers wanting totals-from-zero must attach before traffic starts.
    obs::Registry reg;
    SimNetwork net;
    net.set_default_link(LinkParams{1, 0.0, 0.0});
    net.transfer(0, 1, 5);
    net.attach_metrics(&reg);
    net.transfer(0, 1, 5);
    EXPECT_EQ(net.stats(0, 1).bytes, 10u);
    EXPECT_EQ(reg.snapshot().counter_value("net.link.0.1.bytes"), 5u);
}

TEST(SimNetwork, ContendingTransfersQueueOnTheLink) {
    // Two transfers sent at the same instant share one directed channel:
    // the second departs only when the first has fully drained.
    SimNetwork net;
    net.set_default_link(LinkParams{100, 1000.0, 0.0});  // 100us + size/1000
    Delivery first = net.transfer_at(0, 1, 5000, 0);     // departs 0, arrives 105
    Delivery second = net.transfer_at(0, 1, 5000, 0);    // queued until 105
    ASSERT_TRUE(first.delivered);
    ASSERT_TRUE(second.delivered);
    EXPECT_EQ(first.at_us, 105u);
    EXPECT_EQ(second.at_us, 210u);
    EXPECT_EQ(net.link_busy_until(0, 1), 210u);
    // The reverse direction is an independent channel: no queueing.
    EXPECT_EQ(net.transfer_at(1, 0, 5000, 0).at_us, 105u);
}

TEST(SimNetwork, SendAfterBusyWindowDoesNotQueue) {
    SimNetwork net;
    net.set_default_link(LinkParams{10, 0.0, 0.0});
    EXPECT_EQ(net.transfer_at(0, 1, 1, 0).at_us, 10u);
    // Sending once the channel is idle again pays only its own latency.
    EXPECT_EQ(net.transfer_at(0, 1, 1, 50).at_us, 60u);
    EXPECT_EQ(net.link_busy_until(0, 1), 60u);
}

TEST(SimNetwork, BusyTimeIsAccountedPerLink) {
    SimNetwork net;
    net.set_default_link(LinkParams{100, 1000.0, 0.0});
    net.transfer_at(0, 1, 5000, 0);
    net.transfer_at(0, 1, 5000, 0);
    EXPECT_EQ(net.stats(0, 1).busy_us, 210u);
    EXPECT_EQ(net.total_stats().busy_us, 210u);
    std::size_t links = 0;
    net.visit_links([&links](NodeId src, NodeId dst, const LinkStats& s) {
        ++links;
        EXPECT_EQ(src, 0u);
        EXPECT_EQ(dst, 1u);
        EXPECT_EQ(s.busy_us, 210u);
    });
    EXPECT_EQ(links, 1u);
}

TEST(SimNetwork, LegacyTransferSendsAtTheWatermark) {
    // transfer() is transfer_at(now): with one message in flight at a time
    // the channel is always idle at send, so the old arithmetic holds.
    SimNetwork net;
    net.set_default_link(LinkParams{100, 1000.0, 0.0});
    EXPECT_EQ(*net.transfer(0, 1, 5000), 105u);
    EXPECT_EQ(*net.transfer(0, 1, 5000), 105u);
    EXPECT_EQ(net.now_us(), 210u);
}

TEST(SimNetwork, ResetStatsAlsoResetsMirroredRegistryCounters) {
    // Regression: reset_stats() used to clear only the internal tables,
    // leaving the net.link.* registry counters stale so post-reset deltas
    // double-counted the pre-reset traffic.
    obs::Registry reg;
    SimNetwork net;
    net.set_default_link(LinkParams{1, 1000.0, 0.0});
    net.attach_metrics(&reg);
    net.transfer(0, 1, 2000);
    net.transfer(1, 0, 4000);
    ASSERT_EQ(reg.snapshot().counter_value("net.link.0.1.bytes"), 2000u);

    net.reset_stats();
    obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter_value("net.link.0.1.messages"), 0u);
    EXPECT_EQ(snap.counter_value("net.link.0.1.bytes"), 0u);
    EXPECT_EQ(snap.counter_value("net.link.0.1.busy_us"), 0u);
    EXPECT_EQ(snap.counter_value("net.link.1.0.bytes"), 0u);
    const obs::Sample* util = snap.find("net.link.0.1.utilization_ppm");
    ASSERT_NE(util, nullptr);
    EXPECT_EQ(util->gauge, 0);

    // And the mirror keeps tracking from zero afterwards.
    net.transfer(0, 1, 3000);
    EXPECT_EQ(reg.snapshot().counter_value("net.link.0.1.bytes"), 3000u);
    EXPECT_EQ(net.stats(0, 1).bytes, 3000u);
}

TEST(SimNetwork, DropStillOccupiesTheChannel) {
    // A dropped message occupied the channel for its propagation delay;
    // the next sender queues behind that window.
    SimNetwork net;
    net.set_default_link(LinkParams{50, 0.0, 1.0});
    Delivery d = net.transfer_at(0, 1, 1000, 0);
    EXPECT_FALSE(d.delivered);
    EXPECT_EQ(d.at_us, 50u);
    EXPECT_EQ(net.stats(0, 1).busy_us, 50u);
    EXPECT_EQ(net.link_busy_until(0, 1), 50u);
}

TEST(SimNetwork, CoalescedTransferSkipsPropagationOnBusyLink) {
    // 100us latency, 1000 bytes/us.  The frame occupies [0, 105); an
    // entry sent at 10 joins its tail: departs at 105, pays only its own
    // serialization (2us), no second propagation delay.
    SimNetwork net;
    net.set_default_link(LinkParams{100, 1000.0, 0.0});
    Delivery frame = net.transfer_at(0, 1, 5000, 0);
    ASSERT_TRUE(frame.delivered);
    EXPECT_EQ(frame.at_us, 105u);
    EXPECT_FALSE(frame.coalesced);

    Delivery entry = net.transfer_coalesced_at(0, 1, 2000, 10);
    ASSERT_TRUE(entry.delivered);
    EXPECT_TRUE(entry.coalesced);
    EXPECT_EQ(entry.at_us, 107u);
    EXPECT_EQ(net.link_busy_until(0, 1), 107u);

    // Entries extend the frame: one message, one coalesced continuation.
    EXPECT_EQ(net.stats(0, 1).messages, 1u);
    EXPECT_EQ(net.stats(0, 1).coalesced, 1u);
    EXPECT_EQ(net.stats(0, 1).bytes, 7000u);
    EXPECT_EQ(net.total_stats().coalesced, 1u);
}

TEST(SimNetwork, CoalescedTransferDegradesToPlainOnFreeLink) {
    // No frame in flight at the send time: the "coalesced" request is an
    // ordinary transfer, full latency charged, flag off.
    SimNetwork net;
    net.set_default_link(LinkParams{100, 1000.0, 0.0});
    Delivery d = net.transfer_coalesced_at(0, 1, 5000, 0);
    ASSERT_TRUE(d.delivered);
    EXPECT_FALSE(d.coalesced);
    EXPECT_EQ(d.at_us, 105u);
    EXPECT_EQ(net.stats(0, 1).messages, 1u);
    EXPECT_EQ(net.stats(0, 1).coalesced, 0u);
}

TEST(SimNetwork, CoalescedDrawsMatchPlainTransfersOnLossyLinks) {
    // Drop decisions come from the per-link PRNG stream at the departure
    // time; whether a transfer coalesced must not change the stream, so
    // the same event sequence loses the same messages either way.
    auto run = [](bool coalesce) {
        SimNetwork net(1234);
        net.set_default_link(LinkParams{100, 1000.0, 0.25});
        std::vector<bool> outcomes;
        std::uint64_t t = 0;
        for (int k = 0; k < 64; ++k) {
            Delivery d = coalesce ? net.transfer_coalesced_at(0, 1, 1000, t)
                                  : net.transfer_at(0, 1, 1000, t);
            outcomes.push_back(d.delivered);
            t += 10;  // well inside the previous transfer's window
        }
        return outcomes;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(SimNetwork, CoalescedDropChargesLatencyLikePlainDrop) {
    // A lost entry still died on the wire: the loss accounting (drop
    // count, latency-only busy charge) is identical to a plain drop.
    SimNetwork net;
    net.set_default_link(LinkParams{50, 0.0, 1.0});
    net.transfer_at(0, 1, 100, 0);  // occupy [0, 50)
    Delivery d = net.transfer_coalesced_at(0, 1, 100, 10);
    EXPECT_FALSE(d.delivered);
    EXPECT_EQ(d.at_us, 100u);  // departs at 50, dies 50us later
    EXPECT_EQ(net.stats(0, 1).drops, 2u);
    EXPECT_EQ(net.stats(0, 1).coalesced, 0u);
    EXPECT_EQ(net.link_busy_until(0, 1), 100u);
}

TEST(SimNetwork, ResetStatsClearsCoalescedCount) {
    obs::Registry reg;
    SimNetwork net;
    net.set_default_link(LinkParams{100, 1000.0, 0.0});
    net.attach_metrics(&reg);
    net.transfer_at(0, 1, 1000, 0);
    net.transfer_coalesced_at(0, 1, 1000, 10);
    ASSERT_EQ(net.stats(0, 1).coalesced, 1u);
    ASSERT_EQ(reg.snapshot().counter_value("net.link.0.1.coalesced"), 1u);
    net.reset_stats();
    EXPECT_EQ(net.stats(0, 1).coalesced, 0u);
    EXPECT_EQ(reg.snapshot().counter_value("net.link.0.1.coalesced"), 0u);
}

}  // namespace
}  // namespace rafda::net
