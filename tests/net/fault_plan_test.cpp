// Scheduled fault injection (DESIGN.md §15).  Window membership is a pure
// function of virtual time, deterministic faults never draw from the PRNG,
// and every directed link owns its own drop-decision stream — so a fault
// scenario replays bit-for-bit and faults on one link cannot perturb the
// sequence another link sees.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace rafda::net {
namespace {

FaultWindow link_window(FaultKind kind, NodeId src, NodeId dst,
                        std::uint64_t from, std::uint64_t until,
                        double p = 0.0, std::uint64_t period = 0) {
    FaultWindow w;
    w.kind = kind;
    w.src = src;
    w.dst = dst;
    w.from_us = from;
    w.until_us = until;
    w.drop_probability = p;
    w.period_us = period;
    return w;
}

FaultWindow crash_window(NodeId node, std::uint64_t from, std::uint64_t until) {
    FaultWindow w;
    w.kind = FaultKind::NodeCrash;
    w.node = node;
    w.from_us = from;
    w.until_us = until;
    return w;
}

TEST(FaultPlan, LinkDownWindowIsHalfOpen) {
    FaultPlan plan;
    plan.add(link_window(FaultKind::LinkDown, 0, 1, 100, 200));
    EXPECT_FALSE(plan.link_down(0, 1, 99));
    EXPECT_TRUE(plan.link_down(0, 1, 100));
    EXPECT_TRUE(plan.link_down(0, 1, 199));
    EXPECT_FALSE(plan.link_down(0, 1, 200));
    // Directed: the reverse link and unrelated links are untouched.
    EXPECT_FALSE(plan.link_down(1, 0, 150));
    EXPECT_FALSE(plan.link_down(2, 3, 150));
}

TEST(FaultPlan, FlapAlternatesByPeriodStartingDown) {
    FaultPlan plan;
    plan.add(link_window(FaultKind::LinkFlap, 0, 1, 1000, 1400, 0.0, 100));
    // Slices from the window start: down [1000,1100), up [1100,1200), ...
    EXPECT_TRUE(plan.link_down(0, 1, 1000));
    EXPECT_TRUE(plan.link_down(0, 1, 1099));
    EXPECT_FALSE(plan.link_down(0, 1, 1100));
    EXPECT_FALSE(plan.link_down(0, 1, 1199));
    EXPECT_TRUE(plan.link_down(0, 1, 1200));
    EXPECT_FALSE(plan.link_down(0, 1, 1399));
    // Outside the window the flap has no effect at all.
    EXPECT_FALSE(plan.link_down(0, 1, 999));
    EXPECT_FALSE(plan.link_down(0, 1, 1400));
}

TEST(FaultPlan, DropOverrideAppliesOnlyInsideWindowAndLastAddedWins) {
    FaultPlan plan;
    plan.add(link_window(FaultKind::DropRate, 0, 1, 100, 500, 0.25));
    plan.add(link_window(FaultKind::DropRate, 0, 1, 200, 300, 0.75));
    EXPECT_FALSE(plan.drop_override(0, 1, 50).has_value());
    EXPECT_EQ(plan.drop_override(0, 1, 150).value(), 0.25);
    EXPECT_EQ(plan.drop_override(0, 1, 250).value(), 0.75);  // later window wins
    EXPECT_EQ(plan.drop_override(0, 1, 400).value(), 0.25);
    EXPECT_FALSE(plan.drop_override(0, 1, 500).has_value());
    EXPECT_FALSE(plan.drop_override(1, 0, 250).has_value());
}

TEST(FaultPlan, NodeCrashWindowsAndRestartCounting) {
    FaultPlan plan;
    plan.add(crash_window(1, 100, 200));
    plan.add(crash_window(1, 300, 400));
    EXPECT_FALSE(plan.node_down(1, 99));
    EXPECT_TRUE(plan.node_down(1, 100));
    EXPECT_FALSE(plan.node_down(1, 250));
    EXPECT_TRUE(plan.node_down(1, 350));
    EXPECT_FALSE(plan.node_down(2, 350));
    // restarts_before counts completed crash windows — monotone in t.
    EXPECT_EQ(plan.restarts_before(1, 50), 0u);
    EXPECT_EQ(plan.restarts_before(1, 199), 0u);
    EXPECT_EQ(plan.restarts_before(1, 200), 1u);  // window end = restart
    EXPECT_EQ(plan.restarts_before(1, 350), 1u);
    EXPECT_EQ(plan.restarts_before(1, 400), 2u);
    EXPECT_EQ(plan.restarts_before(2, 400), 0u);
}

TEST(FaultPlan, NotifyRestartsFiresOncePerCompletedWindowEdge) {
    // The restart seam (DESIGN.md §20): notify_restarts fires the callback
    // only when the observed count *rises*, carrying the new count and the
    // observation time — repeated observations at the same watermark are
    // silent, and each node's watermark is independent.
    FaultPlan plan;
    plan.add(crash_window(1, 100, 200));
    plan.add(crash_window(1, 300, 400));
    plan.add(crash_window(2, 100, 150));

    std::vector<std::tuple<NodeId, std::uint64_t, std::uint64_t>> fired;
    plan.set_restart_callback(
        [&](NodeId node, std::uint64_t restarts, std::uint64_t t) {
            fired.emplace_back(node, restarts, t);
        });

    plan.notify_restarts(1, 50);  // nothing completed yet
    EXPECT_TRUE(fired.empty());
    plan.notify_restarts(1, 250);
    plan.notify_restarts(1, 260);  // same count: silent
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], std::make_tuple(NodeId{1}, std::uint64_t{1},
                                        std::uint64_t{250}));
    plan.notify_restarts(2, 260);  // node 2's watermark is its own
    plan.notify_restarts(1, 500);  // second window completed: count jumps
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[1], std::make_tuple(NodeId{2}, std::uint64_t{1},
                                        std::uint64_t{260}));
    EXPECT_EQ(fired[2], std::make_tuple(NodeId{1}, std::uint64_t{2},
                                        std::uint64_t{500}));

    // No callback installed: observation stays legal and silent.
    FaultPlan bare;
    bare.add(crash_window(1, 0, 10));
    bare.notify_restarts(1, 50);
}

TEST(FaultPlan, KindNames) {
    EXPECT_STREQ(fault_kind_name(FaultKind::LinkDown), "down");
    EXPECT_STREQ(fault_kind_name(FaultKind::LinkFlap), "flap");
    EXPECT_STREQ(fault_kind_name(FaultKind::DropRate), "drop");
    EXPECT_STREQ(fault_kind_name(FaultKind::NodeCrash), "crash");
}

TEST(SimNetworkFaults, DownWindowLosesMessagesOnlyInsideWindow) {
    SimNetwork net(7);
    net.set_link(0, 1, LinkParams{100, 0.0, 0.0});
    net.fault_plan().add(link_window(FaultKind::LinkDown, 0, 1, 1000, 2000));

    Delivery before = net.transfer_at(0, 1, 10, 500);
    EXPECT_TRUE(before.delivered);
    EXPECT_EQ(before.at_us, 600u);

    // Inside the window the message is lost, but the loss is not free: the
    // link stays occupied for the propagation delay.
    Delivery during = net.transfer_at(0, 1, 10, 1500);
    EXPECT_FALSE(during.delivered);
    EXPECT_EQ(during.at_us, 1600u);

    Delivery after = net.transfer_at(0, 1, 10, 2500);
    EXPECT_TRUE(after.delivered);

    EXPECT_EQ(net.stats(0, 1).messages, 2u);
    EXPECT_EQ(net.stats(0, 1).drops, 1u);
}

TEST(SimNetworkFaults, PartitionEvaluatedAtDepartureTime) {
    // A message *sent* before the partition but queued behind link
    // occupancy departs inside the window — and dies there.  Membership is
    // judged at departure, the moment the message actually hits the wire.
    SimNetwork net(7);
    net.set_link(0, 1, LinkParams{600, 0.0, 0.0});
    net.fault_plan().add(link_window(FaultKind::LinkDown, 0, 1, 500, 2000));
    Delivery first = net.transfer_at(0, 1, 10, 0);  // occupies link until 600
    EXPECT_TRUE(first.delivered);
    Delivery queued = net.transfer_at(0, 1, 10, 100);  // departs at 600 >= 500
    EXPECT_FALSE(queued.delivered);
}

TEST(SimNetworkFaults, DropOverrideSubstitutesProbabilityInsideWindow) {
    SimNetwork net(7);
    net.set_link(0, 1, LinkParams{100, 0.0, 0.0});  // lossless by config
    net.fault_plan().add(link_window(FaultKind::DropRate, 0, 1, 0, 1000, 1.0));
    EXPECT_FALSE(net.transfer_at(0, 1, 10, 0).delivered);
    EXPECT_TRUE(net.transfer_at(0, 1, 10, 5000).delivered);
}

TEST(SimNetworkFaults, PerLinkStreamsIsolateLossyTraffic) {
    // Heavy lossy traffic on link 0->1 must not change which of link
    // 2->3's messages are dropped: each directed link draws from its own
    // seeded stream.
    auto pattern_2_3 = [](bool with_noise) {
        SimNetwork net(42);
        net.set_link(0, 1, LinkParams{100, 0.0, 0.5});
        net.set_link(2, 3, LinkParams{100, 0.0, 0.5});
        std::vector<bool> delivered;
        for (int k = 0; k < 32; ++k) {
            const std::uint64_t t = static_cast<std::uint64_t>(k) * 1000;
            if (with_noise) {
                net.transfer_at(0, 1, 10, t);
                net.transfer_at(0, 1, 10, t + 200);
            }
            delivered.push_back(net.transfer_at(2, 3, 10, t).delivered);
        }
        return delivered;
    };
    EXPECT_EQ(pattern_2_3(false), pattern_2_3(true));
}

TEST(SimNetworkFaults, DeterministicFaultsConsumeNoPrngDraws) {
    // Down windows on a link are decided by pure time arithmetic.  With a
    // lossless link config, adding a partition must not touch the link's
    // stream — so a later lossy phase sees the identical drop sequence
    // whether or not the partition existed.
    auto lossy_tail = [](bool with_partition) {
        SimNetwork net(9);
        net.set_link(0, 1, LinkParams{100, 0.0, 0.0});
        if (with_partition)
            net.fault_plan().add(link_window(FaultKind::LinkDown, 0, 1, 0, 10'000));
        for (int k = 0; k < 8; ++k)
            net.transfer_at(0, 1, 10, static_cast<std::uint64_t>(k) * 1000);
        net.set_link(0, 1, LinkParams{100, 0.0, 0.5});
        std::vector<bool> delivered;
        for (int k = 0; k < 32; ++k)
            delivered.push_back(
                net.transfer_at(0, 1, 10, 20'000 + static_cast<std::uint64_t>(k) * 1000)
                    .delivered);
        return delivered;
    };
    EXPECT_EQ(lossy_tail(false), lossy_tail(true));
}

TEST(SimNetworkFaults, ChanceZeroConsumesNoDraw) {
    // Rng::chance(0) short-circuits without drawing, so traffic on a
    // lossless link leaves its stream untouched; Rng::mix derives streams
    // without consuming generator state.
    Rng a(123);
    Rng b(123);
    for (int k = 0; k < 100; ++k) EXPECT_FALSE(a.chance(0.0));
    for (int k = 0; k < 5; ++k) EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(Rng::mix(1, 2), Rng::mix(1, 2));
    EXPECT_NE(Rng::mix(1, 2), Rng::mix(1, 3));
    EXPECT_NE(Rng::mix(1, 2), Rng::mix(2, 2));
}

TEST(SimNetworkFaults, FaultScheduleReplaysBitForBit) {
    auto run = [] {
        SimNetwork net(77);
        net.set_link(0, 1, LinkParams{100, 125.0, 0.1});
        net.fault_plan().add(link_window(FaultKind::LinkFlap, 0, 1, 3000, 9000, 0.0, 500));
        net.fault_plan().add(link_window(FaultKind::DropRate, 0, 1, 12'000, 20'000, 0.6));
        std::vector<std::uint64_t> events;
        for (int k = 0; k < 64; ++k) {
            Delivery d = net.transfer_at(0, 1, 200, static_cast<std::uint64_t>(k) * 400);
            events.push_back(d.at_us * 2 + (d.delivered ? 1 : 0));
        }
        events.push_back(net.stats(0, 1).drops);
        events.push_back(net.stats(0, 1).busy_us);
        return events;
    };
    EXPECT_EQ(run(), run());
}

TEST(SimNetworkStats, ResetRebasesUtilizationEpoch) {
    // Regression: utilization_ppm after reset_stats() must measure busy
    // time against virtual time elapsed *since the reset*, not since t=0
    // (the old denominator biased post-reset utilization toward zero).
    SimNetwork net(1);
    obs::Registry registry;
    net.attach_metrics(&registry);
    net.set_link(0, 1, LinkParams{100, 0.0, 0.0});

    net.transfer_at(0, 1, 10, 0);  // busy [0,100) over elapsed 100 -> 100%
    obs::Snapshot before = registry.snapshot();
    const obs::Sample* util = before.find("net.link.0.1.utilization_ppm");
    ASSERT_NE(util, nullptr);
    EXPECT_EQ(util->gauge, 1'000'000);

    net.observe(10'000);  // idle gap
    net.reset_stats();
    EXPECT_EQ(net.stats(0, 1).messages, 0u);

    // One transfer occupying the full post-reset window reads 100% again;
    // against a t=0 denominator it would read ~1%.
    net.transfer_at(0, 1, 10, 10'000);
    obs::Snapshot after = registry.snapshot();
    util = after.find("net.link.0.1.utilization_ppm");
    ASSERT_NE(util, nullptr);
    EXPECT_EQ(util->gauge, 1'000'000);
    EXPECT_EQ(net.stats(0, 1).messages, 1u);
}

TEST(SimNetworkStats, BusyUntilSurvivesReset) {
    // Channel occupancy is physical link state: a message in flight still
    // blocks the link across a stats reset.
    SimNetwork net(1);
    net.set_link(0, 1, LinkParams{500, 0.0, 0.0});
    net.transfer_at(0, 1, 10, 0);  // link busy until 500
    net.reset_stats();
    EXPECT_EQ(net.link_busy_until(0, 1), 500u);
    Delivery d = net.transfer_at(0, 1, 10, 100);  // queues behind the flight
    EXPECT_EQ(d.at_us, 1000u);
}

}  // namespace
}  // namespace rafda::net
