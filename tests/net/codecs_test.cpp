#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "net/codec.hpp"
#include "net/rmib.hpp"
#include "net/soapx.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace rafda::net {
namespace {

CallRequest sample_request() {
    CallRequest req;
    req.kind = RequestKind::Invoke;
    req.request_id = 42;
    req.trace_id = 7001;
    req.parent_span = 7002;
    req.src_node = 3;
    req.target_oid = 1234567890123ULL;
    req.cls = "";
    req.method = "m";
    req.desc = "(JLY_O_Int;)I";
    req.args.push_back(MarshalledValue::of_long(-5));
    req.args.push_back(MarshalledValue::of_ref(1, 99, "Y_O_Int"));
    req.args.push_back(MarshalledValue::of_str("hello <world> & \"friends\""));
    req.args.push_back(MarshalledValue::null());
    req.args.push_back(MarshalledValue::of_bool(true));
    req.args.push_back(MarshalledValue::of_double(2.5));
    req.args.push_back(MarshalledValue::of_int(-7));
    return req;
}

class BothCodecs : public ::testing::TestWithParam<const char*> {
protected:
    std::unique_ptr<Codec> codec_ = make_codec(GetParam());
};

TEST_P(BothCodecs, RequestRoundTrip) {
    CallRequest req = sample_request();
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
}

TEST_P(BothCodecs, CreateAndDiscoverRoundTrip) {
    CallRequest req;
    req.kind = RequestKind::Create;
    req.request_id = 1;
    req.src_node = 0;
    req.cls = "Account";
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
    req.kind = RequestKind::Discover;
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
}

TEST_P(BothCodecs, ReplyRoundTrip) {
    CallReply reply;
    reply.request_id = 42;
    reply.result = MarshalledValue::of_ref(2, 17, "C_O_Int");
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
}

TEST_P(BothCodecs, FaultReplyRoundTrip) {
    CallReply reply;
    reply.request_id = 7;
    reply.is_fault = true;
    reply.fault_class = "RemoteFault";
    reply.fault_msg = "link <0->1> lost & gone";
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
}

TEST_P(BothCodecs, EmptyArgsAndStrings) {
    CallRequest req;
    req.kind = RequestKind::Invoke;
    req.method = "f";
    req.desc = "()V";
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
    CallReply reply;
    reply.result = MarshalledValue::of_str("");
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
}

TEST_P(BothCodecs, ExtremeNumerics) {
    CallReply reply;
    reply.result = MarshalledValue::of_long(std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
    reply.result = MarshalledValue::of_double(1e-300);
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
}

TEST_P(BothCodecs, ReliabilityExtensionRoundTrips) {
    CallRequest req = sample_request();
    req.attempt = 3;
    req.deadline_us = 123'456'789ULL;
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
    // Each field alone also carries the extension.
    req.attempt = 0;
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
    req.attempt = 1;
    req.deadline_us = 0;
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
}

TEST_P(BothCodecs, ReliabilityExtensionIsAbsentOnFirstAttempt) {
    // The extension rides on the wire only when a request is a retry or
    // carries a deadline, so fault-free experiments (E5 wire sizes) see
    // exactly the legacy encoding: same size, and for SOAP no attribute
    // text at all.
    CallRequest req = sample_request();
    const Bytes legacy = codec_->encode_request(req);
    const std::string text(legacy.begin(), legacy.end());
    EXPECT_EQ(text.find("attempt"), std::string::npos);
    EXPECT_EQ(text.find("deadline"), std::string::npos);
    req.attempt = 2;
    req.deadline_us = 500;
    EXPECT_GT(codec_->encode_request(req).size(), legacy.size());
}

TEST_P(BothCodecs, NewEncoderKeepsLegacyFramingWithoutExtension) {
    // The other compatibility direction: a request without the extension
    // must leave the *new* encoder in the original framing, so a legacy
    // decoder (which knows nothing of attempt/deadline) would accept it.
    CallRequest req = sample_request();
    ASSERT_EQ(req.attempt, 0u);
    ASSERT_EQ(req.deadline_us, 0u);
    const Bytes wire = codec_->encode_request(req);
    const std::string proto = codec_->protocol();
    if (proto == "RMI") {
        EXPECT_EQ(wire.at(0), 0xA1);  // plain request magic, not 0xA3/0xA4
    } else if (proto == "CORBA") {
        // CRBX header: magic(4) ver(2) type(1) flags(1) — reliable bit off.
        EXPECT_EQ(wire.at(7), 0x00);
    } else {
        const std::string text(wire.begin(), wire.end());
        EXPECT_EQ(text.find("attempt"), std::string::npos);
        EXPECT_EQ(text.find("deadline"), std::string::npos);
    }
}

TEST_P(BothCodecs, BatchingOffUsesPerCallFraming) {
    // With batching off (the default), the RPC path encodes through
    // encode_request_into — identical framing whether the destination
    // buffer is fresh or a reused pooled frame with leftover capacity.
    CallRequest req = sample_request();
    const Bytes fresh = codec_->encode_request(req);
    Bytes pooled_frame;
    pooled_frame.reserve(4096);
    pooled_frame.push_back(0xEE);  // stale content from a previous lease
    ByteWriter w(pooled_frame);
    codec_->encode_request_into(req, w);
    EXPECT_EQ(pooled_frame, fresh);
    EXPECT_EQ(codec_->decode_request(pooled_frame), req);
}

TEST_P(BothCodecs, OnlyRmibSupportsBatchEntries) {
    const bool is_rmi = codec_->protocol() == "RMI";
    EXPECT_EQ(codec_->supports_batch_entries(), is_rmi);
    if (!is_rmi) {
        CallRequest req = sample_request();
        BatchContext ctx{req.src_node, req.request_id};
        ByteWriter w;
        EXPECT_THROW(codec_->encode_batch_entry(req, ctx, w), CodecError);
        EXPECT_THROW(codec_->decode_batch_entry(codec_->encode_request(req), ctx),
                     CodecError);
    }
}

INSTANTIATE_TEST_SUITE_P(Protocols, BothCodecs,
                         ::testing::Values("RMI", "SOAP", "CORBA"));

TEST(Codecs, LegacyRmibBytesDecodeWithZeroReliabilityDefaults) {
    // A frame hand-assembled in the original 0xA1 layout (no extension
    // words) must decode on the current decoder with attempt/deadline 0.
    ByteWriter w;
    w.u8(0xA1);                     // legacy request magic
    w.u8(0);                        // kind = Invoke
    w.u64(42);                      // request_id
    w.u64(0);                       // trace_id
    w.u64(0);                       // parent_span
    w.i32(3);                       // src_node
    w.u64(77);                      // target_oid
    w.str("");                      // cls
    w.str("m");                     // method
    w.str("()V");                   // desc
    w.u32(0);                       // nargs
    CallRequest req = RmibCodec().decode_request(w.take());
    EXPECT_EQ(req.request_id, 42u);
    EXPECT_EQ(req.src_node, 3);
    EXPECT_EQ(req.method, "m");
    EXPECT_EQ(req.attempt, 0u);
    EXPECT_EQ(req.deadline_us, 0u);
}

TEST(Codecs, LegacySoapBytesDecodeWithZeroReliabilityDefaults) {
    // A hand-written legacy envelope (no attempt/deadline attributes)
    // against the current decoder: the extension defaults to zero.
    const std::string xml =
        "<Envelope><Body><Request kind=\"invoke\" id=\"9\" trace=\"0\" span=\"0\""
        " src=\"1\" target=\"5\" class=\"\" method=\"m\" desc=\"(I)I\">"
        "<arg type=\"int\">-3</arg></Request></Body></Envelope>";
    CallRequest req = SoapxCodec().decode_request(Bytes(xml.begin(), xml.end()));
    EXPECT_EQ(req.request_id, 9u);
    EXPECT_EQ(req.attempt, 0u);
    EXPECT_EQ(req.deadline_us, 0u);
    ASSERT_EQ(req.args.size(), 1u);
    EXPECT_EQ(req.args[0].i, -3);
}

TEST(Codecs, SoapExtensionAttributesDecode) {
    // And the forward direction as raw text: attributes written by the
    // new encoder carry through a decode of the literal document.
    const std::string xml =
        "<Envelope><Body><Request kind=\"invoke\" id=\"9\" trace=\"0\" span=\"0\""
        " src=\"1\" target=\"5\" class=\"\" method=\"m\" desc=\"()V\""
        " attempt=\"4\" deadline=\"123456\"></Request></Body></Envelope>";
    CallRequest req = SoapxCodec().decode_request(Bytes(xml.begin(), xml.end()));
    EXPECT_EQ(req.attempt, 4u);
    EXPECT_EQ(req.deadline_us, 123456u);
}

// ---- RMIB batch-entry framing (DESIGN.md §17) ---------------------------

TEST(RmibBatch, EntryRoundTripsAgainstItsContext) {
    RmibCodec rmib;
    CallRequest req = sample_request();  // trace ids set -> traced flag
    BatchContext ctx{req.src_node, 40};  // id 42 -> delta 2
    ByteWriter w;
    rmib.encode_batch_entry(req, ctx, w);
    Bytes wire = w.take();
    EXPECT_EQ(wire.at(0), 0xA4);
    EXPECT_EQ(rmib.decode_batch_entry(wire, ctx), req);
    // Entries omit src_node and shrink the id to a varint delta, so the
    // coalesced framing is strictly smaller than a standalone request.
    EXPECT_LT(wire.size(), rmib.encode_request(req).size());
}

TEST(RmibBatch, UntracedUnreliableEntryOmitsBothExtensions) {
    RmibCodec rmib;
    CallRequest req = sample_request();
    req.trace_id = req.parent_span = 0;
    BatchContext ctx{req.src_node, req.request_id};  // delta 0
    ByteWriter w;
    rmib.encode_batch_entry(req, ctx, w);
    Bytes lean = w.take();
    EXPECT_EQ(lean.at(1), 0x00);  // flags byte: no reliable, no trace
    EXPECT_EQ(rmib.decode_batch_entry(lean, ctx), req);

    req.attempt = 3;
    req.deadline_us = 9999;
    ByteWriter w2;
    rmib.encode_batch_entry(req, ctx, w2);
    Bytes reliable = w2.take();
    EXPECT_EQ(reliable.at(1), 0x01);  // reliable flag alone
    EXPECT_EQ(reliable.size(), lean.size() + 12);  // u32 attempt + u64 deadline
    EXPECT_EQ(rmib.decode_batch_entry(reliable, ctx), req);
}

TEST(RmibBatch, DecodeRequestRejectsBatchEntry) {
    // An entry is only meaningful against the frame that opened the lane;
    // the standalone decoder must refuse it rather than misparse.
    RmibCodec rmib;
    CallRequest req = sample_request();
    BatchContext ctx{req.src_node, req.request_id};
    ByteWriter w;
    rmib.encode_batch_entry(req, ctx, w);
    EXPECT_THROW(rmib.decode_request(w.take()), CodecError);
}

TEST(RmibBatch, EncodeValidatesAgainstContext) {
    RmibCodec rmib;
    CallRequest req = sample_request();
    ByteWriter w;
    BatchContext wrong_src{req.src_node + 1, req.request_id};
    EXPECT_THROW(rmib.encode_batch_entry(req, wrong_src, w), CodecError);
    BatchContext later_base{req.src_node, req.request_id + 1};
    EXPECT_THROW(rmib.encode_batch_entry(req, later_base, w), CodecError);
}

TEST(RmibBatch, DecodeRejectsUnknownFlagsAndTrailingBytes) {
    RmibCodec rmib;
    CallRequest req = sample_request();
    req.trace_id = req.parent_span = 0;
    BatchContext ctx{req.src_node, req.request_id};
    ByteWriter w;
    rmib.encode_batch_entry(req, ctx, w);
    Bytes wire = w.take();

    Bytes bad_flags = wire;
    bad_flags[1] = 0x04;  // not a defined entry flag
    EXPECT_THROW(rmib.decode_batch_entry(bad_flags, ctx), CodecError);

    Bytes trailing = wire;
    trailing.push_back(0xff);
    EXPECT_THROW(rmib.decode_batch_entry(trailing, ctx), CodecError);
}

TEST(RmibBatch, LargeIdDeltaRoundTrips) {
    // The varint delta must survive multi-byte encodings.
    RmibCodec rmib;
    CallRequest req = sample_request();
    req.request_id = 1'000'000'042ULL;
    BatchContext ctx{req.src_node, 42};
    ByteWriter w;
    rmib.encode_batch_entry(req, ctx, w);
    EXPECT_EQ(rmib.decode_batch_entry(w.take(), ctx).request_id, req.request_id);
}

// ---- SOAPX numeric formatting pins --------------------------------------
//
// The streaming encoder replaced an ostringstream; these differential
// tests pin that std::to_string and snprintf("%.17g") reproduce the
// historical ostream output byte for byte, which the E5/E8 wire-size
// guarantees depend on.

TEST(SoapxFormat, ToStringMatchesOstreamForIntegers) {
    for (long long v : {0LL, 1LL, -1LL, 42LL, -12345678901234LL,
                        9223372036854775807LL, -9223372036854775807LL - 1}) {
        std::ostringstream os;
        os << v;
        EXPECT_EQ(std::to_string(v), os.str()) << v;
    }
}

TEST(SoapxFormat, Snprintf17gMatchesOstreamPrecision17) {
    for (double v : {0.0, -0.0, 1.0, 2.5, 0.1, 1.0 / 3.0, 1e300, 1e-300,
                     -1.7976931348623157e308, 12345678901234567.0, 6.02214076e23}) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        std::ostringstream os;
        os.precision(17);
        os << v;
        EXPECT_EQ(std::string(buf), os.str()) << v;
    }
}

TEST(Codecs, SoapIsLargerOnTheWire) {
    RmibCodec rmib;
    SoapxCodec soapx;
    CallRequest req = sample_request();
    EXPECT_GT(soapx.encode_request(req).size(), 2 * rmib.encode_request(req).size());
}

TEST(Codecs, SoapIsMoreExpensivePerByte) {
    RmibCodec rmib;
    SoapxCodec soapx;
    EXPECT_GT(soapx.cpu_cost_ns_per_byte(), rmib.cpu_cost_ns_per_byte());
}

TEST(Codecs, RmibRejectsGarbage) {
    RmibCodec rmib;
    Bytes junk{0x00, 0x01, 0x02};
    EXPECT_THROW(rmib.decode_request(junk), CodecError);
    EXPECT_THROW(rmib.decode_reply(junk), CodecError);
    EXPECT_THROW(rmib.decode_request(Bytes{}), CodecError);
}

TEST(Codecs, SoapRejectsGarbage) {
    SoapxCodec soapx;
    std::string junk = "<Envelope><Body></Body>";
    EXPECT_THROW(soapx.decode_request(Bytes(junk.begin(), junk.end())), CodecError);
    std::string wrong = "<Envelope><Body><Nope></Nope></Body></Envelope>";
    EXPECT_THROW(soapx.decode_request(Bytes(wrong.begin(), wrong.end())), CodecError);
}

TEST(Codecs, RmibRejectsTrailingBytes) {
    RmibCodec rmib;
    Bytes b = rmib.encode_reply(CallReply{});
    b.push_back(0xff);
    EXPECT_THROW(rmib.decode_reply(b), CodecError);
}

TEST(Codecs, MakeCodecUnknownProtocol) {
    EXPECT_THROW(make_codec("DCOM"), CodecError);
    EXPECT_THROW(make_codec(""), CodecError);
}

TEST(Codecs, WireSizeOrderingRmiCorbaSoap) {
    // CORBX pays a GIOP-ish header and CDR alignment over RMIB, but stays
    // far below SOAPX's text encoding.
    CallRequest req = sample_request();
    std::size_t rmi = make_codec("RMI")->encode_request(req).size();
    std::size_t corba = make_codec("CORBA")->encode_request(req).size();
    std::size_t soap = make_codec("SOAP")->encode_request(req).size();
    EXPECT_LT(rmi, corba);
    EXPECT_LT(corba, soap);
}

TEST(Codecs, CorbxRejectsGarbage) {
    auto corba = make_codec("CORBA");
    Bytes junk{'N', 'O', 'P', 'E', 1, 0, 0, 0, 0, 0, 0, 0};
    EXPECT_THROW(corba->decode_request(junk), CodecError);
    // A reply is not a request.
    CallReply reply;
    EXPECT_THROW(corba->decode_request(corba->encode_reply(reply)), CodecError);
}

TEST(Codecs, CrossCodecMessagesAreIncompatible) {
    // A SOAP payload must not decode as RMIB (and vice versa) — proxies and
    // skeletons must agree on the protocol.
    RmibCodec rmib;
    SoapxCodec soapx;
    EXPECT_THROW(rmib.decode_request(soapx.encode_request(sample_request())), CodecError);
}

}  // namespace
}  // namespace rafda::net
