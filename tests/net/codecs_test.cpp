#include <gtest/gtest.h>

#include "net/codec.hpp"
#include "net/rmib.hpp"
#include "net/soapx.hpp"
#include "support/error.hpp"

namespace rafda::net {
namespace {

CallRequest sample_request() {
    CallRequest req;
    req.kind = RequestKind::Invoke;
    req.request_id = 42;
    req.trace_id = 7001;
    req.parent_span = 7002;
    req.src_node = 3;
    req.target_oid = 1234567890123ULL;
    req.cls = "";
    req.method = "m";
    req.desc = "(JLY_O_Int;)I";
    req.args.push_back(MarshalledValue::of_long(-5));
    req.args.push_back(MarshalledValue::of_ref(1, 99, "Y_O_Int"));
    req.args.push_back(MarshalledValue::of_str("hello <world> & \"friends\""));
    req.args.push_back(MarshalledValue::null());
    req.args.push_back(MarshalledValue::of_bool(true));
    req.args.push_back(MarshalledValue::of_double(2.5));
    req.args.push_back(MarshalledValue::of_int(-7));
    return req;
}

class BothCodecs : public ::testing::TestWithParam<const char*> {
protected:
    std::unique_ptr<Codec> codec_ = make_codec(GetParam());
};

TEST_P(BothCodecs, RequestRoundTrip) {
    CallRequest req = sample_request();
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
}

TEST_P(BothCodecs, CreateAndDiscoverRoundTrip) {
    CallRequest req;
    req.kind = RequestKind::Create;
    req.request_id = 1;
    req.src_node = 0;
    req.cls = "Account";
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
    req.kind = RequestKind::Discover;
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
}

TEST_P(BothCodecs, ReplyRoundTrip) {
    CallReply reply;
    reply.request_id = 42;
    reply.result = MarshalledValue::of_ref(2, 17, "C_O_Int");
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
}

TEST_P(BothCodecs, FaultReplyRoundTrip) {
    CallReply reply;
    reply.request_id = 7;
    reply.is_fault = true;
    reply.fault_class = "RemoteFault";
    reply.fault_msg = "link <0->1> lost & gone";
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
}

TEST_P(BothCodecs, EmptyArgsAndStrings) {
    CallRequest req;
    req.kind = RequestKind::Invoke;
    req.method = "f";
    req.desc = "()V";
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
    CallReply reply;
    reply.result = MarshalledValue::of_str("");
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
}

TEST_P(BothCodecs, ExtremeNumerics) {
    CallReply reply;
    reply.result = MarshalledValue::of_long(std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
    reply.result = MarshalledValue::of_double(1e-300);
    EXPECT_EQ(codec_->decode_reply(codec_->encode_reply(reply)), reply);
}

TEST_P(BothCodecs, ReliabilityExtensionRoundTrips) {
    CallRequest req = sample_request();
    req.attempt = 3;
    req.deadline_us = 123'456'789ULL;
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
    // Each field alone also carries the extension.
    req.attempt = 0;
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
    req.attempt = 1;
    req.deadline_us = 0;
    EXPECT_EQ(codec_->decode_request(codec_->encode_request(req)), req);
}

TEST_P(BothCodecs, ReliabilityExtensionIsAbsentOnFirstAttempt) {
    // The extension rides on the wire only when a request is a retry or
    // carries a deadline, so fault-free experiments (E5 wire sizes) see
    // exactly the legacy encoding: same size, and for SOAP no attribute
    // text at all.
    CallRequest req = sample_request();
    const Bytes legacy = codec_->encode_request(req);
    const std::string text(legacy.begin(), legacy.end());
    EXPECT_EQ(text.find("attempt"), std::string::npos);
    EXPECT_EQ(text.find("deadline"), std::string::npos);
    req.attempt = 2;
    req.deadline_us = 500;
    EXPECT_GT(codec_->encode_request(req).size(), legacy.size());
}

INSTANTIATE_TEST_SUITE_P(Protocols, BothCodecs,
                         ::testing::Values("RMI", "SOAP", "CORBA"));

TEST(Codecs, SoapIsLargerOnTheWire) {
    RmibCodec rmib;
    SoapxCodec soapx;
    CallRequest req = sample_request();
    EXPECT_GT(soapx.encode_request(req).size(), 2 * rmib.encode_request(req).size());
}

TEST(Codecs, SoapIsMoreExpensivePerByte) {
    RmibCodec rmib;
    SoapxCodec soapx;
    EXPECT_GT(soapx.cpu_cost_ns_per_byte(), rmib.cpu_cost_ns_per_byte());
}

TEST(Codecs, RmibRejectsGarbage) {
    RmibCodec rmib;
    Bytes junk{0x00, 0x01, 0x02};
    EXPECT_THROW(rmib.decode_request(junk), CodecError);
    EXPECT_THROW(rmib.decode_reply(junk), CodecError);
    EXPECT_THROW(rmib.decode_request(Bytes{}), CodecError);
}

TEST(Codecs, SoapRejectsGarbage) {
    SoapxCodec soapx;
    std::string junk = "<Envelope><Body></Body>";
    EXPECT_THROW(soapx.decode_request(Bytes(junk.begin(), junk.end())), CodecError);
    std::string wrong = "<Envelope><Body><Nope></Nope></Body></Envelope>";
    EXPECT_THROW(soapx.decode_request(Bytes(wrong.begin(), wrong.end())), CodecError);
}

TEST(Codecs, RmibRejectsTrailingBytes) {
    RmibCodec rmib;
    Bytes b = rmib.encode_reply(CallReply{});
    b.push_back(0xff);
    EXPECT_THROW(rmib.decode_reply(b), CodecError);
}

TEST(Codecs, MakeCodecUnknownProtocol) {
    EXPECT_THROW(make_codec("DCOM"), CodecError);
    EXPECT_THROW(make_codec(""), CodecError);
}

TEST(Codecs, WireSizeOrderingRmiCorbaSoap) {
    // CORBX pays a GIOP-ish header and CDR alignment over RMIB, but stays
    // far below SOAPX's text encoding.
    CallRequest req = sample_request();
    std::size_t rmi = make_codec("RMI")->encode_request(req).size();
    std::size_t corba = make_codec("CORBA")->encode_request(req).size();
    std::size_t soap = make_codec("SOAP")->encode_request(req).size();
    EXPECT_LT(rmi, corba);
    EXPECT_LT(corba, soap);
}

TEST(Codecs, CorbxRejectsGarbage) {
    auto corba = make_codec("CORBA");
    Bytes junk{'N', 'O', 'P', 'E', 1, 0, 0, 0, 0, 0, 0, 0};
    EXPECT_THROW(corba->decode_request(junk), CodecError);
    // A reply is not a request.
    CallReply reply;
    EXPECT_THROW(corba->decode_request(corba->encode_reply(reply)), CodecError);
}

TEST(Codecs, CrossCodecMessagesAreIncompatible) {
    // A SOAP payload must not decode as RMIB (and vice versa) — proxies and
    // skeletons must agree on the protocol.
    RmibCodec rmib;
    SoapxCodec soapx;
    EXPECT_THROW(rmib.decode_request(soapx.encode_request(sample_request())), CodecError);
}

}  // namespace
}  // namespace rafda::net
