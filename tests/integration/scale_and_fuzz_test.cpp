// Scale and robustness:
//   * the pipeline transforms a JDK-1.4.1-sized corpus (8,200 types) in one
//     pass and the 42k-class output still verifies — the paper's "operate
//     at the bytecode level [so] the set of applications that can be
//     transformed" is not limited by source availability *or* size;
//   * mutation fuzzing: corrupting single instructions in otherwise-valid
//     programs is caught by the verifier (never silently accepted) — the
//     safety net the transformation relies on ("code that has already been
//     verified", Sec 2.1) actually holds.
#include <gtest/gtest.h>

#include "corpus/jdk_corpus.hpp"
#include "corpus/program_gen.hpp"
#include "model/verifier.hpp"
#include "support/rng.hpp"
#include "transform/pipeline.hpp"

namespace rafda {
namespace {

TEST(Scale, FullJdkSizedCorpusTransformsAndVerifies) {
    corpus::JdkCorpusParams params;  // 8,200 types, calibrated defaults
    model::ClassPool pool = corpus::generate_jdk_corpus(params);
    transform::PipelineResult result = transform::run_pipeline(pool);  // verifies output
    // ~40% non-transformable + interfaces leaves ~3.7k substitutable
    // classes, each expanding into 10 artefacts.
    EXPECT_GT(result.report.substituted_classes().size(), 3000u);
    EXPECT_GT(result.pool.size(), 35000u);
    // Every substituted class's full family exists.
    const std::string& probe = result.report.substituted_classes().front();
    for (const char* suffix : {"_O_Int", "_O_Local", "_O_Proxy_RMI", "_O_Proxy_SOAP",
                               "_C_Int", "_C_Local", "_O_Factory", "_C_Factory"})
        EXPECT_TRUE(result.pool.contains(probe + suffix)) << probe << suffix;
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, CorruptedInstructionsAreRejected) {
    corpus::ProgramParams params;
    params.seed = GetParam();
    params.classes = 4;
    model::ClassPool pool = corpus::generate_program(params);
    ASSERT_TRUE(model::verify_pool_collect(pool).empty());

    Rng rng(params.seed * 977);
    int corruptions_caught = 0;
    int corruptions_applied = 0;

    for (const std::string& name : pool.all_names()) {
        model::ClassFile& cf = pool.get_mutable(name);
        for (model::Method& m : cf.methods) {
            if (m.code.empty()) continue;
            std::size_t pc = rng.below(m.code.instrs.size());
            model::Instruction saved = m.code.instrs[pc];
            model::Instruction& victim = m.code.instrs[pc];

            switch (rng.below(5)) {
                case 0:  // branch target out of range
                    victim = model::ins::go(static_cast<int>(m.code.instrs.size()) + 7);
                    break;
                case 1:  // slot out of range
                    victim = model::ins::load(m.code.max_locals + 3);
                    break;
                case 2:  // stack underflow
                    victim = model::ins::pop();
                    victim = model::ins::add();  // needs two operands
                    break;
                case 3:  // dangling field reference
                    victim = model::ins::get_field("NoSuchClass", "nofield",
                                                   model::TypeDesc::int_());
                    break;
                case 4:  // dangling method reference
                    victim = model::ins::invoke_static("NoSuchClass", "nomethod",
                                                       model::MethodSig::parse("()V"));
                    break;
            }
            ++corruptions_applied;
            pool.invalidate_caches();
            // Either the mutation happens to be harmless (it reproduced a
            // valid instruction) or the verifier must flag it; we count and
            // require that a substantial fraction is caught.
            if (!model::verify_pool_collect(pool).empty()) ++corruptions_caught;

            victim = saved;  // restore for the next round
            pool.invalidate_caches();
        }
    }
    ASSERT_TRUE(model::verify_pool_collect(pool).empty());  // restoration worked
    EXPECT_GT(corruptions_applied, 10);
    // The chosen mutations are all structurally invalid; a few can alias
    // valid code (e.g. replacing one add with another), so require >= 80%.
    EXPECT_GE(corruptions_caught * 10, corruptions_applied * 8)
        << corruptions_caught << "/" << corruptions_applied;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rafda
