// Full-stack integration: one application driven through the complete
// lifecycle the paper envisions — written undistributed, transformed,
// deployed from a textual policy, exercised across three nodes and two
// protocols, adapted at runtime (instance + closure + singleton
// migrations), surviving injected faults, and serialised/reloaded as a
// binary artefact along the way.
#include <gtest/gtest.h>

#include "corpus/program_gen.hpp"
#include "model/assembler.hpp"
#include "model/binio.hpp"
#include "model/verifier.hpp"
#include "runtime/adapter.hpp"
#include "runtime/policy_config.hpp"
#include "runtime/system.hpp"
#include "transform/local_binder.hpp"
#include "vm/prelude.hpp"

namespace rafda {
namespace {

using vm::Value;

constexpr const char* kWarehouseApp = R"RIR(
class Item {
  field sku I
  field qty I
  ctor (II)V {
    load 0
    load 1
    putfield Item.sku I
    load 0
    load 2
    putfield Item.qty I
    return
  }
  method take (I)Z {
    load 0
    getfield Item.qty I
    load 1
    cmpge
    iffalse No
    load 0
    load 0
    getfield Item.qty I
    load 1
    sub
    putfield Item.qty I
    const true
    returnvalue
  No:
    const false
    returnvalue
  }
}
class Warehouse {
  field a LItem;
  field b LItem;
  static field shipments I
  ctor ()V {
    load 0
    new Item
    dup
    const 1
    const 100
    invokespecial Item.<init> (II)V
    putfield Warehouse.a LItem;
    load 0
    new Item
    dup
    const 2
    const 50
    invokespecial Item.<init> (II)V
    putfield Warehouse.b LItem;
    return
  }
  method ship (II)S {
    locals 3
    load 1
    const 1
    cmpeq
    iffalse UseB
    load 0
    getfield Warehouse.a LItem;
    store 3
    goto Go
  UseB:
    load 0
    getfield Warehouse.b LItem;
    store 3
  Go:
    load 3
    load 2
    invokevirtual Item.take (I)Z
    iffalse Fail
    getstatic Warehouse.shipments I
    const 1
    add
    putstatic Warehouse.shipments I
    const "shipped sku "
    load 1
    concat
    returnvalue
  Fail:
    const "out of stock sku "
    load 1
    concat
    returnvalue
  }
}
)RIR";

struct ScenarioFixture : ::testing::Test {
    model::ClassPool original;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kWarehouseApp);
        model::verify_pool(original);
    }
};

TEST_F(ScenarioFixture, EndToEndLifecycle) {
    // --- deploy from configuration ------------------------------------
    runtime::System system(original);
    system.add_node();
    system.add_node();
    system.add_node();
    runtime::apply_policy_config(R"(
protocol default RMI
instance Warehouse on 1 via RMI
instance Item on 1 via RMI
singleton Warehouse on 1
link 0 -> 1 latency 150
link 1 -> 0 latency 150
link 0 -> 2 latency 800
link 2 -> 0 latency 800
)",
                                 system.policy(), &system.network());

    // --- run from node 0; the warehouse (and its items) are remote ----
    Value wh = system.construct(0, "Warehouse", "()V");
    EXPECT_EQ(system.node(0).interp().class_of(wh.as_ref()).name, "Warehouse_O_Proxy_RMI");
    vm::Interpreter& n0 = system.node(0).interp();
    EXPECT_EQ(n0.call_virtual(wh, "ship", "(II)S",
                              {Value::of_int(1), Value::of_int(10)})
                  .as_str(),
              "shipped sku 1");
    EXPECT_EQ(n0.call_virtual(wh, "ship", "(II)S",
                              {Value::of_int(2), Value::of_int(60)})
                  .as_str(),
              "out of stock sku 2");
    EXPECT_GT(system.remote_stats().at("RMI").calls, 0u);

    // --- adapt: pull the warehouse closure to node 0 -------------------
    // The object lives on node 1 (created there by policy); find it via
    // the proxy's terminal and move the whole cluster here.
    auto [home, oid] = system.resolve_terminal(0, wh.as_ref());
    ASSERT_EQ(home, 1);
    std::size_t moved = system.migrate_closure(1, oid, 0, "RMI");
    EXPECT_EQ(moved, 3u);  // warehouse + 2 items
    system.shorten_chain(0, wh.as_ref());

    system.reset_stats();
    EXPECT_EQ(n0.call_virtual(wh, "ship", "(II)S",
                              {Value::of_int(1), Value::of_int(5)})
                  .as_str(),
              "shipped sku 1");
    // Instance calls are local now (the proxy loops back on-node), but the
    // statics singleton is still homed on node 1, so `shipments` bumps
    // still cross the wire.
    EXPECT_GT(system.network().total_stats().messages, 0u);
    EXPECT_EQ(system.call_static(0, "Warehouse", "get_shipments", "()I").as_int(), 2);

    // --- move the static state too; then everything is node-0-local ----
    system.migrate_singleton("Warehouse", 0, "RMI");
    system.reset_stats();
    EXPECT_EQ(n0.call_virtual(wh, "ship", "(II)S",
                              {Value::of_int(2), Value::of_int(1)})
                  .as_str(),
              "shipped sku 2");
    EXPECT_EQ(system.call_static(0, "Warehouse", "get_shipments", "()I").as_int(), 3);
    EXPECT_EQ(system.network().total_stats().messages, 0u);
}

TEST_F(ScenarioFixture, FaultsDoNotCorruptAfterRecovery) {
    runtime::System system(original);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("Warehouse", 1, "SOAP");
    Value wh = system.construct(0, "Warehouse", "()V");
    vm::Interpreter& n0 = system.node(0).interp();

    n0.call_virtual(wh, "ship", "(II)S", {Value::of_int(1), Value::of_int(10)});

    // Outage: everything dropped for a while.
    system.network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});
    for (int k = 0; k < 3; ++k)
        EXPECT_THROW(n0.call_virtual(wh, "ship", "(II)S",
                                     {Value::of_int(1), Value::of_int(10)}),
                     vm::GuestException);

    // Recovery: state on node 1 is exactly as before the outage.
    system.network().set_link(0, 1, net::LinkParams{100, 0.0, 0.0});
    EXPECT_EQ(n0.call_virtual(wh, "ship", "(II)S",
                              {Value::of_int(1), Value::of_int(90)})
                  .as_str(),
              "shipped sku 1");  // 100 - 10 - 90 = 0: just enough
    EXPECT_EQ(n0.call_virtual(wh, "ship", "(II)S",
                              {Value::of_int(1), Value::of_int(1)})
                  .as_str(),
              "out of stock sku 1");
}

TEST_F(ScenarioFixture, TransformedArtefactSurvivesSerialisation) {
    // Transform once, save the artefact, load it elsewhere, run locally.
    transform::PipelineResult result = transform::run_pipeline(original);
    Bytes artefact = model::save_pool(result.pool);
    model::ClassPool loaded = model::load_pool(artefact);
    model::verify_pool(loaded);

    vm::Interpreter interp(loaded);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    Value wh = interp.call_static("Warehouse_O_Factory", "make", "()LWarehouse_O_Int;");
    interp.call_static("Warehouse_O_Factory", "init", "(LWarehouse_O_Int;)V", {wh});
    EXPECT_EQ(interp.call_virtual(wh, "ship", "(II)S",
                                  {Value::of_int(2), Value::of_int(50)})
                  .as_str(),
              "shipped sku 2");
}

TEST_F(ScenarioFixture, AdapterDrivesGeneratedWorkload) {
    // GreedyAdapter steering a generated program's root object between
    // nodes as its dependency (we fake the affinity signal) moves.
    corpus::ProgramParams params;
    params.classes = 3;
    params.seed = 77;
    model::ClassPool pool = corpus::generate_program(params);
    runtime::System system(pool);
    system.add_node();
    system.add_node();

    Value root = system.construct(0, "Gen2", "(J)V", {Value::of_long(9)});
    runtime::GreedyAdapter adapter(system, 0, root.as_ref(), "RMI");
    std::int64_t last = 0;
    for (int phase = 0; phase < 4; ++phase) {
        adapter.set_affinity(phase % 2);
        std::uint64_t t0 = system.network().now_us();
        for (int k = 0; k < 3; ++k)
            last = system.node(0)
                       .interp()
                       .call_virtual(root, "step", "(J)J", {Value::of_long(k)})
                       .as_long();
        adapter.report_phase_cost(system.network().now_us() - t0);
    }
    // Compare against a never-migrated local run.
    transform::PipelineResult local = transform::run_pipeline(pool);
    vm::Interpreter interp(local.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, local.report);
    Value lroot = interp.call_static("Gen2_O_Factory", "make", "()LGen2_O_Int;");
    interp.call_static("Gen2_O_Factory", "init", "(LGen2_O_Int;J)V",
                       {lroot, Value::of_long(9)});
    std::int64_t expected = 0;
    for (int phase = 0; phase < 4; ++phase)
        for (int k = 0; k < 3; ++k)
            expected = interp.call_virtual(lroot, "step", "(J)J", {Value::of_long(k)})
                           .as_long();
    EXPECT_EQ(last, expected);
}

}  // namespace
}  // namespace rafda
