// End-to-end tests of the rafdac CLI binary (path injected by CMake).
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace {

struct RunResult {
    int status = -1;
    std::string output;  // stdout only
};

RunResult run_cli(const std::string& args) {
    std::string cmd = std::string(RAFDAC_PATH) + " " + args + " 2>/dev/null";
    std::array<char, 512> buf{};
    RunResult result;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (!pipe) return result;
    while (fgets(buf.data(), buf.size(), pipe)) result.output += buf.data();
    int rc = pclose(pipe);
    result.status = WEXITSTATUS(rc);
    return result;
}

/// Minimal recursive-descent JSON checker — just enough of a parser to
/// prove the --json outputs round-trip through one.
class JsonChecker {
public:
    explicit JsonChecker(const std::string& s) : s_(s) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool eat(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                    s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        if (!eat('{')) return false;
        skip_ws();
        if (eat('}')) return true;
        do {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (!eat(':')) return false;
            skip_ws();
            if (!value()) return false;
            skip_ws();
        } while (eat(','));
        return eat('}');
    }
    bool array() {
        if (!eat('[')) return false;
        skip_ws();
        if (eat(']')) return true;
        do {
            skip_ws();
            if (!value()) return false;
            skip_ws();
        } while (eat(','));
        return eat(']');
    }
    bool string() {
        if (!eat('"')) return false;
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
            if (c == '\\') {
                if (pos_ >= s_.size()) return false;
                char e = s_[pos_++];
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k)
                        if (pos_ >= s_.size() || !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_++])))
                            return false;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
        }
        return false;
    }
    bool number() {
        std::size_t start = pos_;
        eat('-');
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start + (s_[start] == '-' ? 1u : 0u);
    }
    bool literal(const char* word) {
        for (const char* p = word; *p; ++p)
            if (!eat(*p)) return false;
        return true;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

bool json_parses(const std::string& s) { return JsonChecker(s).valid(); }

class RafdacCli : public ::testing::Test {
protected:
    std::string app_;  // per-test file names: tests run concurrently under
    std::string cfg_;  // ctest -j and must not clobber each other's inputs

    void SetUp() override {
        const std::string base = std::string(::testing::TempDir()) + "rafdac_" +
                                 ::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name();
        app_ = base + "_app.rir";
        cfg_ = base + "_policy.cfg";
        std::ofstream app(app_);
        app << R"(
class Greeter {
  field who S
  ctor (S)V {
    load 0
    load 1
    putfield Greeter.who S
    return
  }
  method greet ()S {
    const "hello, "
    load 0
    getfield Greeter.who S
    concat
    returnvalue
  }
}
class Main {
  static method main ()V {
    new Greeter
    dup
    const "cli"
    invokespecial Greeter.<init> (S)V
    invokevirtual Greeter.greet ()S
    invokestatic Sys.println (S)V
    return
  }
}
)";
        std::ofstream cfg(cfg_);
        cfg << "protocol default SOAP\ninstance Greeter on 1 via SOAP\n";
    }
};

TEST_F(RafdacCli, Analyze) {
    RunResult r = run_cli("analyze " + app_);
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("transformable:      2"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("Sys: native-method"), std::string::npos);
    EXPECT_NE(r.output.find("Throwable: special-class"), std::string::npos);
}

TEST_F(RafdacCli, RunLocal) {
    RunResult r = run_cli("run " + app_ + " Main");
    EXPECT_EQ(r.status, 0);
    EXPECT_EQ(r.output, "hello, cli\n");
}

TEST_F(RafdacCli, TransformThenPrintArtefact) {
    RunResult t = run_cli("transform " + app_ + " " + app_ + "b");
    EXPECT_EQ(t.status, 0);
    EXPECT_NE(t.output.find("substituted 2"), std::string::npos) << t.output;

    RunResult p = run_cli("print " + app_ + "b");
    EXPECT_EQ(p.status, 0);
    EXPECT_NE(p.output.find("interface Greeter_O_Int"), std::string::npos);
    EXPECT_NE(p.output.find("class Greeter_O_Factory"), std::string::npos);
}

TEST_F(RafdacCli, DeployDistributed) {
    RunResult r = run_cli("deploy " + app_ + " " + cfg_ + " Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_EQ(r.output, "hello, cli\n");  // identical application output
}

TEST_F(RafdacCli, StatsPrintsRegistryTable) {
    RunResult r = run_cli("stats " + app_ + " " + cfg_ + " Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("rpc.proto.SOAP.calls"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("net.link.0.1.bytes"), std::string::npos);
    EXPECT_NE(r.output.find("vm.node0.instructions"), std::string::npos);
    // The application's own output goes to stderr, keeping stdout machine-
    // readable.
    EXPECT_EQ(r.output.find("hello, cli"), std::string::npos);
}

TEST_F(RafdacCli, StatsJsonRoundTripsThroughParser) {
    RunResult r = run_cli("stats " + app_ + " " + cfg_ + " Main 2 --json");
    EXPECT_EQ(r.status, 0);
    // One line of JSON, nothing else.
    ASSERT_FALSE(r.output.empty());
    EXPECT_EQ(r.output.find('\n'), r.output.size() - 1);
    EXPECT_TRUE(json_parses(r.output)) << r.output;
    EXPECT_NE(r.output.find("\"rpc.proto.SOAP.calls\":"), std::string::npos);
}

TEST_F(RafdacCli, TraceShowsNestedSpanTree) {
    RunResult r = run_cli("trace " + app_ + " " + cfg_ + " Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("rpc.invoke Greeter.greet"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("rpc.dispatch greet"), std::string::npos);
    EXPECT_NE(r.output.find("vm.execute greet"), std::string::npos);
    EXPECT_NE(r.output.find("net.transfer 0->1"), std::string::npos);
    EXPECT_NE(r.output.find("└─"), std::string::npos);  // actual nesting
}

TEST_F(RafdacCli, TraceJsonRoundTripsThroughParser) {
    RunResult r = run_cli("trace " + app_ + " " + cfg_ + " Main 2 --json");
    EXPECT_EQ(r.status, 0);
    ASSERT_FALSE(r.output.empty());
    EXPECT_EQ(r.output.find('\n'), r.output.size() - 1);
    EXPECT_TRUE(json_parses(r.output)) << r.output;
    EXPECT_NE(r.output.find("\"name\":\"rpc.dispatch greet\""), std::string::npos);
}

TEST_F(RafdacCli, NetPrintsPerLinkOccupancyTable) {
    RunResult r = run_cli("net " + app_ + " " + cfg_ + " Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("virtual time:"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("busy_us"), std::string::npos);
    EXPECT_NE(r.output.find("util%"), std::string::npos);
    EXPECT_NE(r.output.find("node 0 clock"), std::string::npos);
    EXPECT_NE(r.output.find("node 1 clock"), std::string::npos);
    // Application output stays on stderr.
    EXPECT_EQ(r.output.find("hello, cli"), std::string::npos);
}

TEST_F(RafdacCli, NetJsonRoundTripsThroughParser) {
    RunResult r = run_cli("net " + app_ + " " + cfg_ + " Main 2 --json");
    EXPECT_EQ(r.status, 0);
    ASSERT_FALSE(r.output.empty());
    EXPECT_EQ(r.output.find('\n'), r.output.size() - 1);
    EXPECT_TRUE(json_parses(r.output)) << r.output;
    EXPECT_NE(r.output.find("\"busy_us\":"), std::string::npos);
    EXPECT_NE(r.output.find("\"clock_us\":"), std::string::npos);
}

TEST_F(RafdacCli, JournalPrintsEventTable) {
    RunResult r = run_cli("journal " + app_ + " " + cfg_ + " Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("journal:"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("recorded, 0 overwritten"), std::string::npos);
    // The deployment's RPC lifecycle is on the timeline, with the
    // class.method detail on the send.
    for (const char* kind : {"send", "arrive", "dispatch", "reply"})
        EXPECT_NE(r.output.find(kind), std::string::npos) << kind;
    EXPECT_NE(r.output.find("Greeter.greet"), std::string::npos);
    // Application output stays on stderr.
    EXPECT_EQ(r.output.find("hello, cli"), std::string::npos);
}

TEST_F(RafdacCli, JournalJsonRoundTripsThroughParser) {
    RunResult r = run_cli("journal " + app_ + " " + cfg_ + " Main 2 --json");
    EXPECT_EQ(r.status, 0);
    ASSERT_FALSE(r.output.empty());
    EXPECT_EQ(r.output.find('\n'), r.output.size() - 1);
    EXPECT_TRUE(json_parses(r.output)) << r.output;
    EXPECT_NE(r.output.find("\"events\":["), std::string::npos);
    EXPECT_NE(r.output.find("\"kind\":\"send\""), std::string::npos);
    EXPECT_NE(r.output.find("\"kind\":\"dispatch\""), std::string::npos);
}

TEST_F(RafdacCli, TraceChromeWritesLoadableTraceEventJson) {
    const std::string out = app_ + "_chrome.json";
    RunResult r = run_cli("trace " + app_ + " " + cfg_ + " Main 2 --chrome " + out);
    EXPECT_EQ(r.status, 0);
    // The span tree still goes to stdout; the Chrome export is a file.
    EXPECT_NE(r.output.find("rpc.invoke Greeter.greet"), std::string::npos);

    std::ifstream in(out);
    ASSERT_TRUE(in.good()) << out;
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_TRUE(json_parses(doc)) << doc;
    // Trace-event essentials Perfetto's legacy ingest requires: complete
    // ("X") span events with timestamps, process/thread metadata naming
    // the nodes and client lanes.
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":"), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":"), std::string::npos);
    EXPECT_NE(doc.find("process_name"), std::string::npos);
    EXPECT_NE(doc.find("rpc.dispatch greet"), std::string::npos);
    std::remove(out.c_str());
}

class RafdacFaultsCli : public RafdacCli {
protected:
    std::string faults_cfg_;

    void SetUp() override {
        RafdacCli::SetUp();
        faults_cfg_ = cfg_ + ".faults";
        std::ofstream cfg(faults_cfg_);
        cfg << "protocol default SOAP\n"
               "instance Greeter on 1 via SOAP\n"
               "retry attempts 5 base 1000\n"
               "dedup on capacity 64\n"
               "breaker threshold 5 cooldown 9000\n"
               "fault link 0 -> 1 down from 100000 until 200000\n"
               "fault node 1 crash from 300000 until 400000\n";
    }
};

TEST_F(RafdacFaultsCli, FaultsPrintsPlanAndBreakerTable) {
    RunResult r = run_cli("faults " + app_ + " " + faults_cfg_ + " Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("fault plan (2 windows):"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("down  link 0 -> 1  [100000, 200000)us"),
              std::string::npos);
    EXPECT_NE(r.output.find("crash node 1  [300000, 400000)us"), std::string::npos);
    // The breaker for (node 1, SOAP) exists and never tripped.
    EXPECT_NE(r.output.find("node 1 via SOAP: closed"), std::string::npos);
    EXPECT_NE(r.output.find("rpc: retries"), std::string::npos);
    // Application output stays on stderr.
    EXPECT_EQ(r.output.find("hello, cli"), std::string::npos);
}

TEST_F(RafdacFaultsCli, FaultsJsonRoundTripsThroughParser) {
    RunResult r = run_cli("faults " + app_ + " " + faults_cfg_ + " Main 2 --json");
    EXPECT_EQ(r.status, 0);
    ASSERT_FALSE(r.output.empty());
    EXPECT_EQ(r.output.find('\n'), r.output.size() - 1);
    EXPECT_TRUE(json_parses(r.output)) << r.output;
    EXPECT_NE(r.output.find("\"fault_windows\":"), std::string::npos);
    EXPECT_NE(r.output.find("\"kind\":\"down\""), std::string::npos);
    EXPECT_NE(r.output.find("\"kind\":\"crash\""), std::string::npos);
    EXPECT_NE(r.output.find("\"state\":\"closed\""), std::string::npos);
    EXPECT_NE(r.output.find("\"dedup_hits\":"), std::string::npos);
}

TEST_F(RafdacFaultsCli, RetryPolicyFromConfigRecoversInjectedLoss) {
    // A drop-everything window over the deployment's first moments: the
    // Create request is lost, the configured retry re-sends it, and the
    // application output is indistinguishable from a fault-free run.
    std::ofstream(faults_cfg_) << "protocol default SOAP\n"
                                  "instance Greeter on 1 via SOAP\n"
                                  "retry attempts 5 base 1000\n"
                                  "dedup on\n"
                                  "fault link 0 -> 1 drop 1.0 from 0 until 400\n";
    RunResult deploy = run_cli("deploy " + app_ + " " + faults_cfg_ + " Main 2");
    EXPECT_EQ(deploy.status, 0);
    EXPECT_EQ(deploy.output, "hello, cli\n");

    RunResult faults = run_cli("faults " + app_ + " " + faults_cfg_ + " Main 2 --json");
    EXPECT_EQ(faults.status, 0);
    EXPECT_TRUE(json_parses(faults.output)) << faults.output;
    EXPECT_EQ(faults.output.find("\"retries\":0"), std::string::npos) << faults.output;
}

class RafdacAdaptCli : public RafdacCli {
protected:
    std::string adapt_cfg_;

    void SetUp() override {
        RafdacCli::SetUp();
        adapt_cfg_ = cfg_ + ".adapt";
        std::ofstream(adapt_cfg_)
            << "protocol default SOAP\n"
               "instance Greeter on 1 via SOAP\n"
               "adapt on interval 500 migrate-threshold 64 replicate-ratio 0.9\n";
    }
};

TEST_F(RafdacAdaptCli, AdaptConfigGrammarIsAcceptedByDeploy) {
    // The `adapt` directive is part of the shared policy grammar: every
    // deploy-style subcommand must accept a config that uses it.
    RunResult r = run_cli("deploy " + app_ + " " + adapt_cfg_ + " Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_EQ(r.output, "hello, cli\n");
}

TEST_F(RafdacAdaptCli, AdaptPrintsDecisionTableAndCounters) {
    RunResult r = run_cli("adapt " + app_ + " " + adapt_cfg_ + " Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("controller tick(s)"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("seq"), std::string::npos);
    EXPECT_NE(r.output.find("projected"), std::string::npos);
    EXPECT_NE(r.output.find("adapt: "), std::string::npos);
    // Application output stays on stderr.
    EXPECT_EQ(r.output.find("hello, cli"), std::string::npos);
}

TEST_F(RafdacAdaptCli, AdaptJsonRoundTripsThroughParser) {
    // A config without an adapt line still reports (engine at defaults).
    RunResult r = run_cli("adapt " + app_ + " " + cfg_ + " Main 2 --json");
    EXPECT_EQ(r.status, 0);
    ASSERT_FALSE(r.output.empty());
    EXPECT_EQ(r.output.find('\n'), r.output.size() - 1);
    EXPECT_TRUE(json_parses(r.output)) << r.output;
    EXPECT_NE(r.output.find("\"ticks\":"), std::string::npos);
    EXPECT_NE(r.output.find("\"decisions\":"), std::string::npos);
    EXPECT_NE(r.output.find("\"migrations\":"), std::string::npos);
    EXPECT_NE(r.output.find("\"replications\":"), std::string::npos);
    EXPECT_NE(r.output.find("\"bytes_saved_est\":"), std::string::npos);
}

TEST_F(RafdacCli, UsageAndErrors) {
    EXPECT_EQ(run_cli("").status, 1);
    EXPECT_EQ(run_cli("frobnicate x").status, 1);
    EXPECT_EQ(run_cli("analyze /nonexistent/x.rir").status, 2);
    EXPECT_EQ(run_cli("run " + app_ + "b Main").status, 2);  // needs .rir
    EXPECT_EQ(run_cli("stats /nonexistent/x.rir " + cfg_ + " Main").status, 2);
    EXPECT_EQ(run_cli("faults " + app_).status, 1);  // missing config/main
    EXPECT_EQ(run_cli("adapt " + app_).status, 1);   // missing config/main
    // --chrome needs a path operand.
    EXPECT_EQ(run_cli("trace " + app_ + " " + cfg_ + " Main 2 --chrome").status, 1);
}

}  // namespace
