// End-to-end tests of the rafdac CLI binary (path injected by CMake).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

struct RunResult {
    int status = -1;
    std::string output;  // stdout only
};

RunResult run_cli(const std::string& args) {
    std::string cmd = std::string(RAFDAC_PATH) + " " + args + " 2>/dev/null";
    std::array<char, 512> buf{};
    RunResult result;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (!pipe) return result;
    while (fgets(buf.data(), buf.size(), pipe)) result.output += buf.data();
    int rc = pclose(pipe);
    result.status = WEXITSTATUS(rc);
    return result;
}

class RafdacCli : public ::testing::Test {
protected:
    std::string dir_;

    void SetUp() override {
        dir_ = ::testing::TempDir();
        std::ofstream app(dir_ + "app.rir");
        app << R"(
class Greeter {
  field who S
  ctor (S)V {
    load 0
    load 1
    putfield Greeter.who S
    return
  }
  method greet ()S {
    const "hello, "
    load 0
    getfield Greeter.who S
    concat
    returnvalue
  }
}
class Main {
  static method main ()V {
    new Greeter
    dup
    const "cli"
    invokespecial Greeter.<init> (S)V
    invokevirtual Greeter.greet ()S
    invokestatic Sys.println (S)V
    return
  }
}
)";
        std::ofstream cfg(dir_ + "policy.cfg");
        cfg << "protocol default SOAP\ninstance Greeter on 1 via SOAP\n";
    }
};

TEST_F(RafdacCli, Analyze) {
    RunResult r = run_cli("analyze " + dir_ + "app.rir");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("transformable:      2"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("Sys: native-method"), std::string::npos);
    EXPECT_NE(r.output.find("Throwable: special-class"), std::string::npos);
}

TEST_F(RafdacCli, RunLocal) {
    RunResult r = run_cli("run " + dir_ + "app.rir Main");
    EXPECT_EQ(r.status, 0);
    EXPECT_EQ(r.output, "hello, cli\n");
}

TEST_F(RafdacCli, TransformThenPrintArtefact) {
    RunResult t = run_cli("transform " + dir_ + "app.rir " + dir_ + "app.rirb");
    EXPECT_EQ(t.status, 0);
    EXPECT_NE(t.output.find("substituted 2"), std::string::npos) << t.output;

    RunResult p = run_cli("print " + dir_ + "app.rirb");
    EXPECT_EQ(p.status, 0);
    EXPECT_NE(p.output.find("interface Greeter_O_Int"), std::string::npos);
    EXPECT_NE(p.output.find("class Greeter_O_Factory"), std::string::npos);
}

TEST_F(RafdacCli, DeployDistributed) {
    RunResult r = run_cli("deploy " + dir_ + "app.rir " + dir_ + "policy.cfg Main 2");
    EXPECT_EQ(r.status, 0);
    EXPECT_EQ(r.output, "hello, cli\n");  // identical application output
}

TEST_F(RafdacCli, UsageAndErrors) {
    EXPECT_EQ(run_cli("").status, 1);
    EXPECT_EQ(run_cli("frobnicate x").status, 1);
    EXPECT_EQ(run_cli("analyze /nonexistent/x.rir").status, 2);
    EXPECT_EQ(run_cli("run " + dir_ + "app.rirb Main").status, 2);  // needs .rir
}

}  // namespace
