#include "runtime/system.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "transform/local_binder.hpp"
#include "transform/naming.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

// The Figure 1 application: objects of class A and class B hold references
// to a shared instance of class C.
constexpr const char* kFig1App = R"(
class C {
  field state I
  ctor ()V {
    return
  }
  method poke ()V {
    load 0
    load 0
    getfield C.state I
    const 1
    add
    putfield C.state I
    return
  }
  method read ()I {
    load 0
    getfield C.state I
    returnvalue
  }
}
class A {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield A.c LC;
    return
  }
  method act ()V {
    load 0
    getfield A.c LC;
    invokevirtual C.poke ()V
    return
  }
}
class B {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield B.c LC;
    return
  }
  method observe ()I {
    load 0
    getfield B.c LC;
    invokevirtual C.read ()I
    returnvalue
  }
}
class Registry {
  static field count I
  static method register ()I {
    getstatic Registry.count I
    const 1
    add
    dup
    putstatic Registry.count I
    returnvalue
  }
}
)";

model::ClassPool make_original() {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kFig1App);
    model::verify_pool(pool);
    return pool;
}

struct SystemFixture : ::testing::Test {
    model::ClassPool original = make_original();
};

TEST_F(SystemFixture, SingleNodeMatchesLocalBinding) {
    // Distributed system with one node.
    System system(original);
    system.add_node();
    Value c = system.construct(0, "C", "()V");
    Value a = system.construct(0, "A", "(LC;)V", {c});
    Value b = system.construct(0, "B", "(LC;)V", {c});
    Node& n0 = system.node(0);
    n0.interp().call_virtual(a, "act", "()V");
    n0.interp().call_virtual(a, "act", "()V");
    std::int32_t distributed = n0.interp().call_virtual(b, "observe", "()I").as_int();

    // Reference: pure local binding of the same transformed program.
    transform::PipelineResult local = transform::run_pipeline(system.original_pool());
    vm::Interpreter interp(local.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, local.report);
    Value lc = interp.call_static("C_O_Factory", "make", "()LC_O_Int;");
    interp.call_static("C_O_Factory", "init", "(LC_O_Int;)V", {lc});
    Value la = interp.call_static("A_O_Factory", "make", "()LA_O_Int;");
    interp.call_static("A_O_Factory", "init", "(LA_O_Int;LC_O_Int;)V", {la, lc});
    Value lb = interp.call_static("B_O_Factory", "make", "()LB_O_Int;");
    interp.call_static("B_O_Factory", "init", "(LB_O_Int;LC_O_Int;)V", {lb, lc});
    interp.call_virtual(la, "act", "()V");
    interp.call_virtual(la, "act", "()V");
    std::int32_t local_result = interp.call_virtual(lb, "observe", "()I").as_int();

    EXPECT_EQ(distributed, local_result);
    EXPECT_EQ(distributed, 2);
    // No remote traffic on a single node.
    EXPECT_TRUE(system.remote_stats().empty());
}

TEST_F(SystemFixture, PolicyPlacesInstancesRemotely) {
    System system(original);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("C", 1, "RMI");

    Value c = system.construct(0, "C", "()V");
    // Node 0 holds a proxy; node 1 holds the real object.
    const std::string& cls0 = system.node(0).interp().class_of(c.as_ref()).name;
    EXPECT_EQ(cls0, "C_O_Proxy_RMI");

    Value a = system.construct(0, "A", "(LC;)V", {c});
    Value b = system.construct(0, "B", "(LC;)V", {c});
    system.node(0).interp().call_virtual(a, "act", "()V");
    system.node(0).interp().call_virtual(a, "act", "()V");
    system.node(0).interp().call_virtual(a, "act", "()V");
    EXPECT_EQ(system.node(0).interp().call_virtual(b, "observe", "()I").as_int(), 3);

    const auto& stats = system.remote_stats().at("RMI");
    EXPECT_GT(stats.calls, 0u);
    EXPECT_EQ(stats.creates, 1u);
    EXPECT_EQ(stats.faults, 0u);
    EXPECT_GT(stats.request_bytes, 0u);
}

TEST_F(SystemFixture, RemoteAndLocalVersionsInterchangeable) {
    // The same program runs unmodified whether C is local or remote — only
    // the policy differs (the paper's central claim).
    auto run = [&](bool remote) {
        System system(original);
        system.add_node();
        system.add_node();
        if (remote) system.policy().set_instance_home("C", 1, "SOAP");
        Value c = system.construct(0, "C", "()V");
        Value a = system.construct(0, "A", "(LC;)V", {c});
        Value b = system.construct(0, "B", "(LC;)V", {c});
        for (int k = 0; k < 5; ++k) system.node(0).interp().call_virtual(a, "act", "()V");
        return system.node(0).interp().call_virtual(b, "observe", "()I").as_int();
    };
    EXPECT_EQ(run(false), run(true));
}

TEST_F(SystemFixture, SingletonIsUniqueAcrossNodes) {
    System system(original);
    system.add_node();
    system.add_node();
    system.add_node();
    // Static state lives on node 0 by default; all nodes see one counter.
    EXPECT_EQ(system.call_static(1, "Registry", "register", "()I").as_int(), 1);
    EXPECT_EQ(system.call_static(2, "Registry", "register", "()I").as_int(), 2);
    EXPECT_EQ(system.call_static(0, "Registry", "register", "()I").as_int(), 3);
    EXPECT_EQ(system.call_static(1, "Registry", "register", "()I").as_int(), 4);
}

TEST_F(SystemFixture, SingletonHomePolicy) {
    System system(original);
    system.add_node();
    system.add_node();
    system.policy().set_singleton_home("Registry", 1, "SOAP");
    EXPECT_EQ(system.call_static(0, "Registry", "register", "()I").as_int(), 1);
    // The singleton object physically lives on node 1.
    EXPECT_GT(system.remote_stats().at("SOAP").discovers, 0u);
}

TEST_F(SystemFixture, ProtocolSelectionPerClass) {
    System system(original);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("C", 1, "SOAP");
    Value c = system.construct(0, "C", "()V");
    EXPECT_EQ(system.node(0).interp().class_of(c.as_ref()).name, "C_O_Proxy_SOAP");
    system.node(0).interp().call_virtual(c, "poke", "()V");
    EXPECT_TRUE(system.remote_stats().count("SOAP"));
    EXPECT_FALSE(system.remote_stats().count("RMI"));
}

TEST_F(SystemFixture, ReferencesTravelBetweenNodes) {
    // C lives on node 1; A lives on node 2; node 0 wires them together.
    System system(original);
    system.add_node();
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("C", 1);
    system.policy().set_instance_home("A", 2);
    Value c = system.construct(0, "C", "()V");
    Value a = system.construct(0, "A", "(LC;)V", {c});
    // a is a proxy on node 0 to node 2; a.c is a proxy on node 2 to node 1.
    system.node(0).interp().call_virtual(a, "act", "()V");
    Value b = system.construct(0, "B", "(LC;)V", {c});
    EXPECT_EQ(system.node(0).interp().call_virtual(b, "observe", "()I").as_int(), 1);
}

TEST_F(SystemFixture, ImportedProxiesAreDeduplicated) {
    System system(original);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("C", 1);
    Value c = system.construct(0, "C", "()V");
    Value a1 = system.construct(0, "A", "(LC;)V", {c});
    Value a2 = system.construct(0, "A", "(LC;)V", {c});
    // Both A instances on node 0 hold the *same* proxy object for C.
    Value c1 = system.node(0).interp().call_virtual(a1, "get_c", "()LC_O_Int;");
    Value c2 = system.node(0).interp().call_virtual(a2, "get_c", "()LC_O_Int;");
    EXPECT_EQ(c1.as_ref(), c2.as_ref());
}

TEST_F(SystemFixture, VirtualTimeAdvancesWithRemoteCalls) {
    System system(original);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("C", 1);
    EXPECT_EQ(system.network().now_us(), 0u);
    Value c = system.construct(0, "C", "()V");
    std::uint64_t after_create = system.network().now_us();
    EXPECT_GT(after_create, 0u);
    system.node(0).interp().call_virtual(c, "poke", "()V");
    EXPECT_GT(system.network().now_us(), after_create);
    // Guest code can observe the time through Sys.time.
    EXPECT_GT(system.node(0).interp().logical_time(), 0);
}

TEST_F(SystemFixture, NonSubstitutedEntryPointsStillWork) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, R"(
class RawMain {
  native static method hook ()I
  static method run ()I {
    invokestatic RawMain.hook ()I
    returnvalue
  }
}
)");
    model::verify_pool(pool);
    System system(pool);
    system.add_node();
    system.node(0).interp().register_native(
        "RawMain", "hook", "()I",
        [](vm::Interpreter&, const Value&, std::vector<Value>) {
            return Value::of_int(77);
        });
    EXPECT_EQ(system.call_static(0, "RawMain", "run", "()I").as_int(), 77);
}

TEST_F(SystemFixture, StringsAndDoublesCrossTheWire) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, R"(
class Echo {
  ctor ()V {
    return
  }
  method shout (S)S {
    load 1
    const "!"
    concat
    returnvalue
  }
  method half (D)D {
    load 1
    const 0.5
    mul
    returnvalue
  }
}
)");
    model::verify_pool(pool);
    System system(pool);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("Echo", 1, "SOAP");
    Value e = system.construct(0, "Echo", "()V");
    EXPECT_EQ(system.node(0)
                  .interp()
                  .call_virtual(e, "shout", "(S)S", {Value::of_str("hi <&> there")})
                  .as_str(),
              "hi <&> there!");
    EXPECT_DOUBLE_EQ(system.node(0)
                         .interp()
                         .call_virtual(e, "half", "(D)D", {Value::of_double(5.0)})
                         .as_double(),
                     2.5);
}

TEST_F(SystemFixture, UnknownNodeThrows) {
    System system(original);
    system.add_node();
    EXPECT_THROW(system.node(3), RuntimeError);
    EXPECT_THROW(system.node(-1), RuntimeError);
}

}  // namespace
}  // namespace rafda::runtime
