// Read-mostly replication (DESIGN.md §19), end to end.
//
// The invariants under test, in rough order of importance:
//   - the bytecode classifier is conservative: only provably read-only
//     methods (against the ORIGINAL class) qualify, accessors classify by
//     prefix against the original field table, everything unknown is a
//     write;
//   - a read-mostly window replicates the singleton to its readers, after
//     which reads are served node-locally and the wire quiets down — with
//     every read still returning the right value;
//   - write-invalidate coherence: a write through the dispatch seam
//     invalidates every copy first, and the next read refreshes from the
//     primary before answering;
//   - migration is a replica barrier: the moved primary's copies are
//     forgotten, not served stale;
//   - a raw local reference escaping the dispatch seam on the home node
//     (local discover) conservatively invalidates — the one access the
//     middleware cannot see must not leave replicas lying about state.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Table {
  static field a I
  static field b I
  static method seed (II)V {
    load 0
    putstatic Table.a I
    load 1
    putstatic Table.b I
    return
  }
  static method lookup ()I {
    getstatic Table.a I
    getstatic Table.b I
    add
    returnvalue
  }
  static method update (I)V {
    load 0
    putstatic Table.a I
    return
  }
  static method churn ()I {
    getstatic Table.a I
    const 1
    add
    dup
    putstatic Table.a I
    returnvalue
  }
}
class Rec {
  field v I
  ctor ()V {
    return
  }
}
)";

std::unique_ptr<System> make_system(model::ClassPool& pool,
                                    bool adapt = false,
                                    AdaptPolicy policy = {}) {
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);
    SystemOptions options;
    options.network_seed = 23;
    options.default_link = net::LinkParams{20, 0.0, 0.0};
    auto system = std::make_unique<System>(pool, options);
    system->add_node();  // 0: singleton home, no local callers
    system->add_node();  // 1: reader
    system->add_node();  // 2: reader
    system->policy().set_singleton_home("Table", 0, "RMI");
    if (adapt) system->enable_adaptation(policy);
    return system;
}

AdaptPolicy replicate_policy() {
    AdaptPolicy p;
    p.interval_us = 600;
    p.min_window_calls = 4;
    p.replicate_ratio = 0.85;
    return p;
}

TEST(ReplicaClassifier, ReadOnlyIsProvedAgainstOriginalBytecode) {
    model::ClassPool pool;
    auto system = make_system(pool);
    const ReplicaManager& replicas = system->replicas();

    // Explicit bodies: a pure field read qualifies, any putstatic doesn't.
    EXPECT_TRUE(replicas.method_is_readonly("Table", "lookup"));
    EXPECT_FALSE(replicas.method_is_readonly("Table", "seed"));
    EXPECT_FALSE(replicas.method_is_readonly("Table", "update"));
    EXPECT_FALSE(replicas.method_is_readonly("Table", "churn"));

    // Generated accessors classify by prefix against the original field
    // table; the singleton getter and unknown names are writes.
    EXPECT_TRUE(replicas.method_is_readonly("Rec", "get_v"));
    EXPECT_FALSE(replicas.method_is_readonly("Rec", "set_v"));
    EXPECT_FALSE(replicas.method_is_readonly("Rec", "get_me"));
    EXPECT_FALSE(replicas.method_is_readonly("Rec", "frobnicate"));
    EXPECT_FALSE(replicas.method_is_readonly("NoSuchClass", "get_v"));
}

struct ReplicaOutcome {
    std::uint64_t wire_bytes = 0;
    std::uint64_t makespan_us = 0;
    std::uint64_t digest = 0;
    std::uint64_t replications = 0;
    std::uint64_t replica_reads = 0;
    std::vector<std::int32_t> results;
};

ReplicaOutcome run_readers(bool adapt, int calls_each = 20) {
    model::ClassPool pool;
    auto system = make_system(pool, adapt, replicate_policy());
    system->call_static(1, "Table", "seed", "(II)V",
                        {Value::of_int(3), Value::of_int(4)});

    ReplicaOutcome out;
    WorkloadDriver driver(*system);
    auto reader = [&out](System& sys, net::NodeId node) {
        out.results.push_back(
            sys.call_static(node, "Table", "lookup", "()I").as_int());
    };
    driver.add_client(1, static_cast<std::size_t>(calls_each), reader);
    driver.add_client(2, static_cast<std::size_t>(calls_each), reader);
    WorkloadDriver::Report report = driver.run();

    out.wire_bytes = system->network().total_stats().bytes;
    out.makespan_us = report.makespan_us;
    out.digest = report.event_order_digest;
    if (adapt) {
        out.replications = system->metrics().counter("adapt.replications").value();
        out.replica_reads = system->metrics().counter("adapt.replica_reads").value();
    }
    return out;
}

TEST(Replica, ReadMostlyWindowReplicatesToReaders) {
    ReplicaOutcome base = run_readers(false);
    ReplicaOutcome rep = run_readers(true);

    // Both readers got a copy, later reads were served node-locally, and
    // every read — before and after the switch — returned the truth.
    EXPECT_GE(rep.replications, 2u);
    EXPECT_GT(rep.replica_reads, 0u);
    ASSERT_EQ(rep.results.size(), base.results.size());
    for (std::int32_t v : rep.results) EXPECT_EQ(v, 7);

    // The payoff the engine exists for: fewer bytes end to end, no later
    // finish (replica-state transfers included).
    EXPECT_LT(rep.wire_bytes, base.wire_bytes);
    EXPECT_LE(rep.makespan_us, base.makespan_us);
}

TEST(Replica, ReplicationIsDeterministicFromTheSeed) {
    ReplicaOutcome a = run_readers(true);
    ReplicaOutcome b = run_readers(true);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.makespan_us, b.makespan_us);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.replications, b.replications);
    EXPECT_EQ(a.replica_reads, b.replica_reads);
    EXPECT_EQ(a.results, b.results);
}

TEST(Replica, WriteInvalidatesEveryCopyAndReadsRefresh) {
    model::ClassPool pool;
    auto system = make_system(pool, true, replicate_policy());
    system->call_static(1, "Table", "seed", "(II)V",
                        {Value::of_int(3), Value::of_int(4)});

    WorkloadDriver driver(*system);
    auto reader = [](System& sys, net::NodeId node) {
        sys.call_static(node, "Table", "lookup", "()I");
    };
    driver.add_client(1, 20, reader);
    driver.add_client(2, 20, reader);
    driver.run();
    ASSERT_GE(system->metrics().counter("adapt.replications").value(), 2u);

    // A remote write through the dispatch seam: every copy flips stale
    // before the write lands on the primary.
    system->call_static(1, "Table", "update", "(I)V", {Value::of_int(10)});
    EXPECT_GE(system->metrics().counter("adapt.invalidations").value(), 2u);

    // The next read on each reader refreshes from the primary first.
    EXPECT_EQ(system->call_static(2, "Table", "lookup", "()I").as_int(), 14);
    EXPECT_EQ(system->call_static(1, "Table", "lookup", "()I").as_int(), 14);
    EXPECT_GE(system->metrics().counter("adapt.replica_refreshes").value(), 2u);
}

TEST(Replica, MigrationDropsTheMovedPrimarysCopies) {
    model::ClassPool pool;
    auto system = make_system(pool);
    system->call_static(1, "Table", "seed", "(II)V",
                        {Value::of_int(3), Value::of_int(4)});
    const auto [home, oid] = system->find_singleton("Table");
    ASSERT_EQ(home, 0);

    system->create_replica(0, oid, "Table", 1);
    ASSERT_TRUE(system->replicas().has_replicas(0, oid));
    EXPECT_EQ(system->call_static(1, "Table", "lookup", "()I").as_int(), 7);

    // The barrier: the primary moved, its copies' provenance is gone.
    system->migrate_singleton("Table", 2);
    EXPECT_FALSE(system->replicas().has_replicas(0, oid));
    EXPECT_EQ(system->call_static(1, "Table", "lookup", "()I").as_int(), 7);
}

TEST(Replica, LocalDiscoverOnTheHomeInvalidatesConservatively) {
    model::ClassPool pool;
    auto system = make_system(pool);
    system->call_static(1, "Table", "seed", "(II)V",
                        {Value::of_int(3), Value::of_int(4)});
    const auto [home, oid] = system->find_singleton("Table");
    ASSERT_EQ(home, 0);
    system->create_replica(0, oid, "Table", 1);
    EXPECT_EQ(system->call_static(1, "Table", "lookup", "()I").as_int(), 7);

    // A raw local reference escapes the seam on the home node and writes
    // through it.  The middleware cannot intercept the write itself — the
    // discover is the signal, and it must be enough.
    system->call_static(0, "Table", "update", "(I)V", {Value::of_int(9)});
    EXPECT_GE(system->metrics().counter("adapt.invalidations").value(), 1u);

    // The reader's next lookup refreshes and sees the local write.
    EXPECT_EQ(system->call_static(1, "Table", "lookup", "()I").as_int(), 13);
    EXPECT_GE(system->metrics().counter("adapt.replica_refreshes").value(), 1u);
}

}  // namespace
}  // namespace rafda::runtime
