// EventHeap — ordering, tie-breaks, digest determinism and the
// bounded-memory accounting the scale model (DESIGN.md §18) leans on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/sched.hpp"

namespace rafda::runtime {
namespace {

TEST(EventHeap, PopsInVirtualTimeOrder) {
    EventHeap heap;
    std::vector<std::uint64_t> popped;
    const std::uint32_t kind = heap.register_handler(
        [&popped](const Event& e) { popped.push_back(e.at_us); });
    heap.post(500, 0, kind);
    heap.post(10, 0, kind);
    heap.post(10'000, 0, kind);
    heap.post(0, 0, kind);
    heap.post(499, 0, kind);
    heap.run();
    EXPECT_EQ(popped, (std::vector<std::uint64_t>{0, 10, 499, 500, 10'000}));
    EXPECT_EQ(heap.dispatched(), 5u);
    EXPECT_EQ(heap.last_popped_at(), 10'000u);
    EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, EqualTimestampsPopInPostOrder) {
    // Regression: two events at the same virtual timestamp must dispatch
    // in the order they were posted — the tie-break is the post sequence,
    // never heap internals.  (A plain std::priority_queue of (at_us, ...)
    // would be free to swap them.)
    EventHeap heap;
    std::vector<std::uint64_t> popped;
    const std::uint32_t kind =
        heap.register_handler([&popped](const Event& e) { popped.push_back(e.a); });
    for (std::uint64_t k = 0; k < 64; ++k) heap.post(7'777, 0, kind, /*a=*/k);
    heap.run();
    ASSERT_EQ(popped.size(), 64u);
    for (std::uint64_t k = 0; k < 64; ++k) EXPECT_EQ(popped[k], k) << k;
}

TEST(EventHeap, TieBreakSurvivesInterleavedEarlierEvents) {
    // Posting an *earlier* event between two equal-timestamp posts must
    // not disturb the tie order of the equal pair.
    EventHeap heap;
    std::vector<std::uint64_t> popped;
    const std::uint32_t kind =
        heap.register_handler([&popped](const Event& e) { popped.push_back(e.a); });
    heap.post(100, 0, kind, 1);
    heap.post(50, 0, kind, 99);
    heap.post(100, 0, kind, 2);
    heap.run();
    EXPECT_EQ(popped, (std::vector<std::uint64_t>{99, 1, 2}));
}

TEST(EventHeap, OrderDigestIsDeterministicAndOrderSensitive) {
    auto digest_of = [](bool flip) {
        EventHeap heap;
        const std::uint32_t ka = heap.register_handler([](const Event&) {});
        const std::uint32_t kb = heap.register_handler([](const Event&) {});
        // Same multiset of timestamps either way; `flip` swaps which kind
        // dispatches first at t=30, which the (at_us, seq, kind) digest
        // must detect.
        heap.post(30, 0, flip ? kb : ka);
        heap.post(10, 1, ka);
        heap.post(30, 0, flip ? ka : kb);
        heap.post(20, 2, ka);
        heap.run();
        return heap.order_digest();
    };
    EXPECT_EQ(digest_of(false), digest_of(false));  // same history, same word
    EXPECT_EQ(digest_of(true), digest_of(true));
    // The t=30 pair pops in post order, and seq numbers differ between the
    // two histories, so the digests must differ too.
    EXPECT_NE(digest_of(false), digest_of(true));
}

TEST(EventHeap, HandlersRepostIntoTheSameOrder) {
    // A handler posting follow-up work models a resumable client step: the
    // new event merges into the global order by (at_us, seq).
    EventHeap heap;
    std::vector<std::uint64_t> popped;
    std::uint32_t kind = 0;
    kind = heap.register_handler([&](const Event& e) {
        popped.push_back(e.at_us);
        if (e.b) heap.post(e.at_us + 10, e.node, kind, e.a, e.b - 1);
    });
    heap.post(0, 0, kind, 0, /*remaining=*/3);
    heap.post(15, 1, kind, 1, 0);
    heap.run();
    // Client 0 steps at 0/10/20/30; the one-shot at 15 lands between.
    EXPECT_EQ(popped, (std::vector<std::uint64_t>{0, 10, 15, 20, 30}));
    EXPECT_EQ(heap.posted(), 5u);
    EXPECT_EQ(heap.dispatched(), 5u);
}

TEST(EventHeap, PeakPendingTracksTheHighWaterMark) {
    EventHeap heap;
    const std::uint32_t kind = heap.register_handler([](const Event&) {});
    for (int k = 0; k < 100; ++k) heap.post(static_cast<std::uint64_t>(k), 0, kind);
    EXPECT_EQ(heap.pending(), 100u);
    EXPECT_EQ(heap.peak_pending(), 100u);
    heap.run();
    EXPECT_EQ(heap.pending(), 0u);
    // The mark is a high-water mark: draining must not lower it.
    EXPECT_EQ(heap.peak_pending(), 100u);
}

TEST(EventHeap, DispatchRoutesByKind) {
    EventHeap heap;
    int a_hits = 0, b_hits = 0;
    const std::uint32_t ka = heap.register_handler([&](const Event&) { ++a_hits; });
    const std::uint32_t kb = heap.register_handler([&](const Event&) { ++b_hits; });
    ASSERT_NE(ka, kb);
    heap.post(1, 0, ka);
    heap.post(2, 0, kb);
    heap.post(3, 0, ka);
    heap.run();
    EXPECT_EQ(a_hits, 2);
    EXPECT_EQ(b_hits, 1);
}

}  // namespace
}  // namespace rafda::runtime
