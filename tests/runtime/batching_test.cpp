// Per-link call batching + client pipelining (DESIGN.md §17), end to end.
//
// The invariants under test, in rough order of importance:
//   - off by default, and *inert* when off: no batch frames, no coalesced
//     link traffic, bit-identical reruns;
//   - pipelining alone reorders nothing observable: same per-call results,
//     same wire traffic, smaller makespan;
//   - batching on a busy link coalesces entries, saves wire bytes and
//     propagation delay, and still executes every call exactly once;
//   - determinism from the network seed survives batching, including under
//     a scheduled fault plan with retries + dedup.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (J)J {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    const 2L
    mul
    returnvalue
  }
  method calls ()I {
    load 0
    getfield Service.calls I
    returnvalue
  }
}
)";

struct RunOutcome {
    std::vector<std::int64_t> results;   // per-call return values, in order
    std::size_t faults = 0;
    std::uint64_t makespan_us = 0;
    std::uint64_t messages = 0;          // full frames on the wire
    std::uint64_t coalesced = 0;         // batch-entry continuations
    std::uint64_t wire_bytes = 0;
    std::uint64_t batch_frames = 0;
    std::uint64_t batch_coalesced = 0;
    std::uint64_t latency_saved_us = 0;
    std::int32_t executions = 0;         // server-side Service.work runs
    std::uint64_t retries = 0;
    std::uint64_t dedup_hits = 0;
};

struct BatchingRunConfig {
    bool batching = false;
    std::uint32_t max_frame_calls = 32;
    std::size_t pipeline_depth = 1;
    std::string protocol = "RMI";
    bool faults = false;
    bool reliable = false;
    int calls = 24;
};

RunOutcome run_workload(const BatchingRunConfig& cfg) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);

    SystemOptions options;
    options.network_seed = 7;
    // A slow, thin link so pipelined requests genuinely overlap in
    // virtual time: 500us propagation, 10 bytes/us.
    options.default_link = net::LinkParams{500, 10.0, 0.0};
    options.batching.enabled = cfg.batching;
    options.batching.max_frame_calls = cfg.max_frame_calls;
    if (cfg.reliable) {
        options.reliability.attempts = 12;
        options.reliability.backoff_base_us = 200;
        options.reliability.backoff_multiplier = 2.0;
        options.reliability.backoff_cap_us = 30'000;
        options.reliability.dedup = true;
    }
    System system(pool, options);
    system.add_node();  // 0: client
    system.add_node();  // 1: server
    system.policy().set_instance_home("Service", 1, cfg.protocol);

    Value svc = system.construct(0, "Service", "()V");
    if (cfg.faults) {
        const std::uint64_t t0 = system.node(0).clock_us();
        for (bool inbound : {false, true}) {
            net::FaultWindow w;
            w.kind = net::FaultKind::DropRate;
            w.src = inbound ? 1 : 0;
            w.dst = inbound ? 0 : 1;
            w.from_us = t0;
            w.until_us = ~0ULL;
            w.drop_probability = 0.08;
            system.network().fault_plan().add(w);
        }
    }

    RunOutcome out;
    WorkloadDriver driver(system);
    driver.set_pipeline_depth(cfg.pipeline_depth);
    std::vector<WorkloadDriver::Task> tasks;
    for (int k = 0; k < cfg.calls; ++k)
        tasks.push_back([svc, k, &out](System& sys, net::NodeId node) {
            Value v = sys.node(node).interp().call_virtual(
                svc, "work", "(J)J", {Value::of_long(k + 1)});
            out.results.push_back(v.as_long());
        });
    driver.add_client(0, std::move(tasks));
    WorkloadDriver::Report report = driver.run();

    out.faults = report.faults;
    out.makespan_us = report.makespan_us;
    net::LinkStats net_total = system.network().total_stats();
    out.messages = net_total.messages;
    out.coalesced = net_total.coalesced;
    out.wire_bytes = net_total.bytes;
    out.batch_frames = system.metrics().counter("rpc.batch.frames").value();
    out.batch_coalesced = system.metrics().counter("rpc.batch.coalesced").value();
    out.latency_saved_us =
        system.metrics().counter("rpc.batch.latency_saved_us").value();
    out.retries = system.metrics().counter("rpc.retries").value();
    out.dedup_hits = system.metrics().counter("rpc.dedup_hits").value();
    if (out.faults == 0)
        out.executions =
            system.node(0).interp().call_virtual(svc, "calls", "()I").as_int();
    return out;
}

std::vector<std::int64_t> expected_results(int calls) {
    std::vector<std::int64_t> v;
    for (int k = 0; k < calls; ++k) v.push_back(2 * (k + 1));
    return v;
}

TEST(Batching, OffByDefaultAndInert) {
    BatchingRunConfig cfg;
    cfg.pipeline_depth = 8;  // even with requests overlapping on the link
    RunOutcome out = run_workload(cfg);
    EXPECT_EQ(out.results, expected_results(cfg.calls));
    EXPECT_EQ(out.executions, cfg.calls);
    EXPECT_EQ(out.batch_frames, 0u);
    EXPECT_EQ(out.batch_coalesced, 0u);
    EXPECT_EQ(out.coalesced, 0u);

    // Bit-identical rerun: the off-state leaves the wire schedule fully
    // determined by the seed.
    RunOutcome again = run_workload(cfg);
    EXPECT_EQ(out.makespan_us, again.makespan_us);
    EXPECT_EQ(out.wire_bytes, again.wire_bytes);
    EXPECT_EQ(out.messages, again.messages);
}

TEST(Batching, PipeliningAloneChangesOnlyVirtualTime) {
    BatchingRunConfig sequential;
    RunOutcome seq = run_workload(sequential);

    BatchingRunConfig pipelined;
    pipelined.pipeline_depth = 8;
    RunOutcome pipe = run_workload(pipelined);

    // Host execution order is unchanged, so per-call results and wire
    // traffic are identical; only the reply-wait joins move, so the
    // pipelined client finishes sooner.
    EXPECT_EQ(pipe.results, seq.results);
    EXPECT_EQ(pipe.executions, seq.executions);
    EXPECT_EQ(pipe.messages, seq.messages);
    EXPECT_EQ(pipe.wire_bytes, seq.wire_bytes);
    EXPECT_LT(pipe.makespan_us, seq.makespan_us);
}

TEST(Batching, CoalescesPipelinedCallsOnABusyLink) {
    BatchingRunConfig cfg;
    cfg.pipeline_depth = 8;
    RunOutcome plain = run_workload(cfg);
    cfg.batching = true;
    RunOutcome batched = run_workload(cfg);

    // Same per-call results, every call executed exactly once server-side.
    EXPECT_EQ(batched.results, expected_results(cfg.calls));
    EXPECT_EQ(batched.executions, cfg.calls);

    // But the wire saw it differently: continuation entries joined open
    // frames, each saving a propagation delay and the per-frame header.
    EXPECT_GT(batched.batch_frames, 0u);
    EXPECT_GT(batched.batch_coalesced, 0u);
    EXPECT_EQ(batched.coalesced, batched.batch_coalesced);
    EXPECT_EQ(batched.latency_saved_us, batched.batch_coalesced * 500u);
    EXPECT_LT(batched.messages, plain.messages);
    EXPECT_LT(batched.wire_bytes, plain.wire_bytes);
    EXPECT_LT(batched.makespan_us, plain.makespan_us);
}

TEST(Batching, MaxFrameCallsBoundsEntriesPerFrame) {
    BatchingRunConfig cfg;
    cfg.batching = true;
    cfg.pipeline_depth = 8;
    cfg.max_frame_calls = 2;  // opener + at most one continuation
    RunOutcome out = run_workload(cfg);
    EXPECT_GT(out.batch_coalesced, 0u);
    EXPECT_LE(out.batch_coalesced, out.batch_frames);  // <= 1 entry per frame
    EXPECT_EQ(out.results, expected_results(cfg.calls));
    EXPECT_EQ(out.executions, cfg.calls);
}

TEST(Batching, ProtocolsWithoutBatchFramingFallBackPerCall) {
    // SOAPX has no batch-entry framing; with batching globally on, its
    // traffic must stay per-call framed (and still correct) rather than
    // emit frames the decoder cannot parse.
    BatchingRunConfig cfg;
    cfg.batching = true;
    cfg.pipeline_depth = 8;
    cfg.protocol = "SOAP";
    RunOutcome out = run_workload(cfg);
    EXPECT_EQ(out.results, expected_results(cfg.calls));
    EXPECT_EQ(out.executions, cfg.calls);
    EXPECT_EQ(out.batch_frames, 0u);
    EXPECT_EQ(out.coalesced, 0u);
}

TEST(Batching, DeterministicFromSeedWhenEnabled) {
    BatchingRunConfig cfg;
    cfg.batching = true;
    cfg.pipeline_depth = 8;
    RunOutcome a = run_workload(cfg);
    RunOutcome b = run_workload(cfg);
    EXPECT_EQ(a.makespan_us, b.makespan_us);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.batch_coalesced, b.batch_coalesced);
    EXPECT_EQ(a.results, b.results);
}

TEST(Batching, MigrationMidBurstInvalidatesOpenLanes) {
    // A migration is a time barrier: every clock reconciles to the
    // hand-off.  Any batch frame opened before the barrier belongs to the
    // pre-migration schedule — coalescing a post-migration call onto it
    // would deliver that call into the past, addressed to the old home.
    // migrate_instance must therefore cut every open lane; the calls
    // after the move open fresh frames (and still execute exactly once,
    // through the forwarding chain).
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);

    SystemOptions options;
    options.network_seed = 7;
    options.default_link = net::LinkParams{500, 10.0, 0.0};
    options.batching.enabled = true;
    System system(pool, options);
    system.add_node();  // 0: client
    system.add_node();  // 1: first home
    system.add_node();  // 2: home after the mid-burst migration

    Value svc = system.construct(0, "Service", "()V");
    vm::ObjId on1 = system.migrate_instance(0, svc.as_ref(), 1, "RMI");

    constexpr int kCalls = 12;
    RunOutcome out;
    WorkloadDriver driver(system);
    std::vector<WorkloadDriver::Task> tasks;
    for (int k = 0; k < kCalls; ++k) {
        if (k == kCalls / 2)
            tasks.push_back([on1](System& sys, net::NodeId) {
                sys.migrate_instance(1, on1, 2, "RMI");
            });
        tasks.push_back([svc, k, &out](System& sys, net::NodeId node) {
            Value v = sys.node(node).interp().call_virtual(
                svc, "work", "(J)J", {Value::of_long(k + 1)});
            out.results.push_back(v.as_long());
        });
    }
    driver.set_pipeline_depth(tasks.size());  // the whole queue is one burst
    driver.add_client(0, std::move(tasks));
    WorkloadDriver::Report report = driver.run();

    EXPECT_EQ(report.faults, 0u);
    EXPECT_EQ(out.results, expected_results(kCalls));
    EXPECT_EQ(system.node(0).interp().call_virtual(svc, "calls", "()I").as_int(),
              kCalls);

    // The burst was split at the barrier: at least two frames on the
    // wire, and strictly fewer coalesced entries than one uncut frame
    // (kCalls - 1) would have carried.
    const std::uint64_t frames = system.metrics().counter("rpc.batch.frames").value();
    const std::uint64_t coalesced =
        system.metrics().counter("rpc.batch.coalesced").value();
    EXPECT_GE(frames, 2u);
    EXPECT_GT(coalesced, 0u);
    EXPECT_LE(coalesced, static_cast<std::uint64_t>(kCalls) - 2);
}

TEST(Batching, ExactlyOnceSurvivesBatchingUnderFaults) {
    // The E10 invariant with the new machinery stacked on top: scheduled
    // drops on both directions, retries + dedup, pipelining + batching.
    // Every task completes, the server executed each logical call once,
    // and the whole run replays bit-identically from the seed.
    BatchingRunConfig cfg;
    cfg.batching = true;
    cfg.pipeline_depth = 8;
    cfg.faults = true;
    cfg.reliable = true;
    RunOutcome out = run_workload(cfg);
    EXPECT_EQ(out.faults, 0u);
    EXPECT_GT(out.retries, 0u);  // the plan really did bite
    EXPECT_EQ(out.executions, cfg.calls);
    EXPECT_EQ(out.results, expected_results(cfg.calls));

    RunOutcome again = run_workload(cfg);
    EXPECT_EQ(out.makespan_us, again.makespan_us);
    EXPECT_EQ(out.retries, again.retries);
    EXPECT_EQ(out.dedup_hits, again.dedup_hits);
    EXPECT_EQ(out.batch_coalesced, again.batch_coalesced);
}

}  // namespace
}  // namespace rafda::runtime
