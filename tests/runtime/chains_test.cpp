// Proxy forwarding chains: created by repeated migration, observable in
// cost, and collapsible with System::shorten_chain.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class C {
  field state I
  ctor ()V {
    return
  }
  method poke ()I {
    load 0
    load 0
    getfield C.state I
    const 1
    add
    putfield C.state I
    load 0
    getfield C.state I
    returnvalue
  }
}
)";

struct ChainFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;
    Value c;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        system->add_node();
        c = system->construct(0, "C", "()V");
    }

    /// Bounce the object around to build a chain: 0 -> 1 -> 2.
    vm::ObjId build_chain() {
        vm::ObjId on1 = system->migrate_instance(0, c.as_ref(), 1, "RMI");
        return system->migrate_instance(1, on1, 2, "RMI");
    }
};

TEST_F(ChainFixture, ResolveTerminalFollowsChain) {
    vm::ObjId on2 = build_chain();
    auto [node, oid] = system->resolve_terminal(0, c.as_ref());
    EXPECT_EQ(node, 2);
    EXPECT_EQ(oid, on2);
    // Terminal of a local object is itself.
    auto [n2, o2] = system->resolve_terminal(2, on2);
    EXPECT_EQ(n2, 2);
    EXPECT_EQ(o2, on2);
}

TEST_F(ChainFixture, ChainedCallsCostMoreThanDirect) {
    build_chain();
    vm::Interpreter& n0 = system->node(0).interp();

    std::uint64_t t0 = system->network().now_us();
    n0.call_virtual(c, "poke", "()I");
    std::uint64_t chained = system->network().now_us() - t0;

    int removed = system->shorten_chain(0, c.as_ref());
    EXPECT_EQ(removed, 1);  // one intermediate proxy (on node 1) bypassed

    t0 = system->network().now_us();
    n0.call_virtual(c, "poke", "()I");
    std::uint64_t direct = system->network().now_us() - t0;

    EXPECT_GT(chained, direct);
    EXPECT_NEAR(static_cast<double>(chained), 2.0 * static_cast<double>(direct),
                static_cast<double>(direct) * 0.2);
}

TEST_F(ChainFixture, ShorteningPreservesBehaviour) {
    vm::Interpreter& n0 = system->node(0).interp();
    EXPECT_EQ(n0.call_virtual(c, "poke", "()I").as_int(), 1);
    build_chain();
    EXPECT_EQ(n0.call_virtual(c, "poke", "()I").as_int(), 2);
    system->shorten_chain(0, c.as_ref());
    EXPECT_EQ(n0.call_virtual(c, "poke", "()I").as_int(), 3);
}

TEST_F(ChainFixture, ShortenOnLocalObjectIsNoop) {
    EXPECT_EQ(system->shorten_chain(0, c.as_ref()), 0);
}

TEST_F(ChainFixture, ShortenOnDirectProxyIsNoop) {
    system->migrate_instance(0, c.as_ref(), 1, "RMI");
    // The proxy already points at the terminal: nothing to collapse.
    EXPECT_EQ(system->shorten_chain(0, c.as_ref()), 0);
}

TEST_F(ChainFixture, LongerChains) {
    // 0 -> 1 -> 2 -> 0 -> 1: four migrations, the original slot chains
    // through three intermediates.
    vm::ObjId cur = system->migrate_instance(0, c.as_ref(), 1, "RMI");
    cur = system->migrate_instance(1, cur, 2, "RMI");
    cur = system->migrate_instance(2, cur, 0, "RMI");
    cur = system->migrate_instance(0, cur, 1, "RMI");
    auto [node, oid] = system->resolve_terminal(0, c.as_ref());
    EXPECT_EQ(node, 1);
    EXPECT_EQ(oid, cur);
    EXPECT_EQ(system->shorten_chain(0, c.as_ref()), 3);
    EXPECT_EQ(system->node(0).interp().call_virtual(c, "poke", "()I").as_int(), 1);
}

}  // namespace
}  // namespace rafda::runtime
