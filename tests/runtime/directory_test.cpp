// ShardedDirectory — consistent-hash ownership, shard routing, migration
// updates and restart stability (DESIGN.md §18).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "net/faults.hpp"
#include "runtime/directory.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

// ---- unit level: the ring and the shard tables ----

ShardedDirectory make_directory(std::uint32_t owners, DirectoryPolicy policy = {}) {
    std::vector<net::NodeId> ids;
    for (std::uint32_t k = 0; k < owners; ++k)
        ids.push_back(static_cast<net::NodeId>(k));
    ShardedDirectory dir;
    dir.configure(ids, policy);
    return dir;
}

TEST(ShardedDirectory, RingOwnershipIsDeterministic) {
    ShardedDirectory a = make_directory(8);
    ShardedDirectory b = make_directory(8);
    ASSERT_TRUE(a.enabled());
    std::set<net::NodeId> seen;
    for (int k = 0; k < 256; ++k) {
        const std::string key = "S/Class" + std::to_string(k);
        // Ownership is a pure function of (key, ring): two independently
        // configured rings agree, and repeated asks agree.
        EXPECT_EQ(a.owner(key), b.owner(key)) << key;
        EXPECT_EQ(a.owner(key), a.owner(key)) << key;
        seen.insert(a.owner(key));
    }
    // ...and the hash actually spreads keys over the shards instead of
    // funnelling everything through one registry node.
    EXPECT_GT(seen.size(), 4u);
}

TEST(ShardedDirectory, DisabledWithoutOwners) {
    ShardedDirectory dir;
    EXPECT_FALSE(dir.enabled());
    dir.configure({}, DirectoryPolicy{});
    EXPECT_FALSE(dir.enabled());
}

TEST(ShardedDirectory, ChaseObjectFollowsRelocationHops) {
    ShardedDirectory dir = make_directory(4);
    // Never-moved objects resolve to themselves.
    EXPECT_EQ(dir.chase_object(0, 5), (std::pair<net::NodeId, std::uint64_t>{0, 5}));
    // A two-hop relocation chain resolves to the terminal location from
    // any recorded link.
    dir.put_object(0, 5, 1, 9);
    dir.put_object(1, 9, 2, 11);
    EXPECT_EQ(dir.chase_object(0, 5), (std::pair<net::NodeId, std::uint64_t>{2, 11}));
    EXPECT_EQ(dir.chase_object(1, 9), (std::pair<net::NodeId, std::uint64_t>{2, 11}));
    EXPECT_EQ(dir.total_entries(), 2u);
}

TEST(ShardedDirectory, SingletonEntriesLiveInTheirOwningShard) {
    ShardedDirectory dir = make_directory(4);
    dir.put_singleton("Registry", 3, "RMI");
    const DirLocation* loc = dir.find_singleton("Registry");
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->node, 3);
    EXPECT_EQ(loc->protocol, "RMI");
    // Overwrite on migration: the same shard's entry is replaced.
    dir.put_singleton("Registry", 1, "SOAP");
    loc = dir.find_singleton("Registry");
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->node, 1);
    EXPECT_EQ(loc->protocol, "SOAP");
    EXPECT_EQ(dir.find_singleton("Nope"), nullptr);
    // Entry counts land on the owner the ring picked for the key.
    std::size_t total = 0;
    dir.visit_shards([&](net::NodeId, std::size_t n) { total += n; });
    EXPECT_EQ(total, 1u);
}

TEST(ShardedDirectory, CachesInvalidateGlobally) {
    ShardedDirectory dir = make_directory(2);
    EXPECT_EQ(dir.cached_singleton(5, "Registry"), nullptr);
    DirLocation loc;
    loc.node = 1;
    loc.protocol = "RMI";
    dir.cache_singleton(5, "Registry", loc);
    ASSERT_NE(dir.cached_singleton(5, "Registry"), nullptr);
    EXPECT_EQ(dir.cached_singleton(6, "Registry"), nullptr);  // per-node
    dir.invalidate_caches();
    EXPECT_EQ(dir.cached_singleton(5, "Registry"), nullptr);
}

TEST(ShardedDirectory, CachingCanBeDisabledByPolicy) {
    DirectoryPolicy policy;
    policy.cache = false;
    ShardedDirectory dir = make_directory(2, policy);
    DirLocation loc;
    loc.node = 1;
    dir.cache_singleton(5, "Registry", loc);
    EXPECT_EQ(dir.cached_singleton(5, "Registry"), nullptr);
}

// ---- system level: routed lookups, migration, restarts ----

constexpr const char* kApp = R"(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (J)J {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    returnvalue
  }
}
class Registry {
  static field count I
  static method bump ()I {
    getstatic Registry.count I
    const 1
    add
    dup
    putstatic Registry.count I
    returnvalue
  }
}
)";

model::ClassPool make_pool() {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);
    return pool;
}

struct DirectorySystemFixture : ::testing::Test {
    model::ClassPool pool = make_pool();
    std::unique_ptr<System> system;

    void build(int nodes, std::uint32_t shards) {
        system = std::make_unique<System>(pool);
        for (int k = 0; k < nodes; ++k) system->add_node();
        DirectoryPolicy policy;
        policy.shards = shards;
        system->enable_directory(policy);
    }
};

TEST_F(DirectorySystemFixture, LookupAfterMigrateResolvesToTheNewHome) {
    build(4, 2);
    Value svc = system->construct(0, "Service", "()V");
    const vm::ObjId oid = svc.as_ref();

    // Before any migration, resolution is the identity.
    EXPECT_EQ(system->directory_resolve(1, 0, oid),
              (std::pair<net::NodeId, vm::ObjId>{0, oid}));

    const vm::ObjId on2 = system->migrate_instance(0, oid, 2, "RMI");
    // A lookup routed through the owning shard lands on the new home
    // directly — no proxy-chain walk on the data path.
    EXPECT_EQ(system->directory_resolve(1, 0, oid),
              (std::pair<net::NodeId, vm::ObjId>{2, on2}));

    // Chained migration: the chase follows every recorded hop.
    const vm::ObjId on3 = system->migrate_instance(2, on2, 3, "RMI");
    EXPECT_EQ(system->directory_resolve(1, 0, oid),
              (std::pair<net::NodeId, vm::ObjId>{3, on3}));
    EXPECT_GE(system->metrics().counter("directory.lookups").value(), 3u);
}

TEST_F(DirectorySystemFixture, RemoteLookupsCostControlTraffic) {
    build(4, 1);  // single shard: node 0 owns every key
    Value svc = system->construct(0, "Service", "()V");
    system->migrate_instance(0, svc.as_ref(), 2, "RMI");
    const net::LinkStats before = system->network().total_stats();

    // Node 3 is not the owner, so its lookup is a modelled round-trip:
    // bytes move, the asker's clock advances.
    const std::uint64_t clock_before = system->node(3).clock_us();
    system->directory_resolve(3, 0, svc.as_ref());
    EXPECT_GT(system->network().total_stats().bytes, before.bytes);
    EXPECT_GT(system->node(3).clock_us(), clock_before);
    EXPECT_GE(system->metrics().counter("directory.remote").value(), 1u);

    // The owner answers from its own table without a network trip.
    const net::LinkStats mid = system->network().total_stats();
    system->directory_resolve(0, 0, svc.as_ref());
    EXPECT_EQ(system->network().total_stats().bytes, mid.bytes);
}

TEST_F(DirectorySystemFixture, SingletonDiscoveryGoesThroughTheDirectory) {
    build(3, 3);
    // First remote bump discovers Registry through its owning shard; the
    // second hits the asker's cache.
    EXPECT_EQ(system->call_static(1, "Registry", "bump", "()I").as_int(), 1);
    EXPECT_EQ(system->call_static(1, "Registry", "bump", "()I").as_int(), 2);
    EXPECT_GE(system->metrics().counter("directory.lookups").value(), 1u);
    EXPECT_GE(system->metrics().counter("directory.cache_hits").value(), 1u);

    // Migration rewrites the shard entry and invalidates every cache, so
    // the next bump resolves to the new home (and still sees the durable
    // singleton state).
    system->migrate_singleton("Registry", 2, "RMI");
    EXPECT_GE(system->metrics().counter("directory.updates").value(), 1u);
    EXPECT_EQ(system->call_static(1, "Registry", "bump", "()I").as_int(), 3);
}

TEST_F(DirectorySystemFixture, OwnershipIsStableAcrossNodeRestart) {
    build(4, 2);
    Value svc = system->construct(0, "Service", "()V");
    const vm::ObjId oid = svc.as_ref();
    const vm::ObjId on2 = system->migrate_instance(0, oid, 2, "RMI");

    const net::NodeId owner_before =
        system->directory().object_owner(0, oid);

    // Crash the owning shard node under the fault plan, run traffic past
    // the window so it restarts, and ask again: shard tables are durable
    // control-plane state, and ownership is a pure function of the ring —
    // a restart moves nothing.
    const std::uint64_t now = system->network().now_us();
    net::FaultWindow crash;
    crash.kind = net::FaultKind::NodeCrash;
    crash.node = owner_before;
    crash.from_us = now;
    crash.until_us = now + 500;
    system->network().fault_plan().add(crash);

    // Advance virtual time beyond the crash window with traffic that does
    // not touch the crashed node.
    net::NodeId a = 1, b = 3;
    if (a == owner_before) a = 0;
    if (b == owner_before) b = 0;
    system->policy().set_instance_home("Service", b, "RMI");
    while (system->network().now_us() < crash.until_us)
        system->construct(a, "Service", "()V");
    ASSERT_GE(system->network().fault_plan().restarts_before(
                  owner_before, system->network().now_us()),
              1u);

    EXPECT_EQ(system->directory().object_owner(0, oid), owner_before);
    EXPECT_EQ(system->directory_resolve(1, 0, oid),
              (std::pair<net::NodeId, vm::ObjId>{2, on2}));
}

}  // namespace
}  // namespace rafda::runtime
