// Network-failure semantics.  The paper is explicit that distribution makes
// full semantic preservation impossible ("modulo network failure", Sec 1;
// Sec 4).  These tests pin down what our middleware guarantees instead:
// injected message loss surfaces as a guest-level RemoteFault (catchable
// like any throwable), and guest exceptions thrown on a remote node
// propagate to the caller with class and message intact.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (I)I {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    const 100
    cmplt
    iffalse Boom
    load 1
    const 2
    mul
    returnvalue
  Boom:
    new Throwable
    dup
    const "input too large"
    invokespecial Throwable.<init> (S)V
    throw
  }
  method calls ()I {
    load 0
    getfield Service.calls I
    returnvalue
  }
}
class Client {
  static method guarded (LService;I)S {
  S:
    load 0
    load 1
    invokevirtual Service.work (I)I
    const "ok:"
    swap
    concat
    returnvalue
  E:
    nop
  H:
    invokevirtual Throwable.getMsg ()S
    const "fault:"
    swap
    concat
    returnvalue
    catch Throwable from S to E using H
  }
}
)";

struct FaultsFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        system->policy().set_instance_home("Service", 1, "RMI");
    }
};

TEST_F(FaultsFixture, GuestExceptionCrossesTheWire) {
    Value svc = system->construct(0, "Service", "()V");
    // Normal call works remotely.
    EXPECT_EQ(system->call_static(0, "Client", "guarded", "(LService;I)S", {svc, Value::of_int(5)})
                  .as_str(),
              "ok:10");
    // Guest throw on node 1 arrives as a catchable throwable on node 0.
    EXPECT_EQ(system->call_static(0, "Client", "guarded", "(LService;I)S",
                                  {svc, Value::of_int(1000)})
                  .as_str(),
              "fault:input too large");
    EXPECT_EQ(system->remote_stats().at("RMI").faults, 1u);
}

TEST_F(FaultsFixture, UncaughtRemoteGuestExceptionSurfacesAtBoundary) {
    Value svc = system->construct(0, "Service", "()V");
    try {
        system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1000)});
        FAIL() << "expected GuestException";
    } catch (const vm::GuestException& e) {
        EXPECT_EQ(e.class_name(), "Throwable");
        EXPECT_EQ(e.message(), "input too large");
    }
}

TEST_F(FaultsFixture, TotalLossRaisesRemoteFault) {
    Value svc = system->construct(0, "Service", "()V");
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});  // drop all
    try {
        system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});
        FAIL() << "expected GuestException(RemoteFault)";
    } catch (const vm::GuestException& e) {
        EXPECT_EQ(e.class_name(), kRemoteFaultClass);
        EXPECT_NE(e.message().find("lost"), std::string::npos);
    }
    EXPECT_GT(system->remote_stats().at("RMI").drops, 0u);
}

TEST_F(FaultsFixture, RemoteFaultIsCatchableAsThrowable) {
    // Client.guarded catches Throwable; RemoteFault extends Throwable, so
    // application-level handlers can mask network failure if they choose.
    Value svc = system->construct(0, "Service", "()V");
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});
    std::string out = system
                          ->call_static(0, "Client", "guarded", "(LService;I)S",
                                        {svc, Value::of_int(1)})
                          .as_str();
    EXPECT_EQ(out.rfind("fault:", 0), 0u) << out;
}

TEST_F(FaultsFixture, LostReplyStillExecutedTheCall) {
    // At-most-once is not exactly-once: if only the *reply* is lost, the
    // remote side has already executed the method.  The paper's caveat made
    // concrete.
    Value svc = system->construct(0, "Service", "()V");
    system->network().set_link(1, 0, net::LinkParams{100, 0.0, 1.0});  // replies lost
    EXPECT_THROW(
        system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)}),
        vm::GuestException);
    // Restore the link and check the remote side executed the lost call.
    system->network().set_link(1, 0, net::LinkParams{100, 0.0, 0.0});
    EXPECT_EQ(system->node(0).interp().call_virtual(svc, "calls", "()I").as_int(), 1);
}

TEST_F(FaultsFixture, DroppedDistinguishesRequestLossFromReplyLoss) {
    // The C++-level Dropped marker carries `executed_remotely` so callers
    // can reason about side effects: a lost request never ran, a lost
    // reply means the remote side ran the call and only the result
    // vanished (DESIGN.md §12).  A Create whose reply is lost has leaked
    // an instance on the remote node; a Create whose request is lost has
    // not.
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});  // requests lost
    net::CallRequest lost_request;
    lost_request.kind = net::RequestKind::Create;
    lost_request.cls = "Service";
    lost_request.src_node = 0;
    try {
        system->rpc(0, 1, "RMI", lost_request);
        FAIL() << "expected Dropped";
    } catch (const System::Dropped& d) {
        EXPECT_FALSE(d.executed_remotely);
    }

    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 0.0});
    system->network().set_link(1, 0, net::LinkParams{100, 0.0, 1.0});  // replies lost
    net::CallRequest lost_reply;
    lost_reply.kind = net::RequestKind::Create;
    lost_reply.cls = "Service";
    lost_reply.src_node = 0;
    try {
        system->rpc(0, 1, "RMI", lost_reply);
        FAIL() << "expected Dropped";
    } catch (const System::Dropped& d) {
        EXPECT_TRUE(d.executed_remotely);
    }
}

TEST_F(FaultsFixture, PartialDropRateEventuallySucceeds) {
    Value svc = system->construct(0, "Service", "()V");
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 0.5});
    int ok = 0, failed = 0;
    for (int k = 0; k < 50; ++k) {
        try {
            system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});
            ++ok;
        } catch (const vm::GuestException&) {
            ++failed;
        }
    }
    EXPECT_GT(ok, 5);
    EXPECT_GT(failed, 5);
}

TEST_F(FaultsFixture, UserDefinedThrowableClassCrossesIfConstructible) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, R"(
special class QuotaError extends Throwable {
  ctor (S)V {
    load 0
    load 1
    invokespecial Throwable.<init> (S)V
    return
  }
}
class Thrower {
  ctor ()V {
    return
  }
  method go ()V {
    new QuotaError
    dup
    const "quota"
    invokespecial QuotaError.<init> (S)V
    throw
  }
}
)");
    model::verify_pool(pool);
    System sys(pool);
    sys.add_node();
    sys.add_node();
    sys.policy().set_instance_home("Thrower", 1);
    Value t = sys.construct(0, "Thrower", "()V");
    try {
        sys.node(0).interp().call_virtual(t, "go", "()V");
        FAIL() << "expected GuestException";
    } catch (const vm::GuestException& e) {
        EXPECT_EQ(e.class_name(), "QuotaError");  // exact class reconstructed
        EXPECT_EQ(e.message(), "quota");
    }
}

}  // namespace
}  // namespace rafda::runtime
