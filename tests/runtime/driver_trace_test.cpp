// Tracer integrity under the concurrent WorkloadDriver with retries
// (satellite of DESIGN.md §16): interleaved clients must never corrupt
// span parentage — every trace has exactly one root, every parent edge
// stays inside its own trace, retried attempts nest under the original
// invoke, and no trace mixes two clients' work.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "obs/trace.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using obs::Span;
using vm::Value;

constexpr const char* kApp = R"(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (I)I {
    load 1
    const 2
    mul
    returnvalue
  }
}
)";

/// Plain (non-Test) harness so the determinism test can spin up two
/// independent copies of the same seeded world.
struct TraceHarness {
    model::ClassPool pool;
    std::unique_ptr<System> system;

    TraceHarness() {
        vm::install_prelude(pool);
        model::assemble_into(pool, kApp);
        model::verify_pool(pool);
        SystemOptions options;
        options.network_seed = 7;
        options.reliability.attempts = 8;
        options.reliability.backoff_base_us = 200;
        options.reliability.dedup = true;
        system = std::make_unique<System>(pool, options);
        system->add_node();  // 0: server
        system->add_node();  // 1: client
        system->add_node();  // 2: client
        system->policy().set_instance_home("Service", 0, "RMI");
    }

    /// ~15% request loss client->server from `from_us` on, so retries are
    /// guaranteed to interleave with the other client's traffic.
    void make_lossy(std::uint64_t from_us) {
        for (net::NodeId client : {net::NodeId{1}, net::NodeId{2}}) {
            net::FaultWindow w;
            w.kind = net::FaultKind::DropRate;
            w.src = client;
            w.dst = 0;
            w.from_us = from_us;
            w.until_us = ~0ULL;
            w.drop_probability = 0.15;
            system->network().fault_plan().add(w);
        }
    }

    WorkloadDriver::Report run_clients(int calls) {
        WorkloadDriver driver(*system);
        for (net::NodeId client : {net::NodeId{1}, net::NodeId{2}}) {
            Value svc = system->construct(client, "Service", "()V");
            driver.add_client(client, static_cast<std::size_t>(calls),
                              [svc](System& sys, net::NodeId node) {
                                  sys.node(node).interp().call_virtual(
                                      svc, "work", "(I)I", {Value::of_int(3)});
                              });
        }
        make_lossy(std::max(system->node(1).clock_us(),
                            system->node(2).clock_us()));
        system->tracer().set_enabled(true);
        return driver.run();
    }
};

TEST(DriverTrace, SpanParentageSurvivesConcurrencyAndRetries) {
    TraceHarness h;
    System* system = h.system.get();
    WorkloadDriver::Report report = h.run_clients(24);
    ASSERT_EQ(report.tasks_run, 48u);
    EXPECT_EQ(report.faults, 0u);
    ASSERT_GT(report.recovered, 0u) << "workload produced no retries";
    EXPECT_EQ(system->tracer().current_span(), 0u);  // everything closed

    const std::vector<Span>& spans = system->tracer().spans();
    std::map<std::uint64_t, const Span*> by_id;
    for (const Span& s : spans) by_id[s.id] = &s;

    std::map<std::uint64_t, std::vector<const Span*>> by_trace;
    for (const Span& s : spans) by_trace[s.trace].push_back(&s);
    ASSERT_EQ(by_trace.size(), 48u);  // one trace per driver task

    for (const auto& [trace, members] : by_trace) {
        const Span* root = nullptr;
        std::set<std::int32_t> client_nodes;
        for (const Span* s : members) {
            if (s->parent == 0) {
                EXPECT_EQ(root, nullptr) << "two roots in trace " << trace;
                root = s;
            } else {
                // Every parent edge resolves, and stays inside the trace.
                auto it = by_id.find(s->parent);
                ASSERT_NE(it, by_id.end())
                    << s->name << " has dangling parent " << s->parent;
                EXPECT_EQ(it->second->trace, trace) << s->name;
            }
            if (s->name.starts_with("rpc.invoke")) client_nodes.insert(s->node);
        }
        ASSERT_NE(root, nullptr) << "rootless trace " << trace;
        EXPECT_TRUE(root->name.starts_with("rpc.invoke")) << root->name;
        // No cross-client leakage: all invokes in a trace sit on the one
        // client node that started it.
        EXPECT_EQ(client_nodes, (std::set<std::int32_t>{root->node}));
        EXPECT_TRUE(root->node == 1 || root->node == 2);
    }

    // Retried attempts nest under the original invoke: a numbered
    // `rpc.attempt N` span hangs off the root, and the retry's transfers
    // sit inside it — never under another client's trace.
    bool saw_retried_trace = false;
    for (const auto& [trace, members] : by_trace) {
        const Span* root = nullptr;
        for (const Span* s : members)
            if (s->parent == 0) root = s;
        std::vector<const Span*> attempts;
        for (const Span* s : members)
            if (s->name.starts_with("rpc.attempt")) attempts.push_back(s);
        if (attempts.empty()) continue;
        saw_retried_trace = true;
        for (const Span* a : attempts) {
            EXPECT_EQ(a->parent, root->id) << a->name;
            EXPECT_EQ(a->node, root->node) << a->name;
        }
        // Every client-side transfer belongs to the root or to one of its
        // attempt spans — retries never escape their invoke.
        for (const Span* s : members) {
            if (!s->name.starts_with("net.transfer") || s->node == 0) continue;
            bool under_attempt = false;
            for (const Span* a : attempts) under_attempt |= s->parent == a->id;
            EXPECT_TRUE(s->parent == root->id || under_attempt) << s->name;
        }
    }
    EXPECT_TRUE(saw_retried_trace);
}

TEST(DriverTrace, TraceStreamIsDeterministic) {
    auto shape = [] {
        TraceHarness h;
        h.run_clients(12);
        std::vector<std::tuple<std::string, std::int32_t, std::uint64_t>> out;
        for (const Span& s : h.system->tracer().spans())
            out.emplace_back(s.name, s.node, s.start_us);
        return out;
    };
    EXPECT_EQ(shape(), shape());
}

}  // namespace
}  // namespace rafda::runtime
