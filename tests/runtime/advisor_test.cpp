#include "runtime/advisor.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Hot {
  field n I
  ctor ()V {
    return
  }
  method hit ()I {
    load 0
    load 0
    getfield Hot.n I
    const 1
    add
    putfield Hot.n I
    load 0
    getfield Hot.n I
    returnvalue
  }
}
class Cold {
  ctor ()V {
    return
  }
  method rare ()V {
    return
  }
}
)";

struct AdvisorFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        system->add_node();
    }
};

TEST_F(AdvisorFixture, NoTrafficNoRecommendations) {
    PolicyAdvisor advisor(*system);
    EXPECT_TRUE(advisor.advise().empty());
}

TEST_F(AdvisorFixture, RecommendsDominantCaller) {
    // Hot objects live on node 2 (policy), but node 0 does all the calling.
    system->policy().set_instance_home("Hot", 2, "RMI");
    Value h = system->construct(0, "Hot", "()V");
    for (int k = 0; k < 40; ++k) system->node(0).interp().call_virtual(h, "hit", "()I");

    PolicyAdvisor advisor(*system, /*min_calls=*/16, /*min_dominance=*/0.6);
    std::vector<Recommendation> recs = advisor.advise();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].cls, "Hot");
    EXPECT_EQ(recs[0].objects_on, 2);
    EXPECT_EQ(recs[0].recommended_home, 0);
    EXPECT_EQ(recs[0].remote_calls, 40u);
    EXPECT_DOUBLE_EQ(recs[0].dominance, 1.0);
}

TEST_F(AdvisorFixture, IgnoresLowVolumeAndBalancedTraffic) {
    system->policy().set_instance_home("Hot", 2, "RMI");
    system->policy().set_instance_home("Cold", 2, "RMI");
    Value h = system->construct(0, "Hot", "()V");
    Value c = system->construct(0, "Cold", "()V");

    // Cold: below the volume threshold.
    for (int k = 0; k < 4; ++k) system->node(0).interp().call_virtual(c, "rare", "()V");
    // Hot: heavy but perfectly split between nodes 0 and 1 — no dominance.
    Value h_on_1 = system->node(1).import_ref(2, system->resolve_terminal(0, h.as_ref()).second,
                                              "Hot_O_Int", "RMI");
    for (int k = 0; k < 20; ++k) {
        system->node(0).interp().call_virtual(h, "hit", "()I");
        system->node(1).interp().call_virtual(h_on_1, "hit", "()I");
    }

    PolicyAdvisor advisor(*system, 16, 0.6);
    EXPECT_TRUE(advisor.advise().empty());
}

TEST_F(AdvisorFixture, ApplyMovesFuturePlacements) {
    system->policy().set_instance_home("Hot", 2, "RMI");
    Value h = system->construct(0, "Hot", "()V");
    for (int k = 0; k < 32; ++k) system->node(0).interp().call_virtual(h, "hit", "()I");

    PolicyAdvisor advisor(*system);
    std::size_t changed = advisor.apply(advisor.advise());
    EXPECT_EQ(changed, 1u);
    // Future creations from node 0 now stay local...
    EXPECT_EQ(system->policy().instance_placement("Hot", 0).node, 0);
    Value h2 = system->construct(0, "Hot", "()V");
    EXPECT_EQ(system->node(0).interp().class_of(h2.as_ref()).name, "Hot_O_Local");
    // ...and the traffic window restarted.
    EXPECT_TRUE(system->class_traffic().empty());
}

TEST_F(AdvisorFixture, ClosingTheLoopReducesVirtualTime) {
    // Full decide-and-act loop: observe, apply the recommendation, migrate
    // the existing object, and compare per-phase cost.
    system->policy().set_instance_home("Hot", 2, "RMI");
    Value h = system->construct(0, "Hot", "()V");

    std::uint64_t t0 = system->network().now_us();
    for (int k = 0; k < 30; ++k) system->node(0).interp().call_virtual(h, "hit", "()I");
    std::uint64_t before = system->network().now_us() - t0;

    PolicyAdvisor advisor(*system);
    std::vector<Recommendation> recs = advisor.advise();
    ASSERT_FALSE(recs.empty());
    advisor.apply(recs);
    auto [obj_node, obj_oid] = system->resolve_terminal(0, h.as_ref());
    system->migrate_instance(obj_node, obj_oid, recs[0].recommended_home, "RMI");
    system->shorten_chain(0, h.as_ref());

    t0 = system->network().now_us();
    for (int k = 0; k < 30; ++k) system->node(0).interp().call_virtual(h, "hit", "()I");
    std::uint64_t after = system->network().now_us() - t0;

    EXPECT_EQ(after, 0u);  // fully local now
    EXPECT_GT(before, 0u);
}

}  // namespace
}  // namespace rafda::runtime
