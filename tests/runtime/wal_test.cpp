// WAL framing and replay (DESIGN.md §20): every record kind round-trips,
// a torn tail — the log truncated at *any* byte offset inside the final
// record — stops replay cleanly at the last complete record, corrupted
// frames are rejected by the CRC rather than silently applied, and a
// committed snapshot truncates the log.
#include <gtest/gtest.h>

#include <sstream>

#include "runtime/wal.hpp"
#include "support/error.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

/// Flattens every visitor event into one line so whole replays compare as
/// string vectors — a mismatch pinpoints the first diverging record.
struct RecordingVisitor final : WalVisitor {
    std::vector<std::string> events;

    static std::string show(const Value& v) {
        if (v.is_null()) return "null";
        if (v.is_bool()) return v.as_bool() ? "true" : "false";
        if (v.is_int()) return "i" + std::to_string(v.as_int());
        if (v.is_long()) return "j" + std::to_string(v.as_long());
        if (v.is_double()) return "d" + std::to_string(v.as_double());
        if (v.is_str()) return "s" + v.as_str();
        return "r" + std::to_string(v.as_ref());
    }

    void on_alloc(std::uint64_t t, const std::string& cls) override {
        events.push_back("alloc " + std::to_string(t) + " " + cls);
    }
    void on_alloc_array(std::uint64_t t, const std::string& elem,
                        std::uint64_t len) override {
        events.push_back("array " + std::to_string(t) + " " + elem + " " +
                         std::to_string(len));
    }
    void on_field_put(std::uint64_t t, std::uint64_t oid, std::uint64_t slot,
                      const Value& v) override {
        events.push_back("field " + std::to_string(t) + " " + std::to_string(oid) +
                         "." + std::to_string(slot) + "=" + show(v));
    }
    void on_array_put(std::uint64_t t, std::uint64_t oid, std::uint64_t idx,
                      const Value& v) override {
        events.push_back("aput " + std::to_string(t) + " " + std::to_string(oid) +
                         "[" + std::to_string(idx) + "]=" + show(v));
    }
    void on_static_put(std::uint64_t t, const std::string& cls,
                       const std::string& field, const Value& v) override {
        events.push_back("static " + std::to_string(t) + " " + cls + "." + field +
                         "=" + show(v));
    }
    void on_class_init(std::uint64_t t, const std::string& cls) override {
        events.push_back("clinit " + std::to_string(t) + " " + cls);
    }
    void on_singleton(std::uint64_t t, const std::string& cls,
                      std::uint64_t oid) override {
        events.push_back("singleton " + std::to_string(t) + " " + cls + "=" +
                         std::to_string(oid));
    }
    void on_singleton_drop(std::uint64_t t, const std::string& cls) override {
        events.push_back("drop " + std::to_string(t) + " " + cls);
    }
    void on_proxy_import(std::uint64_t t, std::int32_t node, std::uint64_t oid,
                         const std::string& iface, const std::string& proto,
                         std::uint64_t local) override {
        events.push_back("import " + std::to_string(t) + " " + std::to_string(node) +
                         ":" + std::to_string(oid) + " " + iface + "/" + proto +
                         " as " + std::to_string(local));
    }
    void on_reply(std::uint64_t t, std::uint64_t req,
                  const net::CallReply& reply) override {
        std::ostringstream os;
        os << "reply " << t << " " << req << " id=" << reply.request_id
           << " fault=" << reply.is_fault
           << " tag=" << static_cast<int>(reply.result.tag) << " fc="
           << reply.fault_class << " fm=" << reply.fault_msg;
        if (reply.result.tag == net::ValueTag::Ref)
            os << " ref=" << reply.result.ref_node << ":" << reply.result.ref_oid
               << ":" << reply.result.ref_class;
        events.push_back(os.str());
    }
    void on_transmute(std::uint64_t t, std::uint64_t oid, const std::string& cls,
                      std::int32_t node, std::uint64_t remote) override {
        events.push_back("transmute " + std::to_string(t) + " " +
                         std::to_string(oid) + " -> " + cls + "@" +
                         std::to_string(node) + ":" + std::to_string(remote));
    }
    void on_relocate(std::uint64_t t, std::uint64_t oid, const std::string& cls,
                     std::int32_t node, std::uint64_t remote) override {
        events.push_back("relocate " + std::to_string(t) + " " +
                         std::to_string(oid) + " -> " + cls + "@" +
                         std::to_string(node) + ":" + std::to_string(remote));
    }
};

/// One record of every kind, with every Value tag exercised somewhere.
void append_all_kinds(Wal& wal) {
    wal.append_alloc(1, "Service");
    wal.append_alloc_array(2, "I", 4);
    wal.append_field_put(3, 1, 0, Value::of_int(42));
    wal.append_field_put(4, 1, 1, Value::of_long(1LL << 40));
    wal.append_field_put(5, 1, 2, Value::of_double(2.5));
    wal.append_field_put(6, 1, 3, Value::of_str("hello"));
    wal.append_field_put(7, 1, 4, Value::null());
    wal.append_field_put(8, 1, 5, Value::of_bool(true));
    wal.append_array_put(9, 2, 3, Value::of_ref(1));
    wal.append_static_put(10, "Service", "total", Value::of_int(7));
    wal.append_class_init(11, "Service");
    wal.append_singleton(12, "Registry", 9);
    wal.append_singleton_drop(13, "Registry");
    wal.append_proxy_import(14, 2, 17, "IService", "RMI", 5);
    net::CallReply ok;
    ok.request_id = 900;
    ok.result = net::MarshalledValue::of_int(84);
    wal.append_reply(15, 900, ok);
    net::CallReply ref;
    ref.request_id = 901;
    ref.result = net::MarshalledValue::of_ref(1, 33, "Service");
    wal.append_reply(16, 901, ref);
    net::CallReply fault;
    fault.request_id = 902;
    fault.is_fault = true;
    fault.fault_class = "RemoteFault";
    fault.fault_msg = "boom";
    wal.append_reply(17, 902, fault);
    wal.append_transmute(18, 4, "Service__Proxy", 2, 11);
    wal.append_relocate(19, 6, "Service__Proxy", 3, 12);
}

TEST(Wal, EveryRecordKindRoundTrips) {
    Wal wal;
    append_all_kinds(wal);
    EXPECT_EQ(wal.stats().records, 19u);

    RecordingVisitor v;
    Wal::ReplayResult r = Wal::replay(wal.log(), v);
    EXPECT_TRUE(r.clean);
    EXPECT_EQ(r.records, 19u);
    EXPECT_EQ(r.bytes, wal.log().size());
    ASSERT_EQ(v.events.size(), 19u);
    EXPECT_EQ(v.events[0], "alloc 1 Service");
    EXPECT_EQ(v.events[1], "array 2 I 4");
    EXPECT_EQ(v.events[2], "field 3 1.0=i42");
    EXPECT_EQ(v.events[8], "aput 9 2[3]=r1");
    EXPECT_EQ(v.events[13], "import 14 2:17 IService/RMI as 5");
    EXPECT_EQ(v.events[18], "relocate 19 6 -> Service__Proxy@3:12");

    // The same bytes replay to the same events, bit for bit.
    RecordingVisitor again;
    Wal::replay(wal.log(), again);
    EXPECT_EQ(v.events, again.events);
}

TEST(Wal, TornTailTruncatedAtEveryByteOffsetStopsCleanly) {
    // Satellite: simulate a crash mid-append by truncating the log at
    // *every* byte offset inside the final record.  Replay must apply the
    // first two records whole and nothing — not one event — of the tail.
    Wal wal;
    wal.append_alloc(1, "Service");
    wal.append_field_put(2, 1, 0, Value::of_int(42));
    const std::size_t intact = wal.log().size();
    wal.append_static_put(3, "Service", "total", Value::of_str("tail-record"));
    const Bytes& full = wal.log();
    ASSERT_GT(full.size(), intact);

    RecordingVisitor whole;
    Wal::replay(full, whole);
    ASSERT_EQ(whole.events.size(), 3u);
    const std::vector<std::string> prefix(whole.events.begin(),
                                          whole.events.begin() + 2);

    for (std::size_t cut = intact; cut < full.size(); ++cut) {
        Bytes torn(full.begin(), full.begin() + cut);
        RecordingVisitor v;
        Wal::ReplayResult r = Wal::replay(torn, v);
        EXPECT_EQ(v.events, prefix) << "cut at " << cut;
        EXPECT_EQ(r.records, 2u) << "cut at " << cut;
        EXPECT_EQ(r.bytes, intact) << "cut at " << cut;
        // Zero bytes of the tail record is a record boundary — a crash
        // *before* the append — and replay rightly calls that clean; any
        // partial tail is flagged torn.
        EXPECT_EQ(r.clean, cut == intact) << "cut at " << cut;
    }
}

TEST(Wal, BitFlipAnywhereNeverSurvivesReplay) {
    // CRC fuzz: flip one bit anywhere in the stream and replay.  The
    // damaged stream must yield a strict prefix of the original events —
    // the flip is detected (length, CRC, or payload) and replay stops;
    // it is never silently applied as a different record.
    Wal wal;
    append_all_kinds(wal);
    const Bytes& good = wal.log();
    RecordingVisitor reference;
    Wal::replay(good, reference);

    std::uint64_t lcg = 0x9E3779B97F4A7C15ull;  // deterministic, seedless
    for (int trial = 0; trial < 200; ++trial) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t byte = (lcg >> 16) % good.size();
        const int bit = (lcg >> 8) & 7;
        Bytes bad = good;
        bad[byte] ^= static_cast<std::uint8_t>(1u << bit);

        RecordingVisitor v;
        Wal::ReplayResult r = Wal::replay(bad, v);
        EXPECT_FALSE(r.clean && r.records == reference.events.size())
            << "flip at byte " << byte << " bit " << bit << " went undetected";
        ASSERT_LT(v.events.size(), reference.events.size());
        EXPECT_TRUE(std::equal(v.events.begin(), v.events.end(),
                               reference.events.begin()))
            << "flip at byte " << byte << " bit " << bit
            << " surfaced a corrupted record";
    }
}

TEST(Wal, SnapshotTruncatesLogAndRecoverReplaysBoth) {
    Wal wal;
    wal.append_alloc(1, "Old");
    wal.append_field_put(2, 1, 0, Value::of_int(1));
    EXPECT_EQ(wal.stats().records, 2u);

    // Checkpoint: the snapshot supersedes the log, which empties.
    wal.begin_snapshot();
    wal.append_alloc(5, "Checkpointed");
    wal.append_field_put(5, 1, 0, Value::of_int(2));
    wal.commit_snapshot();
    EXPECT_TRUE(wal.log().empty());
    EXPECT_FALSE(wal.snapshot().empty());
    EXPECT_EQ(wal.stats().snapshots, 1u);
    EXPECT_EQ(wal.stats().records, 2u);  // snapshot appends are not log records

    // Post-checkpoint mutations land in the fresh log ...
    wal.append_field_put(7, 1, 0, Value::of_int(3));
    EXPECT_EQ(wal.stats().records, 3u);

    // ... and recovery replays snapshot first, then the tail.
    RecordingVisitor v;
    Wal::ReplayResult r = wal.recover(v);
    EXPECT_TRUE(r.clean);
    EXPECT_EQ(r.records, 3u);
    ASSERT_EQ(v.events.size(), 3u);
    EXPECT_EQ(v.events[0], "alloc 5 Checkpointed");
    EXPECT_EQ(v.events[1], "field 5 1.0=i2");
    EXPECT_EQ(v.events[2], "field 7 1.0=i3");
    EXPECT_EQ(wal.stats().recoveries, 1u);
    EXPECT_EQ(wal.stats().replayed, 3u);
}

TEST(Wal, EmptyAndCrcKnownAnswer) {
    Wal wal;
    EXPECT_TRUE(wal.empty());
    wal.append_class_init(1, "C");
    EXPECT_FALSE(wal.empty());

    // CRC-32 IEEE known-answer: "123456789" -> 0xCBF43926.
    const char* kat = "123456789";
    EXPECT_EQ(wal_crc32(reinterpret_cast<const std::uint8_t*>(kat), 9),
              0xCBF43926u);
    EXPECT_EQ(wal_crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace rafda::runtime
