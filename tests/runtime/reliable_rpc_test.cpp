// Reliable RPC (DESIGN.md §15): deterministic retry/backoff, per-call
// deadlines in virtual time, exactly-once upgrade via request-id dedup,
// circuit breakers, and scheduled node crashes.  The §12 caveat — at-most
// once is not exactly-once — is closed here end-to-end: a Create whose
// reply is lost must not leak an instance when the reply cache answers the
// retry, and a lost request must re-execute exactly once.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (I)I {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    const 2
    mul
    returnvalue
  }
  method calls ()I {
    load 0
    getfield Service.calls I
    returnvalue
  }
}
)";

struct ReliableFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        system->policy().set_instance_home("Service", 1, "RMI");
    }

    std::uint64_t counter(const std::string& name) {
        return system->metrics().counter(name).value();
    }

    /// Drop-everything window on the directed link, in absolute virtual time.
    void drop_window(net::NodeId src, net::NodeId dst, std::uint64_t from,
                     std::uint64_t until, double p = 1.0) {
        net::FaultWindow w;
        w.kind = net::FaultKind::DropRate;
        w.src = src;
        w.dst = dst;
        w.from_us = from;
        w.until_us = until;
        w.drop_probability = p;
        system->network().fault_plan().add(w);
    }

    void crash_window(net::NodeId node, std::uint64_t from, std::uint64_t until) {
        net::FaultWindow w;
        w.kind = net::FaultKind::NodeCrash;
        w.node = node;
        w.from_us = from;
        w.until_us = until;
        system->network().fault_plan().add(w);
    }

    net::CallReply send_create(std::uint64_t request_id) {
        net::CallRequest req;
        req.kind = net::RequestKind::Create;
        req.cls = "Service";
        req.request_id = request_id;
        req.src_node = 0;
        return system->rpc(0, 1, "RMI", req);
    }
};

TEST_F(ReliableFixture, RetryRecoversFromRequestLossAndExecutesOnce) {
    Value svc = system->construct(0, "Service", "()V");
    RetryPolicy& rp = system->reliability();
    rp.attempts = 5;
    rp.backoff_base_us = 200;

    // One window that eats exactly the first attempt's request: the retry
    // departs after reconcile (+latency) plus backoff, past the window.
    const std::uint64_t t0 = system->node(0).clock_us();
    drop_window(0, 1, t0, t0 + 150);

    Value out = system->node(0).interp().call_virtual(svc, "work", "(I)I",
                                                      {Value::of_int(21)});
    EXPECT_EQ(out.as_int(), 42);
    // The lost request never executed, so the retry re-executes exactly once.
    EXPECT_EQ(system->node(0).interp().call_virtual(svc, "calls", "()I").as_int(), 1);
    EXPECT_EQ(counter("rpc.retries"), 1u);
    EXPECT_EQ(counter("rpc.retries_reply_loss"), 0u);
    EXPECT_EQ(counter("rpc.dedup_hits"), 0u);
}

TEST_F(ReliableFixture, DedupClosesTheCreateReplyLossLeak) {
    // DESIGN.md §12: a Create whose *reply* is lost has already allocated
    // on the remote node; a naive retry would allocate again.  With dedup
    // on, the reply cache answers the retry and the heap gains exactly one
    // instance.
    RetryPolicy& rp = system->reliability();
    rp.attempts = 5;
    rp.backoff_base_us = 1000;
    rp.dedup = true;

    const std::size_t heap_before = system->node(1).interp().heap().size();
    const std::uint64_t t0 = system->node(0).clock_us();
    drop_window(1, 0, t0, t0 + 400);  // first reply lost, retried reply clears

    Value svc = system->construct(0, "Service", "()V");
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before + 1);
    EXPECT_EQ(counter("rpc.retries"), 1u);
    EXPECT_EQ(counter("rpc.retries_reply_loss"), 1u);
    EXPECT_EQ(counter("rpc.dedup_hits"), 1u);

    // The instance is live and usable (not a half-created orphan).
    EXPECT_EQ(system->node(0)
                  .interp()
                  .call_virtual(svc, "work", "(I)I", {Value::of_int(2)})
                  .as_int(),
              4);
}

TEST_F(ReliableFixture, IdempotencyKeySuppressesReExecution) {
    // The same request id sent twice executes once when dedup is on; with
    // dedup off the second send re-executes — the §12 leak made visible.
    system->reliability().dedup = true;
    const std::size_t heap_before = system->node(1).interp().heap().size();
    send_create(500);
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before + 1);
    send_create(500);  // simulated duplicate of the same logical call
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before + 1);
    EXPECT_EQ(counter("rpc.dedup_hits"), 1u);

    system->reliability().dedup = false;
    send_create(501);
    send_create(501);
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before + 3);  // leaked
    EXPECT_EQ(counter("rpc.dedup_hits"), 1u);
}

TEST_F(ReliableFixture, ReplyCacheIsBoundedFifo) {
    RetryPolicy& rp = system->reliability();
    rp.dedup = true;
    rp.dedup_capacity = 2;
    send_create(1);
    send_create(2);
    send_create(3);  // evicts request 1, oldest first
    const std::size_t heap = system->node(1).interp().heap().size();
    send_create(3);  // still cached
    EXPECT_EQ(counter("rpc.dedup_hits"), 1u);
    EXPECT_EQ(system->node(1).interp().heap().size(), heap);
    send_create(1);  // evicted: re-executes — the price of a bounded cache
    EXPECT_EQ(counter("rpc.dedup_hits"), 1u);
    EXPECT_EQ(system->node(1).interp().heap().size(), heap + 1);
}

TEST_F(ReliableFixture, ReplyLossWithoutDedupSurfacesImmediately) {
    // Retrying a reply-loss without dedup would re-execute, so the policy
    // surfaces it even with attempts to spare.
    system->reliability().attempts = 5;
    system->network().set_link(1, 0, net::LinkParams{100, 0.0, 1.0});
    try {
        send_create(7);
        FAIL() << "expected Dropped";
    } catch (const System::Dropped& d) {
        EXPECT_TRUE(d.executed_remotely);
        EXPECT_FALSE(d.fast_fail);
    }
    EXPECT_EQ(counter("rpc.retries"), 0u);
}

TEST_F(ReliableFixture, DeadlineExceededInVirtualTime) {
    Value svc = system->construct(0, "Service", "()V");
    RetryPolicy& rp = system->reliability();
    rp.attempts = 10;
    rp.backoff_base_us = 200;
    rp.deadline_us = 350;
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});
    try {
        system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});
        FAIL() << "expected GuestException(RemoteFault)";
    } catch (const vm::GuestException& e) {
        EXPECT_EQ(e.class_name(), kRemoteFaultClass);
        EXPECT_NE(e.message().find("deadline exceeded"), std::string::npos)
            << e.message();
    }
    EXPECT_EQ(counter("rpc.timeouts"), 1u);
    EXPECT_LT(counter("rpc.retries"), 9u);  // gave up on the deadline, not the cap
}

TEST_F(ReliableFixture, ServerRefusesExpiredRequestWithoutExecuting) {
    system->reliability().dedup = true;
    const std::size_t heap_before = system->node(1).interp().heap().size();
    net::CallRequest req;
    req.kind = net::RequestKind::Create;
    req.cls = "Service";
    req.request_id = 600;
    req.src_node = 0;
    // Expires mid-flight: the link latency alone overshoots it.
    req.deadline_us = system->node(0).clock_us() + 50;
    net::CallReply reply = system->rpc(0, 1, "RMI", req);
    EXPECT_TRUE(reply.is_fault);
    EXPECT_EQ(reply.fault_class, kRemoteFaultClass);
    EXPECT_NE(reply.fault_msg.find("deadline expired"), std::string::npos);
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before);
    EXPECT_EQ(counter("rpc.timeouts"), 1u);

    // Expiry refusals are not cached: a later duplicate is judged afresh,
    // not answered with the stale refusal.
    net::CallRequest again;
    again.kind = net::RequestKind::Create;
    again.cls = "Service";
    again.request_id = 600;
    again.src_node = 0;
    net::CallReply second = system->rpc(0, 1, "RMI", again);
    EXPECT_FALSE(second.is_fault);
    EXPECT_EQ(counter("rpc.dedup_hits"), 0u);
}

TEST_F(ReliableFixture, BreakerOpensFailsFastAndRecovers) {
    RetryPolicy& rp = system->reliability();
    rp.breaker_threshold = 2;
    rp.breaker_cooldown_us = 5000;
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});

    EXPECT_THROW(send_create(1), System::Dropped);
    EXPECT_THROW(send_create(2), System::Dropped);

    auto breaker_state = [&] {
        CircuitBreaker::State s = CircuitBreaker::State::Closed;
        system->visit_breakers([&](net::NodeId dst, const std::string& proto,
                                   const CircuitBreaker& b) {
            if (dst == 1 && proto == "RMI") s = b.state;
        });
        return s;
    };
    EXPECT_EQ(breaker_state(), CircuitBreaker::State::Open);
    const obs::Snapshot open_snap = system->metrics().snapshot();
    ASSERT_NE(open_snap.find("rpc.breaker.1.RMI.state"), nullptr);
    EXPECT_EQ(open_snap.find("rpc.breaker.1.RMI.state")->gauge, 1);

    // While open: fail fast, no wire traffic, rejection counted.
    const std::uint64_t drops_before = system->remote_stats().at("RMI").drops;
    try {
        send_create(3);
        FAIL() << "expected fast-fail Dropped";
    } catch (const System::Dropped& d) {
        EXPECT_TRUE(d.fast_fail);
        EXPECT_NE(d.what.find("breaker open"), std::string::npos);
    }
    EXPECT_EQ(counter("rpc.breaker_open"), 1u);
    EXPECT_EQ(system->remote_stats().at("RMI").drops, drops_before);

    // After the cooldown a half-open probe goes through and closes it.
    system->node(0).advance_clock(6000);
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 0.0});
    EXPECT_FALSE(send_create(4).is_fault);
    EXPECT_EQ(breaker_state(), CircuitBreaker::State::Closed);
    EXPECT_EQ(system->metrics().snapshot().find("rpc.breaker.1.RMI.state")->gauge, 0);
}

TEST_F(ReliableFixture, HalfOpenProbeFailureReopens) {
    RetryPolicy& rp = system->reliability();
    rp.breaker_threshold = 1;
    rp.breaker_cooldown_us = 1000;
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});
    EXPECT_THROW(send_create(1), System::Dropped);  // opens at threshold 1
    system->node(0).advance_clock(2000);            // cooldown elapses
    EXPECT_THROW(send_create(2), System::Dropped);  // probe fails on the wire
    CircuitBreaker::State s = CircuitBreaker::State::Closed;
    system->visit_breakers(
        [&](net::NodeId, const std::string&, const CircuitBreaker& b) { s = b.state; });
    EXPECT_EQ(s, CircuitBreaker::State::Open);  // re-opened, not half-open
}

TEST_F(ReliableFixture, RetryBudgetCapsTotalRetries) {
    RetryPolicy& rp = system->reliability();
    rp.attempts = 5;
    rp.backoff_base_us = 200;
    rp.retry_budget = 1;
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});
    EXPECT_THROW(send_create(1), System::Dropped);
    EXPECT_EQ(counter("rpc.retries"), 1u);  // one retry, then the budget is gone
    EXPECT_THROW(send_create(2), System::Dropped);
    EXPECT_EQ(counter("rpc.retries"), 1u);  // exhausted budget means no retries
}

TEST_F(ReliableFixture, CrashFailsFastAndRestartLosesReplyCache) {
    system->reliability().dedup = true;
    const std::size_t heap_before = system->node(1).interp().heap().size();
    send_create(900);
    send_create(900);  // cache answers
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before + 1);
    EXPECT_EQ(counter("rpc.dedup_hits"), 1u);

    // Crash covering the caller's clock: connection-refused, no latency.
    const std::uint64_t t0 = system->node(0).clock_us();
    crash_window(1, t0, t0 + 100);
    try {
        send_create(901);
        FAIL() << "expected fast-fail Dropped";
    } catch (const System::Dropped& d) {
        EXPECT_TRUE(d.fast_fail);
        EXPECT_FALSE(d.executed_remotely);
        EXPECT_NE(d.what.find("down"), std::string::npos);
    }

    // After the restart the reply cache — soft state — is gone: the same
    // request id re-executes.  The heap survives (modelled durable).
    system->node(0).advance_clock(200);
    send_create(900);
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before + 2);
    EXPECT_EQ(counter("rpc.dedup_hits"), 1u);  // no new hit: it re-executed
}

TEST_F(ReliableFixture, RequestArrivingAtCrashedNodeDies) {
    // Window opens after the send but before the arrival: the caller's
    // fast-path check passes, the request dies at the destination, and the
    // loss is a plain (non-fast) request loss.
    const std::size_t heap_before = system->node(1).interp().heap().size();
    const std::uint64_t t0 = system->node(0).clock_us();
    crash_window(1, t0 + 50, t0 + 5000);
    try {
        send_create(1);
        FAIL() << "expected Dropped";
    } catch (const System::Dropped& d) {
        EXPECT_FALSE(d.fast_fail);
        EXPECT_FALSE(d.executed_remotely);
        EXPECT_NE(d.what.find("crashed"), std::string::npos);
    }
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before);
}

// ---- acceptance scenario: lossy workload, with and without reliability ----

struct WorkloadResult {
    WorkloadDriver::Report report;
    std::uint64_t retries = 0;
    std::uint64_t reply_loss_retries = 0;
    std::uint64_t dedup_hits = 0;
    std::int64_t calls1 = -1;  // Service.work executions per client's instance
    std::int64_t calls2 = -1;
};

/// Two clients (nodes 1, 2) drive 40 work() calls each against the server
/// (node 0) under ~8% loss on every client<->server link plus a 20 ms
/// partition of client 1's request path.
WorkloadResult run_lossy_workload(bool reliable) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);
    SystemOptions options;
    options.network_seed = 7;
    if (reliable) {
        options.reliability.attempts = 12;
        options.reliability.backoff_base_us = 200;
        options.reliability.backoff_multiplier = 2.0;
        options.reliability.backoff_cap_us = 30'000;
        options.reliability.jitter_us = 50;
        options.reliability.dedup = true;
    }
    System system(pool, options);
    system.add_node();  // 0: server
    system.add_node();  // 1: client
    system.add_node();  // 2: client
    system.policy().set_instance_home("Service", 0, "RMI");

    Value svc1 = system.construct(1, "Service", "()V");
    Value svc2 = system.construct(2, "Service", "()V");

    // Faults start only after the fault-free setup traffic.
    const std::uint64_t t0 =
        std::max(system.node(1).clock_us(), system.node(2).clock_us());
    auto add = [&](net::FaultWindow w) { system.network().fault_plan().add(w); };
    const std::pair<net::NodeId, net::NodeId> lossy_links[] = {
        {1, 0}, {0, 1}, {2, 0}, {0, 2}};
    for (auto [src, dst] : lossy_links) {
        net::FaultWindow w;
        w.kind = net::FaultKind::DropRate;
        w.src = src;
        w.dst = dst;
        w.from_us = t0;
        w.until_us = ~0ULL;
        w.drop_probability = 0.08;
        add(w);
    }
    net::FaultWindow partition;
    partition.kind = net::FaultKind::LinkDown;
    partition.src = 1;
    partition.dst = 0;
    partition.from_us = t0 + 10'000;
    partition.until_us = t0 + 30'000;
    add(partition);

    WorkloadDriver driver(system);
    auto task = [](Value svc) {
        return [svc](System& sys, net::NodeId node) {
            sys.node(node).interp().call_virtual(svc, "work", "(I)I",
                                                 {Value::of_int(1)});
        };
    };
    driver.add_client(1, 40, task(svc1));
    driver.add_client(2, 40, task(svc2));

    WorkloadResult r;
    r.report = driver.run();
    r.retries = system.metrics().counter("rpc.retries").value();
    r.reply_loss_retries = system.metrics().counter("rpc.retries_reply_loss").value();
    r.dedup_hits = system.metrics().counter("rpc.dedup_hits").value();
    if (reliable) {
        r.calls1 =
            system.node(1).interp().call_virtual(svc1, "calls", "()I").as_int();
        r.calls2 =
            system.node(2).interp().call_virtual(svc2, "calls", "()I").as_int();
    }
    return r;
}

TEST(ReliableWorkload, RetriesAbsorbLossAndPartitionWithZeroDuplicates) {
    WorkloadResult r = run_lossy_workload(/*reliable=*/true);
    EXPECT_EQ(r.report.tasks_run, 80u);
    // Every injected fault recovered; none surfaced.
    EXPECT_EQ(r.report.faults, 0u);
    EXPECT_GT(r.report.recovered, 0u);
    EXPECT_GT(r.retries, 0u);
    // Exactly-once: each instance executed its 40 calls — no duplicates
    // from reply-loss retries, no holes from surfaced faults.
    EXPECT_EQ(r.calls1, 40);
    EXPECT_EQ(r.calls2, 40);
    // Every reply-loss retry was answered from the reply cache.
    EXPECT_EQ(r.dedup_hits, r.reply_loss_retries);
    EXPECT_GT(r.dedup_hits, 0u);
}

TEST(ReliableWorkload, SameScheduleWithoutRetriesSurfacesFaults) {
    WorkloadResult r = run_lossy_workload(/*reliable=*/false);
    EXPECT_EQ(r.report.tasks_run, 80u);
    EXPECT_GT(r.report.faults, 0u);
    EXPECT_EQ(r.report.recovered, 0u);
    EXPECT_EQ(r.retries, 0u);
}

TEST(ReliableWorkload, BothRunsAreBitReproducible) {
    for (bool reliable : {true, false}) {
        WorkloadResult a = run_lossy_workload(reliable);
        WorkloadResult b = run_lossy_workload(reliable);
        EXPECT_EQ(a.report.makespan_us, b.report.makespan_us);
        EXPECT_EQ(a.report.faults, b.report.faults);
        EXPECT_EQ(a.report.recovered, b.report.recovered);
        EXPECT_EQ(a.retries, b.retries);
        EXPECT_EQ(a.dedup_hits, b.dedup_hits);
        EXPECT_EQ(a.calls1, b.calls1);
        EXPECT_EQ(a.calls2, b.calls2);
    }
}

}  // namespace
}  // namespace rafda::runtime
