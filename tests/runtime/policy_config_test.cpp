#include "runtime/policy_config.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rafda::runtime {
namespace {

TEST(PolicyConfig, ParsesFullExample) {
    DistributionPolicy policy;
    net::SimNetwork network;
    apply_policy_config(R"(
# deployment: two racks
protocol default CORBA
instance Inventory on 1 via SOAP
instance Worker on 0
singleton Registry on 1 via RMI

link 0 -> 1 latency 250 bandwidth 125 drop 0.01
link 1 -> 0 latency 250
)",
                        policy, &network);

    EXPECT_EQ(policy.default_protocol(), "CORBA");
    EXPECT_EQ(policy.instance_placement("Inventory", 0),
              (Placement{1, "SOAP"}));
    // 'via' omitted: the default protocol applies.
    EXPECT_EQ(policy.instance_placement("Worker", 5), (Placement{0, "CORBA"}));
    EXPECT_EQ(policy.singleton_placement("Registry", 0), (Placement{1, "RMI"}));
    // Unmentioned classes keep the defaults.
    EXPECT_EQ(policy.instance_placement("Other", 3), (Placement{3, "CORBA"}));
    EXPECT_EQ(policy.singleton_placement("Other", 3), (Placement{0, "CORBA"}));

    EXPECT_EQ(network.link(0, 1).latency_us, 250u);
    EXPECT_DOUBLE_EQ(network.link(0, 1).drop_probability, 0.01);
    EXPECT_DOUBLE_EQ(network.link(0, 1).bandwidth_bytes_per_us, 125.0);
    EXPECT_EQ(network.link(1, 0).latency_us, 250u);
}

TEST(PolicyConfig, EmptyAndCommentOnlyInputIsFine) {
    DistributionPolicy policy;
    apply_policy_config("", policy);
    apply_policy_config("\n# nothing here\n\n", policy);
    EXPECT_EQ(policy.default_protocol(), "RMI");
}

TEST(PolicyConfig, RejectsUnknownProtocol) {
    DistributionPolicy policy;
    EXPECT_THROW(apply_policy_config("protocol default DCOM", policy), ParseError);
    EXPECT_THROW(apply_policy_config("instance A on 0 via DCOM", policy), ParseError);
}

TEST(PolicyConfig, RejectsMalformedLines) {
    DistributionPolicy policy;
    EXPECT_THROW(apply_policy_config("instance A at 0", policy), ParseError);
    EXPECT_THROW(apply_policy_config("instance A on minusone", policy), ParseError);
    EXPECT_THROW(apply_policy_config("instance A on -1", policy), ParseError);
    EXPECT_THROW(apply_policy_config("singleton", policy), ParseError);
    EXPECT_THROW(apply_policy_config("teleport A on 0", policy), ParseError);
    EXPECT_THROW(apply_policy_config("link 0 1 latency 5", policy), ParseError);
    EXPECT_THROW(apply_policy_config("link 0 -> 1 latency 5 warp 9", policy), ParseError);
}

TEST(PolicyConfig, LinkWithoutNetworkIsAnError) {
    DistributionPolicy policy;
    EXPECT_THROW(apply_policy_config("link 0 -> 1 latency 5", policy), ParseError);
}

TEST(PolicyConfig, ErrorsCarryLineNumbers) {
    DistributionPolicy policy;
    try {
        apply_policy_config("protocol default RMI\n\nbogus directive\n", policy);
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3);
    }
}

TEST(PolicyConfig, ParsesReliabilityDirectives) {
    DistributionPolicy policy;
    net::SimNetwork network;
    RetryPolicy reliability;
    apply_policy_config(R"(
retry attempts 8 base 300 multiplier 1.5 cap 20000 jitter 50 budget 100 deadline 50000
dedup on capacity 64
breaker threshold 5 cooldown 9000
fault link 0 -> 1 down from 5000 until 9000
fault link 1 -> 0 flap from 5000 until 9000 period 500
fault link 0 -> 1 drop 0.25 from 10000 until 12000
fault node 1 crash from 20000 until 21000
)",
                        policy, &network, &reliability);

    EXPECT_EQ(reliability.attempts, 8u);
    EXPECT_EQ(reliability.backoff_base_us, 300u);
    EXPECT_DOUBLE_EQ(reliability.backoff_multiplier, 1.5);
    EXPECT_EQ(reliability.backoff_cap_us, 20'000u);
    EXPECT_EQ(reliability.jitter_us, 50u);
    EXPECT_EQ(reliability.retry_budget, 100u);
    EXPECT_EQ(reliability.deadline_us, 50'000u);
    EXPECT_TRUE(reliability.dedup);
    EXPECT_EQ(reliability.dedup_capacity, 64u);
    EXPECT_EQ(reliability.breaker_threshold, 5u);
    EXPECT_EQ(reliability.breaker_cooldown_us, 9000u);

    const net::FaultPlan& plan = network.fault_plan();
    EXPECT_EQ(plan.size(), 4u);
    EXPECT_TRUE(plan.link_down(0, 1, 6000));
    EXPECT_TRUE(plan.link_down(1, 0, 5100));   // flap, first (down) slice
    EXPECT_FALSE(plan.link_down(1, 0, 5600));  // second (up) slice
    EXPECT_EQ(plan.drop_override(0, 1, 11'000).value(), 0.25);
    EXPECT_TRUE(plan.node_down(1, 20'500));
}

TEST(PolicyConfig, DedupOffIsParsed) {
    DistributionPolicy policy;
    RetryPolicy reliability;
    reliability.dedup = true;
    apply_policy_config("dedup off", policy, nullptr, &reliability);
    EXPECT_FALSE(reliability.dedup);
}

TEST(PolicyConfig, ReliabilityDirectivesNeedTheirTargets) {
    DistributionPolicy policy;
    net::SimNetwork network;
    // No RetryPolicy given: retry/dedup/breaker lines are errors.
    EXPECT_THROW(apply_policy_config("retry attempts 3", policy, &network), ParseError);
    EXPECT_THROW(apply_policy_config("dedup on", policy, &network), ParseError);
    EXPECT_THROW(apply_policy_config("breaker threshold 2", policy, &network),
                 ParseError);
    // No network given: fault lines are errors.
    RetryPolicy reliability;
    EXPECT_THROW(apply_policy_config("fault node 1 crash from 0 until 5", policy,
                                     nullptr, &reliability),
                 ParseError);
}

TEST(PolicyConfig, RejectsMalformedReliabilityLines) {
    DistributionPolicy policy;
    net::SimNetwork network;
    RetryPolicy rp;
    auto bad = [&](const char* text) {
        EXPECT_THROW(apply_policy_config(text, policy, &network, &rp), ParseError)
            << text;
    };
    bad("retry attempts 0");                  // at least one attempt
    bad("retry attempts 3 base");             // dangling key
    bad("retry attempts 3 warp 9");           // unknown key
    bad("retry attempts 3 multiplier 0.5");   // shrinking backoff
    bad("dedup maybe");
    bad("dedup on size 9");
    bad("breaker threshold");
    bad("breaker threshold 2 warmup 5");
    bad("fault link 0 -> 1 down from 9 until 5");       // ends before start
    bad("fault link 0 -> 1 down from 5 until 5");       // empty window
    bad("fault link 0 -> 1 flap from 5 until 9");       // flap needs period
    bad("fault link 0 -> 1 down from 5 until 9 period 2");  // period only on flap
    bad("fault link 0 -> 1 drop 1.5 from 5 until 9");   // probability > 1
    bad("fault link 0 -> 1 melt from 5 until 9");
    bad("fault node 1 crash from 5 until 9 period 2");
    bad("fault node 1 crash until 9");
    bad("fault disk 1 crash from 5 until 9");
}

TEST(PolicyConfig, ParsesBatchDirective) {
    DistributionPolicy policy;
    BatchPolicy batching;
    apply_policy_config("batch on max 8", policy, nullptr, nullptr, &batching);
    EXPECT_TRUE(batching.enabled);
    EXPECT_EQ(batching.max_frame_calls, 8u);

    apply_policy_config("batch off", policy, nullptr, nullptr, &batching);
    EXPECT_FALSE(batching.enabled);
    EXPECT_EQ(batching.max_frame_calls, 8u);  // max untouched without 'max N'
}

TEST(PolicyConfig, BatchDirectiveNeedsItsTargetAndValidShape) {
    DistributionPolicy policy;
    // No BatchPolicy given: a batch line is an error.
    EXPECT_THROW(apply_policy_config("batch on", policy), ParseError);

    BatchPolicy batching;
    auto bad = [&](const char* text) {
        EXPECT_THROW(apply_policy_config(text, policy, nullptr, nullptr, &batching),
                     ParseError)
            << text;
    };
    bad("batch");
    bad("batch maybe");
    bad("batch on max");
    bad("batch on cap 4");
    bad("batch on max 1");  // a frame of one call is not a batch
    bad("batch on max 0");
}

TEST(PolicyConfig, ParsesAdaptDirective) {
    DistributionPolicy policy;
    AdaptPolicy adaptation;
    apply_policy_config(
        "adapt on interval 1500 migrate-threshold 128 replicate-ratio 0.8 "
        "min-calls 6",
        policy, nullptr, nullptr, nullptr, &adaptation);
    EXPECT_TRUE(adaptation.enabled);
    EXPECT_EQ(adaptation.interval_us, 1500u);
    EXPECT_EQ(adaptation.migrate_threshold_bytes, 128u);
    EXPECT_DOUBLE_EQ(adaptation.replicate_ratio, 0.8);
    EXPECT_EQ(adaptation.min_window_calls, 6u);

    // Knobs survive an off toggle (only the switch flips).
    apply_policy_config("adapt off", policy, nullptr, nullptr, nullptr,
                        &adaptation);
    EXPECT_FALSE(adaptation.enabled);
    EXPECT_EQ(adaptation.interval_us, 1500u);
}

TEST(PolicyConfig, AdaptDirectiveNeedsItsTargetAndValidShape) {
    DistributionPolicy policy;
    // No AdaptPolicy given: an adapt line is an error.
    EXPECT_THROW(apply_policy_config("adapt on", policy), ParseError);

    AdaptPolicy adaptation;
    auto bad = [&](const char* text) {
        EXPECT_THROW(apply_policy_config(text, policy, nullptr, nullptr, nullptr,
                                         &adaptation),
                     ParseError)
            << text;
    };
    bad("adapt");
    bad("adapt maybe");
    bad("adapt on interval");
    bad("adapt on interval 0");
    bad("adapt on cadence 100");
    bad("adapt on replicate-ratio 1.5");  // a ratio is a probability
    bad("adapt on replicate-ratio -0.1");
}

TEST(PolicyConfig, DurableDirectiveConfiguresDurability) {
    DistributionPolicy policy;
    DurabilityPolicy durability;
    apply_policy_config("durable on snapshot-interval 2500", policy, nullptr,
                        nullptr, nullptr, nullptr, &durability);
    EXPECT_TRUE(durability.enabled);
    EXPECT_EQ(durability.snapshot_interval_us, 2500u);

    // Interval is optional and survives an off toggle (only the switch
    // flips); 0 means never snapshot, which is legal.
    apply_policy_config("durable off", policy, nullptr, nullptr, nullptr,
                        nullptr, &durability);
    EXPECT_FALSE(durability.enabled);
    EXPECT_EQ(durability.snapshot_interval_us, 2500u);
    apply_policy_config("durable on snapshot-interval 0", policy, nullptr,
                        nullptr, nullptr, nullptr, &durability);
    EXPECT_TRUE(durability.enabled);
    EXPECT_EQ(durability.snapshot_interval_us, 0u);
}

TEST(PolicyConfig, DurableDirectiveNeedsItsTargetAndValidShape) {
    DistributionPolicy policy;
    // No DurabilityPolicy given: a durable line is an error.
    EXPECT_THROW(apply_policy_config("durable on", policy), ParseError);

    DurabilityPolicy durability;
    auto bad = [&](const char* text) {
        EXPECT_THROW(apply_policy_config(text, policy, nullptr, nullptr, nullptr,
                                         nullptr, &durability),
                     ParseError)
            << text;
    };
    bad("durable");
    bad("durable maybe");
    bad("durable on snapshot-interval");
    bad("durable on interval 100");
    bad("durable on snapshot-interval -5");
}

TEST(PolicyConfig, LaterLinesOverrideEarlier) {
    DistributionPolicy policy;
    apply_policy_config(R"(
instance A on 1
instance A on 2 via SOAP
)",
                        policy);
    EXPECT_EQ(policy.instance_placement("A", 0), (Placement{2, "SOAP"}));
}

}  // namespace
}  // namespace rafda::runtime
