#include "runtime/policy_config.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rafda::runtime {
namespace {

TEST(PolicyConfig, ParsesFullExample) {
    DistributionPolicy policy;
    net::SimNetwork network;
    apply_policy_config(R"(
# deployment: two racks
protocol default CORBA
instance Inventory on 1 via SOAP
instance Worker on 0
singleton Registry on 1 via RMI

link 0 -> 1 latency 250 bandwidth 125 drop 0.01
link 1 -> 0 latency 250
)",
                        policy, &network);

    EXPECT_EQ(policy.default_protocol(), "CORBA");
    EXPECT_EQ(policy.instance_placement("Inventory", 0),
              (Placement{1, "SOAP"}));
    // 'via' omitted: the default protocol applies.
    EXPECT_EQ(policy.instance_placement("Worker", 5), (Placement{0, "CORBA"}));
    EXPECT_EQ(policy.singleton_placement("Registry", 0), (Placement{1, "RMI"}));
    // Unmentioned classes keep the defaults.
    EXPECT_EQ(policy.instance_placement("Other", 3), (Placement{3, "CORBA"}));
    EXPECT_EQ(policy.singleton_placement("Other", 3), (Placement{0, "CORBA"}));

    EXPECT_EQ(network.link(0, 1).latency_us, 250u);
    EXPECT_DOUBLE_EQ(network.link(0, 1).drop_probability, 0.01);
    EXPECT_DOUBLE_EQ(network.link(0, 1).bandwidth_bytes_per_us, 125.0);
    EXPECT_EQ(network.link(1, 0).latency_us, 250u);
}

TEST(PolicyConfig, EmptyAndCommentOnlyInputIsFine) {
    DistributionPolicy policy;
    apply_policy_config("", policy);
    apply_policy_config("\n# nothing here\n\n", policy);
    EXPECT_EQ(policy.default_protocol(), "RMI");
}

TEST(PolicyConfig, RejectsUnknownProtocol) {
    DistributionPolicy policy;
    EXPECT_THROW(apply_policy_config("protocol default DCOM", policy), ParseError);
    EXPECT_THROW(apply_policy_config("instance A on 0 via DCOM", policy), ParseError);
}

TEST(PolicyConfig, RejectsMalformedLines) {
    DistributionPolicy policy;
    EXPECT_THROW(apply_policy_config("instance A at 0", policy), ParseError);
    EXPECT_THROW(apply_policy_config("instance A on minusone", policy), ParseError);
    EXPECT_THROW(apply_policy_config("instance A on -1", policy), ParseError);
    EXPECT_THROW(apply_policy_config("singleton", policy), ParseError);
    EXPECT_THROW(apply_policy_config("teleport A on 0", policy), ParseError);
    EXPECT_THROW(apply_policy_config("link 0 1 latency 5", policy), ParseError);
    EXPECT_THROW(apply_policy_config("link 0 -> 1 latency 5 warp 9", policy), ParseError);
}

TEST(PolicyConfig, LinkWithoutNetworkIsAnError) {
    DistributionPolicy policy;
    EXPECT_THROW(apply_policy_config("link 0 -> 1 latency 5", policy), ParseError);
}

TEST(PolicyConfig, ErrorsCarryLineNumbers) {
    DistributionPolicy policy;
    try {
        apply_policy_config("protocol default RMI\n\nbogus directive\n", policy);
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3);
    }
}

TEST(PolicyConfig, LaterLinesOverrideEarlier) {
    DistributionPolicy policy;
    apply_policy_config(R"(
instance A on 1
instance A on 2 via SOAP
)",
                        policy);
    EXPECT_EQ(policy.instance_placement("A", 0), (Placement{2, "SOAP"}));
}

}  // namespace
}  // namespace rafda::runtime
