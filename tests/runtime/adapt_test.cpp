// AdaptationEngine (DESIGN.md §19) — the closed loop between observation
// and placement, end to end.
//
// The invariants under test, in rough order of importance:
//   - a skewed window migrates the hot singleton toward its dominant
//     caller, autonomously, and the placement sticks (no ping-pong once
//     the traffic goes local);
//   - the migrate threshold really gates: an absurd threshold means the
//     controller observes but never acts, and the run is indistinguishable
//     from adaptation-off in wire terms;
//   - off means OFF: no adapt counters exist, and the event-order digest
//     matches a run that never touched the adaptation API;
//   - a migration whose destination sits inside a FaultPlan crash window
//     defers and is retried by a later tick, with exactly-once execution
//     preserved under retries + dedup (the E10 invariant);
//   - two runs from one seed take identical decisions at identical
//     virtual times.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

constexpr const char* kApp = R"(
class Counter {
  static field total I
  static method bump (I)I {
    getstatic Counter.total I
    load 0
    add
    dup
    putstatic Counter.total I
    returnvalue
  }
  static method total ()I {
    getstatic Counter.total I
    returnvalue
  }
}
)";

struct AdaptRunConfig {
    bool adapt = false;
    AdaptPolicy policy;
    bool crash_caller = false;  // node 1 crashes mid-run
    bool drop_faults = false;   // E10-style lossy links both ways
    bool reliable = false;
    int calls = 40;
};

using DecisionKey = std::tuple<std::uint64_t, std::uint64_t, std::string,
                               std::string, net::NodeId, net::NodeId>;

struct AdaptOutcome {
    std::uint64_t makespan_us = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t digest = 0;
    std::uint64_t faults = 0;
    std::uint64_t retries = 0;
    std::uint64_t migrations = 0;
    std::uint64_t defers = 0;
    std::int32_t executions = 0;   // Counter.total after the run
    net::NodeId home = -1;         // where the singleton ended up
    bool adapt_counters_exist = false;
    std::vector<DecisionKey> decisions;
};

AdaptOutcome run_workload(const AdaptRunConfig& cfg) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);

    SystemOptions options;
    options.network_seed = 11;
    options.default_link = net::LinkParams{20, 0.0, 0.0};
    if (cfg.reliable) {
        options.reliability.attempts = 16;
        options.reliability.backoff_base_us = 200;
        options.reliability.backoff_multiplier = 2.0;
        options.reliability.backoff_cap_us = 2'000;
        options.reliability.dedup = true;
    }
    System system(pool, options);
    system.add_node();  // 0: initial singleton home, otherwise idle
    system.add_node();  // 1: the dominant caller
    system.add_node();  // 2: bystander
    system.policy().set_singleton_home("Counter", 0, "RMI");
    if (cfg.adapt) system.enable_adaptation(cfg.policy);
    if (cfg.crash_caller) {
        net::FaultWindow w;
        w.kind = net::FaultKind::NodeCrash;
        w.node = 1;
        w.from_us = 500;
        w.until_us = 2'500;
        system.network().fault_plan().add(w);
    }
    if (cfg.drop_faults) {
        for (bool inbound : {false, true}) {
            net::FaultWindow w;
            w.kind = net::FaultKind::DropRate;
            w.src = inbound ? 0 : 1;
            w.dst = inbound ? 1 : 0;
            w.from_us = 0;
            w.until_us = ~0ULL;
            w.drop_probability = 0.08;
            system.network().fault_plan().add(w);
        }
    }

    WorkloadDriver driver(system);
    driver.add_client(1, static_cast<std::size_t>(cfg.calls),
                      [](System& sys, net::NodeId node) {
                          sys.call_static(node, "Counter", "bump", "(I)I",
                                          {vm::Value::of_int(1)});
                      });
    WorkloadDriver::Report report = driver.run();

    AdaptOutcome out;
    out.makespan_us = report.makespan_us;
    out.digest = report.event_order_digest;
    out.faults = report.faults;
    out.wire_bytes = system.network().total_stats().bytes;
    out.retries = system.metrics().counter("rpc.retries").value();
    out.home = system.find_singleton("Counter").first;
    out.executions =
        system.call_static(1, "Counter", "total", "()I").as_int();
    system.metrics().visit_counters([&](const std::string& name, std::uint64_t) {
        if (name.rfind("adapt.", 0) == 0) out.adapt_counters_exist = true;
    });
    if (cfg.adapt) {
        out.migrations = system.metrics().counter("adapt.migrations").value();
        for (const AdaptDecision& d : system.adaptation()->decisions()) {
            if (d.action == AdaptDecision::Action::Defer) ++out.defers;
            out.decisions.emplace_back(d.seq, d.t_us, d.cls,
                                       adapt_action_name(d.action), d.from,
                                       d.to);
        }
    }
    return out;
}

AdaptPolicy eager_policy() {
    AdaptPolicy p;
    p.interval_us = 600;
    p.migrate_threshold_bytes = 64;
    p.min_window_calls = 4;
    return p;
}

TEST(Adapt, SkewedTrafficMigratesSingletonTowardCaller) {
    AdaptRunConfig off;
    AdaptOutcome base = run_workload(off);
    EXPECT_EQ(base.home, 0);
    EXPECT_EQ(base.executions, off.calls);
    EXPECT_FALSE(base.adapt_counters_exist);

    AdaptRunConfig on;
    on.adapt = true;
    on.policy = eager_policy();
    AdaptOutcome adapted = run_workload(on);

    // The controller noticed node 1's one-sided traffic and moved the
    // singleton there mid-run — after which the calls are loopback.
    EXPECT_GE(adapted.migrations, 1u);
    EXPECT_EQ(adapted.home, 1);
    EXPECT_EQ(adapted.executions, on.calls);
    EXPECT_EQ(adapted.faults, 0u);
    ASSERT_FALSE(adapted.decisions.empty());
    EXPECT_EQ(std::get<3>(adapted.decisions.front()), "migrate");
    EXPECT_EQ(std::get<4>(adapted.decisions.front()), 0);
    EXPECT_EQ(std::get<5>(adapted.decisions.front()), 1);

    // And it paid off: the adapted run moved fewer bytes end to end
    // (the migration payload included) and finished no later.
    EXPECT_LT(adapted.wire_bytes, base.wire_bytes);
    EXPECT_LE(adapted.makespan_us, base.makespan_us);
}

TEST(Adapt, MigrateThresholdGatesTheController) {
    AdaptRunConfig off;
    AdaptOutcome base = run_workload(off);

    AdaptRunConfig on;
    on.adapt = true;
    on.policy = eager_policy();
    on.policy.migrate_threshold_bytes = 1'000'000'000;  // never worth it
    AdaptOutcome gated = run_workload(on);

    // Observes, never acts: placement and the wire schedule match the
    // adaptation-off run exactly.
    EXPECT_EQ(gated.migrations, 0u);
    EXPECT_TRUE(gated.decisions.empty());
    EXPECT_EQ(gated.home, 0);
    EXPECT_EQ(gated.wire_bytes, base.wire_bytes);
    EXPECT_EQ(gated.makespan_us, base.makespan_us);
}

TEST(Adapt, DisabledIsByteIdenticalAcrossRuns) {
    AdaptRunConfig off;
    AdaptOutcome a = run_workload(off);
    AdaptOutcome b = run_workload(off);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.makespan_us, b.makespan_us);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_FALSE(a.adapt_counters_exist);
}

TEST(Adapt, MigrationToCrashedNodeDefersAndRetries) {
    // The E10 fault plan with the controller in the loop: lossy links
    // both ways (retries + dedup absorb them), and node 1 — the
    // migration's natural destination — crashed over [500, 2500)us.
    // Ticks inside the window that want to migrate must defer; a tick
    // after the window completes the move, and the workload rides it all
    // out exactly-once.
    AdaptRunConfig cfg;
    cfg.adapt = true;
    cfg.policy = eager_policy();
    cfg.crash_caller = true;
    cfg.drop_faults = true;
    cfg.reliable = true;
    AdaptOutcome out = run_workload(cfg);

    EXPECT_GE(out.defers, 1u);
    EXPECT_GE(out.migrations, 1u);
    EXPECT_EQ(out.home, 1);
    EXPECT_EQ(out.faults, 0u);
    EXPECT_GT(out.retries, 0u);  // the crash really did bite
    EXPECT_EQ(out.executions, cfg.calls);

    // Every defer precedes the migration, and the migration's decision
    // time falls outside the crash window.
    bool migrated = false;
    for (const DecisionKey& d : out.decisions) {
        if (std::get<3>(d) == "defer") {
            EXPECT_FALSE(migrated);
            EXPECT_GE(std::get<1>(d), 500u);
            EXPECT_LT(std::get<1>(d), 2'500u);
        } else if (std::get<3>(d) == "migrate") {
            migrated = true;
            EXPECT_GE(std::get<1>(d), 2'500u);
        }
    }
    EXPECT_TRUE(migrated);
}

TEST(Adapt, DecisionsAreDeterministicFromTheSeed) {
    AdaptRunConfig cfg;
    cfg.adapt = true;
    cfg.policy = eager_policy();
    cfg.crash_caller = true;
    cfg.drop_faults = true;
    cfg.reliable = true;
    AdaptOutcome a = run_workload(cfg);
    AdaptOutcome b = run_workload(cfg);
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_EQ(a.makespan_us, b.makespan_us);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.digest, b.digest);
}

}  // namespace
}  // namespace rafda::runtime
