// The flight recorder wired through a live System (DESIGN.md §16): the
// RPC lifecycle lands in the journal in causal order, loss/retry/dedup/
// breaker/fault/migration events carry their documented payloads, the
// observation window rebases together with the utilization epoch on
// reset_stats(), and — the passivity contract — enabling the journal
// changes no virtual-time result.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "obs/journal.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using obs::JournalEvent;
using Kind = JournalEvent::Kind;
using vm::Value;

constexpr const char* kApp = R"(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (I)I {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    const 2
    mul
    returnvalue
  }
}
)";

struct JournalSystemFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        system->policy().set_instance_home("Service", 1, "RMI");
    }

    std::vector<JournalEvent> events() const {
        std::vector<JournalEvent> out;
        system->journal().visit([&](const JournalEvent& e) { out.push_back(e); });
        return out;
    }

    std::map<Kind, std::size_t> kind_counts() const {
        std::map<Kind, std::size_t> out;
        for (const JournalEvent& e : events()) ++out[e.kind];
        return out;
    }

    void drop_window(net::NodeId src, net::NodeId dst, std::uint64_t from,
                     std::uint64_t until) {
        net::FaultWindow w;
        w.kind = net::FaultKind::DropRate;
        w.src = src;
        w.dst = dst;
        w.from_us = from;
        w.until_us = until;
        w.drop_probability = 1.0;
        system->network().fault_plan().add(w);
    }
};

TEST_F(JournalSystemFixture, DisabledByDefaultRecordsNothing) {
    Value svc = system->construct(0, "Service", "()V");
    system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});
    EXPECT_FALSE(system->journal().enabled());
    EXPECT_EQ(system->journal().size(), 0u);
}

TEST_F(JournalSystemFixture, HappyPathLifecycleInCausalOrder) {
    Value svc = system->construct(0, "Service", "()V");
    system->journal().set_enabled(true);
    system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(21)});

    std::vector<JournalEvent> ev = events();
    ASSERT_EQ(ev.size(), 4u);
    EXPECT_EQ(ev[0].kind, Kind::RpcSend);
    EXPECT_EQ(ev[1].kind, Kind::RpcArrive);
    EXPECT_EQ(ev[2].kind, Kind::RpcDispatch);
    EXPECT_EQ(ev[3].kind, Kind::RpcReply);

    // Documented payloads: node/peer orientation, shared request id, byte
    // counts, and the class.method detail on the send.
    EXPECT_EQ(ev[0].node, 0);
    EXPECT_EQ(ev[0].peer, 1);
    EXPECT_EQ(ev[0].detail, "Service.work");
    EXPECT_GT(ev[0].b, 0u);  // request bytes
    EXPECT_EQ(ev[1].node, 1);
    EXPECT_EQ(ev[1].peer, 0);
    EXPECT_EQ(ev[1].b, ev[0].b);
    EXPECT_EQ(ev[2].node, 1);
    EXPECT_EQ(ev[2].detail, "work");
    EXPECT_EQ(ev[3].node, 0);
    EXPECT_EQ(ev[3].peer, 1);
    EXPECT_GT(ev[3].b, 0u);  // reply bytes
    for (const JournalEvent& e : ev) EXPECT_EQ(e.a, ev[0].a) << "request id";

    // Virtual-time causality: send <= arrive <= dispatch <= reply.
    EXPECT_LE(ev[0].t_us, ev[1].t_us);
    EXPECT_LE(ev[1].t_us, ev[2].t_us);
    EXPECT_LE(ev[2].t_us, ev[3].t_us);
}

TEST_F(JournalSystemFixture, LossRetryAndLinkFaultEdges) {
    Value svc = system->construct(0, "Service", "()V");
    RetryPolicy& rp = system->reliability();
    rp.attempts = 5;
    rp.backoff_base_us = 200;

    // A scheduled link-down window that eats exactly the first attempt's
    // request (fault edges track the deterministic plan, not random loss).
    const std::uint64_t t0 = system->node(0).clock_us();
    net::FaultWindow w;
    w.kind = net::FaultKind::LinkDown;
    w.src = 0;
    w.dst = 1;
    w.from_us = t0;
    w.until_us = t0 + 150;
    system->network().fault_plan().add(w);
    system->journal().set_enabled(true);

    system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});

    std::map<Kind, std::size_t> counts = kind_counts();
    EXPECT_EQ(counts[Kind::RpcSend], 2u);   // first attempt + retry
    EXPECT_EQ(counts[Kind::RpcDrop], 1u);
    EXPECT_EQ(counts[Kind::RpcRetry], 1u);
    EXPECT_EQ(counts[Kind::RpcArrive], 1u);
    EXPECT_EQ(counts[Kind::RpcReply], 1u);
    // The link was observed down once and back up once — edges, not levels.
    EXPECT_EQ(counts[Kind::FaultEdge], 2u);

    std::vector<std::uint64_t> fault_states;
    for (const JournalEvent& e : events())
        if (e.kind == Kind::FaultEdge) {
            EXPECT_EQ(e.node, 0);
            EXPECT_EQ(e.peer, 1);
            EXPECT_EQ(e.detail, "link");
            fault_states.push_back(e.a);
        }
    EXPECT_EQ(fault_states, (std::vector<std::uint64_t>{1, 0}));

    for (const JournalEvent& e : events()) {
        if (e.kind == Kind::RpcDrop) {
            EXPECT_EQ(e.detail, "request");
        }
        if (e.kind == Kind::RpcRetry) {
            EXPECT_EQ(e.b, 1u);  // attempt about to run
        }
    }
}

TEST_F(JournalSystemFixture, DedupHitLandsInTheTimeline) {
    RetryPolicy& rp = system->reliability();
    rp.attempts = 5;
    rp.backoff_base_us = 1000;
    rp.dedup = true;

    // First reply lost: the retry is answered from the reply cache.
    const std::uint64_t t0 = system->node(0).clock_us();
    drop_window(1, 0, t0, t0 + 400);
    system->journal().set_enabled(true);

    system->construct(0, "Service", "()V");

    std::map<Kind, std::size_t> counts = kind_counts();
    EXPECT_EQ(counts[Kind::DedupHit], 1u);
    EXPECT_EQ(counts[Kind::RpcRetry], 1u);
    bool saw_reply_drop = false;
    for (const JournalEvent& e : events()) {
        if (e.kind == Kind::RpcDrop) {
            EXPECT_EQ(e.detail, "reply");
            saw_reply_drop = true;
        }
        if (e.kind == Kind::DedupHit) {
            EXPECT_EQ(e.node, 1);  // the server absorbed the duplicate
            EXPECT_EQ(e.peer, -1);
        }
    }
    EXPECT_TRUE(saw_reply_drop);
}

TEST_F(JournalSystemFixture, BreakerTransitionsOpenHalfOpenClose) {
    RetryPolicy& rp = system->reliability();
    rp.breaker_threshold = 2;
    rp.breaker_cooldown_us = 5000;
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 1.0});
    system->journal().set_enabled(true);

    auto create = [&](std::uint64_t id) {
        net::CallRequest req;
        req.kind = net::RequestKind::Create;
        req.cls = "Service";
        req.request_id = id;
        req.src_node = 0;
        return system->rpc(0, 1, "RMI", req);
    };
    EXPECT_THROW(create(1), System::Dropped);
    EXPECT_THROW(create(2), System::Dropped);  // threshold: opens
    system->node(0).advance_clock(6000);       // cooldown elapses
    system->network().set_link(0, 1, net::LinkParams{100, 0.0, 0.0});
    EXPECT_FALSE(create(3).is_fault);  // half-open probe succeeds, closes

    // Transition sequence, with payload a = new state (1 open, 2 half-open,
    // 0 closed) on the breaker's destination node.
    std::vector<std::uint64_t> states;
    for (const JournalEvent& e : events())
        if (e.kind == Kind::Breaker) {
            EXPECT_EQ(e.node, 1);
            EXPECT_EQ(e.detail, "RMI");
            states.push_back(e.a);
        }
    EXPECT_EQ(states, (std::vector<std::uint64_t>{1, 2, 0}));
}

TEST_F(JournalSystemFixture, MigrationIsRecorded) {
    Value svc = system->construct(0, "Service", "()V");
    // Home policy put the instance on node 1; pull it back to node 0.
    system->journal().set_enabled(true);
    const vm::ObjId remote = system->resolve_terminal(0, svc.as_ref()).second;
    system->migrate_instance(1, remote, 0, "RMI");

    bool saw = false;
    for (const JournalEvent& e : events())
        if (e.kind == Kind::Migrate) {
            saw = true;
            EXPECT_EQ(e.node, 1);  // from
            EXPECT_EQ(e.peer, 0);  // to
            EXPECT_FALSE(e.detail.empty());
        }
    EXPECT_TRUE(saw);
}

TEST_F(JournalSystemFixture, ResetStatsRebasesJournalWithUtilizationEpoch) {
    Value svc = system->construct(0, "Service", "()V");
    system->journal().set_enabled(true);
    system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});
    ASSERT_GT(system->journal().size(), 0u);
    EXPECT_EQ(system->journal().epoch_us(), 0u);

    system->reset_stats();

    // Regression (satellite fix): the journal window and the utilization
    // epoch must move together, or timeline events and windowed rates
    // describe different intervals.
    EXPECT_EQ(system->journal().size(), 0u);
    EXPECT_EQ(system->journal().total_recorded(), 0u);
    EXPECT_GT(system->journal().epoch_us(), 0u);
    EXPECT_EQ(system->journal().epoch_us(), system->network().stats_epoch_us());
    EXPECT_TRUE(system->journal().enabled());  // reset rebases, never disarms

    // Post-reset events sit inside the new window.
    system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});
    for (const JournalEvent& e : events())
        EXPECT_GE(e.t_us, system->journal().epoch_us());
}

TEST_F(JournalSystemFixture, TrafficMatrixCountsBytesAndLatencyHistograms) {
    Value svc = system->construct(0, "Service", "()V");
    for (int k = 0; k < 5; ++k)
        system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});

    const auto& traffic = system->class_traffic();
    ASSERT_TRUE(traffic.count("Service"));
    const System::ClassTraffic& ct = traffic.at("Service");
    ASSERT_TRUE(ct.calls.count({0, 1}));
    EXPECT_EQ(ct.calls.at({0, 1}), 5u);
    ASSERT_TRUE(ct.bytes.count({0, 1}));
    EXPECT_GT(ct.bytes.at({0, 1}), 0u);
    EXPECT_EQ(ct.total_bytes(), ct.bytes.at({0, 1}));

    // The per-edge bytes mirror the registry counter they are built from,
    // and the wire actually carried at least that much on the 0->1 link
    // (the link also carried the Create, so >=).
    obs::Snapshot snap = system->metrics().snapshot();
    EXPECT_EQ(ct.bytes.at({0, 1}),
              snap.counter_value("rpc.class_bytes.Service.0.1"));

    // Per-method virtual-latency histogram: one sample per call, nonzero
    // round-trip.
    const obs::Histogram* lat =
        system->metrics().find_histogram("rpc.latency.Service.work");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count(), 5u);
    EXPECT_GT(lat->min(), 0u);
    EXPECT_LE(lat->quantile(0.5), lat->quantile(0.99));
}

/// Lossy two-client workload; returns (makespan, total wire bytes).
std::pair<std::uint64_t, std::uint64_t> run_lossy(bool journal_on) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);
    SystemOptions options;
    options.network_seed = 7;
    options.reliability.attempts = 8;
    options.reliability.backoff_base_us = 200;
    options.reliability.dedup = true;
    System system(pool, options);
    system.add_node();  // 0: server
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("Service", 0, "RMI");
    for (net::NodeId client : {net::NodeId{1}, net::NodeId{2}}) {
        for (net::NodeId dst : {net::NodeId{0}, client}) {
            net::FaultWindow w;
            w.kind = net::FaultKind::DropRate;
            w.src = dst == 0 ? client : net::NodeId{0};
            w.dst = dst == 0 ? net::NodeId{0} : client;
            w.from_us = 0;
            w.until_us = ~0ULL;
            w.drop_probability = 0.08;
            system.network().fault_plan().add(w);
        }
    }
    if (journal_on) system.journal().set_enabled(true);

    WorkloadDriver driver(system);
    for (net::NodeId client : {net::NodeId{1}, net::NodeId{2}}) {
        Value svc = system.construct(client, "Service", "()V");
        driver.add_client(client, 20, [svc](System& sys, net::NodeId node) {
            sys.node(node).interp().call_virtual(svc, "work", "(I)I",
                                                 {Value::of_int(1)});
        });
    }
    WorkloadDriver::Report report = driver.run();
    return {report.makespan_us, system.network().total_stats().bytes};
}

TEST(JournalPassivity, EnablingTheJournalChangesNoVirtualTimeResult) {
    // The E11 contract as a unit test: recording never reads clocks and
    // never draws randomness, so a seeded lossy run is bit-identical with
    // the journal on or off.
    EXPECT_EQ(run_lossy(false), run_lossy(true));
}

}  // namespace
}  // namespace rafda::runtime
