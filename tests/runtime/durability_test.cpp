// Durable nodes end to end (DESIGN.md §20).  The invariants under test:
//
//   - an in-place restart replays the WAL: the recovered node resumes
//     with its pre-crash heap *and* reply cache, so a duplicate request
//     dedup-hits instead of re-executing (exactly-once survives the
//     crash it used to die on — contrast CrashFailsFastAndRestart-
//     LosesReplyCache in reliable_rpc_test.cpp);
//   - inline caches warmed in one incarnation never validate in the
//     next: a hot call path across crash/restart stays correct;
//   - migration-by-recovery rebuilds a crashed node's objects on a
//     *different* live node with identical per-call results, is
//     idempotent per crash, and chains through the crashed node's own
//     eventual restart;
//   - the adaptation engine uses it as a defer-free path around crash
//     windows (Action::Recover), with exactly-once preserved;
//   - durable off is provably inert: no wal.* counters even exist.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (I)I {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    const 2
    mul
    returnvalue
  }
  method calls ()I {
    load 0
    getfield Service.calls I
    returnvalue
  }
}
class Counter {
  static field total I
  static method bump (I)I {
    getstatic Counter.total I
    load 0
    add
    dup
    putstatic Counter.total I
    returnvalue
  }
  static method total ()I {
    getstatic Counter.total I
    returnvalue
  }
}
)";

struct DurableFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;

    void SetUp() override { make_system(/*durable=*/true); }

    void make_system(bool durable) {
        original = model::ClassPool();
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        SystemOptions options;
        options.durability.enabled = durable;
        system = std::make_unique<System>(original, options);
        system->add_node();  // 0: client
        system->add_node();  // 1: server (crashes)
        system->add_node();  // 2: recovery target
        system->policy().set_instance_home("Service", 1, "RMI");
        system->policy().set_singleton_home("Counter", 1, "RMI");
    }

    std::uint64_t counter(const std::string& name) {
        return system->metrics().counter(name).value();
    }

    void crash_window(net::NodeId node, std::uint64_t from, std::uint64_t until) {
        net::FaultWindow w;
        w.kind = net::FaultKind::NodeCrash;
        w.node = node;
        w.from_us = from;
        w.until_us = until;
        system->network().fault_plan().add(w);
    }

    net::CallReply send_create(std::uint64_t request_id) {
        net::CallRequest req;
        req.kind = net::RequestKind::Create;
        req.cls = "Service";
        req.request_id = request_id;
        req.src_node = 0;
        return system->rpc(0, 1, "RMI", req);
    }
};

TEST_F(DurableFixture, RestartReplaysHeapAndReplyCache) {
    system->reliability().dedup = true;

    Value svc = system->construct(0, "Service", "()V");
    EXPECT_EQ(system->node(0)
                  .interp()
                  .call_virtual(svc, "work", "(I)I", {Value::of_int(21)})
                  .as_int(),
              42);
    send_create(900);
    send_create(900);  // cache answers
    EXPECT_EQ(counter("rpc.dedup_hits"), 1u);
    const std::size_t heap_before = system->node(1).interp().heap().size();

    // Crash and restart the server.  The first request to arrive after
    // the window replays the WAL before being handled.
    const std::uint64_t t0 = system->node(0).clock_us();
    crash_window(1, t0, t0 + 100);
    system->node(0).advance_clock(200);
    send_create(900);

    // Soft-state behaviour was: cache gone, re-execute, heap grows.
    // Durable behaviour: the recovered cache answers the duplicate.
    EXPECT_EQ(counter("rpc.dedup_hits"), 2u);
    EXPECT_EQ(system->node(1).interp().heap().size(), heap_before);
    EXPECT_EQ(system->node(1).wal()->stats().recoveries, 1u);
    EXPECT_GT(counter("wal.replayed_records"), 0u);
    EXPECT_EQ(counter("wal.recoveries"), 1u);

    // Instance state replayed too: the pre-crash work() call is still
    // counted, and the object remains live and callable.
    EXPECT_EQ(system->node(0).interp().call_virtual(svc, "calls", "()I").as_int(),
              1);
    EXPECT_EQ(system->node(0)
                  .interp()
                  .call_virtual(svc, "work", "(I)I", {Value::of_int(5)})
                  .as_int(),
              10);
}

TEST_F(DurableFixture, InlineCachesNeverLeakAcrossIncarnations) {
    // Satellite regression: PR 2's inline caches memoize dispatch/field
    // lookups per call site.  A restart rebuilds the interpreter's tables
    // at new addresses; a site warmed pre-crash must re-validate, not
    // reuse its stale pointers.  The incarnation counter folds into
    // cache_gen() so every pre-crash site misses once and re-warms.
    auto bump = [&](int by) {
        return system
            ->call_static(0, "Counter", "bump", "(I)I", {Value::of_int(by)})
            .as_int();
    };
    int total = 0;
    for (int k = 0; k < 8; ++k) total = bump(1);  // hot: sites warm on node 1
    EXPECT_EQ(total, 8);

    const std::uint64_t t0 = system->node(0).clock_us();
    crash_window(1, t0, t0 + 100);
    system->node(0).advance_clock(200);

    // Recovered static state + fresh caches: the count continues exactly.
    EXPECT_EQ(bump(1), 9);
    EXPECT_EQ(bump(1), 10);
    EXPECT_EQ(system->call_static(0, "Counter", "total", "()I").as_int(), 10);
    EXPECT_EQ(system->node(1).wal()->stats().recoveries, 1u);
}

TEST_F(DurableFixture, MigrationByRecoveryMatchesUncrashedResults) {
    // Baseline: the same call sequence against a server that never
    // crashes.
    std::vector<std::int32_t> baseline;
    {
        Value svc = system->construct(0, "Service", "()V");
        for (int k = 1; k <= 3; ++k)
            baseline.push_back(system->node(0)
                                   .interp()
                                   .call_virtual(svc, "work", "(I)I",
                                                 {Value::of_int(k)})
                                   .as_int());
        baseline.push_back(
            system->node(0).interp().call_virtual(svc, "calls", "()I").as_int());
    }

    make_system(/*durable=*/true);
    Value svc = system->construct(0, "Service", "()V");
    std::vector<std::int32_t> observed;
    for (int k = 1; k <= 2; ++k)
        observed.push_back(
            system->node(0)
                .interp()
                .call_virtual(svc, "work", "(I)I", {Value::of_int(k)})
                .as_int());

    // The server dies for good (as far as this run is concerned); its
    // image is rebuilt on node 2 from the WAL.
    crash_window(1, system->node(0).clock_us(), ~0ULL);
    const std::size_t restored = system->recover_node_onto(1, 2);
    EXPECT_GT(restored, 0u);
    ASSERT_NE(system->relocation_of(1), nullptr);
    EXPECT_EQ(system->relocation_of(1)->target, 2);
    EXPECT_EQ(counter("wal.relocated_objects"), restored);

    // Idempotent per crash: a second sweep re-materializes nothing.
    EXPECT_EQ(system->recover_node_onto(1, 2), 0u);

    // The client's proxy was repointed; the remaining calls land on node
    // 2 and continue the instance state exactly where the crash cut it.
    observed.push_back(system->node(0)
                           .interp()
                           .call_virtual(svc, "work", "(I)I", {Value::of_int(3)})
                           .as_int());
    observed.push_back(
        system->node(0).interp().call_virtual(svc, "calls", "()I").as_int());
    EXPECT_EQ(observed, baseline);
}

TEST_F(DurableFixture, RelocationChainsThroughTheCrashedNodesRestart) {
    system->reliability().dedup = true;
    Value svc = system->construct(0, "Service", "()V");
    system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});

    const std::uint64_t t0 = system->node(0).clock_us();
    crash_window(1, t0, t0 + 1'000);
    ASSERT_GT(system->recover_node_onto(1, 2), 0u);
    ASSERT_NE(system->relocation_of(1), nullptr);

    // When node 1 itself restarts, replaying its WAL applies the Relocate
    // records: its copies become proxies to node 2, it is a live
    // forwarder again, and the relocation bookkeeping clears.
    system->node(0).advance_clock(2'000);
    send_create(77);  // any arrival triggers the restart replay
    EXPECT_EQ(system->relocation_of(1), nullptr);
    EXPECT_EQ(system->node(1).wal()->stats().recoveries, 1u);

    // The object stays singular: calls through the original proxy reach
    // the one relocated instance, wherever the route enters.
    EXPECT_EQ(system->node(0).interp().call_virtual(svc, "calls", "()I").as_int(),
              1);
    EXPECT_EQ(system->node(0)
                  .interp()
                  .call_virtual(svc, "work", "(I)I", {Value::of_int(4)})
                  .as_int(),
              8);
    EXPECT_EQ(system->node(0).interp().call_virtual(svc, "calls", "()I").as_int(),
              2);
}

TEST_F(DurableFixture, DurableOffRegistersNothing) {
    make_system(/*durable=*/false);
    EXPECT_FALSE(system->durability_enabled());
    for (net::NodeId n = 0; n < 3; ++n)
        EXPECT_FALSE(system->node(n).durable());

    Value svc = system->construct(0, "Service", "()V");
    system->node(0).interp().call_virtual(svc, "work", "(I)I", {Value::of_int(1)});

    bool wal_counters = false;
    system->metrics().visit_counters([&](const std::string& name, std::uint64_t) {
        if (name.rfind("wal.", 0) == 0) wal_counters = true;
    });
    EXPECT_FALSE(wal_counters);
}

// ---- the adaptation engine rides migration-by-recovery ----------------

struct EngineOutcome {
    std::uint64_t faults = 0;
    std::uint64_t recovers = 0;
    std::uint64_t in_window_recovers = 0;
    std::int32_t executions = 0;
    net::NodeId home = -1;
    net::NodeId recover_to = -1;
};

EngineOutcome run_engine_workload(bool durable) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);

    SystemOptions options;
    options.network_seed = 11;
    options.default_link = net::LinkParams{20, 0.0, 0.0};
    options.reliability.attempts = 16;
    options.reliability.backoff_base_us = 200;
    options.reliability.backoff_multiplier = 2.0;
    options.reliability.backoff_cap_us = 2'000;
    options.reliability.dedup = true;
    options.durability.enabled = durable;

    System system(pool, options);
    system.add_node();  // 0: singleton home — crashes mid-run
    system.add_node();  // 1: the dominant Counter caller, Service home
    system.add_node();  // 2: Service caller — its live 2<->1 traffic keeps
                        //    virtual time moving through the crash window
    system.policy().set_singleton_home("Counter", 0, "RMI");
    system.policy().set_instance_home("Service", 1, "RMI");

    AdaptPolicy eager;
    eager.interval_us = 600;
    eager.migrate_threshold_bytes = 64;
    eager.min_window_calls = 4;
    system.enable_adaptation(eager);

    // Warm-up before the crash: the Service proxy exists on node 2 and
    // node 1 is the dominant (sole) Counter caller — the source the engine
    // will pick as the recovery target.  This runs outside the driver so
    // the crash window can be anchored to the *measured* virtual time
    // afterwards; setup RPC costs never skew the window placement.
    Value svc = system.construct(2, "Service", "()V");
    for (int k = 0; k < 8; ++k)
        system.call_static(1, "Counter", "bump", "(I)I", {vm::Value::of_int(1)});
    const std::uint64_t t_start = system.network().now_us();

    // The crash opens after the warm-up and closes before the Service
    // client's traffic runs out: no dispatched call ever straddles the
    // window, so the client's small steps (and the controller heartbeats
    // interleaved with them on the VirtualClock timeline) carry virtual
    // time *through* the window instead of one stalled retry loop
    // dragging it across in a single dispatch.  The first heartbeat fires
    // at t_start + interval, inside the window by construction.
    const std::uint64_t crash_from = t_start + 100;
    const std::uint64_t crash_until = t_start + 1'400;
    net::FaultWindow w;
    w.kind = net::FaultKind::NodeCrash;
    w.node = 0;
    w.from_us = crash_from;
    w.until_us = crash_until;
    system.network().fault_plan().add(w);

    WorkloadDriver driver(system);
    driver.set_fairness(WorkloadDriver::Fairness::VirtualClock);
    // Node 2: 40 Service calls span the whole window, then 12 more bumps
    // land after the in-window recovery has moved Counter off node 0 —
    // exactly-once across the relocation means all 20 bumps count once.
    std::vector<WorkloadDriver::Task> tasks;
    for (int i = 0; i < 40; ++i)
        tasks.push_back([svc](System& sys, net::NodeId node) {
            sys.node(node).interp().call_virtual(svc, "work", "(I)I",
                                                 {vm::Value::of_int(1)});
        });
    for (int i = 0; i < 12; ++i)
        tasks.push_back([](System& sys, net::NodeId node) {
            sys.call_static(node, "Counter", "bump", "(I)I",
                            {vm::Value::of_int(1)});
        });
    driver.add_client(2, tasks);
    WorkloadDriver::Report report = driver.run();

    EngineOutcome out;
    out.faults = report.faults;
    out.home = system.find_singleton("Counter").first;
    out.executions = system.call_static(1, "Counter", "total", "()I").as_int();
    for (const AdaptDecision& d : system.adaptation()->decisions()) {
        if (d.action != AdaptDecision::Action::Recover) continue;
        ++out.recovers;
        out.recover_to = d.to;
        if (d.t_us >= crash_from && d.t_us < crash_until)
            ++out.in_window_recovers;
    }
    return out;
}

TEST(DurableAdapt, EngineRecoversAroundTheCrashWindowExactlyOnce) {
    // Soft state never produces a Recover decision — there is no durable
    // image to rebuild from, so the crashed home's skew is handled by the
    // legacy paths alone.
    EngineOutcome soft = run_engine_workload(/*durable=*/false);
    EXPECT_EQ(soft.recovers, 0u);

    // Durable: a tick inside the crash window rebuilds the Counter
    // singleton on its dominant caller's node from the crashed home's WAL
    // — no defer, no waiting for the window to close — and the run
    // completes exactly-once: every bump counted, none double-counted.
    EngineOutcome durable = run_engine_workload(/*durable=*/true);
    EXPECT_GE(durable.recovers, 1u);
    EXPECT_GE(durable.in_window_recovers, 1u);
    EXPECT_EQ(durable.faults, 0u);
    // The recovery target is the dominant caller's node; the engine is
    // free to keep adapting afterwards, but the crashed node is never the
    // home again.
    EXPECT_EQ(durable.recover_to, 1);
    EXPECT_NE(durable.home, 0);
    EXPECT_EQ(durable.executions, 20);
}

}  // namespace
}  // namespace rafda::runtime
