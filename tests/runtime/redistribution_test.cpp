// E2 — the paper's Figure 1: "Objects of class A and class B hold
// references to a shared instance of class C.  The application is
// transformed so that the instance of C is remote to its reference holders.
// The local instance of C is replaced with a proxy, Cp, to the remote
// implementation, C'."
//
// These tests drive exactly that re-distribution at runtime and check that
// behaviour, state and sharing are preserved.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kFig1App = R"(
class C {
  field state I
  field label S
  ctor ()V {
    load 0
    const "shared"
    putfield C.label S
    return
  }
  method poke ()V {
    load 0
    load 0
    getfield C.state I
    const 1
    add
    putfield C.state I
    return
  }
  method read ()I {
    load 0
    getfield C.state I
    returnvalue
  }
  method describe ()S {
    load 0
    getfield C.label S
    const "="
    concat
    load 0
    getfield C.state I
    concat
    returnvalue
  }
}
class A {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield A.c LC;
    return
  }
  method act ()V {
    load 0
    getfield A.c LC;
    invokevirtual C.poke ()V
    return
  }
}
class B {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield B.c LC;
    return
  }
  method observe ()I {
    load 0
    getfield B.c LC;
    invokevirtual C.read ()I
    returnvalue
  }
}
class Registry {
  static field total I
  static method bump ()I {
    getstatic Registry.total I
    const 1
    add
    dup
    putstatic Registry.total I
    returnvalue
  }
}
)";

struct Fig1Fixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;
    Value c, a, b;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kFig1App);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        c = system->construct(0, "C", "()V");
        a = system->construct(0, "A", "(LC;)V", {c});
        b = system->construct(0, "B", "(LC;)V", {c});
    }

    vm::Interpreter& n0() { return system->node(0).interp(); }
    vm::Interpreter& n1() { return system->node(1).interp(); }
};

TEST_F(Fig1Fixture, MigrationSwapsLocalInstanceForProxy) {
    EXPECT_EQ(n0().class_of(c.as_ref()).name, "C_O_Local");
    vm::ObjId remote = system->migrate_instance(0, c.as_ref(), 1, "RMI");
    // The vacated slot is now the proxy Cp...
    EXPECT_EQ(n0().class_of(c.as_ref()).name, "C_O_Proxy_RMI");
    // ...and the remote implementation C' lives on node 1.
    EXPECT_EQ(n1().class_of(remote).name, "C_O_Local");
    EXPECT_EQ(system->migrations(), 1u);
}

TEST_F(Fig1Fixture, StatePreservedAcrossMigration) {
    n0().call_virtual(a, "act", "()V");
    n0().call_virtual(a, "act", "()V");
    ASSERT_EQ(n0().call_virtual(b, "observe", "()I").as_int(), 2);

    system->migrate_instance(0, c.as_ref(), 1);

    // Existing state came along; both holders still see the same object.
    EXPECT_EQ(n0().call_virtual(b, "observe", "()I").as_int(), 2);
    n0().call_virtual(a, "act", "()V");
    EXPECT_EQ(n0().call_virtual(b, "observe", "()I").as_int(), 3);
    // The calls after migration were remote.
    EXPECT_GT(system->remote_stats().at("RMI").calls, 0u);
    // String state (the label) also moved.
    EXPECT_EQ(n0().call_virtual(c, "describe", "()S").as_str(), "shared=3");
}

TEST_F(Fig1Fixture, ReferenceHoldersAreUntouchedByMigration) {
    // A and B still hold the *same* reference value after migration — the
    // substitution happened behind it (that is the point of Figure 1).
    Value a_c_before = n0().call_virtual(a, "get_c", "()LC_O_Int;");
    system->migrate_instance(0, c.as_ref(), 1);
    Value a_c_after = n0().call_virtual(a, "get_c", "()LC_O_Int;");
    EXPECT_EQ(a_c_before.as_ref(), a_c_after.as_ref());
    EXPECT_EQ(a_c_after.as_ref(), c.as_ref());
}

TEST_F(Fig1Fixture, MigrateBackRestoresLocalExecution) {
    n0().call_virtual(a, "act", "()V");
    vm::ObjId on1 = system->migrate_instance(0, c.as_ref(), 1);
    n0().call_virtual(a, "act", "()V");
    // Bring it home again: node 1's object moves back to node 0.
    system->migrate_instance(1, on1, 0);
    system->reset_stats();
    n0().call_virtual(a, "act", "()V");
    EXPECT_EQ(n0().call_virtual(b, "observe", "()I").as_int(), 3);
    // After returning, calls chain 0 -> (proxy) -> 1 -> (proxy) -> 0: the
    // original local slot still forwards.  State must be consistent even
    // though the path is indirect.
    EXPECT_EQ(system->migrations(), 0u);  // stats were reset
}

TEST_F(Fig1Fixture, ThirdPartyProxiesChainThroughOldHome) {
    // Node 2 imports a proxy to C while it lives on node 0; after C moves
    // to node 1, node 2's calls chain through node 0 transparently.
    system->add_node();
    Value b2 = system->construct(2, "B", "(LC;)V",
                                 {system->node(2).import_ref(0, c.as_ref(), "C_O_Int",
                                                             "RMI")});
    n0().call_virtual(a, "act", "()V");
    EXPECT_EQ(system->node(2).interp().call_virtual(b2, "observe", "()I").as_int(), 1);

    system->migrate_instance(0, c.as_ref(), 1);
    n0().call_virtual(a, "act", "()V");
    EXPECT_EQ(system->node(2).interp().call_virtual(b2, "observe", "()I").as_int(), 2);
}

TEST_F(Fig1Fixture, MigrationChargesTheNetwork) {
    std::uint64_t before = system->network().total_stats().bytes;
    system->migrate_instance(0, c.as_ref(), 1);
    EXPECT_GT(system->network().total_stats().bytes, before);
}

TEST_F(Fig1Fixture, MigrateSingletonMovesStaticState) {
    EXPECT_EQ(system->call_static(0, "Registry", "bump", "()I").as_int(), 1);
    EXPECT_EQ(system->call_static(1, "Registry", "bump", "()I").as_int(), 2);

    system->migrate_singleton("Registry", 1, "RMI");

    // Counter continues where it left off; new discover()s go to node 1.
    EXPECT_EQ(system->call_static(1, "Registry", "bump", "()I").as_int(), 3);
    EXPECT_EQ(system->call_static(0, "Registry", "bump", "()I").as_int(), 4);
    EXPECT_EQ(system->policy().singleton_placement("Registry", 0).node, 1);
}

TEST_F(Fig1Fixture, MigrateSingletonBeforeCreationJustMovesPolicy) {
    system->migrate_singleton("Registry", 1);
    EXPECT_EQ(system->migrations(), 0u);  // nothing existed to move
    EXPECT_EQ(system->call_static(0, "Registry", "bump", "()I").as_int(), 1);
}

TEST_F(Fig1Fixture, CannotMigrateAProxy) {
    system->migrate_instance(0, c.as_ref(), 1);
    // The slot on node 0 is now a proxy; migrating it is refused.
    EXPECT_THROW(system->migrate_instance(0, c.as_ref(), 1), RuntimeError);
}

TEST_F(Fig1Fixture, MigratedObjectWithBackReferences) {
    // Give C a reference back to A before migrating: the moved object's
    // field becomes a proxy back to node 0.
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, R"(
class Peer {
  field other LPeer;
  field tag S
  ctor (S)V {
    load 0
    load 1
    putfield Peer.tag S
    return
  }
  method link (LPeer;)V {
    load 0
    load 1
    putfield Peer.other LPeer;
    return
  }
  method chainTag ()S {
    load 0
    getfield Peer.other LPeer;
    const null
    cmpeq
    iffalse Walk
    load 0
    getfield Peer.tag S
    returnvalue
  Walk:
    load 0
    getfield Peer.tag S
    const ">"
    concat
    load 0
    getfield Peer.other LPeer;
    invokevirtual Peer.chainTag ()S
    concat
    returnvalue
  }
}
)");
    model::verify_pool(pool);
    System sys(pool);
    sys.add_node();
    sys.add_node();
    Value p = sys.construct(0, "Peer", "(S)V", {Value::of_str("p")});
    Value q = sys.construct(0, "Peer", "(S)V", {Value::of_str("q")});
    sys.node(0).interp().call_virtual(p, "link", "(LPeer_O_Int;)V", {q});
    sys.node(0).interp().call_virtual(q, "link", "(LPeer_O_Int;)V", {p});
    // p -> q -> p: chainTag from p recurses p>q>p>q... guard: it terminates
    // because chainTag only walks one hop past a cycle?  It does not — so
    // call on q after unlinking p.
    sys.node(0).interp().call_virtual(p, "link", "(LPeer_O_Int;)V", {Value::null()});
    ASSERT_EQ(sys.node(0).interp().call_virtual(q, "chainTag", "()S").as_str(), "q>p");

    sys.migrate_instance(0, q.as_ref(), 1);
    // q now lives on node 1 and holds a proxy back to p on node 0.
    EXPECT_EQ(sys.node(0).interp().call_virtual(q, "chainTag", "()S").as_str(), "q>p");
}

}  // namespace
}  // namespace rafda::runtime
