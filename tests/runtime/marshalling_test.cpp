// Node marshalling unit tests: export_value / import_value / import_ref.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using net::MarshalledValue;
using net::ValueTag;
using vm::Value;

constexpr const char* kApp = R"(
class Widget {
  field n I
  ctor ()V {
    return
  }
}
)";

struct MarshalFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
    }
};

TEST_F(MarshalFixture, PrimitivesRoundTrip) {
    Node& n0 = system->node(0);
    for (const Value& v :
         {Value::null(), Value::of_bool(true), Value::of_int(-3), Value::of_long(1LL << 40),
          Value::of_double(2.5), Value::of_str("hi <&> there")}) {
        MarshalledValue m = n0.export_value(v);
        EXPECT_EQ(n0.import_value(m, "RMI"), v);
    }
}

TEST_F(MarshalFixture, LocalImplExportsAsRemoteRef) {
    Node& n0 = system->node(0);
    Value w = system->construct(0, "Widget", "()V");
    MarshalledValue m = n0.export_value(w);
    EXPECT_EQ(m.tag, ValueTag::Ref);
    EXPECT_EQ(m.ref_node, 0);
    EXPECT_EQ(m.ref_oid, w.as_ref());
    EXPECT_EQ(m.ref_class, "Widget_O_Int");
}

TEST_F(MarshalFixture, ImportOnOwningNodeIsIdentity) {
    Node& n0 = system->node(0);
    Value w = system->construct(0, "Widget", "()V");
    Value back = n0.import_value(n0.export_value(w), "RMI");
    EXPECT_EQ(back.as_ref(), w.as_ref());
    EXPECT_EQ(n0.interp().class_of(back.as_ref()).name, "Widget_O_Local");
}

TEST_F(MarshalFixture, ImportElsewhereCreatesProxyOnce) {
    Node& n0 = system->node(0);
    Node& n1 = system->node(1);
    Value w = system->construct(0, "Widget", "()V");
    MarshalledValue m = n0.export_value(w);
    Value p1 = n1.import_value(m, "RMI");
    Value p2 = n1.import_value(m, "RMI");
    EXPECT_EQ(p1.as_ref(), p2.as_ref());  // deduplicated
    EXPECT_EQ(n1.interp().class_of(p1.as_ref()).name, "Widget_O_Proxy_RMI");
    // A different protocol gets its own proxy object.
    Value p3 = n1.import_value(m, "SOAP");
    EXPECT_NE(p3.as_ref(), p1.as_ref());
    EXPECT_EQ(n1.interp().class_of(p3.as_ref()).name, "Widget_O_Proxy_SOAP");
}

TEST_F(MarshalFixture, ProxyReExportsItsTarget) {
    Node& n0 = system->node(0);
    Node& n1 = system->node(1);
    Value w = system->construct(0, "Widget", "()V");
    Value proxy_on_1 = n1.import_value(n0.export_value(w), "RMI");
    // Exporting node 1's proxy yields the *original* location, not node 1.
    MarshalledValue m = n1.export_value(proxy_on_1);
    EXPECT_EQ(m.ref_node, 0);
    EXPECT_EQ(m.ref_oid, w.as_ref());
    EXPECT_EQ(m.ref_class, "Widget_O_Int");
}

TEST_F(MarshalFixture, ImportRefDeduplicatesPerKey) {
    // The dedup key is the full (node, oid, iface, protocol) tuple:
    // repeating any key gives the same proxy, varying any component of it
    // gives a fresh one.
    Node& n1 = system->node(1);
    Value a = n1.import_ref(0, 41, "Widget_O_Int", "RMI");
    Value a_again = n1.import_ref(0, 41, "Widget_O_Int", "RMI");
    EXPECT_EQ(a.as_ref(), a_again.as_ref());

    Value other_oid = n1.import_ref(0, 42, "Widget_O_Int", "RMI");
    EXPECT_NE(other_oid.as_ref(), a.as_ref());

    Value other_node = n1.import_ref(2, 41, "Widget_O_Int", "RMI");
    EXPECT_NE(other_node.as_ref(), a.as_ref());

    Value other_protocol = n1.import_ref(0, 41, "Widget_O_Int", "SOAP");
    EXPECT_NE(other_protocol.as_ref(), a.as_ref());
    EXPECT_EQ(n1.interp().class_of(other_protocol.as_ref()).name,
              "Widget_O_Proxy_SOAP");
}

TEST_F(MarshalFixture, TransitiveReferenceKeepsTheOriginalTarget) {
    // widget lives on node 0; node 1 holds a proxy; handing that proxy to
    // node 2 must produce a proxy at node 2 that targets node 0 directly —
    // and it dedups against a reference node 2 received straight from the
    // owner, so reference identity survives any forwarding path.
    system->add_node();
    Node& n0 = system->node(0);
    Node& n1 = system->node(1);
    Node& n2 = system->node(2);
    Value w = system->construct(0, "Widget", "()V");

    Value proxy_on_1 = n1.import_value(n0.export_value(w), "RMI");
    Value via_1 = n2.import_value(n1.export_value(proxy_on_1), "RMI");
    Value direct = n2.import_value(n0.export_value(w), "RMI");
    EXPECT_EQ(via_1.as_ref(), direct.as_ref());

    // And the forwarded proxy still names the owner when node 2 exports it.
    MarshalledValue m = n2.export_value(via_1);
    EXPECT_EQ(m.ref_node, 0);
    EXPECT_EQ(m.ref_oid, w.as_ref());
}

TEST_F(MarshalFixture, NonSubstitutableObjectRefuses) {
    Node& n0 = system->node(0);
    Value t = n0.interp().construct("Throwable", "(S)V", {Value::of_str("x")});
    EXPECT_THROW(n0.export_value(t), RuntimeError);
}

TEST_F(MarshalFixture, SingletonExportsCFamilyInterface) {
    // Force singleton creation on node 0, then export it.
    Value me = system->node(0).local_singleton("Widget");
    MarshalledValue m = system->node(0).export_value(me);
    EXPECT_EQ(m.ref_class, "Widget_C_Int");
    Value p = system->node(1).import_value(m, "SOAP");
    EXPECT_EQ(system->node(1).interp().class_of(p.as_ref()).name, "Widget_C_Proxy_SOAP");
}

}  // namespace
}  // namespace rafda::runtime
