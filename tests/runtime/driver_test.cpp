// WorkloadDriver + event-sequenced virtual time: concurrent clients
// overlap, contention queues where it must, single-client runs reduce to
// the old sequential clock, and everything is deterministic from the seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/driver.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Service {
  field calls I
  ctor ()V {
    return
  }
  method work (J)J {
    load 0
    load 0
    getfield Service.calls I
    const 1
    add
    putfield Service.calls I
    load 1
    returnvalue
  }
  method boom ()V {
    new Throwable
    dup
    const "synthetic"
    invokespecial Throwable.<init> (S)V
    throw
  }
}
)";

model::ClassPool make_pool() {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);
    return pool;
}

/// One server (node 0), `clients` client nodes, each queueing `calls`
/// remote work() invocations; returns the driver report.
WorkloadDriver::Report drive(System& system, int clients, int calls) {
    system.add_node();  // server
    for (int k = 0; k < clients; ++k) system.add_node();
    system.policy().set_instance_home("Service", 0, "RMI");
    WorkloadDriver driver(system);
    for (int k = 1; k <= clients; ++k) {
        const auto client = static_cast<net::NodeId>(k);
        Value svc = system.construct(client, "Service", "()V");
        driver.add_client(client, static_cast<std::size_t>(calls),
                          [svc](System& sys, net::NodeId node) {
                              sys.node(node).interp().call_virtual(
                                  svc, "work", "(J)J", {Value::of_long(7)});
                          });
    }
    return driver.run();
}

TEST(WorkloadDriver, ConcurrentMakespanBeatsSerialisedClients) {
    model::ClassPool pool = make_pool();

    System single(pool);
    WorkloadDriver::Report one = drive(single, 1, 16);
    ASSERT_EQ(one.tasks_run, 16u);
    ASSERT_GT(one.makespan_us, 0u);

    System contended(pool);
    WorkloadDriver::Report eight = drive(contended, 8, 16);
    EXPECT_EQ(eight.tasks_run, 8u * 16u);

    // The whole point of per-node clocks: eight clients against one server
    // overlap everywhere except the server's own work, so the aggregate
    // makespan beats eight sequential clients by a wide margin.
    EXPECT_LT(eight.makespan_us, 8 * one.makespan_us);

    // The contention is real, not free: more clients cannot be faster than
    // one client's own chain of latencies.
    EXPECT_GE(eight.makespan_us, one.makespan_us);
}

TEST(WorkloadDriver, LinkOccupancyAndClockGaugesAreExported) {
    model::ClassPool pool = make_pool();
    System system(pool);
    drive(system, 4, 8);

    obs::Snapshot snap = system.metrics().snapshot();
    for (int client = 1; client <= 4; ++client) {
        const std::string prefix = "net.link." + std::to_string(client) + ".0.";
        EXPECT_GT(snap.counter_value(prefix + "busy_us"), 0u) << prefix;
        const obs::Sample* util = snap.find(prefix + "utilization_ppm");
        ASSERT_NE(util, nullptr) << prefix;
        EXPECT_GT(util->gauge, 0) << prefix;
    }
    // Per-node clock gauges mirror each node's virtual clock.
    for (net::NodeId n = 0; n < 5; ++n) {
        const obs::Sample* clock =
            snap.find("runtime.node" + std::to_string(n) + ".clock_us");
        ASSERT_NE(clock, nullptr) << n;
        EXPECT_EQ(clock->gauge,
                  static_cast<std::int64_t>(system.node(n).clock_us()));
        EXPECT_GT(clock->gauge, 0) << n;
    }
}

TEST(WorkloadDriver, DeterministicFromTheSeed) {
    model::ClassPool pool = make_pool();
    auto once = [&pool] {
        System system(pool);
        WorkloadDriver::Report r = drive(system, 8, 16);
        return std::tuple{r.makespan_us, r.start_us, r.end_us,
                          system.network().total_stats().busy_us,
                          system.network().total_stats().bytes};
    };
    EXPECT_EQ(once(), once());
}

TEST(WorkloadDriver, SingleClientReducesToSequentialExecution) {
    // Running the same 16 calls through the driver or as a plain loop must
    // land every clock on the same microsecond: with one request in flight
    // the event-sequenced model collapses to the old global clock.
    model::ClassPool pool = make_pool();

    System driven(pool);
    drive(driven, 1, 16);

    System plain(pool);
    plain.add_node();
    plain.add_node();
    plain.policy().set_instance_home("Service", 0, "RMI");
    Value svc = plain.construct(1, "Service", "()V");
    for (int k = 0; k < 16; ++k)
        plain.node(1).interp().call_virtual(svc, "work", "(J)J", {Value::of_long(7)});

    EXPECT_EQ(driven.network().now_us(), plain.network().now_us());
    EXPECT_EQ(driven.node(0).clock_us(), plain.node(0).clock_us());
    EXPECT_EQ(driven.node(1).clock_us(), plain.node(1).clock_us());
    EXPECT_EQ(driven.network().total_stats().bytes,
              plain.network().total_stats().bytes);
}

TEST(WorkloadDriver, ServerClockSerialisesContendedDispatch) {
    // The server must be busy for at least the sum of all per-request
    // server-side codec work — that is the serial bottleneck the model
    // preserves under contention.
    model::ClassPool pool = make_pool();
    System system(pool);
    WorkloadDriver::Report report = drive(system, 8, 8);
    EXPECT_GT(system.node(0).clock_us(), 0u);
    EXPECT_LE(system.node(0).clock_us(), report.end_us);
}

TEST(WorkloadDriver, GuestFaultsAreCountedNotFatal) {
    model::ClassPool pool = make_pool();
    System system(pool);
    system.add_node();
    system.add_node();

    Value svc = system.construct(1, "Service", "()V");
    WorkloadDriver driver(system);
    int attempted = 0;
    driver.add_client(1, 5, [&attempted, svc](System& sys, net::NodeId node) {
        ++attempted;
        sys.node(node).interp().call_virtual(svc, "boom", "()V", {});
    });
    WorkloadDriver::Report report = driver.run();
    EXPECT_EQ(attempted, 5);
    EXPECT_EQ(report.tasks_run, 5u);
    EXPECT_EQ(report.faults, 5u);
}

TEST(WorkloadDriver, ContendedLinkQueuesTransfers) {
    // Two clients sharing one *directed* link toward the server: force
    // both through the same source node id is impossible (each node owns
    // its link), so instead check the inbound links' busy windows overlap
    // the makespan — occupancy accounted, nothing double-booked.
    model::ClassPool pool = make_pool();
    System system(pool);
    WorkloadDriver::Report report = drive(system, 2, 8);
    const net::SimNetwork& net = system.network();
    EXPECT_GT(net.stats(1, 0).busy_us, 0u);
    EXPECT_GT(net.stats(2, 0).busy_us, 0u);
    EXPECT_LE(net.stats(1, 0).busy_us, report.makespan_us + report.start_us);
    EXPECT_LE(net.link_busy_until(1, 0), report.end_us);
}

TEST(WorkloadDriver, ReportsLatencyQuantiles) {
    model::ClassPool pool = make_pool();
    System system(pool);
    WorkloadDriver::Report report = drive(system, 4, 16);
    // One latency sample per task, so the quantiles are populated, ordered
    // and bounded by the whole run.
    EXPECT_GT(report.latency_p50_us, 0u);
    EXPECT_LE(report.latency_p50_us, report.latency_p95_us);
    EXPECT_LE(report.latency_p95_us, report.latency_p99_us);
    EXPECT_LE(report.latency_p99_us, report.makespan_us);
}

TEST(WorkloadDriver, WindowsPartitionTheRun) {
    model::ClassPool pool = make_pool();
    System system(pool);
    system.add_node();
    for (int k = 1; k <= 4; ++k) system.add_node();
    system.policy().set_instance_home("Service", 0, "RMI");
    WorkloadDriver driver(system);
    for (int k = 1; k <= 4; ++k) {
        const auto client = static_cast<net::NodeId>(k);
        Value svc = system.construct(client, "Service", "()V");
        driver.add_client(client, 16, [svc](System& sys, net::NodeId node) {
            sys.node(node).interp().call_virtual(svc, "work", "(J)J",
                                                 {Value::of_long(7)});
        });
    }
    const std::uint64_t kWindow = 2000;
    driver.set_window_us(kWindow);
    WorkloadDriver::Report report = driver.run();

    ASSERT_GT(report.windows.size(), 1u);
    std::size_t tasks = 0;
    std::uint64_t calls = 0;
    for (std::size_t i = 0; i < report.windows.size(); ++i) {
        const WorkloadDriver::Window& w = report.windows[i];
        EXPECT_LT(w.start_us, w.end_us);
        // Contiguous, and every boundary except the trailing partial one
        // is an exact multiple of the window size past the run start.
        if (i) {
            EXPECT_EQ(w.start_us, report.windows[i - 1].end_us);
        }
        if (i + 1 < report.windows.size()) {
            EXPECT_EQ((w.end_us - report.windows[0].start_us) % kWindow, 0u);
        }
        tasks += w.tasks;
        calls += w.rpc_calls;
    }
    // The windows tile the whole run: totals reconcile with the report.
    // (The series is anchored on the network watermark, which sits inside
    // [start_us, end_us] — client clocks run past it while decoding.)
    EXPECT_EQ(tasks, report.tasks_run);
    EXPECT_GE(calls, report.tasks_run);  // every task made >= 1 RPC
    EXPECT_GE(report.windows.front().start_us, report.start_us);
    EXPECT_LE(report.windows.back().end_us, report.end_us);
}

TEST(WorkloadDriver, WindowSeriesIsDeterministic) {
    model::ClassPool pool = make_pool();
    auto series = [&pool] {
        System system(pool);
        system.add_node();
        system.add_node();
        system.policy().set_instance_home("Service", 0, "RMI");
        Value svc = system.construct(1, "Service", "()V");
        WorkloadDriver driver(system);
        driver.add_client(1, 12, [svc](System& sys, net::NodeId node) {
            sys.node(node).interp().call_virtual(svc, "work", "(J)J",
                                                 {Value::of_long(7)});
        });
        driver.set_window_us(1500);
        WorkloadDriver::Report r = driver.run();
        std::vector<std::tuple<std::uint64_t, std::uint64_t, std::size_t,
                               std::uint64_t, std::uint64_t>>
            out;
        for (const WorkloadDriver::Window& w : r.windows)
            out.emplace_back(w.start_us, w.end_us, w.tasks, w.rpc_calls,
                             w.wire_bytes);
        return out;
    };
    EXPECT_EQ(series(), series());
}

TEST(WorkloadDriver, FleetClientsAggregateIntoTotals) {
    model::ClassPool pool = make_pool();
    System system(pool);
    system.add_node();  // server
    std::vector<net::NodeId> client_nodes;
    for (int k = 1; k <= 3; ++k) {
        system.add_node();
        client_nodes.push_back(static_cast<net::NodeId>(k));
    }
    system.policy().set_instance_home("Service", 0, "RMI");
    std::vector<Value> services(4);
    for (net::NodeId n : client_nodes)
        services[static_cast<std::size_t>(n)] = system.construct(n, "Service", "()V");

    WorkloadDriver driver(system);
    driver.set_fairness(WorkloadDriver::Fairness::VirtualClock);
    driver.add_fleet(client_nodes, /*clients=*/10, /*tasks_each=*/4,
                     [&services](System& sys, net::NodeId node) {
                         sys.node(node).interp().call_virtual(
                             services[static_cast<std::size_t>(node)], "work",
                             "(J)J", {Value::of_long(1)});
                     });
    WorkloadDriver::Report report = driver.run();

    // Fleet clients have no per-client report — their whole state was the
    // pending event — but every task they ran lands in the totals.
    EXPECT_EQ(report.fleet_clients, 10u);
    EXPECT_EQ(report.tasks_run, 40u);
    EXPECT_TRUE(report.clients.empty());
    // VirtualClock dispatches one step event per task plus the network's
    // transfer-completion events (request + reply per RPC).
    EXPECT_GE(report.events_dispatched, 40u);
    EXPECT_GT(report.peak_pending_events, 0u);
    // Pending state is one step event per live client plus in-flight
    // arrivals — nowhere near tasks × clients.
    EXPECT_LE(report.peak_pending_events, 30u);
    EXPECT_NE(report.event_order_digest, 0u);
    EXPECT_GT(report.latency_p50_us, 0u);
}

TEST(WorkloadDriver, EventOrderDigestIsReproducible) {
    // Same seed, same workload ⇒ the popped event stream folds to the same
    // digest in both fairness modes — the one-word determinism witness the
    // scale bench gates on.  (Runs under any RAFDA_TRANSFORM_THREADS or
    // ctest -j: host parallelism only affects the transform pipeline,
    // never the virtual-time schedule.)
    model::ClassPool pool = make_pool();
    auto once = [&pool](WorkloadDriver::Fairness fairness) {
        System system(pool);
        system.add_node();
        std::vector<net::NodeId> client_nodes;
        for (int k = 1; k <= 4; ++k) {
            system.add_node();
            client_nodes.push_back(static_cast<net::NodeId>(k));
        }
        system.policy().set_instance_home("Service", 0, "RMI");
        std::vector<Value> services(5);
        for (net::NodeId n : client_nodes)
            services[static_cast<std::size_t>(n)] =
                system.construct(n, "Service", "()V");
        WorkloadDriver driver(system);
        driver.set_fairness(fairness);
        driver.add_fleet(client_nodes, 12, 3,
                         [&services](System& sys, net::NodeId node) {
                             sys.node(node).interp().call_virtual(
                                 services[static_cast<std::size_t>(node)], "work",
                                 "(J)J", {Value::of_long(1)});
                         });
        WorkloadDriver::Report r = driver.run();
        return std::tuple{r.event_order_digest, r.makespan_us, r.tasks_run,
                          system.network().total_stats().bytes};
    };
    EXPECT_EQ(once(WorkloadDriver::Fairness::RoundRobin),
              once(WorkloadDriver::Fairness::RoundRobin));
    EXPECT_EQ(once(WorkloadDriver::Fairness::VirtualClock),
              once(WorkloadDriver::Fairness::VirtualClock));
}

TEST(WorkloadDriver, FairnessModesAgreeOnOutcomesNotOrder) {
    // Both modes run the same tasks to completion; only the interleaving
    // (and therefore the latency shape) may differ.
    model::ClassPool pool = make_pool();
    auto totals = [&pool](WorkloadDriver::Fairness fairness) {
        System system(pool);
        WorkloadDriver::Report r;
        system.add_node();
        for (int k = 1; k <= 4; ++k) system.add_node();
        system.policy().set_instance_home("Service", 0, "RMI");
        WorkloadDriver driver(system);
        driver.set_fairness(fairness);
        for (int k = 1; k <= 4; ++k) {
            const auto client = static_cast<net::NodeId>(k);
            Value svc = system.construct(client, "Service", "()V");
            driver.add_client(client, 8, [svc](System& sys, net::NodeId node) {
                sys.node(node).interp().call_virtual(svc, "work", "(J)J",
                                                     {Value::of_long(7)});
            });
        }
        r = driver.run();
        return std::pair{r.tasks_run, r.faults};
    };
    EXPECT_EQ(totals(WorkloadDriver::Fairness::RoundRobin),
              totals(WorkloadDriver::Fairness::VirtualClock));
}

TEST(WorkloadDriver, MatrixCapOverflowPreservesTotals) {
    // With a tiny class_matrix_cap the per-(class,src,dst) counters stop
    // materializing past the cap, but nothing is lost: the overflow
    // aggregates absorb the excess, so capped and uncapped runs agree on
    // the grand totals (and on the wire — the cap is accounting only).
    model::ClassPool pool = make_pool();
    auto run = [&pool](std::size_t cap) {
        SystemOptions options;
        options.class_matrix_cap = cap;
        auto system = std::make_unique<System>(pool, options);
        WorkloadDriver::Report r = drive(*system, 6, 4);
        std::uint64_t named_calls = 0;
        for (const auto& [_, t] : system->class_traffic())
            named_calls += t.total();
        const std::uint64_t overflow_calls =
            system->metrics().counter("rpc.class_calls.overflow").value();
        const std::uint64_t redirected =
            system->metrics().counter("rpc.class_matrix.overflow_entries").value();
        return std::tuple{named_calls + overflow_calls, overflow_calls, redirected,
                          system->network().total_stats().bytes, r.tasks_run};
    };
    const auto capped = run(2);
    const auto uncapped = run(1024);
    EXPECT_EQ(std::get<0>(capped), std::get<0>(uncapped));  // calls conserved
    EXPECT_GT(std::get<1>(capped), 0u);   // the cap actually bit
    EXPECT_GT(std::get<2>(capped), 0u);   // ...and counted its redirections
    EXPECT_EQ(std::get<1>(uncapped), 0u);
    EXPECT_EQ(std::get<3>(capped), std::get<3>(uncapped));  // same wire bytes
    EXPECT_EQ(std::get<4>(capped), std::get<4>(uncapped));
}

TEST(WorkloadDriver, RerunCarriesClocksForward) {
    model::ClassPool pool = make_pool();
    System system(pool);
    WorkloadDriver::Report first = drive(system, 2, 4);

    WorkloadDriver driver(system);
    driver.add_client(1, 2, [](System& sys, net::NodeId node) {
        // Top-level discover-style traffic: reuse the existing proxy by
        // constructing another instance on the server.
        sys.construct(node, "Service", "()V");
    });
    WorkloadDriver::Report second = driver.run();
    EXPECT_GE(second.start_us, first.start_us);
    EXPECT_GT(second.end_us, first.end_us);
    EXPECT_EQ(second.tasks_run, 2u);
}

}  // namespace
}  // namespace rafda::runtime
