// End-to-end observability: one logical RPC shows up as the documented
// span tree, forwarding chains nest under the dispatch that caused them,
// and the registry is the single source the stats views and the advisor
// read from.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/advisor.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using obs::Span;
using vm::Value;

constexpr const char* kApp = R"(
class C {
  field state I
  ctor ()V {
    return
  }
  method poke ()I {
    load 0
    load 0
    getfield C.state I
    const 1
    add
    putfield C.state I
    load 0
    getfield C.state I
    returnvalue
  }
}
)";

struct ObservabilityFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        system->add_node();
    }

    /// The unique span matching `name` (and `node` unless -2); registers a
    /// test failure and returns an empty span when missing, so callers can
    /// keep dereferencing.
    const Span* span(const std::string& name, std::int32_t node = -2) const {
        static const Span missing{};
        const Span* found = nullptr;
        for (const Span& s : system->tracer().spans())
            if (s.name == name && (node == -2 || s.node == node)) {
                EXPECT_EQ(found, nullptr) << "duplicate span " << name;
                found = &s;
            }
        if (!found) {
            ADD_FAILURE() << "missing span " << name << " (node " << node << ")\n"
                          << system->tracer().render_tree();
            return &missing;
        }
        return found;
    }

    bool is_ancestor(const Span* ancestor, const Span* descendant) const {
        std::map<std::uint64_t, const Span*> by_id;
        for (const Span& s : system->tracer().spans()) by_id[s.id] = &s;
        for (std::uint64_t p = descendant->parent; p != 0;) {
            auto it = by_id.find(p);
            if (it == by_id.end()) return false;
            if (it->second == ancestor) return true;
            p = it->second->parent;
        }
        return false;
    }
};

TEST_F(ObservabilityFixture, RemoteCallProducesDocumentedSpanTree) {
    system->policy().set_instance_home("C", 1, "RMI");
    Value c = system->construct(0, "C", "()V");
    system->tracer().set_enabled(true);

    EXPECT_EQ(system->node(0).interp().call_virtual(c, "poke", "()I").as_int(), 1);
    ASSERT_EQ(system->tracer().spans().size(), 9u);
    EXPECT_EQ(system->tracer().current_span(), 0u);  // everything closed

    const Span* invoke = span("rpc.invoke C.poke", 0);
    const Span* encode_req = span("codec.encode_request RMI", 0);
    const Span* xfer_out = span("net.transfer 0->1", 0);
    const Span* decode_req = span("codec.decode_request RMI", 1);
    const Span* dispatch = span("rpc.dispatch poke", 1);
    const Span* execute = span("vm.execute poke", 1);
    const Span* encode_rep = span("codec.encode_reply RMI", 1);
    const Span* xfer_back = span("net.transfer 1->0", 1);
    const Span* decode_rep = span("codec.decode_reply RMI", 0);

    // One trace; everything hangs off the client-side invoke.  The
    // dispatch parent travelled in the wire header (decoded, not stack).
    for (const Span* s : {encode_req, xfer_out, decode_req, dispatch, encode_rep,
                          xfer_back, decode_rep}) {
        EXPECT_EQ(s->parent, invoke->id) << s->name;
        EXPECT_EQ(s->trace, invoke->trace) << s->name;
    }
    EXPECT_EQ(invoke->parent, 0u);
    EXPECT_EQ(execute->parent, dispatch->id);
    EXPECT_EQ(execute->trace, invoke->trace);

    // The transfers carry byte counts and advance virtual time.
    ASSERT_FALSE(xfer_out->notes.empty());
    EXPECT_EQ(xfer_out->notes[0].first, "bytes");
    EXPECT_GT(xfer_out->duration_us(), 0u);
    EXPECT_GE(invoke->duration_us(),
              xfer_out->duration_us() + xfer_back->duration_us());
}

TEST_F(ObservabilityFixture, ForwardingChainNestsUnderRemoteDispatch) {
    Value c = system->construct(0, "C", "()V");
    vm::ObjId on1 = system->migrate_instance(0, c.as_ref(), 1, "RMI");
    system->migrate_instance(1, on1, 2, "RMI");  // chain: 0 -> 1 -> 2
    system->tracer().set_enabled(true);

    EXPECT_EQ(system->node(0).interp().call_virtual(c, "poke", "()I").as_int(), 1);

    // The hop through node 1 re-enters the proxy dispatcher inside the
    // server-side vm.execute, so a second invoke nests under the first
    // dispatch — the chain is visible exactly as the wire saw it.
    const Span* invoke0 = span("rpc.invoke C.poke", 0);
    const Span* dispatch1 = span("rpc.dispatch poke", 1);
    const Span* execute1 = span("vm.execute poke", 1);
    const Span* invoke1 = span("rpc.invoke C.poke", 1);
    const Span* dispatch2 = span("rpc.dispatch poke", 2);
    const Span* execute2 = span("vm.execute poke", 2);

    EXPECT_EQ(dispatch1->parent, invoke0->id);
    EXPECT_EQ(execute1->parent, dispatch1->id);
    EXPECT_EQ(invoke1->parent, execute1->id);
    EXPECT_EQ(dispatch2->parent, invoke1->id);
    EXPECT_EQ(execute2->parent, dispatch2->id);
    for (const Span* s : {dispatch1, execute1, invoke1, dispatch2, execute2})
        EXPECT_EQ(s->trace, invoke0->trace) << s->name;
    EXPECT_TRUE(is_ancestor(invoke0, execute2));
}

TEST_F(ObservabilityFixture, MigrationEmitsSpanAndCounters) {
    Value c = system->construct(0, "C", "()V");
    system->tracer().set_enabled(true);

    system->migrate_instance(0, c.as_ref(), 1, "RMI");

    // The span names the concrete heap class being transmuted, which is
    // the transformed local implementation.
    const Span* migrate = span("runtime.migrate C_O_Local", 0);
    std::map<std::string, std::string> notes(migrate->notes.begin(),
                                             migrate->notes.end());
    EXPECT_EQ(notes["from"], "0");
    EXPECT_EQ(notes["to"], "1");

    EXPECT_EQ(system->migrations(), 1u);
    obs::Snapshot snap = system->metrics().snapshot();
    EXPECT_EQ(snap.counter_value("runtime.migrations"), 1u);
    EXPECT_GT(snap.counter_value("runtime.migration_bytes"), 0u);
}

TEST_F(ObservabilityFixture, ChainShorteningCounters) {
    Value c = system->construct(0, "C", "()V");
    vm::ObjId on1 = system->migrate_instance(0, c.as_ref(), 1, "RMI");
    system->migrate_instance(1, on1, 2, "RMI");

    EXPECT_EQ(system->shorten_chain(0, c.as_ref()), 1);
    obs::Snapshot snap = system->metrics().snapshot();
    EXPECT_EQ(snap.counter_value("runtime.chain_shortenings"), 1u);
    EXPECT_EQ(snap.counter_value("runtime.chain_hops_removed"), 1u);
}

TEST_F(ObservabilityFixture, StatsViewsAreRegistryBacked) {
    system->policy().set_instance_home("C", 1, "RMI");
    Value c = system->construct(0, "C", "()V");
    for (int k = 0; k < 5; ++k) system->node(0).interp().call_virtual(c, "poke", "()I");

    obs::Snapshot snap = system->metrics().snapshot();
    const RemoteStats& rmi = system->remote_stats().at("RMI");
    EXPECT_EQ(rmi.calls, 5u);
    EXPECT_EQ(rmi.calls, snap.counter_value("rpc.proto.RMI.calls"));
    EXPECT_EQ(rmi.creates, snap.counter_value("rpc.proto.RMI.creates"));
    EXPECT_EQ(rmi.request_bytes, snap.counter_value("rpc.proto.RMI.request_bytes"));
    EXPECT_GT(rmi.request_bytes, 0u);

    EXPECT_EQ(snap.counter_value("rpc.class_calls.C.0.1"), 5u);
    const auto& traffic = system->class_traffic();
    ASSERT_TRUE(traffic.count("C"));
    EXPECT_EQ(traffic.at("C").calls.at({0, 1}), 5u);
    EXPECT_EQ(traffic.at("C").total(), 5u);

    // reset_stats() zeroes the registry, and the views follow.
    system->reset_stats();
    EXPECT_TRUE(system->class_traffic().empty());
    EXPECT_TRUE(system->remote_stats().empty());
    EXPECT_EQ(system->metrics().snapshot().counter_value("rpc.proto.RMI.calls"), 0u);
}

TEST_F(ObservabilityFixture, DispatchHandlesSurviveResetAndRegistryGrowth) {
    // The proxy dispatch closures cache raw Counter*/Histogram* handles on
    // first use.  reset_stats() zeroes metrics in place and registry
    // growth must not relocate them, so the cached handles have to keep
    // accumulating — a dangling or stale handle here would silently lose
    // (or double-count) class traffic after any mid-run stats reset.
    system->policy().set_instance_home("C", 1, "RMI");
    Value c = system->construct(0, "C", "()V");
    for (int k = 0; k < 3; ++k) system->node(0).interp().call_virtual(c, "poke", "()I");
    obs::Snapshot before = system->metrics().snapshot();
    ASSERT_EQ(before.counter_value("rpc.class_calls.C.0.1"), 3u);
    const obs::Sample* lat = before.find("rpc.latency.C.poke");
    ASSERT_NE(lat, nullptr);
    ASSERT_EQ(lat->count, 3u);

    system->reset_stats();
    // Grow the registry past the reset so the node-based maps rebalance
    // around the cached entries.
    for (int k = 0; k < 64; ++k)
        system->metrics().counter("test.growth." + std::to_string(k)).add();

    for (int k = 0; k < 2; ++k) system->node(0).interp().call_virtual(c, "poke", "()I");
    obs::Snapshot snap = system->metrics().snapshot();
    EXPECT_EQ(snap.counter_value("rpc.class_calls.C.0.1"), 2u);
    EXPECT_GT(snap.counter_value("rpc.class_bytes.C.0.1"), 0u);
    lat = snap.find("rpc.latency.C.poke");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 2u);  // histogram resumed from zero, not stale
    EXPECT_GT(lat->sum, 0u);
    // And the derived views read the same post-reset truth.
    EXPECT_EQ(system->class_traffic().at("C").calls.at({0, 1}), 2u);
}

TEST_F(ObservabilityFixture, AdvisorReadsExclusivelyFromRegistry) {
    // Traffic split 30/10 between nodes 0 and 1 toward objects on node 2.
    system->policy().set_instance_home("C", 2, "RMI");
    Value c = system->construct(0, "C", "()V");
    Value c_on_1 = system->node(1).import_ref(
        2, system->resolve_terminal(0, c.as_ref()).second, "C_O_Int", "RMI");
    for (int k = 0; k < 30; ++k) system->node(0).interp().call_virtual(c, "poke", "()I");
    for (int k = 0; k < 10; ++k)
        system->node(1).interp().call_virtual(c_on_1, "poke", "()I");

    // The registry holds exactly the edges the advisor must see.
    obs::Snapshot snap = system->metrics().snapshot();
    EXPECT_EQ(snap.counter_value("rpc.class_calls.C.0.2"), 30u);
    EXPECT_EQ(snap.counter_value("rpc.class_calls.C.1.2"), 10u);

    PolicyAdvisor advisor(*system, /*min_calls=*/16, /*min_dominance=*/0.6);
    std::vector<Recommendation> recs = advisor.advise();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].cls, "C");
    EXPECT_EQ(recs[0].objects_on, 2);
    EXPECT_EQ(recs[0].recommended_home, 0);
    EXPECT_EQ(recs[0].remote_calls, 40u);
    EXPECT_DOUBLE_EQ(recs[0].dominance, 0.75);
}

TEST_F(ObservabilityFixture, MethodProfilingRecordsPerMethodHistograms) {
    system->policy().set_instance_home("C", 1, "RMI");
    system->enable_method_profiling(true);
    Value c = system->construct(0, "C", "()V");
    for (int k = 0; k < 3; ++k) system->node(0).interp().call_virtual(c, "poke", "()I");

    // The executed body lives on whatever class the transform moved it to,
    // so match by VM prefix and method suffix rather than the exact class.
    obs::Snapshot snap = system->metrics().snapshot();
    const obs::Sample* poke_hist = nullptr;
    for (const auto& [name, s] : snap.samples)
        if (name.starts_with("vm.node1.method_instr.") && name.ends_with(".poke"))
            poke_hist = &s;
    ASSERT_NE(poke_hist, nullptr);
    EXPECT_EQ(poke_hist->kind, obs::Sample::Kind::Histogram);
    EXPECT_EQ(poke_hist->count, 3u);
    EXPECT_GT(poke_hist->sum, 0u);

    // The per-VM probes ride along in every snapshot.
    const obs::Sample* instr = snap.find("vm.node1.instructions");
    ASSERT_NE(instr, nullptr);
    EXPECT_GT(instr->gauge, 0);
}

TEST_F(ObservabilityFixture, TracingOffRecordsNothing) {
    system->policy().set_instance_home("C", 1, "RMI");
    Value c = system->construct(0, "C", "()V");
    system->node(0).interp().call_virtual(c, "poke", "()I");
    EXPECT_TRUE(system->tracer().spans().empty());
}

}  // namespace
}  // namespace rafda::runtime
