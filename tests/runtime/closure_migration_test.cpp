// migrate_closure: moving a whole object cluster in one step, so chatty
// intra-cluster calls stay local after the move.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Engine {
  field cache LCache;
  field stats LStats;
  ctor ()V {
    return
  }
  method wire (LCache;LStats;)V {
    load 0
    load 1
    putfield Engine.cache LCache;
    load 0
    load 2
    putfield Engine.stats LStats;
    return
  }
  method query (I)I {
    load 0
    getfield Engine.stats LStats;
    invokevirtual Stats.count ()V
    load 0
    getfield Engine.cache LCache;
    load 1
    invokevirtual Cache.lookup (I)I
    returnvalue
  }
}
class Cache {
  field hits I
  ctor ()V {
    return
  }
  method lookup (I)I {
    load 0
    load 0
    getfield Cache.hits I
    const 1
    add
    putfield Cache.hits I
    load 1
    const 10
    mul
    returnvalue
  }
}
class Stats {
  field queries I
  ctor ()V {
    return
  }
  method count ()V {
    load 0
    load 0
    getfield Stats.queries I
    const 1
    add
    putfield Stats.queries I
    return
  }
  method queries ()I {
    load 0
    getfield Stats.queries I
    returnvalue
  }
}
)";

struct ClosureFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;
    Value engine, cache, stats;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        engine = system->construct(0, "Engine", "()V");
        cache = system->construct(0, "Cache", "()V");
        stats = system->construct(0, "Stats", "()V");
        system->node(0).interp().call_virtual(
            engine, "wire", "(LCache_O_Int;LStats_O_Int;)V", {cache, stats});
    }
};

TEST_F(ClosureFixture, MovesWholeCluster) {
    std::size_t moved = system->migrate_closure(0, engine.as_ref(), 1, "RMI");
    EXPECT_EQ(moved, 3u);  // engine + cache + stats
    // All three slots on node 0 are now proxies.
    vm::Interpreter& n0 = system->node(0).interp();
    EXPECT_EQ(n0.class_of(engine.as_ref()).name, "Engine_O_Proxy_RMI");
    EXPECT_EQ(n0.class_of(cache.as_ref()).name, "Cache_O_Proxy_RMI");
    EXPECT_EQ(n0.class_of(stats.as_ref()).name, "Stats_O_Proxy_RMI");
}

TEST_F(ClosureFixture, IntraClusterCallsStayLocalAfterMove) {
    vm::Interpreter& n0 = system->node(0).interp();
    n0.call_virtual(engine, "query", "(I)I", {Value::of_int(1)});

    system->migrate_closure(0, engine.as_ref(), 1, "RMI");
    system->reset_stats();
    EXPECT_EQ(n0.call_virtual(engine, "query", "(I)I", {Value::of_int(2)}).as_int(), 20);

    // Exactly one remote hop: the driver's call to the engine.  The
    // engine->cache and engine->stats calls are local on node 1 because
    // the closure moved as a unit and back-references were re-pointed.
    EXPECT_EQ(system->remote_stats().at("RMI").calls, 1u);
}

TEST_F(ClosureFixture, SingleMigrationLeavesChatter) {
    // Ablation for the same workload: moving only the engine leaves its
    // cache and stats behind, so each query pays three hops.
    vm::Interpreter& n0 = system->node(0).interp();
    system->migrate_instance(0, engine.as_ref(), 1, "RMI");
    system->reset_stats();
    EXPECT_EQ(n0.call_virtual(engine, "query", "(I)I", {Value::of_int(2)}).as_int(), 20);
    EXPECT_EQ(system->remote_stats().at("RMI").calls, 3u);  // query + count + lookup
}

TEST_F(ClosureFixture, StatePreservedAcrossClosureMove) {
    vm::Interpreter& n0 = system->node(0).interp();
    n0.call_virtual(engine, "query", "(I)I", {Value::of_int(1)});
    n0.call_virtual(engine, "query", "(I)I", {Value::of_int(2)});
    system->migrate_closure(0, engine.as_ref(), 1);
    n0.call_virtual(engine, "query", "(I)I", {Value::of_int(3)});
    EXPECT_EQ(n0.call_virtual(stats, "queries", "()I").as_int(), 3);
}

TEST_F(ClosureFixture, SharedDiamondMovesOnce) {
    // Two engines sharing one cache: the closure from engine A includes
    // the cache; engine B keeps working through the forwarding proxy.
    Value engine2 = system->construct(0, "Engine", "()V");
    Value stats2 = system->construct(0, "Stats", "()V");
    system->node(0).interp().call_virtual(
        engine2, "wire", "(LCache_O_Int;LStats_O_Int;)V", {cache, stats2});

    std::size_t moved = system->migrate_closure(0, engine.as_ref(), 1, "RMI");
    EXPECT_EQ(moved, 3u);
    // engine2 still answers (its cache ref chains to node 1 now).
    EXPECT_EQ(system->node(0)
                  .interp()
                  .call_virtual(engine2, "query", "(I)I", {Value::of_int(4)})
                  .as_int(),
              40);
}

TEST_F(ClosureFixture, ClosureOfProxyIsRefused) {
    system->migrate_instance(0, engine.as_ref(), 1, "RMI");
    EXPECT_THROW(system->migrate_closure(0, engine.as_ref(), 1), RuntimeError);
}

TEST_F(ClosureFixture, NullFieldsAreFine) {
    Value lone = system->construct(0, "Engine", "()V");  // cache/stats null
    EXPECT_EQ(system->migrate_closure(0, lone.as_ref(), 1), 1u);
}

}  // namespace
}  // namespace rafda::runtime
