#include "runtime/adapter.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Chatty {
  field peer LChatty;
  field n I
  ctor ()V {
    return
  }
  method setPeer (LChatty;)V {
    load 0
    load 1
    putfield Chatty.peer LChatty;
    return
  }
  method ping ()I {
    load 0
    load 0
    getfield Chatty.n I
    const 1
    add
    putfield Chatty.n I
    load 0
    getfield Chatty.n I
    returnvalue
  }
  method chat ()I {
    locals 2
    const 0
    store 1
  Top:
    load 1
    const 4
    cmpge
    iftrue Done
    load 0
    getfield Chatty.peer LChatty;
    invokevirtual Chatty.ping ()I
    pop
    load 1
    const 1
    add
    store 1
    goto Top
  Done:
    load 0
    getfield Chatty.peer LChatty;
    invokevirtual Chatty.ping ()I
    returnvalue
  }
}
)";

struct AdapterFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<System> system;
    Value worker, peer;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        system = std::make_unique<System>(original);
        system->add_node();
        system->add_node();
        worker = system->construct(0, "Chatty", "()V");
        peer = system->construct(0, "Chatty", "()V");
        system->node(0).interp().call_virtual(worker, "setPeer", "(LChatty_O_Int;)V",
                                              {peer});
    }

    std::uint64_t run_phase() {
        std::uint64_t t0 = system->network().now_us();
        for (int k = 0; k < 5; ++k)
            system->node(0).interp().call_virtual(worker, "chat", "()I");
        return system->network().now_us() - t0;
    }
};

TEST_F(AdapterFixture, NoMoveWhileCostsAreStable) {
    GreedyAdapter adapter(*system, 0, worker.as_ref(), "RMI");
    adapter.set_affinity(0);
    EXPECT_FALSE(adapter.report_phase_cost(run_phase()));
    EXPECT_FALSE(adapter.report_phase_cost(run_phase()));
    EXPECT_EQ(adapter.migrations(), 0u);
    EXPECT_EQ(adapter.current_node(), 0);
}

TEST_F(AdapterFixture, MovesTowardsAffinityOnRegression) {
    GreedyAdapter adapter(*system, 0, worker.as_ref(), "RMI");
    std::uint64_t cheap = run_phase();
    adapter.report_phase_cost(cheap);  // first report: baseline, never moves

    // Environment change: the peer moves to node 1, making phases costly.
    system->migrate_instance(0, peer.as_ref(), 1, "RMI");
    adapter.set_affinity(1);
    std::uint64_t costly = run_phase();
    ASSERT_GT(costly, cheap);
    EXPECT_TRUE(adapter.report_phase_cost(costly));
    EXPECT_EQ(adapter.current_node(), 1);
    EXPECT_EQ(adapter.migrations(), 1u);

    // With the worker co-located, phases get cheap again (driver pays one
    // hop per chat; the chat's pings are local on node 1).
    std::uint64_t after = run_phase();
    EXPECT_LT(after, costly);
    EXPECT_FALSE(adapter.report_phase_cost(after));
}

TEST_F(AdapterFixture, DoesNotMoveWhenAlreadyAtAffinity) {
    GreedyAdapter adapter(*system, 0, worker.as_ref(), "RMI");
    adapter.set_affinity(0);
    adapter.report_phase_cost(10);
    EXPECT_FALSE(adapter.report_phase_cost(100));  // regressed, but at home
    EXPECT_EQ(adapter.migrations(), 0u);
}

TEST_F(AdapterFixture, TracksOidAcrossMultipleMoves) {
    GreedyAdapter adapter(*system, 0, worker.as_ref(), "RMI");
    adapter.report_phase_cost(1);
    adapter.set_affinity(1);
    EXPECT_TRUE(adapter.report_phase_cost(2));
    adapter.set_affinity(0);
    EXPECT_TRUE(adapter.report_phase_cost(3));
    EXPECT_EQ(adapter.current_node(), 0);
    EXPECT_EQ(adapter.migrations(), 2u);
    // The tracked oid is the live local object on node 0.
    EXPECT_EQ(system->node(0).interp().class_of(adapter.current_oid()).name,
              "Chatty_O_Local");
}

}  // namespace
}  // namespace rafda::runtime
