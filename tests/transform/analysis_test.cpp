#include "transform/analysis.hpp"

#include <gtest/gtest.h>

#include "corpus/jdk_corpus.hpp"
#include "model/assembler.hpp"
#include "support/thread_pool.hpp"
#include "vm/prelude.hpp"

namespace rafda::transform {
namespace {

model::ClassPool pool_of(const char* src) {
    model::ClassPool pool;
    model::assemble_into(pool, src);
    return pool;
}

TEST(Analysis, PlainClassesAreTransformable) {
    model::ClassPool pool = pool_of(R"(
class A {
  field x I
}
class B extends A {
}
)");
    Analysis a = analyze(pool);
    EXPECT_TRUE(a.transformable("A"));
    EXPECT_TRUE(a.transformable("B"));
    EXPECT_EQ(a.non_transformable_count(), 0u);
    EXPECT_DOUBLE_EQ(a.non_transformable_fraction(), 0.0);
}

TEST(Analysis, Rule1NativeMethod) {
    model::ClassPool pool = pool_of(R"(
class N {
  native method f ()V
}
)");
    Analysis a = analyze(pool);
    EXPECT_FALSE(a.transformable("N"));
    EXPECT_EQ(a.status_of("N").reason, Reason::NativeMethod);
}

TEST(Analysis, Rule2SpecialClassAndInheritors) {
    model::ClassPool pool = pool_of(R"(
special class Thr {
}
class MyError extends Thr {
}
class DeepError extends MyError {
}
class Fine {
}
)");
    Analysis a = analyze(pool);
    EXPECT_EQ(a.status_of("Thr").reason, Reason::SpecialClass);
    EXPECT_EQ(a.status_of("MyError").reason, Reason::SpecialClass);
    EXPECT_EQ(a.status_of("DeepError").reason, Reason::SpecialClass);
    EXPECT_TRUE(a.transformable("Fine"));
}

TEST(Analysis, Rule3SuperOfNonTransformable) {
    model::ClassPool pool = pool_of(R"(
class Base {
}
class Mid extends Base {
}
class Native extends Mid {
  native method f ()V
}
)");
    Analysis a = analyze(pool);
    EXPECT_FALSE(a.transformable("Native"));
    EXPECT_FALSE(a.transformable("Mid"));
    EXPECT_FALSE(a.transformable("Base"));  // propagates up the chain
    EXPECT_EQ(a.status_of("Mid").reason, Reason::SuperOfNonTransformable);
    EXPECT_EQ(a.status_of("Mid").blamed_on, "Native");
}

TEST(Analysis, Rule4ReferencedByNonTransformable) {
    model::ClassPool pool = pool_of(R"(
class Victim {
}
class AlsoVictim {
}
class Native {
  field v LVictim;
  native method f ()V
  method g (LAlsoVictim;)V {
    return
  }
}
class Unrelated {
}
)");
    Analysis a = analyze(pool);
    EXPECT_FALSE(a.transformable("Victim"));
    EXPECT_EQ(a.status_of("Victim").reason, Reason::ReferencedByNonTransformable);
    EXPECT_FALSE(a.transformable("AlsoVictim"));
    EXPECT_TRUE(a.transformable("Unrelated"));
}

TEST(Analysis, Rule4PropagatesTransitively) {
    // Native -> refs A; A is NT; A refs B => B NT too (B is referenced by a
    // non-transformable class).
    model::ClassPool pool = pool_of(R"(
class B {
}
class A {
  field b LB;
}
class Native {
  field a LA;
  native method f ()V
}
)");
    Analysis a = analyze(pool);
    EXPECT_FALSE(a.transformable("A"));
    EXPECT_FALSE(a.transformable("B"));
}

TEST(Analysis, ReferenceFromTransformableDoesNotPropagate) {
    // The propagation direction matters: a transformable class may freely
    // reference a non-transformable one.
    model::ClassPool pool = pool_of(R"(
class Native {
  native method f ()V
}
class User {
  method g (LNative;)V {
    return
  }
}
)");
    Analysis a = analyze(pool);
    EXPECT_FALSE(a.transformable("Native"));
    EXPECT_TRUE(a.transformable("User"));
}

TEST(Analysis, CodeOperandReferencesCount) {
    model::ClassPool pool = pool_of(R"(
class Helper {
  static method h ()V {
    return
  }
}
class Native {
  native method f ()V
  method g ()V {
    invokestatic Helper.h ()V
    return
  }
}
)");
    Analysis a = analyze(pool);
    EXPECT_FALSE(a.transformable("Helper"));
}

TEST(Analysis, PreludeIsNonTransformable) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    Analysis a = analyze(pool);
    EXPECT_FALSE(a.transformable("Sys"));        // native methods
    EXPECT_FALSE(a.transformable("Throwable"));  // special
    EXPECT_EQ(a.status_of("Sys").reason, Reason::NativeMethod);
    EXPECT_EQ(a.status_of("Throwable").reason, Reason::SpecialClass);
}

TEST(Analysis, InterfaceImplementedByNativeClassIsNonTransformable) {
    model::ClassPool pool = pool_of(R"(
interface Api {
  method f ()V
}
class Impl implements Api {
  native method sys ()V
  method f ()V {
    return
  }
}
)");
    Analysis a = analyze(pool);
    // Impl references Api (implements edge) => rule 4.
    EXPECT_FALSE(a.transformable("Api"));
}

TEST(Analysis, HistogramAndFraction) {
    model::ClassPool pool = pool_of(R"(
special class S {
}
class N {
  native method f ()V
}
class V {
}
class Ref {
  field v LV;
  native method g ()V
}
class Ok {
}
class Ok2 {
}
)");
    Analysis a = analyze(pool);
    EXPECT_EQ(a.total(), 6u);
    EXPECT_EQ(a.non_transformable_count(), 4u);  // S, N, Ref, V
    EXPECT_NEAR(a.non_transformable_fraction(), 4.0 / 6.0, 1e-12);
    auto hist = a.reason_histogram();
    EXPECT_EQ(hist[Reason::NativeMethod], 2u);
    EXPECT_EQ(hist[Reason::SpecialClass], 1u);
    EXPECT_EQ(hist[Reason::ReferencedByNonTransformable], 1u);
    EXPECT_EQ(a.transformable_classes(), (std::vector<std::string>{"Ok", "Ok2"}));
}

TEST(Analysis, InheritanceCycleTerminates) {
    // Regression: inherits-special used to recurse along the super chain
    // with no visited set, so a hierarchy cycle (which the assembler does
    // not reject — only verify_pool does) recursed forever.  The memoized
    // walk must treat the back-edge as "not special" and terminate.
    model::ClassPool pool = pool_of(R"(
class A extends B {
}
class B extends A {
}
class Lone {
}
)");
    Analysis a = analyze(pool);
    // Neither cycle member has a native method or special ancestry; the
    // cycle alone is a verification problem, not a transformability one.
    EXPECT_TRUE(a.transformable("A"));
    EXPECT_TRUE(a.transformable("B"));
    EXPECT_TRUE(a.transformable("Lone"));
}

TEST(Analysis, InheritanceCycleThroughSpecialClass) {
    // A cycle where one member is special: both inherit specialness (each
    // reaches S through its super chain) and the walk still terminates.
    model::ClassPool pool = pool_of(R"(
special class S {
}
class C extends D {
}
class D extends C {
  field s LS;
}
class E extends S {
}
)");
    // D's field reference to S is allowed (reference *to* special is fine);
    // E inherits specialness from S directly.
    Analysis a = analyze(pool);
    EXPECT_EQ(a.status_of("E").reason, Reason::SpecialClass);
    EXPECT_TRUE(a.transformable("C"));
    EXPECT_TRUE(a.transformable("D"));

    model::ClassPool cyc = pool_of(R"(
special class S {
}
class C extends S {
}
class D extends C {
}
)");
    Analysis b = analyze(cyc);
    EXPECT_EQ(b.status_of("C").reason, Reason::SpecialClass);
    EXPECT_EQ(b.status_of("D").reason, Reason::SpecialClass);
}

TEST(Analysis, ParallelAnalyzeMatchesSerial) {
    // The thread pool only parallelises graph construction; verdicts,
    // reasons and blame must be bit-for-bit those of the serial run.
    corpus::JdkCorpusParams params;
    params.total_types = 600;
    model::ClassPool pool = corpus::generate_jdk_corpus(params);

    Analysis serial = analyze(pool);
    for (std::size_t threads : {2u, 8u}) {
        support::ThreadPool workers(threads);
        Analysis par = analyze(pool, &workers);
        ASSERT_EQ(par.total(), serial.total());
        ASSERT_EQ(par.non_transformable_count(), serial.non_transformable_count());
        EXPECT_EQ(par.reason_histogram(), serial.reason_histogram());
        for (const auto& name : pool.all_names()) {
            const ClassStatus& a = serial.status_of(name);
            const ClassStatus& b = par.status_of(name);
            ASSERT_EQ(a.verdict, b.verdict) << name;
            ASSERT_EQ(a.reason, b.reason) << name;
            ASSERT_EQ(a.blamed_on, b.blamed_on) << name;
        }
    }
}

TEST(Analysis, ThrowableReferencesDoNotBlockThrower) {
    // A class that throws (references Throwable) stays transformable: the
    // reference direction is from the transformable class to the special
    // one, which is allowed.
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, R"(
class Thrower {
  static method f ()V {
    new Throwable
    dup
    const "x"
    invokespecial Throwable.<init> (S)V
    throw
  }
}
)");
    Analysis a = analyze(pool);
    EXPECT_TRUE(a.transformable("Thrower"));
}

}  // namespace
}  // namespace rafda::transform
