// "Policy dictates which classes are substitutable" (Sec 1): the pipeline
// can substitute only a chosen subset.  Unselected transformable classes
// keep their identity (no families, no factory indirection for them) but
// are rewritten in place so they compose with the substituted families.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"

namespace rafda::transform {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Engine {
  field cache LCacheBox;
  ctor (LCacheBox;)V {
    load 0
    load 1
    putfield Engine.cache LCacheBox;
    return
  }
  method run (I)I {
    load 0
    getfield Engine.cache LCacheBox;
    load 1
    invokevirtual CacheBox.lookup (I)I
    returnvalue
  }
}
class CacheBox {
  field hits I
  ctor ()V {
    return
  }
  method lookup (I)I {
    load 0
    load 0
    getfield CacheBox.hits I
    const 1
    add
    putfield CacheBox.hits I
    load 1
    const 7
    mul
    returnvalue
  }
}
class Main {
  static method main ()V {
    locals 2
    new CacheBox
    dup
    invokespecial CacheBox.<init> ()V
    store 0
    new Engine
    dup
    load 0
    invokespecial Engine.<init> (LCacheBox;)V
    store 1
    const "r="
    load 1
    const 6
    invokevirtual Engine.run (I)I
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)";

model::ClassPool make_original() {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);
    return pool;
}

PipelineResult run_filtered(const model::ClassPool& original,
                            std::vector<std::string> selected) {
    PipelineOptions options;
    options.substitutable = std::move(selected);
    return run_pipeline(original, options);
}

TEST(PartialSubstitution, OnlySelectedClassesGetFamilies) {
    model::ClassPool original = make_original();
    PipelineResult result = run_filtered(original, {"CacheBox", "Main"});
    EXPECT_TRUE(result.pool.contains("CacheBox_O_Int"));
    EXPECT_TRUE(result.pool.contains("Main_C_Factory"));
    // Engine keeps its identity: no family, original name present.
    EXPECT_TRUE(result.pool.contains("Engine"));
    EXPECT_FALSE(result.pool.contains("Engine_O_Int"));
    EXPECT_FALSE(result.pool.contains("Engine_O_Factory"));
    EXPECT_FALSE(result.report.substituted("Engine"));
    EXPECT_TRUE(result.report.substituted("CacheBox"));
}

TEST(PartialSubstitution, KeptClassIsRetypedInPlace) {
    model::ClassPool original = make_original();
    PipelineResult result = run_filtered(original, {"CacheBox", "Main"});
    const model::ClassFile& engine = result.pool.get("Engine");
    // Its field now holds the extracted interface type...
    EXPECT_EQ(engine.find_field("cache")->type.descriptor(), "LCacheBox_O_Int;");
    // ...its constructor signature maps...
    EXPECT_NE(engine.find_method("<init>", "(LCacheBox_O_Int;)V"), nullptr);
    // ...and its body calls through the interface.
    const model::Method* run = engine.find_method("run", "(I)I");
    ASSERT_NE(run, nullptr);
    bool interface_call = false;
    for (const model::Instruction& i : run->code.instrs)
        if (i.op == model::Op::InvokeInterface && i.owner == "CacheBox_O_Int")
            interface_call = true;
    EXPECT_TRUE(interface_call);
    EXPECT_TRUE(model::verify_pool_collect(result.pool).empty());
}

TEST(PartialSubstitution, BehaviourMatchesFullSubstitution) {
    model::ClassPool original = make_original();

    auto run = [&](PipelineResult result) {
        vm::Interpreter interp(result.pool);
        vm::bind_prelude_natives(interp);
        bind_local_factories(interp, result.report);
        call_transformed_static(interp, original, result.report, "Main", "main", "()V");
        return interp.output();
    };

    std::string full = run(run_pipeline(original));
    std::string partial = run(run_filtered(original, {"CacheBox", "Main"}));
    EXPECT_EQ(full, partial);
    EXPECT_EQ(full, "r=42\n");
}

TEST(PartialSubstitution, OnlySubstitutedClassesAreRemotable) {
    model::ClassPool original = make_original();
    runtime::SystemOptions options;
    options.pipeline.substitutable = std::vector<std::string>{"CacheBox", "Main"};
    runtime::System system(original, options);
    system.add_node();
    system.add_node();
    // The substituted class can live remotely...
    system.policy().set_instance_home("CacheBox", 1, "RMI");
    system.call_static(0, "Main", "main", "()V");
    EXPECT_EQ(system.node(0).interp().output(), "r=42\n");
    EXPECT_GT(system.remote_stats().at("RMI").calls, 0u);
    // ...while Engine was constructed as a plain local object (no proxy
    // classes exist for it at all).
    EXPECT_FALSE(system.transformed_pool().contains("Engine_O_Proxy_RMI"));
}

TEST(PartialSubstitution, EmptySelectionKeepsEverythingInPlace) {
    model::ClassPool original = make_original();
    PipelineResult result = run_filtered(original, {});
    EXPECT_TRUE(result.report.substituted_classes().empty());
    EXPECT_TRUE(result.pool.contains("Engine"));
    EXPECT_TRUE(result.pool.contains("CacheBox"));
    // With nothing substituted the rewrite is the identity; the program
    // still runs as the original.
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    bind_local_factories(interp, result.report);
    call_transformed_static(interp, original, result.report, "Main", "main", "()V");
    EXPECT_EQ(interp.output(), "r=42\n");
}

TEST(PartialSubstitution, SelectingNonTransformableIsIgnored) {
    model::ClassPool original = make_original();
    PipelineResult result = run_filtered(original, {"Sys", "CacheBox", "Main"});
    EXPECT_FALSE(result.report.substituted("Sys"));
    EXPECT_TRUE(result.pool.contains("Sys"));
    EXPECT_FALSE(result.pool.contains("Sys_O_Int"));
}

}  // namespace
}  // namespace rafda::transform
