// E1 — golden reproduction of the paper's worked example.
//
// Figure 2 gives the sample application class X:
//
//   public class X {
//     private Y y;
//     public X(Y y) { this.y = y; }
//     protected int m(long j) { return y.n(j); }
//     static final Z z = new Z(Y.K);
//     static int p(int i) { return z.q(i); }
//   }
//
// Figures 3-5 show the generated X_O_Int / X_O_Local / proxies, the
// X_C_Int / X_C_Local / proxies (with singleton declarations), and the
// factories.  This test runs the pipeline on the Figure 2 input and checks
// the generated artefacts have exactly the paper's structure, plus runs
// the local version to show the transformed program behaves like the
// original ("semantically equivalent", Sec 1).
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/printer.hpp"
#include "model/verifier.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"

namespace rafda::transform {
namespace {

// Figure 2 in RIR.  Y and Z are minimal companions: Y.n and Z.q give the
// methods the figure calls; Y.K is the static Y constant Figure 5 reads
// via Y_C_Factory.discover().get_K().
constexpr const char* kFigure2 = R"(
class Y {
  static field K LY;
  field seed J
  ctor (J)V {
    load 0
    load 1
    putfield Y.seed J
    return
  }
  method n (J)I {
    load 0
    getfield Y.seed J
    load 1
    add
    conv I
    returnvalue
  }
  clinit {
    new Y
    dup
    const 100L
    invokespecial Y.<init> (J)V
    putstatic Y.K LY;
    return
  }
}
class Z {
  field y LY;
  ctor (LY;)V {
    load 0
    load 1
    putfield Z.y LY;
    return
  }
  method q (I)I {
    load 0
    getfield Z.y LY;
    load 0
    getfield Z.y LY;
    getfield Y.seed J
    invokevirtual Y.n (J)I
    load 1
    add
    returnvalue
  }
}
class X {
  field private y LY;
  static field final z LZ;
  ctor (LY;)V {
    load 0
    load 1
    putfield X.y LY;
    return
  }
  protected method m (J)I {
    load 0
    getfield X.y LY;
    load 1
    invokevirtual Y.n (J)I
    returnvalue
  }
  static method p (I)I {
    getstatic X.z LZ;
    load 0
    invokevirtual Z.q (I)I
    returnvalue
  }
  clinit {
    new Z
    dup
    getstatic Y.K LY;
    invokespecial Z.<init> (LY;)V
    putstatic X.z LZ;
    return
  }
}
)";

struct GoldenFixture : ::testing::Test {
    model::ClassPool original;
    PipelineResult result = make_result(original);

    static PipelineResult make_result(model::ClassPool& original) {
        vm::install_prelude(original);
        model::assemble_into(original, kFigure2);
        model::verify_pool(original);
        return run_pipeline(original);
    }

    const model::ClassFile& cls(const char* name) { return result.pool.get(name); }

    bool has_abstract(const model::ClassFile& cf, const char* name, const char* desc) {
        const model::Method* m = cf.find_method(name, desc);
        return m && m->is_abstract;
    }
};

// ---- Figure 3: instance members transformation -------------------------

TEST_F(GoldenFixture, Fig3_XOInt) {
    const model::ClassFile& x_o_int = cls("X_O_Int");
    EXPECT_TRUE(x_o_int.is_interface);
    // Y_O_Int get_y(); void set_y(Y_O_Int y); int m(long j);
    EXPECT_TRUE(has_abstract(x_o_int, "get_y", "()LY_O_Int;"));
    EXPECT_TRUE(has_abstract(x_o_int, "set_y", "(LY_O_Int;)V"));
    EXPECT_TRUE(has_abstract(x_o_int, "m", "(J)I"));
    EXPECT_EQ(x_o_int.methods.size(), 3u);
}

TEST_F(GoldenFixture, Fig3_XOLocal) {
    const model::ClassFile& local = cls("X_O_Local");
    EXPECT_EQ(local.interfaces, (std::vector<std::string>{"X_O_Int"}));
    // private Y_O_Int y;
    const model::Field* y = local.find_field("y");
    ASSERT_NE(y, nullptr);
    EXPECT_EQ(y->type.descriptor(), "LY_O_Int;");
    EXPECT_EQ(y->vis, model::Visibility::Private);
    // public X_O_Local() { }
    const model::Method* ctor = local.find_method("<init>", "()V");
    ASSERT_NE(ctor, nullptr);
    // public int m(long j) { return get_y().n(j); } — both interface calls.
    const model::Method* m = local.find_method("m", "(J)I");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->vis, model::Visibility::Public);  // publicized from protected
    std::vector<std::pair<std::string, std::string>> calls;
    for (const model::Instruction& i : m->code.instrs)
        if (i.op == model::Op::InvokeInterface) calls.push_back({i.owner, i.member});
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0], (std::pair<std::string, std::string>{"X_O_Int", "get_y"}));
    EXPECT_EQ(calls[1], (std::pair<std::string, std::string>{"Y_O_Int", "n"}));
}

TEST_F(GoldenFixture, Fig3_Proxies) {
    for (const char* name : {"X_O_Proxy_SOAP", "X_O_Proxy_RMI"}) {
        const model::ClassFile& proxy = cls(name);
        EXPECT_EQ(proxy.interfaces, (std::vector<std::string>{"X_O_Int"}));
        EXPECT_NE(proxy.find_method("<init>", "()V"), nullptr);
        for (const char* m : {"get_y", "set_y", "m"}) {
            bool native_found = false;
            for (const model::Method& method : proxy.methods)
                if (method.name == m && method.is_native) native_found = true;
            EXPECT_TRUE(native_found) << name << "." << m;
        }
    }
}

// ---- Figure 4: static members transformation ---------------------------

TEST_F(GoldenFixture, Fig4_XCInt) {
    const model::ClassFile& x_c_int = cls("X_C_Int");
    EXPECT_TRUE(x_c_int.is_interface);
    // Z_O_Int get_z(); int p(int i);  (set_z also exists: fields become
    // properties uniformly.)
    EXPECT_TRUE(has_abstract(x_c_int, "get_z", "()LZ_O_Int;"));
    EXPECT_TRUE(has_abstract(x_c_int, "p", "(I)I"));
}

TEST_F(GoldenFixture, Fig4_XCLocal_SingletonAndBody) {
    const model::ClassFile& clocal = cls("X_C_Local");
    // private static X_C_Int me; public static X_C_Int get_me();
    const model::Field* me = clocal.find_field("me");
    ASSERT_NE(me, nullptr);
    EXPECT_TRUE(me->is_static);
    EXPECT_EQ(me->type.descriptor(), "LX_C_Int;");
    EXPECT_EQ(me->vis, model::Visibility::Private);
    EXPECT_NE(clocal.find_method("get_me", "()LX_C_Int;"), nullptr);

    // public int p(int i) { return get_z().q(i); }
    const model::Method* p = clocal.find_method("p", "(I)I");
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(p->is_static);  // made non-static (Sec 2.2)
    std::vector<std::pair<std::string, std::string>> calls;
    for (const model::Instruction& i : p->code.instrs)
        if (i.op == model::Op::InvokeInterface) calls.push_back({i.owner, i.member});
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0], (std::pair<std::string, std::string>{"X_C_Int", "get_z"}));
    EXPECT_EQ(calls[1], (std::pair<std::string, std::string>{"Z_O_Int", "q"}));
}

TEST_F(GoldenFixture, Fig4_CProxies) {
    for (const char* name : {"X_C_Proxy_RMI", "X_C_Proxy_SOAP"}) {
        const model::ClassFile& proxy = cls(name);
        EXPECT_EQ(proxy.interfaces, (std::vector<std::string>{"X_C_Int"}));
        bool get_z_native = false;
        for (const model::Method& m : proxy.methods)
            if (m.name == "get_z" && m.is_native) get_z_native = true;
        EXPECT_TRUE(get_z_native) << name;
    }
}

// ---- Figure 5: factories ------------------------------------------------

TEST_F(GoldenFixture, Fig5_XOFactory) {
    const model::ClassFile& fac = cls("X_O_Factory");
    // public static X_O_Int make();
    const model::Method* make = fac.find_method("make", "()LX_O_Int;");
    ASSERT_NE(make, nullptr);
    EXPECT_TRUE(make->is_static);
    // public static void init(X_O_Int that, Y_O_Int y) { that.set_y(y); }
    const model::Method* init = fac.find_method("init", "(LX_O_Int;LY_O_Int;)V");
    ASSERT_NE(init, nullptr);
    bool set_y = false;
    for (const model::Instruction& i : init->code.instrs)
        if (i.op == model::Op::InvokeInterface && i.owner == "X_O_Int" &&
            i.member == "set_y")
            set_y = true;
    EXPECT_TRUE(set_y);
}

TEST_F(GoldenFixture, Fig5_XCFactory) {
    const model::ClassFile& fac = cls("X_C_Factory");
    EXPECT_NE(fac.find_method("discover", "()LX_C_Int;"), nullptr);
    // clinit(that):
    //   Z_O_Int t = Z_O_Factory.make();
    //   Z_O_Factory.init(t, Y_C_Factory.discover().get_K());
    //   that.set_z(t);
    const model::Method* clinit = fac.find_method("clinit", "(LX_C_Int;)V");
    ASSERT_NE(clinit, nullptr);
    bool z_make = false, z_init = false, y_discover = false, get_k = false, set_z = false;
    for (const model::Instruction& i : clinit->code.instrs) {
        if (i.op == model::Op::InvokeStatic && i.owner == "Z_O_Factory") {
            if (i.member == "make") z_make = true;
            if (i.member == "init") z_init = true;
        }
        if (i.op == model::Op::InvokeStatic && i.owner == "Y_C_Factory" &&
            i.member == "discover")
            y_discover = true;
        if (i.op == model::Op::InvokeInterface && i.owner == "Y_C_Int" &&
            i.member == "get_K")
            get_k = true;
        if (i.op == model::Op::InvokeInterface && i.owner == "X_C_Int" &&
            i.member == "set_z")
            set_z = true;
    }
    EXPECT_TRUE(z_make);
    EXPECT_TRUE(z_init);
    EXPECT_TRUE(y_discover);
    EXPECT_TRUE(get_k);
    EXPECT_TRUE(set_z);
}

// ---- Behaviour: the local transformed version computes the same --------

TEST_F(GoldenFixture, TransformedLocalVersionBehavesLikeOriginal) {
    // Original.
    vm::Interpreter orig(original);
    vm::bind_prelude_natives(orig);
    vm::Value y = orig.construct("Y", "(J)V", {vm::Value::of_long(7)});
    vm::Value x = orig.construct("X", "(LY;)V", {y});
    std::int32_t orig_m =
        orig.call_virtual(x, "m", "(J)I", {vm::Value::of_long(5)}).as_int();
    std::int32_t orig_p =
        orig.call_static("X", "p", "(I)I", {vm::Value::of_int(3)}).as_int();

    // Transformed, bound locally.
    vm::Interpreter trans(result.pool);
    vm::bind_prelude_natives(trans);
    bind_local_factories(trans, result.report);
    vm::Value ty = trans.call_static("Y_O_Factory", "make", "()LY_O_Int;");
    trans.call_static("Y_O_Factory", "init", "(LY_O_Int;J)V", {ty, vm::Value::of_long(7)});
    vm::Value tx = trans.call_static("X_O_Factory", "make", "()LX_O_Int;");
    trans.call_static("X_O_Factory", "init", "(LX_O_Int;LY_O_Int;)V", {tx, ty});
    std::int32_t trans_m =
        trans.call_virtual(tx, "m", "(J)I", {vm::Value::of_long(5)}).as_int();
    std::int32_t trans_p = call_transformed_static(trans, original, result.report, "X", "p",
                                                   "(I)I", {vm::Value::of_int(3)})
                               .as_int();

    EXPECT_EQ(orig_m, trans_m);
    EXPECT_EQ(orig_p, trans_p);
    EXPECT_EQ(orig_m, 12);   // y.n(5) with seed 7
    EXPECT_EQ(orig_p, 203);  // z.q(3) = K.n(K.seed=100) + 3 = 200 + 3
}

}  // namespace
}  // namespace rafda::transform
