#include "transform/naming.hpp"

#include <gtest/gtest.h>

namespace rafda::transform {
namespace {

TEST(Naming, FollowsPaperScheme) {
    EXPECT_EQ(naming::o_int("X"), "X_O_Int");
    EXPECT_EQ(naming::o_local("X"), "X_O_Local");
    EXPECT_EQ(naming::o_proxy("X", "SOAP"), "X_O_Proxy_SOAP");
    EXPECT_EQ(naming::o_proxy("X", "RMI"), "X_O_Proxy_RMI");
    EXPECT_EQ(naming::c_int("X"), "X_C_Int");
    EXPECT_EQ(naming::c_local("X"), "X_C_Local");
    EXPECT_EQ(naming::c_proxy("X", "RMI"), "X_C_Proxy_RMI");
    EXPECT_EQ(naming::o_factory("X"), "X_O_Factory");
    EXPECT_EQ(naming::c_factory("X"), "X_C_Factory");
}

TEST(Naming, Properties) {
    EXPECT_EQ(naming::getter("y"), "get_y");
    EXPECT_EQ(naming::setter("y"), "set_y");
    EXPECT_EQ(naming::static_forwarder("p"), "call_p");
}

TEST(Naming, GeneratedDetection) {
    EXPECT_TRUE(naming::is_generated("X_O_Int"));
    EXPECT_TRUE(naming::is_generated("X_O_Local"));
    EXPECT_TRUE(naming::is_generated("X_O_Proxy_SOAP"));
    EXPECT_TRUE(naming::is_generated("X_C_Proxy_RMI"));
    EXPECT_TRUE(naming::is_generated("X_O_Factory"));
    EXPECT_TRUE(naming::is_generated("X_C_Factory"));
    EXPECT_FALSE(naming::is_generated("X"));
    EXPECT_FALSE(naming::is_generated("Interesting"));
    EXPECT_FALSE(naming::is_generated("PrintOINT"));
}

}  // namespace
}  // namespace rafda::transform
