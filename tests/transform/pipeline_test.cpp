#include "transform/pipeline.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "transform/naming.hpp"
#include "vm/prelude.hpp"

namespace rafda::transform {
namespace {

model::ClassPool pool_of(const char* src) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, src);
    model::verify_pool(pool);
    return pool;
}

constexpr const char* kApp = R"(
class Counter {
  field n I
  static field total I
  ctor (I)V {
    load 0
    load 1
    putfield Counter.n I
    return
  }
  method bump ()I {
    load 0
    load 0
    getfield Counter.n I
    const 1
    add
    putfield Counter.n I
    load 0
    getfield Counter.n I
    returnvalue
  }
  static method track ()I {
    getstatic Counter.total I
    const 1
    add
    dup
    putstatic Counter.total I
    returnvalue
  }
}
)";

TEST(Pipeline, OutputVerifies) {
    model::ClassPool original = pool_of(kApp);
    PipelineResult result = run_pipeline(original);
    EXPECT_TRUE(model::verify_pool_collect(result.pool).empty());
}

TEST(Pipeline, EmitsFullFamily) {
    model::ClassPool original = pool_of(kApp);
    PipelineResult result = run_pipeline(original);
    for (const char* name :
         {"Counter_O_Int", "Counter_O_Local", "Counter_O_Proxy_RMI",
          "Counter_O_Proxy_SOAP", "Counter_C_Int", "Counter_C_Local",
          "Counter_C_Proxy_RMI", "Counter_C_Proxy_SOAP", "Counter_O_Factory",
          "Counter_C_Factory"})
        EXPECT_TRUE(result.pool.contains(name)) << name;
    // The original class is replaced by its family.
    EXPECT_FALSE(result.pool.contains("Counter"));
    EXPECT_TRUE(result.report.substituted("Counter"));
}

TEST(Pipeline, NonTransformableKeptVerbatim) {
    model::ClassPool original = pool_of(kApp);
    PipelineResult result = run_pipeline(original);
    EXPECT_TRUE(result.pool.contains("Sys"));
    EXPECT_TRUE(result.pool.contains("Throwable"));
    EXPECT_FALSE(result.pool.contains("Sys_O_Int"));
    EXPECT_FALSE(result.report.substituted("Sys"));
}

TEST(Pipeline, CustomProtocols) {
    model::ClassPool original = pool_of(kApp);
    PipelineOptions options;
    options.generator.protocols = {"CORBA"};
    PipelineResult result = run_pipeline(original, options);
    EXPECT_TRUE(result.pool.contains("Counter_O_Proxy_CORBA"));
    EXPECT_FALSE(result.pool.contains("Counter_O_Proxy_RMI"));
    EXPECT_EQ(result.report.protocols(), (std::vector<std::string>{"CORBA"}));
}

TEST(Pipeline, InterfaceSignaturesRewrittenInPlace) {
    model::ClassPool original = pool_of(R"(
interface Sink {
  method accept (LItem;)V
}
class Item {
  ctor ()V {
    return
  }
}
class Basket implements Sink {
  ctor ()V {
    return
  }
  method accept (LItem;)V {
    return
  }
}
)");
    PipelineResult result = run_pipeline(original);
    ASSERT_TRUE(result.pool.contains("Sink"));
    const model::ClassFile& sink = result.pool.get("Sink");
    EXPECT_TRUE(sink.is_interface);
    ASSERT_EQ(sink.methods.size(), 1u);
    EXPECT_EQ(sink.methods[0].descriptor(), "(LItem_O_Int;)V");
    // Basket_O_Int extends Sink, so locals and proxies satisfy it.
    const model::ClassFile& basket_int = result.pool.get("Basket_O_Int");
    EXPECT_EQ(basket_int.interfaces, (std::vector<std::string>{"Sink"}));
}

TEST(Pipeline, InheritanceMapsToFamilyInheritance) {
    model::ClassPool original = pool_of(R"(
class Base {
  field b I
  ctor ()V {
    return
  }
  method bm ()I {
    load 0
    getfield Base.b I
    returnvalue
  }
}
class Derived extends Base {
  field d I
  ctor ()V {
    load 0
    invokespecial Base.<init> ()V
    return
  }
  method dm ()I {
    load 0
    getfield Derived.d I
    returnvalue
  }
}
)");
    PipelineResult result = run_pipeline(original);
    EXPECT_EQ(result.pool.get("Derived_O_Int").interfaces,
              (std::vector<std::string>{"Base_O_Int"}));
    EXPECT_EQ(result.pool.get("Derived_O_Local").super_name, "Base_O_Local");
    // Derived's ctor chains to Base's init through the factory.
    const model::Method* init =
        result.pool.get("Derived_O_Factory").find_method("init", "(LDerived_O_Int;)V");
    ASSERT_NE(init, nullptr);
    bool found = false;
    for (const model::Instruction& i : init->code.instrs)
        if (i.op == model::Op::InvokeStatic && i.owner == "Base_O_Factory" &&
            i.member == "init")
            found = true;
    EXPECT_TRUE(found);
}

TEST(Pipeline, TransformableClassMayExtendNonTransformable) {
    model::ClassPool original = pool_of(R"(
class RawBase {
  native method nat ()V
  method rm ()I {
    const 3
    returnvalue
  }
}
class Child extends RawBase {
  ctor ()V {
    return
  }
  method cm ()I {
    const 4
    returnvalue
  }
}
)");
    // RawBase is non-transformable (native); Child extends it but remains
    // transformable, so Child_O_Local extends the raw RawBase.
    PipelineResult result = run_pipeline(original);
    EXPECT_TRUE(result.pool.contains("RawBase"));
    EXPECT_EQ(result.pool.get("Child_O_Local").super_name, "RawBase");
    EXPECT_TRUE(model::verify_pool_collect(result.pool).empty());
}

TEST(Pipeline, ProxiesDeclareAllInterfaceMethodsNative) {
    model::ClassPool original = pool_of(R"(
class Base {
  field b I
  ctor ()V {
    return
  }
  method bm ()I {
    const 0
    returnvalue
  }
}
class Derived extends Base {
  ctor ()V {
    load 0
    invokespecial Base.<init> ()V
    return
  }
  method dm ()I {
    const 1
    returnvalue
  }
}
)");
    PipelineResult result = run_pipeline(original);
    const model::ClassFile& proxy = result.pool.get("Derived_O_Proxy_RMI");
    // Inherited members must be present so the proxy satisfies the whole
    // interface chain.
    for (const char* name : {"dm", "bm", "get_b", "set_b"}) {
        bool found = false;
        for (const model::Method& m : proxy.methods)
            if (m.name == name && m.is_native) found = true;
        EXPECT_TRUE(found) << name;
    }
    // Routing fields are present.
    EXPECT_NE(proxy.find_field(naming::kProxyNodeField), nullptr);
    EXPECT_NE(proxy.find_field(naming::kProxyOidField), nullptr);
}

TEST(Pipeline, FactoryShapesMatchPaper) {
    model::ClassPool original = pool_of(kApp);
    PipelineResult result = run_pipeline(original);
    const model::ClassFile& of = result.pool.get("Counter_O_Factory");
    const model::Method* make = of.find_method("make", "()LCounter_O_Int;");
    ASSERT_NE(make, nullptr);
    EXPECT_TRUE(make->is_native);
    EXPECT_TRUE(make->is_static);
    const model::Method* init = of.find_method("init", "(LCounter_O_Int;I)V");
    ASSERT_NE(init, nullptr);
    EXPECT_FALSE(init->is_native);

    const model::ClassFile& cfac = result.pool.get("Counter_C_Factory");
    EXPECT_NE(cfac.find_method("discover", "()LCounter_C_Int;"), nullptr);
    EXPECT_NE(cfac.find_method("clinit", "(LCounter_C_Int;)V"), nullptr);
    EXPECT_NE(cfac.find_method("call_track", "()I"), nullptr);
}

TEST(Pipeline, SingletonDeclarationsOnCLocal) {
    model::ClassPool original = pool_of(kApp);
    PipelineResult result = run_pipeline(original);
    const model::ClassFile& clocal = result.pool.get("Counter_C_Local");
    const model::Field* me = clocal.find_field("me");
    ASSERT_NE(me, nullptr);
    EXPECT_TRUE(me->is_static);
    EXPECT_EQ(me->type.descriptor(), "LCounter_C_Int;");
    EXPECT_NE(clocal.find_method("get_me", "()LCounter_C_Int;"), nullptr);
}

TEST(Pipeline, MapMethodDesc) {
    model::ClassPool original = pool_of(kApp);
    PipelineResult result = run_pipeline(original);
    EXPECT_EQ(result.report.map_method_desc(original, "(LCounter;I)LCounter;"),
              "(LCounter_O_Int;I)LCounter_O_Int;");
    EXPECT_EQ(result.report.map_method_desc(original, "(S)V"), "(S)V");
}

TEST(Pipeline, EmptyPool) {
    model::ClassPool original;
    PipelineResult result = run_pipeline(original);
    EXPECT_EQ(result.pool.size(), 0u);
    EXPECT_TRUE(result.report.substituted_classes().empty());
}

}  // namespace
}  // namespace rafda::transform
