#include "transform/rewriter.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "transform/naming.hpp"

namespace rafda::transform {
namespace {

using model::Op;

struct Fixture {
    model::ClassPool pool;
    Analysis analysis;
    Substitutables subst;

    Fixture()
        : pool(make_pool()), analysis(analyze(pool)), subst(pool, analysis) {}

    static model::ClassPool make_pool() {
        model::ClassPool pool;
        model::assemble_into(pool, R"(
class Y {
  static field K LY;
  method n (J)I {
    const 0
    returnvalue
  }
}
class Z {
  ctor (LY;)V {
    return
  }
  method q (I)I {
    load 1
    returnvalue
  }
}
class X {
  field y LY;
  static field z LZ;
  ctor (LY;)V {
    load 0
    load 1
    putfield X.y LY;
    return
  }
  method m (J)I {
    load 0
    getfield X.y LY;
    load 1
    invokevirtual Y.n (J)I
    returnvalue
  }
  static method p (I)I {
    getstatic X.z LZ;
    load 0
    invokevirtual Z.q (I)I
    returnvalue
  }
}
class NativeOne {
  native method raw ()V
  method useIt ()V {
    return
  }
}
)");
        return pool;
    }

    model::Code rewrite(const char* cls, const char* method, const char* desc,
                        bool static_family = false) {
        const model::Method* m = pool.get(cls).find_method(method, desc);
        EXPECT_NE(m, nullptr);
        RewriteContext ctx{&subst, cls, static_family};
        return rewrite_code(ctx, m->code);
    }
};

TEST(MapType, MapsSubstitutableRefs) {
    Fixture f;
    EXPECT_EQ(map_type(f.subst, model::TypeDesc::ref("Y")).descriptor(), "LY_O_Int;");
    EXPECT_EQ(map_type(f.subst, model::TypeDesc::ref("NativeOne")).descriptor(),
              "LNativeOne;");
    EXPECT_EQ(map_type(f.subst, model::TypeDesc::int_()).descriptor(), "I");
}

TEST(MapSig, MapsParamsAndReturn) {
    Fixture f;
    model::MethodSig sig = model::MethodSig::parse("(JLY;)LZ;");
    EXPECT_EQ(map_sig(f.subst, sig).descriptor(), "(JLY_O_Int;)LZ_O_Int;");
}

TEST(MapType, FilteredSubstitutablesKeepUnselectedRaw) {
    Fixture f;
    Substitutables only_y(f.pool, f.analysis, {"Y"});
    EXPECT_EQ(map_type(only_y, model::TypeDesc::ref("Y")).descriptor(), "LY_O_Int;");
    EXPECT_EQ(map_type(only_y, model::TypeDesc::ref("Z")).descriptor(), "LZ;");
    EXPECT_FALSE(only_y.contains("Z"));
    EXPECT_TRUE(only_y.contains("Y"));
    // A filter can never make a non-transformable class substitutable.
    Substitutables bogus(f.pool, f.analysis, {"NativeOne"});
    EXPECT_FALSE(bogus.contains("NativeOne"));
}

TEST(Rewriter, FieldAccessBecomesInterfaceCall) {
    Fixture f;
    model::Code code = f.rewrite("X", "m", "(J)I");
    // load 0; getfield -> invokeinterface X_O_Int.get_y; load 1;
    // invokevirtual Y.n -> invokeinterface Y_O_Int.n
    ASSERT_EQ(code.instrs.size(), 5u);
    EXPECT_EQ(code.instrs[1].op, Op::InvokeInterface);
    EXPECT_EQ(code.instrs[1].owner, "X_O_Int");
    EXPECT_EQ(code.instrs[1].member, "get_y");
    EXPECT_EQ(code.instrs[1].desc, "()LY_O_Int;");
    EXPECT_EQ(code.instrs[3].op, Op::InvokeInterface);
    EXPECT_EQ(code.instrs[3].owner, "Y_O_Int");
    EXPECT_EQ(code.instrs[3].desc, "(J)I");
}

TEST(Rewriter, PutFieldBecomesSetter) {
    Fixture f;
    model::Code code = f.rewrite("X", "<init>", "(LY;)V");
    ASSERT_EQ(code.instrs.size(), 4u);
    EXPECT_EQ(code.instrs[2].op, Op::InvokeInterface);
    EXPECT_EQ(code.instrs[2].owner, "X_O_Int");
    EXPECT_EQ(code.instrs[2].member, "set_y");
    EXPECT_EQ(code.instrs[2].desc, "(LY_O_Int;)V");
}

TEST(Rewriter, GetStaticOutsideOwnerUsesDiscover) {
    Fixture f;
    // Static method p rewritten for the static family: getstatic X.z is a
    // self access -> load 0 + get_z (paper Fig 4).
    model::Code code = f.rewrite("X", "p", "(I)I", /*static_family=*/true);
    EXPECT_EQ(code.instrs[0].op, Op::Load);
    EXPECT_EQ(code.instrs[0].a, 0);
    EXPECT_EQ(code.instrs[1].op, Op::InvokeInterface);
    EXPECT_EQ(code.instrs[1].owner, "X_C_Int");
    EXPECT_EQ(code.instrs[1].member, "get_z");
    // Param slot shifted by one (instance receiver now occupies slot 0).
    EXPECT_EQ(code.instrs[2].op, Op::Load);
    EXPECT_EQ(code.instrs[2].a, 1);
    // Z.q virtual call becomes an interface call.
    EXPECT_EQ(code.instrs[3].owner, "Z_O_Int");
    EXPECT_EQ(code.max_locals, 2);
}

TEST(Rewriter, GetStaticFromOtherClassUsesDiscover) {
    model::ClassPool pool;
    model::assemble_into(pool, R"(
class A {
  static field v I
}
class B {
  static method read ()I {
    getstatic A.v I
    returnvalue
  }
  static method write (I)V {
    load 0
    putstatic A.v I
    return
  }
}
)");
    Analysis analysis = analyze(pool);
    Substitutables subst(pool, analysis);
    RewriteContext ctx{&subst, "B", true};
    model::Code read = rewrite_code(ctx, pool.get("B").find_method("read", "()I")->code);
    ASSERT_EQ(read.instrs.size(), 3u);
    EXPECT_EQ(read.instrs[0].op, Op::InvokeStatic);
    EXPECT_EQ(read.instrs[0].owner, "A_C_Factory");
    EXPECT_EQ(read.instrs[0].member, "discover");
    EXPECT_EQ(read.instrs[1].op, Op::InvokeInterface);
    EXPECT_EQ(read.instrs[1].owner, "A_C_Int");
    EXPECT_EQ(read.instrs[1].member, "get_v");

    model::Code write = rewrite_code(ctx, pool.get("B").find_method("write", "(I)V")->code);
    // load, discover, swap, set_v, return
    ASSERT_EQ(write.instrs.size(), 5u);
    EXPECT_EQ(write.instrs[1].member, "discover");
    EXPECT_EQ(write.instrs[2].op, Op::Swap);
    EXPECT_EQ(write.instrs[3].member, "set_v");
}

TEST(Rewriter, NewPlusCtorBecomesFactoryMakeInit) {
    model::ClassPool pool;
    model::assemble_into(pool, R"(
class Z {
  ctor (I)V {
    return
  }
}
class User {
  static method mk ()LZ; {
    new Z
    dup
    const 7
    invokespecial Z.<init> (I)V
    returnvalue
  }
}
)");
    Analysis analysis = analyze(pool);
    Substitutables subst(pool, analysis);
    RewriteContext ctx{&subst, "User", false};
    model::Code code = rewrite_code(ctx, pool.get("User").find_method("mk", "()LZ;")->code);
    ASSERT_EQ(code.instrs.size(), 5u);
    EXPECT_EQ(code.instrs[0].op, Op::InvokeStatic);
    EXPECT_EQ(code.instrs[0].owner, "Z_O_Factory");
    EXPECT_EQ(code.instrs[0].member, "make");
    EXPECT_EQ(code.instrs[0].desc, "()LZ_O_Int;");
    EXPECT_EQ(code.instrs[3].op, Op::InvokeStatic);
    EXPECT_EQ(code.instrs[3].owner, "Z_O_Factory");
    EXPECT_EQ(code.instrs[3].member, "init");
    EXPECT_EQ(code.instrs[3].desc, "(LZ_O_Int;I)V");
}

TEST(Rewriter, StaticCallBecomesForwarder) {
    model::ClassPool pool;
    model::assemble_into(pool, R"(
class Lib {
  static method twice (I)I {
    load 0
    const 2
    mul
    returnvalue
  }
}
class User {
  static method f (I)I {
    load 0
    invokestatic Lib.twice (I)I
    returnvalue
  }
}
)");
    Analysis analysis = analyze(pool);
    Substitutables subst(pool, analysis);
    RewriteContext ctx{&subst, "User", false};
    model::Code code =
        rewrite_code(ctx, pool.get("User").find_method("f", "(I)I")->code);
    EXPECT_EQ(code.instrs[1].op, Op::InvokeStatic);
    EXPECT_EQ(code.instrs[1].owner, "Lib_C_Factory");
    EXPECT_EQ(code.instrs[1].member, "call_twice");
}

TEST(Rewriter, StaticCallResolvedToDeclaringClass) {
    model::ClassPool pool;
    model::assemble_into(pool, R"(
class Base {
  static method util ()I {
    const 9
    returnvalue
  }
}
class Derived extends Base {
}
class User {
  static method f ()I {
    invokestatic Derived.util ()I
    returnvalue
  }
}
)");
    Analysis analysis = analyze(pool);
    Substitutables subst(pool, analysis);
    RewriteContext ctx{&subst, "User", false};
    model::Code code = rewrite_code(ctx, pool.get("User").find_method("f", "()I")->code);
    EXPECT_EQ(code.instrs[0].owner, "Base_C_Factory");
}

TEST(Rewriter, NonTransformableOperandsUntouched) {
    Fixture f;
    model::Code code = f.rewrite("NativeOne", "useIt", "()V");
    ASSERT_EQ(code.instrs.size(), 1u);
    EXPECT_EQ(code.instrs[0].op, Op::Return);
}

TEST(Rewriter, BranchTargetsRemapped) {
    model::ClassPool pool;
    model::assemble_into(pool, R"(
class Box {
  field v I
  ctor ()V {
    return
  }
}
class User {
  static method count (LBox;I)I {
    locals 3
    const 0
    store 2
  Top:
    load 2
    load 1
    cmpge
    iftrue Done
    load 0
    load 0
    getfield Box.v I
    const 1
    add
    putfield Box.v I
    load 2
    const 1
    add
    store 2
    goto Top
  Done:
    load 0
    getfield Box.v I
    returnvalue
  }
}
)");
    Analysis analysis = analyze(pool);
    Substitutables subst(pool, analysis);
    RewriteContext ctx{&subst, "User", false};
    const model::Code& original =
        pool.get("User").find_method("count", "(LBox;I)I")->code;
    model::Code code = rewrite_code(ctx, original);
    // getfield/putfield became interface calls: same instruction count here
    // (1->1 rewrites), but targets must still point at the same logical
    // positions.  Find the iftrue and goto and check they are in range and
    // consistent.
    int iftrue_target = -1, goto_target = -1;
    for (const model::Instruction& i : code.instrs) {
        if (i.op == Op::IfTrue) iftrue_target = i.a;
        if (i.op == Op::Goto) goto_target = i.a;
    }
    ASSERT_GE(iftrue_target, 0);
    ASSERT_GE(goto_target, 0);
    // goto jumps back to the loop head (pc 2: first instr after store 2).
    EXPECT_EQ(goto_target, 2);
    // iftrue jumps to the load 0 before the final getfield.
    EXPECT_EQ(code.instrs[static_cast<std::size_t>(iftrue_target)].op, Op::Load);
    // And the rewritten code must itself be branch-consistent: the
    // instruction before iftrue's target is the goto.
    EXPECT_EQ(code.instrs[static_cast<std::size_t>(iftrue_target) - 1].op, Op::Goto);
}

TEST(Rewriter, ExpandingRewriteShiftsLaterTargets) {
    // putstatic expands 1 -> 3 instructions; a branch over it must be
    // remapped to the new position.
    model::ClassPool pool;
    model::assemble_into(pool, R"(
class A {
  static field v I
}
class User {
  static method f (Z)I {
    load 0
    iffalse Skip
    const 5
    putstatic A.v I
  Skip:
    const 1
    returnvalue
  }
}
)");
    Analysis analysis = analyze(pool);
    Substitutables subst(pool, analysis);
    RewriteContext ctx{&subst, "User", false};
    model::Code code = rewrite_code(ctx, pool.get("User").find_method("f", "(Z)I")->code);
    // Layout: load, iffalse, const 5, discover, swap, set_v, const 1, returnvalue
    ASSERT_EQ(code.instrs.size(), 8u);
    EXPECT_EQ(code.instrs[1].op, Op::IfFalse);
    EXPECT_EQ(code.instrs[1].a, 6);  // Skip label moved from 4 to 6
}

TEST(Rewriter, HandlersRemapped) {
    model::ClassPool pool;
    model::assemble_into(pool, R"(
special class Thr {
}
class A {
  static field v I
}
class User {
  static method f ()I {
  S:
    const 5
    putstatic A.v I
  E:
    const 0
    returnvalue
  H:
    pop
    const -1
    returnvalue
    catch Thr from S to E using H
  }
}
)");
    Analysis analysis = analyze(pool);
    Substitutables subst(pool, analysis);
    RewriteContext ctx{&subst, "User", false};
    model::Code code = rewrite_code(ctx, pool.get("User").find_method("f", "()I")->code);
    ASSERT_EQ(code.handlers.size(), 1u);
    EXPECT_EQ(code.handlers[0].start, 0);
    EXPECT_EQ(code.handlers[0].end, 4);    // putstatic expanded by 2
    EXPECT_EQ(code.handlers[0].target, 6);
    EXPECT_EQ(code.handlers[0].class_name, "Thr");  // special: untouched
}

}  // namespace
}  // namespace rafda::transform
