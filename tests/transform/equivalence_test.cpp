// Semantic equivalence: for whole guest programs with a printing main, the
// transformed program (locally bound) must produce byte-identical output to
// the original — the paper's core claim ("semantically equivalent
// applications", Sec 1), checked end to end.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"

namespace rafda::transform {
namespace {

/// Runs `main_cls.main ()V` in the original and the transformed program
/// and returns both outputs.
std::pair<std::string, std::string> run_both(const char* src,
                                             const std::string& main_cls = "Main") {
    model::ClassPool original;
    vm::install_prelude(original);
    model::assemble_into(original, src);
    model::verify_pool(original);

    vm::Interpreter orig(original);
    vm::bind_prelude_natives(orig);
    orig.call_static(main_cls, "main", "()V");

    PipelineResult result = run_pipeline(original);
    vm::Interpreter trans(result.pool);
    vm::bind_prelude_natives(trans);
    bind_local_factories(trans, result.report);
    call_transformed_static(trans, original, result.report, main_cls, "main", "()V");

    return {orig.output(), trans.output()};
}

#define EXPECT_EQUIVALENT(src)               \
    do {                                     \
        auto [a, b] = run_both(src);         \
        EXPECT_FALSE(a.empty());             \
        EXPECT_EQ(a, b);                     \
    } while (0)

TEST(Equivalence, ObjectGraphAndVirtualCalls) {
    EXPECT_EQUIVALENT(R"(
class Node {
  field next LNode;
  field value I
  ctor (I)V {
    load 0
    load 1
    putfield Node.value I
    return
  }
  method sum ()I {
    load 0
    getfield Node.next LNode;
    const null
    cmpeq
    iffalse Rec
    load 0
    getfield Node.value I
    returnvalue
  Rec:
    load 0
    getfield Node.value I
    load 0
    getfield Node.next LNode;
    invokevirtual Node.sum ()I
    add
    returnvalue
  }
}
class Main {
  static method main ()V {
    locals 2
    new Node
    dup
    const 1
    invokespecial Node.<init> (I)V
    store 0
    new Node
    dup
    const 2
    invokespecial Node.<init> (I)V
    store 1
    load 0
    load 1
    putfield Node.next LNode;
    const "sum="
    load 0
    invokevirtual Node.sum ()I
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)");
}

TEST(Equivalence, SharedObjectMutation) {
    // The Figure 1 shape: two holders share one C; mutations through one
    // holder are visible through the other.
    EXPECT_EQUIVALENT(R"(
class C {
  field state I
  ctor ()V {
    return
  }
  method poke ()V {
    load 0
    load 0
    getfield C.state I
    const 1
    add
    putfield C.state I
    return
  }
  method read ()I {
    load 0
    getfield C.state I
    returnvalue
  }
}
class A {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield A.c LC;
    return
  }
  method act ()V {
    load 0
    getfield A.c LC;
    invokevirtual C.poke ()V
    return
  }
}
class B {
  field c LC;
  ctor (LC;)V {
    load 0
    load 1
    putfield B.c LC;
    return
  }
  method observe ()I {
    load 0
    getfield B.c LC;
    invokevirtual C.read ()I
    returnvalue
  }
}
class Main {
  static method main ()V {
    locals 3
    new C
    dup
    invokespecial C.<init> ()V
    store 0
    new A
    dup
    load 0
    invokespecial A.<init> (LC;)V
    store 1
    new B
    dup
    load 0
    invokespecial B.<init> (LC;)V
    store 2
    load 1
    invokevirtual A.act ()V
    load 1
    invokevirtual A.act ()V
    const "observed="
    load 2
    invokevirtual B.observe ()I
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)");
}

TEST(Equivalence, StaticsAndClinitOrdering) {
    EXPECT_EQUIVALENT(R"(
class Config {
  static field level I
  static field label S
  clinit {
    const 3
    putstatic Config.level I
    const "cfg-"
    getstatic Config.level I
    concat
    putstatic Config.label S
    return
  }
  static method describe ()S {
    getstatic Config.label S
    const "/"
    concat
    getstatic Config.level I
    concat
    returnvalue
  }
}
class Main {
  static method main ()V {
    invokestatic Config.describe ()S
    invokestatic Sys.println (S)V
    getstatic Config.level I
    const 10
    mul
    putstatic Config.level I
    invokestatic Config.describe ()S
    invokestatic Sys.println (S)V
    return
  }
}
)");
}

TEST(Equivalence, CrossClassStaticDependencies) {
    EXPECT_EQUIVALENT(R"(
class Alpha {
  static field a I
  clinit {
    getstatic Beta.b I
    const 1
    add
    putstatic Alpha.a I
    return
  }
}
class Beta {
  static field b I
  clinit {
    const 41
    putstatic Beta.b I
    return
  }
}
class Main {
  static method main ()V {
    const "alpha="
    getstatic Alpha.a I
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)");
}

TEST(Equivalence, InheritanceAndOverrides) {
    EXPECT_EQUIVALENT(R"(
class Shape {
  field name S
  ctor (S)V {
    load 0
    load 1
    putfield Shape.name S
    return
  }
  method area ()D {
    const 0.0
    returnvalue
  }
  method describe ()S {
    load 0
    getfield Shape.name S
    const ":"
    concat
    load 0
    invokevirtual Shape.area ()D
    concat
    returnvalue
  }
}
class Circle extends Shape {
  field r D
  ctor (D)V {
    load 0
    const "circle"
    invokespecial Shape.<init> (S)V
    load 0
    load 1
    putfield Circle.r D
    return
  }
  method area ()D {
    load 0
    getfield Circle.r D
    load 0
    getfield Circle.r D
    mul
    const 3.14159
    mul
    returnvalue
  }
}
class SquareS extends Shape {
  field s D
  ctor (D)V {
    load 0
    const "square"
    invokespecial Shape.<init> (S)V
    load 0
    load 1
    putfield SquareS.s D
    return
  }
  method area ()D {
    load 0
    getfield SquareS.s D
    load 0
    getfield SquareS.s D
    mul
    returnvalue
  }
}
class Main {
  static method main ()V {
    locals 1
    new Circle
    dup
    const 2.0
    invokespecial Circle.<init> (D)V
    invokevirtual Shape.describe ()S
    invokestatic Sys.println (S)V
    new SquareS
    dup
    const 3.0
    invokespecial SquareS.<init> (D)V
    invokevirtual Shape.describe ()S
    invokestatic Sys.println (S)V
    return
  }
}
)");
}

TEST(Equivalence, UserInterfaceDispatch) {
    EXPECT_EQUIVALENT(R"RIR(
interface Formatter {
  method fmt (I)S
}
class Hex implements Formatter {
  ctor ()V {
    return
  }
  method fmt (I)S {
    const "hexish("
    load 1
    concat
    const ")"
    concat
    returnvalue
  }
}
class Plain implements Formatter {
  ctor ()V {
    return
  }
  method fmt (I)S {
    const ""
    load 1
    concat
    returnvalue
  }
}
class Main {
  static method use (LFormatter;I)V {
    load 0
    load 1
    invokeinterface Formatter.fmt (I)S
    invokestatic Sys.println (S)V
    return
  }
  static method main ()V {
    new Hex
    dup
    invokespecial Hex.<init> ()V
    const 10
    invokestatic Main.use (LFormatter;I)V
    new Plain
    dup
    invokespecial Plain.<init> ()V
    const 11
    invokestatic Main.use (LFormatter;I)V
    return
  }
}
)RIR");
}

TEST(Equivalence, ExceptionsAcrossTransformedCode) {
    EXPECT_EQUIVALENT(R"(
class Risky {
  field limit I
  ctor (I)V {
    load 0
    load 1
    putfield Risky.limit I
    return
  }
  method check (I)I {
    load 1
    load 0
    getfield Risky.limit I
    cmpgt
    iffalse Ok
    new Throwable
    dup
    const "limit exceeded"
    invokespecial Throwable.<init> (S)V
    throw
  Ok:
    load 1
    returnvalue
  }
}
class Main {
  static method tryOne (LRisky;I)V {
  S:
    load 0
    load 1
    invokevirtual Risky.check (I)I
    const "ok:"
    swap
    concat
    invokestatic Sys.println (S)V
    return
  E:
    nop
  H:
    invokevirtual Throwable.getMsg ()S
    const "caught:"
    swap
    concat
    invokestatic Sys.println (S)V
    return
    catch Throwable from S to E using H
  }
  static method main ()V {
    locals 1
    new Risky
    dup
    const 5
    invokespecial Risky.<init> (I)V
    store 0
    load 0
    const 3
    invokestatic Main.tryOne (LRisky;I)V
    load 0
    const 9
    invokestatic Main.tryOne (LRisky;I)V
    return
  }
}
)");
}

TEST(Equivalence, LoopsAndArithmetic) {
    EXPECT_EQUIVALENT(R"(
class Acc {
  field total J
  ctor ()V {
    return
  }
  method add (J)V {
    load 0
    load 0
    getfield Acc.total J
    load 1
    add
    putfield Acc.total J
    return
  }
}
class Main {
  static method main ()V {
    locals 2
    new Acc
    dup
    invokespecial Acc.<init> ()V
    store 0
    const 0
    store 1
  Top:
    load 1
    const 20
    cmpge
    iftrue Done
    load 0
    load 1
    load 1
    mul
    conv J
    invokevirtual Acc.add (J)V
    load 1
    const 1
    add
    store 1
    goto Top
  Done:
    const "total="
    load 0
    getfield Acc.total J
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)");
}

TEST(Equivalence, MixedTransformableAndNot) {
    // Helper has a native method: stays untouched; Main still transforms.
    model::ClassPool original;
    vm::install_prelude(original);
    model::assemble_into(original, R"(
class RawHelper {
  native static method magic (I)I
}
class Main {
  static method main ()V {
    const "magic="
    const 5
    invokestatic RawHelper.magic (I)I
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)");
    model::verify_pool(original);

    auto bind_magic = [](vm::Interpreter& vm) {
        vm.register_native("RawHelper", "magic", "(I)I",
                           [](vm::Interpreter&, const vm::Value&, std::vector<vm::Value> a) {
                               return vm::Value::of_int(a.at(0).as_int() * 111);
                           });
    };

    vm::Interpreter orig(original);
    vm::bind_prelude_natives(orig);
    bind_magic(orig);
    orig.call_static("Main", "main", "()V");

    PipelineResult result = run_pipeline(original);
    EXPECT_FALSE(result.report.substituted("RawHelper"));
    EXPECT_TRUE(result.report.substituted("Main"));

    vm::Interpreter trans(result.pool);
    vm::bind_prelude_natives(trans);
    bind_magic(trans);
    bind_local_factories(trans, result.report);
    call_transformed_static(trans, original, result.report, "Main", "main", "()V");

    EXPECT_EQ(orig.output(), trans.output());
    EXPECT_EQ(orig.output(), "magic=555\n");
}

TEST(Equivalence, StaticStateSharedAcrossCallSites) {
    EXPECT_EQUIVALENT(R"(
class Registry {
  static field count I
  static method register ()I {
    getstatic Registry.count I
    const 1
    add
    dup
    putstatic Registry.count I
    returnvalue
  }
}
class Client {
  ctor ()V {
    return
  }
  method join ()I {
    invokestatic Registry.register ()I
    returnvalue
  }
}
class Main {
  static method main ()V {
    new Client
    dup
    invokespecial Client.<init> ()V
    invokevirtual Client.join ()I
    pop
    invokestatic Registry.register ()I
    pop
    new Client
    dup
    invokespecial Client.<init> ()V
    invokevirtual Client.join ()I
    const "registered="
    swap
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)");
}

}  // namespace
}  // namespace rafda::transform
