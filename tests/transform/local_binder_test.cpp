// Single-address-space factory bindings (the paper's implemented status:
// "a local version of the transformed application", Sec 4).
#include "transform/local_binder.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "transform/pipeline.hpp"
#include "vm/prelude.hpp"

namespace rafda::transform {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Thing {
  field id I
  static field made I
  ctor (I)V {
    load 0
    load 1
    putfield Thing.id I
    getstatic Thing.made I
    const 1
    add
    putstatic Thing.made I
    return
  }
  method id ()I {
    load 0
    getfield Thing.id I
    returnvalue
  }
  static method made ()I {
    getstatic Thing.made I
    returnvalue
  }
  clinit {
    const 100
    putstatic Thing.made I
    return
  }
}
)";

struct BinderFixture : ::testing::Test {
    model::ClassPool original;
    std::unique_ptr<PipelineResult> result;
    std::unique_ptr<vm::Interpreter> interp;

    void SetUp() override {
        vm::install_prelude(original);
        model::assemble_into(original, kApp);
        model::verify_pool(original);
        result = std::make_unique<PipelineResult>(run_pipeline(original));
        interp = std::make_unique<vm::Interpreter>(result->pool);
        vm::bind_prelude_natives(*interp);
        bind_local_factories(*interp, result->report);
    }
};

TEST_F(BinderFixture, MakeCreatesDistinctLocals) {
    Value a = interp->call_static("Thing_O_Factory", "make", "()LThing_O_Int;");
    Value b = interp->call_static("Thing_O_Factory", "make", "()LThing_O_Int;");
    EXPECT_NE(a.as_ref(), b.as_ref());
    EXPECT_EQ(interp->class_of(a.as_ref()).name, "Thing_O_Local");
}

TEST_F(BinderFixture, InitRunsOriginalCtorLogic) {
    Value t = interp->call_static("Thing_O_Factory", "make", "()LThing_O_Int;");
    interp->call_static("Thing_O_Factory", "init", "(LThing_O_Int;I)V",
                        {t, Value::of_int(9)});
    EXPECT_EQ(interp->call_virtual(t, "id", "()I").as_int(), 9);
}

TEST_F(BinderFixture, DiscoverCachesSingletonAndRunsClinitOnce) {
    Value me1 = interp->call_static("Thing_C_Factory", "discover", "()LThing_C_Int;");
    Value me2 = interp->call_static("Thing_C_Factory", "discover", "()LThing_C_Int;");
    EXPECT_EQ(me1.as_ref(), me2.as_ref());
    // clinit seeded `made` to 100, exactly once.
    EXPECT_EQ(interp->call_virtual(me1, "made", "()I").as_int(), 100);
}

TEST_F(BinderFixture, CtorSideEffectsReachTheSingleton) {
    // Constructing instances (via init) bumps the static counter held by
    // the singleton — statics made non-static still behave like statics.
    Value t = interp->call_static("Thing_O_Factory", "make", "()LThing_O_Int;");
    interp->call_static("Thing_O_Factory", "init", "(LThing_O_Int;I)V",
                        {t, Value::of_int(1)});
    EXPECT_EQ(call_transformed_static(*interp, original, result->report, "Thing", "made",
                                      "()I")
                  .as_int(),
              101);
}

TEST_F(BinderFixture, CallTransformedStaticMapsDescriptors) {
    // Original descriptor mentions Thing; the helper maps it and routes the
    // call through discover + interface dispatch.
    Value t = interp->call_static("Thing_O_Factory", "make", "()LThing_O_Int;");
    interp->call_static("Thing_O_Factory", "init", "(LThing_O_Int;I)V",
                        {t, Value::of_int(5)});
    Value n = call_transformed_static(*interp, original, result->report, "Thing", "made",
                                      "()I");
    EXPECT_EQ(n.as_int(), 101);
}

TEST_F(BinderFixture, NonSubstitutedClassFallsThrough) {
    // Sys is non-transformable: the helper calls it directly.
    call_transformed_static(*interp, original, result->report, "Sys", "println", "(S)V",
                            {Value::of_str("direct")});
    EXPECT_EQ(interp->output(), "direct\n");
}

}  // namespace
}  // namespace rafda::transform
