// The pipeline's central parallel-correctness contract: the transformed
// pool is byte-identical (via save_pool) at every thread count, because
// per-class artefacts are produced independently and merged in input name
// order.  These tests pin that contract on both corpus generators and on
// the environment-variable thread knob.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "corpus/jdk_corpus.hpp"
#include "corpus/program_gen.hpp"
#include "model/binio.hpp"
#include "obs/metrics.hpp"
#include "transform/pipeline.hpp"

namespace rafda::transform {
namespace {

Bytes transformed_bytes(const model::ClassPool& pool, std::size_t threads) {
    PipelineOptions opts;
    opts.threads = threads;
    PipelineResult result = run_pipeline(pool, opts);
    return model::save_pool(result.pool);
}

void check_identical_across_threads(const model::ClassPool& pool) {
    Bytes serial = transformed_bytes(pool, 1);
    for (std::size_t threads : {2u, 8u}) {
        Bytes par = transformed_bytes(pool, threads);
        ASSERT_EQ(par, serial) << "output differs at " << threads << " threads";
    }
}

TEST(PipelineDeterminism, JdkCorpusIdenticalAcrossThreadCounts) {
    corpus::JdkCorpusParams params;
    params.total_types = 420;  // small enough to keep the test quick
    check_identical_across_threads(corpus::generate_jdk_corpus(params));
}

TEST(PipelineDeterminism, ProgramSeedsIdenticalAcrossThreadCounts) {
    for (std::uint64_t seed : {3u, 5u, 7u}) {
        corpus::ProgramParams params;
        params.classes = 24;
        params.seed = seed;
        check_identical_across_threads(corpus::generate_program(params));
    }
}

TEST(PipelineDeterminism, SubstitutionReportIdenticalAcrossThreadCounts) {
    corpus::JdkCorpusParams params;
    params.total_types = 420;
    model::ClassPool pool = corpus::generate_jdk_corpus(params);

    PipelineOptions serial_opts;
    serial_opts.threads = 1;
    PipelineResult serial = run_pipeline(pool, serial_opts);

    PipelineOptions par_opts;
    par_opts.threads = 8;
    PipelineResult par = run_pipeline(pool, par_opts);

    EXPECT_EQ(par.report.substituted_classes(), serial.report.substituted_classes());
    EXPECT_EQ(par.report.protocols(), serial.report.protocols());
}

TEST(PipelineDeterminism, EnvKnobControlsDefaultThreadCount) {
    ASSERT_EQ(::setenv("RAFDA_TRANSFORM_THREADS", "3", 1), 0);
    EXPECT_EQ(resolve_transform_threads(0), 3u);
    // An explicit request always wins over the environment.
    EXPECT_EQ(resolve_transform_threads(2), 2u);

    ASSERT_EQ(::setenv("RAFDA_TRANSFORM_THREADS", "0", 1), 0);
    EXPECT_GE(resolve_transform_threads(0), 1u);  // invalid -> hardware default
    ASSERT_EQ(::setenv("RAFDA_TRANSFORM_THREADS", "junk", 1), 0);
    EXPECT_GE(resolve_transform_threads(0), 1u);

    ASSERT_EQ(::unsetenv("RAFDA_TRANSFORM_THREADS"), 0);
    EXPECT_GE(resolve_transform_threads(0), 1u);

    // The env-selected count feeds the pipeline and the output is still the
    // serial bytes.
    corpus::ProgramParams params;
    params.classes = 12;
    model::ClassPool pool = corpus::generate_program(params);
    Bytes serial = transformed_bytes(pool, 1);
    ASSERT_EQ(::setenv("RAFDA_TRANSFORM_THREADS", "4", 1), 0);
    Bytes via_env = transformed_bytes(pool, 0);
    ASSERT_EQ(::unsetenv("RAFDA_TRANSFORM_THREADS"), 0);
    EXPECT_EQ(via_env, serial);
}

TEST(PipelineDeterminism, MetricsRecordPhaseTimesAndPoolShape) {
    corpus::ProgramParams params;
    params.classes = 12;
    model::ClassPool pool = corpus::generate_program(params);

    obs::Registry reg;
    PipelineOptions opts;
    opts.threads = 2;
    opts.metrics = &reg;
    (void)run_pipeline(pool, opts);

    const obs::Counter* runs = reg.find_counter("transform.runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->value(), 1u);
    EXPECT_NE(reg.find_counter("transform.analyze_us"), nullptr);
    EXPECT_NE(reg.find_counter("transform.generate_us"), nullptr);
    EXPECT_NE(reg.find_counter("transform.verify_us"), nullptr);
    const obs::Gauge* threads = reg.find_gauge("transform.pool.threads");
    ASSERT_NE(threads, nullptr);
    EXPECT_EQ(threads->value(), 2);
    const obs::Counter* tasks = reg.find_counter("transform.pool.tasks");
    ASSERT_NE(tasks, nullptr);
    EXPECT_GT(tasks->value(), 0u);
}

}  // namespace
}  // namespace rafda::transform
