#include "model/classfile.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"

namespace rafda::model {
namespace {

ClassFile parse_one(const char* src) {
    std::vector<ClassFile> classes = assemble(src);
    return std::move(classes.at(0));
}

TEST(ClassFile, FindFieldAndMethod) {
    ClassFile cf = parse_one(R"(
class A {
  field x I
  static field y J
  method m (I)I {
    load 1
    returnvalue
  }
  method m (J)J {
    load 1
    returnvalue
  }
}
)");
    EXPECT_NE(cf.find_field("x"), nullptr);
    EXPECT_NE(cf.find_field("y"), nullptr);
    EXPECT_EQ(cf.find_field("z"), nullptr);
    // Overloads are distinguished by descriptor.
    EXPECT_NE(cf.find_method("m", "(I)I"), nullptr);
    EXPECT_NE(cf.find_method("m", "(J)J"), nullptr);
    EXPECT_EQ(cf.find_method("m", "(D)D"), nullptr);
    EXPECT_EQ(cf.methods_named("m").size(), 2u);
}

TEST(ClassFile, ClinitDetection) {
    ClassFile with = parse_one(R"(
class A {
  static field x I
  clinit {
    const 1
    putstatic A.x I
    return
  }
}
)");
    EXPECT_TRUE(with.has_clinit());
    ClassFile without = parse_one("class B {\n}\n");
    EXPECT_FALSE(without.has_clinit());
}

TEST(ClassFile, ReferencedClassesCoverAllEdges) {
    std::vector<ClassFile> classes = assemble(R"(
special class Err {
}
interface Api {
  method f ()V
}
class Dep {
}
class FieldDep {
}
class SigDep {
}
class ArrDep {
}
class Subject extends Dep implements Api {
  field fd LFieldDep;
  method f ()V {
    return
  }
  method g (LSigDep;)[LArrDep; {
    locals 1
  S:
    const 1
    newarray LArrDep;
    store 2
  E:
    load 2
    returnvalue
  H:
    pop
    load 2
    returnvalue
    catch Err from S to E using H
  }
}
)");
    const ClassFile& subject = classes.back();
    std::vector<std::string> refs = subject.referenced_classes();
    for (const char* expected : {"Dep", "Api", "FieldDep", "SigDep", "Err"}) {
        EXPECT_TRUE(std::find(refs.begin(), refs.end(), expected) != refs.end())
            << expected;
    }
    // Self-references are excluded.
    EXPECT_TRUE(std::find(refs.begin(), refs.end(), "Subject") == refs.end());
}

TEST(ClassFile, ParamSlots) {
    ClassFile cf = parse_one(R"(
class A {
  method inst (IJ)V {
    return
  }
  static method stat (IJ)V {
    return
  }
}
)");
    EXPECT_EQ(cf.methods[0].param_slots(), 3);  // this + 2
    EXPECT_EQ(cf.methods[1].param_slots(), 2);
}

TEST(ClassFile, NativeDetection) {
    ClassFile cf = parse_one(R"(
class A {
  native method n ()V
  method m ()V {
    return
  }
}
)");
    EXPECT_TRUE(cf.has_native_method());
    ClassFile clean = parse_one("class B {\n method m ()V {\n return\n }\n}\n");
    EXPECT_FALSE(clean.has_native_method());
}

TEST(ClassFile, ReferencedClassesCachedMatchesUncached) {
    ClassPool pool;
    assemble_into(pool, R"(
class Dep {
}
class Other {
}
class Subject extends Dep {
  field o LOther;
}
)");
    const ClassFile& subject = *pool.find("Subject");
    const std::vector<std::string>& cached =
        subject.referenced_classes_cached(pool.generation());
    EXPECT_EQ(cached, subject.referenced_classes());
    // Same generation: the memoized vector itself is returned.
    const std::vector<std::string>& again =
        subject.referenced_classes_cached(pool.generation());
    EXPECT_EQ(&again, &cached);
}

TEST(ClassFile, ReferencedClassesCacheInvalidatesOnGenerationBump) {
    ClassPool pool;
    assemble_into(pool, R"(
class Dep {
}
class NewSuper {
}
class Subject extends Dep {
}
)");
    const ClassFile* subject = pool.find("Subject");
    std::vector<std::string> before =
        subject->referenced_classes_cached(pool.generation());
    EXPECT_EQ(before, (std::vector<std::string>{"Dep"}));

    // get_mutable bumps the pool generation; the next cached call with the
    // new stamp must recompute and see the rewritten hierarchy.
    pool.get_mutable("Subject").super_name = "NewSuper";
    std::vector<std::string> after =
        subject->referenced_classes_cached(pool.generation());
    EXPECT_EQ(after, (std::vector<std::string>{"NewSuper"}));
}

TEST(ClassFile, ReferencedClassesCacheResetsOnCopyAndMove) {
    ClassPool pool;
    assemble_into(pool, R"(
class Dep {
}
class Subject extends Dep {
}
)");
    const ClassFile& subject = *pool.find("Subject");
    (void)subject.referenced_classes_cached(pool.generation());  // warm cache

    // A copy (or move) dropped into another pool must not reuse the old
    // stamp: the other pool's counter could coincide while its contents
    // differ.  Passing the warmed stamp to the copy must still recompute —
    // observable because the copy's hierarchy is edited pre-call.
    ClassFile copy = subject;
    copy.super_name = "Elsewhere";
    std::vector<std::string> refs = copy.referenced_classes_cached(pool.generation());
    EXPECT_EQ(refs, (std::vector<std::string>{"Elsewhere"}));

    ClassFile moved = std::move(copy);
    moved.super_name = "Dep";
    EXPECT_EQ(moved.referenced_classes_cached(pool.generation()),
              (std::vector<std::string>{"Dep"}));
}

TEST(ClassFile, ReferencedClassesCachedNeverTrustsGenerationZero) {
    // Generation 0 marks "never filled"; a caller passing 0 (no pool) must
    // always get a fresh computation, not a stale hit.
    ClassFile cf = parse_one("class A extends B {\n}\n");
    EXPECT_EQ(cf.referenced_classes_cached(0), (std::vector<std::string>{"B"}));
    cf.super_name = "C";
    EXPECT_EQ(cf.referenced_classes_cached(0), (std::vector<std::string>{"C"}));
}

}  // namespace
}  // namespace rafda::model
