// Printer/assembler round-trip as a property, swept over generated
// programs and their transformed pools: print_pool output must reassemble
// into a structurally identical pool (and still verify).
#include "model/printer.hpp"

#include <gtest/gtest.h>

#include "corpus/program_gen.hpp"
#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "transform/pipeline.hpp"

namespace rafda::model {
namespace {

void expect_pools_equal(const ClassPool& a, const ClassPool& b) {
    ASSERT_EQ(a.all_names(), b.all_names());
    for (const std::string& name : a.all_names()) {
        const ClassFile& ca = a.get(name);
        const ClassFile& cb = b.get(name);
        EXPECT_EQ(ca.super_name, cb.super_name) << name;
        EXPECT_EQ(ca.interfaces, cb.interfaces) << name;
        EXPECT_EQ(ca.is_interface, cb.is_interface) << name;
        EXPECT_EQ(ca.is_special, cb.is_special) << name;
        ASSERT_EQ(ca.fields.size(), cb.fields.size()) << name;
        for (std::size_t i = 0; i < ca.fields.size(); ++i) {
            EXPECT_EQ(ca.fields[i].name, cb.fields[i].name) << name;
            EXPECT_EQ(ca.fields[i].type, cb.fields[i].type) << name;
            EXPECT_EQ(ca.fields[i].is_static, cb.fields[i].is_static) << name;
            EXPECT_EQ(ca.fields[i].vis, cb.fields[i].vis) << name;
            EXPECT_EQ(ca.fields[i].is_final, cb.fields[i].is_final) << name;
        }
        ASSERT_EQ(ca.methods.size(), cb.methods.size()) << name;
        for (std::size_t i = 0; i < ca.methods.size(); ++i) {
            const Method& ma = ca.methods[i];
            const Method& mb = cb.methods[i];
            EXPECT_EQ(ma.name, mb.name) << name;
            EXPECT_EQ(ma.descriptor(), mb.descriptor()) << name;
            EXPECT_EQ(ma.is_static, mb.is_static) << name;
            EXPECT_EQ(ma.is_native, mb.is_native) << name;
            EXPECT_EQ(ma.is_abstract, mb.is_abstract) << name;
            EXPECT_EQ(ma.code.instrs, mb.code.instrs) << name << "." << ma.name;
            EXPECT_EQ(ma.code.max_locals, mb.code.max_locals) << name << "." << ma.name;
            ASSERT_EQ(ma.code.handlers.size(), mb.code.handlers.size());
            for (std::size_t h = 0; h < ma.code.handlers.size(); ++h) {
                EXPECT_EQ(ma.code.handlers[h].start, mb.code.handlers[h].start);
                EXPECT_EQ(ma.code.handlers[h].end, mb.code.handlers[h].end);
                EXPECT_EQ(ma.code.handlers[h].target, mb.code.handlers[h].target);
                EXPECT_EQ(ma.code.handlers[h].class_name, mb.code.handlers[h].class_name);
            }
        }
    }
}

class RoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripSweep, GeneratedProgramRoundTrips) {
    corpus::ProgramParams params;
    params.seed = GetParam();
    params.classes = 3 + params.seed % 6;
    ClassPool pool = corpus::generate_program(params);

    ClassPool reparsed;
    assemble_into(reparsed, print_pool(pool));
    expect_pools_equal(pool, reparsed);
    EXPECT_TRUE(verify_pool_collect(reparsed).empty());
}

TEST_P(RoundTripSweep, TransformedPoolRoundTrips) {
    corpus::ProgramParams params;
    params.seed = GetParam();
    params.classes = 3 + params.seed % 4;
    ClassPool pool = corpus::generate_program(params);
    transform::PipelineResult result = transform::run_pipeline(pool);

    ClassPool reparsed;
    assemble_into(reparsed, print_pool(result.pool));
    expect_pools_equal(result.pool, reparsed);
    EXPECT_TRUE(verify_pool_collect(reparsed).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweep, ::testing::Range<std::uint64_t>(1, 13));

TEST(Printer, InstructionRendering) {
    EXPECT_EQ(print_instruction(ins::const_long(5)), "const 5L");
    EXPECT_EQ(print_instruction(ins::const_str("a b")), "const \"a b\"");
    EXPECT_EQ(print_instruction(ins::load(3)), "load 3");
    EXPECT_EQ(print_instruction(ins::conv(Kind::Double)), "conv D");
    EXPECT_EQ(print_instruction(
                  ins::get_field("X", "y", TypeDesc::ref("Y"))),
              "getfield X.y LY;");
    EXPECT_EQ(print_instruction(ins::invoke_interface(
                  "X_O_Int", "m", MethodSig::parse("(J)I"))),
              "invokeinterface X_O_Int.m (J)I");
}

TEST(Printer, EscapesStringsInConstants) {
    Instruction i = ins::const_str("say \"hi\"\nplease");
    std::string printed = print_instruction(i);
    // Must reassemble to the same constant.
    std::string src = "class T {\n static method f ()S {\n " + printed +
                      "\n returnvalue\n }\n}\n";
    std::vector<ClassFile> classes = assemble(src);
    EXPECT_EQ(std::get<std::string>(classes[0].methods[0].code.instrs[0].k),
              "say \"hi\"\nplease");
}

}  // namespace
}  // namespace rafda::model
