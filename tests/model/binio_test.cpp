#include "model/binio.hpp"

#include <gtest/gtest.h>

#include "corpus/program_gen.hpp"
#include "model/assembler.hpp"
#include "model/printer.hpp"
#include "model/verifier.hpp"
#include "support/error.hpp"
#include "transform/pipeline.hpp"

namespace rafda::model {
namespace {

void expect_equal(const ClassPool& a, const ClassPool& b) {
    ASSERT_EQ(a.all_names(), b.all_names());
    for (const std::string& name : a.all_names()) {
        // print_class gives a total, human-readable structural comparison.
        EXPECT_EQ(print_class(a.get(name)), print_class(b.get(name))) << name;
    }
}

TEST(BinIo, RoundTripsHandWrittenPool) {
    ClassPool pool;
    assemble_into(pool, R"(
special class Thr {
  field msg S
}
interface Api {
  method f (JLC;)D
}
class C implements Api {
  field private x I
  static field final s S
  ctor (I)V {
    load 0
    load 1
    putfield C.x I
    return
  }
  method f (JLC;)D {
  S:
    const 1.5
    returnvalue
  E:
    nop
  H:
    pop
    const 0.0
    returnvalue
    catch Thr from S to E using H
  }
  native static method peek ()I
  abstract method todo ()V
}
)");
    ClassPool loaded = load_pool(save_pool(pool));
    expect_equal(pool, loaded);
}

class BinIoSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinIoSweep, RoundTripsGeneratedAndTransformedPools) {
    corpus::ProgramParams params;
    params.seed = GetParam();
    params.classes = 3 + params.seed % 5;
    ClassPool pool = corpus::generate_program(params);
    expect_equal(pool, load_pool(save_pool(pool)));

    transform::PipelineResult result = transform::run_pipeline(pool);
    ClassPool loaded = load_pool(save_pool(result.pool));
    expect_equal(result.pool, loaded);
    // The loaded artefact is a complete program: it still verifies.
    EXPECT_TRUE(verify_pool_collect(loaded).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinIoSweep, ::testing::Range<std::uint64_t>(1, 9));

TEST(BinIo, RejectsBadMagic) {
    Bytes junk{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_THROW(load_pool(junk), CodecError);
}

TEST(BinIo, RejectsWrongVersion) {
    ClassPool pool;
    Bytes data = save_pool(pool);
    data[4] = 99;  // version lives after the 4-byte magic
    EXPECT_THROW(load_pool(data), CodecError);
}

TEST(BinIo, RejectsTruncation) {
    ClassPool pool;
    assemble_into(pool, "class A {\n field x I\n}\n");
    Bytes data = save_pool(pool);
    for (std::size_t cut : {data.size() - 1, data.size() / 2, std::size_t{7}}) {
        Bytes truncated(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_THROW(load_pool(truncated), CodecError) << "cut at " << cut;
    }
}

TEST(BinIo, RejectsTrailingBytes) {
    ClassPool pool;
    Bytes data = save_pool(pool);
    data.push_back(0);
    EXPECT_THROW(load_pool(data), CodecError);
}

TEST(BinIo, EmptyPool) {
    ClassPool pool;
    ClassPool loaded = load_pool(save_pool(pool));
    EXPECT_EQ(loaded.size(), 0u);
}

}  // namespace
}  // namespace rafda::model
