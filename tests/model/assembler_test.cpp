#include "model/assembler.hpp"

#include <gtest/gtest.h>

#include "model/printer.hpp"
#include "support/error.hpp"

namespace rafda::model {
namespace {

// The paper's Figure 2 sample class, in RIR form (Z.q and Y.n elided to
// keep the snippet focused on structure).
constexpr const char* kSampleX = R"(
class X {
  field private y LY;
  static field final z LZ;
  ctor (LY;)V {
    load 0
    load 1
    putfield X.y LY;
    return
  }
  protected method m (J)I {
    load 0
    getfield X.y LY;
    load 1
    invokevirtual Y.n (J)I
    returnvalue
  }
  static method p (I)I {
    getstatic X.z LZ;
    load 0
    invokevirtual Z.q (I)I
    returnvalue
  }
  clinit {
    new Z
    dup
    getstatic Y.K LY;
    invokespecial Z.<init> (LY;)V
    putstatic X.z LZ;
    return
  }
}
)";

TEST(Assembler, ParsesSampleClassStructure) {
    std::vector<ClassFile> classes = assemble(kSampleX);
    ASSERT_EQ(classes.size(), 1u);
    const ClassFile& x = classes[0];
    EXPECT_EQ(x.name, "X");
    EXPECT_FALSE(x.is_interface);
    EXPECT_FALSE(x.is_special);
    ASSERT_EQ(x.fields.size(), 2u);
    EXPECT_EQ(x.fields[0].name, "y");
    EXPECT_EQ(x.fields[0].vis, Visibility::Private);
    EXPECT_FALSE(x.fields[0].is_static);
    EXPECT_EQ(x.fields[1].name, "z");
    EXPECT_TRUE(x.fields[1].is_static);
    EXPECT_TRUE(x.fields[1].is_final);

    ASSERT_EQ(x.methods.size(), 4u);
    EXPECT_TRUE(x.methods[0].is_ctor());
    EXPECT_EQ(x.methods[1].name, "m");
    EXPECT_EQ(x.methods[1].vis, Visibility::Protected);
    EXPECT_EQ(x.methods[1].descriptor(), "(J)I");
    EXPECT_TRUE(x.methods[2].is_static);
    EXPECT_TRUE(x.methods[3].is_clinit());
    EXPECT_TRUE(x.methods[3].is_static);
}

TEST(Assembler, ParsesInstructionOperands) {
    std::vector<ClassFile> classes = assemble(kSampleX);
    const Method& m = classes[0].methods[1];
    ASSERT_EQ(m.code.instrs.size(), 5u);
    EXPECT_EQ(m.code.instrs[0].op, Op::Load);
    EXPECT_EQ(m.code.instrs[0].a, 0);
    EXPECT_EQ(m.code.instrs[1].op, Op::GetField);
    EXPECT_EQ(m.code.instrs[1].owner, "X");
    EXPECT_EQ(m.code.instrs[1].member, "y");
    EXPECT_EQ(m.code.instrs[1].desc, "LY;");
    EXPECT_EQ(m.code.instrs[3].op, Op::InvokeVirtual);
    EXPECT_EQ(m.code.instrs[3].owner, "Y");
    EXPECT_EQ(m.code.instrs[3].member, "n");
    EXPECT_EQ(m.code.instrs[3].desc, "(J)I");
    EXPECT_EQ(m.code.max_locals, 2);  // this + long param
}

TEST(Assembler, LabelsAndBranches) {
    const char* src = R"(
class Loop {
  static method count (I)I {
    locals 2
    const 0
    store 1
  Top:
    load 1
    load 0
    cmplt
    iffalse Done
    load 1
    const 1
    add
    store 1
    goto Top
  Done:
    load 1
    returnvalue
  }
}
)";
    std::vector<ClassFile> classes = assemble(src);
    const Method& m = classes[0].methods[0];
    // iffalse targets the pc after the loop body; goto targets pc 2.
    const Instruction* iffalse = nullptr;
    const Instruction* gototop = nullptr;
    for (const Instruction& i : m.code.instrs) {
        if (i.op == Op::IfFalse) iffalse = &i;
        if (i.op == Op::Goto) gototop = &i;
    }
    ASSERT_NE(iffalse, nullptr);
    ASSERT_NE(gototop, nullptr);
    EXPECT_EQ(gototop->a, 2);   // Top: first instruction of the loop test
    EXPECT_EQ(iffalse->a, 11);  // Done: first instruction after the loop
}

TEST(Assembler, ConstVariants) {
    const char* src = R"(
class K {
  static method all ()V {
    const 5
    pop
    const 5L
    pop
    const 1.5
    pop
    const true
    pop
    const false
    pop
    const null
    pop
    const "hi there"
    pop
    const "escaped \" quote"
    pop
    return
  }
}
)";
    std::vector<ClassFile> classes = assemble(src);
    const Method& m = classes[0].methods[0];
    EXPECT_EQ(std::get<std::int32_t>(m.code.instrs[0].k), 5);
    EXPECT_EQ(std::get<std::int64_t>(m.code.instrs[2].k), 5);
    EXPECT_DOUBLE_EQ(std::get<double>(m.code.instrs[4].k), 1.5);
    EXPECT_EQ(std::get<bool>(m.code.instrs[6].k), true);
    EXPECT_EQ(std::get<bool>(m.code.instrs[8].k), false);
    EXPECT_TRUE(std::holds_alternative<Null>(m.code.instrs[10].k));
    EXPECT_EQ(std::get<std::string>(m.code.instrs[12].k), "hi there");
    EXPECT_EQ(std::get<std::string>(m.code.instrs[14].k), "escaped \" quote");
}

TEST(Assembler, InterfaceSyntax) {
    const char* src = R"(
interface Shape {
  method area ()D
  method name ()S
}
interface Solid extends Shape {
  method volume ()D
}
class Cube extends Base implements Shape, Solid {
  method area ()D {
    const 6.0
    returnvalue
  }
  method name ()S {
    const "cube"
    returnvalue
  }
  method volume ()D {
    const 1.0
    returnvalue
  }
}
class Base {
}
)";
    std::vector<ClassFile> classes = assemble(src);
    ASSERT_EQ(classes.size(), 4u);
    EXPECT_TRUE(classes[0].is_interface);
    EXPECT_TRUE(classes[0].methods[0].is_abstract);
    EXPECT_EQ(classes[1].interfaces, (std::vector<std::string>{"Shape"}));
    EXPECT_EQ(classes[2].super_name, "Base");
    EXPECT_EQ(classes[2].interfaces, (std::vector<std::string>{"Shape", "Solid"}));
}

TEST(Assembler, NativeAndAbstractAndSpecial) {
    const char* src = R"(
special class Throwish {
  field msg S
}
class NativeHolder {
  native static method sysCall (I)I
  native method instCall ()V
  abstract method todo ()V
}
)";
    std::vector<ClassFile> classes = assemble(src);
    EXPECT_TRUE(classes[0].is_special);
    EXPECT_TRUE(classes[1].methods[0].is_native);
    EXPECT_TRUE(classes[1].methods[0].is_static);
    EXPECT_TRUE(classes[1].methods[1].is_native);
    EXPECT_FALSE(classes[1].methods[1].is_static);
    EXPECT_TRUE(classes[1].methods[2].is_abstract);
    EXPECT_TRUE(classes[1].has_native_method());
}

TEST(Assembler, CatchDirective) {
    const char* src = R"(
class T {
  static method f ()I {
  TryStart:
    const 1
    pop
  TryEnd:
    const 0
    returnvalue
  Handler:
    pop
    const -1
    returnvalue
    catch Throwable from TryStart to TryEnd using Handler
  }
}
class Throwable {
}
)";
    std::vector<ClassFile> classes = assemble(src);
    const Method& m = classes[0].methods[0];
    ASSERT_EQ(m.code.handlers.size(), 1u);
    EXPECT_EQ(m.code.handlers[0].start, 0);
    EXPECT_EQ(m.code.handlers[0].end, 2);
    EXPECT_EQ(m.code.handlers[0].target, 4);
    EXPECT_EQ(m.code.handlers[0].class_name, "Throwable");
}

TEST(Assembler, ErrorsCarryLineNumbers) {
    try {
        assemble("class X {\n  bogus stuff\n}\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Assembler, RejectsCommonMistakes) {
    EXPECT_THROW(assemble("class X\n"), ParseError);             // missing {
    EXPECT_THROW(assemble("class X {\n"), ParseError);           // unterminated
    EXPECT_THROW(assemble("class X {\n field v V\n}"), ParseError);  // void field
    EXPECT_THROW(assemble("class X {\n static ctor ()V {\n return\n }\n}"), ParseError);
    EXPECT_THROW(assemble("class X {\n method m (I)I\n}"), ParseError);  // no body
    EXPECT_THROW(assemble("class X {\n method m (I)I {\n goto Nowhere\n }\n}"), ParseError);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
    const char* src = R"(
; leading comment
class C {   ; trailing comment on header

  ; comment inside class
  static method f ()I {
    const 3 ; trailing comment on instruction
    returnvalue
  }
}
)";
    std::vector<ClassFile> classes = assemble(src);
    ASSERT_EQ(classes.size(), 1u);
    EXPECT_EQ(std::get<std::int32_t>(classes[0].methods[0].code.instrs[0].k), 3);
}

TEST(Assembler, PrintRoundTrip) {
    std::vector<ClassFile> original = assemble(kSampleX);
    std::string printed = print_class(original[0]);
    std::vector<ClassFile> reparsed = assemble(printed);
    ASSERT_EQ(reparsed.size(), 1u);
    const ClassFile& a = original[0];
    const ClassFile& b = reparsed[0];
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.fields.size(), b.fields.size());
    ASSERT_EQ(a.methods.size(), b.methods.size());
    for (std::size_t i = 0; i < a.methods.size(); ++i) {
        EXPECT_EQ(a.methods[i].name, b.methods[i].name);
        EXPECT_EQ(a.methods[i].descriptor(), b.methods[i].descriptor());
        EXPECT_EQ(a.methods[i].code.instrs, b.methods[i].code.instrs)
            << "method " << a.methods[i].name;
        EXPECT_EQ(a.methods[i].code.max_locals, b.methods[i].code.max_locals);
    }
}

TEST(Assembler, PrintRoundTripWithBranchesAndHandlers) {
    const char* src = R"(
class R {
  static method f (I)I {
  A:
    load 0
    const 0
    cmpgt
    iffalse B
    load 0
    returnvalue
  B:
    const 0
    returnvalue
  H:
    pop
    const -1
    returnvalue
    catch E from A to B using H
  }
}
class E {
}
)";
    std::vector<ClassFile> original = assemble(src);
    std::vector<ClassFile> reparsed = assemble(print_class(original[0]) + print_class(original[1]));
    EXPECT_EQ(original[0].methods[0].code.instrs, reparsed[0].methods[0].code.instrs);
    ASSERT_EQ(reparsed[0].methods[0].code.handlers.size(), 1u);
    EXPECT_EQ(original[0].methods[0].code.handlers[0].target,
              reparsed[0].methods[0].code.handlers[0].target);
}

}  // namespace
}  // namespace rafda::model
