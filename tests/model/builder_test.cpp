#include "model/builder.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rafda::model {
namespace {

TEST(CodeBuilder, StraightLine) {
    CodeBuilder cb;
    cb.const_int(2).const_int(3).add().ret_value();
    Code code = cb.finish(0);
    ASSERT_EQ(code.instrs.size(), 4u);
    EXPECT_EQ(code.instrs[0].op, Op::Const);
    EXPECT_EQ(code.instrs[2].op, Op::Add);
    EXPECT_EQ(code.max_locals, 0);
}

TEST(CodeBuilder, MaxLocalsFromSlots) {
    CodeBuilder cb;
    cb.const_int(1).store(5).load(5).ret_value();
    Code code = cb.finish(2);
    EXPECT_EQ(code.max_locals, 6);
}

TEST(CodeBuilder, MinLocalsWins) {
    CodeBuilder cb;
    cb.ret();
    EXPECT_EQ(cb.finish(3).max_locals, 3);
}

TEST(CodeBuilder, ForwardBranch) {
    CodeBuilder cb;
    Label done = cb.new_label();
    cb.const_bool(true).if_true(done).const_int(0).ret_value();
    cb.bind(done);
    cb.const_int(1).ret_value();
    Code code = cb.finish(0);
    EXPECT_EQ(code.instrs[1].op, Op::IfTrue);
    EXPECT_EQ(code.instrs[1].a, 4);
}

TEST(CodeBuilder, BackwardBranch) {
    CodeBuilder cb;
    Label top = cb.new_label();
    cb.bind(top);
    cb.const_bool(false).if_true(top).ret();
    Code code = cb.finish(0);
    EXPECT_EQ(code.instrs[1].a, 0);
}

TEST(CodeBuilder, UnboundLabelThrows) {
    CodeBuilder cb;
    Label never = cb.new_label();
    cb.go(never).ret();
    EXPECT_THROW(cb.finish(0), VerifyError);
}

TEST(CodeBuilder, DoubleBindThrows) {
    CodeBuilder cb;
    Label l = cb.new_label();
    cb.bind(l);
    EXPECT_THROW(cb.bind(l), VerifyError);
}

TEST(CodeBuilder, HandlersResolveLabels) {
    CodeBuilder cb;
    Label from = cb.new_label(), to = cb.new_label(), target = cb.new_label();
    cb.bind(from);
    cb.const_int(1).pop();
    cb.bind(to);
    cb.ret();
    cb.bind(target);
    cb.pop().ret();
    cb.handler(from, to, target, "Throwable");
    Code code = cb.finish(0);
    ASSERT_EQ(code.handlers.size(), 1u);
    EXPECT_EQ(code.handlers[0].start, 0);
    EXPECT_EQ(code.handlers[0].end, 2);
    EXPECT_EQ(code.handlers[0].target, 3);
}

TEST(ClassBuilder, BuildsCompleteClass) {
    CodeBuilder body;
    body.load(0).get_field("Acc", "total", TypeDesc::long_()).ret_value();

    ClassFile cf = ClassBuilder("Acc")
                       .extends("Base")
                       .implements("HasTotal")
                       .field("total", TypeDesc::long_(), Visibility::Private)
                       .static_field("count", TypeDesc::int_())
                       .method("getTotal", MethodSig({}, TypeDesc::long_()), std::move(body))
                       .abstract_method("describe", MethodSig({}, TypeDesc::str()))
                       .native_method("sysPeek", MethodSig({}, TypeDesc::int_()), true)
                       .build();

    EXPECT_EQ(cf.name, "Acc");
    EXPECT_EQ(cf.super_name, "Base");
    EXPECT_EQ(cf.interfaces, (std::vector<std::string>{"HasTotal"}));
    ASSERT_EQ(cf.fields.size(), 2u);
    EXPECT_FALSE(cf.fields[0].is_static);
    EXPECT_TRUE(cf.fields[1].is_static);
    ASSERT_EQ(cf.methods.size(), 3u);
    EXPECT_EQ(cf.methods[0].code.max_locals, 1);  // just `this`
    EXPECT_TRUE(cf.methods[1].is_abstract);
    EXPECT_TRUE(cf.methods[2].is_native);
    EXPECT_TRUE(cf.methods[2].is_static);
}

TEST(ClassBuilder, StaticMethodLocalsExcludeReceiver) {
    CodeBuilder body;
    body.load(1).ret_value();
    ClassFile cf = ClassBuilder("S")
                       .static_method("second", MethodSig({TypeDesc::int_(), TypeDesc::int_()},
                                                          TypeDesc::int_()),
                                      std::move(body))
                       .build();
    EXPECT_EQ(cf.methods[0].code.max_locals, 2);
}

TEST(ClassBuilder, InterfaceAndSpecialFlags) {
    ClassFile iface = ClassBuilder("I").interface_().build();
    EXPECT_TRUE(iface.is_interface);
    ClassFile spec = ClassBuilder("T").special().build();
    EXPECT_TRUE(spec.is_special);
}

}  // namespace
}  // namespace rafda::model
