#include "model/classpool.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "support/error.hpp"

namespace rafda::model {
namespace {

ClassPool make_pool() {
    ClassPool pool;
    assemble_into(pool, R"(
interface Walker {
  method walk ()V
}
class Animal {
  field name S
  method speak ()S {
    const "..."
    returnvalue
  }
}
class Dog extends Animal implements Walker {
  field tricks I
  static field population I
  method speak ()S {
    const "woof"
    returnvalue
  }
  method walk ()V {
    return
  }
}
class Puppy extends Dog {
  field age I
}
)");
    return pool;
}

TEST(ClassPool, AddGetContains) {
    ClassPool pool = make_pool();
    EXPECT_TRUE(pool.contains("Dog"));
    EXPECT_FALSE(pool.contains("Cat"));
    EXPECT_EQ(pool.get("Dog").super_name, "Animal");
    EXPECT_THROW(pool.get("Cat"), VerifyError);
    EXPECT_EQ(pool.size(), 4u);
}

TEST(ClassPool, DuplicateAddThrows) {
    ClassPool pool = make_pool();
    ClassFile dup;
    dup.name = "Dog";
    EXPECT_THROW(pool.add(std::move(dup)), VerifyError);
}

TEST(ClassPool, RemoveAndReAdd) {
    ClassPool pool = make_pool();
    pool.remove("Puppy");
    EXPECT_FALSE(pool.contains("Puppy"));
    EXPECT_THROW(pool.remove("Puppy"), VerifyError);
    ClassFile again;
    again.name = "Puppy";
    pool.add(std::move(again));
    EXPECT_TRUE(pool.contains("Puppy"));
}

TEST(ClassPool, AllIsSortedByName) {
    ClassPool pool = make_pool();
    std::vector<std::string> names = pool.all_names();
    EXPECT_EQ(names, (std::vector<std::string>{"Animal", "Dog", "Puppy", "Walker"}));
}

TEST(ClassPool, SubtypeReflexiveTransitive) {
    ClassPool pool = make_pool();
    EXPECT_TRUE(pool.is_subtype("Dog", "Dog"));
    EXPECT_TRUE(pool.is_subtype("Dog", "Animal"));
    EXPECT_TRUE(pool.is_subtype("Puppy", "Animal"));
    EXPECT_TRUE(pool.is_subtype("Dog", "Walker"));
    EXPECT_TRUE(pool.is_subtype("Puppy", "Walker"));
    EXPECT_FALSE(pool.is_subtype("Animal", "Dog"));
    EXPECT_FALSE(pool.is_subtype("Animal", "Walker"));
    EXPECT_FALSE(pool.is_subtype("Ghost", "Animal"));
    EXPECT_TRUE(pool.is_subtype("Ghost", "Ghost"));  // reflexive even if unknown
}

TEST(ClassPool, LayoutInheritedFieldsFirst) {
    ClassPool pool = make_pool();
    const Layout& layout = pool.layout_of("Puppy");
    ASSERT_EQ(layout.size(), 3);
    EXPECT_EQ(layout.slots[0].name, "name");
    EXPECT_EQ(layout.slots[0].declaring_class, "Animal");
    EXPECT_EQ(layout.slots[1].name, "tricks");
    EXPECT_EQ(layout.slots[2].name, "age");
    EXPECT_EQ(layout.index_of("tricks"), 1);
    EXPECT_THROW(layout.index_of("population"), VerifyError);  // static, not in layout
}

TEST(ClassPool, LayoutExcludesStatics) {
    ClassPool pool = make_pool();
    EXPECT_EQ(pool.layout_of("Dog").size(), 2);         // name + tricks
    EXPECT_EQ(pool.static_layout_of("Dog").size(), 1);  // population
    EXPECT_EQ(pool.static_layout_of("Animal").size(), 0);
}

TEST(ClassPool, LayoutRejectsShadowing) {
    ClassPool pool = make_pool();
    assemble_into(pool, R"(
class BadPuppy extends Dog {
  field tricks I
}
)");
    EXPECT_THROW(pool.layout_of("BadPuppy"), VerifyError);
}

TEST(ClassPool, ResolveVirtualWalksSuperChain) {
    ClassPool pool = make_pool();
    const Method* m = pool.resolve_virtual("Puppy", "speak", "()S");
    ASSERT_NE(m, nullptr);
    // Puppy inherits Dog's override.
    EXPECT_EQ(std::get<std::string>(m->code.instrs[0].k), "woof");
    const Method* base = pool.resolve_virtual("Animal", "speak", "()S");
    ASSERT_NE(base, nullptr);
    EXPECT_EQ(std::get<std::string>(base->code.instrs[0].k), "...");
    EXPECT_EQ(pool.resolve_virtual("Puppy", "fly", "()V"), nullptr);
}

TEST(ClassPool, ResolveStaticField) {
    ClassPool pool = make_pool();
    const ClassFile* declaring = pool.resolve_static_field("Puppy", "population");
    ASSERT_NE(declaring, nullptr);
    EXPECT_EQ(declaring->name, "Dog");
    EXPECT_EQ(pool.resolve_static_field("Animal", "population"), nullptr);
}

TEST(ClassPool, CachesInvalidatedOnMutation) {
    ClassPool pool = make_pool();
    EXPECT_EQ(pool.layout_of("Dog").size(), 2);
    ClassFile& dog = pool.get_mutable("Dog");
    dog.fields.push_back(Field{"collar", TypeDesc::str(), Visibility::Public, false, false});
    pool.invalidate_caches();
    EXPECT_EQ(pool.layout_of("Dog").size(), 3);
}

TEST(ClassPool, MutableAccessAloneInvalidatesMemoizedLayouts) {
    // Regression: find_mutable/get_mutable used to hand out a mutable
    // ClassFile* without invalidating, so a layout memoized before an
    // in-place rewrite stayed stale.
    ClassPool pool = make_pool();
    EXPECT_EQ(pool.layout_of("Dog").size(), 2);        // memoize
    EXPECT_EQ(pool.static_layout_of("Dog").size(), 1);  // memoize statics too
    ClassFile* dog = pool.find_mutable("Dog");
    ASSERT_NE(dog, nullptr);
    dog->fields.push_back(
        Field{"collar", TypeDesc::str(), Visibility::Public, false, false});
    dog->fields.push_back(
        Field{"licenses", TypeDesc::int_(), Visibility::Public, true, false});
    // No explicit invalidate_caches() call — the mutable handout did it.
    EXPECT_EQ(pool.layout_of("Dog").size(), 3);
    EXPECT_EQ(pool.layout_of("Puppy").size(), 4);  // subclasses see it too
    EXPECT_EQ(pool.static_layout_of("Dog").size(), 2);
}

TEST(ClassPool, GenerationBumpsOnEveryMutationPath) {
    ClassPool pool = make_pool();
    const std::uint64_t g0 = pool.generation();
    EXPECT_GT(g0, 0u);  // 0 is reserved for "never validated" consumers

    pool.layout_of("Dog");
    EXPECT_EQ(pool.generation(), g0);  // const queries do not bump

    pool.get_mutable("Dog");
    const std::uint64_t g1 = pool.generation();
    EXPECT_GT(g1, g0);

    pool.find_mutable("Dog");
    const std::uint64_t g2 = pool.generation();
    EXPECT_GT(g2, g1);
    EXPECT_EQ(pool.find_mutable("NoSuchClass"), nullptr);
    EXPECT_EQ(pool.generation(), g2);  // failed lookup hands out nothing

    ClassFile fresh;
    fresh.name = "Cat";
    pool.add(std::move(fresh));
    const std::uint64_t g3 = pool.generation();
    EXPECT_GT(g3, g2);

    pool.remove("Cat");
    EXPECT_GT(pool.generation(), g3);
}

TEST(ClassPool, ReferencedClasses) {
    ClassPool pool = make_pool();
    std::vector<std::string> refs = pool.get("Dog").referenced_classes();
    EXPECT_EQ(refs, (std::vector<std::string>{"Animal", "Walker"}));
}

TEST(ClassPool, MoveSemantics) {
    ClassPool pool = make_pool();
    ClassPool moved = std::move(pool);
    EXPECT_TRUE(moved.contains("Dog"));
    EXPECT_EQ(moved.layout_of("Dog").size(), 2);
}

}  // namespace
}  // namespace rafda::model
