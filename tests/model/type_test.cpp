#include "model/type.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rafda::model {
namespace {

TEST(TypeDesc, ParsePrimitives) {
    EXPECT_EQ(TypeDesc::parse("V").kind(), Kind::Void);
    EXPECT_EQ(TypeDesc::parse("Z").kind(), Kind::Bool);
    EXPECT_EQ(TypeDesc::parse("I").kind(), Kind::Int);
    EXPECT_EQ(TypeDesc::parse("J").kind(), Kind::Long);
    EXPECT_EQ(TypeDesc::parse("D").kind(), Kind::Double);
    EXPECT_EQ(TypeDesc::parse("S").kind(), Kind::Str);
}

TEST(TypeDesc, ParseReference) {
    TypeDesc t = TypeDesc::parse("LX;");
    EXPECT_TRUE(t.is_ref());
    EXPECT_EQ(t.class_name(), "X");
    EXPECT_EQ(TypeDesc::parse("LX_O_Int;").class_name(), "X_O_Int");
}

TEST(TypeDesc, DescriptorRoundTrip) {
    for (const char* d : {"V", "Z", "I", "J", "D", "S", "LX;", "Lpkg.Cls;"})
        EXPECT_EQ(TypeDesc::parse(d).descriptor(), d);
}

TEST(TypeDesc, RejectsMalformed) {
    EXPECT_THROW(TypeDesc::parse(""), ParseError);
    EXPECT_THROW(TypeDesc::parse("Q"), ParseError);
    EXPECT_THROW(TypeDesc::parse("LX"), ParseError);   // unterminated
    EXPECT_THROW(TypeDesc::parse("II"), ParseError);   // trailing
    EXPECT_THROW(TypeDesc::parse("LX;I"), ParseError); // trailing
}

TEST(TypeDesc, ClassNameOnNonRefThrows) {
    EXPECT_THROW(TypeDesc::int_().class_name(), VerifyError);
}

TEST(TypeDesc, NumericPredicate) {
    EXPECT_TRUE(TypeDesc::int_().is_numeric());
    EXPECT_TRUE(TypeDesc::long_().is_numeric());
    EXPECT_TRUE(TypeDesc::double_().is_numeric());
    EXPECT_FALSE(TypeDesc::bool_().is_numeric());
    EXPECT_FALSE(TypeDesc::str().is_numeric());
    EXPECT_FALSE(TypeDesc::ref("X").is_numeric());
}

TEST(MethodSig, ParseAndPrint) {
    MethodSig sig = MethodSig::parse("(JLY;)I");
    ASSERT_EQ(sig.params().size(), 2u);
    EXPECT_EQ(sig.params()[0].kind(), Kind::Long);
    EXPECT_EQ(sig.params()[1].class_name(), "Y");
    EXPECT_EQ(sig.ret().kind(), Kind::Int);
    EXPECT_EQ(sig.descriptor(), "(JLY;)I");
}

TEST(MethodSig, EmptyParams) {
    MethodSig sig = MethodSig::parse("()V");
    EXPECT_TRUE(sig.params().empty());
    EXPECT_TRUE(sig.ret().is_void());
}

TEST(MethodSig, RejectsMalformed) {
    EXPECT_THROW(MethodSig::parse("I"), ParseError);       // no parens
    EXPECT_THROW(MethodSig::parse("(I"), ParseError);      // unterminated
    EXPECT_THROW(MethodSig::parse("(V)I"), ParseError);    // void param
    EXPECT_THROW(MethodSig::parse("()"), ParseError);      // no return
    EXPECT_THROW(MethodSig::parse("()II"), ParseError);    // trailing
}

TEST(MethodSig, Equality) {
    EXPECT_EQ(MethodSig::parse("(I)V"), MethodSig::parse("(I)V"));
    EXPECT_NE(MethodSig::parse("(I)V"), MethodSig::parse("(J)V"));
}

}  // namespace
}  // namespace rafda::model
