#include "model/verifier.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace rafda::model {
namespace {

ClassPool pool_of(const char* src) {
    ClassPool pool;
    assemble_into(pool, src);
    return pool;
}

bool has_problem(const ClassPool& pool, const std::string& needle) {
    for (const std::string& p : verify_pool_collect(pool))
        if (p.find(needle) != std::string::npos) return true;
    return false;
}

TEST(Verifier, AcceptsWellFormedPool) {
    ClassPool pool = pool_of(R"(
interface Greeter {
  method greet ()S
}
class Hello implements Greeter {
  field who S
  ctor (S)V {
    load 0
    load 1
    putfield Hello.who S
    return
  }
  method greet ()S {
    const "hi "
    load 0
    getfield Hello.who S
    concat
    returnvalue
  }
}
)");
    EXPECT_NO_THROW(verify_pool(pool));
    EXPECT_TRUE(verify_pool_collect(pool).empty());
}

TEST(Verifier, UnknownSuperclass) {
    ClassPool pool = pool_of("class A extends Ghost {\n}\n");
    EXPECT_TRUE(has_problem(pool, "unknown superclass"));
    EXPECT_THROW(verify_pool(pool), VerifyError);
}

TEST(Verifier, SuperclassMustBeClass) {
    ClassPool pool = pool_of("interface I {\n}\nclass A extends I {\n}\n");
    EXPECT_TRUE(has_problem(pool, "is an interface"));
}

TEST(Verifier, ImplementsMustBeInterface) {
    ClassPool pool = pool_of("class B {\n}\nclass A implements B {\n}\n");
    EXPECT_TRUE(has_problem(pool, "implements non-interface"));
}

TEST(Verifier, InheritanceCycle) {
    ClassPool pool = pool_of("class A extends B {\n}\nclass B extends A {\n}\n");
    EXPECT_TRUE(has_problem(pool, "cycle"));
}

TEST(Verifier, InterfaceConstraints) {
    ClassPool pool;
    ClassFile iface;
    iface.name = "I";
    iface.is_interface = true;
    iface.fields.push_back(Field{"x", TypeDesc::int_(), Visibility::Public, false, false});
    Method m;
    m.name = "f";
    m.sig = MethodSig({}, TypeDesc::void_());
    m.is_abstract = false;  // concrete method in interface: invalid
    m.code.instrs.push_back(ins::ret());
    m.code.max_locals = 1;
    iface.methods.push_back(std::move(m));
    pool.add(std::move(iface));
    EXPECT_TRUE(has_problem(pool, "interfaces cannot declare fields"));
    EXPECT_TRUE(has_problem(pool, "must be abstract"));
}

TEST(Verifier, UnknownFieldType) {
    ClassPool pool = pool_of("class A {\n field g LGhost;\n}\n");
    EXPECT_TRUE(has_problem(pool, "unknown class Ghost"));
}

TEST(Verifier, DuplicateMembers) {
    ClassPool pool;
    ClassFile cf;
    cf.name = "D";
    cf.fields.push_back(Field{"x", TypeDesc::int_(), Visibility::Public, false, false});
    cf.fields.push_back(Field{"x", TypeDesc::long_(), Visibility::Public, false, false});
    pool.add(std::move(cf));
    EXPECT_TRUE(has_problem(pool, "duplicate field"));
}

TEST(Verifier, FallOffEnd) {
    ClassPool pool = pool_of("class A {\n method f ()V {\n const 1\n pop\n }\n}\n");
    EXPECT_TRUE(has_problem(pool, "fall off the end"));
}

TEST(Verifier, BranchOutOfRangeViaRawClassFile) {
    ClassPool pool;
    ClassFile cf;
    cf.name = "B";
    Method m;
    m.name = "f";
    m.sig = MethodSig({}, TypeDesc::void_());
    m.code.instrs.push_back(ins::go(99));
    m.code.max_locals = 1;
    cf.methods.push_back(std::move(m));
    pool.add(std::move(cf));
    EXPECT_TRUE(has_problem(pool, "branch target out of range"));
}

TEST(Verifier, SlotOutOfRange) {
    ClassPool pool;
    ClassFile cf;
    cf.name = "B";
    Method m;
    m.name = "f";
    m.sig = MethodSig({}, TypeDesc::void_());
    m.code.instrs.push_back(ins::load(7));
    m.code.instrs.push_back(ins::pop());
    m.code.instrs.push_back(ins::ret());
    m.code.max_locals = 1;  // slot 7 is out of range
    cf.methods.push_back(std::move(m));
    pool.add(std::move(cf));
    EXPECT_TRUE(has_problem(pool, "slot out of range"));
}

TEST(Verifier, UnresolvedFieldAndMethod) {
    ClassPool pool = pool_of(R"(
class A {
  method f ()V {
    load 0
    getfield A.nothing I
    pop
    load 0
    invokevirtual A.missing ()V
    return
  }
}
)");
    EXPECT_TRUE(has_problem(pool, "no field nothing"));
    EXPECT_TRUE(has_problem(pool, "no method missing"));
}

TEST(Verifier, FieldDescriptorMismatch) {
    ClassPool pool = pool_of(R"(
class A {
  field x I
  method f ()J {
    load 0
    getfield A.x J
    returnvalue
  }
}
)");
    EXPECT_TRUE(has_problem(pool, "descriptor mismatch"));
}

TEST(Verifier, StaticInstanceMismatch) {
    ClassPool pool = pool_of(R"(
class A {
  static field s I
  method f ()I {
    load 0
    getfield A.s I
    returnvalue
  }
}
)");
    EXPECT_TRUE(has_problem(pool, "instance field op on static field"));
}

TEST(Verifier, NewOfInterfaceOrAbstract) {
    ClassPool pool = pool_of(R"(
interface I {
  method f ()V
}
class Abs {
  abstract method g ()V
}
class User {
  static method mk ()V {
    new I
    pop
    new Abs
    pop
    return
  }
}
)");
    EXPECT_TRUE(has_problem(pool, "new of interface"));
    EXPECT_TRUE(has_problem(pool, "new of abstract class"));
}

TEST(Verifier, NewOfConcreteSubclassOfAbstractOk) {
    ClassPool pool = pool_of(R"(
class Abs {
  abstract method g ()V
}
class Conc extends Abs {
  method g ()V {
    return
  }
  static method mk ()V {
    new Conc
    pop
    return
  }
}
)");
    EXPECT_TRUE(verify_pool_collect(pool).empty());
}

TEST(Verifier, InvokeInterfaceKindChecks) {
    ClassPool pool = pool_of(R"(
interface I {
  method f ()V
}
class C implements I {
  method f ()V {
    return
  }
  method g (LI;LC;)V {
    load 1
    invokevirtual I.f ()V
    load 2
    invokeinterface C.f ()V
    return
  }
}
)");
    EXPECT_TRUE(has_problem(pool, "invokevirtual on interface"));
    EXPECT_TRUE(has_problem(pool, "invokeinterface on non-interface"));
}

TEST(Verifier, StackUnderflow) {
    ClassPool pool = pool_of("class A {\n method f ()V {\n pop\n return\n }\n}\n");
    EXPECT_TRUE(has_problem(pool, "stack underflow"));
}

TEST(Verifier, InconsistentStackDepthAcrossPaths) {
    ClassPool pool;
    ClassFile cf;
    cf.name = "B";
    Method m;
    m.name = "f";
    m.sig = MethodSig({TypeDesc::bool_()}, TypeDesc::void_());
    // if (b) push 1; join point sees depth 0 on one path, 1 on the other.
    m.code.instrs.push_back(ins::load(0));     // 0
    m.code.instrs.push_back(ins::if_true(3));  // 1
    m.code.instrs.push_back(ins::ret());       // 2 (depth 0 path ends)
    m.code.instrs.push_back(ins::const_int(1));// 3
    m.code.instrs.push_back(ins::go(2));       // 4 -> pc 2 again at depth 1
    m.code.max_locals = 1;
    cf.methods.push_back(std::move(m));
    pool.add(std::move(cf));
    EXPECT_TRUE(has_problem(pool, "inconsistent stack depth"));
}

TEST(Verifier, HandlerEntersWithDepthOne) {
    ClassPool pool = pool_of(R"(
special class Thr {
}
class A {
  method f ()I {
  S:
    const 1
    pop
  E:
    const 0
    returnvalue
  H:
    pop
    const 1
    returnvalue
    catch Thr from S to E using H
  }
}
)");
    EXPECT_TRUE(verify_pool_collect(pool).empty()) << verify_pool_collect(pool).front();
}

TEST(Verifier, InvokeStackEffectCountsArgs) {
    ClassPool pool = pool_of(R"(
class A {
  static method two (II)I {
    load 0
    load 1
    add
    returnvalue
  }
  static method caller ()I {
    const 1
    invokestatic A.two (II)I
    returnvalue
  }
}
)");
    EXPECT_TRUE(has_problem(pool, "stack underflow"));
}

TEST(Verifier, ParallelCollectMatchesSerial) {
    // Several independent problems spread across classes: the parallel run
    // must report the same problems in the same (class-name) order.
    ClassPool pool = pool_of(R"(
class AUnderflow {
  method f ()V {
    pop
    return
  }
}
class BMissingSuper extends Nowhere {
}
class COk {
  method g ()I {
    const 7
    returnvalue
  }
}
class DBadRef {
  method h ()V {
    load 0
    getfield DBadRef.absent I
    pop
    return
  }
}
)");
    std::vector<std::string> serial = verify_pool_collect(pool);
    ASSERT_FALSE(serial.empty());
    for (std::size_t threads : {2u, 8u}) {
        support::ThreadPool workers(threads);
        EXPECT_EQ(verify_pool_collect(pool, &workers), serial)
            << "at " << threads << " threads";
    }
}

TEST(Verifier, ParallelThrowNamesSameFirstProblem) {
    ClassPool pool = pool_of(R"(
class Bad extends Nowhere {
}
class Worse {
  method f ()V {
    pop
    return
  }
}
)");
    std::string serial_what;
    try {
        verify_pool(pool);
        FAIL() << "expected VerifyError";
    } catch (const VerifyError& e) {
        serial_what = e.what();
    }
    support::ThreadPool workers(4);
    try {
        verify_pool(pool, &workers);
        FAIL() << "expected VerifyError";
    } catch (const VerifyError& e) {
        EXPECT_EQ(std::string(e.what()), serial_what);
    }
}

TEST(Verifier, ParallelAcceptsWellFormedPool) {
    ClassPool pool = pool_of(R"(
class A {
  method f ()I {
    const 1
    returnvalue
  }
}
class B extends A {
}
)");
    support::ThreadPool workers(8);
    EXPECT_NO_THROW(verify_pool(pool, &workers));
    EXPECT_TRUE(verify_pool_collect(pool, &workers).empty());
}

}  // namespace
}  // namespace rafda::model
