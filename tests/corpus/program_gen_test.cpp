#include "corpus/program_gen.hpp"

#include <gtest/gtest.h>

#include "model/verifier.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"

namespace rafda::corpus {
namespace {

TEST(ProgramGen, GeneratedProgramsVerify) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ProgramParams params;
        params.seed = seed;
        model::ClassPool pool = generate_program(params);
        EXPECT_TRUE(model::verify_pool_collect(pool).empty()) << "seed " << seed;
    }
}

TEST(ProgramGen, GeneratedProgramsRunAndPrint) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ProgramParams params;
        params.seed = seed;
        model::ClassPool pool = generate_program(params);
        vm::Interpreter interp(pool);
        vm::bind_prelude_natives(interp);
        interp.call_static(kProgramMain, "main", "()V");
        EXPECT_NE(interp.output().find("total="), std::string::npos) << "seed " << seed;
    }
}

TEST(ProgramGen, DeterministicOutputPerSeed) {
    ProgramParams params;
    params.seed = 7;
    auto run = [&] {
        model::ClassPool pool = generate_program(params);
        vm::Interpreter interp(pool);
        vm::bind_prelude_natives(interp);
        interp.call_static(kProgramMain, "main", "()V");
        return interp.output();
    };
    EXPECT_EQ(run(), run());
}

TEST(ProgramGen, DifferentSeedsProduceDifferentPrograms) {
    ProgramParams a, b;
    a.seed = 1;
    b.seed = 2;
    auto out = [](const ProgramParams& p) {
        model::ClassPool pool = generate_program(p);
        vm::Interpreter interp(pool);
        vm::bind_prelude_natives(interp);
        interp.call_static(kProgramMain, "main", "()V");
        return interp.output();
    };
    EXPECT_NE(out(a), out(b));
}

TEST(ProgramGen, RespectsFeatureToggles) {
    ProgramParams params;
    params.use_statics = false;
    params.use_strings = false;
    params.seed = 3;
    model::ClassPool pool = generate_program(params);
    for (const model::ClassFile* cf : pool.all()) {
        if (cf->name.rfind("Gen", 0) != 0) continue;
        for (const model::Field& f : cf->fields) {
            EXPECT_FALSE(f.is_static) << cf->name;
            EXPECT_NE(f.type.kind(), model::Kind::Str) << cf->name;
        }
    }
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    interp.call_static(kProgramMain, "main", "()V");
    EXPECT_NE(interp.output().find("total="), std::string::npos);
}

TEST(ProgramGen, ScalesClassCountAndIterations) {
    ProgramParams params;
    params.classes = 12;
    params.iterations = 40;
    params.seed = 5;
    model::ClassPool pool = generate_program(params);
    std::size_t gen_classes = 0;
    for (const model::ClassFile* cf : pool.all())
        if (cf->name.rfind("Gen", 0) == 0) ++gen_classes;
    EXPECT_EQ(gen_classes, 12u);
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    interp.call_static(kProgramMain, "main", "()V");
    EXPECT_GT(interp.counters().instructions, 400u);
}

}  // namespace
}  // namespace rafda::corpus
