#include "corpus/jdk_corpus.hpp"

#include <gtest/gtest.h>

#include "transform/analysis.hpp"

namespace rafda::corpus {
namespace {

TEST(JdkCorpus, GeneratesRequestedSize) {
    JdkCorpusParams params;
    params.total_types = 500;
    model::ClassPool pool = generate_jdk_corpus(params);
    EXPECT_EQ(pool.size(), 500u);
}

TEST(JdkCorpus, DeterministicFromSeed) {
    JdkCorpusParams params;
    params.total_types = 300;
    model::ClassPool a = generate_jdk_corpus(params);
    model::ClassPool b = generate_jdk_corpus(params);
    EXPECT_EQ(a.all_names(), b.all_names());
    transform::Analysis aa = transform::analyze(a);
    transform::Analysis ab = transform::analyze(b);
    EXPECT_EQ(aa.non_transformable_count(), ab.non_transformable_count());
}

TEST(JdkCorpus, DifferentSeedsDiffer) {
    JdkCorpusParams p1, p2;
    p1.total_types = p2.total_types = 400;
    p2.seed = p1.seed + 1;
    transform::Analysis a1 = transform::analyze(generate_jdk_corpus(p1));
    transform::Analysis a2 = transform::analyze(generate_jdk_corpus(p2));
    // Same shape, not identical counts (overwhelmingly likely).
    EXPECT_NE(a1.non_transformable_count(), a2.non_transformable_count());
}

TEST(JdkCorpus, ContainsInterfacesSpecialsAndNatives) {
    JdkCorpusParams params;
    params.total_types = 1000;
    model::ClassPool pool = generate_jdk_corpus(params);
    std::size_t interfaces = 0, specials = 0, natives = 0;
    for (const model::ClassFile* cf : pool.all()) {
        if (cf->is_interface) ++interfaces;
        if (cf->is_special) ++specials;
        if (cf->has_native_method()) ++natives;
    }
    EXPECT_GT(interfaces, 50u);
    EXPECT_GT(specials, 0u);
    EXPECT_GT(natives, 10u);
}

TEST(JdkCorpus, HierarchyIsWellFormedForAnalysis) {
    JdkCorpusParams params;
    params.total_types = 800;
    model::ClassPool pool = generate_jdk_corpus(params);
    // Supers exist and are classes; interfaces exist and are interfaces.
    for (const model::ClassFile* cf : pool.all()) {
        if (!cf->super_name.empty()) {
            ASSERT_TRUE(pool.contains(cf->super_name)) << cf->name;
            EXPECT_FALSE(pool.get(cf->super_name).is_interface);
        }
        for (const std::string& i : cf->interfaces) {
            ASSERT_TRUE(pool.contains(i)) << cf->name;
            EXPECT_TRUE(pool.get(i).is_interface);
        }
    }
}

// E3 headline: at the calibrated defaults, the full-size corpus lands on
// the paper's "about 40% of the 8,200 classes and interfaces".
TEST(JdkCorpus, PaperScaleFractionNearFortyPercent) {
    JdkCorpusParams params;  // defaults: 8200 types, calibrated seeds
    model::ClassPool pool = generate_jdk_corpus(params);
    transform::Analysis analysis = transform::analyze(pool);
    EXPECT_EQ(analysis.total(), 8200u);
    EXPECT_NEAR(analysis.non_transformable_fraction(), 0.40, 0.03);
}

TEST(JdkCorpus, FractionGrowsWithNativeDensity) {
    JdkCorpusParams lo, hi;
    lo.total_types = hi.total_types = 2000;
    lo.native_in_lowlevel = 0.1;
    lo.native_elsewhere = 0.0;
    hi.native_in_lowlevel = 0.6;
    hi.native_elsewhere = 0.05;
    double f_lo = transform::analyze(generate_jdk_corpus(lo)).non_transformable_fraction();
    double f_hi = transform::analyze(generate_jdk_corpus(hi)).non_transformable_fraction();
    EXPECT_LT(f_lo, f_hi);
}

TEST(JdkCorpus, AllFourReasonsAppearAtScale) {
    model::ClassPool pool = generate_jdk_corpus(JdkCorpusParams{});
    auto hist = transform::analyze(pool).reason_histogram();
    EXPECT_GT(hist[transform::Reason::NativeMethod], 0u);
    EXPECT_GT(hist[transform::Reason::SpecialClass], 0u);
    EXPECT_GT(hist[transform::Reason::SuperOfNonTransformable], 0u);
    EXPECT_GT(hist[transform::Reason::ReferencedByNonTransformable], 0u);
}

}  // namespace
}  // namespace rafda::corpus
