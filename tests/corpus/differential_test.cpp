// Property-based differential testing: for randomly generated programs the
// original, the RAFDA-transformed (local binding), the wrapper-transformed
// and the distributed executions must all print the same bytes.  This is
// the strongest form of the paper's "semantically equivalent" claim our
// harness can check, swept across program shapes.
#include <gtest/gtest.h>

#include "corpus/program_gen.hpp"
#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "transform/local_binder.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"
#include "wrapper/wrapper_pipeline.hpp"

namespace rafda::corpus {
namespace {

std::string run_original(const model::ClassPool& pool) {
    vm::Interpreter interp(pool);
    vm::bind_prelude_natives(interp);
    interp.call_static(kProgramMain, "main", "()V");
    return interp.output();
}

std::string run_transformed_local(const model::ClassPool& pool) {
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    transform::call_transformed_static(interp, pool, result.report, kProgramMain, "main",
                                       "()V");
    return interp.output();
}

std::string run_wrapped(const model::ClassPool& pool) {
    wrapper::WrapperResult result = wrapper::run_wrapper_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    interp.call_static(kProgramMain, "main", "()V");
    return interp.output();
}

/// Distributed: every generated class's instances on node 1, singletons on
/// node 0, driver on node 0 — maximum cross-node traffic.
std::string run_distributed(const model::ClassPool& pool, const std::string& protocol) {
    runtime::System system(pool);
    system.add_node();
    system.add_node();
    for (const std::string& cls : system.report().substituted_classes())
        if (cls.rfind("Gen", 0) == 0)
            system.policy().set_instance_home(cls, 1, protocol);
    system.call_static(0, kProgramMain, "main", "()V");
    return system.node(0).interp().output();
}

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, AllExecutionModesAgree) {
    ProgramParams params;
    params.seed = GetParam();
    params.classes = 4 + params.seed % 5;
    params.iterations = 8 + static_cast<int>(params.seed % 7);
    model::ClassPool pool = generate_program(params);
    model::verify_pool(pool);

    std::string expected = run_original(pool);
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(run_transformed_local(pool), expected) << "seed " << params.seed;
    EXPECT_EQ(run_wrapped(pool), expected) << "seed " << params.seed;
    EXPECT_EQ(run_distributed(pool, "RMI"), expected) << "seed " << params.seed;
    EXPECT_EQ(run_distributed(pool, "SOAP"), expected) << "seed " << params.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(Differential, DoubleStringificationAgreesEverywhere) {
    // Regression: Value::display() used ostream's default 6-significant-
    // digit precision while the SOAP codec marshals doubles at 17 digits,
    // so a double concatenated into a string printed the same everywhere
    // only by losing precision.  Shortest round-trip formatting keeps the
    // full value and every execution mode must still agree byte-for-byte.
    constexpr const char* kDoubleApp = R"(
class GenD {
  field a D
  field b D
  ctor (DD)V {
    load 0
    load 1
    putfield GenD.a D
    load 0
    load 2
    putfield GenD.b D
    return
  }
  method sum ()D {
    load 0
    getfield GenD.a D
    load 0
    getfield GenD.b D
    add
    returnvalue
  }
  method ratio ()D {
    load 0
    getfield GenD.a D
    load 0
    getfield GenD.b D
    div
    returnvalue
  }
}
class Main {
  static method main ()V {
    locals 2
    new GenD
    dup
    const 0.1
    const 0.2
    invokespecial GenD.<init> (DD)V
    store 0
    new GenD
    dup
    const 1.0
    const 3.0
    invokespecial GenD.<init> (DD)V
    store 1
    const "sum="
    load 0
    invokevirtual GenD.sum ()D
    concat
    invokestatic Sys.println (S)V
    const "ratio="
    load 0
    invokevirtual GenD.ratio ()D
    concat
    invokestatic Sys.println (S)V
    const "third="
    load 1
    invokevirtual GenD.ratio ()D
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)";
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kDoubleApp);
    model::verify_pool(pool);

    std::string expected = run_original(pool);
    EXPECT_NE(expected.find("sum=0.30000000000000004"), std::string::npos) << expected;
    EXPECT_NE(expected.find("ratio=0.5"), std::string::npos) << expected;
    EXPECT_NE(expected.find("third=0.3333333333333333"), std::string::npos) << expected;
    EXPECT_EQ(run_transformed_local(pool), expected);
    EXPECT_EQ(run_wrapped(pool), expected);
    EXPECT_EQ(run_distributed(pool, "RMI"), expected);
    EXPECT_EQ(run_distributed(pool, "SOAP"), expected);
}

TEST(Differential, NoStaticsNoStringsVariantAgrees) {
    for (std::uint64_t seed : {101u, 102u, 103u, 104u, 105u}) {
        ProgramParams params;
        params.seed = seed;
        params.use_statics = false;
        params.use_strings = false;
        model::ClassPool pool = generate_program(params);
        std::string expected = run_original(pool);
        EXPECT_EQ(run_transformed_local(pool), expected) << "seed " << seed;
        EXPECT_EQ(run_wrapped(pool), expected) << "seed " << seed;
    }
}

TEST(Differential, ArraysVariantAgreesLocally) {
    // Arrays are node-local (see DESIGN.md), so the distributed modes are
    // excluded here; the three single-space executions must still agree.
    for (std::uint64_t seed : {201u, 202u, 203u, 204u, 205u, 206u}) {
        ProgramParams params;
        params.seed = seed;
        params.use_arrays = true;
        model::ClassPool pool = generate_program(params);
        model::verify_pool(pool);
        std::string expected = run_original(pool);
        ASSERT_FALSE(expected.empty());
        EXPECT_EQ(run_transformed_local(pool), expected) << "seed " << seed;
        EXPECT_EQ(run_wrapped(pool), expected) << "seed " << seed;
    }
}

TEST(Differential, MigrationMidRunPreservesSemantics) {
    // Run half the iterations, migrate every Gen object we can find, run
    // the rest: output must match the undisturbed local run.  (Driven
    // manually rather than through Main so we can interleave.)
    ProgramParams params;
    params.seed = 42;
    params.classes = 3;
    model::ClassPool pool = generate_program(params);

    // Reference: single interpreter, call step() 10 times on a fresh root.
    const std::string root_cls = "Gen2";
    transform::PipelineResult local = transform::run_pipeline(pool);
    vm::Interpreter interp(local.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, local.report);
    vm::Value lr = interp.call_static("Gen2_O_Factory", "make", "()LGen2_O_Int;");
    interp.call_static("Gen2_O_Factory", "init", "(LGen2_O_Int;J)V",
                       {lr, vm::Value::of_long(5)});
    std::int64_t expected = 0;
    for (int k = 0; k < 10; ++k)
        expected = interp.call_virtual(lr, "step", "(J)J", {vm::Value::of_long(k)}).as_long();

    runtime::System system(pool);
    system.add_node();
    system.add_node();
    vm::Value r = system.construct(0, root_cls, "(J)V", {vm::Value::of_long(5)});
    std::int64_t got = 0;
    for (int k = 0; k < 10; ++k) {
        if (k == 5) system.migrate_instance(0, r.as_ref(), 1, "RMI");
        got = system.node(0)
                  .interp()
                  .call_virtual(r, "step", "(J)J", {vm::Value::of_long(k)})
                  .as_long();
    }
    EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace rafda::corpus
