#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rafda {
namespace {

TEST(Rng, DeterministicFromSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
    Rng r(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (r.chance(0.3)) ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng a(5);
    Rng b = a.fork();
    // The fork must not replay the parent's sequence.
    Rng a2(5);
    a2.next();  // fork consumed one draw
    EXPECT_NE(b.next(), a2.next());
}

}  // namespace
}  // namespace rafda
