#include "support/pool.hpp"

#include <gtest/gtest.h>

#include <utility>

namespace rafda::support {
namespace {

TEST(BufferPool, ReusesReleasedCapacity) {
    BufferPool pool;
    Bytes b = pool.acquire();
    EXPECT_TRUE(b.empty());
    b.resize(4096);
    const std::uint8_t* data = b.data();
    pool.release(std::move(b));
    EXPECT_EQ(pool.retained(), 1u);

    Bytes again = pool.acquire();
    EXPECT_TRUE(again.empty());           // handed back cleared...
    EXPECT_GE(again.capacity(), 4096u);   // ...with its grown capacity
    EXPECT_EQ(again.data(), data);        // literally the same allocation
    EXPECT_EQ(pool.acquires(), 2u);
    EXPECT_EQ(pool.reuses(), 1u);
    EXPECT_EQ(pool.retained(), 0u);
}

TEST(BufferPool, FreeListIsLifo) {
    // The most-recently-released buffer comes back first (warmest cache
    // lines, best-fit capacity for steady-state message sizes).
    BufferPool pool;
    Bytes a, b;
    a.resize(100);
    b.resize(200);
    const std::uint8_t* b_data = b.data();
    pool.release(std::move(a));
    pool.release(std::move(b));
    EXPECT_EQ(pool.acquire().data(), b_data);
}

TEST(BufferPool, RetentionCapBoundsTheFreeList) {
    BufferPool pool(/*max_retained=*/2);
    for (int k = 0; k < 4; ++k) {
        Bytes b;
        b.resize(64);
        pool.release(std::move(b));
    }
    EXPECT_EQ(pool.retained(), 2u);
}

TEST(BufferPool, EmptyBuffersAreNotRetained) {
    // A capacity-less buffer has nothing worth keeping.
    BufferPool pool;
    pool.release(Bytes{});
    EXPECT_EQ(pool.retained(), 0u);
}

TEST(BufferPool, PooledBufferReturnsOnDestruction) {
    BufferPool pool;
    {
        PooledBuffer lease(pool);
        lease.bytes().resize(512);
        EXPECT_EQ(pool.retained(), 0u);  // still leased
    }
    EXPECT_EQ(pool.retained(), 1u);
    EXPECT_EQ(pool.acquires(), 1u);
    {
        PooledBuffer lease(pool);
        EXPECT_TRUE(lease.bytes().empty());
        EXPECT_GE(lease.bytes().capacity(), 512u);
    }
    EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, NestedLeasesDeepenThePool) {
    // A dispatch that issues nested RPCs holds several frames at once;
    // each returns independently.
    BufferPool pool;
    {
        PooledBuffer outer(pool);
        outer.bytes().resize(64);
        {
            PooledBuffer inner(pool);
            inner.bytes().resize(32);
        }
        EXPECT_EQ(pool.retained(), 1u);
    }
    EXPECT_EQ(pool.retained(), 2u);
}

TEST(BufferPool, MovedFromLeaseReleasesNothing) {
    BufferPool pool;
    {
        PooledBuffer a(pool);
        a.bytes().resize(64);
        PooledBuffer b(std::move(a));
        EXPECT_EQ(b.bytes().size(), 64u);
    }  // only b releases
    EXPECT_EQ(pool.retained(), 1u);
}

}  // namespace
}  // namespace rafda::support
