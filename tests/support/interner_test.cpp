#include "support/interner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rafda::support {
namespace {

TEST(Interner, AssignsDenseIdsInCallOrder) {
    Interner in;
    EXPECT_EQ(in.size(), 0u);
    EXPECT_EQ(in.intern("alpha"), 0u);
    EXPECT_EQ(in.intern("beta"), 1u);
    EXPECT_EQ(in.intern("gamma"), 2u);
    EXPECT_EQ(in.size(), 3u);
    EXPECT_EQ(in.name(0), "alpha");
    EXPECT_EQ(in.name(1), "beta");
    EXPECT_EQ(in.name(2), "gamma");
}

TEST(Interner, InternIsIdempotent) {
    Interner in;
    Interner::Id a = in.intern("x");
    EXPECT_EQ(in.intern("x"), a);
    EXPECT_EQ(in.intern("x"), a);
    EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, FindDoesNotCreate) {
    Interner in;
    in.intern("present");
    EXPECT_EQ(in.find("present"), 0u);
    EXPECT_EQ(in.find("absent"), Interner::kNoId);
    EXPECT_TRUE(in.contains("present"));
    EXPECT_FALSE(in.contains("absent"));
    EXPECT_EQ(in.size(), 1u);  // find() must not intern
}

TEST(Interner, NameThrowsOnBadId) {
    Interner in;
    in.intern("only");
    EXPECT_THROW(in.name(1), std::out_of_range);
    EXPECT_THROW(in.name(Interner::kNoId), std::out_of_range);
}

TEST(Interner, IdsDoNotAliasAfterOwningStringDies) {
    // intern() must copy: the caller's buffer may be temporary.
    Interner in;
    Interner::Id id;
    {
        std::string temp = "ephemeral";
        id = in.intern(temp);
        temp.assign(200, 'x');  // clobber the old buffer
    }
    EXPECT_EQ(in.name(id), "ephemeral");
    EXPECT_EQ(in.find("ephemeral"), id);
}

TEST(Interner, SurvivesRehashAndMove) {
    // Views handed out must stay valid across internal growth and across a
    // move of the interner itself (deque storage keeps element addresses).
    Interner in;
    std::vector<std::pair<std::string, Interner::Id>> expected;
    for (int i = 0; i < 1000; ++i) {
        std::string s = "class/Name" + std::to_string(i);
        expected.emplace_back(s, in.intern(s));
    }
    Interner moved = std::move(in);
    for (const auto& [s, id] : expected) {
        EXPECT_EQ(moved.find(s), id);
        EXPECT_EQ(moved.name(id), s);
    }
    EXPECT_EQ(moved.size(), 1000u);
}

TEST(Interner, SortedInputYieldsSortedIds) {
    // The analysis relies on this: interning a name-sorted sequence gives
    // ids whose numeric order equals lexicographic name order.
    Interner in;
    std::vector<std::string> names = {"A", "B/inner", "Base", "zz"};
    for (const auto& n : names) in.intern(n);
    for (std::size_t i = 0; i + 1 < names.size(); ++i)
        EXPECT_LT(in.find(names[i]), in.find(names[i + 1]));
}

}  // namespace
}  // namespace rafda::support
