#include "support/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "support/error.hpp"

namespace rafda {
namespace {

TEST(Bytes, RoundTripPrimitives) {
    ByteWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.i32(-42);
    w.i64(-1234567890123LL);
    w.f64(3.14159);
    w.str("hello");

    ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.i64(), -1234567890123LL);
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_TRUE(r.at_end());
}

TEST(Bytes, EmptyString) {
    ByteWriter w;
    w.str("");
    ByteReader r(w.data());
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.at_end());
}

TEST(Bytes, StringWithEmbeddedNulAndUnicode) {
    std::string s("a\0b\xc3\xa9", 5);
    ByteWriter w;
    w.str(s);
    ByteReader r(w.data());
    EXPECT_EQ(r.str(), s);
}

TEST(Bytes, TruncatedReadThrows) {
    ByteWriter w;
    w.u16(7);
    ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u8(), 0);
    EXPECT_THROW(r.u8(), CodecError);
}

TEST(Bytes, TruncatedStringThrows) {
    ByteWriter w;
    w.u32(100);  // claims 100 bytes follow
    w.u8('x');
    ByteReader r(w.data());
    EXPECT_THROW(r.str(), CodecError);
}

TEST(Bytes, NegativeExtremes) {
    ByteWriter w;
    w.i32(std::numeric_limits<std::int32_t>::min());
    w.i64(std::numeric_limits<std::int64_t>::min());
    w.f64(-std::numeric_limits<double>::infinity());
    ByteReader r(w.data());
    EXPECT_EQ(r.i32(), std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(r.f64(), -std::numeric_limits<double>::infinity());
}

TEST(Bytes, RemainingTracksPosition) {
    ByteWriter w;
    w.u32(1);
    w.u32(2);
    ByteReader r(w.data());
    EXPECT_EQ(r.remaining(), 8u);
    r.u32();
    EXPECT_EQ(r.remaining(), 4u);
    r.u32();
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, RawAppends) {
    ByteWriter inner;
    inner.u32(99);
    ByteWriter outer;
    outer.u8(1);
    outer.raw(inner.data());
    ByteReader r(outer.data());
    EXPECT_EQ(r.u8(), 1);
    EXPECT_EQ(r.u32(), 99u);
}

TEST(Bytes, TakeMovesBuffer) {
    ByteWriter w;
    w.str("abc");
    Bytes b = w.take();
    EXPECT_EQ(b.size(), 7u);  // 4-byte length + 3 bytes
    EXPECT_EQ(w.size(), 0u);
}

TEST(Bytes, VaruRoundTripsAtEncodingBoundaries) {
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
          std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
          std::uint64_t{1} << 35, std::numeric_limits<std::uint64_t>::max()}) {
        ByteWriter w;
        w.varu64(v);
        ByteReader r(w.data());
        EXPECT_EQ(r.varu64(), v) << v;
        EXPECT_TRUE(r.at_end());
    }
    // Small values (batch-entry id deltas) cost a single byte.
    ByteWriter small;
    small.varu64(42);
    EXPECT_EQ(small.size(), 1u);
    ByteWriter max;
    max.varu64(std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(max.size(), 10u);
}

TEST(Bytes, VaruRejectsOverlongEncoding) {
    // Eleven continuation bytes can't fit in 64 bits.
    Bytes overlong(11, 0x80);
    ByteReader r(overlong);
    EXPECT_THROW(r.varu64(), CodecError);
}

TEST(Bytes, BorrowingWriterClearsAndKeepsCapacity) {
    Bytes pooled;
    pooled.reserve(1024);
    pooled.push_back(0xEE);  // stale bytes from the buffer's previous life
    const std::uint8_t* data_before = pooled.data();
    {
        ByteWriter w(pooled);
        EXPECT_EQ(w.size(), 0u);  // cleared on construction
        w.u32(7);
        w.str("hi");
    }
    EXPECT_EQ(pooled.size(), 10u);  // u32 + length-prefixed "hi"
    EXPECT_EQ(pooled.data(), data_before);  // no reallocation
    ByteReader r(pooled);
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_EQ(r.str(), "hi");
}

TEST(Bytes, BorrowingWriterMatchesOwningOutput) {
    auto write = [](ByteWriter& w) {
        w.u8(0xA1);
        w.varu64(300);
        w.text("tail");
    };
    ByteWriter owning;
    write(owning);
    Bytes external;
    ByteWriter borrowing(external);
    write(borrowing);
    EXPECT_EQ(external, owning.data());
}

}  // namespace
}  // namespace rafda
