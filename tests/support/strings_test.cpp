#include "support/strings.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rafda {
namespace {

TEST(Strings, SplitKeepsEmptyPieces) {
    EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWsDropsEmptyPieces) {
    EXPECT_EQ(split_ws("  a \t b\nc  "), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(split_ws("   ").empty());
    EXPECT_TRUE(split_ws("").empty());
}

TEST(Strings, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(starts_with("X_O_Int", "X_"));
    EXPECT_FALSE(starts_with("X", "X_"));
    EXPECT_TRUE(ends_with("X_O_Int", "_Int"));
    EXPECT_FALSE(ends_with("Int", "_Int"));
}

TEST(Strings, XmlEscapeRoundTrip) {
    const std::string nasty = R"(a<b>&"c"&amp;)";
    EXPECT_EQ(xml_unescape(xml_escape(nasty)), nasty);
}

TEST(Strings, XmlEscapeProducesEntities) {
    EXPECT_EQ(xml_escape("<a & \"b\">"), "&lt;a &amp; &quot;b&quot;&gt;");
}

TEST(Strings, XmlUnescapeRejectsMalformed) {
    EXPECT_THROW(xml_unescape("&bogus;"), CodecError);
    EXPECT_THROW(xml_unescape("&amp"), CodecError);
}

}  // namespace
}  // namespace rafda
