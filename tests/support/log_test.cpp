#include "support/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rafda {
namespace {

/// Redirects std::clog into a string for the scope of a test.
class ClogCapture {
public:
    ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
    ~ClogCapture() { std::clog.rdbuf(old_); }
    std::string str() const { return buffer_.str(); }

private:
    std::ostringstream buffer_;
    std::streambuf* old_;
};

struct LogFixture : ::testing::Test {
    void TearDown() override {
        set_log_level(LogLevel::Off);
        clear_log_time_source(this);
    }
};

// Must run before anything else in this process touches the logger: the
// environment is only consulted on the first log_level() call.  Each test
// is its own process under ctest, and gtest keeps declaration order when
// the binary runs whole, so declaring it first suffices.
TEST_F(LogFixture, EnvVariableSetsInitialLevel) {
    ::setenv("RAFDA_LOG_LEVEL", "warn", 1);
    EXPECT_EQ(log_level(), LogLevel::Warn);
    ::unsetenv("RAFDA_LOG_LEVEL");
}

TEST_F(LogFixture, SetLogLevelOverridesEnvironment) {
    set_log_level(LogLevel::Debug);
    EXPECT_EQ(log_level(), LogLevel::Debug);
    set_log_level(LogLevel::Off);
    EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST_F(LogFixture, WarnEmitsAtWarnAndAbove) {
    set_log_level(LogLevel::Warn);
    ClogCapture capture;
    log_warn("net", "queue depth ", 17);
    log_info("net", "suppressed");
    log_debug("net", "suppressed");
    EXPECT_EQ(capture.str(), "[WARN ] [net] queue depth 17\n");
}

TEST_F(LogFixture, OffSilencesEverything) {
    set_log_level(LogLevel::Off);
    ClogCapture capture;
    log_warn("x", "nope");
    log_line(LogLevel::Error, "x", "also nope");
    EXPECT_EQ(capture.str(), "");
}

TEST_F(LogFixture, TimeSourcePrefixesLinesWithVirtualTime) {
    set_log_level(LogLevel::Info);
    set_log_time_source([] { return std::int64_t{42}; }, this);
    {
        ClogCapture capture;
        log_info("net", "delivered");
        EXPECT_EQ(capture.str(), "[INFO ] [t=42us] [net] delivered\n");
    }
    clear_log_time_source(this);
    {
        ClogCapture capture;
        log_info("net", "delivered");
        EXPECT_EQ(capture.str(), "[INFO ] [net] delivered\n");
    }
}

TEST_F(LogFixture, ClearOnlyHonoursTheRegisteredOwner) {
    set_log_level(LogLevel::Info);
    int other = 0;
    set_log_time_source([] { return std::int64_t{7}; }, this);
    clear_log_time_source(&other);  // wrong owner: prefix stays
    ClogCapture capture;
    log_info("sys", "still stamped");
    EXPECT_EQ(capture.str(), "[INFO ] [t=7us] [sys] still stamped\n");
}

}  // namespace
}  // namespace rafda
