#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rafda::support {
namespace {

// Every index is executed exactly once, whatever the thread count.
void check_all_indices_once(std::size_t threads, std::size_t n) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(n);
    pool.for_each_index(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    EXPECT_EQ(pool.items_executed(), n);
}

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
    for (std::size_t threads : {1u, 2u, 8u}) {
        check_all_indices_once(threads, 0);
        check_all_indices_once(threads, 1);
        check_all_indices_once(threads, 7);     // fewer than 8 workers
        check_all_indices_once(threads, 1000);  // plenty to steal
    }
}

TEST(ThreadPool, ZeroRequestClampsToOne) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 1u);
    std::atomic<std::size_t> sum{0};
    pool.for_each_index(10, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, ReusableAcrossJobs) {
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> count{0};
        pool.for_each_index(64, [&](std::size_t) { count.fetch_add(1); });
        ASSERT_EQ(count.load(), 64u);
    }
    EXPECT_EQ(pool.items_executed(), 20u * 64u);
}

TEST(ThreadPool, PropagatesFirstExceptionAndCancels) {
    ThreadPool pool(4);
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(
        pool.for_each_index(1000,
                            [&](std::size_t i) {
                                if (i == 3) throw std::runtime_error("boom");
                                executed.fetch_add(1);
                            }),
        std::runtime_error);
    // Cancellation is advisory; what matters is that the pool survives and
    // the next job runs cleanly.
    std::atomic<std::size_t> count{0};
    pool.for_each_index(16, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 16u);
}

TEST(ThreadPool, NestedForEachRunsInline) {
    // A worker that re-enters for_each_index must not deadlock waiting for
    // the (busy) pool; the nested call degrades to inline execution.
    ThreadPool pool(2);
    std::atomic<std::size_t> inner_total{0};
    pool.for_each_index(4, [&](std::size_t) {
        pool.for_each_index(8, [&](std::size_t) { inner_total.fetch_add(1); });
    });
    EXPECT_EQ(inner_total.load(), 4u * 8u);
}

TEST(ThreadPool, StealsFromUnevenLoad) {
    // One index is much slower than the rest; with stealing, the fast
    // workers should pick up the slow participant's untouched range.
    ThreadPool pool(4);
    if (ThreadPool::hardware_threads() < 2) GTEST_SKIP() << "single core";
    std::atomic<std::size_t> count{0};
    pool.for_each_index(400, [&](std::size_t i) {
        if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(30));
        count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 400u);
    // Not asserting steals() > 0: a fast machine may finish ranges before
    // the imbalance matters.  The counter just has to be readable.
    (void)pool.steals();
}

TEST(ThreadPool, SingleThreadRunsCallerOnly) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.thread_count(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    pool.for_each_index(32, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
    EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace rafda::support
