#include "wrapper/wrapper_pipeline.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "support/error.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"

namespace rafda::wrapper {
namespace {

using vm::Value;

constexpr const char* kApp = R"(
class Box {
  field v I
  ctor (I)V {
    load 0
    load 1
    putfield Box.v I
    return
  }
  method bump ()I {
    load 0
    load 0
    getfield Box.v I
    const 1
    add
    putfield Box.v I
    load 0
    getfield Box.v I
    returnvalue
  }
}
class Pair {
  field left LBox;
  field right LBox;
  ctor (LBox;LBox;)V {
    load 0
    load 1
    putfield Pair.left LBox;
    load 0
    load 2
    putfield Pair.right LBox;
    return
  }
  method total ()I {
    load 0
    getfield Pair.left LBox;
    getfield Box.v I
    load 0
    getfield Pair.right LBox;
    getfield Box.v I
    add
    returnvalue
  }
}
class Main {
  static method main ()V {
    locals 3
    new Box
    dup
    const 10
    invokespecial Box.<init> (I)V
    store 0
    new Box
    dup
    const 20
    invokespecial Box.<init> (I)V
    store 1
    new Pair
    dup
    load 0
    load 1
    invokespecial Pair.<init> (LBox;LBox;)V
    store 2
    load 0
    invokevirtual Box.bump ()I
    pop
    const "total="
    load 2
    invokevirtual Pair.total ()I
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)";

model::ClassPool make_original() {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, kApp);
    model::verify_pool(pool);
    return pool;
}

TEST(Wrapper, OutputVerifies) {
    model::ClassPool original = make_original();
    WrapperResult result = run_wrapper_pipeline(original);
    EXPECT_TRUE(model::verify_pool_collect(result.pool).empty());
}

TEST(Wrapper, GeneratesOneWrapperPerClass) {
    model::ClassPool original = make_original();
    WrapperResult result = run_wrapper_pipeline(original);
    for (const char* name : {"Box_Wrapper", "Pair_Wrapper", "Main_Wrapper"})
        EXPECT_TRUE(result.pool.contains(name)) << name;
    // The wrapped classes stay in the pool (they carry the state).
    EXPECT_TRUE(result.pool.contains("Box"));
    EXPECT_TRUE(result.report.is_wrapped("Box"));
    EXPECT_FALSE(result.report.is_wrapped("Sys"));
    EXPECT_TRUE(result.pool.contains("Sys"));
    EXPECT_FALSE(result.pool.contains("Sys_Wrapper"));
}

TEST(Wrapper, WrapperShapeMatchesRelatedWorkDescription) {
    model::ClassPool original = make_original();
    WrapperResult result = run_wrapper_pipeline(original);
    const model::ClassFile& w = result.pool.get("Box_Wrapper");
    // Encapsulates the object...
    const model::Field* target = w.find_field("target");
    ASSERT_NE(target, nullptr);
    EXPECT_EQ(target->type.descriptor(), "LBox;");
    // ...and intercepts all access requests.
    EXPECT_NE(w.find_method("get_v", "()I"), nullptr);
    EXPECT_NE(w.find_method("set_v", "(I)V"), nullptr);
    EXPECT_NE(w.find_method("bump", "()I"), nullptr);        // forwarder
    EXPECT_NE(w.find_method("bump__impl", "()I"), nullptr);  // logic
    EXPECT_NE(w.find_method("make", "()LBox_Wrapper;"), nullptr);
    EXPECT_NE(w.find_method("init", "(LBox_Wrapper;I)V"), nullptr);
}

TEST(Wrapper, WrappedProgramBehavesLikeOriginal) {
    model::ClassPool original = make_original();
    vm::Interpreter orig(original);
    vm::bind_prelude_natives(orig);
    orig.call_static("Main", "main", "()V");

    WrapperResult result = run_wrapper_pipeline(original);
    vm::Interpreter wrapped(result.pool);
    vm::bind_prelude_natives(wrapped);
    wrapped.call_static("Main", "main", "()V");  // statics stay static

    EXPECT_EQ(orig.output(), wrapped.output());
    EXPECT_EQ(orig.output(), "total=31\n");
}

TEST(Wrapper, DoubleAllocationPerInstance) {
    model::ClassPool original = make_original();
    WrapperResult result = run_wrapper_pipeline(original);
    vm::Interpreter wrapped(result.pool);
    vm::bind_prelude_natives(wrapped);
    wrapped.reset_counters();
    wrapped.call_static("Main", "main", "()V");
    // 3 logical objects -> 6 allocations (wrapper + target each).
    EXPECT_EQ(wrapped.counters().allocations, 6u);
}

TEST(Wrapper, InterceptionCostsExtraDispatch) {
    model::ClassPool original = make_original();

    vm::Interpreter orig(original);
    vm::bind_prelude_natives(orig);
    orig.call_static("Main", "main", "()V");

    WrapperResult result = run_wrapper_pipeline(original);
    vm::Interpreter wrapped(result.pool);
    vm::bind_prelude_natives(wrapped);
    wrapped.call_static("Main", "main", "()V");

    // "significantly greater overhead": every logical call is at least two
    // dispatches and every field access an extra call.
    EXPECT_GT(wrapped.counters().total_invokes(), 2 * orig.counters().total_invokes());
    EXPECT_GT(wrapped.counters().instructions, orig.counters().instructions);
}

TEST(Wrapper, InheritanceWrapsHierarchy) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, R"(
class Base {
  field b I
  ctor ()V {
    return
  }
  method who ()S {
    const "base"
    returnvalue
  }
}
class Derived extends Base {
  ctor ()V {
    load 0
    invokespecial Base.<init> ()V
    return
  }
  method who ()S {
    const "derived"
    returnvalue
  }
}
class Main {
  static method main ()V {
    new Derived
    dup
    invokespecial Derived.<init> ()V
    invokevirtual Base.who ()S
    invokestatic Sys.println (S)V
    return
  }
}
)");
    model::verify_pool(pool);
    WrapperResult result = run_wrapper_pipeline(pool);
    EXPECT_EQ(result.pool.get("Derived_Wrapper").super_name, "Base_Wrapper");
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    interp.call_static("Main", "main", "()V");
    EXPECT_EQ(interp.output(), "derived\n");
}

TEST(Wrapper, RejectsUserInterfaces) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, R"(
interface Api {
  method f ()V
}
class Impl implements Api {
  ctor ()V {
    return
  }
  method f ()V {
    return
  }
  method g (LApi;)V {
    load 1
    invokeinterface Api.f ()V
    return
  }
}
)");
    model::verify_pool(pool);
    EXPECT_THROW(run_wrapper_pipeline(pool), TransformError);
}

TEST(Wrapper, StaticsRemainStaticAndShared) {
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, R"(
class Counter {
  static field n I
  static method bump ()I {
    getstatic Counter.n I
    const 1
    add
    dup
    putstatic Counter.n I
    returnvalue
  }
}
)");
    model::verify_pool(pool);
    WrapperResult result = run_wrapper_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    EXPECT_EQ(interp.call_static("Counter", "bump", "()I").as_int(), 1);
    EXPECT_EQ(interp.call_static("Counter", "bump", "()I").as_int(), 2);
}

}  // namespace
}  // namespace rafda::wrapper
