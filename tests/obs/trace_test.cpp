#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rafda::obs {
namespace {

/// Fixture with a hand-cranked virtual clock.
struct TracerFixture : ::testing::Test {
    Tracer tracer;
    std::uint64_t clock = 0;

    void SetUp() override {
        tracer.set_enabled(true);
        tracer.set_clock([this] { return clock; });
    }

    const Span* find(const std::string& name) const {
        for (const Span& s : tracer.spans())
            if (s.name == name) return &s;
        return nullptr;
    }
};

TEST(Tracer, DisabledIsInert) {
    Tracer t;
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(t.begin("x"), 0u);
    t.note("k", "v");   // no open span: must not crash
    t.end(0);           // id 0 is a no-op
    EXPECT_TRUE(t.spans().empty());
    EXPECT_EQ(t.current_span(), 0u);
    EXPECT_EQ(t.current_trace(), 0u);
}

TEST_F(TracerFixture, NestingSharesTraceAndRecordsTimes) {
    std::uint64_t root = tracer.begin("outer", 0);
    clock = 10;
    std::uint64_t child = tracer.begin("inner", 1);
    EXPECT_EQ(tracer.current_span(), child);
    clock = 25;
    tracer.end(child);
    EXPECT_EQ(tracer.current_span(), root);
    clock = 40;
    tracer.end(root);
    EXPECT_EQ(tracer.current_span(), 0u);

    ASSERT_EQ(tracer.spans().size(), 2u);
    const Span& o = tracer.spans()[0];
    const Span& i = tracer.spans()[1];
    EXPECT_EQ(o.parent, 0u);
    EXPECT_EQ(o.trace, o.id);  // a root starts a new trace
    EXPECT_EQ(i.parent, o.id);
    EXPECT_EQ(i.trace, o.trace);
    EXPECT_EQ(i.node, 1);
    EXPECT_EQ(i.start_us, 10u);
    EXPECT_EQ(i.end_us, 25u);
    EXPECT_EQ(i.duration_us(), 15u);
    EXPECT_EQ(o.duration_us(), 40u);
}

TEST_F(TracerFixture, NewRootStartsNewTrace) {
    std::uint64_t a = tracer.begin("a");
    tracer.end(a);
    std::uint64_t b = tracer.begin("b");
    tracer.end(b);
    EXPECT_NE(tracer.spans()[0].trace, tracer.spans()[1].trace);
}

TEST_F(TracerFixture, EndClosesDescendantsLeftOpen) {
    std::uint64_t a = tracer.begin("a");
    tracer.begin("b");
    tracer.begin("c");
    clock = 99;
    tracer.end(a);  // closes c, b, then a
    for (const Span& s : tracer.spans()) EXPECT_EQ(s.end_us, 99u);
    EXPECT_EQ(tracer.current_span(), 0u);
}

TEST_F(TracerFixture, BeginRemoteUsesWireParentage) {
    std::uint64_t root = tracer.begin("rpc.invoke", 0);
    std::uint64_t trace = tracer.current_trace();
    // The server side parents from the decoded header, not from the stack.
    std::uint64_t dispatch = tracer.begin_remote("rpc.dispatch", 1, trace, root);
    const Span* d = find("rpc.dispatch");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->parent, root);
    EXPECT_EQ(d->trace, trace);
    EXPECT_EQ(d->node, 1);
    tracer.end(dispatch);
    tracer.end(root);
}

TEST_F(TracerFixture, BeginRemoteWithoutTraceStartsOne) {
    std::uint64_t id = tracer.begin_remote("orphan", 2, /*trace=*/0, /*parent=*/0);
    EXPECT_EQ(tracer.spans()[0].trace, id);
    tracer.end(id);
}

TEST_F(TracerFixture, NoteAttachesToInnermostOpenSpan) {
    std::uint64_t a = tracer.begin("a");
    tracer.begin("b");
    tracer.note("bytes", "61");
    tracer.end(a);
    EXPECT_TRUE(find("a")->notes.empty());
    ASSERT_EQ(find("b")->notes.size(), 1u);
    EXPECT_EQ(find("b")->notes[0].first, "bytes");
    EXPECT_EQ(find("b")->notes[0].second, "61");
}

TEST_F(TracerFixture, ScopedSpanClosesOnException) {
    try {
        ScopedSpan outer(tracer, "outer");
        ScopedSpan inner(tracer, "inner");
        clock = 7;
        throw std::runtime_error("dropped");
    } catch (const std::runtime_error&) {
    }
    // Both spans closed by unwinding; the open stack is consistent again.
    EXPECT_EQ(tracer.current_span(), 0u);
    EXPECT_EQ(find("outer")->end_us, 7u);
    EXPECT_EQ(find("inner")->end_us, 7u);
}

TEST_F(TracerFixture, ScopedSpanAdoptAndMoveTransferOwnership) {
    {
        ScopedSpan s = ScopedSpan::adopt(tracer, tracer.begin_remote("d", 1, 0, 0));
        ScopedSpan moved = std::move(s);
        EXPECT_EQ(s.id(), 0u);  // NOLINT(bugprone-use-after-move): moved-from is empty
        EXPECT_NE(moved.id(), 0u);
        EXPECT_EQ(tracer.current_span(), moved.id());
    }
    EXPECT_EQ(tracer.current_span(), 0u);  // closed exactly once, at scope exit
}

TEST_F(TracerFixture, ClearDropsSpansAndOpenStack) {
    tracer.begin("a");
    tracer.clear();
    EXPECT_TRUE(tracer.spans().empty());
    EXPECT_EQ(tracer.current_span(), 0u);
}

TEST_F(TracerFixture, RenderTreeShowsNestingAndNotes) {
    std::uint64_t a = tracer.begin("rpc.invoke C.poke", 0);
    tracer.note("target_node", "1");
    std::uint64_t b = tracer.begin("net.transfer 0->1", 0);
    tracer.end(b);
    tracer.end(a);

    std::string tree = tracer.render_tree();
    EXPECT_NE(tree.find("trace "), std::string::npos);
    EXPECT_NE(tree.find("rpc.invoke C.poke"), std::string::npos);
    EXPECT_NE(tree.find("(node 0)"), std::string::npos);
    EXPECT_NE(tree.find("target_node=1"), std::string::npos);
    // The child renders indented under the root with a branch glyph.
    EXPECT_NE(tree.find("└─ net.transfer 0->1"), std::string::npos);
}

TEST_F(TracerFixture, ToJsonIsOneLine) {
    std::uint64_t a = tracer.begin("a \"quoted\"", 0);
    tracer.note("k", "v");
    tracer.end(a);
    std::string json = tracer.to_json();
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"name\":\"a \\\"quoted\\\"\""), std::string::npos);
    EXPECT_NE(json.find("\"notes\":{\"k\":\"v\"}"), std::string::npos);
}

TEST(Tracer, UnsetClockReadsZero) {
    Tracer t;
    t.set_enabled(true);
    std::uint64_t id = t.begin("x");
    t.end(id);
    EXPECT_EQ(t.spans()[0].start_us, 0u);
    EXPECT_EQ(t.spans()[0].end_us, 0u);
}

}  // namespace
}  // namespace rafda::obs
