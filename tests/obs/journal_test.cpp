// The flight recorder's ring-buffer contract: disabled-by-default gating,
// bounded wrap-around with exact overwrite accounting, observation-window
// rebase, and the rafdac-facing JSON shape (DESIGN.md §16).
#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rafda::obs {
namespace {

using Kind = JournalEvent::Kind;

std::vector<JournalEvent> collect(const Journal& j) {
    std::vector<JournalEvent> out;
    j.visit([&](const JournalEvent& e) { out.push_back(e); });
    return out;
}

TEST(Journal, DisabledRecordsNothing) {
    Journal j;
    EXPECT_FALSE(j.enabled());
    j.record(Kind::RpcSend, 10, 0, 1, 42, 0, "m");
    EXPECT_EQ(j.size(), 0u);
    EXPECT_EQ(j.total_recorded(), 0u);
    EXPECT_EQ(j.to_json(),
              "{\"epoch_us\":0,\"capacity\":8192,\"total\":0,"
              "\"overwritten\":0,\"events\":[]}");
}

TEST(Journal, RecordsInOrderWithMonotoneSeq) {
    Journal j;
    j.set_enabled(true);
    j.record(Kind::RpcSend, 10, 0, 1, 7, 90, "RMI.poke");
    j.record(Kind::RpcArrive, 110, 1, 0, 7, 90, "");
    j.record(Kind::RpcReply, 220, 0, 1, 7, 30, "");

    std::vector<JournalEvent> events = collect(j);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].seq, 1u);
    EXPECT_EQ(events[1].seq, 2u);
    EXPECT_EQ(events[2].seq, 3u);
    EXPECT_EQ(events[0].kind, Kind::RpcSend);
    EXPECT_EQ(events[0].t_us, 10u);
    EXPECT_EQ(events[0].node, 0);
    EXPECT_EQ(events[0].peer, 1);
    EXPECT_EQ(events[0].a, 7u);
    EXPECT_EQ(events[0].b, 90u);
    EXPECT_EQ(events[0].detail, "RMI.poke");
    EXPECT_EQ(j.overwritten(), 0u);
}

TEST(Journal, WrapAroundKeepsNewestAndCountsOverwritten) {
    Journal j;
    j.set_capacity(4);
    j.set_enabled(true);
    for (std::uint64_t k = 0; k < 10; ++k)
        j.record(Kind::RpcSend, k, 0, 1, k, 0, "");

    EXPECT_EQ(j.size(), 4u);
    EXPECT_EQ(j.total_recorded(), 10u);
    EXPECT_EQ(j.overwritten(), 6u);
    std::vector<JournalEvent> events = collect(j);
    ASSERT_EQ(events.size(), 4u);
    // Oldest-to-newest traversal of the surviving tail, seq intact.
    for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(events[k].a, 6 + k);
        EXPECT_EQ(events[k].seq, 7 + k);
    }
}

TEST(Journal, CapacityZeroClampsToOne) {
    Journal j;
    j.set_capacity(0);
    EXPECT_EQ(j.capacity(), 1u);
    j.set_enabled(true);
    j.record(Kind::RpcSend, 1, 0, 1, 1, 0, "");
    j.record(Kind::RpcSend, 2, 0, 1, 2, 0, "");
    EXPECT_EQ(j.size(), 1u);
    EXPECT_EQ(collect(j)[0].a, 2u);
}

TEST(Journal, SetCapacityClearsContents) {
    Journal j;
    j.set_enabled(true);
    j.record(Kind::RpcSend, 1, 0, 1, 1, 0, "");
    j.set_capacity(16);
    EXPECT_EQ(j.size(), 0u);
    EXPECT_EQ(j.total_recorded(), 0u);
    j.record(Kind::RpcSend, 2, 0, 1, 2, 0, "");
    EXPECT_EQ(j.size(), 1u);
}

TEST(Journal, DisableStopsRecordingButKeepsEvents) {
    Journal j;
    j.set_enabled(true);
    j.record(Kind::Migrate, 5, 0, 1, 100, 200, "C");
    j.set_enabled(false);
    j.record(Kind::Migrate, 6, 1, 2, 101, 201, "C");
    EXPECT_EQ(j.size(), 1u);
    EXPECT_EQ(collect(j)[0].a, 100u);
}

TEST(Journal, RebaseDropsEventsAndMovesEpoch) {
    Journal j;
    j.set_enabled(true);
    j.record(Kind::FaultEdge, 50, 0, 1, 1, 0, "link");
    EXPECT_EQ(j.epoch_us(), 0u);

    j.rebase(5000);
    EXPECT_EQ(j.epoch_us(), 5000u);
    EXPECT_EQ(j.size(), 0u);
    EXPECT_EQ(j.total_recorded(), 0u);
    EXPECT_TRUE(j.enabled());  // rebase opens a new window, doesn't disarm

    j.record(Kind::FaultEdge, 5100, 0, 1, 0, 0, "link");
    EXPECT_EQ(j.size(), 1u);
}

TEST(Journal, ToJsonShape) {
    Journal j;
    j.set_capacity(4);
    j.set_enabled(true);
    j.record(Kind::DedupHit, 42, 1, -1, 9, 0, "");
    j.record(Kind::Breaker, 50, 0, 2, 1, 0, "q\"uote");

    EXPECT_EQ(j.to_json(),
              "{\"epoch_us\":0,\"capacity\":4,\"total\":2,\"overwritten\":0,"
              "\"events\":["
              "{\"seq\":1,\"t_us\":42,\"kind\":\"dedup\",\"node\":1,"
              "\"peer\":-1,\"a\":9,\"b\":0},"
              "{\"seq\":2,\"t_us\":50,\"kind\":\"breaker\",\"node\":0,"
              "\"peer\":2,\"a\":1,\"b\":0,\"detail\":\"q\\\"uote\"}"
              "]}");
}

TEST(Journal, KindNamesAreStable) {
    EXPECT_STREQ(journal_kind_name(Kind::RpcSend), "send");
    EXPECT_STREQ(journal_kind_name(Kind::RpcArrive), "arrive");
    EXPECT_STREQ(journal_kind_name(Kind::RpcDispatch), "dispatch");
    EXPECT_STREQ(journal_kind_name(Kind::RpcReply), "reply");
    EXPECT_STREQ(journal_kind_name(Kind::RpcDrop), "drop");
    EXPECT_STREQ(journal_kind_name(Kind::RpcRetry), "retry");
    EXPECT_STREQ(journal_kind_name(Kind::RpcTimeout), "timeout");
    EXPECT_STREQ(journal_kind_name(Kind::DedupHit), "dedup");
    EXPECT_STREQ(journal_kind_name(Kind::Breaker), "breaker");
    EXPECT_STREQ(journal_kind_name(Kind::FaultEdge), "fault");
    EXPECT_STREQ(journal_kind_name(Kind::Migrate), "migrate");
}

}  // namespace
}  // namespace rafda::obs
