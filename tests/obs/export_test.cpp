#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rafda::obs {
namespace {

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
    EXPECT_EQ(json_escape(std::string("x\x01y")), "x\\u0001y");
}

TEST(ToJson, EmptySnapshotIsEmptyObject) {
    EXPECT_EQ(to_json(Snapshot{}), "{}");
}

TEST(ToJson, EmitsEveryKindOnOneLine) {
    Registry reg;
    reg.counter("rpc.calls").add(3);
    reg.gauge("queue.depth").set(-2);
    Histogram& h = reg.histogram("rpc.size");
    h.record(1);
    h.record(3);

    std::string json = to_json(reg.snapshot());
    EXPECT_EQ(json.find('\n'), std::string::npos);
    // std::map ordering makes the whole document deterministic.  Histogram
    // samples carry derived quantiles plus explicit inclusive bucket upper
    // bounds, so external tools never need the bucket layout.
    EXPECT_EQ(json,
              "{\"queue.depth\":-2,"
              "\"rpc.calls\":3,"
              "\"rpc.size\":{\"count\":2,\"sum\":4,\"min\":1,\"max\":3,\"mean\":2,"
              "\"p50\":1,\"p95\":1,\"p99\":1,"
              "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":3,\"count\":1}]}}");
}

TEST(ToJson, EmptyHistogramExportsZeroQuantiles) {
    // A histogram that was resolved but never recorded (or was reset) must
    // export well-defined zeros, not garbage quantiles.
    Registry reg;
    reg.histogram("rpc.latency.C.poke");
    EXPECT_EQ(to_json(reg.snapshot()),
              "{\"rpc.latency.C.poke\":{\"count\":0,\"sum\":0,\"min\":0,"
              "\"max\":0,\"mean\":0,\"p50\":0,\"p95\":0,\"p99\":0,"
              "\"buckets\":[]}}");
}

TEST(ToJson, SingleSampleHistogramQuantilesMatchTheSample) {
    Registry reg;
    reg.histogram("h").record(77);
    std::string json = to_json(reg.snapshot());
    EXPECT_NE(json.find("\"p50\":77"), std::string::npos);
    EXPECT_NE(json.find("\"p95\":77"), std::string::npos);
    EXPECT_NE(json.find("\"p99\":77"), std::string::npos);
}

TEST(ToJson, OverflowBucketBoundIsUint64Max) {
    Registry reg;
    reg.histogram("h").record(~std::uint64_t{0});
    EXPECT_NE(to_json(reg.snapshot())
                  .find("{\"le\":18446744073709551615,\"count\":1}"),
              std::string::npos);
}

TEST(ToJson, QuantilesClampToObservedMax) {
    Registry reg;
    Histogram& h = reg.histogram("h");
    for (int k = 0; k < 100; ++k) h.record(1000);  // bucket [512, 1024)
    std::string json = to_json(reg.snapshot());
    // The bucket bound (1023) exceeds the largest recorded value; exported
    // quantiles must clamp to max, never invent values nobody recorded.
    EXPECT_NE(json.find("\"p99\":1000"), std::string::npos);
}

TEST(ToTable, AlignsNamesAndSummarisesHistograms) {
    Registry reg;
    reg.counter("short").add(7);
    reg.counter("a.much.longer.metric.name").add(1);
    reg.histogram("h").record(4);

    std::string table = to_table(reg.snapshot());
    // One line per metric; names padded two past the longest name's column.
    const std::string longest = "a.much.longer.metric.name";
    EXPECT_NE(table.find(longest + "  1\n"), std::string::npos);
    EXPECT_NE(table.find("short" + std::string(longest.size() - 5 + 2, ' ') + "7\n"),
              std::string::npos);
    EXPECT_NE(table.find("count=1 sum=4 min=4 max=4 mean=4"), std::string::npos);
}

TEST(ToTable, TruncatesAfterMaxRowsWithAStableCut) {
    Registry reg;
    for (int k = 0; k < 30; ++k)
        reg.counter("metric." + std::to_string(k / 10) + "." + std::to_string(k % 10))
            .add(1);

    // Samples are name-sorted, so the head is the lexicographic prefix and
    // the marker counts exactly what was cut.
    std::string table = to_table(reg.snapshot(), 5);
    EXPECT_NE(table.find("metric.0.4"), std::string::npos);
    EXPECT_EQ(table.find("metric.0.5"), std::string::npos);
    EXPECT_NE(table.find("... 25 more sample(s) (pass --all to list every one)"),
              std::string::npos);

    // 0 = no cap: every row, no marker.
    std::string full = to_table(reg.snapshot(), 0);
    EXPECT_NE(full.find("metric.2.9"), std::string::npos);
    EXPECT_EQ(full.find("more sample(s)"), std::string::npos);

    // A cap at or past the row count lists everything without a marker.
    EXPECT_EQ(to_table(reg.snapshot(), 30), full);
}

}  // namespace
}  // namespace rafda::obs
