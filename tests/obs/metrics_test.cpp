#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rafda::obs {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(Histogram, BucketIndexEdges) {
    // Bucket 0 is exact zeros; bucket i covers [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucket_index(0), 0u);
    EXPECT_EQ(Histogram::bucket_index(1), 1u);
    EXPECT_EQ(Histogram::bucket_index(2), 2u);
    EXPECT_EQ(Histogram::bucket_index(3), 2u);
    EXPECT_EQ(Histogram::bucket_index(4), 3u);
    EXPECT_EQ(Histogram::bucket_index(7), 3u);
    EXPECT_EQ(Histogram::bucket_index(8), 4u);
    EXPECT_EQ(Histogram::bucket_index((1u << 30) - 1), 30u);
    // Everything with bit_width >= kBuckets lands in the last bucket.
    EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 32), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucket_index(kMax), Histogram::kBuckets - 1);
}

TEST(Histogram, BucketUpperBounds) {
    EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
    EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
    EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
    EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023u);
    EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::kBuckets - 1), kMax);
    // Consistency: every value sits at or below its bucket's upper bound.
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{900},
                            std::uint64_t{1} << 40, kMax})
        EXPECT_GE(Histogram::bucket_upper_bound(Histogram::bucket_index(v)), v);
}

TEST(Histogram, RecordAccumulatesStats) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    for (std::uint64_t v : {7u, 0u, 100u, 3u}) h.record(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 110u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 27.5);
    EXPECT_EQ(h.buckets()[0], 1u);                             // the zero
    EXPECT_EQ(h.buckets()[Histogram::bucket_index(7)], 1u);    // [4,8)
    EXPECT_EQ(h.buckets()[Histogram::bucket_index(100)], 1u);  // [64,128)
}

TEST(Histogram, ApproxQuantileIsMonotoneAndClamped) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    std::uint64_t p0 = h.approx_quantile(0.0);
    std::uint64_t p50 = h.approx_quantile(0.5);
    std::uint64_t p99 = h.approx_quantile(0.99);
    EXPECT_LE(p0, p50);
    EXPECT_LE(p50, p99);
    // Quantiles come from bucket upper bounds but never exceed the true max.
    EXPECT_LE(p99, 100u);
    EXPECT_GE(p50, 32u);  // the median (50) lives in [32,64)
    EXPECT_EQ(Histogram().approx_quantile(0.5), 0u);
}

TEST(Histogram, QuantileIsExactForSmallN) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    // Nearest-rank over the retained samples: rank = floor(q * (N-1)).
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(0.5), 50u);   // floor(0.5 * 99) = 49 -> value 50
    EXPECT_EQ(h.quantile(0.95), 95u);  // floor(0.95 * 99) = 94 -> value 95
    EXPECT_EQ(h.quantile(0.99), 99u);
    EXPECT_EQ(h.quantile(1.0), 100u);
    EXPECT_EQ(Histogram().quantile(0.5), 0u);
}

TEST(Histogram, EmptyHistogramQuantilesAreDefinedZero) {
    // N = 0 has no nearest rank; both quantile paths must return a defined
    // 0 rather than index an empty sample array — including right after a
    // reset, when stale retained samples must not leak back out.
    Histogram h;
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
        EXPECT_EQ(h.quantile(q), 0u) << "q=" << q;
        EXPECT_EQ(h.approx_quantile(q), 0u) << "q=" << q;
    }
    h.record(1234);
    h.reset();
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(h.quantile(q), 0u) << "q=" << q;
}

TEST(Histogram, SingleSampleQuantilesReturnTheSample) {
    Histogram h;
    h.record(77);
    EXPECT_EQ(h.quantile(0.50), 77u);
    EXPECT_EQ(h.quantile(0.95), 77u);
    EXPECT_EQ(h.quantile(0.99), 77u);
    EXPECT_EQ(h.approx_quantile(0.99), 77u);  // bucket bound clamps to max
}

TEST(Histogram, QuantileExactPathIsInsertionOrderIndependent) {
    Histogram up, down;
    for (std::uint64_t v = 1; v <= 50; ++v) up.record(v);
    for (std::uint64_t v = 50; v >= 1; --v) down.record(v);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(up.quantile(q), down.quantile(q)) << "q=" << q;
}

TEST(Histogram, QuantileDegradesToBucketsBeyondExactCap) {
    Histogram h;
    // One past the retained-sample cap: the exact array no longer covers
    // the population, so quantile() must fall back to the bucket
    // approximation rather than report a truncated exact answer.
    for (std::uint64_t v = 1; v <= Histogram::kExactCap + 1; ++v) h.record(v);
    const std::uint64_t p50 = h.quantile(0.5);
    EXPECT_EQ(p50, h.approx_quantile(0.5));
    // Still monotone and clamped to the true extrema.
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
    EXPECT_LE(h.quantile(0.99), Histogram::kExactCap + 1);

    // At exactly the cap, the exact path still applies.
    Histogram at_cap;
    for (std::uint64_t v = 1; v <= Histogram::kExactCap; ++v) at_cap.record(v);
    EXPECT_EQ(at_cap.quantile(1.0), Histogram::kExactCap);
}

TEST(Histogram, QuantileFromBucketsClampsToMax) {
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    buckets[Histogram::bucket_index(1000)] = 10;  // bound 1023 > true max
    EXPECT_EQ(Histogram::quantile_from_buckets(buckets, 10, 1000, 0.99), 1000u);
    EXPECT_EQ(Histogram::quantile_from_buckets(buckets, 0, 0, 0.5), 0u);
}

TEST(Histogram, ResetZeroesEverything) {
    Histogram h;
    h.record(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
    for (std::uint64_t b : h.buckets()) EXPECT_EQ(b, 0u);
}

TEST(Registry, HandlesAreStableAcrossReset) {
    Registry reg;
    Counter& c = reg.counter("a.calls");
    Gauge& g = reg.gauge("a.depth");
    Histogram& h = reg.histogram("a.size");
    c.add(5);
    g.set(-3);
    h.record(9);

    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);

    // Same name resolves to the same object, and the handle still works.
    EXPECT_EQ(&reg.counter("a.calls"), &c);
    c.add(2);
    EXPECT_EQ(reg.find_counter("a.calls")->value(), 2u);
}

TEST(Registry, FindReturnsNullForUnknownNames) {
    Registry reg;
    reg.counter("present");
    EXPECT_NE(reg.find_counter("present"), nullptr);
    EXPECT_EQ(reg.find_counter("absent"), nullptr);
    EXPECT_EQ(reg.find_gauge("absent"), nullptr);
    EXPECT_EQ(reg.find_histogram("absent"), nullptr);
}

TEST(Registry, ProbesSampleLiveStateAtSnapshotTime) {
    Registry reg;
    std::int64_t external = 10;
    reg.register_probe("vm.node0.instructions", [&] { return external; });

    Snapshot s1 = reg.snapshot();
    external = 25;
    Snapshot s2 = reg.snapshot();
    ASSERT_NE(s1.find("vm.node0.instructions"), nullptr);
    EXPECT_EQ(s1.find("vm.node0.instructions")->gauge, 10);
    EXPECT_EQ(s2.find("vm.node0.instructions")->gauge, 25);

    // reset() leaves probes alone: they sample external state.
    reg.reset();
    EXPECT_EQ(reg.snapshot().find("vm.node0.instructions")->gauge, 25);
}

TEST(Registry, RemoveProbesWithPrefix) {
    Registry reg;
    reg.register_probe("vm.node0.instructions", [] { return 1; });
    reg.register_probe("vm.node0.invokes", [] { return 2; });
    reg.register_probe("vm.node1.instructions", [] { return 3; });
    reg.remove_probes_with_prefix("vm.node0.");
    Snapshot s = reg.snapshot();
    EXPECT_EQ(s.find("vm.node0.instructions"), nullptr);
    EXPECT_EQ(s.find("vm.node0.invokes"), nullptr);
    ASSERT_NE(s.find("vm.node1.instructions"), nullptr);
    EXPECT_EQ(s.find("vm.node1.instructions")->gauge, 3);
}

TEST(Registry, VisitCountersInNameOrder) {
    Registry reg;
    reg.counter("b").add(2);
    reg.counter("a").add(1);
    reg.counter("c").add(3);
    std::vector<std::string> names;
    std::vector<std::uint64_t> values;
    reg.visit_counters([&](const std::string& n, std::uint64_t v) {
        names.push_back(n);
        values.push_back(v);
    });
    EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(values, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Snapshot, CounterValueConvenience) {
    Registry reg;
    reg.counter("x").add(7);
    reg.gauge("g").set(9);
    Snapshot s = reg.snapshot();
    EXPECT_EQ(s.counter_value("x"), 7u);
    EXPECT_EQ(s.counter_value("missing"), 0u);
    EXPECT_EQ(s.counter_value("g"), 0u);  // not a counter
}

TEST(Snapshot, DiffSubtractsCountersAndHistograms) {
    Registry reg;
    Counter& c = reg.counter("calls");
    Histogram& h = reg.histogram("size");
    c.add(10);
    h.record(4);
    Snapshot before = reg.snapshot();

    c.add(5);
    h.record(4);
    h.record(1000);
    Snapshot after = reg.snapshot();

    Snapshot d = diff(before, after);
    EXPECT_EQ(d.counter_value("calls"), 5u);
    const Sample* hs = d.find("size");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, 2u);
    EXPECT_EQ(hs->sum, 1004u);
    EXPECT_EQ(hs->buckets[Histogram::bucket_index(4)], 1u);
    EXPECT_EQ(hs->buckets[Histogram::bucket_index(1000)], 1u);
}

TEST(Snapshot, DiffKeepsGaugeLevelAndTakesNewMetricsWhole) {
    Registry reg;
    reg.gauge("depth").set(3);
    Snapshot before = reg.snapshot();
    reg.gauge("depth").set(8);
    reg.counter("born.later").add(4);  // absent in `before`
    Snapshot d = diff(before, reg.snapshot());
    EXPECT_EQ(d.find("depth")->gauge, 8);  // level, not delta
    EXPECT_EQ(d.counter_value("born.later"), 4u);
}

TEST(Snapshot, DiffClampsBackwardCountersToZero) {
    // A reset between the two snapshots must not underflow.
    Registry reg;
    reg.counter("calls").add(10);
    Snapshot before = reg.snapshot();
    reg.reset();
    reg.counter("calls").add(2);
    EXPECT_EQ(diff(before, reg.snapshot()).counter_value("calls"), 0u);
}

}  // namespace
}  // namespace rafda::obs
