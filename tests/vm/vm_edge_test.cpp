// Edge-case and stress coverage for the interpreter and heap.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "support/error.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"

namespace rafda::vm {
namespace {

struct Fixture {
    model::ClassPool pool;
    std::unique_ptr<Interpreter> interp;

    explicit Fixture(const char* src) {
        install_prelude(pool);
        model::assemble_into(pool, src);
        model::verify_pool(pool);
        interp = std::make_unique<Interpreter>(pool);
        bind_prelude_natives(*interp);
    }
};

TEST(VmEdge, SwapAndDupAndNop) {
    Fixture f(R"(
class A {
  static method f (II)I {
    nop
    load 0
    load 1
    swap
    sub
    returnvalue
  }
  static method g (I)I {
    load 0
    dup
    mul
    returnvalue
  }
}
)");
    // swap makes it arg1 - arg0.
    EXPECT_EQ(f.interp->call_static("A", "f", "(II)I",
                                    {Value::of_int(3), Value::of_int(10)})
                  .as_int(),
              7);
    EXPECT_EQ(f.interp->call_static("A", "g", "(I)I", {Value::of_int(9)}).as_int(), 81);
}

TEST(VmEdge, RemainderAndNegativeDivision) {
    Fixture f(R"(
class A {
  static method r (II)I {
    load 0
    load 1
    rem
    returnvalue
  }
  static method d (II)I {
    load 0
    load 1
    div
    returnvalue
  }
}
)");
    auto r = [&](int a, int b) {
        return f.interp->call_static("A", "r", "(II)I", {Value::of_int(a), Value::of_int(b)})
            .as_int();
    };
    auto d = [&](int a, int b) {
        return f.interp->call_static("A", "d", "(II)I", {Value::of_int(a), Value::of_int(b)})
            .as_int();
    };
    EXPECT_EQ(r(7, 3), 1);
    EXPECT_EQ(r(-7, 3), -1);  // C++/Java truncation semantics
    EXPECT_EQ(d(-7, 2), -3);
    EXPECT_THROW(r(1, 0), VmError);
}

TEST(VmEdge, DoubleRemainderUsesFmod) {
    Fixture f(R"(
class A {
  static method r (DD)D {
    load 0
    load 1
    rem
    returnvalue
  }
}
)");
    EXPECT_DOUBLE_EQ(f.interp
                         ->call_static("A", "r", "(DD)D",
                                       {Value::of_double(7.5), Value::of_double(2.0)})
                         .as_double(),
                     1.5);
}

TEST(VmEdge, StringOrderingComparisons) {
    Fixture f(R"(
class A {
  static method lt (SS)Z {
    load 0
    load 1
    cmplt
    returnvalue
  }
}
)");
    auto lt = [&](const char* a, const char* b) {
        return f.interp
            ->call_static("A", "lt", "(SS)Z", {Value::of_str(a), Value::of_str(b)})
            .as_bool();
    };
    EXPECT_TRUE(lt("abc", "abd"));
    EXPECT_FALSE(lt("abd", "abc"));
    EXPECT_TRUE(lt("ab", "abc"));
    EXPECT_FALSE(lt("abc", "abc"));
}

TEST(VmEdge, MixedIntLongComparison) {
    Fixture f(R"(
class A {
  static method eq (IJ)Z {
    load 0
    load 1
    cmpeq
    returnvalue
  }
}
)");
    EXPECT_TRUE(f.interp
                    ->call_static("A", "eq", "(IJ)Z",
                                  {Value::of_int(42), Value::of_long(42)})
                    .as_bool());
    EXPECT_FALSE(f.interp
                     ->call_static("A", "eq", "(IJ)Z",
                                   {Value::of_int(42), Value::of_long(43)})
                     .as_bool());
}

TEST(VmEdge, HeapTransmutePreservesIdentity) {
    Fixture f(R"(
class Before {
  field x I
  ctor ()V {
    return
  }
}
class After {
  field a I
  field b J
  ctor ()V {
    return
  }
}
)");
    Value obj = f.interp->construct("Before", "()V", {});
    ObjId id = obj.as_ref();
    f.interp->set_field(id, "x", Value::of_int(5));
    EXPECT_EQ(f.interp->class_of(id).name, "Before");

    f.interp->heap().transmute(id, f.pool.get("After"),
                               {Value::of_int(1), Value::of_long(2)});
    EXPECT_EQ(f.interp->class_of(id).name, "After");
    EXPECT_EQ(f.interp->get_field(id, "a").as_int(), 1);
    EXPECT_EQ(f.interp->get_field(id, "b").as_long(), 2);
    // Old field is gone.
    EXPECT_THROW(f.interp->get_field(id, "x"), VerifyError);
}

TEST(VmEdge, HeapRejectsBadIds) {
    Fixture f("class A {\n ctor ()V {\n return\n }\n}\n");
    EXPECT_THROW(f.interp->heap().get(0), VmError);
    EXPECT_THROW(f.interp->heap().get(999), VmError);
}

TEST(VmEdge, CountersForStatics) {
    Fixture f(R"(
class A {
  static field s I
  static method touch ()I {
    getstatic A.s I
    const 1
    add
    dup
    putstatic A.s I
    returnvalue
  }
}
)");
    f.interp->reset_counters();
    f.interp->call_static("A", "touch", "()I");
    EXPECT_EQ(f.interp->counters().static_reads, 1u);
    EXPECT_EQ(f.interp->counters().static_writes, 1u);
    EXPECT_EQ(f.interp->counters().invokes_static, 1u);
}

TEST(VmEdge, ConvExtremes) {
    Fixture f(R"(
class A {
  static method l2i (J)I {
    load 0
    conv I
    returnvalue
  }
  static method i2d (I)D {
    load 0
    conv D
    returnvalue
  }
}
)");
    // Truncation of a long into int range (implementation-defined wrap in
    // C++; we only require determinism, so pin the common behaviour).
    EXPECT_EQ(f.interp->call_static("A", "l2i", "(J)I", {Value::of_long(1)}).as_int(), 1);
    EXPECT_DOUBLE_EQ(
        f.interp->call_static("A", "i2d", "(I)D", {Value::of_int(-3)}).as_double(), -3.0);
}

TEST(VmEdge, OutputAccumulatesAndClears) {
    Fixture f(R"(
class A {
  static method say (S)V {
    load 0
    invokestatic Sys.print (S)V
    return
  }
}
)");
    f.interp->call_static("A", "say", "(S)V", {Value::of_str("a")});
    f.interp->call_static("A", "say", "(S)V", {Value::of_str("b")});
    EXPECT_EQ(f.interp->output(), "ab");
    f.interp->clear_output();
    EXPECT_EQ(f.interp->output(), "");
}

TEST(VmEdge, DeepButFiniteRecursionSucceeds) {
    Fixture f(R"(
class A {
  static method down (I)I {
    load 0
    const 0
    cmple
    iffalse Rec
    const 0
    returnvalue
  Rec:
    load 0
    const 1
    sub
    invokestatic A.down (I)I
    const 1
    add
    returnvalue
  }
}
)");
    EXPECT_EQ(
        f.interp->call_static("A", "down", "(I)I", {Value::of_int(1500)}).as_int(), 1500);
}

TEST(VmEdge, BooleanShortCircuitViaBranches) {
    // The assembler has no && operator; guests compile short-circuit logic
    // into branches.  Check a null guard pattern works.
    Fixture f(R"(
class Node {
  field next LNode;
  ctor ()V {
    return
  }
  static method hasNext (LNode;)Z {
    load 0
    const null
    cmpeq
    iffalse Check
    const false
    returnvalue
  Check:
    load 0
    getfield Node.next LNode;
    const null
    cmpne
    returnvalue
  }
}
)");
    Value n = f.interp->construct("Node", "()V", {});
    EXPECT_FALSE(
        f.interp->call_static("Node", "hasNext", "(LNode;)Z", {Value::null()}).as_bool());
    EXPECT_FALSE(f.interp->call_static("Node", "hasNext", "(LNode;)Z", {n}).as_bool());
    Value m = f.interp->construct("Node", "()V", {});
    f.interp->set_field(n.as_ref(), "next", m);
    EXPECT_TRUE(f.interp->call_static("Node", "hasNext", "(LNode;)Z", {n}).as_bool());
}

}  // namespace
}  // namespace rafda::vm
