// Arrays — the paper defers them ("language specific issues ... beyond the
// scope of this paper", Sec 2.4) but notes solutions exist.  These tests
// cover our implementation: typed arrays in the VM, element-type mapping
// through the transformation, and the documented node-local restriction.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/printer.hpp"
#include "model/verifier.hpp"
#include "runtime/system.hpp"
#include "support/error.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"
#include "wrapper/wrapper_pipeline.hpp"

namespace rafda::vm {
namespace {

struct Fixture {
    model::ClassPool pool;
    std::unique_ptr<Interpreter> interp;

    explicit Fixture(const char* src) {
        install_prelude(pool);
        model::assemble_into(pool, src);
        model::verify_pool(pool);
        interp = std::make_unique<Interpreter>(pool);
        bind_prelude_natives(*interp);
    }
};

TEST(Arrays, TypeDescriptorSyntax) {
    model::TypeDesc ints = model::TypeDesc::parse("[I");
    EXPECT_TRUE(ints.is_array());
    EXPECT_EQ(ints.element().kind(), model::Kind::Int);
    EXPECT_EQ(ints.descriptor(), "[I");

    model::TypeDesc nested = model::TypeDesc::parse("[[LX;");
    EXPECT_TRUE(nested.is_array());
    EXPECT_TRUE(nested.element().is_array());
    EXPECT_EQ(nested.element().element().class_name(), "X");
    EXPECT_EQ(nested.descriptor(), "[[LX;");

    EXPECT_THROW(model::TypeDesc::parse("["), ParseError);
    EXPECT_THROW(model::TypeDesc::parse("[V"), ParseError);
    EXPECT_THROW(model::TypeDesc::int_().element(), VerifyError);
}

TEST(Arrays, SumLoop) {
    Fixture f(R"(
class A {
  static method sumSquares (I)J {
    locals 3
    load 0
    newarray J
    store 1
    const 0
    store 2
  Fill:
    load 2
    load 0
    cmpge
    iftrue Sum
    load 1
    load 2
    load 2
    load 2
    mul
    conv J
    astore
    load 2
    const 1
    add
    store 2
    goto Fill
  Sum:
    const 0L
    store 0
    const 0
    store 2
  Top:
    load 2
    load 1
    alen
    cmpge
    iftrue Done
    load 0
    load 1
    load 2
    aload
    add
    store 0
    load 2
    const 1
    add
    store 2
    goto Top
  Done:
    load 0
    returnvalue
  }
}
)");
    // sum of squares 0..9 = 285
    EXPECT_EQ(
        f.interp->call_static("A", "sumSquares", "(I)J", {Value::of_int(10)}).as_long(),
        285);
}

TEST(Arrays, DefaultValuesPerElementType) {
    Fixture f(R"(
class A {
  static method firstLong ()J {
    const 3
    newarray J
    const 0
    aload
    returnvalue
  }
  static method firstStr ()S {
    const 3
    newarray S
    const 0
    aload
    returnvalue
  }
  static method firstRefIsNull ()Z {
    const 3
    newarray LA;
    const 0
    aload
    const null
    cmpeq
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "firstLong", "()J").as_long(), 0);
    EXPECT_EQ(f.interp->call_static("A", "firstStr", "()S").as_str(), "");
    EXPECT_TRUE(f.interp->call_static("A", "firstRefIsNull", "()Z").as_bool());
}

TEST(Arrays, BoundsChecked) {
    Fixture f(R"(
class A {
  static method oob (I)I {
    const 2
    newarray I
    load 0
    aload
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "oob", "(I)I", {Value::of_int(1)}).as_int(), 0);
    EXPECT_THROW(f.interp->call_static("A", "oob", "(I)I", {Value::of_int(2)}), VmError);
    EXPECT_THROW(f.interp->call_static("A", "oob", "(I)I", {Value::of_int(-1)}), VmError);
}

TEST(Arrays, NegativeLengthRejected) {
    Fixture f(R"(
class A {
  static method mk (I)V {
    load 0
    newarray I
    pop
    return
  }
}
)");
    EXPECT_THROW(f.interp->call_static("A", "mk", "(I)V", {Value::of_int(-1)}), VmError);
}

TEST(Arrays, ArraysOfObjectsHoldReferences) {
    Fixture f(R"(
class Cell {
  field v I
  ctor (I)V {
    load 0
    load 1
    putfield Cell.v I
    return
  }
  method get ()I {
    load 0
    getfield Cell.v I
    returnvalue
  }
}
class A {
  static method viaArray (I)I {
    locals 2
    const 1
    newarray LCell;
    store 1
    load 1
    const 0
    new Cell
    dup
    load 0
    invokespecial Cell.<init> (I)V
    astore
    load 1
    const 0
    aload
    invokevirtual Cell.get ()I
    returnvalue
  }
}
)");
    EXPECT_EQ(
        f.interp->call_static("A", "viaArray", "(I)I", {Value::of_int(17)}).as_int(), 17);
}

// --- transformation ------------------------------------------------------

constexpr const char* kArrayApp = R"(
class Item {
  field weight I
  ctor (I)V {
    load 0
    load 1
    putfield Item.weight I
    return
  }
  method weight ()I {
    load 0
    getfield Item.weight I
    returnvalue
  }
}
class Main {
  static method main ()V {
    locals 2
    const 3
    newarray LItem;
    store 0
    const 0
    store 1
  Fill:
    load 1
    const 3
    cmpge
    iftrue Use
    load 0
    load 1
    new Item
    dup
    load 1
    const 10
    mul
    invokespecial Item.<init> (I)V
    astore
    load 1
    const 1
    add
    store 1
    goto Fill
  Use:
    const "w1="
    load 0
    const 1
    aload
    invokevirtual Item.weight ()I
    concat
    const " len="
    concat
    load 0
    alen
    concat
    invokestatic Sys.println (S)V
    return
  }
}
)";

TEST(Arrays, TransformedProgramEquivalent) {
    model::ClassPool original;
    install_prelude(original);
    model::assemble_into(original, kArrayApp);
    model::verify_pool(original);

    Interpreter orig(original);
    bind_prelude_natives(orig);
    orig.call_static("Main", "main", "()V");
    ASSERT_EQ(orig.output(), "w1=10 len=3\n");

    transform::PipelineResult result = transform::run_pipeline(original);
    // The allocation site was retyped to the extracted interface.
    const model::Method* main =
        result.pool.get("Main_C_Local").find_method("main", "()V");
    ASSERT_NE(main, nullptr);
    bool saw_mapped_newarray = false;
    for (const model::Instruction& i : main->code.instrs)
        if (i.op == model::Op::NewArray && i.desc == "LItem_O_Int;")
            saw_mapped_newarray = true;
    EXPECT_TRUE(saw_mapped_newarray);

    Interpreter trans(result.pool);
    bind_prelude_natives(trans);
    transform::bind_local_factories(trans, result.report);
    transform::call_transformed_static(trans, original, result.report, "Main", "main",
                                       "()V");
    EXPECT_EQ(trans.output(), orig.output());
}

TEST(Arrays, ArrayFieldsAndSignaturesMap) {
    model::ClassPool original;
    install_prelude(original);
    model::assemble_into(original, R"(
class Elem {
  ctor ()V {
    return
  }
}
class Holder {
  field items [LElem;
  ctor ()V {
    load 0
    const 4
    newarray LElem;
    putfield Holder.items [LElem;
    return
  }
  method items ()[LElem; {
    load 0
    getfield Holder.items [LElem;
    returnvalue
  }
}
)");
    model::verify_pool(original);
    transform::PipelineResult result = transform::run_pipeline(original);
    const model::ClassFile& iface = result.pool.get("Holder_O_Int");
    EXPECT_NE(iface.find_method("get_items", "()[LElem_O_Int;"), nullptr);
    EXPECT_NE(iface.find_method("items", "()[LElem_O_Int;"), nullptr);
}

TEST(Arrays, CannotCrossAddressSpaces) {
    model::ClassPool original;
    install_prelude(original);
    model::assemble_into(original, R"(
class Sink {
  ctor ()V {
    return
  }
  method consume ([I)V {
    return
  }
}
)");
    model::verify_pool(original);
    runtime::System system(original);
    system.add_node();
    system.add_node();
    system.policy().set_instance_home("Sink", 1, "RMI");
    Value sink = system.construct(0, "Sink", "()V");
    vm::Interpreter& n0 = system.node(0).interp();
    Value arr = Value::of_ref(n0.heap().alloc_array(model::TypeDesc::int_(), 4));
    EXPECT_THROW(n0.call_virtual(sink, "consume", "([I)V", {arr}), RuntimeError);
}

TEST(Arrays, WrapperPipelineRejectsWrappedElementArrays) {
    model::ClassPool original;
    install_prelude(original);
    model::assemble_into(original, R"(
class Elem {
  ctor ()V {
    return
  }
}
class User {
  static method mk ()V {
    const 2
    newarray LElem;
    pop
    return
  }
}
)");
    model::verify_pool(original);
    EXPECT_THROW(wrapper::run_wrapper_pipeline(original), TransformError);
}

TEST(Arrays, PrintAssembleRoundTrip) {
    model::ClassPool pool;
    install_prelude(pool);
    model::assemble_into(pool, kArrayApp);
    model::ClassPool reparsed;
    model::assemble_into(reparsed, model::print_pool(pool));
    EXPECT_EQ(model::print_pool(pool), model::print_pool(reparsed));
    EXPECT_TRUE(model::verify_pool_collect(reparsed).empty());
}

TEST(Arrays, VerifierCatchesBadArrayTypes) {
    model::ClassPool pool;
    model::assemble_into(pool, R"(
class A {
  static method f ()V {
    const 1
    newarray LGhost;
    pop
    return
  }
}
)");
    bool found = false;
    for (const std::string& p : model::verify_pool_collect(pool))
        if (p.find("array of unknown class Ghost") != std::string::npos) found = true;
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rafda::vm
