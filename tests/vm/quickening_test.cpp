// Inline-cache (quickening) correctness: the interpreter memoizes field
// slots, invoke targets and static slots per instruction site, validated
// against ClassPool::generation().  These tests pin down the contract:
// hits/misses are observable (counters + obs::Registry probes), a
// monomorphic site falls back correctly when receivers vary, and every
// mutation path — in-place rewrite through a mutable handout, late class
// registration, Heap::transmute — invalidates exactly enough that results
// stay identical to cold execution.
#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/classpool.hpp"
#include "model/verifier.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"

namespace rafda::vm {
namespace {

using model::assemble_into;
using model::ClassFile;
using model::ClassPool;
using model::Field;
using model::TypeDesc;
using model::Visibility;

struct Fixture {
    ClassPool pool;
    std::unique_ptr<Interpreter> interp;

    explicit Fixture(const char* src) {
        install_prelude(pool);
        assemble_into(pool, src);
        model::verify_pool(pool);
        interp = std::make_unique<Interpreter>(pool);
        bind_prelude_natives(*interp);
    }
};

constexpr const char* kHotLoop = R"(
class Cell {
  field v J
  ctor ()V {
    return
  }
}
class Driver {
  static method spin (LCell;I)J {
    locals 2
  Top:
    load 1
    const 0
    cmple
    iftrue Done
    load 0
    load 0
    getfield Cell.v J
    const 1L
    add
    putfield Cell.v J
    load 1
    const 1
    sub
    store 1
    goto Top
  Done:
    load 0
    getfield Cell.v J
    returnvalue
  }
}
)";

TEST(Quickening, FieldSitesHitAfterFirstExecution) {
    Fixture f(kHotLoop);
    Value cell = f.interp->construct("Cell", "()V", {});
    Value r = f.interp->call_static("Driver", "spin", "(LCell;I)J",
                                    {cell, Value::of_int(100)});
    EXPECT_EQ(r.as_long(), 100);

    const Counters& c = f.interp->counters();
    // Three field sites in Driver.spin (two getfields, one putfield): each
    // misses exactly once, every other execution is a hit.
    EXPECT_EQ(c.ic_field_misses, 3u);
    EXPECT_EQ(c.ic_field_hits + c.ic_field_misses, c.field_reads + c.field_writes);
    EXPECT_GT(c.ic_field_hits, 190u);
    EXPECT_EQ(c.ic_hits(), c.ic_field_hits + c.ic_invoke_hits + c.ic_static_hits);
    EXPECT_EQ(c.ic_misses(),
              c.ic_field_misses + c.ic_invoke_misses + c.ic_static_misses);

    // A second run through the same warm sites misses nothing new.
    const std::uint64_t misses_before = c.ic_misses();
    f.interp->call_static("Driver", "spin", "(LCell;I)J", {cell, Value::of_int(50)});
    EXPECT_EQ(f.interp->counters().ic_misses(), misses_before);
}

TEST(Quickening, HitAndMissCountersVisibleThroughRegistry) {
    obs::Registry reg;  // must outlive the interpreter: its dtor deregisters probes
    Fixture f(kHotLoop);
    f.interp->attach_metrics(&reg, "vm.t");
    Value cell = f.interp->construct("Cell", "()V", {});
    f.interp->call_static("Driver", "spin", "(LCell;I)J", {cell, Value::of_int(40)});

    obs::Snapshot snap = reg.snapshot();
    const obs::Sample* hits = snap.find("vm.t.ic_hits");
    const obs::Sample* misses = snap.find("vm.t.ic_misses");
    ASSERT_NE(hits, nullptr);
    ASSERT_NE(misses, nullptr);
    EXPECT_EQ(hits->gauge, static_cast<std::int64_t>(f.interp->counters().ic_hits()));
    EXPECT_EQ(misses->gauge,
              static_cast<std::int64_t>(f.interp->counters().ic_misses()));
    EXPECT_GT(hits->gauge, 0);

    f.interp->reset_counters();
    EXPECT_EQ(f.interp->counters().ic_hits(), 0u);
    EXPECT_EQ(f.interp->counters().ic_misses(), 0u);
}

TEST(Quickening, PolymorphicSiteFallsBackPerReceiver) {
    Fixture f(R"(
class Base {
  ctor ()V {
    return
  }
  method tag ()I {
    const 0
    returnvalue
  }
}
class C1 extends Base {
  ctor ()V {
    load 0
    invokespecial Base.<init> ()V
    return
  }
  method tag ()I {
    const 1
    returnvalue
  }
}
class C2 extends Base {
  ctor ()V {
    load 0
    invokespecial Base.<init> ()V
    return
  }
  method tag ()I {
    const 2
    returnvalue
  }
}
class Driver {
  static method tag (LBase;)I {
    load 0
    invokevirtual Base.tag ()I
    returnvalue
  }
}
)");
    Value c1 = f.interp->construct("C1", "()V", {});
    Value c2 = f.interp->construct("C2", "()V", {});

    // Alternating receivers through the one call site: the monomorphic
    // cache re-fills every time, but dispatch stays exact (megamorphic
    // fallback is the symbolic slow path, not a wrong target).
    for (int k = 0; k < 8; ++k) {
        EXPECT_EQ(f.interp->call_static("Driver", "tag", "(LBase;)I", {c1}).as_int(), 1);
        EXPECT_EQ(f.interp->call_static("Driver", "tag", "(LBase;)I", {c2}).as_int(), 2);
    }
    const std::uint64_t megamorphic_misses = f.interp->counters().ic_invoke_misses;
    EXPECT_GE(megamorphic_misses, 16u);  // every receiver flip re-resolves

    // A monomorphic stretch hits from the second call on.
    for (int k = 0; k < 8; ++k)
        EXPECT_EQ(f.interp->call_static("Driver", "tag", "(LBase;)I", {c2}).as_int(), 2);
    EXPECT_LE(f.interp->counters().ic_invoke_misses, megamorphic_misses + 1);
}

TEST(Quickening, InPlaceOverrideAfterRunIsPickedUp) {
    // A VM whose pool is rewritten after first execution must not dispatch
    // to a stale Method*: the mutable handout bumps the generation, which
    // invalidates both the per-site caches and the host-API vcache.
    Fixture f(R"(
class Base {
  ctor ()V {
    return
  }
  method f ()I {
    const 1
    returnvalue
  }
}
class D extends Base {
  ctor ()V {
    load 0
    invokespecial Base.<init> ()V
    return
  }
}
class Driver {
  static method call (LBase;)I {
    load 0
    invokevirtual Base.f ()I
    returnvalue
  }
}
)");
    Value d = f.interp->construct("D", "()V", {});
    // Warm every cache: guest site and host-API virtual dispatch.
    EXPECT_EQ(f.interp->call_static("Driver", "call", "(LBase;)I", {d}).as_int(), 1);
    EXPECT_EQ(f.interp->call_virtual(d, "f", "()I").as_int(), 1);

    // Give D an override by rewriting it in place.
    ClassPool donor;
    assemble_into(donor, R"(
class Donor {
  method f ()I {
    const 2
    returnvalue
  }
}
)");
    ClassFile* cls = f.pool.find_mutable("D");
    ASSERT_NE(cls, nullptr);
    cls->methods.push_back(*donor.get("Donor").find_method("f", "()I"));

    EXPECT_EQ(f.interp->call_static("Driver", "call", "(LBase;)I", {d}).as_int(), 2);
    EXPECT_EQ(f.interp->call_virtual(d, "f", "()I").as_int(), 2);
}

TEST(Quickening, FieldLayoutRewriteAfterMemoizationResolvesNewSlots) {
    Fixture f(R"(
class P {
  field a J
  field b J
  ctor ()V {
    return
  }
}
class Q {
  static method setB (LP;J)V {
    load 0
    load 1
    putfield P.b J
    return
  }
  static method getB (LP;)J {
    load 0
    getfield P.b J
    returnvalue
  }
}
)");
    Value p = f.interp->construct("P", "()V", {});
    f.interp->call_static("Q", "setB", "(LP;J)V", {p, Value::of_long(7)});
    EXPECT_EQ(f.interp->call_static("Q", "getB", "(LP;)J", {p}).as_long(), 7);

    // Remove the leading field: b shifts from slot 1 to slot 0.  A stale
    // layout (or a stale inline cache keyed only on the class pointer)
    // would read past the end of the fresh object's field vector.
    ClassFile* cls = f.pool.find_mutable("P");
    ASSERT_NE(cls, nullptr);
    cls->fields.erase(cls->fields.begin());

    Value p2 = f.interp->construct("P", "()V", {});
    f.interp->call_static("Q", "setB", "(LP;J)V", {p2, Value::of_long(9)});
    EXPECT_EQ(f.interp->call_static("Q", "getB", "(LP;)J", {p2}).as_long(), 9);
}

TEST(Quickening, TransmuteAfterCacheRedirectsFieldAndInvokeSites) {
    // Heap::transmute swaps the class behind an object id (the paper's
    // Figure 1 substitution).  Sites are keyed on the receiver's class
    // pointer, so no generation bump is needed — but the caches must not
    // keep serving the old class's slots or targets.
    Fixture f(R"(
class A {
  field x J
  ctor ()V {
    return
  }
  method who ()I {
    const 1
    returnvalue
  }
}
class B {
  field pad J
  field x J
  ctor ()V {
    return
  }
  method who ()I {
    const 2
    returnvalue
  }
}
class Driver {
  static method who (LA;)I {
    load 0
    invokevirtual A.who ()I
    returnvalue
  }
  static method getx (LA;)J {
    load 0
    getfield A.x J
    returnvalue
  }
}
)");
    Value a = f.interp->construct("A", "()V", {});
    f.interp->set_field(a.as_ref(), "x", Value::of_long(11));
    EXPECT_EQ(f.interp->call_static("Driver", "who", "(LA;)I", {a}).as_int(), 1);
    EXPECT_EQ(f.interp->call_static("Driver", "getx", "(LA;)J", {a}).as_long(), 11);

    // Same object id, new class: x now lives at slot 1, who() returns 2.
    f.interp->heap().transmute(
        a.as_ref(), f.pool.get("B"),
        {Value::of_long(0), Value::of_long(42)});
    EXPECT_EQ(f.interp->call_static("Driver", "who", "(LA;)I", {a}).as_int(), 2);
    EXPECT_EQ(f.interp->call_static("Driver", "getx", "(LA;)J", {a}).as_long(), 42);
}

TEST(Quickening, LateClassRegistrationResolvesThroughWarmCaches) {
    Fixture f(R"(
class Base {
  ctor ()V {
    return
  }
  method f ()I {
    const 1
    returnvalue
  }
}
class Driver {
  static method call (LBase;)I {
    load 0
    invokevirtual Base.f ()I
    returnvalue
  }
}
)");
    Value base = f.interp->construct("Base", "()V", {});
    EXPECT_EQ(f.interp->call_static("Driver", "call", "(LBase;)I", {base}).as_int(), 1);

    // Register a subclass after the site is warm (pool.add bumps the
    // generation); instances of it must dispatch to the override.
    assemble_into(f.pool, R"(
class Sub extends Base {
  ctor ()V {
    load 0
    invokespecial Base.<init> ()V
    return
  }
  method f ()I {
    const 3
    returnvalue
  }
}
)");
    Value sub = f.interp->construct("Sub", "()V", {});
    EXPECT_EQ(f.interp->call_static("Driver", "call", "(LBase;)I", {sub}).as_int(), 3);
    EXPECT_EQ(f.interp->call_static("Driver", "call", "(LBase;)I", {base}).as_int(), 1);
}

TEST(Quickening, StaticsSurviveRewriteByNameAndShiftSlots) {
    Fixture f(R"(
class S {
  static field count I
  static method bump ()I {
    getstatic S.count I
    const 1
    add
    putstatic S.count I
    getstatic S.count I
    returnvalue
  }
}
)");
    for (int k = 1; k <= 5; ++k)
        EXPECT_EQ(f.interp->call_static("S", "bump", "()I").as_int(), k);
    EXPECT_GT(f.interp->counters().ic_static_hits, 0u);

    // Prepend a static field so `count` shifts to a new slot; the warm
    // static sites must follow, and the value carries over by name.
    ClassFile* cls = f.pool.find_mutable("S");
    ASSERT_NE(cls, nullptr);
    cls->fields.insert(cls->fields.begin(),
                       Field{"zzz", TypeDesc::int_(), Visibility::Public, true, false});

    for (int k = 6; k <= 10; ++k)
        EXPECT_EQ(f.interp->call_static("S", "bump", "()I").as_int(), k);
    EXPECT_EQ(f.interp->get_static_field("S", "count").as_int(), 10);
    EXPECT_EQ(f.interp->get_static_field("S", "zzz").as_int(), 0);  // fresh default
}

TEST(Quickening, WarmSitesComputeTheSameValuesAsCold) {
    // The inline caches are an optimisation, never a semantic: the first
    // (cold, all-miss) execution and every warm execution must agree with
    // the analytic result.  spin(cell, n) adds n to cell.v cumulatively.
    Fixture f(kHotLoop);
    Value cell = f.interp->construct("Cell", "()V", {});
    std::int64_t expected = 0;
    for (int n = 1; n <= 6; ++n) {
        expected += n;
        EXPECT_EQ(f.interp
                      ->call_static("Driver", "spin", "(LCell;I)J",
                                    {cell, Value::of_int(n)})
                      .as_long(),
                  expected);
    }
    EXPECT_GT(f.interp->counters().ic_hits(), 0u);
}

}  // namespace
}  // namespace rafda::vm
