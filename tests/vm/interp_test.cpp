#include "vm/interp.hpp"

#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "support/error.hpp"
#include "vm/prelude.hpp"

namespace rafda::vm {
namespace {

using model::assemble_into;
using model::ClassPool;

struct Fixture {
    ClassPool pool;
    std::unique_ptr<Interpreter> interp;

    explicit Fixture(const char* src) {
        install_prelude(pool);
        assemble_into(pool, src);
        model::verify_pool(pool);
        interp = std::make_unique<Interpreter>(pool);
        bind_prelude_natives(*interp);
    }
};

TEST(Interp, ArithmeticAndReturn) {
    Fixture f(R"(
class A {
  static method calc (II)I {
    load 0
    load 1
    add
    const 2
    mul
    returnvalue
  }
}
)");
    Value r = f.interp->call_static("A", "calc", "(II)I",
                                    {Value::of_int(3), Value::of_int(4)});
    EXPECT_EQ(r.as_int(), 14);
}

TEST(Interp, MixedWidthArithmeticWidens) {
    Fixture f(R"(
class A {
  static method mix (IJ)J {
    load 0
    load 1
    add
    returnvalue
  }
  static method toD (I)D {
    load 0
    conv D
    const 0.5
    add
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "mix", "(IJ)J",
                                    {Value::of_int(1), Value::of_long(1LL << 40)})
                  .as_long(),
              (1LL << 40) + 1);
    EXPECT_DOUBLE_EQ(
        f.interp->call_static("A", "toD", "(I)D", {Value::of_int(2)}).as_double(), 2.5);
}

TEST(Interp, DivisionByZeroIsVmError) {
    Fixture f(R"(
class A {
  static method d (I)I {
    load 0
    const 0
    div
    returnvalue
  }
}
)");
    EXPECT_THROW(f.interp->call_static("A", "d", "(I)I", {Value::of_int(1)}), VmError);
}

TEST(Interp, LoopComputesFactorial) {
    Fixture f(R"(
class A {
  static method fact (I)J {
    locals 2
    const 1L
    store 1
  Top:
    load 0
    const 1
    cmple
    iftrue Done
    load 1
    load 0
    mul
    store 1
    load 0
    const 1
    sub
    store 0
    goto Top
  Done:
    load 1
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "fact", "(I)J", {Value::of_int(10)}).as_long(),
              3628800);
    EXPECT_EQ(f.interp->call_static("A", "fact", "(I)J", {Value::of_int(0)}).as_long(), 1);
}

TEST(Interp, RecursionFibonacci) {
    Fixture f(R"(
class A {
  static method fib (I)I {
    load 0
    const 2
    cmplt
    iffalse Rec
    load 0
    returnvalue
  Rec:
    load 0
    const 1
    sub
    invokestatic A.fib (I)I
    load 0
    const 2
    sub
    invokestatic A.fib (I)I
    add
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "fib", "(I)I", {Value::of_int(15)}).as_int(), 610);
}

TEST(Interp, InfiniteRecursionOverflows) {
    Fixture f(R"(
class A {
  static method loop ()V {
    invokestatic A.loop ()V
    return
  }
}
)");
    EXPECT_THROW(f.interp->call_static("A", "loop", "()V"), VmError);
}

TEST(Interp, ObjectFieldsAndConstructors) {
    Fixture f(R"(
class Point {
  field x I
  field y I
  ctor (II)V {
    load 0
    load 1
    putfield Point.x I
    load 0
    load 2
    putfield Point.y I
    return
  }
  method manhattan ()I {
    load 0
    getfield Point.x I
    load 0
    getfield Point.y I
    add
    returnvalue
  }
}
)");
    Value p = f.interp->construct("Point", "(II)V", {Value::of_int(3), Value::of_int(4)});
    EXPECT_EQ(f.interp->call_virtual(p, "manhattan", "()I").as_int(), 7);
    EXPECT_EQ(f.interp->get_field(p.as_ref(), "x").as_int(), 3);
    f.interp->set_field(p.as_ref(), "x", Value::of_int(10));
    EXPECT_EQ(f.interp->call_virtual(p, "manhattan", "()I").as_int(), 14);
}

TEST(Interp, VirtualDispatchUsesDynamicType) {
    Fixture f(R"(
class Animal {
  ctor ()V {
    return
  }
  method speak ()S {
    const "..."
    returnvalue
  }
  method describe ()S {
    const "I say "
    load 0
    invokevirtual Animal.speak ()S
    concat
    returnvalue
  }
}
class Dog extends Animal {
  ctor ()V {
    return
  }
  method speak ()S {
    const "woof"
    returnvalue
  }
}
)");
    Value dog = f.interp->construct("Dog", "()V", {});
    EXPECT_EQ(f.interp->call_virtual(dog, "describe", "()S").as_str(), "I say woof");
}

TEST(Interp, ConstructWithImplicitDefaultCtorFails) {
    // RIR has no implicit constructors: classes must declare them.
    Fixture f("class NoCtor {\n field x I\n}\n");
    EXPECT_THROW(f.interp->construct("NoCtor", "()V", {}), VmError);
}

TEST(Interp, InterfaceDispatch) {
    Fixture f(R"(
interface Shape {
  method area ()D
}
class Square implements Shape {
  field side D
  ctor (D)V {
    load 0
    load 1
    putfield Square.side D
    return
  }
  method area ()D {
    load 0
    getfield Square.side D
    load 0
    getfield Square.side D
    mul
    returnvalue
  }
}
class Meter {
  static method measure (LShape;)D {
    load 0
    invokeinterface Shape.area ()D
    returnvalue
  }
}
)");
    Value sq = f.interp->construct("Square", "(D)V", {Value::of_double(3.0)});
    EXPECT_DOUBLE_EQ(f.interp->call_static("Meter", "measure", "(LShape;)D", {sq}).as_double(),
                     9.0);
}

TEST(Interp, StaticsAndClinitRunOnce) {
    Fixture f(R"(
class Counter {
  static field n I
  static field greeting S
  clinit {
    const 41
    putstatic Counter.n I
    const "hello"
    putstatic Counter.greeting S
    return
  }
  static method bump ()I {
    getstatic Counter.n I
    const 1
    add
    dup
    putstatic Counter.n I
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("Counter", "bump", "()I").as_int(), 42);
    EXPECT_EQ(f.interp->call_static("Counter", "bump", "()I").as_int(), 43);
    EXPECT_EQ(f.interp->get_static_field("Counter", "greeting").as_str(), "hello");
}

TEST(Interp, StaticFieldResolvedThroughSubclass) {
    Fixture f(R"(
class Base {
  static field shared I
}
class Derived extends Base {
  static method touch ()I {
    getstatic Derived.shared I
    const 5
    add
    dup
    putstatic Derived.shared I
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("Derived", "touch", "()I").as_int(), 5);
    // Base and Derived share one storage slot.
    EXPECT_EQ(f.interp->get_static_field("Base", "shared").as_int(), 5);
}

TEST(Interp, ClinitDependencyChain) {
    Fixture f(R"(
class A {
  static field va I
  clinit {
    getstatic B.vb I
    const 1
    add
    putstatic A.va I
    return
  }
}
class B {
  static field vb I
  clinit {
    const 10
    putstatic B.vb I
    return
  }
}
)");
    EXPECT_EQ(f.interp->get_static_field("A", "va").as_int(), 11);
}

TEST(Interp, NullDereferenceIsVmError) {
    Fixture f(R"(
class A {
  field next LA;
  ctor ()V {
    return
  }
  method chase ()I {
    load 0
    getfield A.next LA;
    getfield A.next LA;
    pop
    const 0
    returnvalue
  }
}
)");
    Value a = f.interp->construct("A", "()V", {});
    EXPECT_THROW(f.interp->call_virtual(a, "chase", "()I"), VmError);
}

TEST(Interp, StringOpsAndPrelude) {
    Fixture f(R"(
class Greet {
  static method run (S)V {
    const "hello, "
    load 0
    concat
    invokestatic Sys.println (S)V
    const "n="
    const 42
    concat
    invokestatic Sys.print (S)V
    return
  }
}
)");
    f.interp->call_static("Greet", "run", "(S)V", {Value::of_str("world")});
    EXPECT_EQ(f.interp->output(), "hello, world\nn=42");
}

TEST(Interp, StringPlusConcatenatesLikeJava) {
    Fixture f(R"(
class A {
  static method s ()S {
    const "v="
    const 7
    add
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "s", "()S").as_str(), "v=7");
}

TEST(Interp, DoubleDisplayIsShortestRoundTrip) {
    // Doubles stringify with round-trip (shortest lossless) formatting,
    // not a fixed 6-significant-digit truncation: "d=" + 1.0/3 must not
    // come out as "d=0.333333".
    Fixture f(R"(
class A {
  static method third ()S {
    const "d="
    const 1.0
    const 3.0
    div
    concat
    returnvalue
  }
  static method tenth ()S {
    const "d="
    const 0.1
    concat
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "third", "()S").as_str(),
              "d=0.3333333333333333");
    // Short decimals keep their short spelling (no 0.1000000000000000055...).
    EXPECT_EQ(f.interp->call_static("A", "tenth", "()S").as_str(), "d=0.1");
}

TEST(Interp, ComparisonsAndBooleans) {
    Fixture f(R"(
class A {
  static method inRange (III)Z {
    load 0
    load 1
    cmpge
    load 0
    load 2
    cmplt
    and
    returnvalue
  }
  static method strEq (SS)Z {
    load 0
    load 1
    cmpeq
    returnvalue
  }
}
)");
    auto call = [&](int v, int lo, int hi) {
        return f.interp
            ->call_static("A", "inRange", "(III)Z",
                          {Value::of_int(v), Value::of_int(lo), Value::of_int(hi)})
            .as_bool();
    };
    EXPECT_TRUE(call(5, 0, 10));
    EXPECT_FALSE(call(10, 0, 10));
    EXPECT_TRUE(f.interp
                    ->call_static("A", "strEq", "(SS)Z",
                                  {Value::of_str("abc"), Value::of_str("abc")})
                    .as_bool());
    EXPECT_FALSE(f.interp
                     ->call_static("A", "strEq", "(SS)Z",
                                   {Value::of_str("abc"), Value::of_str("abd")})
                     .as_bool());
}

TEST(Interp, ReferenceEqualityIsIdentity) {
    Fixture f(R"(
class Box {
  ctor ()V {
    return
  }
  static method same (LBox;LBox;)Z {
    load 0
    load 1
    cmpeq
    returnvalue
  }
  static method isNull (LBox;)Z {
    load 0
    const null
    cmpeq
    returnvalue
  }
}
)");
    Value a = f.interp->construct("Box", "()V", {});
    Value b = f.interp->construct("Box", "()V", {});
    EXPECT_TRUE(f.interp->call_static("Box", "same", "(LBox;LBox;)Z", {a, a}).as_bool());
    EXPECT_FALSE(f.interp->call_static("Box", "same", "(LBox;LBox;)Z", {a, b}).as_bool());
    EXPECT_TRUE(
        f.interp->call_static("Box", "isNull", "(LBox;)Z", {Value::null()}).as_bool());
    EXPECT_FALSE(f.interp->call_static("Box", "isNull", "(LBox;)Z", {a}).as_bool());
}

TEST(Interp, CustomNativeMethod) {
    Fixture f(R"(
class Host {
  native static method twice (I)I
  static method viaNative (I)I {
    load 0
    invokestatic Host.twice (I)I
    returnvalue
  }
}
)");
    f.interp->register_native("Host", "twice", "(I)I",
                              [](Interpreter&, const Value&, std::vector<Value> args) {
                                  return Value::of_int(args.at(0).as_int() * 2);
                              });
    EXPECT_EQ(
        f.interp->call_static("Host", "viaNative", "(I)I", {Value::of_int(21)}).as_int(), 42);
}

TEST(Interp, ClassLevelNativeHandler) {
    Fixture f(R"(
class ProxyLike {
  ctor ()V {
    return
  }
  native method alpha (I)I
  native method beta (S)S
}
)");
    f.interp->register_class_native(
        "ProxyLike", [](Interpreter&, const model::Method& m, const Value&,
                        std::vector<Value> args) {
            if (m.name == "alpha") return Value::of_int(args.at(0).as_int() + 1);
            return Value::of_str("echo:" + args.at(0).as_str());
        });
    Value p = f.interp->construct("ProxyLike", "()V", {});
    EXPECT_EQ(f.interp->call_virtual(p, "alpha", "(I)I", {Value::of_int(1)}).as_int(), 2);
    EXPECT_EQ(f.interp->call_virtual(p, "beta", "(S)S", {Value::of_str("x")}).as_str(),
              "echo:x");
}

TEST(Interp, UnboundNativeThrows) {
    Fixture f("class H {\n native static method f ()V\n}\n");
    EXPECT_THROW(f.interp->call_static("H", "f", "()V"), VmError);
}

TEST(Interp, CountersTrackWork) {
    Fixture f(R"(
class A {
  field v I
  ctor ()V {
    return
  }
  method touch ()I {
    load 0
    getfield A.v I
    const 1
    add
    returnvalue
  }
}
)");
    f.interp->reset_counters();
    Value a = f.interp->construct("A", "()V", {});
    f.interp->call_virtual(a, "touch", "()I");
    const Counters& c = f.interp->counters();
    EXPECT_EQ(c.allocations, 1u);
    EXPECT_EQ(c.field_reads, 1u);
    EXPECT_GT(c.instructions, 0u);
    EXPECT_EQ(c.invokes_virtual, 1u);
}

TEST(Interp, LogicalTime) {
    Fixture f(R"(
class A {
  static method now ()J {
    invokestatic Sys.time ()J
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "now", "()J").as_long(), 0);
    f.interp->advance_time(125);
    EXPECT_EQ(f.interp->call_static("A", "now", "()J").as_long(), 125);
}

TEST(Interp, ConvTruncates) {
    Fixture f(R"(
class A {
  static method toInt (D)I {
    load 0
    conv I
    returnvalue
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "toInt", "(D)I", {Value::of_double(3.9)}).as_int(),
              3);
    EXPECT_EQ(f.interp->call_static("A", "toInt", "(D)I", {Value::of_double(-3.9)}).as_int(),
              -3);
}

TEST(Interp, InheritedNativeResolvesAgainstDeclaringClass) {
    Fixture f(R"(
class Base {
  ctor ()V {
    return
  }
  native method tag ()S
}
class Sub extends Base {
  ctor ()V {
    return
  }
}
)");
    f.interp->register_native("Base", "tag", "()S",
                              [](Interpreter&, const Value&, std::vector<Value>) {
                                  return Value::of_str("base-native");
                              });
    Value s = f.interp->construct("Sub", "()V", {});
    EXPECT_EQ(f.interp->call_virtual(s, "tag", "()S").as_str(), "base-native");
}

}  // namespace
}  // namespace rafda::vm
