#include <gtest/gtest.h>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "support/error.hpp"
#include "vm/interp.hpp"
#include "vm/prelude.hpp"

namespace rafda::vm {
namespace {

struct Fixture {
    model::ClassPool pool;
    std::unique_ptr<Interpreter> interp;

    explicit Fixture(const char* src) {
        install_prelude(pool);
        model::assemble_into(pool, src);
        model::verify_pool(pool);
        interp = std::make_unique<Interpreter>(pool);
        bind_prelude_natives(*interp);
    }
};

TEST(GuestExceptions, ThrowCaughtInSameFrame) {
    Fixture f(R"(
class A {
  static method f (Z)I {
  S:
    load 0
    iffalse Ok
    new Throwable
    dup
    const "boom"
    invokespecial Throwable.<init> (S)V
    throw
  Ok:
    const 1
    returnvalue
  E:
    nop
  H:
    pop
    const -1
    returnvalue
    catch Throwable from S to E using H
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "f", "(Z)I", {Value::of_bool(false)}).as_int(), 1);
    EXPECT_EQ(f.interp->call_static("A", "f", "(Z)I", {Value::of_bool(true)}).as_int(), -1);
}

TEST(GuestExceptions, UnwindsThroughFrames) {
    Fixture f(R"(
class A {
  static method deep (I)V {
    load 0
    const 0
    cmple
    iffalse Rec
    new Throwable
    dup
    const "bottom"
    invokespecial Throwable.<init> (S)V
    throw
  Rec:
    load 0
    const 1
    sub
    invokestatic A.deep (I)V
    return
  }
  static method catchIt (I)S {
  S:
    load 0
    invokestatic A.deep (I)V
  E:
    const "no-throw"
    returnvalue
  H:
    invokevirtual Throwable.getMsg ()S
    returnvalue
    catch Throwable from S to E using H
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "catchIt", "(I)S", {Value::of_int(5)}).as_str(),
              "bottom");
}

TEST(GuestExceptions, UncaughtSurfacesAsGuestException) {
    Fixture f(R"(
class A {
  static method boom ()V {
    new Throwable
    dup
    const "kaboom"
    invokespecial Throwable.<init> (S)V
    throw
  }
}
)");
    try {
        f.interp->call_static("A", "boom", "()V");
        FAIL() << "expected GuestException";
    } catch (const GuestException& e) {
        EXPECT_EQ(e.class_name(), "Throwable");
        EXPECT_EQ(e.message(), "kaboom");
        EXPECT_NE(e.obj(), 0u);
    }
}

TEST(GuestExceptions, SubtypeMatching) {
    Fixture f(R"(
special class IoError extends Throwable {
  ctor (S)V {
    load 0
    load 1
    invokespecial Throwable.<init> (S)V
    return
  }
}
class A {
  static method f ()S {
  S:
    new IoError
    dup
    const "io"
    invokespecial IoError.<init> (S)V
    throw
  E:
    const "none"
    returnvalue
  H:
    invokevirtual Throwable.getMsg ()S
    returnvalue
    catch Throwable from S to E using H
  }
}
)");
    // A handler for the supertype catches the subtype.
    EXPECT_EQ(f.interp->call_static("A", "f", "()S").as_str(), "io");
}

TEST(GuestExceptions, NonMatchingHandlerDoesNotCatch) {
    Fixture f(R"(
special class IoError extends Throwable {
  ctor (S)V {
    load 0
    load 1
    invokespecial Throwable.<init> (S)V
    return
  }
}
special class MathError extends Throwable {
  ctor (S)V {
    load 0
    load 1
    invokespecial Throwable.<init> (S)V
    return
  }
}
class A {
  static method f ()S {
  S:
    new IoError
    dup
    const "io"
    invokespecial IoError.<init> (S)V
    throw
  E:
    const "none"
    returnvalue
  H:
    invokevirtual Throwable.getMsg ()S
    returnvalue
    catch MathError from S to E using H
  }
}
)");
    EXPECT_THROW(f.interp->call_static("A", "f", "()S"), GuestException);
}

TEST(GuestExceptions, HandlerRangeRespected) {
    Fixture f(R"(
class A {
  static method f ()S {
  Before:
    const 0
    pop
  S:
    const 0
    pop
  E:
    new Throwable
    dup
    const "after-range"
    invokespecial Throwable.<init> (S)V
    throw
  H:
    invokevirtual Throwable.getMsg ()S
    returnvalue
    catch Throwable from S to E using H
  }
}
)");
    // The throw happens at pc >= E, outside [S, E) — must escape.
    EXPECT_THROW(f.interp->call_static("A", "f", "()S"), GuestException);
}

TEST(GuestExceptions, ThrowGuestFromNative) {
    Fixture f(R"(
class Remote {
  native static method call ()I
  static method guarded ()I {
  S:
    invokestatic Remote.call ()I
    returnvalue
  E:
    nop
  H:
    pop
    const -7
    returnvalue
    catch Throwable from S to E using H
  }
}
)");
    f.interp->register_native(
        "Remote", "call", "()I", [](Interpreter& vm, const Value&, std::vector<Value>) {
            Value t = vm.construct("Throwable", "(S)V", {Value::of_str("remote fault")});
            vm.throw_guest(t);
            return Value::null();  // unreachable
        });
    // Guest-level handler catches the fault raised by the native.
    EXPECT_EQ(f.interp->call_static("Remote", "guarded", "()I").as_int(), -7);
}

TEST(GuestExceptions, MultipleHandlersFirstMatchWins) {
    Fixture f(R"(
special class IoError extends Throwable {
  ctor (S)V {
    load 0
    load 1
    invokespecial Throwable.<init> (S)V
    return
  }
}
class A {
  static method f ()I {
  S:
    new IoError
    dup
    const "x"
    invokespecial IoError.<init> (S)V
    throw
  E:
    const 0
    returnvalue
  H1:
    pop
    const 1
    returnvalue
  H2:
    pop
    const 2
    returnvalue
    catch IoError from S to E using H1
    catch Throwable from S to E using H2
  }
}
)");
    EXPECT_EQ(f.interp->call_static("A", "f", "()I").as_int(), 1);
}

TEST(GuestExceptions, ClinitThrowSurfacesAtBoundary) {
    Fixture f(R"(
class Bad {
  static field x I
  clinit {
    new Throwable
    dup
    const "init failed"
    invokespecial Throwable.<init> (S)V
    throw
  }
}
)");
    EXPECT_THROW(f.interp->get_static_field("Bad", "x"), GuestException);
}

}  // namespace
}  // namespace rafda::vm
