// rafdac — the RAFDA command-line transformer.
//
//   rafdac analyze   app.rir              transformability report (Sec 2.4)
//   rafdac transform app.rir out.rirb     transform, save binary artefact
//   rafdac print     app.rir[b]           disassemble (RIR or RIRB input)
//   rafdac run       app.rir[b] Main      run locally (transforms .rir
//                                         input first; .rirb input is
//                                         assumed already transformed)
//   rafdac deploy    app.rir policy.cfg Main [nodes]
//                                         run distributed under a policy
//                                         configuration file
//   rafdac stats     app.rir policy.cfg Main [nodes] [--json]
//                                         deploy, run, then dump the full
//                                         metrics registry (table or JSON)
//   rafdac trace     app.rir policy.cfg Main [nodes] [--json]
//                                         deploy, run with span tracing on,
//                                         then print the RPC span trees
//   rafdac trace     ... --chrome out.json
//                                         additionally write the spans +
//                                         journal events as Chrome
//                                         trace-event JSON (loadable in
//                                         Perfetto / chrome://tracing)
//   rafdac journal   app.rir policy.cfg Main [nodes] [--json]
//                                         deploy, run with the flight
//                                         recorder on, then print the
//                                         event journal (table or JSON)
//   rafdac net       app.rir policy.cfg Main [nodes] [--json]
//                                         deploy, run, then print the
//                                         per-link occupancy table (busy
//                                         time, utilization) and per-node
//                                         virtual clocks
//   rafdac faults    app.rir policy.cfg Main [nodes] [--json]
//                                         deploy, run, then print the
//                                         active fault plan, the circuit
//                                         breaker states and the rpc
//                                         reliability counters
//   rafdac adapt     app.rir policy.cfg Main [nodes] [--json]
//                                         deploy, run under the adaptation
//                                         engine (DESIGN.md §19), then
//                                         print its decision log —
//                                         migrations, replications,
//                                         deferrals, projected vs realized
//                                         savings — and the adapt counters
//   rafdac wal       app.rir policy.cfg Main [nodes] [--json]
//                                         deploy, run, then print the
//                                         per-node durability report
//                                         (DESIGN.md §20): WAL/snapshot
//                                         sizes, recoveries, relocations
//
// stats/trace print the application's own output on stderr so stdout
// stays machine-readable.
//
// Exit status: 0 on success, 1 on usage errors, 2 on processing errors.
#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "model/assembler.hpp"
#include "model/binio.hpp"
#include "model/printer.hpp"
#include "model/verifier.hpp"
#include "obs/chrome.hpp"
#include "obs/export.hpp"
#include "runtime/driver.hpp"
#include "runtime/policy_config.hpp"
#include "runtime/system.hpp"
#include "support/strings.hpp"
#include "transform/local_binder.hpp"
#include "transform/pipeline.hpp"
#include "vm/prelude.hpp"

namespace {

using namespace rafda;

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot open " + path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void write_file(const std::string& path, const Bytes& data) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw Error("cannot write " + path);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

/// Loads a pool from .rir (assembled + prelude) or .rirb (binary).
model::ClassPool load_input(const std::string& path, bool* was_binary = nullptr) {
    if (ends_with(path, ".rirb")) {
        if (was_binary) *was_binary = true;
        std::string raw = read_file(path);
        return model::load_pool(Bytes(raw.begin(), raw.end()));
    }
    if (was_binary) *was_binary = false;
    model::ClassPool pool;
    vm::install_prelude(pool);
    model::assemble_into(pool, read_file(path));
    model::verify_pool(pool);
    return pool;
}

int cmd_analyze(const std::string& input) {
    model::ClassPool pool = load_input(input);
    transform::Analysis analysis = transform::analyze(pool);
    std::cout << "classes/interfaces: " << analysis.total() << "\n"
              << "transformable:      " << analysis.transformable_classes().size() << "\n"
              << "non-transformable:  " << analysis.non_transformable_count() << " ("
              << static_cast<int>(100.0 * analysis.non_transformable_fraction() + 0.5)
              << "%)\n";
    for (const std::string& cls : analysis.non_transformable_classes()) {
        const transform::ClassStatus& st = analysis.status_of(cls);
        std::cout << "  " << cls << ": " << transform::reason_name(st.reason);
        if (!st.blamed_on.empty()) std::cout << " (via " << st.blamed_on << ")";
        std::cout << "\n";
    }
    return 0;
}

int cmd_transform(const std::string& input, const std::string& output) {
    model::ClassPool pool = load_input(input);
    transform::PipelineResult result = transform::run_pipeline(pool);
    Bytes artefact = model::save_pool(result.pool);
    write_file(output, artefact);
    std::cout << "substituted " << result.report.substituted_classes().size() << " of "
              << pool.size() << " classes; wrote " << result.pool.size() << " classes ("
              << artefact.size() << " bytes) to " << output << "\n";
    return 0;
}

int cmd_print(const std::string& input) {
    model::ClassPool pool = load_input(input);
    std::cout << model::print_pool(pool);
    return 0;
}

int cmd_run(const std::string& input, const std::string& main_cls) {
    bool was_binary = false;
    model::ClassPool pool = load_input(input, &was_binary);
    if (was_binary)
        throw Error(
            "running a pre-transformed .rirb directly needs the transform report; "
            "pass the original .rir instead");
    transform::PipelineResult result = transform::run_pipeline(pool);
    vm::Interpreter interp(result.pool);
    vm::bind_prelude_natives(interp);
    transform::bind_local_factories(interp, result.report);
    transform::call_transformed_static(interp, pool, result.report, main_cls, "main",
                                       "()V");
    std::cout << interp.output();
    return 0;
}

/// Shared deploy-style setup: add the nodes, apply the policy
/// configuration (every grammar, the `adapt` and `durable` directives
/// included), and bring up the adaptation engine / durability layer when
/// the config asks for them.
void configure_system(runtime::System& system, const std::string& config_path,
                      int nodes) {
    for (int k = 0; k < nodes; ++k) system.add_node();
    runtime::AdaptPolicy adaptation;
    runtime::DurabilityPolicy durability;
    runtime::apply_policy_config(read_file(config_path), system.policy(),
                                 &system.network(), &system.reliability(),
                                 &system.batching(), &adaptation, &durability);
    if (adaptation.enabled) system.enable_adaptation(adaptation);
    if (durability.enabled) system.enable_durability(durability);
}

int cmd_deploy(const std::string& input, const std::string& config_path,
               const std::string& main_cls, int nodes) {
    model::ClassPool pool = load_input(input);
    runtime::System system(pool);
    configure_system(system, config_path, nodes);
    system.call_static(0, main_cls, "main", "()V");
    std::cout << system.node(0).interp().output();
    std::cerr << "[rafdac] virtual time " << system.network().now_us() << "us";
    for (const auto& [proto, s] : system.remote_stats())
        std::cerr << "; " << proto << ": " << s.calls + s.creates + s.discovers
                  << " requests, " << s.request_bytes + s.reply_bytes << " bytes";
    std::cerr << "\n";
    return 0;
}

enum class ObserveMode { Stats, Trace, Journal };

/// Shared driver for `stats`, `trace` and `journal`: deploy, run the entry
/// point, then report from the observability layer instead of the
/// application.  A non-empty `chrome_path` (trace mode) additionally
/// writes the spans + journal events as Chrome trace-event JSON.
/// Table row cap for `stats` (and link cap for `net`) unless --all: at
/// hundreds of nodes the registry holds thousands of per-link samples,
/// and the table is for eyes, not pipelines (use --json for those).
constexpr std::size_t kStatsTableRows = 200;
constexpr std::size_t kNetTableLinks = 20;

int cmd_observe(const std::string& input, const std::string& config_path,
                const std::string& main_cls, int nodes, ObserveMode mode, bool json,
                bool all, const std::string& chrome_path = {}) {
    model::ClassPool pool = load_input(input);
    runtime::System system(pool);
    configure_system(system, config_path, nodes);
    if (mode == ObserveMode::Trace) system.tracer().set_enabled(true);
    // The journal feeds both the `journal` report and the Chrome export's
    // instant events (fault edges, drops, retries on the timeline).
    if (mode == ObserveMode::Journal || !chrome_path.empty())
        system.journal().set_enabled(true);
    system.enable_method_profiling(true);
    system.call_static(0, main_cls, "main", "()V");
    std::cerr << system.node(0).interp().output();
    if (!chrome_path.empty()) {
        std::ofstream out(chrome_path, std::ios::binary);
        if (!out) throw Error("cannot write " + chrome_path);
        out << obs::chrome_trace_json(system.tracer(), system.journal()) << "\n";
        std::cerr << "[rafdac] wrote Chrome trace to " << chrome_path << "\n";
    }
    switch (mode) {
        case ObserveMode::Trace:
            std::cout << (json ? system.tracer().to_json() + "\n"
                               : system.tracer().render_tree());
            break;
        case ObserveMode::Stats:
            std::cout << (json ? obs::to_json(system.metrics().snapshot()) + "\n"
                               : obs::to_table(system.metrics().snapshot(),
                                               all ? 0 : kStatsTableRows));
            break;
        case ObserveMode::Journal: {
            const obs::Journal& j = system.journal();
            if (json) {
                std::cout << j.to_json() << "\n";
                break;
            }
            std::cout << "journal: " << j.size() << " events ("
                      << j.total_recorded() << " recorded, " << j.overwritten()
                      << " overwritten), epoch " << j.epoch_us() << "us\n"
                      << std::left << std::setw(8) << "seq" << std::setw(10)
                      << "t_us" << std::setw(10) << "kind" << std::right
                      << std::setw(6) << "node" << std::setw(6) << "peer"
                      << std::setw(12) << "a" << std::setw(12) << "b"
                      << "  detail\n";
            j.visit([&](const obs::JournalEvent& e) {
                std::cout << std::left << std::setw(8) << e.seq << std::setw(10)
                          << e.t_us << std::setw(10) << obs::journal_kind_name(e.kind)
                          << std::right << std::setw(6) << e.node << std::setw(6)
                          << e.peer << std::setw(12) << e.a << std::setw(12) << e.b
                          << "  " << e.detail << "\n";
            });
            break;
        }
    }
    return 0;
}

/// Per-link occupancy/utilization table (or JSON) plus per-node clocks —
/// the contention story of a run without spelunking the raw registry.
int cmd_net(const std::string& input, const std::string& config_path,
            const std::string& main_cls, int nodes, bool json, bool all) {
    model::ClassPool pool = load_input(input);
    runtime::System system(pool);
    configure_system(system, config_path, nodes);
    system.call_static(0, main_cls, "main", "()V");
    std::cerr << system.node(0).interp().output();

    const net::SimNetwork& network = system.network();
    const std::uint64_t horizon = std::max<std::uint64_t>(1, network.now_us());
    auto utilization_pct = [horizon](std::uint64_t busy) {
        return 100.0 * static_cast<double>(busy) / static_cast<double>(horizon);
    };
    if (json) {
        std::ostringstream os;
        os << "{\"virtual_time_us\":" << network.now_us() << ",\"links\":[";
        bool first = true;
        network.visit_links([&](net::NodeId src, net::NodeId dst,
                                const net::LinkStats& s) {
            if (!first) os << ",";
            first = false;
            os << "{\"src\":" << src << ",\"dst\":" << dst
               << ",\"messages\":" << s.messages << ",\"bytes\":" << s.bytes
               << ",\"drops\":" << s.drops << ",\"coalesced\":" << s.coalesced
               << ",\"busy_us\":" << s.busy_us
               << ",\"utilization_pct\":" << utilization_pct(s.busy_us) << "}";
        });
        os << "],\"nodes\":[";
        for (int k = 0; k < nodes; ++k)
            os << (k ? "," : "") << "{\"node\":" << k
               << ",\"clock_us\":" << system.node(static_cast<net::NodeId>(k)).clock_us()
               << "}";
        auto& reg = system.metrics();
        os << "],\"batch\":{\"frames\":" << reg.counter("rpc.batch.frames").value()
           << ",\"coalesced\":" << reg.counter("rpc.batch.coalesced").value()
           << ",\"entry_bytes\":" << reg.counter("rpc.batch.entry_bytes").value()
           << ",\"latency_saved_us\":"
           << reg.counter("rpc.batch.latency_saved_us").value() << "}}";
        std::cout << os.str() << "\n";
        return 0;
    }
    std::cout << "virtual time: " << network.now_us() << "us\n"
              << std::left << std::setw(6) << "src" << std::setw(6) << "dst"
              << std::right << std::setw(10) << "messages" << std::setw(12) << "bytes"
              << std::setw(8) << "drops" << std::setw(10) << "coalesced"
              << std::setw(12) << "busy_us" << std::setw(8) << "util%" << "\n";
    // Hot links first: visit_links walks in (src, dst) order, and the
    // stable sort preserves that order among equal byte counts, so the
    // table — truncated or not — is deterministic for a given run.
    struct LinkRow {
        net::NodeId src, dst;
        net::LinkStats s;
    };
    std::vector<LinkRow> rows;
    network.visit_links([&](net::NodeId src, net::NodeId dst, const net::LinkStats& s) {
        rows.push_back(LinkRow{src, dst, s});
    });
    std::stable_sort(rows.begin(), rows.end(), [](const LinkRow& a, const LinkRow& b) {
        return a.s.bytes > b.s.bytes;
    });
    const std::size_t shown = all ? rows.size()
                                  : std::min(rows.size(), kNetTableLinks);
    for (std::size_t k = 0; k < shown; ++k) {
        const LinkRow& r = rows[k];
        std::cout << std::left << std::setw(6) << r.src << std::setw(6) << r.dst
                  << std::right << std::setw(10) << r.s.messages << std::setw(12)
                  << r.s.bytes << std::setw(8) << r.s.drops << std::setw(10)
                  << r.s.coalesced << std::setw(12) << r.s.busy_us
                  << std::setw(8) << std::fixed << std::setprecision(1)
                  << utilization_pct(r.s.busy_us) << "\n";
    }
    if (shown < rows.size())
        std::cout << "... " << rows.size() - shown
                  << " more link(s) (pass --all to list every one)\n";
    const net::LinkStats total = network.total_stats();
    std::cout << std::left << std::setw(12) << "total" << std::right << std::setw(10)
              << total.messages << std::setw(12) << total.bytes << std::setw(8)
              << total.drops << std::setw(10) << total.coalesced << std::setw(12)
              << total.busy_us << "\n";
    if (std::uint64_t frames = system.metrics().counter("rpc.batch.frames").value())
        std::cout << "batch: " << frames << " frame(s), "
                  << system.metrics().counter("rpc.batch.coalesced").value()
                  << " coalesced call(s), "
                  << system.metrics().counter("rpc.batch.latency_saved_us").value()
                  << "us latency saved\n";
    const int shown_nodes =
        all ? nodes : std::min(nodes, static_cast<int>(kNetTableLinks));
    for (int k = 0; k < shown_nodes; ++k)
        std::cout << "node " << k << " clock "
                  << system.node(static_cast<net::NodeId>(k)).clock_us() << "us\n";
    if (shown_nodes < nodes)
        std::cout << "... " << nodes - shown_nodes
                  << " more node(s) (pass --all to list every one)\n";
    return 0;
}

/// Fault plan, breaker states and rpc reliability counters after a run —
/// the degradation story of a deployment at a glance.
int cmd_faults(const std::string& input, const std::string& config_path,
               const std::string& main_cls, int nodes, bool json) {
    model::ClassPool pool = load_input(input);
    runtime::System system(pool);
    configure_system(system, config_path, nodes);
    system.call_static(0, main_cls, "main", "()V");
    std::cerr << system.node(0).interp().output();

    auto counter = [&](const char* name) {
        return system.metrics().counter(name).value();
    };
    // Restart counts are evaluated at the final virtual time, so every
    // crash window that ended before the run did counts as one restart.
    const std::uint64_t horizon = system.network().now_us();
    auto restarts_of = [&](int k) {
        return system.network().fault_plan().restarts_before(
            static_cast<net::NodeId>(k), horizon);
    };
    if (json) {
        std::ostringstream os;
        os << "{\"virtual_time_us\":" << system.network().now_us()
           << ",\"fault_windows\":[";
        bool first = true;
        system.network().fault_plan().visit([&](const net::FaultWindow& w) {
            if (!first) os << ",";
            first = false;
            os << "{\"kind\":\"" << net::fault_kind_name(w.kind) << "\"";
            if (w.kind == net::FaultKind::NodeCrash)
                os << ",\"node\":" << w.node;
            else
                os << ",\"src\":" << w.src << ",\"dst\":" << w.dst;
            os << ",\"from_us\":" << w.from_us << ",\"until_us\":" << w.until_us;
            if (w.kind == net::FaultKind::LinkFlap)
                os << ",\"period_us\":" << w.period_us;
            if (w.kind == net::FaultKind::DropRate)
                os << ",\"drop_probability\":" << w.drop_probability;
            os << "}";
        });
        os << "],\"breakers\":[";
        first = true;
        system.visit_breakers([&](net::NodeId dst, const std::string& proto,
                                  const runtime::CircuitBreaker& b) {
            if (!first) os << ",";
            first = false;
            os << "{\"node\":" << dst << ",\"protocol\":\"" << proto
               << "\",\"state\":\"" << runtime::breaker_state_name(b.state)
               << "\",\"consecutive_failures\":" << b.consecutive_failures << "}";
        });
        os << "],\"nodes\":[";
        for (int k = 0; k < nodes; ++k)
            os << (k ? "," : "") << "{\"node\":" << k
               << ",\"restarts\":" << restarts_of(k) << "}";
        os << "],\"rpc\":{\"retries\":" << counter("rpc.retries")
           << ",\"retries_reply_loss\":" << counter("rpc.retries_reply_loss")
           << ",\"timeouts\":" << counter("rpc.timeouts")
           << ",\"dedup_hits\":" << counter("rpc.dedup_hits")
           << ",\"breaker_open\":" << counter("rpc.breaker_open") << "}}";
        std::cout << os.str() << "\n";
        return 0;
    }
    std::cout << "virtual time: " << system.network().now_us() << "us\n"
              << "fault plan (" << system.network().fault_plan().size()
              << " windows):\n";
    system.network().fault_plan().visit([&](const net::FaultWindow& w) {
        std::cout << "  " << std::left << std::setw(6) << net::fault_kind_name(w.kind);
        if (w.kind == net::FaultKind::NodeCrash)
            std::cout << "node " << w.node;
        else
            std::cout << "link " << w.src << " -> " << w.dst;
        std::cout << "  [" << w.from_us << ", " << w.until_us << ")us";
        if (w.kind == net::FaultKind::LinkFlap)
            std::cout << " period " << w.period_us << "us";
        if (w.kind == net::FaultKind::DropRate)
            std::cout << " p=" << w.drop_probability;
        std::cout << "\n";
    });
    std::cout << "breakers:\n";
    bool any_breaker = false;
    system.visit_breakers([&](net::NodeId dst, const std::string& proto,
                              const runtime::CircuitBreaker& b) {
        any_breaker = true;
        std::cout << "  node " << dst << " via " << proto << ": "
                  << runtime::breaker_state_name(b.state) << " ("
                  << b.consecutive_failures << " consecutive failures)\n";
    });
    if (!any_breaker) std::cout << "  (none active)\n";
    std::cout << "restarts:\n";
    bool any_restart = false;
    for (int k = 0; k < nodes; ++k) {
        if (const std::uint64_t r = restarts_of(k)) {
            any_restart = true;
            std::cout << "  node " << k << ": " << r << "\n";
        }
    }
    if (!any_restart) std::cout << "  (none)\n";
    std::cout << "rpc: retries " << counter("rpc.retries") << ", reply-loss retries "
              << counter("rpc.retries_reply_loss") << ", timeouts "
              << counter("rpc.timeouts") << ", dedup hits "
              << counter("rpc.dedup_hits") << ", breaker rejections "
              << counter("rpc.breaker_open") << "\n";
    return 0;
}

/// Per-node durability report after a run (DESIGN.md §20): WAL/snapshot
/// sizes, checkpoint and recovery counts, plus the system-wide wal.*
/// counters and any migration-by-recovery relocations.  Durability comes
/// from the config's `durable` line; a config without one reports every
/// node as soft-state.
int cmd_wal(const std::string& input, const std::string& config_path,
            const std::string& main_cls, int nodes, bool json) {
    model::ClassPool pool = load_input(input);
    runtime::System system(pool);
    configure_system(system, config_path, nodes);
    system.call_static(0, main_cls, "main", "()V");
    std::cerr << system.node(0).interp().output();

    auto counter = [&](const char* name) {
        return system.metrics().counter(name).value();
    };
    if (json) {
        std::ostringstream os;
        os << "{\"virtual_time_us\":" << system.network().now_us()
           << ",\"durable\":" << (system.durability_enabled() ? "true" : "false")
           << ",\"snapshot_interval_us\":" << system.durability().snapshot_interval_us
           << ",\"nodes\":[";
        for (int k = 0; k < nodes; ++k) {
            const runtime::Node& n = system.node(static_cast<net::NodeId>(k));
            os << (k ? "," : "") << "{\"node\":" << k << ",\"durable\":"
               << (n.durable() ? "true" : "false");
            if (n.durable()) {
                const runtime::WalStats& s = n.wal()->stats();
                os << ",\"log_bytes\":" << n.wal()->log().size()
                   << ",\"snapshot_bytes\":" << n.wal()->snapshot().size()
                   << ",\"records\":" << s.records << ",\"snapshots\":" << s.snapshots
                   << ",\"recoveries\":" << s.recoveries
                   << ",\"replayed\":" << s.replayed;
            }
            if (const runtime::System::Relocation* rel =
                    system.relocation_of(static_cast<net::NodeId>(k)))
                os << ",\"relocated_to\":" << rel->target
                   << ",\"relocated_objects\":" << rel->remap.size();
            os << "}";
        }
        os << "],\"counters\":{\"records\":" << counter("wal.records")
           << ",\"bytes\":" << counter("wal.bytes")
           << ",\"snapshots\":" << counter("wal.snapshots")
           << ",\"recoveries\":" << counter("wal.recoveries")
           << ",\"replayed_records\":" << counter("wal.replayed_records")
           << ",\"relocated_objects\":" << counter("wal.relocated_objects") << "}}";
        std::cout << os.str() << "\n";
        return 0;
    }
    std::cout << "virtual time: " << system.network().now_us() << "us; durability "
              << (system.durability_enabled() ? "on" : "off");
    if (system.durability_enabled())
        std::cout << " (snapshot interval "
                  << system.durability().snapshot_interval_us << "us)";
    std::cout << "\n"
              << std::left << std::setw(6) << "node" << std::right << std::setw(10)
              << "log_B" << std::setw(12) << "snap_B" << std::setw(10) << "records"
              << std::setw(10) << "snaps" << std::setw(10) << "recov"
              << std::setw(10) << "replayed" << "  relocated\n";
    for (int k = 0; k < nodes; ++k) {
        const runtime::Node& n = system.node(static_cast<net::NodeId>(k));
        std::cout << std::left << std::setw(6) << k << std::right;
        if (n.durable()) {
            const runtime::WalStats& s = n.wal()->stats();
            std::cout << std::setw(10) << n.wal()->log().size() << std::setw(12)
                      << n.wal()->snapshot().size() << std::setw(10) << s.records
                      << std::setw(10) << s.snapshots << std::setw(10)
                      << s.recoveries << std::setw(10) << s.replayed;
        } else {
            std::cout << std::setw(10) << "-" << std::setw(12) << "-"
                      << std::setw(10) << "-" << std::setw(10) << "-"
                      << std::setw(10) << "-" << std::setw(10) << "-";
        }
        if (const runtime::System::Relocation* rel =
                system.relocation_of(static_cast<net::NodeId>(k)))
            std::cout << "  -> node " << rel->target << " (" << rel->remap.size()
                      << " object(s))";
        std::cout << "\n";
    }
    std::cout << "wal: " << counter("wal.records") << " record(s), "
              << counter("wal.bytes") << " byte(s), " << counter("wal.snapshots")
              << " snapshot(s), " << counter("wal.recoveries") << " recover(ies), "
              << counter("wal.replayed_records") << " replayed, "
              << counter("wal.relocated_objects") << " relocated\n";
    return 0;
}

/// The adaptation engine's decision log after a run (DESIGN.md §19):
/// what moved or replicated where, why (window traffic), and how the
/// projection compared to the realized window-over-window saving.  The
/// entry point runs under a WorkloadDriver so the controller heartbeat
/// is scheduled; a config without an `adapt` line still gets the engine
/// at defaults — the subcommand's whole point is the report.
int cmd_adapt(const std::string& input, const std::string& config_path,
              const std::string& main_cls, int nodes, bool json) {
    model::ClassPool pool = load_input(input);
    runtime::System system(pool);
    configure_system(system, config_path, nodes);
    if (!system.adaptation_enabled()) system.enable_adaptation();
    runtime::WorkloadDriver driver(system);
    driver.add_client(0, 1, [&main_cls](runtime::System& s, net::NodeId n) {
        s.call_static(n, main_cls, "main", "()V");
    });
    driver.run();
    std::cerr << system.node(0).interp().output();

    const runtime::AdaptationEngine* engine = system.adaptation();
    auto counter = [&](const char* name) {
        return system.metrics().counter(name).value();
    };
    if (json) {
        std::ostringstream os;
        os << "{\"virtual_time_us\":" << system.network().now_us()
           << ",\"ticks\":" << engine->ticks_run() << ",\"decisions\":[";
        bool first = true;
        for (const runtime::AdaptDecision& d : engine->decisions()) {
            if (!first) os << ",";
            first = false;
            os << "{\"seq\":" << d.seq << ",\"t_us\":" << d.t_us
               << ",\"class\":\"" << d.cls << "\",\"action\":\""
               << runtime::adapt_action_name(d.action) << "\",\"from\":" << d.from
               << ",\"to\":" << d.to << ",\"window_calls\":" << d.window_calls
               << ",\"window_bytes\":" << d.window_bytes
               << ",\"projected_saved_bytes\":" << d.projected_saved_bytes;
            if (d.realized_known)
                os << ",\"realized_saved_bytes\":" << d.realized_saved_bytes;
            os << "}";
        }
        os << "],\"counters\":{\"decisions\":" << counter("adapt.decisions")
           << ",\"migrations\":" << counter("adapt.migrations")
           << ",\"replications\":" << counter("adapt.replications")
           << ",\"invalidations\":" << counter("adapt.invalidations")
           << ",\"replica_reads\":" << counter("adapt.replica_reads")
           << ",\"bytes_saved_est\":" << counter("adapt.bytes_saved_est")
           << "}}";
        std::cout << os.str() << "\n";
        return 0;
    }
    std::cout << "virtual time: " << system.network().now_us() << "us; "
              << engine->ticks_run() << " controller tick(s), "
              << engine->decisions().size() << " decision(s)\n"
              << std::left << std::setw(6) << "seq" << std::setw(10) << "t_us"
              << std::setw(11) << "action" << std::setw(16) << "class"
              << std::setw(10) << "move" << std::right << std::setw(8) << "calls"
              << std::setw(12) << "projected" << std::setw(12) << "realized"
              << "\n";
    for (const runtime::AdaptDecision& d : engine->decisions()) {
        std::ostringstream move;
        move << d.from << " -> " << d.to;
        std::cout << std::left << std::setw(6) << d.seq << std::setw(10) << d.t_us
                  << std::setw(11) << runtime::adapt_action_name(d.action)
                  << std::setw(16) << d.cls << std::setw(10) << move.str()
                  << std::right << std::setw(8) << d.window_calls << std::setw(12)
                  << d.projected_saved_bytes << std::setw(12);
        if (d.realized_known)
            std::cout << d.realized_saved_bytes;
        else
            std::cout << "?";
        std::cout << "\n";
    }
    std::cout << "adapt: " << counter("adapt.migrations") << " migration(s), "
              << counter("adapt.replications") << " replication(s), "
              << counter("adapt.invalidations") << " invalidation(s), "
              << counter("adapt.replica_reads") << " replica read(s), est. "
              << counter("adapt.bytes_saved_est") << " bytes saved\n";
    return 0;
}

int usage() {
    std::cerr << "usage:\n"
              << "  rafdac analyze   <app.rir[b]>\n"
              << "  rafdac transform <app.rir> <out.rirb>\n"
              << "  rafdac print     <app.rir[b]>\n"
              << "  rafdac run       <app.rir> <MainClass>\n"
              << "  rafdac deploy    <app.rir> <policy.cfg> <MainClass> [nodes=2]\n"
              << "  rafdac stats     <app.rir> <policy.cfg> <MainClass> [nodes=2] [--json]\n"
              << "                   [--all]\n"
              << "  rafdac trace     <app.rir> <policy.cfg> <MainClass> [nodes=2] [--json]\n"
              << "                   [--chrome <out.json>]\n"
              << "  rafdac journal   <app.rir> <policy.cfg> <MainClass> [nodes=2] [--json]\n"
              << "  rafdac net       <app.rir> <policy.cfg> <MainClass> [nodes=2] [--json]\n"
              << "                   [--all]\n"
              << "  rafdac faults    <app.rir> <policy.cfg> <MainClass> [nodes=2] [--json]\n"
              << "  rafdac adapt     <app.rir> <policy.cfg> <MainClass> [nodes=2] [--json]\n"
              << "  rafdac wal       <app.rir> <policy.cfg> <MainClass> [nodes=2] [--json]\n"
              << "\n"
              << "stats/net tables list the top samples/links (by name / by bytes);\n"
              << "--all lifts the cap.  JSON output is always complete.\n"
              << "\n"
              << "environment:\n"
              << "  RAFDA_TRANSFORM_THREADS  worker threads for transform/deploy\n"
              << "                           (default: all cores; output is\n"
              << "                           identical at any value)\n";
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    bool json = false;
    if (auto it = std::find(args.begin(), args.end(), "--json"); it != args.end()) {
        json = true;
        args.erase(it);
    }
    bool all = false;
    if (auto it = std::find(args.begin(), args.end(), "--all"); it != args.end()) {
        all = true;
        args.erase(it);
    }
    std::string chrome_path;
    if (auto it = std::find(args.begin(), args.end(), "--chrome"); it != args.end()) {
        if (std::next(it) == args.end()) return usage();
        chrome_path = *std::next(it);
        args.erase(it, std::next(it, 2));
    }
    try {
        if (args.size() == 2 && args[0] == "analyze") return cmd_analyze(args[1]);
        if (args.size() == 3 && args[0] == "transform")
            return cmd_transform(args[1], args[2]);
        if (args.size() == 2 && args[0] == "print") return cmd_print(args[1]);
        if (args.size() == 3 && args[0] == "run") return cmd_run(args[1], args[2]);
        if ((args.size() == 4 || args.size() == 5) && args[0] == "deploy")
            return cmd_deploy(args[1], args[2], args[3],
                              args.size() == 5 ? std::atoi(args[4].c_str()) : 2);
        if ((args.size() == 4 || args.size() == 5) &&
            (args[0] == "stats" || args[0] == "trace" || args[0] == "journal"))
            return cmd_observe(args[1], args[2], args[3],
                               args.size() == 5 ? std::atoi(args[4].c_str()) : 2,
                               args[0] == "trace"     ? ObserveMode::Trace
                               : args[0] == "journal" ? ObserveMode::Journal
                                                      : ObserveMode::Stats,
                               json, all, args[0] == "trace" ? chrome_path : "");
        if ((args.size() == 4 || args.size() == 5) && args[0] == "net")
            return cmd_net(args[1], args[2], args[3],
                           args.size() == 5 ? std::atoi(args[4].c_str()) : 2, json,
                           all);
        if ((args.size() == 4 || args.size() == 5) && args[0] == "faults")
            return cmd_faults(args[1], args[2], args[3],
                              args.size() == 5 ? std::atoi(args[4].c_str()) : 2, json);
        if ((args.size() == 4 || args.size() == 5) && args[0] == "adapt")
            return cmd_adapt(args[1], args[2], args[3],
                             args.size() == 5 ? std::atoi(args[4].c_str()) : 2, json);
        if ((args.size() == 4 || args.size() == 5) && args[0] == "wal")
            return cmd_wal(args[1], args[2], args[3],
                           args.size() == 5 ? std::atoi(args[4].c_str()) : 2, json);
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "rafdac: " << e.what() << "\n";
        return 2;
    }
}
