#!/bin/sh
# Configure, build and run the full test suite for the default build and
# the ASan+UBSan build.  This is the pre-merge gate: both must be green.
#
#   tools/check.sh            # both presets
#   tools/check.sh sanitize   # just one
set -eu

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
presets=${1:-"default sanitize"}

# The VM guards guest recursion at ~2000 frames, which fits comfortably in
# a default 8 MiB stack — but ASan multiplies native frame sizes, so the
# sanitizer build needs more headroom to reach the guest guard first.
ulimit -s 262144 2>/dev/null || ulimit -s unlimited 2>/dev/null || true

for preset in $presets; do
    echo "== preset: $preset =="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$jobs"
    ctest --preset "$preset" -j "$jobs"
done

# Non-gating perf smoke: the benches most sensitive to regressions in the
# interpreter hot path (inline caches, DESIGN.md §11), the virtual-time
# model (per-node clocks + link occupancy, DESIGN.md §13) and the parallel
# transformation pipeline (graph-indexed closure + thread pool, DESIGN.md
# §14 — bench_pipeline's BM_Pipeline/64 thread axis and BENCH_E3.json's
# analyze_us_serial/analyze_us_pooled record the scaling).  Run from the
# repo root so the BENCH_<id>.json sidecars land here (gitignored).
# Failures warn instead of failing the gate — perf numbers are reviewed,
# not asserted.
case " $presets " in
*" default "*)
    for bench in bench_property_access bench_dispatch_matrix bench_concurrency \
                 bench_pipeline bench_transformability bench_reliability \
                 bench_journal bench_batching bench_adaptive \
                 bench_durability; do
        echo "== perf smoke: $bench =="
        "build/bench/$bench" --benchmark_min_time=0.05s ||
            echo "WARN: $bench failed (non-gating)"
    done

    # Scale smoke (non-gating): the event-heap scheduler at 10^4 fleet
    # clients (DESIGN.md §18).  The full E13 run uses 10^5; the smoke
    # keeps CI fast while still exercising VirtualClock fairness, the
    # network completion sink and the sharded directory.  The JSON
    # sidecar it writes is uploaded with the other BENCH artifacts.
    echo "== perf smoke: bench_scale (10k clients) =="
    RAFDA_SCALE_CLIENTS=10000 \
        build/bench/bench_scale --benchmark_min_time=0.01s ||
        echo "WARN: bench_scale failed (non-gating)"

    # Differential guard (gating): the legacy driver workloads must be a
    # *degenerate event order* of the event-heap scheduler — re-running
    # E5/E9/E10/E12 on the same build must reproduce their JSON sidecars
    # byte for byte (this also keeps the pooled-buffer encode and the
    # batching off-state provably inert).  E13 is excluded: its summary
    # carries host-varying peak RSS.
    echo "== bench determinism guard (E5 E9 E10 E12 E14 E15) =="
    det_dir=$(mktemp -d /tmp/rafda_det_XXXXXX)
    trap 'rm -rf "$det_dir"' EXIT INT TERM
    cp BENCH_E5.json BENCH_E9.json BENCH_E10.json BENCH_E12.json \
       BENCH_E14.json BENCH_E15.json "$det_dir"/
    build/bench/bench_dispatch_matrix --benchmark_min_time=0.05s >/dev/null
    build/bench/bench_concurrency --benchmark_min_time=0.05s >/dev/null
    build/bench/bench_reliability --benchmark_min_time=0.05s >/dev/null
    build/bench/bench_batching --benchmark_min_time=0.05s >/dev/null
    build/bench/bench_adaptive --benchmark_min_time=0.05s >/dev/null
    build/bench/bench_durability --benchmark_min_time=0.05s >/dev/null
    for id in E5 E9 E10 E12 E14 E15; do
        cmp "BENCH_$id.json" "$det_dir/BENCH_$id.json"
    done
    echo "bench determinism OK: E5/E9/E10/E12/E14/E15 re-runs byte-identical"

    # Durability off-state guard (gating): E5 and E10 run with durability
    # off, so their sidecars double as the proof that the WAL layer is
    # inert when disabled — any off-path write or schedule perturbation
    # shows up as a byte diff in the cmp above.  E15's own summary must
    # assert exactly-once across the crash (executions == tasks after WAL
    # replay) and a relocation identical to the uncrashed baseline.
    echo "== durability invariants (E15) =="
    grep -q '"exactly_once":1' BENCH_E15.json
    grep -q '"relocation_match":1' BENCH_E15.json
    echo "durability invariants OK: exactly_once + relocation_match"

    # Scheduler determinism contract (gating): the event-heap refactor's
    # headline claim — dispatch order is a pure function of workload and
    # seed — is recorded by E13's summary fields.  Promote them from
    # reviewed numbers to asserted invariants: the sidecar must say
    # deterministic:1 and carry the event-order digest it proved it with.
    # E14 makes the same claim for the closed-loop controller.
    echo "== determinism fields (E13 E14 E15) =="
    for id in E13 E14 E15; do
        grep -q '"deterministic":1' "BENCH_$id.json"
        grep -q '"event_order_digest":' "BENCH_$id.json"
    done
    echo "determinism fields OK: E13/E14/E15 assert deterministic:1 + digest"

    # BENCH sidecar schema sanity (gating): every BENCH_*.json the smoke
    # runs produced must parse as a single JSON object whose experiment id
    # matches its filename, with numeric (not stringified) metric values.
    echo "== BENCH schema sanity =="
    if command -v python3 >/dev/null 2>&1; then
        python3 - BENCH_*.json <<'PYEOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert isinstance(doc, dict), f"{path}: not a JSON object"
    expect = path[len("BENCH_"):-len(".json")]
    assert doc.get("experiment") == expect, \
        f"{path}: experiment id {doc.get('experiment')!r} != {expect!r}"
    numeric = [k for k, v in doc.items() if isinstance(v, (int, float))]
    assert numeric, f"{path}: no numeric metrics"
print(f"BENCH schema OK: {len(sys.argv) - 1} sidecars")
PYEOF
    else
        # Fallback without python3: every sidecar names its experiment.
        for f in BENCH_*.json; do
            id=${f#BENCH_}; id=${id%.json}
            grep -q "\"experiment\":\"$id\"" "$f"
        done
        echo "BENCH schema OK (grep fallback)"
    fi

    # Chrome trace export contract (gating): `rafdac trace --chrome` must
    # emit trace-event JSON that parses and carries the ph/ts/pid fields
    # Perfetto's legacy ingest requires on every event.  The trap cleans
    # the temp file even when validation aborts mid-way (set -e).
    echo "== chrome trace validation =="
    trace_out=$(mktemp /tmp/rafda_trace_XXXXXX.json)
    trap 'rm -rf "$det_dir"; rm -f "$trace_out"' EXIT INT TERM
    build/tools/rafdac trace examples/fig1.rir examples/fig1.cfg Main 2 \
        --chrome "$trace_out" >/dev/null 2>&1
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$trace_out" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty traceEvents"
for e in events:
    for key in ("ph", "ts", "pid"):
        assert key in e, f"event missing {key}: {e}"
print(f"chrome trace OK: {len(events)} events")
PYEOF
    else
        # Fallback without python3: spot-check the required fields exist.
        grep -q '"traceEvents":\[{' "$trace_out"
        grep -q '"ph":"X"' "$trace_out"
        grep -q '"ts":' "$trace_out"
        grep -q '"pid":' "$trace_out"
        echo "chrome trace OK (grep fallback)"
    fi
    ;;
esac

# WAL-replay fuzz smoke (gating when the sanitize preset ran): the torn-tail
# sweep and the bit-flip fuzz replay adversarial byte streams through the
# frame decoder — exactly the code that parses untrusted durable state on
# recovery — under ASan+UBSan.
case " $presets " in
*" sanitize "*)
    echo "== WAL replay fuzz smoke (sanitize) =="
    build-sanitize/tests/runtime/wal_test \
        --gtest_filter='Wal.TornTail*:Wal.BitFlip*'
    ;;
esac
