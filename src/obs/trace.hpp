// Span tracer — follows one logical RPC across its whole path.
//
// A span is a named interval of virtual time on one node; spans nest
// (parent/child) and share a trace id, so one proxy invocation shows up
// as a tree:
//
//   rpc.invoke C.poke (node 0)
//   ├─ codec.encode_request RMI
//   ├─ net.transfer 0->1
//   ├─ codec.decode_request RMI
//   ├─ rpc.dispatch poke (node 1)          <- parent propagated on the wire
//   │  └─ vm.execute poke
//   ├─ codec.encode_reply RMI
//   ├─ net.transfer 1->0
//   └─ codec.decode_reply RMI
//
// The parent/trace ids travel in the wire `message` header (CallRequest),
// so forwarding chains and migrations appear as nested rpc.invoke spans
// under the dispatch that caused them, exactly as the wire saw it.
//
// Time is the simulation's virtual clock (SimNetwork::now_us, mirrored
// into each VM's logical time), injected via set_clock — results are
// exactly reproducible, never wall-clock noise.
//
// Disabled by default: begin() is a single branch returning 0, so the
// hot RPC path pays nothing when tracing is off.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace rafda::obs {

struct Span {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;  // 0 = root
    std::uint64_t trace = 0;   // shared by every span of one logical operation
    std::string name;
    std::int32_t node = -1;  // address space the span ran in (-1 = none)
    std::uint64_t start_us = 0;
    std::uint64_t end_us = 0;
    std::vector<std::pair<std::string, std::string>> notes;

    std::uint64_t duration_us() const noexcept {
        return end_us >= start_us ? end_us - start_us : 0;
    }
};

class Tracer {
public:
    void set_enabled(bool on) noexcept { enabled_ = on; }
    bool enabled() const noexcept { return enabled_; }

    /// Virtual-time source; unset means every span reads 0.
    void set_clock(std::function<std::uint64_t()> clock) { clock_ = std::move(clock); }

    /// Opens a span as a child of the current innermost open span (a new
    /// root — and a new trace — when none is open).  Returns the span id,
    /// or 0 when tracing is disabled.
    std::uint64_t begin(std::string name, std::int32_t node = -1);

    /// Opens a span whose parentage arrived from elsewhere (the wire
    /// header): used by the server side of an RPC so the dispatch span is
    /// the child of the *encoded* parent, not of whatever happens to be
    /// on this tracer's stack.
    std::uint64_t begin_remote(std::string name, std::int32_t node,
                               std::uint64_t trace, std::uint64_t parent);

    /// Closes span `id` (and anything left open beneath it).  id 0 is a
    /// no-op, so callers can pair begin/end unconditionally.
    void end(std::uint64_t id);

    /// Attaches a key/value note to the innermost open span.
    void note(const std::string& key, std::string value);

    /// Id of the innermost open span / its trace (0 when none).
    std::uint64_t current_span() const noexcept;
    std::uint64_t current_trace() const noexcept;

    /// Every recorded span, in begin order.  Open spans have end_us == 0.
    const std::vector<Span>& spans() const noexcept { return spans_; }
    void clear();

    /// ASCII rendering of the span forest with durations and notes.
    std::string render_tree() const;
    /// Machine-readable export: a single-line JSON array of span objects.
    std::string to_json() const;

private:
    std::uint64_t now() const { return clock_ ? clock_() : 0; }

    bool enabled_ = false;
    std::function<std::uint64_t()> clock_;
    std::vector<Span> spans_;
    std::vector<std::size_t> open_;  // indices into spans_, innermost last
    std::uint64_t next_id_ = 1;
};

/// RAII span: ends the span on scope exit, including exceptional unwinds
/// (a dropped message must not corrupt the open-span stack).
class ScopedSpan {
public:
    ScopedSpan() = default;
    ScopedSpan(Tracer& tracer, std::string name, std::int32_t node = -1)
        : tracer_(&tracer), id_(tracer.begin(std::move(name), node)) {}

    /// Takes ownership of an already-open span (e.g. from begin_remote).
    static ScopedSpan adopt(Tracer& tracer, std::uint64_t id) {
        ScopedSpan s;
        s.tracer_ = &tracer;
        s.id_ = id;
        return s;
    }
    ScopedSpan(ScopedSpan&& other) noexcept
        : tracer_(other.tracer_), id_(other.id_) {
        other.tracer_ = nullptr;
        other.id_ = 0;
    }
    ScopedSpan& operator=(ScopedSpan&& other) noexcept {
        if (this != &other) {
            finish();
            tracer_ = other.tracer_;
            id_ = other.id_;
            other.tracer_ = nullptr;
            other.id_ = 0;
        }
        return *this;
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() { finish(); }

    std::uint64_t id() const noexcept { return id_; }

private:
    void finish() {
        if (tracer_ && id_) tracer_->end(id_);
        tracer_ = nullptr;
        id_ = 0;
    }

    Tracer* tracer_ = nullptr;
    std::uint64_t id_ = 0;
};

}  // namespace rafda::obs
