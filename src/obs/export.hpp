// Machine- and human-readable exports of metric snapshots.
//
// to_json emits one JSON object on a single line — the contract the
// `rafdac stats --json` subcommand and the bench summary records rely on
// (one line in, one parseable document out).  Counters become numbers,
// gauges become numbers, histograms become objects with count/sum/min/
// max/mean/p50/p99 plus the non-empty buckets keyed by their inclusive
// upper bound.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace rafda::obs {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

/// The snapshot as a single-line JSON object: {"metric.name": value, ...}.
std::string to_json(const Snapshot& snapshot);

/// The snapshot as an aligned human-readable table, one metric per line.
/// Name-sorted fixed-width table.  `max_rows` > 0 truncates the listing
/// after that many samples with a one-line "... N more" marker — hundreds
/// of nodes mint thousands of per-link and per-edge samples, and a
/// dashboard wants the head, not the firehose.  0 = list everything.
std::string to_table(const Snapshot& snapshot, std::size_t max_rows = 0);

}  // namespace rafda::obs
