#include "obs/chrome.hpp"

#include <map>
#include <set>
#include <sstream>

#include "obs/export.hpp"

namespace rafda::obs {

namespace {

/// pid 0 is the "no node" process; real nodes are offset by one so node 0
/// is distinguishable from it.
std::int64_t node_pid(std::int32_t node) { return node >= 0 ? node + 1 : 0; }

}  // namespace

std::string chrome_trace_json(const Tracer& tracer, const Journal& journal) {
    const std::vector<Span>& spans = tracer.spans();

    // The lane (tid) of every span is the node of its trace's root span —
    // the client that initiated the logical operation.  Spans arrive in
    // begin order, so the first span seen for a trace id is its root.
    std::map<std::uint64_t, std::int64_t> trace_lane;
    for (const Span& s : spans)
        trace_lane.emplace(s.trace, node_pid(s.node));

    std::set<std::int64_t> pids;
    std::map<std::int64_t, std::set<std::int64_t>> tids;  // pid -> lanes
    for (const Span& s : spans) {
        const std::int64_t pid = node_pid(s.node);
        pids.insert(pid);
        tids[pid].insert(trace_lane[s.trace]);
    }
    journal.visit([&](const JournalEvent& e) {
        pids.insert(node_pid(e.node));
        tids[node_pid(e.node)].insert(0);
    });

    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first) os << ",";
        first = false;
    };

    // Metadata: name the processes after their nodes and the lanes after
    // the clients driving them (lane 0 doubles as the journal lane).
    for (const std::int64_t pid : pids) {
        sep();
        os << "{\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
           << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
           << (pid ? "node " + std::to_string(pid - 1) : "middleware") << "\"}}";
    }
    for (const auto& [pid, lanes] : tids) {
        for (const std::int64_t tid : lanes) {
            sep();
            os << "{\"ph\":\"M\",\"ts\":0,\"pid\":" << pid << ",\"tid\":" << tid
               << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
               << (tid ? "client " + std::to_string(tid - 1) : "events")
               << "\"}}";
        }
    }

    for (const Span& s : spans) {
        sep();
        os << "{\"ph\":\"X\",\"name\":\"" << json_escape(s.name)
           << "\",\"cat\":\"span\",\"ts\":" << s.start_us
           << ",\"dur\":" << s.duration_us() << ",\"pid\":" << node_pid(s.node)
           << ",\"tid\":" << trace_lane[s.trace] << ",\"args\":{\"trace\":" << s.trace
           << ",\"span\":" << s.id;
        for (const auto& [k, v] : s.notes)
            os << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
        os << "}}";
    }

    journal.visit([&](const JournalEvent& e) {
        sep();
        os << "{\"ph\":\"i\",\"s\":\"p\",\"name\":\"" << journal_kind_name(e.kind);
        if (!e.detail.empty()) os << " " << json_escape(e.detail);
        os << "\",\"cat\":\"journal\",\"ts\":" << e.t_us
           << ",\"pid\":" << node_pid(e.node) << ",\"tid\":0,\"args\":{\"seq\":"
           << e.seq << ",\"peer\":" << e.peer << ",\"a\":" << e.a << ",\"b\":" << e.b
           << "}}";
    });

    os << "]}";
    return os.str();
}

}  // namespace rafda::obs
