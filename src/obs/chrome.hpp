// Chrome trace-event export — spans + journal events as a Perfetto-loadable
// timeline.
//
// The Chrome trace-event JSON format (the `chrome://tracing` / Perfetto
// legacy ingest format) models a trace as processes containing threads
// containing events.  We map the simulation onto it as:
//
//   process (pid)  = node + 1      (pid 0 collects node-less spans)
//   thread  (tid)  = the node that *initiated* the logical operation — the
//                    client driving the trace — so one client's calls line
//                    up on one lane inside every process they touch, and
//                    concurrent clients appear as parallel lanes on the
//                    server process exactly where virtual time overlaps.
//
// Spans become complete events ("ph":"X", ts/dur in virtual µs); journal
// events become instants ("ph":"i"); process/thread names are emitted as
// "M" metadata records.  Virtual time *is* the ts axis, so what Perfetto
// renders is the event-sequenced schedule itself, reproducible bit-for-bit
// from the seed.
#pragma once

#include <string>

#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace rafda::obs {

/// The whole trace as one JSON document:
/// {"displayTimeUnit":"ms","traceEvents":[...]}.  Every event carries the
/// required ph/ts/pid fields (tools/check.sh validates this contract).
std::string chrome_trace_json(const Tracer& tracer, const Journal& journal);

}  // namespace rafda::obs
