// Metrics registry — the unified measurement substrate for the middleware.
//
// The RAFDA follow-up papers make explicit that distribution-policy
// decisions need runtime measurement of calls, traffic and placement.
// This registry is the single place those measurements live: named
// counters, gauges and fixed-bucket histograms, plus read-only "probes"
// that sample externally-owned state (e.g. interpreter counters) at
// snapshot time.
//
// Hot-path discipline: `counter()`/`gauge()`/`histogram()` return stable
// references that survive `reset()` (values are zeroed in place, never
// erased), so instrumented code resolves a metric by name once and then
// increments through the handle — no string building or map lookup per
// event.  Histograms use fixed power-of-two buckets, so recording is a
// bit-scan plus a few adds: allocation-free.
//
// Names are dotted paths, most-general first, e.g.
//   rpc.proto.RMI.calls
//   rpc.class_calls.<cls>.<src>.<dst>
//   net.link.<src>.<dst>.bytes
// (see DESIGN.md "Observability" for the full naming convention).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace rafda::obs {

class Counter {
public:
    void add(std::uint64_t n = 1) noexcept { value_ += n; }
    std::uint64_t value() const noexcept { return value_; }
    void reset() noexcept { value_ = 0; }

private:
    std::uint64_t value_ = 0;
};

/// A point-in-time signed quantity (queue depth, live objects, ...).
class Gauge {
public:
    void set(std::int64_t v) noexcept { value_ = v; }
    void add(std::int64_t delta) noexcept { value_ += delta; }
    std::int64_t value() const noexcept { return value_; }
    void reset() noexcept { value_ = 0; }

private:
    std::int64_t value_ = 0;
};

/// Fixed-bucket histogram for latencies (virtual µs) and sizes (bytes).
///
/// Bucket 0 counts exact zeros; bucket i (i >= 1) counts values in
/// [2^(i-1), 2^i); the last bucket absorbs everything larger.  Recording
/// is allocation-free and O(1).
///
/// Alongside the buckets, the first `kExactCap` recorded values are kept
/// verbatim: while a histogram holds at most that many samples,
/// `quantile()` is *exact* (small-N runs — most tests and several benches
/// — get precise p50/p95/p99); beyond the cap it degrades to the bucket
/// upper-bound approximation, whose error is bounded by the power-of-two
/// bucket width.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 33;
    /// Samples retained verbatim for the exact quantile path.
    static constexpr std::size_t kExactCap = 256;

    void record(std::uint64_t v) noexcept;

    std::uint64_t count() const noexcept { return count_; }
    std::uint64_t sum() const noexcept { return sum_; }
    std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
    std::uint64_t max() const noexcept { return max_; }
    double mean() const noexcept {
        return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
    }
    const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
        return buckets_;
    }
    /// Inclusive upper bound of bucket `i` (UINT64_MAX for the last).
    static std::uint64_t bucket_upper_bound(std::size_t i) noexcept;
    /// Index of the bucket `v` falls into.
    static std::size_t bucket_index(std::uint64_t v) noexcept;

    /// Approximate quantile (q in [0,1]) from the bucket upper bounds.
    std::uint64_t approx_quantile(double q) const noexcept;

    /// Best-available quantile: exact (nearest-rank over the retained
    /// samples) while count() <= kExactCap, bucket-approximate beyond.
    std::uint64_t quantile(double q) const;

    /// The bucket-approximation shared with Snapshot exports: quantile of
    /// a bucket-count array whose true values are unknown (clamped to
    /// `max`, the largest value ever recorded).
    static std::uint64_t quantile_from_buckets(
        const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t count,
        std::uint64_t max, double q) noexcept;

    void reset() noexcept;

private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, kExactCap> exact_{};
};

/// One sampled metric inside a Snapshot.
struct Sample {
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    Kind kind = Kind::Counter;
    std::uint64_t counter = 0;  // Kind::Counter
    std::int64_t gauge = 0;     // Kind::Gauge (also probe results)
    // Kind::Histogram:
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};

    bool operator==(const Sample&) const = default;
};

/// An immutable point-in-time copy of every metric (probes included).
/// The bench harness takes one before and one after a workload and
/// reports the diff, so numbers are exact per-window deltas.
struct Snapshot {
    std::map<std::string, Sample> samples;

    bool empty() const noexcept { return samples.empty(); }
    const Sample* find(const std::string& name) const;
    /// Counter value (0 when absent or not a counter) — convenience for
    /// tests and tools.
    std::uint64_t counter_value(const std::string& name) const;
};

/// after - before: counters and histogram contents subtract; gauges keep
/// the `after` reading (they are levels, not totals).  Metrics absent in
/// `before` are taken whole; histogram min/max are taken from `after`
/// (per-window extrema are not recoverable from two cumulative states).
Snapshot diff(const Snapshot& before, const Snapshot& after);

class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Resolve-or-create.  The returned reference is stable for the
    /// registry's lifetime and survives reset().
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Read-only lookups (nullptr when the metric does not exist).
    const Counter* find_counter(const std::string& name) const;
    const Gauge* find_gauge(const std::string& name) const;
    const Histogram* find_histogram(const std::string& name) const;

    /// Registers a read-only probe sampled at snapshot() time, for state
    /// owned elsewhere (e.g. a VM's instruction counter).  Re-registering
    /// a name replaces the previous probe.  The callable must outlive the
    /// registry or be removed with remove_probe.
    void register_probe(const std::string& name, std::function<std::int64_t()> fn);
    void remove_probe(const std::string& name);
    /// Removes every probe whose name starts with `prefix`.
    void remove_probes_with_prefix(const std::string& prefix);

    /// Visits every counter in name order (probes excluded).
    void visit_counters(
        const std::function<void(const std::string&, std::uint64_t)>& fn) const;

    /// Visits every histogram in name order — how the adaptation engine
    /// enumerates the per-method `rpc.latency.*` family without taking a
    /// full snapshot per controller tick.
    void visit_histograms(
        const std::function<void(const std::string&, const Histogram&)>& fn) const;

    Snapshot snapshot() const;

    /// Zeroes every counter/gauge/histogram in place; handles stay valid.
    /// Probes are untouched (they sample live external state).
    void reset();

    std::size_t size() const noexcept {
        return counters_.size() + gauges_.size() + histograms_.size() + probes_.size();
    }

private:
    // unique_ptr values give handle stability; std::map gives sorted
    // iteration for deterministic snapshots and exports.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::function<std::int64_t()>> probes_;
};

}  // namespace rafda::obs
