// Journal — the flight recorder: a bounded ring of virtual-time-stamped
// structured events.
//
// Point-in-time counters (obs::Registry) say *how much* happened and the
// Tracer says *what nested under what*, but neither records *when* things
// happened relative to each other across the whole run: retries vs fault
// windows, dedup hits vs crashes, migrations vs the traffic that provoked
// them.  The journal is that record — the observation substrate the
// adaptation engine (ROADMAP item 1) replays its decisions against, and
// the event source `rafdac trace --chrome` turns into a Perfetto-loadable
// timeline.
//
// Overhead discipline (DESIGN.md §16):
//   * Disabled (the default) the journal is a single `enabled()` branch.
//     Call sites MUST guard `if (j.enabled()) j.record(...)` so no event
//     arguments — in particular no detail strings — are ever built on the
//     disabled path.  Nothing is allocated until the first enable.
//   * Enabled, the ring is allocated once at `capacity()` slots and then
//     reused; recording is a slot assignment, never a push_back.  Memory
//     stays bounded no matter how long the run is: old events are
//     overwritten, and `overwritten()` says how many fell off the back.
//   * Recording never reads clocks, never draws from a PRNG and never
//     advances virtual time, so enabling the journal cannot perturb a
//     seeded run — virtual-time results are bit-for-bit identical with
//     the journal on or off (asserted by bench_journal / E11).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rafda::obs {

/// One recorded event.  The fixed fields cover every emitter; `a`/`b` are
/// kind-specific payloads (request id, byte counts, object ids, ...) and
/// `detail` is a short human string (protocol, method, "request"/"reply").
struct JournalEvent {
    enum class Kind : std::uint8_t {
        RpcSend,      // node=src, peer=dst, a=request_id, b=request bytes
        RpcArrive,    // node=dst, peer=src, a=request_id, b=request bytes
        RpcDispatch,  // node=dst, a=request_id, b=attempt
        RpcReply,     // node=caller, peer=dst, a=request_id, b=reply bytes
        RpcDrop,      // node=src, peer=dst of the lossy link, a=request_id
        RpcRetry,     // node=caller, a=request_id, b=attempt about to run
        RpcTimeout,   // node=where the deadline fired, a=request_id
        DedupHit,     // node=server, a=request_id (reply replayed, not re-run)
        Breaker,      // node=dst, a=new state (0 closed / 1 open / 2 half-open)
        FaultEdge,    // node=src, peer=dst (peer=-1: node fault), a=1 down/0 up
        Migrate,      // node=from, peer=to, a=old oid, b=new oid
        Adapt,        // adaptation-engine decision (DESIGN.md §19):
                      // node=from/home, peer=to (-1 when n/a), a=action
                      // (0 migrate / 1 replicate / 2 defer / 3 invalidate /
                      // 4 refresh / 5 recover), b=bytes involved, detail=class
        Recover,      // durable restart or migration-by-recovery
                      // (DESIGN.md §20): node=recovered/crashed node,
                      // peer=target (-1 = in-place restart), a=records
                      // replayed, b=bytes replayed
    };

    Kind kind = Kind::RpcSend;
    std::uint64_t seq = 0;   // monotone sequence number, survives wrap-around
    std::uint64_t t_us = 0;  // virtual time of the event
    std::int32_t node = -1;
    std::int32_t peer = -1;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::string detail;
};

/// Short stable name for tables and JSON ("send", "drop", "migrate", ...).
const char* journal_kind_name(JournalEvent::Kind kind);

class Journal {
public:
    static constexpr std::size_t kDefaultCapacity = 8192;
    /// Longest detail string a slot retains; longer strings are truncated
    /// with a "..." suffix at record time.  Slots are a reuse pool whose
    /// string capacity persists, so this bounds ring memory at
    /// capacity × (sizeof(JournalEvent) + kMaxDetail) regardless of what
    /// emitters pass in — the scale guarantee DESIGN.md §18 relies on.
    static constexpr std::size_t kMaxDetail = 64;

    /// Enabling allocates the ring (once); disabling keeps the recorded
    /// events readable but stops recording.
    void set_enabled(bool on);
    bool enabled() const noexcept { return enabled_; }

    /// Resizes the ring and clears it.  Capacity 0 is clamped to 1.
    void set_capacity(std::size_t n);
    std::size_t capacity() const noexcept { return capacity_; }

    /// Appends one event (callers must guard with `enabled()`; record()
    /// re-checks defensively).  When the ring is full the oldest event is
    /// overwritten — recording is O(1) and allocation-free apart from the
    /// detail string moved into the slot.
    void record(JournalEvent::Kind kind, std::uint64_t t_us, std::int32_t node,
                std::int32_t peer, std::uint64_t a, std::uint64_t b,
                std::string detail);

    /// Events currently held (<= capacity()).
    std::size_t size() const noexcept { return size_; }
    /// Events recorded since the last rebase/clear, including overwritten.
    std::uint64_t total_recorded() const noexcept { return total_; }
    /// Events lost off the back of the ring.
    std::uint64_t overwritten() const noexcept { return total_ - size_; }

    /// Virtual time the current observation window started: 0 at birth,
    /// reset_stats() rebases it to the watermark so journal contents and
    /// utilization denominators describe the same window (DESIGN.md §16).
    std::uint64_t epoch_us() const noexcept { return epoch_us_; }

    /// Drops every event and starts a new observation window at `epoch`.
    void rebase(std::uint64_t epoch_us);
    void clear() { rebase(epoch_us_); }

    /// Oldest-to-newest traversal.
    void visit(const std::function<void(const JournalEvent&)>& fn) const;

    /// Single-line JSON: {"epoch_us":..,"total":..,"overwritten":..,
    /// "events":[{...},...]} — the `rafdac journal --json` contract.
    std::string to_json() const;

private:
    bool enabled_ = false;
    std::size_t capacity_ = kDefaultCapacity;
    std::vector<JournalEvent> ring_;  // allocated on first enable
    std::size_t head_ = 0;            // slot the next event goes into
    std::size_t size_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t epoch_us_ = 0;
};

}  // namespace rafda::obs
