#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace rafda::obs {

void Histogram::record(std::uint64_t v) noexcept {
    ++buckets_[bucket_index(v)];
    if (count_ < kExactCap) exact_[count_] = v;
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
}

std::size_t Histogram::bucket_index(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    std::size_t idx = static_cast<std::size_t>(std::bit_width(v));
    return idx < kBuckets ? idx : kBuckets - 1;
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
}

std::uint64_t Histogram::approx_quantile(double q) const noexcept {
    return quantile_from_buckets(buckets_, count_, max_, q);
}

std::uint64_t Histogram::quantile_from_buckets(
    const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t count,
    std::uint64_t max, double q) noexcept {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen > rank) {
            std::uint64_t hi = bucket_upper_bound(i);
            return hi > max ? max : hi;
        }
    }
    return max;
}

std::uint64_t Histogram::quantile(double q) const {
    if (count_ == 0) return 0;
    if (count_ > kExactCap) return approx_quantile(q);
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Exact nearest-rank path: every recorded value is still retained.
    std::array<std::uint64_t, kExactCap> sorted;
    const std::size_t n = static_cast<std::size_t>(count_);
    std::copy(exact_.begin(), exact_.begin() + n, sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + n);
    const std::size_t rank =
        static_cast<std::size_t>(q * static_cast<double>(count_ - 1));
    return sorted[rank];
}

void Histogram::reset() noexcept {
    buckets_.fill(0);
    count_ = sum_ = min_ = max_ = 0;
}

const Sample* Snapshot::find(const std::string& name) const {
    auto it = samples.find(name);
    return it == samples.end() ? nullptr : &it->second;
}

std::uint64_t Snapshot::counter_value(const std::string& name) const {
    const Sample* s = find(name);
    return s && s->kind == Sample::Kind::Counter ? s->counter : 0;
}

Snapshot diff(const Snapshot& before, const Snapshot& after) {
    Snapshot out;
    for (const auto& [name, a] : after.samples) {
        const Sample* b = before.find(name);
        Sample d = a;
        if (b && b->kind == a.kind) {
            switch (a.kind) {
                case Sample::Kind::Counter:
                    d.counter = a.counter >= b->counter ? a.counter - b->counter : 0;
                    break;
                case Sample::Kind::Gauge:
                    break;  // levels: keep the `after` reading
                case Sample::Kind::Histogram:
                    d.count = a.count >= b->count ? a.count - b->count : 0;
                    d.sum = a.sum >= b->sum ? a.sum - b->sum : 0;
                    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
                        d.buckets[i] = a.buckets[i] >= b->buckets[i]
                                           ? a.buckets[i] - b->buckets[i]
                                           : 0;
                    break;
            }
        }
        out.samples.emplace(name, d);
    }
    return out;
}

Counter& Registry::counter(const std::string& name) {
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
    return *it->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::register_probe(const std::string& name,
                              std::function<std::int64_t()> fn) {
    probes_[name] = std::move(fn);
}

void Registry::remove_probe(const std::string& name) { probes_.erase(name); }

void Registry::remove_probes_with_prefix(const std::string& prefix) {
    for (auto it = probes_.lower_bound(prefix); it != probes_.end();) {
        if (it->first.compare(0, prefix.size(), prefix) != 0) break;
        it = probes_.erase(it);
    }
}

void Registry::visit_counters(
    const std::function<void(const std::string&, std::uint64_t)>& fn) const {
    for (const auto& [name, c] : counters_) fn(name, c->value());
}

void Registry::visit_histograms(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, *h);
}

Snapshot Registry::snapshot() const {
    Snapshot out;
    for (const auto& [name, c] : counters_) {
        Sample s;
        s.kind = Sample::Kind::Counter;
        s.counter = c->value();
        out.samples.emplace(name, s);
    }
    for (const auto& [name, g] : gauges_) {
        Sample s;
        s.kind = Sample::Kind::Gauge;
        s.gauge = g->value();
        out.samples.emplace(name, s);
    }
    for (const auto& [name, h] : histograms_) {
        Sample s;
        s.kind = Sample::Kind::Histogram;
        s.count = h->count();
        s.sum = h->sum();
        s.min = h->min();
        s.max = h->max();
        s.buckets = h->buckets();
        out.samples.emplace(name, s);
    }
    for (const auto& [name, fn] : probes_) {
        Sample s;
        s.kind = Sample::Kind::Gauge;
        s.gauge = fn();
        out.samples.emplace(name, s);
    }
    return out;
}

void Registry::reset() {
    for (auto& [_, c] : counters_) c->reset();
    for (auto& [_, g] : gauges_) g->reset();
    for (auto& [_, h] : histograms_) h->reset();
}

}  // namespace rafda::obs
