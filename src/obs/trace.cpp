#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/export.hpp"

namespace rafda::obs {

std::uint64_t Tracer::begin(std::string name, std::int32_t node) {
    if (!enabled_) return 0;
    Span s;
    s.id = next_id_++;
    s.parent = current_span();
    s.trace = s.parent ? spans_[open_.back()].trace : s.id;
    s.name = std::move(name);
    s.node = node;
    s.start_us = now();
    open_.push_back(spans_.size());
    spans_.push_back(std::move(s));
    return spans_.back().id;
}

std::uint64_t Tracer::begin_remote(std::string name, std::int32_t node,
                                   std::uint64_t trace, std::uint64_t parent) {
    if (!enabled_) return 0;
    Span s;
    s.id = next_id_++;
    s.parent = parent;
    s.trace = trace ? trace : s.id;
    s.name = std::move(name);
    s.node = node;
    s.start_us = now();
    open_.push_back(spans_.size());
    spans_.push_back(std::move(s));
    return spans_.back().id;
}

void Tracer::end(std::uint64_t id) {
    if (id == 0) return;
    // Close everything opened after (and including) `id`; exceptional
    // unwinds may leave children open and RAII destruction order closes
    // outer spans after inner ones anyway.
    while (!open_.empty()) {
        std::size_t idx = open_.back();
        open_.pop_back();
        spans_[idx].end_us = now();
        if (spans_[idx].id == id) break;
    }
}

void Tracer::note(const std::string& key, std::string value) {
    if (!enabled_ || open_.empty()) return;
    spans_[open_.back()].notes.emplace_back(key, std::move(value));
}

std::uint64_t Tracer::current_span() const noexcept {
    return open_.empty() ? 0 : spans_[open_.back()].id;
}

std::uint64_t Tracer::current_trace() const noexcept {
    return open_.empty() ? 0 : spans_[open_.back()].trace;
}

void Tracer::clear() {
    spans_.clear();
    open_.clear();
}

std::string Tracer::render_tree() const {
    // Children in begin order; a span whose parent was never recorded
    // (e.g. tracing enabled mid-flight) renders as a root.
    std::map<std::uint64_t, std::vector<std::size_t>> children;
    std::map<std::uint64_t, std::size_t> by_id;
    for (std::size_t i = 0; i < spans_.size(); ++i) by_id[spans_[i].id] = i;
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        if (spans_[i].parent != 0 && by_id.count(spans_[i].parent))
            children[spans_[i].parent].push_back(i);
        else
            roots.push_back(i);
    }

    std::ostringstream os;
    std::function<void(std::size_t, const std::string&, bool)> emit =
        [&](std::size_t idx, const std::string& prefix, bool last) {
            const Span& s = spans_[idx];
            os << prefix << (last ? "└─ " : "├─ ") << s.name;
            if (s.node >= 0) os << "  (node " << s.node << ")";
            os << "  [" << s.start_us << "us +" << s.duration_us() << "us]";
            for (const auto& [k, v] : s.notes) os << "  " << k << "=" << v;
            os << "\n";
            const auto it = children.find(s.id);
            if (it == children.end()) return;
            const std::string child_prefix = prefix + (last ? "   " : "│  ");
            for (std::size_t k = 0; k < it->second.size(); ++k)
                emit(it->second[k], child_prefix, k + 1 == it->second.size());
        };

    std::uint64_t last_trace = 0;
    for (std::size_t k = 0; k < roots.size(); ++k) {
        const Span& root = spans_[roots[k]];
        if (root.trace != last_trace || k == 0) {
            os << "trace " << root.trace << "\n";
            last_trace = root.trace;
        }
        emit(roots[k], "", k + 1 == roots.size() || spans_[roots[k + 1]].trace != root.trace);
    }
    return os.str();
}

std::string Tracer::to_json() const {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        const Span& s = spans_[i];
        if (i) os << ",";
        os << "{\"id\":" << s.id << ",\"parent\":" << s.parent
           << ",\"trace\":" << s.trace << ",\"name\":\"" << json_escape(s.name)
           << "\",\"node\":" << s.node << ",\"start_us\":" << s.start_us
           << ",\"end_us\":" << s.end_us;
        if (!s.notes.empty()) {
            os << ",\"notes\":{";
            for (std::size_t k = 0; k < s.notes.size(); ++k) {
                if (k) os << ",";
                os << "\"" << json_escape(s.notes[k].first) << "\":\""
                   << json_escape(s.notes[k].second) << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    os << "]";
    return os.str();
}

}  // namespace rafda::obs
