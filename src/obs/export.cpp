#include "obs/export.hpp"

#include <cstdio>
#include <sstream>

namespace rafda::obs {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

namespace {

void emit_sample_json(std::ostringstream& os, const Sample& s) {
    switch (s.kind) {
        case Sample::Kind::Counter: os << s.counter; break;
        case Sample::Kind::Gauge: os << s.gauge; break;
        case Sample::Kind::Histogram: {
            double mean = s.count ? static_cast<double>(s.sum) /
                                        static_cast<double>(s.count)
                                  : 0.0;
            os << "{\"count\":" << s.count << ",\"sum\":" << s.sum
               << ",\"min\":" << s.min << ",\"max\":" << s.max << ",\"mean\":" << mean;
            // Derived quantiles (bucket approximation, clamped to max) so
            // dashboards need no knowledge of the bucket layout...
            os << ",\"p50\":"
               << Histogram::quantile_from_buckets(s.buckets, s.count, s.max, 0.50)
               << ",\"p95\":"
               << Histogram::quantile_from_buckets(s.buckets, s.count, s.max, 0.95)
               << ",\"p99\":"
               << Histogram::quantile_from_buckets(s.buckets, s.count, s.max, 0.99);
            // ...and explicit inclusive upper bounds per non-empty bucket
            // (not just counts) so external tools can compute their own.
            // The overflow bucket's bound is 2^64-1.
            os << ",\"buckets\":[";
            bool first = true;
            for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
                if (s.buckets[i] == 0) continue;
                if (!first) os << ",";
                first = false;
                os << "{\"le\":" << Histogram::bucket_upper_bound(i)
                   << ",\"count\":" << s.buckets[i] << "}";
            }
            os << "]}";
            break;
        }
    }
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto& [name, s] : snapshot.samples) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(name) << "\":";
        emit_sample_json(os, s);
    }
    os << "}";
    return os.str();
}

std::string to_table(const Snapshot& snapshot, std::size_t max_rows) {
    std::size_t width = 0;
    for (const auto& [name, _] : snapshot.samples)
        if (name.size() > width) width = name.size();
    std::ostringstream os;
    std::size_t rows = 0;
    for (const auto& [name, s] : snapshot.samples) {
        if (max_rows && rows++ == max_rows) {
            // Samples are name-sorted, so the cut is stable across runs.
            os << "... " << (snapshot.samples.size() - max_rows)
               << " more sample(s) (pass --all to list every one)\n";
            break;
        }
        os << name << std::string(width - name.size() + 2, ' ');
        switch (s.kind) {
            case Sample::Kind::Counter: os << s.counter; break;
            case Sample::Kind::Gauge: os << s.gauge; break;
            case Sample::Kind::Histogram: {
                double mean = s.count ? static_cast<double>(s.sum) /
                                            static_cast<double>(s.count)
                                      : 0.0;
                os << "count=" << s.count << " sum=" << s.sum << " min=" << s.min
                   << " max=" << s.max << " mean=" << mean;
                break;
            }
        }
        os << "\n";
    }
    return os.str();
}

}  // namespace rafda::obs
