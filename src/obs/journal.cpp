#include "obs/journal.hpp"

#include <sstream>

#include "obs/export.hpp"

namespace rafda::obs {

const char* journal_kind_name(JournalEvent::Kind kind) {
    switch (kind) {
        case JournalEvent::Kind::RpcSend: return "send";
        case JournalEvent::Kind::RpcArrive: return "arrive";
        case JournalEvent::Kind::RpcDispatch: return "dispatch";
        case JournalEvent::Kind::RpcReply: return "reply";
        case JournalEvent::Kind::RpcDrop: return "drop";
        case JournalEvent::Kind::RpcRetry: return "retry";
        case JournalEvent::Kind::RpcTimeout: return "timeout";
        case JournalEvent::Kind::DedupHit: return "dedup";
        case JournalEvent::Kind::Breaker: return "breaker";
        case JournalEvent::Kind::FaultEdge: return "fault";
        case JournalEvent::Kind::Migrate: return "migrate";
        case JournalEvent::Kind::Adapt: return "adapt";
        case JournalEvent::Kind::Recover: return "recover";
    }
    return "?";
}

void Journal::set_enabled(bool on) {
    enabled_ = on;
    if (enabled_ && ring_.size() != capacity_) ring_.resize(capacity_);
}

void Journal::set_capacity(std::size_t n) {
    capacity_ = n ? n : 1;
    ring_.clear();
    if (enabled_) ring_.resize(capacity_);
    head_ = size_ = 0;
    total_ = 0;
}

void Journal::record(JournalEvent::Kind kind, std::uint64_t t_us, std::int32_t node,
                     std::int32_t peer, std::uint64_t a, std::uint64_t b,
                     std::string detail) {
    if (!enabled_) return;
    JournalEvent& slot = ring_[head_];
    slot.kind = kind;
    slot.seq = next_seq_++;
    slot.t_us = t_us;
    slot.node = node;
    slot.peer = peer;
    slot.a = a;
    slot.b = b;
    // Bound per-slot memory: a slot's string capacity persists for the
    // ring's lifetime (reuse pool), so an unbounded detail would pin
    // arbitrary heap per slot at scale.  kMaxDetail covers every emitter's
    // legitimate payload (protocol names, methods, "request"/"reply").
    if (detail.size() > kMaxDetail) {
        detail.resize(kMaxDetail);
        detail += "...";
    }
    slot.detail = std::move(detail);
    if (slot.detail.capacity() > kMaxDetail + 16) slot.detail.shrink_to_fit();
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) ++size_;
    ++total_;
}

void Journal::rebase(std::uint64_t epoch_us) {
    // Slots keep their string capacity (the ring is a reuse pool, not an
    // allocation source); only the logical contents are dropped.
    head_ = size_ = 0;
    total_ = 0;
    epoch_us_ = epoch_us;
}

void Journal::visit(const std::function<void(const JournalEvent&)>& fn) const {
    if (!size_) return;
    const std::size_t first = (head_ + capacity_ - size_) % capacity_;
    for (std::size_t k = 0; k < size_; ++k) fn(ring_[(first + k) % capacity_]);
}

std::string Journal::to_json() const {
    std::ostringstream os;
    os << "{\"epoch_us\":" << epoch_us_ << ",\"capacity\":" << capacity_
       << ",\"total\":" << total_ << ",\"overwritten\":" << overwritten()
       << ",\"events\":[";
    bool first = true;
    visit([&](const JournalEvent& e) {
        if (!first) os << ",";
        first = false;
        os << "{\"seq\":" << e.seq << ",\"t_us\":" << e.t_us << ",\"kind\":\""
           << journal_kind_name(e.kind) << "\",\"node\":" << e.node
           << ",\"peer\":" << e.peer << ",\"a\":" << e.a << ",\"b\":" << e.b;
        if (!e.detail.empty()) os << ",\"detail\":\"" << json_escape(e.detail) << "\"";
        os << "}";
    });
    os << "]}";
    return os.str();
}

}  // namespace rafda::obs
