#include "vm/prelude.hpp"

#include "model/assembler.hpp"

namespace rafda::vm {

namespace {

constexpr const char* kPreludeRir = R"(
class Sys {
  native static method print (S)V
  native static method println (S)V
  native static method time ()J
}

special class Throwable {
  field msg S
  ctor (S)V {
    load 0
    load 1
    putfield Throwable.msg S
    return
  }
  method getMsg ()S {
    load 0
    getfield Throwable.msg S
    returnvalue
  }
}
)";

}  // namespace

void install_prelude(model::ClassPool& pool) {
    for (model::ClassFile& cf : model::assemble(kPreludeRir)) {
        if (!pool.contains(cf.name)) pool.add(std::move(cf));
    }
}

void bind_prelude_natives(Interpreter& interp) {
    interp.register_native(kSysClass, "print", "(S)V",
                           [](Interpreter& vm, const Value&, std::vector<Value> args) {
                               vm.append_output(args.at(0).as_str());
                               return Value::null();
                           });
    interp.register_native(kSysClass, "println", "(S)V",
                           [](Interpreter& vm, const Value&, std::vector<Value> args) {
                               vm.append_output(args.at(0).as_str() + "\n");
                               return Value::null();
                           });
    interp.register_native(kSysClass, "time", "()J",
                           [](Interpreter& vm, const Value&, std::vector<Value>) {
                               return Value::of_long(vm.logical_time());
                           });
}

}  // namespace rafda::vm
