// Object heap of one address space.
//
// Objects are never collected: the experiments run bounded workloads and
// an arena keeps object ids stable, which the distributed runtime relies
// on when it exports ids to other nodes.
#pragma once

#include <deque>
#include <vector>

#include "model/classfile.hpp"
#include "vm/value.hpp"

namespace rafda::vm {

struct Object {
    /// Null for arrays (is_array set); the class otherwise.
    const model::ClassFile* cls = nullptr;
    /// Instance fields (per ClassPool::layout_of), or the elements for
    /// arrays.
    std::vector<Value> fields;
    bool is_array = false;
    model::TypeDesc elem_type;  // arrays only
};

class Heap {
public:
    /// Allocates an instance of `cls` with `field_count` zeroed slots.
    ObjId alloc(const model::ClassFile& cls, std::size_t field_count);

    /// Allocates an array of `length` elements of `elem`, default-filled.
    ObjId alloc_array(const model::TypeDesc& elem, std::size_t length);

    /// Throws VmError for the null id (0) or out-of-range ids.  Inline —
    /// this sits under every field access and virtual dispatch.
    Object& get(ObjId id) {
        if (id == 0 || id > objects_.size()) throw_bad_id(id);
        return objects_[id - 1];
    }
    const Object& get(ObjId id) const {
        if (id == 0 || id > objects_.size()) throw_bad_id(id);
        return objects_[id - 1];
    }

    /// Replaces the object behind `id` in place: new class, new fields —
    /// object identity (the id) is preserved, so every reference that
    /// pointed at the old object now sees the new one.  This implements
    /// the paper's Figure 1 substitution: a local instance is swapped for
    /// a proxy (or vice versa) without touching reference holders.
    void transmute(ObjId id, const model::ClassFile& cls, std::vector<Value> fields);

    std::size_t size() const noexcept { return objects_.size(); }

    /// Discards every object (a node restart, DESIGN.md §20).  Because the
    /// arena allocates ids as index+1, a replay that re-allocates in the
    /// original order reproduces the original ids exactly.
    void clear() noexcept { objects_.clear(); }

private:
    [[noreturn]] void throw_bad_id(ObjId id) const;

    std::deque<Object> objects_;  // deque: stable addresses, ids are index+1
};

}  // namespace rafda::vm
