// Runtime values of the RIR virtual machine.
//
// A Value is null, a primitive (bool/int/long/double/string) or a reference
// into a heap.  References are plain object ids; they are only meaningful
// relative to the heap of the address space (vm::Interpreter) that created
// them — exactly the property that makes cross-address-space references
// need proxies, which is the problem the paper solves.
//
// Storage is a hand-rolled tagged union rather than std::variant: the
// interpreter moves Values on every push/pop, and libstdc++'s variant
// routes each copy/move of a non-trivially-copyable variant through an
// indirect visitation call.  Here the non-string cases are one tag byte
// plus eight payload bytes, inlined at the call site.
#pragma once

#include <cstdint>
#include <new>
#include <string>
#include <utility>

#include "model/type.hpp"

namespace rafda::vm {

/// Heap object id; valid ids start at 1.
using ObjId = std::uint64_t;

/// Distinguishes references from other integral values (kept for
/// callers that name the type; Value stores the id directly).
struct Ref {
    ObjId id = 0;
    bool operator==(const Ref&) const = default;
};

struct NullValue {
    bool operator==(const NullValue&) const = default;
};

class Value {
public:
    Value() noexcept : tag_(Tag::Null), j_(0) {}
    static Value null() { return Value(); }
    static Value of_bool(bool b) {
        Value v;
        v.tag_ = Tag::Bool;
        v.b_ = b;
        return v;
    }
    static Value of_int(std::int32_t i) {
        Value v;
        v.tag_ = Tag::Int;
        v.i_ = i;
        return v;
    }
    static Value of_long(std::int64_t j) {
        Value v;
        v.tag_ = Tag::Long;
        v.j_ = j;
        return v;
    }
    static Value of_double(double d) {
        Value v;
        v.tag_ = Tag::Double;
        v.d_ = d;
        return v;
    }
    static Value of_str(std::string s) {
        Value v;
        v.tag_ = Tag::Str;
        new (&v.s_) std::string(std::move(s));
        return v;
    }
    static Value of_ref(ObjId id) {
        Value v;
        v.tag_ = Tag::Ref;
        v.r_ = id;
        return v;
    }

    Value(const Value& o) { construct_from(o); }
    Value(Value&& o) noexcept { construct_from(std::move(o)); }
    Value& operator=(const Value& o) {
        if (this != &o) {
            if (tag_ == Tag::Str && o.tag_ == Tag::Str) {
                s_ = o.s_;
            } else {
                destroy();
                construct_from(o);
            }
        }
        return *this;
    }
    Value& operator=(Value&& o) noexcept {
        if (this != &o) {
            if (tag_ == Tag::Str && o.tag_ == Tag::Str) {
                s_ = std::move(o.s_);
            } else {
                destroy();
                construct_from(std::move(o));
            }
        }
        return *this;
    }
    ~Value() { destroy(); }

    bool is_null() const { return tag_ == Tag::Null; }
    bool is_bool() const { return tag_ == Tag::Bool; }
    bool is_int() const { return tag_ == Tag::Int; }
    bool is_long() const { return tag_ == Tag::Long; }
    bool is_double() const { return tag_ == Tag::Double; }
    bool is_str() const { return tag_ == Tag::Str; }
    bool is_ref() const { return tag_ == Tag::Ref; }
    bool is_numeric() const { return is_int() || is_long() || is_double(); }

    /// Accessors throw VmError when the tag does not match.
    bool as_bool() const {
        if (tag_ != Tag::Bool) throw_bad_tag("bool");
        return b_;
    }
    std::int32_t as_int() const {
        if (tag_ != Tag::Int) throw_bad_tag("int");
        return i_;
    }
    std::int64_t as_long() const {
        if (tag_ != Tag::Long) throw_bad_tag("long");
        return j_;
    }
    double as_double() const {
        if (tag_ != Tag::Double) throw_bad_tag("double");
        return d_;
    }
    const std::string& as_str() const {
        if (tag_ != Tag::Str) throw_bad_tag("string");
        return s_;
    }
    ObjId as_ref() const {
        if (tag_ != Tag::Ref) throw_bad_tag("reference");
        return r_;
    }

    /// Widens any numeric to the named representation for arithmetic.
    std::int64_t widen_integral() const {
        if (tag_ == Tag::Int) return i_;
        if (tag_ == Tag::Long) return j_;
        throw_bad_tag("integral");
    }
    double widen_double() const {
        if (tag_ == Tag::Int) return i_;
        if (tag_ == Tag::Long) return static_cast<double>(j_);
        if (tag_ == Tag::Double) return d_;
        throw_bad_tag("numeric");
    }

    /// Kind of this value in descriptor terms; Ref for references,
    /// Void never occurs.
    model::Kind kind() const;

    /// Human-readable rendering (used by Concat and by guest printing).
    std::string display() const;

    /// Structural equality: numerics compare by value within the same kind,
    /// strings by content, refs by identity.
    bool operator==(const Value& other) const {
        if (tag_ != other.tag_) return false;
        switch (tag_) {
            case Tag::Null: return true;
            case Tag::Bool: return b_ == other.b_;
            case Tag::Int: return i_ == other.i_;
            case Tag::Long: return j_ == other.j_;
            case Tag::Double: return d_ == other.d_;
            case Tag::Str: return s_ == other.s_;
            case Tag::Ref: return r_ == other.r_;
        }
        return false;
    }

private:
    enum class Tag : std::uint8_t { Null, Bool, Int, Long, Double, Str, Ref };

    [[noreturn]] void throw_bad_tag(const char* want) const;

    void construct_from(const Value& o) {
        tag_ = o.tag_;
        if (tag_ == Tag::Str)
            new (&s_) std::string(o.s_);
        else
            j_ = o.j_;  // any 8-byte scalar; GCC/Clang define union punning
    }
    void construct_from(Value&& o) noexcept {
        tag_ = o.tag_;
        if (tag_ == Tag::Str)
            new (&s_) std::string(std::move(o.s_));
        else
            j_ = o.j_;
    }
    void destroy() noexcept {
        if (tag_ == Tag::Str) s_.~basic_string();
    }

    Tag tag_;
    union {
        bool b_;
        std::int32_t i_;
        std::int64_t j_;
        double d_;
        ObjId r_;
        std::string s_;
    };
};

/// The default value a field of type `t` starts with (JVM-style zeroing).
Value default_value(const model::TypeDesc& t);

}  // namespace rafda::vm
