// Runtime values of the RIR virtual machine.
//
// A Value is null, a primitive (bool/int/long/double/string) or a reference
// into a heap.  References are plain object ids; they are only meaningful
// relative to the heap of the address space (vm::Interpreter) that created
// them — exactly the property that makes cross-address-space references
// need proxies, which is the problem the paper solves.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "model/type.hpp"

namespace rafda::vm {

/// Heap object id; valid ids start at 1.
using ObjId = std::uint64_t;

/// Distinguishes references from other integral values inside the variant.
struct Ref {
    ObjId id = 0;
    bool operator==(const Ref&) const = default;
};

struct NullValue {
    bool operator==(const NullValue&) const = default;
};

class Value {
public:
    Value() : v_(NullValue{}) {}
    static Value null() { return Value(); }
    static Value of_bool(bool b) { return Value(Storage(b)); }
    static Value of_int(std::int32_t i) { return Value(Storage(i)); }
    static Value of_long(std::int64_t j) { return Value(Storage(j)); }
    static Value of_double(double d) { return Value(Storage(d)); }
    static Value of_str(std::string s) { return Value(Storage(std::move(s))); }
    static Value of_ref(ObjId id) { return Value(Storage(Ref{id})); }

    bool is_null() const { return std::holds_alternative<NullValue>(v_); }
    bool is_bool() const { return std::holds_alternative<bool>(v_); }
    bool is_int() const { return std::holds_alternative<std::int32_t>(v_); }
    bool is_long() const { return std::holds_alternative<std::int64_t>(v_); }
    bool is_double() const { return std::holds_alternative<double>(v_); }
    bool is_str() const { return std::holds_alternative<std::string>(v_); }
    bool is_ref() const { return std::holds_alternative<Ref>(v_); }
    bool is_numeric() const { return is_int() || is_long() || is_double(); }

    /// Accessors throw VmError when the tag does not match.
    bool as_bool() const;
    std::int32_t as_int() const;
    std::int64_t as_long() const;
    double as_double() const;
    const std::string& as_str() const;
    ObjId as_ref() const;

    /// Widens any numeric to the named representation for arithmetic.
    std::int64_t widen_integral() const;
    double widen_double() const;

    /// Kind of this value in descriptor terms; Ref for references,
    /// Void never occurs.
    model::Kind kind() const;

    /// Human-readable rendering (used by Concat and by guest printing).
    std::string display() const;

    /// Structural equality: numerics compare by value within the same kind,
    /// strings by content, refs by identity.
    bool operator==(const Value& other) const = default;

private:
    using Storage =
        std::variant<NullValue, bool, std::int32_t, std::int64_t, double, std::string, Ref>;
    explicit Value(Storage v) : v_(std::move(v)) {}

    Storage v_;
};

/// The default value a field of type `t` starts with (JVM-style zeroing).
Value default_value(const model::TypeDesc& t);

}  // namespace rafda::vm
