// Mutation observation hook for the durability layer (DESIGN.md §20).
//
// The interpreter reports every heap and static-storage mutation through
// this interface so an embedder can maintain a write-ahead log.  The hook
// is a raw pointer checked with a single branch on each mutation path:
// with no observer installed (the default) the VM's behaviour and hot
// paths are unchanged.  Observers must not call back into guest execution
// — they see mutations mid-bytecode, when frames are live.
#pragma once

#include <cstddef>
#include <string>

#include "vm/value.hpp"

namespace rafda::vm {

class MutationObserver {
public:
    virtual ~MutationObserver() = default;

    /// A new instance of `cls` was allocated as `id` (fields zeroed to
    /// their layout defaults; writes follow as on_field_put events).
    virtual void on_alloc(ObjId id, const std::string& cls) = 0;
    /// A new array of `length` elements of `elem_desc` was allocated.
    virtual void on_alloc_array(ObjId id, const std::string& elem_desc,
                                std::size_t length) = 0;
    /// `fields[slot]` of object `id` is about to become `v`.
    virtual void on_field_put(ObjId id, std::size_t slot, const Value& v) = 0;
    /// Element `index` of array `id` is about to become `v`.
    virtual void on_array_put(ObjId id, std::size_t index, const Value& v) = 0;
    /// Static field `cls.field` is about to become `v`.
    virtual void on_static_put(const std::string& cls, const std::string& field,
                               const Value& v) = 0;
    /// `<clinit>` of `cls` completed (its own mutations were reported
    /// individually before this event).
    virtual void on_class_init(const std::string& cls) = 0;
};

}  // namespace rafda::vm
