#include "vm/heap.hpp"

#include "support/error.hpp"

namespace rafda::vm {

ObjId Heap::alloc(const model::ClassFile& cls, std::size_t field_count) {
    Object obj;
    obj.cls = &cls;
    obj.fields.resize(field_count);
    objects_.push_back(std::move(obj));
    return objects_.size();  // ids are 1-based
}

ObjId Heap::alloc_array(const model::TypeDesc& elem, std::size_t length) {
    Object obj;
    obj.is_array = true;
    obj.elem_type = elem;
    obj.fields.assign(length, default_value(elem));
    objects_.push_back(std::move(obj));
    return objects_.size();
}

void Heap::throw_bad_id(ObjId id) const {
    if (id == 0) throw VmError("null dereference");
    throw VmError("dangling object id");
}

void Heap::transmute(ObjId id, const model::ClassFile& cls, std::vector<Value> fields) {
    Object& obj = get(id);
    obj.cls = &cls;
    obj.fields = std::move(fields);
}

}  // namespace rafda::vm
