#include "vm/interp.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace rafda::vm {

using model::ClassFile;
using model::Instruction;
using model::Kind;
using model::Method;
using model::MethodSig;
using model::Op;

namespace {
constexpr int kMaxCallDepth = 2000;

std::string native_key(const std::string& owner, const std::string& name,
                       const std::string& desc) {
    return owner + "#" + name + desc;
}
}  // namespace

Interpreter::Interpreter(const model::ClassPool& pool) : pool_(&pool) {}

Interpreter::~Interpreter() {
    if (metrics_) metrics_->remove_probes_with_prefix(metrics_prefix_ + ".");
}

void Interpreter::attach_metrics(obs::Registry* registry, std::string prefix) {
    if (metrics_) metrics_->remove_probes_with_prefix(metrics_prefix_ + ".");
    metrics_ = registry;
    metrics_prefix_ = std::move(prefix);
    method_hist_.clear();
    if (!metrics_) {
        profile_methods_ = false;
        return;
    }
    auto probe = [this](const std::string& name, std::uint64_t Counters::* field) {
        metrics_->register_probe(metrics_prefix_ + name, [this, field] {
            return static_cast<std::int64_t>(counters_.*field);
        });
    };
    probe(".instructions", &Counters::instructions);
    probe(".native_calls", &Counters::native_calls);
    probe(".allocations", &Counters::allocations);
    metrics_->register_probe(metrics_prefix_ + ".invokes", [this] {
        return static_cast<std::int64_t>(counters_.total_invokes());
    });
    metrics_->register_probe(metrics_prefix_ + ".field_accesses", [this] {
        return static_cast<std::int64_t>(counters_.field_reads + counters_.field_writes);
    });
}

void Interpreter::record_method_profile(const ClassFile& cls, const Method& m,
                                        std::uint64_t instructions) {
    auto it = method_hist_.find(&m);
    if (it == method_hist_.end()) {
        obs::Histogram& h = metrics_->histogram(metrics_prefix_ + ".method_instr." +
                                                cls.name + "." + m.name);
        it = method_hist_.emplace(&m, &h).first;
    }
    it->second->record(instructions);
}

GuestException Interpreter::make_guest_exception(ObjId obj) {
    const ClassFile& cls = class_of(obj);
    std::string msg;
    const model::Layout& layout = pool_->layout_of(cls.name);
    auto mit = layout.index_by_name.find("msg");
    if (mit != layout.index_by_name.end())
        msg = heap_.get(obj).fields[static_cast<std::size_t>(mit->second)].display();
    return GuestException(cls.name, msg, obj);
}

void Interpreter::throw_guest(Value thrown) {
    if (!thrown.is_ref()) throw VmError("throw_guest of non-reference");
    throw GuestThrow{std::move(thrown)};
}

Value Interpreter::at_api_boundary(const std::function<Value()>& body) {
    try {
        return body();
    } catch (GuestThrow& gt) {
        // Nested inside guest execution (a native called back into the
        // API): let the guest unwinding continue so outer guest handlers
        // get a chance.  Only the outermost entry converts.
        if (call_depth_ > 0) throw;
        throw make_guest_exception(gt.thrown.as_ref());
    }
}

void Interpreter::register_native(const std::string& owner, const std::string& name,
                                  const std::string& desc, NativeFn fn) {
    natives_[native_key(owner, name, desc)] = std::move(fn);
}

void Interpreter::register_class_native(const std::string& owner, ClassNativeFn fn) {
    class_natives_[owner] = std::move(fn);
}

ObjId Interpreter::allocate(const std::string& class_name) {
    const ClassFile& cls = pool_->get(class_name);
    const model::Layout& layout = pool_->layout_of(class_name);
    ObjId id = heap_.alloc(cls, static_cast<std::size_t>(layout.size()));
    Object& obj = heap_.get(id);
    for (int i = 0; i < layout.size(); ++i)
        obj.fields[static_cast<std::size_t>(i)] = default_value(layout.slots[i].type);
    ++counters_.allocations;
    return id;
}

Value Interpreter::construct(const std::string& class_name, const std::string& ctor_desc,
                             std::vector<Value> args) {
    return at_api_boundary([&] { return construct_impl(class_name, ctor_desc, std::move(args)); });
}

Value Interpreter::construct_impl(const std::string& class_name, const std::string& ctor_desc,
                                  std::vector<Value> args) {
    ensure_initialized(class_name);
    ObjId id = allocate(class_name);
    const ClassFile& cls = pool_->get(class_name);
    const Method* ctor = cls.find_method("<init>", ctor_desc);
    if (!ctor) throw VmError("no constructor " + class_name + ".<init>" + ctor_desc);
    std::vector<Value> locals;
    locals.reserve(args.size() + 1);
    locals.push_back(Value::of_ref(id));
    for (Value& a : args) locals.push_back(std::move(a));
    invoke(cls, *ctor, std::move(locals));
    return Value::of_ref(id);
}

Value Interpreter::call_static(const std::string& owner, const std::string& name,
                               const std::string& desc, std::vector<Value> args) {
    return at_api_boundary([&] { return call_static_impl(owner, name, desc, std::move(args)); });
}

Value Interpreter::call_static_impl(const std::string& owner, const std::string& name,
                                    const std::string& desc, std::vector<Value> args) {
    ensure_initialized(owner);
    const Method* m = pool_->resolve_static(owner, name, desc);
    if (!m) throw VmError("unresolved static method " + owner + "." + name + desc);
    ++counters_.invokes_static;
    return invoke(pool_->get(owner), *m, std::move(args));
}

Value Interpreter::call_virtual(const Value& receiver, const std::string& name,
                                const std::string& desc, std::vector<Value> args) {
    return at_api_boundary(
        [&] { return call_virtual_impl(receiver, name, desc, std::move(args)); });
}

Value Interpreter::call_virtual_impl(const Value& receiver, const std::string& name,
                                     const std::string& desc, std::vector<Value> args) {
    const ClassFile& dyn = class_of(receiver.as_ref());
    const Method& m = resolve_virtual_cached(dyn.name, name, desc);
    ++counters_.invokes_virtual;
    std::vector<Value> locals;
    locals.reserve(args.size() + 1);
    locals.push_back(receiver);
    for (Value& a : args) locals.push_back(std::move(a));
    return invoke(dyn, m, std::move(locals));
}

Value Interpreter::get_static_field(const std::string& owner, const std::string& field) {
    const ClassFile* declaring = pool_->resolve_static_field(owner, field);
    if (!declaring) throw VmError("no static field " + owner + "." + field);
    at_api_boundary([&] {
        ensure_initialized(declaring->name);
        return Value::null();
    });
    ++counters_.static_reads;
    const model::Layout& layout = pool_->static_layout_of(declaring->name);
    return statics_of(declaring->name)[static_cast<std::size_t>(layout.index_of(field))];
}

void Interpreter::set_static_field(const std::string& owner, const std::string& field,
                                   Value v) {
    const ClassFile* declaring = pool_->resolve_static_field(owner, field);
    if (!declaring) throw VmError("no static field " + owner + "." + field);
    at_api_boundary([&] {
        ensure_initialized(declaring->name);
        return Value::null();
    });
    ++counters_.static_writes;
    const model::Layout& layout = pool_->static_layout_of(declaring->name);
    statics_of(declaring->name)[static_cast<std::size_t>(layout.index_of(field))] =
        std::move(v);
}

Value Interpreter::get_field(ObjId obj, const std::string& field) {
    Object& o = heap_.get(obj);
    const model::Layout& layout = pool_->layout_of(o.cls->name);
    ++counters_.field_reads;
    return o.fields[static_cast<std::size_t>(layout.index_of(field))];
}

void Interpreter::set_field(ObjId obj, const std::string& field, Value v) {
    Object& o = heap_.get(obj);
    const model::Layout& layout = pool_->layout_of(o.cls->name);
    ++counters_.field_writes;
    o.fields[static_cast<std::size_t>(layout.index_of(field))] = std::move(v);
}

const ClassFile& Interpreter::class_of(ObjId obj) const {
    const Object& o = heap_.get(obj);
    if (o.is_array) throw VmError("class_of on an array");
    return *o.cls;
}

void Interpreter::ensure_initialized(const std::string& class_name) {
    if (initialized_.count(class_name) || initializing_.count(class_name)) return;
    const ClassFile& cls = pool_->get(class_name);
    initializing_.insert(class_name);
    // Initialise the superclass first, JVM-style.
    if (!cls.super_name.empty()) ensure_initialized(cls.super_name);
    if (const Method* clinit = cls.find_method("<clinit>", "()V")) {
        invoke(cls, *clinit, {});
    }
    initializing_.erase(class_name);
    initialized_.insert(class_name);
}

std::vector<Value>& Interpreter::statics_of(const std::string& class_name) {
    auto it = statics_.find(class_name);
    if (it != statics_.end()) return it->second;
    const model::Layout& layout = pool_->static_layout_of(class_name);
    std::vector<Value> slots;
    slots.reserve(static_cast<std::size_t>(layout.size()));
    for (const model::FieldSlot& s : layout.slots) slots.push_back(default_value(s.type));
    return statics_.emplace(class_name, std::move(slots)).first->second;
}

std::pair<int, bool> Interpreter::sig_info(const std::string& desc) {
    auto it = sig_cache_.find(desc);
    if (it != sig_cache_.end()) return it->second;
    MethodSig sig = MethodSig::parse(desc);
    auto info = std::make_pair(static_cast<int>(sig.params().size()),
                               sig.ret().is_void());
    sig_cache_.emplace(desc, info);
    return info;
}

const Method& Interpreter::resolve_virtual_cached(const std::string& dynamic,
                                                  const std::string& name,
                                                  const std::string& desc) {
    std::string key = dynamic;
    key += '#';
    key += name;
    key += desc;
    auto it = vcache_.find(key);
    if (it != vcache_.end()) return *it->second;
    const Method* m = pool_->resolve_virtual(dynamic, name, desc);
    if (!m) throw VmError("unresolved virtual method " + dynamic + "." + name + desc);
    vcache_.emplace(std::move(key), m);
    return *m;
}

Value Interpreter::invoke_native(const ClassFile& cls, const Method& m,
                                 const Value& receiver, std::vector<Value> args) {
    ++counters_.native_calls;
    auto it = natives_.find(native_key(cls.name, m.name, m.descriptor()));
    if (it != natives_.end()) return it->second(*this, receiver, std::move(args));
    auto cit = class_natives_.find(cls.name);
    if (cit != class_natives_.end()) return cit->second(*this, m, receiver, std::move(args));
    throw VmError("unbound native method " + cls.name + "." + m.name + m.descriptor());
}

Value Interpreter::invoke(const ClassFile& cls, const Method& m,
                          std::vector<Value> locals_with_receiver) {
    if (m.is_native) {
        Value receiver = m.is_static ? Value::null() : locals_with_receiver.front();
        std::vector<Value> args(locals_with_receiver.begin() + (m.is_static ? 0 : 1),
                                locals_with_receiver.end());
        // The declaring class may differ from `cls` for inherited natives;
        // resolve against the class that actually declares the method.
        const ClassFile* declaring = &cls;
        for (const ClassFile* cur = &cls; cur;
             cur = cur->super_name.empty() ? nullptr : pool_->find(cur->super_name)) {
            if (cur->find_method(m.name, m.descriptor()) == &m) {
                declaring = cur;
                break;
            }
        }
        return invoke_native(*declaring, m, receiver, std::move(args));
    }
    if (m.is_abstract)
        throw VmError("invoke of abstract method " + cls.name + "." + m.name);
    if (++call_depth_ > kMaxCallDepth) {
        --call_depth_;
        throw VmError("guest call stack overflow in " + cls.name + "." + m.name);
    }
    locals_with_receiver.resize(static_cast<std::size_t>(m.code.max_locals));
    const std::uint64_t instr_before = profile_methods_ ? counters_.instructions : 0;
    try {
        Value result = execute(cls, m, std::move(locals_with_receiver));
        --call_depth_;
        if (profile_methods_)
            record_method_profile(cls, m, counters_.instructions - instr_before);
        return result;
    } catch (...) {
        --call_depth_;
        throw;
    }
}

Value Interpreter::arith(Op op, const Value& a, const Value& b) {
    // Result kind: the wider of the two operand kinds (int < long < double).
    auto rank = [](const Value& v) {
        return v.is_double() ? 2 : v.is_long() ? 1 : 0;
    };
    if (!a.is_numeric() || !b.is_numeric())
        throw VmError(std::string("arithmetic on non-numeric values: ") + a.display() + ", " +
                      b.display());
    int r = std::max(rank(a), rank(b));
    if (r == 2) {
        double x = a.widen_double(), y = b.widen_double();
        switch (op) {
            case Op::Add: return Value::of_double(x + y);
            case Op::Sub: return Value::of_double(x - y);
            case Op::Mul: return Value::of_double(x * y);
            case Op::Div: return Value::of_double(x / y);
            case Op::Rem: return Value::of_double(std::fmod(x, y));
            default: break;
        }
    } else {
        std::int64_t x = a.widen_integral(), y = b.widen_integral();
        if ((op == Op::Div || op == Op::Rem) && y == 0)
            throw VmError("integer division by zero");
        // Two's-complement wraparound (JVM semantics): compute through
        // unsigned so overflow stays defined, and pin the one remaining
        // overflowing division, INT64_MIN / -1.
        const std::uint64_t ux = static_cast<std::uint64_t>(x);
        const std::uint64_t uy = static_cast<std::uint64_t>(y);
        constexpr std::int64_t kMinInt64 = std::numeric_limits<std::int64_t>::min();
        std::int64_t z = 0;
        switch (op) {
            case Op::Add: z = static_cast<std::int64_t>(ux + uy); break;
            case Op::Sub: z = static_cast<std::int64_t>(ux - uy); break;
            case Op::Mul: z = static_cast<std::int64_t>(ux * uy); break;
            case Op::Div: z = (x == kMinInt64 && y == -1) ? x : x / y; break;
            case Op::Rem: z = (x == kMinInt64 && y == -1) ? 0 : x % y; break;
            default: break;
        }
        if (r == 1) return Value::of_long(z);
        return Value::of_int(static_cast<std::int32_t>(z));
    }
    throw VmError("bad arithmetic op");
}

Value Interpreter::compare(Op op, const Value& a, const Value& b) {
    // Equality on refs/null/bools/strings; ordering only on numerics and
    // strings.
    auto as_ordering_operands = [&]() -> std::pair<double, double> {
        return {a.widen_double(), b.widen_double()};
    };
    bool result = false;
    switch (op) {
        case Op::CmpEq:
        case Op::CmpNe: {
            bool eq;
            if (a.is_numeric() && b.is_numeric()) {
                eq = a.widen_double() == b.widen_double();
            } else if ((a.is_null() || a.is_ref()) && (b.is_null() || b.is_ref())) {
                eq = (a.is_null() && b.is_null()) ||
                     (a.is_ref() && b.is_ref() && a.as_ref() == b.as_ref());
            } else {
                eq = a == b;
            }
            result = (op == Op::CmpEq) ? eq : !eq;
            break;
        }
        case Op::CmpLt:
        case Op::CmpLe:
        case Op::CmpGt:
        case Op::CmpGe: {
            if (a.is_str() && b.is_str()) {
                int c = a.as_str().compare(b.as_str());
                result = (op == Op::CmpLt && c < 0) || (op == Op::CmpLe && c <= 0) ||
                         (op == Op::CmpGt && c > 0) || (op == Op::CmpGe && c >= 0);
            } else {
                auto [x, y] = as_ordering_operands();
                result = (op == Op::CmpLt && x < y) || (op == Op::CmpLe && x <= y) ||
                         (op == Op::CmpGt && x > y) || (op == Op::CmpGe && x >= y);
            }
            break;
        }
        default:
            throw VmError("bad comparison op");
    }
    return Value::of_bool(result);
}

Value Interpreter::execute(const ClassFile& cls, const Method& m,
                           std::vector<Value> locals) {
    const std::vector<Instruction>& code = m.code.instrs;
    std::vector<Value> stack;
    stack.reserve(8);
    int pc = 0;

    auto pop = [&] {
        Value v = std::move(stack.back());
        stack.pop_back();
        return v;
    };

    while (true) {
        if (pc < 0 || pc >= static_cast<int>(code.size()))
            throw VmError("pc out of range in " + cls.name + "." + m.name);
        const Instruction& i = code[pc];
        ++counters_.instructions;
        try {
            switch (i.op) {
                case Op::Nop:
                    break;
                case Op::Const: {
                    if (std::holds_alternative<model::Null>(i.k)) stack.push_back(Value::null());
                    else if (const bool* b = std::get_if<bool>(&i.k))
                        stack.push_back(Value::of_bool(*b));
                    else if (const std::int32_t* v32 = std::get_if<std::int32_t>(&i.k))
                        stack.push_back(Value::of_int(*v32));
                    else if (const std::int64_t* v64 = std::get_if<std::int64_t>(&i.k))
                        stack.push_back(Value::of_long(*v64));
                    else if (const double* d = std::get_if<double>(&i.k))
                        stack.push_back(Value::of_double(*d));
                    else
                        stack.push_back(Value::of_str(std::get<std::string>(i.k)));
                    break;
                }
                case Op::Load:
                    stack.push_back(locals[static_cast<std::size_t>(i.a)]);
                    break;
                case Op::Store:
                    locals[static_cast<std::size_t>(i.a)] = pop();
                    break;
                case Op::Dup:
                    stack.push_back(stack.back());
                    break;
                case Op::Pop:
                    stack.pop_back();
                    break;
                case Op::Swap:
                    std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
                    break;
                case Op::Add:
                case Op::Sub:
                case Op::Mul:
                case Op::Div:
                case Op::Rem: {
                    Value b = pop(), a = pop();
                    // String + string concatenates, mirroring Java's +.
                    if (i.op == Op::Add && (a.is_str() || b.is_str()))
                        stack.push_back(Value::of_str(a.display() + b.display()));
                    else
                        stack.push_back(arith(i.op, a, b));
                    break;
                }
                case Op::Neg: {
                    Value a = pop();
                    if (a.is_int()) stack.push_back(Value::of_int(-a.as_int()));
                    else if (a.is_long()) stack.push_back(Value::of_long(-a.as_long()));
                    else stack.push_back(Value::of_double(-a.as_double()));
                    break;
                }
                case Op::CmpEq:
                case Op::CmpNe:
                case Op::CmpLt:
                case Op::CmpLe:
                case Op::CmpGt:
                case Op::CmpGe: {
                    Value b = pop(), a = pop();
                    stack.push_back(compare(i.op, a, b));
                    break;
                }
                case Op::And: {
                    Value b = pop(), a = pop();
                    stack.push_back(Value::of_bool(a.as_bool() && b.as_bool()));
                    break;
                }
                case Op::Or: {
                    Value b = pop(), a = pop();
                    stack.push_back(Value::of_bool(a.as_bool() || b.as_bool()));
                    break;
                }
                case Op::Not: {
                    Value a = pop();
                    stack.push_back(Value::of_bool(!a.as_bool()));
                    break;
                }
                case Op::Conv: {
                    Value a = pop();
                    switch (static_cast<Kind>(i.a)) {
                        case Kind::Int:
                            stack.push_back(
                                Value::of_int(static_cast<std::int32_t>(a.widen_double())));
                            break;
                        case Kind::Long:
                            stack.push_back(
                                Value::of_long(static_cast<std::int64_t>(a.widen_double())));
                            break;
                        case Kind::Double:
                            stack.push_back(Value::of_double(a.widen_double()));
                            break;
                        default:
                            throw VmError("bad conv target");
                    }
                    break;
                }
                case Op::Concat: {
                    Value b = pop(), a = pop();
                    stack.push_back(Value::of_str(a.display() + b.display()));
                    break;
                }
                case Op::Goto:
                    pc = i.a;
                    continue;
                case Op::IfTrue: {
                    if (pop().as_bool()) {
                        pc = i.a;
                        continue;
                    }
                    break;
                }
                case Op::IfFalse: {
                    if (!pop().as_bool()) {
                        pc = i.a;
                        continue;
                    }
                    break;
                }
                case Op::New: {
                    ensure_initialized(i.owner);
                    stack.push_back(Value::of_ref(allocate(i.owner)));
                    break;
                }
                case Op::GetField: {
                    Value recv = pop();
                    Object& o = heap_.get(recv.as_ref());
                    const model::Layout& layout = pool_->layout_of(o.cls->name);
                    ++counters_.field_reads;
                    stack.push_back(
                        o.fields[static_cast<std::size_t>(layout.index_of(i.member))]);
                    break;
                }
                case Op::PutField: {
                    Value v = pop();
                    Value recv = pop();
                    Object& o = heap_.get(recv.as_ref());
                    const model::Layout& layout = pool_->layout_of(o.cls->name);
                    ++counters_.field_writes;
                    o.fields[static_cast<std::size_t>(layout.index_of(i.member))] =
                        std::move(v);
                    break;
                }
                case Op::GetStatic:
                    stack.push_back(get_static_field(i.owner, i.member));
                    break;
                case Op::PutStatic:
                    set_static_field(i.owner, i.member, pop());
                    break;
                case Op::InvokeVirtual:
                case Op::InvokeInterface: {
                    auto [nargs_i, ret_void] = sig_info(i.desc);
                    std::size_t nargs = static_cast<std::size_t>(nargs_i);
                    std::vector<Value> locals2(nargs + 1);
                    for (std::size_t k = nargs; k >= 1; --k) locals2[k] = pop();
                    locals2[0] = pop();
                    const ClassFile& dyn = class_of(locals2[0].as_ref());
                    const Method& target = resolve_virtual_cached(dyn.name, i.member, i.desc);
                    if (i.op == Op::InvokeVirtual) ++counters_.invokes_virtual;
                    else ++counters_.invokes_interface;
                    Value r = invoke(dyn, target, std::move(locals2));
                    if (!ret_void) stack.push_back(std::move(r));
                    break;
                }
                case Op::InvokeStatic: {
                    auto [nargs_i, ret_void] = sig_info(i.desc);
                    std::size_t nargs = static_cast<std::size_t>(nargs_i);
                    std::vector<Value> locals2(nargs);
                    for (std::size_t k = nargs; k >= 1; --k) locals2[k - 1] = pop();
                    ensure_initialized(i.owner);
                    const Method* target = pool_->resolve_static(i.owner, i.member, i.desc);
                    if (!target)
                        throw VmError("unresolved static " + i.owner + "." + i.member);
                    ++counters_.invokes_static;
                    Value r = invoke(pool_->get(i.owner), *target, std::move(locals2));
                    if (!ret_void) stack.push_back(std::move(r));
                    break;
                }
                case Op::InvokeSpecial: {
                    auto [nargs_i, ret_void2] = sig_info(i.desc);
                    (void)ret_void2;
                    std::size_t nargs = static_cast<std::size_t>(nargs_i);
                    std::vector<Value> locals2(nargs + 1);
                    for (std::size_t k = nargs; k >= 1; --k) locals2[k] = pop();
                    locals2[0] = pop();
                    const ClassFile& owner = pool_->get(i.owner);
                    const Method* ctor = owner.find_method(i.member, i.desc);
                    if (!ctor) throw VmError("unresolved ctor " + i.owner + i.desc);
                    ++counters_.invokes_special;
                    invoke(owner, *ctor, std::move(locals2));
                    break;
                }
                case Op::Return:
                    return Value::null();
                case Op::ReturnValue:
                    return pop();
                case Op::Throw: {
                    Value thrown = pop();
                    if (!thrown.is_ref()) throw VmError("throw of non-reference");
                    throw GuestThrow{std::move(thrown)};
                }
                case Op::NewArray: {
                    std::int32_t len = pop().as_int();
                    if (len < 0) throw VmError("negative array length");
                    ++counters_.allocations;
                    stack.push_back(Value::of_ref(heap_.alloc_array(
                        model::TypeDesc::parse(i.desc),
                        static_cast<std::size_t>(len))));
                    break;
                }
                case Op::ALoad: {
                    std::int32_t idx = pop().as_int();
                    Object& arr = heap_.get(pop().as_ref());
                    if (!arr.is_array) throw VmError("aload on non-array");
                    if (idx < 0 || static_cast<std::size_t>(idx) >= arr.fields.size())
                        throw VmError("array index out of bounds: " + std::to_string(idx));
                    ++counters_.field_reads;
                    stack.push_back(arr.fields[static_cast<std::size_t>(idx)]);
                    break;
                }
                case Op::AStore: {
                    Value v = pop();
                    std::int32_t idx = pop().as_int();
                    Object& arr = heap_.get(pop().as_ref());
                    if (!arr.is_array) throw VmError("astore on non-array");
                    if (idx < 0 || static_cast<std::size_t>(idx) >= arr.fields.size())
                        throw VmError("array index out of bounds: " + std::to_string(idx));
                    ++counters_.field_writes;
                    arr.fields[static_cast<std::size_t>(idx)] = std::move(v);
                    break;
                }
                case Op::ALen: {
                    Object& arr = heap_.get(pop().as_ref());
                    if (!arr.is_array) throw VmError("alen on non-array");
                    stack.push_back(
                        Value::of_int(static_cast<std::int32_t>(arr.fields.size())));
                    break;
                }
            }
        } catch (GuestThrow& gt) {
            // Search this frame's handlers; re-throw to unwind otherwise.
            const ClassFile& thrown_cls = class_of(gt.thrown.as_ref());
            bool handled = false;
            for (const model::Handler& h : m.code.handlers) {
                if (pc >= h.start && pc < h.end &&
                    pool_->is_subtype(thrown_cls.name, h.class_name)) {
                    stack.clear();
                    stack.push_back(std::move(gt.thrown));
                    pc = h.target;
                    handled = true;
                    break;
                }
            }
            if (handled) continue;
            throw;  // unwind to the caller's frame (or the API boundary)
        }
        ++pc;
    }
}

}  // namespace rafda::vm
