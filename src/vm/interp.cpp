#include "vm/interp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "support/error.hpp"

namespace rafda::vm {

using model::ClassFile;
using model::Instruction;
using model::Kind;
using model::Method;
using model::MethodSig;
using model::Op;

namespace {
constexpr int kMaxCallDepth = 2000;

std::string native_key(const std::string& owner, const std::string& name,
                       const std::string& desc) {
    return owner + "#" + name + desc;
}
}  // namespace

Interpreter::Interpreter(const model::ClassPool& pool) : pool_(&pool) {}

Interpreter::~Interpreter() {
    if (metrics_) metrics_->remove_probes_with_prefix(metrics_prefix_ + ".");
}

void Interpreter::attach_metrics(obs::Registry* registry, std::string prefix) {
    if (metrics_) metrics_->remove_probes_with_prefix(metrics_prefix_ + ".");
    metrics_ = registry;
    metrics_prefix_ = std::move(prefix);
    method_hist_.clear();
    if (!metrics_) {
        profile_methods_ = false;
        return;
    }
    auto probe = [this](const std::string& name, std::uint64_t Counters::* field) {
        metrics_->register_probe(metrics_prefix_ + name, [this, field] {
            return static_cast<std::int64_t>(counters_.*field);
        });
    };
    probe(".instructions", &Counters::instructions);
    probe(".native_calls", &Counters::native_calls);
    probe(".allocations", &Counters::allocations);
    metrics_->register_probe(metrics_prefix_ + ".invokes", [this] {
        return static_cast<std::int64_t>(counters_.total_invokes());
    });
    metrics_->register_probe(metrics_prefix_ + ".field_accesses", [this] {
        return static_cast<std::int64_t>(counters_.field_reads + counters_.field_writes);
    });
    metrics_->register_probe(metrics_prefix_ + ".ic_hits", [this] {
        return static_cast<std::int64_t>(counters_.ic_hits());
    });
    metrics_->register_probe(metrics_prefix_ + ".ic_misses", [this] {
        return static_cast<std::int64_t>(counters_.ic_misses());
    });
}

void Interpreter::record_method_profile(const ClassFile& cls, const Method& m,
                                        std::uint64_t instructions) {
    auto it = method_hist_.find(&m);
    if (it == method_hist_.end()) {
        obs::Histogram& h = metrics_->histogram(metrics_prefix_ + ".method_instr." +
                                                cls.name + "." + m.name);
        it = method_hist_.emplace(&m, &h).first;
    }
    it->second->record(instructions);
}

GuestException Interpreter::make_guest_exception(ObjId obj) {
    const ClassFile& cls = class_of(obj);
    std::string msg;
    const model::Layout& layout = pool_->layout_of(cls.name);
    auto mit = layout.index_by_name.find("msg");
    if (mit != layout.index_by_name.end())
        msg = heap_.get(obj).fields[static_cast<std::size_t>(mit->second)].display();
    return GuestException(cls.name, msg, obj);
}

void Interpreter::throw_guest(Value thrown) {
    if (!thrown.is_ref()) throw VmError("throw_guest of non-reference");
    throw GuestThrow{std::move(thrown)};
}

Value Interpreter::at_api_boundary(const std::function<Value()>& body) {
    try {
        return body();
    } catch (GuestThrow& gt) {
        // Nested inside guest execution (a native called back into the
        // API): let the guest unwinding continue so outer guest handlers
        // get a chance.  Only the outermost entry converts.
        if (call_depth_ > 0) throw;
        throw make_guest_exception(gt.thrown.as_ref());
    }
}

void Interpreter::register_native(const std::string& owner, const std::string& name,
                                  const std::string& desc, NativeFn fn) {
    natives_[native_key(owner, name, desc)] = std::move(fn);
}

void Interpreter::register_class_native(const std::string& owner, ClassNativeFn fn) {
    class_natives_[owner] = std::move(fn);
}

ObjId Interpreter::allocate(const std::string& class_name) {
    return allocate_with(pool_->get(class_name), pool_->layout_of(class_name));
}

ObjId Interpreter::allocate_with(const ClassFile& cls, const model::Layout& layout) {
    ObjId id = heap_.alloc(cls, static_cast<std::size_t>(layout.size()));
    Object& obj = heap_.get(id);
    for (int i = 0; i < layout.size(); ++i)
        obj.fields[static_cast<std::size_t>(i)] = default_value(layout.slots[i].type);
    ++counters_.allocations;
    if (observer_) observer_->on_alloc(id, cls.name);
    return id;
}

Value Interpreter::construct(const std::string& class_name, const std::string& ctor_desc,
                             std::vector<Value> args) {
    return at_api_boundary([&] { return construct_impl(class_name, ctor_desc, std::move(args)); });
}

Value Interpreter::construct_impl(const std::string& class_name, const std::string& ctor_desc,
                                  std::vector<Value> args) {
    ensure_initialized(class_name);
    ObjId id = allocate(class_name);
    const ClassFile& cls = pool_->get(class_name);
    const Method* ctor = cls.find_method("<init>", ctor_desc);
    if (!ctor) throw VmError("no constructor " + class_name + ".<init>" + ctor_desc);
    std::vector<Value> locals;
    locals.reserve(args.size() + 1);
    locals.push_back(Value::of_ref(id));
    for (Value& a : args) locals.push_back(std::move(a));
    invoke(cls, *ctor, std::move(locals));
    return Value::of_ref(id);
}

Value Interpreter::call_static(const std::string& owner, const std::string& name,
                               const std::string& desc, std::vector<Value> args) {
    return at_api_boundary([&] { return call_static_impl(owner, name, desc, std::move(args)); });
}

Value Interpreter::call_static_impl(const std::string& owner, const std::string& name,
                                    const std::string& desc, std::vector<Value> args) {
    ensure_initialized(owner);
    const Method* m = pool_->resolve_static(owner, name, desc);
    if (!m) throw VmError("unresolved static method " + owner + "." + name + desc);
    ++counters_.invokes_static;
    return invoke(pool_->get(owner), *m, std::move(args));
}

Value Interpreter::call_virtual(const Value& receiver, const std::string& name,
                                const std::string& desc, std::vector<Value> args) {
    return at_api_boundary(
        [&] { return call_virtual_impl(receiver, name, desc, std::move(args)); });
}

Value Interpreter::call_virtual_impl(const Value& receiver, const std::string& name,
                                     const std::string& desc, std::vector<Value> args) {
    const ClassFile& dyn = class_of(receiver.as_ref());
    const Method& m = resolve_virtual_cached(dyn.name, name, desc);
    ++counters_.invokes_virtual;
    std::vector<Value> locals;
    locals.reserve(args.size() + 1);
    locals.push_back(receiver);
    for (Value& a : args) locals.push_back(std::move(a));
    return invoke(dyn, m, std::move(locals));
}

Value Interpreter::get_static_field(const std::string& owner, const std::string& field) {
    const ClassFile* declaring = pool_->resolve_static_field(owner, field);
    if (!declaring) throw VmError("no static field " + owner + "." + field);
    at_api_boundary([&] {
        ensure_initialized(declaring->name);
        return Value::null();
    });
    ++counters_.static_reads;
    const model::Layout& layout = pool_->static_layout_of(declaring->name);
    return statics_of(declaring->name)[static_cast<std::size_t>(layout.index_of(field))];
}

void Interpreter::set_static_field(const std::string& owner, const std::string& field,
                                   Value v) {
    const ClassFile* declaring = pool_->resolve_static_field(owner, field);
    if (!declaring) throw VmError("no static field " + owner + "." + field);
    at_api_boundary([&] {
        ensure_initialized(declaring->name);
        return Value::null();
    });
    ++counters_.static_writes;
    const model::Layout& layout = pool_->static_layout_of(declaring->name);
    if (observer_) observer_->on_static_put(declaring->name, field, v);
    statics_of(declaring->name)[static_cast<std::size_t>(layout.index_of(field))] =
        std::move(v);
}

Value Interpreter::get_field(ObjId obj, const std::string& field) {
    Object& o = heap_.get(obj);
    const model::Layout& layout = pool_->layout_of(o.cls->name);
    ++counters_.field_reads;
    return o.fields[static_cast<std::size_t>(layout.index_of(field))];
}

void Interpreter::set_field(ObjId obj, const std::string& field, Value v) {
    Object& o = heap_.get(obj);
    const model::Layout& layout = pool_->layout_of(o.cls->name);
    ++counters_.field_writes;
    const std::size_t slot = static_cast<std::size_t>(layout.index_of(field));
    if (observer_) observer_->on_field_put(obj, slot, v);
    o.fields[slot] = std::move(v);
}

const ClassFile& Interpreter::class_of(ObjId obj) const {
    const Object& o = heap_.get(obj);
    if (o.is_array) throw VmError("class_of on an array");
    return *o.cls;
}

void Interpreter::ensure_initialized(const std::string& class_name) {
    if (initialized_.count(class_name) || initializing_.count(class_name)) return;
    const ClassFile& cls = pool_->get(class_name);
    initializing_.insert(class_name);
    // Initialise the superclass first, JVM-style.
    if (!cls.super_name.empty()) ensure_initialized(cls.super_name);
    if (const Method* clinit = cls.find_method("<clinit>", "()V")) {
        invoke(cls, *clinit, {});
    }
    initializing_.erase(class_name);
    initialized_.insert(class_name);
    if (observer_) observer_->on_class_init(class_name);
}

std::vector<Value>& Interpreter::statics_of(const std::string& class_name) {
    if (statics_gen_ != cache_gen()) reconcile_statics();
    auto it = statics_.find(class_name);
    if (it != statics_.end()) return it->second.values;
    const model::Layout& layout = pool_->static_layout_of(class_name);
    StaticSlots slots;
    slots.names.reserve(static_cast<std::size_t>(layout.size()));
    slots.values.reserve(static_cast<std::size_t>(layout.size()));
    for (const model::FieldSlot& s : layout.slots) {
        slots.names.push_back(s.name);
        slots.values.push_back(default_value(s.type));
    }
    return statics_.emplace(class_name, std::move(slots)).first->second.values;
}

void Interpreter::reconcile_statics() {
    statics_gen_ = cache_gen();
    for (auto it = statics_.begin(); it != statics_.end();) {
        if (!pool_->contains(it->first)) {
            it = statics_.erase(it);
            continue;
        }
        const model::Layout& layout = pool_->static_layout_of(it->first);
        StaticSlots& storage = it->second;
        StaticSlots fresh;
        fresh.names.reserve(static_cast<std::size_t>(layout.size()));
        fresh.values.reserve(static_cast<std::size_t>(layout.size()));
        for (const model::FieldSlot& s : layout.slots) {
            Value v = default_value(s.type);
            for (std::size_t k = 0; k < storage.names.size(); ++k) {
                if (storage.names[k] == s.name) {
                    v = std::move(storage.values[k]);
                    break;
                }
            }
            fresh.names.push_back(s.name);
            fresh.values.push_back(std::move(v));
        }
        // Swap the contents, not the map entry: stale SiteCaches hold the
        // address of `values` (they re-validate via the generation before
        // dereferencing, but entry addresses staying put keeps the
        // refreshed caches cheap to refill).
        storage.names = std::move(fresh.names);
        storage.values = std::move(fresh.values);
        ++it;
    }
}

std::pair<int, bool> Interpreter::sig_info(const std::string& desc) {
    auto it = sig_cache_.find(desc);
    if (it != sig_cache_.end()) return it->second;
    MethodSig sig = MethodSig::parse(desc);
    auto info = std::make_pair(static_cast<int>(sig.params().size()),
                               sig.ret().is_void());
    sig_cache_.emplace(desc, info);
    return info;
}

const Method& Interpreter::resolve_virtual_cached(const std::string& dynamic,
                                                  const std::string& name,
                                                  const std::string& desc) {
    if (vcache_gen_ != cache_gen()) {
        vcache_.clear();
        vcache_gen_ = cache_gen();
    }
    std::string key = dynamic;
    key += '#';
    key += name;
    key += desc;
    auto it = vcache_.find(key);
    if (it != vcache_.end()) return *it->second;
    const Method* m = pool_->resolve_virtual(dynamic, name, desc);
    if (!m) throw VmError("unresolved virtual method " + dynamic + "." + name + desc);
    vcache_.emplace(std::move(key), m);
    return *m;
}

Interpreter::SiteCache* Interpreter::caches_for(const Method& m) {
    std::vector<SiteCache>& sites = site_caches_[&m];
    // Sized lazily (and re-sized if a mutable-pool rewrite changed the
    // body, or a recycled Method address collides with a dead entry).
    if (sites.size() != m.code.instrs.size())
        sites.assign(m.code.instrs.size(), SiteCache{});
    return sites.data();
}

Value Interpreter::invoke_native(const ClassFile& cls, const Method& m,
                                 const Value& receiver, std::vector<Value> args) {
    ++counters_.native_calls;
    auto it = natives_.find(native_key(cls.name, m.name, m.descriptor()));
    if (it != natives_.end()) return it->second(*this, receiver, std::move(args));
    auto cit = class_natives_.find(cls.name);
    if (cit != class_natives_.end()) return cit->second(*this, m, receiver, std::move(args));
    throw VmError("unbound native method " + cls.name + "." + m.name + m.descriptor());
}

[[gnu::noinline]] Value Interpreter::invoke_native_entry(
    const ClassFile& cls, const Method& m, std::vector<Value> locals_with_receiver) {
    Value receiver = m.is_static ? Value::null() : locals_with_receiver.front();
    std::vector<Value> args(locals_with_receiver.begin() + (m.is_static ? 0 : 1),
                            locals_with_receiver.end());
    // The declaring class may differ from `cls` for inherited natives;
    // resolve against the class that actually declares the method.
    const ClassFile* declaring = &cls;
    for (const ClassFile* cur = &cls; cur;
         cur = cur->super_name.empty() ? nullptr : pool_->find(cur->super_name)) {
        if (cur->find_method(m.name, m.descriptor()) == &m) {
            declaring = cur;
            break;
        }
    }
    return invoke_native(*declaring, m, receiver, std::move(args));
}

[[gnu::noinline]] bool Interpreter::native_stack_exhausted() {
    static const std::size_t budget = [] {
        std::size_t limit = std::size_t{8} << 20;  // conservative default
#ifdef __unix__
        struct rlimit rl;
        if (getrlimit(RLIMIT_STACK, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY &&
            rl.rlim_cur < (std::size_t{1} << 32))
            limit = static_cast<std::size_t>(rl.rlim_cur);
#endif
        // Leave room to unwind and to run guest handlers after the throw.
        const std::size_t reserve = std::size_t{1} << 20;
        return limit > 2 * reserve ? limit - reserve : limit / 2;
    }();
    const char probe = 0;
    if (call_depth_ <= 1) {
        stack_base_ = &probe;
        return false;
    }
    return stack_base_ > &probe &&
           static_cast<std::size_t>(stack_base_ - &probe) > budget;
}

[[gnu::noinline]] void Interpreter::throw_stack_overflow(const ClassFile& cls,
                                                         const Method& m) {
    throw VmError("guest call stack overflow in " + cls.name + "." + m.name);
}

Value Interpreter::invoke(const ClassFile& cls, const Method& m,
                          std::vector<Value> locals_with_receiver) {
    if (m.is_native) return invoke_native_entry(cls, m, std::move(locals_with_receiver));
    if (m.is_abstract)
        throw VmError("invoke of abstract method " + cls.name + "." + m.name);
    if (++call_depth_ > kMaxCallDepth || native_stack_exhausted()) {
        --call_depth_;
        throw_stack_overflow(cls, m);
    }
    locals_with_receiver.resize(static_cast<std::size_t>(m.code.max_locals));
    const std::uint64_t instr_before = profile_methods_ ? counters_.instructions : 0;
    try {
        Value result = execute(cls, m, std::move(locals_with_receiver));
        --call_depth_;
        if (profile_methods_)
            record_method_profile(cls, m, counters_.instructions - instr_before);
        return result;
    } catch (...) {
        --call_depth_;
        throw;
    }
}

Value Interpreter::arith(Op op, const Value& a, const Value& b) {
    // Result kind: the wider of the two operand kinds (int < long < double).
    auto rank = [](const Value& v) {
        return v.is_double() ? 2 : v.is_long() ? 1 : 0;
    };
    if (!a.is_numeric() || !b.is_numeric())
        throw VmError(std::string("arithmetic on non-numeric values: ") + a.display() + ", " +
                      b.display());
    int r = std::max(rank(a), rank(b));
    if (r == 2) {
        double x = a.widen_double(), y = b.widen_double();
        switch (op) {
            case Op::Add: return Value::of_double(x + y);
            case Op::Sub: return Value::of_double(x - y);
            case Op::Mul: return Value::of_double(x * y);
            case Op::Div: return Value::of_double(x / y);
            case Op::Rem: return Value::of_double(std::fmod(x, y));
            default: break;
        }
    } else {
        std::int64_t x = a.widen_integral(), y = b.widen_integral();
        if ((op == Op::Div || op == Op::Rem) && y == 0)
            throw VmError("integer division by zero");
        // Two's-complement wraparound (JVM semantics): compute through
        // unsigned so overflow stays defined, and pin the one remaining
        // overflowing division, INT64_MIN / -1.
        const std::uint64_t ux = static_cast<std::uint64_t>(x);
        const std::uint64_t uy = static_cast<std::uint64_t>(y);
        constexpr std::int64_t kMinInt64 = std::numeric_limits<std::int64_t>::min();
        std::int64_t z = 0;
        switch (op) {
            case Op::Add: z = static_cast<std::int64_t>(ux + uy); break;
            case Op::Sub: z = static_cast<std::int64_t>(ux - uy); break;
            case Op::Mul: z = static_cast<std::int64_t>(ux * uy); break;
            case Op::Div: z = (x == kMinInt64 && y == -1) ? x : x / y; break;
            case Op::Rem: z = (x == kMinInt64 && y == -1) ? 0 : x % y; break;
            default: break;
        }
        if (r == 1) return Value::of_long(z);
        return Value::of_int(static_cast<std::int32_t>(z));
    }
    throw VmError("bad arithmetic op");
}

Value Interpreter::compare(Op op, const Value& a, const Value& b) {
    // Equality on refs/null/bools/strings; ordering only on numerics and
    // strings.
    auto as_ordering_operands = [&]() -> std::pair<double, double> {
        return {a.widen_double(), b.widen_double()};
    };
    bool result = false;
    switch (op) {
        case Op::CmpEq:
        case Op::CmpNe: {
            bool eq;
            if (a.is_numeric() && b.is_numeric()) {
                eq = a.widen_double() == b.widen_double();
            } else if ((a.is_null() || a.is_ref()) && (b.is_null() || b.is_ref())) {
                eq = (a.is_null() && b.is_null()) ||
                     (a.is_ref() && b.is_ref() && a.as_ref() == b.as_ref());
            } else {
                eq = a == b;
            }
            result = (op == Op::CmpEq) ? eq : !eq;
            break;
        }
        case Op::CmpLt:
        case Op::CmpLe:
        case Op::CmpGt:
        case Op::CmpGe: {
            if (a.is_str() && b.is_str()) {
                int c = a.as_str().compare(b.as_str());
                result = (op == Op::CmpLt && c < 0) || (op == Op::CmpLe && c <= 0) ||
                         (op == Op::CmpGt && c > 0) || (op == Op::CmpGe && c >= 0);
            } else {
                auto [x, y] = as_ordering_operands();
                result = (op == Op::CmpLt && x < y) || (op == Op::CmpLe && x <= y) ||
                         (op == Op::CmpGt && x > y) || (op == Op::CmpGe && x >= y);
            }
            break;
        }
        default:
            throw VmError("bad comparison op");
    }
    return Value::of_bool(result);
}

// The out-of-line opcode bodies below are [[gnu::noinline]] so they stay
// out of execute()'s frame even when the optimizer would merge them back.

[[gnu::noinline]] void Interpreter::op_misc(const Instruction& i,
                                            std::vector<Value>& stack) {
    auto pop = [&] {
        Value v = std::move(stack.back());
        stack.pop_back();
        return v;
    };
    switch (i.op) {
        case Op::Mul:
        case Op::Div:
        case Op::Rem: {
            Value b = pop(), a = pop();
            stack.push_back(arith(i.op, a, b));
            break;
        }
        case Op::Neg: {
            Value a = pop();
            if (a.is_int()) stack.push_back(Value::of_int(-a.as_int()));
            else if (a.is_long()) stack.push_back(Value::of_long(-a.as_long()));
            else stack.push_back(Value::of_double(-a.as_double()));
            break;
        }
        case Op::And: {
            Value b = pop(), a = pop();
            stack.push_back(Value::of_bool(a.as_bool() && b.as_bool()));
            break;
        }
        case Op::Or: {
            Value b = pop(), a = pop();
            stack.push_back(Value::of_bool(a.as_bool() || b.as_bool()));
            break;
        }
        case Op::Not: {
            Value a = pop();
            stack.push_back(Value::of_bool(!a.as_bool()));
            break;
        }
        case Op::Conv: {
            Value a = pop();
            switch (static_cast<Kind>(i.a)) {
                case Kind::Int:
                    stack.push_back(
                        Value::of_int(static_cast<std::int32_t>(a.widen_double())));
                    break;
                case Kind::Long:
                    stack.push_back(
                        Value::of_long(static_cast<std::int64_t>(a.widen_double())));
                    break;
                case Kind::Double:
                    stack.push_back(Value::of_double(a.widen_double()));
                    break;
                default:
                    throw VmError("bad conv target");
            }
            break;
        }
        default: {  // Op::Concat
            Value b = pop(), a = pop();
            push_concat(a, b, stack);
            break;
        }
    }
}

[[gnu::noinline]] void Interpreter::op_array(const Instruction& i,
                                             std::vector<Value>& stack) {
    auto pop = [&] {
        Value v = std::move(stack.back());
        stack.pop_back();
        return v;
    };
    switch (i.op) {
        case Op::NewArray: {
            std::int32_t len = pop().as_int();
            if (len < 0) throw VmError("negative array length");
            ++counters_.allocations;
            const ObjId id = heap_.alloc_array(model::TypeDesc::parse(i.desc),
                                               static_cast<std::size_t>(len));
            if (observer_)
                observer_->on_alloc_array(id, i.desc, static_cast<std::size_t>(len));
            stack.push_back(Value::of_ref(id));
            break;
        }
        case Op::ALoad: {
            std::int32_t idx = pop().as_int();
            Object& arr = heap_.get(pop().as_ref());
            if (!arr.is_array) throw VmError("aload on non-array");
            if (idx < 0 || static_cast<std::size_t>(idx) >= arr.fields.size())
                throw VmError("array index out of bounds: " + std::to_string(idx));
            ++counters_.field_reads;
            stack.push_back(arr.fields[static_cast<std::size_t>(idx)]);
            break;
        }
        case Op::AStore: {
            Value v = pop();
            std::int32_t idx = pop().as_int();
            const ObjId aid = pop().as_ref();
            Object& arr = heap_.get(aid);
            if (!arr.is_array) throw VmError("astore on non-array");
            if (idx < 0 || static_cast<std::size_t>(idx) >= arr.fields.size())
                throw VmError("array index out of bounds: " + std::to_string(idx));
            ++counters_.field_writes;
            if (observer_)
                observer_->on_array_put(aid, static_cast<std::size_t>(idx), v);
            arr.fields[static_cast<std::size_t>(idx)] = std::move(v);
            break;
        }
        default: {  // Op::ALen
            Object& arr = heap_.get(pop().as_ref());
            if (!arr.is_array) throw VmError("alen on non-array");
            stack.push_back(Value::of_int(static_cast<std::int32_t>(arr.fields.size())));
            break;
        }
    }
}

// The invoke bodies are out of line too, but unlike the cold helpers they
// sit ON the recursion path: one of them is live per guest frame.  That is
// still a win — execute() used to hold the argument vectors and temporaries
// of all three shapes at once, in every frame.

[[gnu::noinline]] void Interpreter::op_invoke_virtual(const Instruction& i,
                                                      SiteCache& sc,
                                                      std::vector<Value>& stack) {
    const std::uint64_t gen = cache_gen();
    int nargs_i;
    bool ret_void;
    if (sc.gen == gen) {
        nargs_i = sc.nargs;
        ret_void = sc.ret_void;
    } else {
        std::tie(nargs_i, ret_void) = sig_info(i.desc);
    }
    std::size_t nargs = static_cast<std::size_t>(nargs_i);
    std::vector<Value> locals2(nargs + 1);
    for (std::size_t k = nargs + 1; k >= 1; --k) {
        locals2[k - 1] = std::move(stack.back());
        stack.pop_back();
    }
    Object& recv = heap_.get(locals2[0].as_ref());
    const ClassFile* dyn;
    const Method* target;
    if (sc.gen == gen && sc.cls == recv.cls) {
        ++counters_.ic_invoke_hits;
        dyn = sc.cls;
        target = sc.target;
    } else {
        ++counters_.ic_invoke_misses;
        if (recv.is_array) throw VmError("class_of on an array");
        dyn = recv.cls;
        target = &resolve_virtual_cached(dyn->name, i.member, i.desc);
        sc.cls = dyn;
        sc.target = target;
        sc.nargs = nargs_i;
        sc.ret_void = ret_void;
        sc.gen = gen;
    }
    if (i.op == Op::InvokeVirtual) ++counters_.invokes_virtual;
    else ++counters_.invokes_interface;
    Value r = invoke(*dyn, *target, std::move(locals2));
    if (!ret_void) stack.push_back(std::move(r));
}

[[gnu::noinline]] void Interpreter::op_invoke_static(const Instruction& i,
                                                     SiteCache& sc,
                                                     std::vector<Value>& stack) {
    if (sc.gen != cache_gen()) {
        ++counters_.ic_invoke_misses;
        auto [nargs_i, ret_void] = sig_info(i.desc);
        ensure_initialized(i.owner);
        const Method* target = pool_->resolve_static(i.owner, i.member, i.desc);
        if (!target) throw VmError("unresolved static " + i.owner + "." + i.member);
        sc.cls = &pool_->get(i.owner);
        sc.target = target;
        sc.nargs = nargs_i;
        sc.ret_void = ret_void;
        sc.gen = cache_gen();
    } else {
        ++counters_.ic_invoke_hits;
    }
    std::size_t nargs = static_cast<std::size_t>(sc.nargs);
    std::vector<Value> locals2(nargs);
    for (std::size_t k = nargs; k >= 1; --k) {
        locals2[k - 1] = std::move(stack.back());
        stack.pop_back();
    }
    ++counters_.invokes_static;
    Value r = invoke(*sc.cls, *sc.target, std::move(locals2));
    if (!sc.ret_void) stack.push_back(std::move(r));
}

[[gnu::noinline]] void Interpreter::op_invoke_special(const Instruction& i,
                                                      SiteCache& sc,
                                                      std::vector<Value>& stack) {
    if (sc.gen != cache_gen()) {
        ++counters_.ic_invoke_misses;
        auto [nargs_i, ret_void] = sig_info(i.desc);
        (void)ret_void;
        const ClassFile& owner = pool_->get(i.owner);
        const Method* ctor = owner.find_method(i.member, i.desc);
        if (!ctor) throw VmError("unresolved ctor " + i.owner + i.desc);
        sc.cls = &owner;
        sc.target = ctor;
        sc.nargs = nargs_i;
        sc.ret_void = true;
        sc.gen = cache_gen();
    } else {
        ++counters_.ic_invoke_hits;
    }
    std::size_t nargs = static_cast<std::size_t>(sc.nargs);
    std::vector<Value> locals2(nargs + 1);
    for (std::size_t k = nargs + 1; k >= 1; --k) {
        locals2[k - 1] = std::move(stack.back());
        stack.pop_back();
    }
    ++counters_.invokes_special;
    invoke(*sc.cls, *sc.target, std::move(locals2));
}

[[gnu::noinline]] void Interpreter::push_concat(const Value& a, const Value& b,
                                                std::vector<Value>& stack) {
    stack.push_back(Value::of_str(a.display() + b.display()));
}

[[gnu::noinline]] void Interpreter::op_throw(std::vector<Value>& stack) {
    Value thrown = std::move(stack.back());
    stack.pop_back();
    if (!thrown.is_ref()) throw VmError("throw of non-reference");
    throw GuestThrow{std::move(thrown)};
}

[[gnu::noinline]] bool Interpreter::dispatch_guest_throw(GuestThrow& gt,
                                                         const Method& m, int& pc,
                                                         std::vector<Value>& stack) {
    // Search this frame's handlers; the caller re-throws to unwind otherwise.
    const ClassFile& thrown_cls = class_of(gt.thrown.as_ref());
    for (const model::Handler& h : m.code.handlers) {
        if (pc >= h.start && pc < h.end &&
            pool_->is_subtype(thrown_cls.name, h.class_name)) {
            stack.clear();
            stack.push_back(std::move(gt.thrown));
            pc = h.target;
            return true;
        }
    }
    return false;
}

[[gnu::noinline]] void Interpreter::throw_pc_range(const ClassFile& cls,
                                                   const Method& m) {
    throw VmError("pc out of range in " + cls.name + "." + m.name);
}

Value Interpreter::execute(const ClassFile& cls, const Method& m,
                           std::vector<Value> locals) {
    const std::vector<Instruction>& code = m.code.instrs;
    SiteCache* const sites = caches_for(m);
    std::vector<Value> stack;
    stack.reserve(8);
    int pc = 0;

    auto pop = [&] {
        Value v = std::move(stack.back());
        stack.pop_back();
        return v;
    };

    while (true) {
        if (static_cast<std::size_t>(pc) >= code.size())  // negative wraps huge
            throw_pc_range(cls, m);
        const Instruction& i = code[pc];
        ++counters_.instructions;
        try {
            switch (i.op) {
                case Op::Nop:
                    break;
                case Op::Const: {
                    switch (i.k.index()) {  // alternative order fixed in model::Instr
                        case 0: stack.push_back(Value::null()); break;
                        case 1: stack.push_back(Value::of_bool(std::get<bool>(i.k))); break;
                        case 2: {
                            // Constant-increment fusion (`const n; add/sub`
                            // over a same-width top of stack): apply the
                            // arithmetic in place instead of a push/pop
                            // round trip.  Wraparound matches arith(); a
                            // jump into the Add/Sub still takes its case.
                            const std::int32_t v = std::get<std::int32_t>(i.k);
                            if (static_cast<std::size_t>(pc) + 1 < code.size() &&
                                !stack.empty()) {
                                const Instruction& nx = code[pc + 1];
                                if ((nx.op == Op::Add || nx.op == Op::Sub) &&
                                    stack.back().is_int()) {
                                    const std::uint32_t x =
                                        static_cast<std::uint32_t>(stack.back().as_int());
                                    const std::uint32_t y = static_cast<std::uint32_t>(v);
                                    stack.back() = Value::of_int(static_cast<std::int32_t>(
                                        nx.op == Op::Add ? x + y : x - y));
                                    ++counters_.instructions;  // absorbed arith
                                    pc += 2;
                                    continue;
                                }
                            }
                            stack.push_back(Value::of_int(v));
                            break;
                        }
                        case 3: {
                            const std::int64_t v = std::get<std::int64_t>(i.k);
                            if (static_cast<std::size_t>(pc) + 1 < code.size() &&
                                !stack.empty()) {
                                const Instruction& nx = code[pc + 1];
                                if ((nx.op == Op::Add || nx.op == Op::Sub) &&
                                    stack.back().is_long()) {
                                    const std::uint64_t x =
                                        static_cast<std::uint64_t>(stack.back().as_long());
                                    const std::uint64_t y = static_cast<std::uint64_t>(v);
                                    stack.back() = Value::of_long(static_cast<std::int64_t>(
                                        nx.op == Op::Add ? x + y : x - y));
                                    ++counters_.instructions;  // absorbed arith
                                    pc += 2;
                                    continue;
                                }
                            }
                            stack.push_back(Value::of_long(v));
                            break;
                        }
                        case 4:
                            stack.push_back(Value::of_double(std::get<double>(i.k)));
                            break;
                        default:
                            stack.push_back(Value::of_str(std::get<std::string>(i.k)));
                            break;
                    }
                    break;
                }
                case Op::Load:
                    stack.push_back(locals[static_cast<std::size_t>(i.a)]);
                    break;
                case Op::Store:
                    locals[static_cast<std::size_t>(i.a)] = pop();
                    break;
                case Op::Dup:
                    stack.push_back(stack.back());
                    break;
                case Op::Pop:
                    stack.pop_back();
                    break;
                case Op::Swap:
                    std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
                    break;
                case Op::Add:
                case Op::Sub: {
                    Value b = pop(), a = pop();
                    // Same-width add/sub inline (wraparound matches arith());
                    // strings concatenate, mirroring Java's +; everything
                    // else (mixed widths, doubles) takes the general path.
                    if (a.is_long() && b.is_long()) {
                        const std::uint64_t ux = static_cast<std::uint64_t>(a.as_long());
                        const std::uint64_t uy = static_cast<std::uint64_t>(b.as_long());
                        stack.push_back(Value::of_long(static_cast<std::int64_t>(
                            i.op == Op::Add ? ux + uy : ux - uy)));
                    } else if (a.is_int() && b.is_int()) {
                        const std::uint32_t ux = static_cast<std::uint32_t>(a.as_int());
                        const std::uint32_t uy = static_cast<std::uint32_t>(b.as_int());
                        stack.push_back(Value::of_int(static_cast<std::int32_t>(
                            i.op == Op::Add ? ux + uy : ux - uy)));
                    } else if (i.op == Op::Add && (a.is_str() || b.is_str())) {
                        push_concat(a, b, stack);
                    } else {
                        stack.push_back(arith(i.op, a, b));
                    }
                    break;
                }
                case Op::Mul:
                case Op::Div:
                case Op::Rem:
                case Op::Neg:
                    op_misc(i, stack);
                    break;
                case Op::CmpEq:
                case Op::CmpNe:
                case Op::CmpLt:
                case Op::CmpLe:
                case Op::CmpGt:
                case Op::CmpGe: {
                    Value b = pop(), a = pop();
                    // int/int dominates loop headers; compare() widens
                    // through double, which is exact for 32-bit ints, so
                    // the inline path is equivalent.
                    bool res;
                    if (a.is_int() && b.is_int()) {
                        const std::int32_t x = a.as_int(), y = b.as_int();
                        switch (i.op) {
                            case Op::CmpEq: res = x == y; break;
                            case Op::CmpNe: res = x != y; break;
                            case Op::CmpLt: res = x < y; break;
                            case Op::CmpLe: res = x <= y; break;
                            case Op::CmpGt: res = x > y; break;
                            default: res = x >= y; break;
                        }
                    } else {
                        res = compare(i.op, a, b).as_bool();
                    }
                    // Compare-and-branch fusion: when the next instruction
                    // is the conditional jump (the shape every loop header
                    // compiles to), branch directly instead of pushing and
                    // re-popping the boolean.  Jumps *into* the IfTrue/
                    // IfFalse from elsewhere still take its own case.
                    if (static_cast<std::size_t>(pc) + 1 < code.size()) {
                        const Instruction& nx = code[pc + 1];
                        if (nx.op == Op::IfTrue || nx.op == Op::IfFalse) {
                            ++counters_.instructions;  // the absorbed branch
                            if (res == (nx.op == Op::IfTrue))
                                pc = nx.a;
                            else
                                pc += 2;
                            continue;
                        }
                    }
                    stack.push_back(Value::of_bool(res));
                    break;
                }
                case Op::And:
                case Op::Or:
                case Op::Not:
                case Op::Conv:
                case Op::Concat:
                    op_misc(i, stack);
                    break;
                case Op::Goto:
                    pc = i.a;
                    continue;
                case Op::IfTrue: {
                    const bool t = stack.back().as_bool();
                    stack.pop_back();
                    if (t) {
                        pc = i.a;
                        continue;
                    }
                    break;
                }
                case Op::IfFalse: {
                    const bool t = stack.back().as_bool();
                    stack.pop_back();
                    if (!t) {
                        pc = i.a;
                        continue;
                    }
                    break;
                }
                case Op::New: {
                    SiteCache& sc = sites[pc];
                    if (sc.gen == cache_gen()) {
                        stack.push_back(Value::of_ref(allocate_with(*sc.cls, *sc.layout)));
                    } else {
                        ensure_initialized(i.owner);
                        stack.push_back(Value::of_ref(allocate(i.owner)));
                        sc.cls = &pool_->get(i.owner);
                        sc.layout = &pool_->layout_of(i.owner);
                        sc.gen = cache_gen();
                    }
                    break;
                }
                case Op::GetField: {
                    const ObjId recv = stack.back().as_ref();
                    stack.pop_back();
                    Object& o = heap_.get(recv);
                    SiteCache& sc = sites[pc];
                    if (sc.cls == o.cls && sc.gen == cache_gen()) {
                        ++counters_.ic_field_hits;
                    } else {
                        sc.slot = pool_->layout_of(o.cls->name).index_of(i.member);
                        sc.cls = o.cls;
                        sc.gen = cache_gen();
                        ++counters_.ic_field_misses;
                    }
                    ++counters_.field_reads;
                    stack.push_back(o.fields[static_cast<std::size_t>(sc.slot)]);
                    break;
                }
                case Op::PutField: {
                    Value v = pop();
                    const ObjId recv = stack.back().as_ref();
                    stack.pop_back();
                    Object& o = heap_.get(recv);
                    SiteCache& sc = sites[pc];
                    if (sc.cls == o.cls && sc.gen == cache_gen()) {
                        ++counters_.ic_field_hits;
                    } else {
                        sc.slot = pool_->layout_of(o.cls->name).index_of(i.member);
                        sc.cls = o.cls;
                        sc.gen = cache_gen();
                        ++counters_.ic_field_misses;
                    }
                    ++counters_.field_writes;
                    if (observer_)
                        observer_->on_field_put(recv, static_cast<std::size_t>(sc.slot), v);
                    o.fields[static_cast<std::size_t>(sc.slot)] = std::move(v);
                    break;
                }
                case Op::GetStatic: {
                    SiteCache& sc = sites[pc];
                    if (sc.gen == cache_gen()) {
                        ++counters_.ic_static_hits;
                        ++counters_.static_reads;
                        stack.push_back((*sc.statics)[static_cast<std::size_t>(sc.slot)]);
                    } else {
                        ++counters_.ic_static_misses;
                        // The slow path runs <clinit> if needed and
                        // reconciles storage; fill the cache afterwards.
                        stack.push_back(get_static_field(i.owner, i.member));
                        const ClassFile* declaring =
                            pool_->resolve_static_field(i.owner, i.member);
                        sc.statics = &statics_of(declaring->name);
                        sc.slot =
                            pool_->static_layout_of(declaring->name).index_of(i.member);
                        sc.cls = declaring;
                        sc.gen = cache_gen();
                    }
                    break;
                }
                case Op::PutStatic: {
                    SiteCache& sc = sites[pc];
                    if (sc.gen == cache_gen()) {
                        ++counters_.ic_static_hits;
                        ++counters_.static_writes;
                        Value v = pop();
                        if (observer_)
                            observer_->on_static_put(sc.cls->name, i.member, v);
                        (*sc.statics)[static_cast<std::size_t>(sc.slot)] = std::move(v);
                    } else {
                        ++counters_.ic_static_misses;
                        set_static_field(i.owner, i.member, pop());
                        const ClassFile* declaring =
                            pool_->resolve_static_field(i.owner, i.member);
                        sc.statics = &statics_of(declaring->name);
                        sc.slot =
                            pool_->static_layout_of(declaring->name).index_of(i.member);
                        sc.cls = declaring;
                        sc.gen = cache_gen();
                    }
                    break;
                }
                case Op::InvokeVirtual:
                case Op::InvokeInterface:
                    op_invoke_virtual(i, sites[pc], stack);
                    break;
                case Op::InvokeStatic:
                    op_invoke_static(i, sites[pc], stack);
                    break;
                case Op::InvokeSpecial:
                    op_invoke_special(i, sites[pc], stack);
                    break;
                case Op::Return:
                    return Value::null();
                case Op::ReturnValue:
                    return pop();
                case Op::Throw:
                    op_throw(stack);  // [[noreturn]]
                case Op::NewArray:
                case Op::ALoad:
                case Op::AStore:
                case Op::ALen:
                    op_array(i, stack);
                    break;
            }
        } catch (GuestThrow& gt) {
            if (dispatch_guest_throw(gt, m, pc, stack)) continue;
            throw;  // unwind to the caller's frame (or the API boundary)
        }
        ++pc;
    }
}

// -- Restart + restore (DESIGN.md §20) ----------------------------------

void Interpreter::reset_vm_state() {
    heap_.clear();
    statics_.clear();
    initialized_.clear();
    initializing_.clear();
    output_.clear();
    // Every SiteCache, the virtual cache and the statics epoch were tied
    // to the old incarnation; bumping it makes them all miss lazily.  The
    // dangling SiteCache::statics pointers into the cleared map are never
    // dereferenced: the fast paths re-check `gen == cache_gen()` first.
    ++incarnation_;
}

ObjId Interpreter::restore_object(const std::string& class_name) {
    const ClassFile& cls = pool_->get(class_name);
    const model::Layout& layout = pool_->layout_of(class_name);
    ObjId id = heap_.alloc(cls, static_cast<std::size_t>(layout.size()));
    Object& obj = heap_.get(id);
    for (int i = 0; i < layout.size(); ++i)
        obj.fields[static_cast<std::size_t>(i)] = default_value(layout.slots[i].type);
    return id;
}

ObjId Interpreter::restore_array(const std::string& elem_desc, std::size_t length) {
    return heap_.alloc_array(model::TypeDesc::parse(elem_desc), length);
}

void Interpreter::restore_field(ObjId obj, std::size_t slot, Value v) {
    Object& o = heap_.get(obj);
    if (slot >= o.fields.size())
        throw VmError("restore_field slot out of range: " + std::to_string(slot));
    o.fields[slot] = std::move(v);
}

void Interpreter::restore_static(const std::string& class_name,
                                 const std::string& field, Value v) {
    std::vector<Value>& values = statics_of(class_name);
    const model::Layout& layout = pool_->static_layout_of(class_name);
    values[static_cast<std::size_t>(layout.index_of(field))] = std::move(v);
}

void Interpreter::mark_initialized(const std::string& class_name) {
    initialized_.insert(class_name);
}

void Interpreter::visit_statics(
    const std::function<void(const std::string&, const std::string&, const Value&)>&
        fn) const {
    std::vector<const std::pair<const std::string, StaticSlots>*> entries;
    entries.reserve(statics_.size());
    for (const auto& e : statics_) entries.push_back(&e);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* e : entries)
        for (std::size_t k = 0; k < e->second.names.size(); ++k)
            fn(e->first, e->second.names[k], e->second.values[k]);
}

void Interpreter::visit_initialized(
    const std::function<void(const std::string&)>& fn) const {
    std::vector<std::string> names(initialized_.begin(), initialized_.end());
    std::sort(names.begin(), names.end());
    for (const std::string& n : names) fn(n);
}

}  // namespace rafda::vm
