#include "vm/value.hpp"

#include <sstream>

#include "support/error.hpp"

namespace rafda::vm {

namespace {
[[noreturn]] void bad_tag(const char* want, const Value& v) {
    throw VmError(std::string("value is not ") + want + " (got " + v.display() + ")");
}
}  // namespace

bool Value::as_bool() const {
    if (const bool* b = std::get_if<bool>(&v_)) return *b;
    bad_tag("bool", *this);
}

std::int32_t Value::as_int() const {
    if (const std::int32_t* i = std::get_if<std::int32_t>(&v_)) return *i;
    bad_tag("int", *this);
}

std::int64_t Value::as_long() const {
    if (const std::int64_t* j = std::get_if<std::int64_t>(&v_)) return *j;
    bad_tag("long", *this);
}

double Value::as_double() const {
    if (const double* d = std::get_if<double>(&v_)) return *d;
    bad_tag("double", *this);
}

const std::string& Value::as_str() const {
    if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
    bad_tag("string", *this);
}

ObjId Value::as_ref() const {
    if (const Ref* r = std::get_if<Ref>(&v_)) return r->id;
    bad_tag("reference", *this);
}

std::int64_t Value::widen_integral() const {
    if (is_int()) return as_int();
    if (is_long()) return as_long();
    bad_tag("integral", *this);
}

double Value::widen_double() const {
    if (is_int()) return as_int();
    if (is_long()) return static_cast<double>(as_long());
    if (is_double()) return as_double();
    bad_tag("numeric", *this);
}

model::Kind Value::kind() const {
    if (is_null() || is_ref()) return model::Kind::Ref;
    if (is_bool()) return model::Kind::Bool;
    if (is_int()) return model::Kind::Int;
    if (is_long()) return model::Kind::Long;
    if (is_double()) return model::Kind::Double;
    return model::Kind::Str;
}

std::string Value::display() const {
    std::ostringstream os;
    if (is_null()) os << "null";
    else if (is_bool()) os << (as_bool() ? "true" : "false");
    else if (is_int()) os << as_int();
    else if (is_long()) os << as_long();
    else if (is_double()) os << as_double();
    else if (is_str()) os << as_str();
    else os << "@" << as_ref();
    return os.str();
}

Value default_value(const model::TypeDesc& t) {
    switch (t.kind()) {
        case model::Kind::Bool: return Value::of_bool(false);
        case model::Kind::Int: return Value::of_int(0);
        case model::Kind::Long: return Value::of_long(0);
        case model::Kind::Double: return Value::of_double(0.0);
        case model::Kind::Str: return Value::of_str("");
        default: return Value::null();
    }
}

}  // namespace rafda::vm
