#include "vm/value.hpp"

#include <charconv>

#include "support/error.hpp"

namespace rafda::vm {

void Value::throw_bad_tag(const char* want) const {
    throw VmError(std::string("value is not ") + want + " (got " + display() + ")");
}

model::Kind Value::kind() const {
    if (is_null() || is_ref()) return model::Kind::Ref;
    if (is_bool()) return model::Kind::Bool;
    if (is_int()) return model::Kind::Int;
    if (is_long()) return model::Kind::Long;
    if (is_double()) return model::Kind::Double;
    return model::Kind::Str;
}

std::string Value::display() const {
    if (is_null()) return "null";
    if (is_bool()) return as_bool() ? "true" : "false";
    if (is_int()) return std::to_string(as_int());
    if (is_long()) return std::to_string(as_long());
    if (is_double()) {
        // Shortest round-trip rendering (to_chars without a precision).
        // Streaming at the default 6 significant digits made guest string
        // concatenation lossy, so an original and its transformed twin
        // could print different output after a marshalling round trip
        // (SOAPX encodes at max_digits10) — breaking semantic equivalence.
        char buf[32];
        auto [end, ec] = std::to_chars(buf, buf + sizeof buf, as_double());
        if (ec != std::errc{}) return "?double?";  // 32 bytes always suffice
        return std::string(buf, end);
    }
    if (is_str()) return as_str();
    return "@" + std::to_string(as_ref());
}

Value default_value(const model::TypeDesc& t) {
    switch (t.kind()) {
        case model::Kind::Bool: return Value::of_bool(false);
        case model::Kind::Int: return Value::of_int(0);
        case model::Kind::Long: return Value::of_long(0);
        case model::Kind::Double: return Value::of_double(0.0);
        case model::Kind::Str: return Value::of_str("");
        default: return Value::null();
    }
}

}  // namespace rafda::vm
