// Prelude — the "system library" guest programs link against.
//
// Mirrors the role of the JDK classes in the paper: `Sys` has native
// methods (so, per Section 2.4, it is *not transformable*, exactly like
// java.lang.System), and `Throwable` is a special class with JVM-level
// semantics (throw requires it).  The transformability analysis and the
// corpus experiments treat these the same way the paper treats their Java
// counterparts.
#pragma once

#include "model/classpool.hpp"
#include "vm/interp.hpp"

namespace rafda::vm {

/// Names of the prelude classes.
inline constexpr const char* kSysClass = "Sys";
inline constexpr const char* kThrowableClass = "Throwable";

/// Adds Sys and Throwable to the pool (no-op for classes already present).
void install_prelude(model::ClassPool& pool);

/// Registers the native implementations of the prelude on an interpreter:
///   Sys.print(S)V    — append to the interpreter's output buffer
///   Sys.println(S)V  — same, plus a newline
///   Sys.time()J      — current logical time of this address space
void bind_prelude_natives(Interpreter& interp);

}  // namespace rafda::vm
