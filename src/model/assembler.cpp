#include "model/assembler.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rafda::model {

namespace {

/// Strips a `;` comment unless the `;` terminates a class descriptor
/// (i.e. is immediately preceded by a descriptor context).  To keep the
/// grammar simple, comments require `;` to be preceded by whitespace or
/// start-of-line.
std::string_view strip_comment(std::string_view line) {
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' && (i == 0 || std::isspace(static_cast<unsigned char>(line[i - 1]))))
            return line.substr(0, i);
        if (line[i] == '"') {  // skip string literal
            ++i;
            while (i < line.size() && line[i] != '"') {
                if (line[i] == '\\') ++i;
                ++i;
            }
        }
    }
    return line;
}

struct Parser {
    std::vector<std::string> lines;
    int lineno = 0;  // 1-based index of the line in `current`
    std::string current;

    explicit Parser(std::string_view text) {
        for (std::string& l : split(text, '\n')) lines.push_back(std::move(l));
    }

    [[noreturn]] void fail(const std::string& msg) const { throw ParseError(msg, lineno); }

    /// Next non-empty line, with comments stripped.  Returns false at EOF.
    bool next_line() {
        while (lineno < static_cast<int>(lines.size())) {
            std::string_view raw = lines[lineno];
            ++lineno;
            std::string_view stripped = trim(strip_comment(raw));
            if (!stripped.empty()) {
                current = std::string(stripped);
                return true;
            }
        }
        return false;
    }

    std::vector<ClassFile> run() {
        std::vector<ClassFile> out;
        while (next_line()) out.push_back(parse_class());
        return out;
    }

    ClassFile parse_class() {
        std::vector<std::string> toks = split_ws(current);
        std::size_t t = 0;
        ClassFile cf;
        if (toks[t] == "special") {
            cf.is_special = true;
            ++t;
        }
        if (t >= toks.size()) fail("expected 'class' or 'interface'");
        if (toks[t] == "interface") {
            cf.is_interface = true;
        } else if (toks[t] != "class") {
            fail("expected 'class' or 'interface', got '" + toks[t] + "'");
        }
        ++t;
        if (t >= toks.size()) fail("missing class name");
        cf.name = toks[t++];

        // extends / implements clauses.  Comma-separated names may arrive
        // as separate tokens; re-join and split on ','.
        auto read_names = [&](std::vector<std::string>& out_names) {
            std::string joined;
            while (t < toks.size() && toks[t] != "implements" && toks[t] != "extends" &&
                   toks[t] != "{")
                joined += toks[t++];
            for (std::string_view piece : split(joined, ','))
                if (!trim(piece).empty()) out_names.emplace_back(trim(piece));
        };
        while (t < toks.size() && toks[t] != "{") {
            if (toks[t] == "extends") {
                ++t;
                if (cf.is_interface) {
                    read_names(cf.interfaces);
                } else {
                    std::vector<std::string> supers;
                    read_names(supers);
                    if (supers.size() != 1) fail("a class extends exactly one class");
                    cf.super_name = supers[0];
                }
            } else if (toks[t] == "implements") {
                ++t;
                if (cf.is_interface) fail("interfaces use 'extends', not 'implements'");
                read_names(cf.interfaces);
            } else {
                fail("unexpected token in class header: '" + toks[t] + "'");
            }
        }
        if (t >= toks.size() || toks[t] != "{") fail("class header must end with '{'");

        while (true) {
            if (!next_line()) fail("unexpected end of input inside class " + cf.name);
            if (current == "}") break;
            parse_member(cf);
        }
        return cf;
    }

    void parse_member(ClassFile& cf) {
        std::vector<std::string> toks = split_ws(current);
        std::size_t t = 0;
        Visibility vis = Visibility::Public;
        bool is_static = false, is_final = false, is_native = false, is_abstract = false;

        auto consume_modifiers = [&] {
            while (t < toks.size()) {
                const std::string& tok = toks[t];
                if (tok == "public") vis = Visibility::Public;
                else if (tok == "protected") vis = Visibility::Protected;
                else if (tok == "private") vis = Visibility::Private;
                else if (tok == "static") is_static = true;
                else if (tok == "final") is_final = true;
                else if (tok == "native") is_native = true;
                else if (tok == "abstract") is_abstract = true;
                else return;
                ++t;
            }
        };

        consume_modifiers();
        if (t >= toks.size()) fail("empty member declaration");

        if (toks[t] == "field") {
            ++t;
            consume_modifiers();
            if (t + 2 > toks.size()) fail("field needs a name and a descriptor");
            Field f;
            f.name = toks[t++];
            f.type = TypeDesc::parse(toks[t++]);
            f.vis = vis;
            f.is_static = is_static;
            f.is_final = is_final;
            if (t != toks.size()) fail("trailing tokens after field declaration");
            if (f.type.is_void()) fail("field cannot have void type");
            cf.fields.push_back(std::move(f));
            return;
        }

        Method m;
        if (toks[t] == "ctor") {
            ++t;
            consume_modifiers();
            m.name = "<init>";
        } else if (toks[t] == "clinit") {
            ++t;
            m.name = "<clinit>";
            is_static = true;
        } else if (toks[t] == "method") {
            ++t;
            consume_modifiers();
            if (t >= toks.size()) fail("method needs a name");
            m.name = toks[t++];
        } else {
            fail("expected field/method/ctor/clinit, got '" + toks[t] + "'");
        }

        std::string desc = m.name == "<clinit>" ? "()V" : "";
        if (!desc.empty()) {
            // clinit has an implicit ()V descriptor.
        } else {
            if (t >= toks.size()) fail("method needs a descriptor");
            desc = toks[t++];
        }
        m.sig = MethodSig::parse(desc);
        m.vis = vis;
        m.is_static = is_static;
        m.is_native = is_native;
        m.is_abstract = is_abstract;
        if (m.is_ctor() && (is_static || is_native || is_abstract))
            fail("constructors cannot be static/native/abstract");
        if (m.is_ctor() && !m.sig.ret().is_void()) fail("constructor must return void");

        bool has_body = t < toks.size() && toks[t] == "{";
        if (has_body) ++t;
        if (t != toks.size()) fail("trailing tokens after method header");
        // Interface methods are implicitly abstract, as in Java.
        if (cf.is_interface && !has_body && !is_native) {
            is_abstract = true;
            m.is_abstract = true;
        }
        if (is_native || is_abstract) {
            if (has_body) fail("native/abstract methods cannot have a body");
            cf.methods.push_back(std::move(m));
            return;
        }
        if (!has_body) fail("method must have a body (or be native/abstract)");

        m.code = parse_body(m);
        cf.methods.push_back(std::move(m));
    }

    Code parse_body(const Method& m) {
        std::vector<Instruction> instrs;
        std::map<std::string, int> label_pc;
        struct PendingBranch {
            int pc;
            std::string label;
        };
        std::vector<PendingBranch> pending;
        struct PendingHandler {
            std::string class_name, from, to, using_;
        };
        std::vector<PendingHandler> handlers;
        int extra_locals = 0;

        while (true) {
            if (!next_line()) fail("unexpected end of input inside method " + m.name);
            if (current == "}") break;

            if (ends_with(current, ":") && split_ws(current).size() == 1) {
                std::string label(trim(current.substr(0, current.size() - 1)));
                if (label_pc.count(label)) fail("duplicate label " + label);
                label_pc[label] = static_cast<int>(instrs.size());
                continue;
            }

            std::vector<std::string> toks = split_ws(current);
            const std::string& head = toks[0];

            if (head == "locals") {
                if (toks.size() != 2) fail("locals takes one argument");
                extra_locals = std::atoi(toks[1].c_str());
                continue;
            }
            if (head == "catch") {
                // catch CLASS from L1 to L2 using L3
                if (toks.size() != 8 || toks[2] != "from" || toks[4] != "to" ||
                    toks[6] != "using")
                    fail("catch syntax: catch CLASS from L1 to L2 using L3");
                handlers.push_back(PendingHandler{toks[1], toks[3], toks[5], toks[7]});
                continue;
            }

            instrs.push_back(parse_instruction(toks, pending,
                                               static_cast<int>(instrs.size())));
        }

        auto resolve = [&](const std::string& label) {
            auto it = label_pc.find(label);
            if (it == label_pc.end()) fail("undefined label " + label);
            return it->second;
        };
        for (const PendingBranch& pb : pending) instrs[pb.pc].a = resolve(pb.label);

        Code code;
        code.instrs = std::move(instrs);
        for (const PendingHandler& ph : handlers)
            code.handlers.push_back(
                Handler{resolve(ph.from), resolve(ph.to), resolve(ph.using_), ph.class_name});

        int max_slot = -1;
        for (const Instruction& i : code.instrs)
            if (i.op == Op::Load || i.op == Op::Store) max_slot = std::max(max_slot, i.a);
        code.max_locals = std::max({m.param_slots(), max_slot + 1,
                                    m.param_slots() + extra_locals});
        return code;
    }

    Instruction parse_instruction(const std::vector<std::string>& toks,
                                  auto& pending, int pc) {
        Op op = op_from_name(toks[0], lineno);
        Instruction out;
        out.op = op;

        auto need_args = [&](std::size_t n) {
            if (toks.size() != n + 1)
                fail(std::string(op_name(op)) + " takes " + std::to_string(n) + " operand(s)");
        };

        switch (op) {
            case Op::Const:
                out.k = parse_const();
                return out;
            case Op::Load:
            case Op::Store:
                need_args(1);
                out.a = std::atoi(toks[1].c_str());
                if (out.a < 0) fail("negative slot index");
                return out;
            case Op::Conv: {
                need_args(1);
                TypeDesc t = TypeDesc::parse(toks[1]);
                if (!t.is_numeric()) fail("conv target must be numeric");
                out.a = static_cast<int>(t.kind());
                return out;
            }
            case Op::Goto:
            case Op::IfTrue:
            case Op::IfFalse:
                need_args(1);
                pending.push_back({pc, toks[1]});
                return out;
            case Op::New:
                need_args(1);
                out.owner = toks[1];
                return out;
            case Op::NewArray: {
                need_args(1);
                TypeDesc elem = TypeDesc::parse(toks[1]);
                if (elem.is_void()) fail("array of void");
                out.desc = elem.descriptor();
                return out;
            }
            case Op::GetField:
            case Op::PutField:
            case Op::GetStatic:
            case Op::PutStatic:
            case Op::InvokeVirtual:
            case Op::InvokeInterface:
            case Op::InvokeStatic:
            case Op::InvokeSpecial: {
                need_args(2);
                std::size_t dot = toks[1].rfind('.');
                if (dot == std::string::npos) fail("member operand must be OWNER.NAME");
                out.owner = toks[1].substr(0, dot);
                out.member = toks[1].substr(dot + 1);
                out.desc = toks[2];
                // Validate descriptor syntax eagerly for better diagnostics.
                if (is_invoke(op)) MethodSig::parse(out.desc);
                else TypeDesc::parse(out.desc);
                return out;
            }
            default:
                need_args(0);
                return out;
        }
    }

    /// Parses the constant operand out of the raw current line (so string
    /// literals keep embedded spaces).
    ConstValue parse_const() {
        std::string_view rest = trim(std::string_view(current).substr(5));  // after "const"
        if (rest.empty()) fail("const needs an operand");
        if (rest == "null") return Null{};
        if (rest == "true") return true;
        if (rest == "false") return false;
        if (rest.front() == '"') {
            if (rest.size() < 2 || rest.back() != '"') fail("unterminated string literal");
            std::string out;
            for (std::size_t i = 1; i + 1 < rest.size(); ++i) {
                char c = rest[i];
                if (c == '\\' && i + 2 < rest.size()) {
                    char n = rest[++i];
                    out += (n == 'n') ? '\n' : n;
                } else {
                    out += c;
                }
            }
            return out;
        }
        std::string num(rest);
        if (num.back() == 'L' || num.back() == 'l') {
            return static_cast<std::int64_t>(std::strtoll(num.c_str(), nullptr, 10));
        }
        if (num.find('.') != std::string::npos || num.find('e') != std::string::npos ||
            num.find('E') != std::string::npos) {
            return std::strtod(num.c_str(), nullptr);
        }
        return static_cast<std::int32_t>(std::strtol(num.c_str(), nullptr, 10));
    }
};

}  // namespace

std::vector<ClassFile> assemble(std::string_view text) { return Parser(text).run(); }

void assemble_into(ClassPool& pool, std::string_view text) {
    for (ClassFile& cf : assemble(text)) pool.add(std::move(cf));
}

}  // namespace rafda::model
