#include "model/classfile.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace rafda::model {

std::string_view visibility_name(Visibility v) {
    switch (v) {
        case Visibility::Public: return "public";
        case Visibility::Protected: return "protected";
        case Visibility::Private: return "private";
    }
    return "?";
}

const Field* ClassFile::find_field(std::string_view field_name) const {
    for (const Field& f : fields)
        if (f.name == field_name) return &f;
    return nullptr;
}

Field* ClassFile::find_field(std::string_view field_name) {
    return const_cast<Field*>(std::as_const(*this).find_field(field_name));
}

const Method* ClassFile::find_method(std::string_view method_name,
                                     std::string_view desc) const {
    for (const Method& m : methods)
        if (m.name == method_name && m.descriptor() == desc) return &m;
    return nullptr;
}

Method* ClassFile::find_method(std::string_view method_name, std::string_view desc) {
    return const_cast<Method*>(std::as_const(*this).find_method(method_name, desc));
}

std::vector<const Method*> ClassFile::methods_named(std::string_view method_name) const {
    std::vector<const Method*> out;
    for (const Method& m : methods)
        if (m.name == method_name) out.push_back(&m);
    return out;
}

bool ClassFile::has_native_method() const {
    return std::any_of(methods.begin(), methods.end(),
                       [](const Method& m) { return m.is_native; });
}

namespace {

void add_type(std::set<std::string>& out, const TypeDesc& t) {
    if (t.is_ref()) out.insert(t.class_name());
}

void add_sig(std::set<std::string>& out, const MethodSig& sig) {
    for (const TypeDesc& p : sig.params()) add_type(out, p);
    add_type(out, sig.ret());
}

}  // namespace

std::vector<std::string> ClassFile::referenced_classes() const {
    std::set<std::string> out;
    if (!super_name.empty()) out.insert(super_name);
    for (const std::string& i : interfaces) out.insert(i);
    for (const Field& f : fields) add_type(out, f.type);
    for (const Method& m : methods) {
        add_sig(out, m.sig);
        for (const Instruction& ins : m.code.instrs) {
            if (!ins.owner.empty()) out.insert(ins.owner);
            if (!ins.desc.empty()) {
                if (is_invoke(ins.op)) {
                    add_sig(out, MethodSig::parse(ins.desc));
                } else if (ins.op == Op::GetField || ins.op == Op::PutField ||
                           ins.op == Op::GetStatic || ins.op == Op::PutStatic) {
                    add_type(out, TypeDesc::parse(ins.desc));
                }
            }
        }
        for (const Handler& h : m.code.handlers) out.insert(h.class_name);
    }
    out.erase(name);  // self-references are not interesting to the analysis
    return {out.begin(), out.end()};
}

const std::vector<std::string>& ClassFile::referenced_classes_cached(
    std::uint64_t pool_generation) const {
    // Generation 0 never matches the never-filled stamp: ClassPool
    // generations start at 1, so 0 can only come from a pool-less caller
    // and must not alias "cache is cold".
    if (refs_cache_.generation != pool_generation || pool_generation == 0) {
        refs_cache_.refs = referenced_classes();
        refs_cache_.generation = pool_generation;
    }
    return refs_cache_.refs;
}

}  // namespace rafda::model
