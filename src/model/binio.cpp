#include "model/binio.hpp"

#include "support/error.hpp"

namespace rafda::model {

namespace {

constexpr std::uint32_t kMagic = 0x52495242;  // "RIRB"
constexpr std::uint16_t kVersion = 1;

enum class ConstTag : std::uint8_t { Null, Bool, Int, Long, Double, Str };

void write_const(ByteWriter& w, const ConstValue& k) {
    if (std::holds_alternative<Null>(k)) {
        w.u8(static_cast<std::uint8_t>(ConstTag::Null));
    } else if (const bool* b = std::get_if<bool>(&k)) {
        w.u8(static_cast<std::uint8_t>(ConstTag::Bool));
        w.u8(*b ? 1 : 0);
    } else if (const std::int32_t* i = std::get_if<std::int32_t>(&k)) {
        w.u8(static_cast<std::uint8_t>(ConstTag::Int));
        w.i32(*i);
    } else if (const std::int64_t* j = std::get_if<std::int64_t>(&k)) {
        w.u8(static_cast<std::uint8_t>(ConstTag::Long));
        w.i64(*j);
    } else if (const double* d = std::get_if<double>(&k)) {
        w.u8(static_cast<std::uint8_t>(ConstTag::Double));
        w.f64(*d);
    } else {
        w.u8(static_cast<std::uint8_t>(ConstTag::Str));
        w.str(std::get<std::string>(k));
    }
}

ConstValue read_const(ByteReader& r) {
    std::uint8_t tag = r.u8();
    switch (static_cast<ConstTag>(tag)) {
        case ConstTag::Null: return Null{};
        case ConstTag::Bool: return r.u8() != 0;
        case ConstTag::Int: return r.i32();
        case ConstTag::Long: return r.i64();
        case ConstTag::Double: return r.f64();
        case ConstTag::Str: return r.str();
    }
    throw CodecError("rirb: bad constant tag");
}

void write_instruction(ByteWriter& w, const Instruction& i) {
    w.u8(static_cast<std::uint8_t>(i.op));
    write_const(w, i.k);
    w.i32(i.a);
    w.str(i.owner);
    w.str(i.member);
    w.str(i.desc);
}

Instruction read_instruction(ByteReader& r) {
    Instruction i;
    std::uint8_t op = r.u8();
    if (op > static_cast<std::uint8_t>(Op::ALen))
        throw CodecError("rirb: bad opcode " + std::to_string(op));
    i.op = static_cast<Op>(op);
    i.k = read_const(r);
    i.a = r.i32();
    i.owner = r.str();
    i.member = r.str();
    i.desc = r.str();
    return i;
}

void write_method(ByteWriter& w, const Method& m) {
    w.str(m.name);
    w.str(m.descriptor());
    std::uint8_t flags = 0;
    if (m.is_static) flags |= 1;
    if (m.is_native) flags |= 2;
    if (m.is_abstract) flags |= 4;
    w.u8(flags);
    w.u8(static_cast<std::uint8_t>(m.vis));
    w.i32(m.code.max_locals);
    w.u32(static_cast<std::uint32_t>(m.code.instrs.size()));
    for (const Instruction& i : m.code.instrs) write_instruction(w, i);
    w.u32(static_cast<std::uint32_t>(m.code.handlers.size()));
    for (const Handler& h : m.code.handlers) {
        w.i32(h.start);
        w.i32(h.end);
        w.i32(h.target);
        w.str(h.class_name);
    }
}

Method read_method(ByteReader& r) {
    Method m;
    m.name = r.str();
    m.sig = MethodSig::parse(r.str());
    std::uint8_t flags = r.u8();
    m.is_static = flags & 1;
    m.is_native = flags & 2;
    m.is_abstract = flags & 4;
    std::uint8_t vis = r.u8();
    if (vis > static_cast<std::uint8_t>(Visibility::Private))
        throw CodecError("rirb: bad visibility");
    m.vis = static_cast<Visibility>(vis);
    m.code.max_locals = r.i32();
    std::uint32_t n = r.u32();
    m.code.instrs.reserve(n);
    for (std::uint32_t k = 0; k < n; ++k) m.code.instrs.push_back(read_instruction(r));
    std::uint32_t hn = r.u32();
    for (std::uint32_t k = 0; k < hn; ++k) {
        Handler h;
        h.start = r.i32();
        h.end = r.i32();
        h.target = r.i32();
        h.class_name = r.str();
        m.code.handlers.push_back(std::move(h));
    }
    return m;
}

void write_class(ByteWriter& w, const ClassFile& cf) {
    w.str(cf.name);
    w.str(cf.super_name);
    w.u32(static_cast<std::uint32_t>(cf.interfaces.size()));
    for (const std::string& i : cf.interfaces) w.str(i);
    std::uint8_t flags = 0;
    if (cf.is_interface) flags |= 1;
    if (cf.is_special) flags |= 2;
    w.u8(flags);
    w.u32(static_cast<std::uint32_t>(cf.fields.size()));
    for (const Field& f : cf.fields) {
        w.str(f.name);
        w.str(f.type.descriptor());
        std::uint8_t fflags = 0;
        if (f.is_static) fflags |= 1;
        if (f.is_final) fflags |= 2;
        w.u8(fflags);
        w.u8(static_cast<std::uint8_t>(f.vis));
    }
    w.u32(static_cast<std::uint32_t>(cf.methods.size()));
    for (const Method& m : cf.methods) write_method(w, m);
}

ClassFile read_class(ByteReader& r) {
    ClassFile cf;
    cf.name = r.str();
    cf.super_name = r.str();
    std::uint32_t ni = r.u32();
    for (std::uint32_t k = 0; k < ni; ++k) cf.interfaces.push_back(r.str());
    std::uint8_t flags = r.u8();
    cf.is_interface = flags & 1;
    cf.is_special = flags & 2;
    std::uint32_t nf = r.u32();
    for (std::uint32_t k = 0; k < nf; ++k) {
        Field f;
        f.name = r.str();
        f.type = TypeDesc::parse(r.str());
        std::uint8_t fflags = r.u8();
        f.is_static = fflags & 1;
        f.is_final = fflags & 2;
        std::uint8_t vis = r.u8();
        if (vis > static_cast<std::uint8_t>(Visibility::Private))
            throw CodecError("rirb: bad field visibility");
        f.vis = static_cast<Visibility>(vis);
        cf.fields.push_back(std::move(f));
    }
    std::uint32_t nm = r.u32();
    for (std::uint32_t k = 0; k < nm; ++k) cf.methods.push_back(read_method(r));
    return cf;
}

}  // namespace

Bytes save_pool(const ClassPool& pool) {
    ByteWriter w;
    w.u32(kMagic);
    w.u16(kVersion);
    w.u32(static_cast<std::uint32_t>(pool.size()));
    for (const ClassFile* cf : pool.all()) write_class(w, *cf);
    return w.take();
}

ClassPool load_pool(const Bytes& data) {
    ByteReader r(data);
    if (r.u32() != kMagic) throw CodecError("rirb: bad magic");
    std::uint16_t version = r.u16();
    if (version != kVersion)
        throw CodecError("rirb: unsupported version " + std::to_string(version));
    std::uint32_t n = r.u32();
    ClassPool pool;
    for (std::uint32_t k = 0; k < n; ++k) pool.add(read_class(r));
    if (!r.at_end()) throw CodecError("rirb: trailing bytes");
    return pool;
}

}  // namespace rafda::model
