#include "model/instr.hpp"

#include <array>
#include <sstream>
#include <utility>

#include "support/error.hpp"

namespace rafda::model {

namespace {

constexpr std::array<std::pair<Op, std::string_view>, 43> kOpNames{{
    {Op::Nop, "nop"},
    {Op::Const, "const"},
    {Op::Load, "load"},
    {Op::Store, "store"},
    {Op::Dup, "dup"},
    {Op::Pop, "pop"},
    {Op::Swap, "swap"},
    {Op::Add, "add"},
    {Op::Sub, "sub"},
    {Op::Mul, "mul"},
    {Op::Div, "div"},
    {Op::Rem, "rem"},
    {Op::Neg, "neg"},
    {Op::CmpEq, "cmpeq"},
    {Op::CmpNe, "cmpne"},
    {Op::CmpLt, "cmplt"},
    {Op::CmpLe, "cmple"},
    {Op::CmpGt, "cmpgt"},
    {Op::CmpGe, "cmpge"},
    {Op::And, "and"},
    {Op::Or, "or"},
    {Op::Not, "not"},
    {Op::Conv, "conv"},
    {Op::Concat, "concat"},
    {Op::Goto, "goto"},
    {Op::IfTrue, "iftrue"},
    {Op::IfFalse, "iffalse"},
    {Op::New, "new"},
    {Op::GetField, "getfield"},
    {Op::PutField, "putfield"},
    {Op::GetStatic, "getstatic"},
    {Op::PutStatic, "putstatic"},
    {Op::InvokeVirtual, "invokevirtual"},
    {Op::InvokeInterface, "invokeinterface"},
    {Op::InvokeStatic, "invokestatic"},
    {Op::InvokeSpecial, "invokespecial"},
    {Op::Return, "return"},
    {Op::ReturnValue, "returnvalue"},
    {Op::Throw, "throw"},
    {Op::NewArray, "newarray"},
    {Op::ALoad, "aload"},
    {Op::AStore, "astore"},
    {Op::ALen, "alen"},
}};

}  // namespace

std::string_view op_name(Op op) {
    for (const auto& [o, n] : kOpNames)
        if (o == op) return n;
    return "?";
}

Op op_from_name(std::string_view name, int line) {
    for (const auto& [o, n] : kOpNames)
        if (n == name) return o;
    throw ParseError("unknown instruction mnemonic: " + std::string(name), line);
}

std::string const_to_string(const ConstValue& k) {
    std::ostringstream os;
    if (std::holds_alternative<Null>(k)) {
        os << "null";
    } else if (const bool* b = std::get_if<bool>(&k)) {
        os << (*b ? "true" : "false");
    } else if (const std::int32_t* i = std::get_if<std::int32_t>(&k)) {
        os << *i;
    } else if (const std::int64_t* j = std::get_if<std::int64_t>(&k)) {
        os << *j << "L";
    } else if (const double* d = std::get_if<double>(&k)) {
        os << *d;
        if (os.str().find('.') == std::string::npos &&
            os.str().find('e') == std::string::npos)
            os << ".0";
    } else {
        const std::string& s = std::get<std::string>(k);
        os << '"';
        for (char c : s) {
            if (c == '"' || c == '\\') os << '\\';
            if (c == '\n') {
                os << "\\n";
                continue;
            }
            os << c;
        }
        os << '"';
    }
    return os.str();
}

bool is_invoke(Op op) {
    return op == Op::InvokeVirtual || op == Op::InvokeInterface || op == Op::InvokeStatic ||
           op == Op::InvokeSpecial;
}

bool is_branch(Op op) { return op == Op::Goto || op == Op::IfTrue || op == Op::IfFalse; }

namespace ins {

namespace {
Instruction simple(Op op) {
    Instruction i;
    i.op = op;
    return i;
}
Instruction member_op(Op op, std::string owner, std::string member, std::string desc) {
    Instruction i;
    i.op = op;
    i.owner = std::move(owner);
    i.member = std::move(member);
    i.desc = std::move(desc);
    return i;
}
}  // namespace

Instruction nop() { return simple(Op::Nop); }

Instruction const_null() { return simple(Op::Const); }

Instruction const_bool(bool v) {
    Instruction i = simple(Op::Const);
    i.k = v;
    return i;
}

Instruction const_int(std::int32_t v) {
    Instruction i = simple(Op::Const);
    i.k = v;
    return i;
}

Instruction const_long(std::int64_t v) {
    Instruction i = simple(Op::Const);
    i.k = v;
    return i;
}

Instruction const_double(double v) {
    Instruction i = simple(Op::Const);
    i.k = v;
    return i;
}

Instruction const_str(std::string v) {
    Instruction i = simple(Op::Const);
    i.k = std::move(v);
    return i;
}

Instruction load(int slot) {
    Instruction i = simple(Op::Load);
    i.a = slot;
    return i;
}

Instruction store(int slot) {
    Instruction i = simple(Op::Store);
    i.a = slot;
    return i;
}

Instruction dup() { return simple(Op::Dup); }
Instruction pop() { return simple(Op::Pop); }
Instruction swap() { return simple(Op::Swap); }
Instruction add() { return simple(Op::Add); }
Instruction sub() { return simple(Op::Sub); }
Instruction mul() { return simple(Op::Mul); }
Instruction div() { return simple(Op::Div); }
Instruction rem() { return simple(Op::Rem); }
Instruction neg() { return simple(Op::Neg); }

Instruction cmp(Op cmp_op) { return simple(cmp_op); }

Instruction conv(Kind target) {
    Instruction i = simple(Op::Conv);
    i.a = static_cast<int>(target);
    return i;
}

Instruction concat() { return simple(Op::Concat); }

Instruction go(int target) {
    Instruction i = simple(Op::Goto);
    i.a = target;
    return i;
}

Instruction if_true(int target) {
    Instruction i = simple(Op::IfTrue);
    i.a = target;
    return i;
}

Instruction if_false(int target) {
    Instruction i = simple(Op::IfFalse);
    i.a = target;
    return i;
}

Instruction new_(std::string owner) {
    Instruction i = simple(Op::New);
    i.owner = std::move(owner);
    return i;
}

Instruction get_field(std::string owner, std::string member, const TypeDesc& type) {
    return member_op(Op::GetField, std::move(owner), std::move(member), type.descriptor());
}

Instruction put_field(std::string owner, std::string member, const TypeDesc& type) {
    return member_op(Op::PutField, std::move(owner), std::move(member), type.descriptor());
}

Instruction get_static(std::string owner, std::string member, const TypeDesc& type) {
    return member_op(Op::GetStatic, std::move(owner), std::move(member), type.descriptor());
}

Instruction put_static(std::string owner, std::string member, const TypeDesc& type) {
    return member_op(Op::PutStatic, std::move(owner), std::move(member), type.descriptor());
}

Instruction invoke_virtual(std::string owner, std::string member, const MethodSig& sig) {
    return member_op(Op::InvokeVirtual, std::move(owner), std::move(member), sig.descriptor());
}

Instruction invoke_interface(std::string owner, std::string member, const MethodSig& sig) {
    return member_op(Op::InvokeInterface, std::move(owner), std::move(member), sig.descriptor());
}

Instruction invoke_static(std::string owner, std::string member, const MethodSig& sig) {
    return member_op(Op::InvokeStatic, std::move(owner), std::move(member), sig.descriptor());
}

Instruction invoke_special(std::string owner, std::string member, const MethodSig& sig) {
    return member_op(Op::InvokeSpecial, std::move(owner), std::move(member), sig.descriptor());
}

Instruction ret() { return simple(Op::Return); }
Instruction ret_value() { return simple(Op::ReturnValue); }
Instruction throw_() { return simple(Op::Throw); }

Instruction new_array(const TypeDesc& elem) {
    Instruction i = simple(Op::NewArray);
    i.desc = elem.descriptor();
    return i;
}

Instruction aload() { return simple(Op::ALoad); }
Instruction astore() { return simple(Op::AStore); }
Instruction alen() { return simple(Op::ALen); }

}  // namespace ins

}  // namespace rafda::model
