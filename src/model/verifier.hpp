// Structural verifier for class pools.
//
// Plays the role of the JVM bytecode verifier: the transformation pipeline
// is only allowed to assume properties of code "that has already been
// verified by a standard compiler" (paper, Sec 2.1), and its *output* must
// verify too — every generated pool is re-verified in tests.
//
// Checks performed:
//   - hierarchy: superclasses/interfaces exist, correct kind, no cycles;
//   - interfaces declare only public abstract instance methods, no fields;
//   - member uniqueness: field names and (method name, descriptor) pairs;
//   - symbolic references resolve: field/method/new operands name existing
//     classes and members with matching descriptors and staticness;
//   - `new` targets are instantiable (non-interface, no unimplemented
//     abstract methods);
//   - code sanity: branch targets in range, slots < max_locals, and a
//     stack-depth dataflow pass proving operand counts are consistent on
//     every path and never underflow.
#pragma once

#include <string>
#include <vector>

#include "model/classpool.hpp"

namespace rafda::support {
class ThreadPool;
}

namespace rafda::model {

/// Verifies the whole pool; throws VerifyError naming the first problem.
/// With a thread pool, classes are checked concurrently (every check is a
/// pure read of the pool) and the problem list is merged in class name
/// order, so the reported problems — including which one the thrown
/// VerifyError names — are identical to the serial run.
void verify_pool(const ClassPool& pool, support::ThreadPool* threads = nullptr);

/// Like verify_pool but collects all problems instead of throwing.
std::vector<std::string> verify_pool_collect(const ClassPool& pool,
                                             support::ThreadPool* threads = nullptr);

}  // namespace rafda::model
