#include "model/builder.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace rafda::model {

CodeBuilder& CodeBuilder::op(Instruction ins) {
    if (ins.op == Op::Load || ins.op == Op::Store)
        max_slot_ = std::max(max_slot_, ins.a);
    instrs_.push_back(std::move(ins));
    return *this;
}

Label CodeBuilder::new_label() {
    Label l{static_cast<int>(label_pc_.size())};
    label_pc_.push_back(-1);
    return l;
}

CodeBuilder& CodeBuilder::bind(Label label) {
    if (label.id < 0 || label.id >= static_cast<int>(label_pc_.size()))
        throw VerifyError("bind of unknown label");
    if (label_pc_[label.id] != -1) throw VerifyError("label bound twice");
    label_pc_[label.id] = static_cast<int>(instrs_.size());
    return *this;
}

CodeBuilder& CodeBuilder::branch(Op op, Label label) {
    Instruction i;
    i.op = op;
    // Store the label id; finish() rewrites it into a pc.  Encoded negative
    // (offset by 1) so an unresolved label can never alias a valid pc.
    i.a = -(label.id + 1);
    instrs_.push_back(i);
    return *this;
}

CodeBuilder& CodeBuilder::go(Label label) { return branch(Op::Goto, label); }
CodeBuilder& CodeBuilder::if_true(Label label) { return branch(Op::IfTrue, label); }
CodeBuilder& CodeBuilder::if_false(Label label) { return branch(Op::IfFalse, label); }

CodeBuilder& CodeBuilder::handler(Label from, Label to, Label target,
                                  std::string class_name) {
    handlers_.push_back(PendingHandler{from, to, target, std::move(class_name)});
    return *this;
}

Code CodeBuilder::finish(int min_locals) {
    auto resolve = [this](Label l) {
        if (l.id < 0 || l.id >= static_cast<int>(label_pc_.size()) || label_pc_[l.id] < 0)
            throw VerifyError("unbound label in code builder");
        return label_pc_[l.id];
    };

    Code code;
    code.instrs = std::move(instrs_);
    for (Instruction& i : code.instrs) {
        if (is_branch(i.op)) {
            int label_id = -i.a - 1;
            if (label_id < 0) throw VerifyError("branch with non-label target in builder");
            i.a = resolve(Label{label_id});
        }
    }
    for (const PendingHandler& h : handlers_) {
        code.handlers.push_back(
            Handler{resolve(h.from), resolve(h.to), resolve(h.target), h.class_name});
    }
    code.max_locals = std::max(min_locals, max_slot_ + 1);
    return code;
}

ClassBuilder::ClassBuilder(std::string name) { cf_.name = std::move(name); }

ClassBuilder& ClassBuilder::extends(std::string super_name) {
    cf_.super_name = std::move(super_name);
    return *this;
}

ClassBuilder& ClassBuilder::implements(std::string interface_name) {
    cf_.interfaces.push_back(std::move(interface_name));
    return *this;
}

ClassBuilder& ClassBuilder::interface_() {
    cf_.is_interface = true;
    return *this;
}

ClassBuilder& ClassBuilder::special() {
    cf_.is_special = true;
    return *this;
}

ClassBuilder& ClassBuilder::field(std::string name, TypeDesc type, Visibility vis,
                                  bool is_final) {
    cf_.fields.push_back(Field{std::move(name), std::move(type), vis, false, is_final});
    return *this;
}

ClassBuilder& ClassBuilder::static_field(std::string name, TypeDesc type, Visibility vis,
                                         bool is_final) {
    cf_.fields.push_back(Field{std::move(name), std::move(type), vis, true, is_final});
    return *this;
}

ClassBuilder& ClassBuilder::method(Method m) {
    cf_.methods.push_back(std::move(m));
    return *this;
}

ClassBuilder& ClassBuilder::method(std::string name, MethodSig sig, CodeBuilder body,
                                   Visibility vis) {
    Method m;
    m.name = std::move(name);
    m.sig = std::move(sig);
    m.vis = vis;
    m.code = body.finish(static_cast<int>(m.sig.params().size()) + 1);
    return method(std::move(m));
}

ClassBuilder& ClassBuilder::static_method(std::string name, MethodSig sig,
                                          CodeBuilder body, Visibility vis) {
    Method m;
    m.name = std::move(name);
    m.sig = std::move(sig);
    m.vis = vis;
    m.is_static = true;
    m.code = body.finish(static_cast<int>(m.sig.params().size()));
    return method(std::move(m));
}

ClassBuilder& ClassBuilder::abstract_method(std::string name, MethodSig sig) {
    Method m;
    m.name = std::move(name);
    m.sig = std::move(sig);
    m.is_abstract = true;
    return method(std::move(m));
}

ClassBuilder& ClassBuilder::native_method(std::string name, MethodSig sig, bool is_static) {
    Method m;
    m.name = std::move(name);
    m.sig = std::move(sig);
    m.is_native = true;
    m.is_static = is_static;
    return method(std::move(m));
}

ClassFile ClassBuilder::build() { return std::move(cf_); }

}  // namespace rafda::model
