#include "model/type.hpp"

#include "support/error.hpp"

namespace rafda::model {

std::string_view kind_name(Kind k) {
    switch (k) {
        case Kind::Void: return "void";
        case Kind::Bool: return "bool";
        case Kind::Int: return "int";
        case Kind::Long: return "long";
        case Kind::Double: return "double";
        case Kind::Str: return "string";
        case Kind::Ref: return "ref";
        case Kind::Arr: return "array";
    }
    return "?";
}

TypeDesc::TypeDesc(Kind kind) : kind_(kind) {
    if (kind == Kind::Ref) throw ParseError("reference type requires a class name", 0);
}

TypeDesc TypeDesc::ref(std::string class_name) {
    TypeDesc t;
    t.kind_ = Kind::Ref;
    t.class_name_ = std::move(class_name);
    return t;
}

TypeDesc TypeDesc::array(const TypeDesc& elem) {
    if (elem.is_void()) throw ParseError("array of void", 0);
    TypeDesc t;
    t.kind_ = Kind::Arr;
    t.class_name_ = elem.descriptor();
    return t;
}

TypeDesc TypeDesc::element() const {
    if (kind_ != Kind::Arr) throw VerifyError("element() on non-array type");
    return parse(class_name_);
}

const TypeDesc& TypeDesc::void_() {
    static const TypeDesc t{Kind::Void};
    return t;
}
const TypeDesc& TypeDesc::bool_() {
    static const TypeDesc t{Kind::Bool};
    return t;
}
const TypeDesc& TypeDesc::int_() {
    static const TypeDesc t{Kind::Int};
    return t;
}
const TypeDesc& TypeDesc::long_() {
    static const TypeDesc t{Kind::Long};
    return t;
}
const TypeDesc& TypeDesc::double_() {
    static const TypeDesc t{Kind::Double};
    return t;
}
const TypeDesc& TypeDesc::str() {
    static const TypeDesc t{Kind::Str};
    return t;
}

const std::string& TypeDesc::class_name() const {
    if (kind_ != Kind::Ref) throw VerifyError("class_name() on non-reference type");
    return class_name_;
}

std::string TypeDesc::descriptor() const {
    switch (kind_) {
        case Kind::Void: return "V";
        case Kind::Bool: return "Z";
        case Kind::Int: return "I";
        case Kind::Long: return "J";
        case Kind::Double: return "D";
        case Kind::Str: return "S";
        case Kind::Ref: return "L" + class_name_ + ";";
        case Kind::Arr: return "[" + class_name_;
    }
    return "?";
}

namespace {

TypeDesc parse_one(std::string_view desc, std::size_t& pos) {
    if (pos >= desc.size()) throw ParseError("empty type descriptor", 0);
    char c = desc[pos++];
    switch (c) {
        case 'V': return TypeDesc::void_();
        case 'Z': return TypeDesc::bool_();
        case 'I': return TypeDesc::int_();
        case 'J': return TypeDesc::long_();
        case 'D': return TypeDesc::double_();
        case 'S': return TypeDesc::str();
        case '[': {
            TypeDesc elem = parse_one(desc, pos);
            return TypeDesc::array(elem);
        }
        case 'L': {
            std::size_t semi = desc.find(';', pos);
            if (semi == std::string_view::npos)
                throw ParseError("unterminated class descriptor: " + std::string(desc), 0);
            TypeDesc t = TypeDesc::ref(std::string(desc.substr(pos, semi - pos)));
            pos = semi + 1;
            return t;
        }
        default:
            throw ParseError("bad type descriptor char '" + std::string(1, c) + "' in " +
                                 std::string(desc),
                             0);
    }
}

}  // namespace

TypeDesc TypeDesc::parse(std::string_view desc) {
    std::size_t pos = 0;
    TypeDesc t = parse_one(desc, pos);
    if (pos != desc.size())
        throw ParseError("trailing characters in type descriptor: " + std::string(desc), 0);
    return t;
}

std::string MethodSig::descriptor() const {
    std::string out = "(";
    for (const TypeDesc& p : params_) out += p.descriptor();
    out += ")";
    out += ret_.descriptor();
    return out;
}

MethodSig MethodSig::parse(std::string_view desc) {
    if (desc.empty() || desc[0] != '(')
        throw ParseError("method descriptor must start with '(': " + std::string(desc), 0);
    std::size_t pos = 1;
    std::vector<TypeDesc> params;
    while (pos < desc.size() && desc[pos] != ')') {
        params.push_back(parse_one(desc, pos));
        if (params.back().is_void())
            throw ParseError("void parameter in method descriptor: " + std::string(desc), 0);
    }
    if (pos >= desc.size())
        throw ParseError("unterminated parameter list: " + std::string(desc), 0);
    ++pos;  // skip ')'
    TypeDesc ret = parse_one(desc, pos);
    if (pos != desc.size())
        throw ParseError("trailing characters in method descriptor: " + std::string(desc), 0);
    return MethodSig(std::move(params), std::move(ret));
}

}  // namespace rafda::model
