// Class files of the RIR class model: fields, methods, code.
//
// A ClassFile is the unit the paper's transformations consume and produce.
// Flags mirror the properties Section 2.4 of the paper cares about:
//   - `is_native` on methods (native methods block transformation),
//   - `is_special` on classes (JVM-special classes such as Throwable
//     subtypes are never transformed),
//   - `is_interface` (user-defined interfaces are handled like classes with
//     no state).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/instr.hpp"
#include "model/type.hpp"

namespace rafda::model {

enum class Visibility : std::uint8_t { Public, Protected, Private };

std::string_view visibility_name(Visibility v);

/// An instance or static field.
struct Field {
    std::string name;
    TypeDesc type;
    Visibility vis = Visibility::Public;
    bool is_static = false;
    bool is_final = false;
};

/// A try/catch region: instructions in [start, end) are covered; control
/// transfers to `target` with the thrown object on the stack when an object
/// of class `class_name` (or a subtype) is thrown.
struct Handler {
    int start = 0;
    int end = 0;
    int target = 0;
    std::string class_name;
};

/// A method body.
struct Code {
    int max_locals = 0;
    std::vector<Instruction> instrs;
    std::vector<Handler> handlers;

    bool empty() const noexcept { return instrs.empty(); }
};

/// A method.  Constructors are named "<init>", the static initialiser
/// "<clinit>"; both conventions follow the JVM so transformation rules read
/// like the paper.
struct Method {
    std::string name;
    MethodSig sig;
    Visibility vis = Visibility::Public;
    bool is_static = false;
    bool is_native = false;
    bool is_abstract = false;
    Code code;

    std::string descriptor() const { return sig.descriptor(); }
    bool is_ctor() const { return name == "<init>"; }
    bool is_clinit() const { return name == "<clinit>"; }
    /// Locals occupied by the receiver (if any) plus parameters.
    int param_slots() const {
        return static_cast<int>(sig.params().size()) + (is_static ? 0 : 1);
    }
};

/// One class or interface.
struct ClassFile {
    std::string name;
    /// Superclass name; empty for root classes (and all interfaces).
    std::string super_name;
    std::vector<std::string> interfaces;
    bool is_interface = false;
    /// JVM-special semantics (e.g. throwable); never transformed (Sec 2.4).
    bool is_special = false;

    std::vector<Field> fields;
    std::vector<Method> methods;

    /// First field with `name`, declared in *this* class only.
    const Field* find_field(std::string_view field_name) const;
    Field* find_field(std::string_view field_name);

    /// Method with `name` and descriptor, declared in *this* class only.
    const Method* find_method(std::string_view method_name, std::string_view desc) const;
    Method* find_method(std::string_view method_name, std::string_view desc);

    /// All methods named `name` declared in this class.
    std::vector<const Method*> methods_named(std::string_view method_name) const;

    bool has_clinit() const { return find_method("<clinit>", "()V") != nullptr; }
    /// True if any declared method is native.
    bool has_native_method() const;

    /// Class names this class references: super, interfaces, field types,
    /// method signatures, and symbolic operands inside code.  Sorted, unique.
    std::vector<std::string> referenced_classes() const;

    /// Cached variant for classes owned by a ClassPool: the result is
    /// memoized against the pool's generation counter, so repeated graph
    /// walks over an unmutated pool rebuild nothing.  The caller passes
    /// `pool.generation()`; any mutation path bumps it (see classpool.hpp),
    /// which invalidates the cache on the next call.  Not safe to call
    /// concurrently on the *same* ClassFile while the cache is cold;
    /// distinct ClassFiles are independent.
    const std::vector<std::string>& referenced_classes_cached(
        std::uint64_t pool_generation) const;

private:
    /// Memoized referenced_classes() keyed on a pool generation.  Copies
    /// and moves reset the cache: a ClassFile landing in another pool must
    /// not carry a stamp that could collide with the new pool's counter.
    struct RefsCache {
        std::vector<std::string> refs;
        std::uint64_t generation = 0;  // 0 = never filled (pools start at 1)

        RefsCache() = default;
        RefsCache(const RefsCache&) noexcept {}
        RefsCache& operator=(const RefsCache&) noexcept {
            refs.clear();
            generation = 0;
            return *this;
        }
        RefsCache(RefsCache&&) noexcept {}
        RefsCache& operator=(RefsCache&&) noexcept {
            refs.clear();
            generation = 0;
            return *this;
        }
    };
    mutable RefsCache refs_cache_;
};

}  // namespace rafda::model
