// Binary serialisation of class pools ("RIRB" — the .class-file analog).
//
// The paper's deployment story assumes transformed classfiles can be
// shipped to participating nodes ("It is assumed that factory classes are
// available locally on all participating nodes", Sec 2.3).  RIRB is that
// container: a compact, versioned binary encoding of a whole pool, so a
// program can be transformed once and distributed as an artefact.
//
// save/load round-trip exactly; load rejects bad magic, unsupported
// versions and truncated input with CodecError.
#pragma once

#include "model/classpool.hpp"
#include "support/bytes.hpp"

namespace rafda::model {

/// Serialises every class in the pool (name order).
Bytes save_pool(const ClassPool& pool);

/// Deserialises a pool; throws CodecError on malformed input.
ClassPool load_pool(const Bytes& data);

}  // namespace rafda::model
