// Fluent builders for RIR classes and method bodies.
//
// The transformation pipeline, the wrapper baseline and the corpus
// generator all *generate* code; these builders keep that generation
// readable and get structural details (branch fixups, max_locals) right by
// construction.
#pragma once

#include <string>
#include <vector>

#include "model/classfile.hpp"

namespace rafda::model {

/// A forward-referencable branch target.
struct Label {
    int id = -1;
};

/// Builds one method body.  Slot indices follow the JVM convention: for
/// instance methods slot 0 is `this`, parameters follow.
class CodeBuilder {
public:
    CodeBuilder& op(Instruction ins);

    CodeBuilder& const_null() { return op(ins::const_null()); }
    CodeBuilder& const_bool(bool v) { return op(ins::const_bool(v)); }
    CodeBuilder& const_int(std::int32_t v) { return op(ins::const_int(v)); }
    CodeBuilder& const_long(std::int64_t v) { return op(ins::const_long(v)); }
    CodeBuilder& const_double(double v) { return op(ins::const_double(v)); }
    CodeBuilder& const_str(std::string v) { return op(ins::const_str(std::move(v))); }
    CodeBuilder& load(int slot) { return op(ins::load(slot)); }
    CodeBuilder& store(int slot) { return op(ins::store(slot)); }
    CodeBuilder& dup() { return op(ins::dup()); }
    CodeBuilder& pop() { return op(ins::pop()); }
    CodeBuilder& swap() { return op(ins::swap()); }
    CodeBuilder& add() { return op(ins::add()); }
    CodeBuilder& sub() { return op(ins::sub()); }
    CodeBuilder& mul() { return op(ins::mul()); }
    CodeBuilder& div() { return op(ins::div()); }
    CodeBuilder& rem() { return op(ins::rem()); }
    CodeBuilder& neg() { return op(ins::neg()); }
    CodeBuilder& cmp(Op cmp_op) { return op(ins::cmp(cmp_op)); }
    CodeBuilder& conv(Kind target) { return op(ins::conv(target)); }
    CodeBuilder& concat() { return op(ins::concat()); }
    CodeBuilder& new_(std::string owner) { return op(ins::new_(std::move(owner))); }
    CodeBuilder& get_field(std::string owner, std::string member, const TypeDesc& t) {
        return op(ins::get_field(std::move(owner), std::move(member), t));
    }
    CodeBuilder& put_field(std::string owner, std::string member, const TypeDesc& t) {
        return op(ins::put_field(std::move(owner), std::move(member), t));
    }
    CodeBuilder& get_static(std::string owner, std::string member, const TypeDesc& t) {
        return op(ins::get_static(std::move(owner), std::move(member), t));
    }
    CodeBuilder& put_static(std::string owner, std::string member, const TypeDesc& t) {
        return op(ins::put_static(std::move(owner), std::move(member), t));
    }
    CodeBuilder& invoke_virtual(std::string owner, std::string member, const MethodSig& sig) {
        return op(ins::invoke_virtual(std::move(owner), std::move(member), sig));
    }
    CodeBuilder& invoke_interface(std::string owner, std::string member, const MethodSig& sig) {
        return op(ins::invoke_interface(std::move(owner), std::move(member), sig));
    }
    CodeBuilder& invoke_static(std::string owner, std::string member, const MethodSig& sig) {
        return op(ins::invoke_static(std::move(owner), std::move(member), sig));
    }
    CodeBuilder& invoke_special(std::string owner, std::string member, const MethodSig& sig) {
        return op(ins::invoke_special(std::move(owner), std::move(member), sig));
    }
    CodeBuilder& ret() { return op(ins::ret()); }
    CodeBuilder& ret_value() { return op(ins::ret_value()); }
    CodeBuilder& throw_() { return op(ins::throw_()); }
    CodeBuilder& new_array(const TypeDesc& elem) { return op(ins::new_array(elem)); }
    CodeBuilder& aload() { return op(ins::aload()); }
    CodeBuilder& astore() { return op(ins::astore()); }
    CodeBuilder& alen() { return op(ins::alen()); }

    /// Creates a fresh, unbound label.
    Label new_label();
    /// Binds `label` to the next instruction index.
    CodeBuilder& bind(Label label);
    CodeBuilder& go(Label label);
    CodeBuilder& if_true(Label label);
    CodeBuilder& if_false(Label label);

    /// Registers a try/catch over [from, to) labels.
    CodeBuilder& handler(Label from, Label to, Label target, std::string class_name);

    /// Finalises: resolves labels, computes max_locals (>= min_locals).
    /// Throws VerifyError on unbound labels.
    Code finish(int min_locals);

private:
    CodeBuilder& branch(Op op, Label label);

    struct PendingHandler {
        Label from, to, target;
        std::string class_name;
    };

    std::vector<Instruction> instrs_;
    std::vector<int> label_pc_;  // -1 while unbound
    std::vector<PendingHandler> handlers_;
    int max_slot_ = -1;
};

/// Builds one class file.
class ClassBuilder {
public:
    explicit ClassBuilder(std::string name);

    ClassBuilder& extends(std::string super_name);
    ClassBuilder& implements(std::string interface_name);
    ClassBuilder& interface_();
    ClassBuilder& special();

    ClassBuilder& field(std::string name, TypeDesc type,
                        Visibility vis = Visibility::Public, bool is_final = false);
    ClassBuilder& static_field(std::string name, TypeDesc type,
                               Visibility vis = Visibility::Public, bool is_final = false);

    /// Adds a method with a completed body.
    ClassBuilder& method(Method m);
    /// Convenience: non-static public method from a CodeBuilder.
    ClassBuilder& method(std::string name, MethodSig sig, CodeBuilder body,
                         Visibility vis = Visibility::Public);
    ClassBuilder& static_method(std::string name, MethodSig sig, CodeBuilder body,
                                Visibility vis = Visibility::Public);
    ClassBuilder& abstract_method(std::string name, MethodSig sig);
    ClassBuilder& native_method(std::string name, MethodSig sig, bool is_static = false);

    ClassFile build();

private:
    ClassFile cf_;
};

}  // namespace rafda::model
