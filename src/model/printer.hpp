// RIR printer — renders class files back to assembler syntax.
//
// print/assemble round-trip structurally: assemble(print(cf)) produces an
// equivalent class file.  The printer is also how examples show the user
// what the transformation pipeline generated (the paper's Figures 3-5).
#pragma once

#include <string>

#include "model/classfile.hpp"
#include "model/classpool.hpp"

namespace rafda::model {

/// Renders one class in assembler syntax.
std::string print_class(const ClassFile& cf);

/// Renders every class in the pool, in name order.
std::string print_pool(const ClassPool& pool);

/// Renders a single instruction (no label resolution; branch targets are
/// printed as raw pcs).  Used in diagnostics.
std::string print_instruction(const Instruction& ins);

}  // namespace rafda::model
