#include "model/verifier.hpp"

#include <iterator>
#include <optional>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace rafda::model {

namespace {

class Verifier {
public:
    explicit Verifier(const ClassPool& pool) : pool_(pool) {}

    std::vector<std::string> run() {
        for (const ClassFile* cf : pool_.all()) check_class(*cf);
        return std::move(problems_);
    }

    /// Checks a single class; used by the parallel mode, which verifies
    /// every class with its own Verifier and merges the problem lists.
    std::vector<std::string> run_one(const ClassFile& cf) {
        check_class(cf);
        return std::move(problems_);
    }

private:
    void problem(const std::string& where, const std::string& what) {
        problems_.push_back(where + ": " + what);
    }

    void check_class(const ClassFile& cf) {
        if (cf.name.empty()) {
            problem("<anonymous>", "class with empty name");
            return;
        }
        check_hierarchy(cf);
        check_members(cf);
        for (const Method& m : cf.methods) {
            if (!m.is_native && !m.is_abstract) check_code(cf, m);
            if (cf.is_interface) {
                if (!m.is_abstract)
                    problem(cf.name + "." + m.name, "interface method must be abstract");
                if (m.vis != Visibility::Public)
                    problem(cf.name + "." + m.name, "interface method must be public");
                if (m.is_static)
                    problem(cf.name + "." + m.name, "interface method cannot be static");
            }
        }
        if (cf.is_interface && !cf.fields.empty())
            problem(cf.name, "interfaces cannot declare fields");
    }

    void check_hierarchy(const ClassFile& cf) {
        if (!cf.super_name.empty()) {
            const ClassFile* super = pool_.find(cf.super_name);
            if (!super) problem(cf.name, "unknown superclass " + cf.super_name);
            else if (super->is_interface)
                problem(cf.name, "superclass " + cf.super_name + " is an interface");
        }
        for (const std::string& i : cf.interfaces) {
            const ClassFile* icf = pool_.find(i);
            if (!icf) problem(cf.name, "unknown interface " + i);
            else if (!icf->is_interface)
                problem(cf.name, "implements non-interface " + i);
        }
        // Cycle check along the superclass chain and interface graph.
        std::set<std::string> seen;
        std::vector<std::string> work{cf.name};
        bool first = true;
        while (!work.empty()) {
            std::string cur = std::move(work.back());
            work.pop_back();
            if (!first && cur == cf.name) {
                problem(cf.name, "inheritance cycle");
                return;
            }
            first = false;
            if (!seen.insert(cur).second) continue;
            const ClassFile* c = pool_.find(cur);
            if (!c) continue;
            if (!c->super_name.empty()) work.push_back(c->super_name);
            for (const std::string& i : c->interfaces) work.push_back(i);
        }
    }

    /// For arrays, the innermost element type; identity otherwise.
    static TypeDesc base_type(const TypeDesc& t) {
        TypeDesc base = t;
        while (base.is_array()) base = base.element();
        return base;
    }

    void check_members(const ClassFile& cf) {
        std::set<std::string> field_names;
        for (const Field& f : cf.fields) {
            if (!field_names.insert(f.name).second)
                problem(cf.name, "duplicate field " + f.name);
            if (f.type.is_void()) problem(cf.name + "." + f.name, "void field");
            TypeDesc base = base_type(f.type);
            if (base.is_ref() && !pool_.contains(base.class_name()))
                problem(cf.name + "." + f.name,
                        "field type names unknown class " + base.class_name());
        }
        std::set<std::string> method_keys;
        for (const Method& m : cf.methods) {
            if (!method_keys.insert(m.name + m.descriptor()).second)
                problem(cf.name, "duplicate method " + m.name + m.descriptor());
            check_sig_types(cf.name + "." + m.name, m.sig);
            if (m.is_ctor() && m.is_static)
                problem(cf.name + "." + m.name, "static constructor");
            if (m.is_clinit() && !m.is_static)
                problem(cf.name + "." + m.name, "non-static <clinit>");
        }
    }

    void check_sig_types(const std::string& where, const MethodSig& sig) {
        for (const TypeDesc& p : sig.params()) {
            TypeDesc base = base_type(p);
            if (base.is_ref() && !pool_.contains(base.class_name()))
                problem(where, "parameter names unknown class " + base.class_name());
        }
        TypeDesc ret_base = base_type(sig.ret());
        if (ret_base.is_ref() && !pool_.contains(ret_base.class_name()))
            problem(where, "return type names unknown class " + ret_base.class_name());
    }

    /// True if `cf` (a class) has an unimplemented abstract method anywhere
    /// in its superclass chain or interfaces.
    bool has_unimplemented_abstract(const ClassFile& cf) {
        // Collect all (name, desc) required by interfaces and abstract
        // declarations, then check each resolves to a concrete method.
        std::set<std::pair<std::string, std::string>> required;
        std::set<std::string> visited;
        std::vector<std::string> work{cf.name};
        while (!work.empty()) {
            std::string cur = std::move(work.back());
            work.pop_back();
            if (!visited.insert(cur).second) continue;
            const ClassFile* c = pool_.find(cur);
            if (!c) continue;
            for (const Method& m : c->methods)
                if (m.is_abstract) required.insert({m.name, m.descriptor()});
            if (!c->super_name.empty()) work.push_back(c->super_name);
            for (const std::string& i : c->interfaces) work.push_back(i);
        }
        for (const auto& [name, desc] : required)
            if (!pool_.resolve_virtual(cf.name, name, desc)) return true;
        return false;
    }

    void check_code(const ClassFile& cf, const Method& m) {
        const std::string where = cf.name + "." + m.name + m.descriptor();
        const Code& code = m.code;
        const int n = static_cast<int>(code.instrs.size());
        if (n == 0) {
            problem(where, "empty body");
            return;
        }
        // Terminal instruction: last instruction must not fall off the end.
        const Op last = code.instrs[n - 1].op;
        if (last != Op::Return && last != Op::ReturnValue && last != Op::Goto &&
            last != Op::Throw)
            problem(where, "control can fall off the end of the code");

        for (int pc = 0; pc < n; ++pc) {
            const Instruction& i = code.instrs[pc];
            if (is_branch(i.op) && (i.a < 0 || i.a >= n))
                problem(where, "branch target out of range at pc " + std::to_string(pc));
            if ((i.op == Op::Load || i.op == Op::Store) &&
                (i.a < 0 || i.a >= code.max_locals))
                problem(where, "slot out of range at pc " + std::to_string(pc));
            check_symbols(where, i, pc);
        }
        for (const Handler& h : code.handlers) {
            if (h.start < 0 || h.end > n || h.start >= h.end || h.target < 0 ||
                h.target >= n)
                problem(where, "handler range invalid");
            if (!pool_.contains(h.class_name))
                problem(where, "handler names unknown class " + h.class_name);
        }
        check_stack(where, m);
    }

    void check_symbols(const std::string& where, const Instruction& i, int pc) {
        auto at = [&] { return where + " at pc " + std::to_string(pc); };
        switch (i.op) {
            case Op::NewArray: {
                model::TypeDesc elem = model::TypeDesc::parse(i.desc);
                model::TypeDesc base = elem;
                while (base.is_array()) base = base.element();
                if (base.is_ref() && !pool_.contains(base.class_name()))
                    problem(at(), "array of unknown class " + base.class_name());
                if (base.is_void()) problem(at(), "array of void");
                break;
            }
            case Op::New: {
                const ClassFile* c = pool_.find(i.owner);
                if (!c) {
                    problem(at(), "new of unknown class " + i.owner);
                } else if (c->is_interface) {
                    problem(at(), "new of interface " + i.owner);
                } else if (has_unimplemented_abstract(*c)) {
                    problem(at(), "new of abstract class " + i.owner);
                }
                break;
            }
            case Op::GetField:
            case Op::PutField: {
                const ClassFile* c = pool_.find(i.owner);
                if (!c) {
                    problem(at(), "field op on unknown class " + i.owner);
                    break;
                }
                // The field may be declared on a superclass.
                bool found = false;
                for (const ClassFile* cur = c; cur;
                     cur = cur->super_name.empty() ? nullptr : pool_.find(cur->super_name)) {
                    const Field* f = cur->find_field(i.member);
                    if (f) {
                        found = true;
                        if (f->is_static) problem(at(), "instance field op on static field");
                        if (f->type.descriptor() != i.desc)
                            problem(at(), "field descriptor mismatch for " + i.member);
                        break;
                    }
                }
                if (!found) problem(at(), "no field " + i.member + " on " + i.owner);
                break;
            }
            case Op::GetStatic:
            case Op::PutStatic: {
                const ClassFile* declaring = pool_.resolve_static_field(i.owner, i.member);
                if (!declaring) {
                    problem(at(), "no static field " + i.member + " on " + i.owner);
                    break;
                }
                const Field* f = declaring->find_field(i.member);
                if (f->type.descriptor() != i.desc)
                    problem(at(), "static field descriptor mismatch for " + i.member);
                break;
            }
            case Op::InvokeStatic: {
                const Method* target = pool_.resolve_static(i.owner, i.member, i.desc);
                if (!target)
                    problem(at(), "unresolved static method " + i.owner + "." + i.member +
                                      i.desc);
                break;
            }
            case Op::InvokeSpecial: {
                const ClassFile* c = pool_.find(i.owner);
                const Method* target = c ? c->find_method(i.member, i.desc) : nullptr;
                if (!target || !target->is_ctor())
                    problem(at(), "invokespecial must name a constructor: " + i.owner + "." +
                                      i.member + i.desc);
                break;
            }
            case Op::InvokeVirtual:
            case Op::InvokeInterface: {
                const ClassFile* c = pool_.find(i.owner);
                if (!c) {
                    problem(at(), "invoke on unknown class " + i.owner);
                    break;
                }
                if (i.op == Op::InvokeInterface && !c->is_interface)
                    problem(at(), "invokeinterface on non-interface " + i.owner);
                if (i.op == Op::InvokeVirtual && c->is_interface)
                    problem(at(), "invokevirtual on interface " + i.owner);
                if (!find_declared(*c, i.member, i.desc))
                    problem(at(), "no method " + i.member + i.desc + " visible on " + i.owner);
                break;
            }
            default:
                break;
        }
    }

    /// Looks up a method declaration anywhere in the type graph above `cf`.
    const Method* find_declared(const ClassFile& cf, std::string_view name,
                                std::string_view desc) {
        std::set<std::string> visited;
        std::vector<const ClassFile*> work{&cf};
        while (!work.empty()) {
            const ClassFile* c = work.back();
            work.pop_back();
            if (!visited.insert(c->name).second) continue;
            if (const Method* m = c->find_method(name, desc)) return m;
            if (!c->super_name.empty())
                if (const ClassFile* s = pool_.find(c->super_name)) work.push_back(s);
            for (const std::string& i : c->interfaces)
                if (const ClassFile* icf = pool_.find(i)) work.push_back(icf);
        }
        return nullptr;
    }

    /// Net stack effect and minimum required depth of one instruction.
    std::pair<int, int> stack_effect(const Instruction& i) {
        switch (i.op) {
            case Op::Nop: return {0, 0};
            case Op::Const: return {+1, 0};
            case Op::Load: return {+1, 0};
            case Op::Store: return {-1, 1};
            case Op::Dup: return {+1, 1};
            case Op::Pop: return {-1, 1};
            case Op::Swap: return {0, 2};
            case Op::Add:
            case Op::Sub:
            case Op::Mul:
            case Op::Div:
            case Op::Rem:
            case Op::CmpEq:
            case Op::CmpNe:
            case Op::CmpLt:
            case Op::CmpLe:
            case Op::CmpGt:
            case Op::CmpGe:
            case Op::And:
            case Op::Or:
            case Op::Concat: return {-1, 2};
            case Op::Neg:
            case Op::Not:
            case Op::Conv: return {0, 1};
            case Op::Goto: return {0, 0};
            case Op::IfTrue:
            case Op::IfFalse: return {-1, 1};
            case Op::New: return {+1, 0};
            case Op::GetField: return {0, 1};
            case Op::PutField: return {-2, 2};
            case Op::GetStatic: return {+1, 0};
            case Op::PutStatic: return {-1, 1};
            case Op::InvokeVirtual:
            case Op::InvokeInterface:
            case Op::InvokeStatic:
            case Op::InvokeSpecial: {
                MethodSig sig = MethodSig::parse(i.desc);
                int pops = static_cast<int>(sig.params().size()) +
                           (i.op == Op::InvokeStatic ? 0 : 1);
                int pushes = sig.ret().is_void() ? 0 : 1;
                return {pushes - pops, pops};
            }
            case Op::Return: return {0, 0};
            case Op::ReturnValue: return {-1, 1};
            case Op::Throw: return {-1, 1};
            case Op::NewArray: return {0, 1};   // pop length, push ref
            case Op::ALoad: return {-1, 2};     // pop idx+ref, push elem
            case Op::AStore: return {-3, 3};
            case Op::ALen: return {0, 1};
        }
        return {0, 0};
    }

    void check_stack(const std::string& where, const Method& m) {
        const Code& code = m.code;
        const int n = static_cast<int>(code.instrs.size());
        std::vector<int> depth_at(n, -1);  // -1 = unvisited
        std::vector<std::pair<int, int>> work;  // (pc, depth)
        work.push_back({0, 0});
        for (const Handler& h : code.handlers)
            work.push_back({h.target, 1});  // thrown object on the stack

        while (!work.empty()) {
            auto [pc, depth] = work.back();
            work.pop_back();
            while (pc < n) {
                if (depth_at[pc] != -1) {
                    if (depth_at[pc] != depth) {
                        problem(where, "inconsistent stack depth at pc " + std::to_string(pc));
                        return;
                    }
                    break;  // already explored from here
                }
                depth_at[pc] = depth;
                const Instruction& i = code.instrs[pc];
                auto [net, need] = stack_effect(i);
                if (depth < need) {
                    problem(where,
                            "stack underflow at pc " + std::to_string(pc) + " (" +
                                std::string(op_name(i.op)) + ")");
                    return;
                }
                depth += net;
                if (i.op == Op::Return || i.op == Op::ReturnValue || i.op == Op::Throw) break;
                if (i.op == Op::Goto) {
                    pc = i.a;
                    continue;
                }
                if (i.op == Op::IfTrue || i.op == Op::IfFalse) work.push_back({i.a, depth});
                ++pc;
            }
        }
    }

    const ClassPool& pool_;
    std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> verify_pool_collect(const ClassPool& pool,
                                             support::ThreadPool* threads) {
    if (!threads || threads->thread_count() == 1) return Verifier(pool).run();
    // Per-class checks only read the pool (const resolution walks, no lazy
    // caches), so classes fan out freely; merging the per-class lists in
    // name order reproduces the serial report exactly.
    const std::vector<const ClassFile*> classes = pool.all();
    std::vector<std::vector<std::string>> per_class(classes.size());
    threads->for_each_index(classes.size(), [&](std::size_t i) {
        per_class[i] = Verifier(pool).run_one(*classes[i]);
    });
    std::vector<std::string> problems;
    for (std::vector<std::string>& p : per_class)
        problems.insert(problems.end(), std::make_move_iterator(p.begin()),
                        std::make_move_iterator(p.end()));
    return problems;
}

void verify_pool(const ClassPool& pool, support::ThreadPool* threads) {
    std::vector<std::string> problems = verify_pool_collect(pool, threads);
    if (!problems.empty()) {
        std::ostringstream os;
        os << problems.size() << " problem(s); first: " << problems.front();
        throw VerifyError(os.str());
    }
}

}  // namespace rafda::model
