// RIR assembler — parses the textual form of the class model.
//
// Grammar (line oriented; `;`-to-end-of-line comments; blank lines ignored):
//
//   [special] class NAME [extends SUPER] [implements I1, I2] {
//   interface NAME [extends I1, I2] {
//     field [public|protected|private] [final] NAME DESC
//     static field [vis] [final] NAME DESC
//     [vis] [static] method NAME (PARAMS)RET {
//       locals N                  ; optional: extra local slots
//       LABEL:
//       MNEMONIC [operands]
//       catch CLASS from L1 to L2 using L3
//     }
//     [vis] native [static] method NAME (PARAMS)RET
//     abstract method NAME (PARAMS)RET
//     ctor [vis] (PARAMS)V { ... }          ; sugar for method <init>
//     clinit { ... }                        ; sugar for static <clinit> ()V
//   }
//
// This plays the role of writing Java source + compiling it: tests and
// examples express guest programs in RIR text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/classfile.hpp"
#include "model/classpool.hpp"

namespace rafda::model {

/// Parses all classes in `text`; throws ParseError with a line number on
/// malformed input.
std::vector<ClassFile> assemble(std::string_view text);

/// Parses and adds all classes in `text` to `pool`.
void assemble_into(ClassPool& pool, std::string_view text);

}  // namespace rafda::model
