// ClassPool — the set of classes a program consists of, with the name
// resolution and layout services the interpreter and the transformation
// pipeline need.
//
// The pool owns its class files.  It is mutable: the transformation
// pipeline adds generated classes (interfaces, locals, proxies, factories)
// and rewrites existing ones; derived data (field layouts, subtype facts)
// is cached and invalidated on mutation.
//
// Every mutation path — add/remove and every handout of a mutable
// ClassFile* — routes through invalidate_caches(), which also bumps a
// monotonic generation counter.  Consumers that memoize resolution
// results (the interpreter's inline caches, notably) validate against
// generation() instead of subscribing to explicit invalidation events.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/classfile.hpp"

namespace rafda::model {

/// Layout of the instance fields of a class, superclass fields first.
struct FieldSlot {
    std::string name;
    TypeDesc type;
    std::string declaring_class;
};

struct Layout {
    std::vector<FieldSlot> slots;
    std::unordered_map<std::string, int> index_by_name;

    int index_of(std::string_view field_name) const;
    int size() const noexcept { return static_cast<int>(slots.size()); }
};

class ClassPool {
public:
    ClassPool() = default;
    ClassPool(const ClassPool&) = delete;
    ClassPool& operator=(const ClassPool&) = delete;
    ClassPool(ClassPool&&) = default;
    ClassPool& operator=(ClassPool&&) = default;

    /// Adds a class; throws VerifyError on duplicate name.
    ClassFile& add(ClassFile cf);
    /// Removes a class; throws VerifyError if absent.
    void remove(std::string_view name);

    bool contains(std::string_view name) const;
    /// Throws VerifyError if the class is absent.
    const ClassFile& get(std::string_view name) const;
    /// Mutable access invalidates the derived-data caches and bumps the
    /// generation (the caller may rewrite fields/methods/hierarchy through
    /// the returned reference; the pool must assume it will).
    ClassFile& get_mutable(std::string_view name);
    const ClassFile* find(std::string_view name) const;
    /// Like get_mutable: a non-null result invalidates and bumps.
    ClassFile* find_mutable(std::string_view name);

    std::size_t size() const noexcept { return classes_.size(); }

    /// All classes in name order (deterministic iteration).
    std::vector<const ClassFile*> all() const;
    std::vector<std::string> all_names() const;

    /// True if `sub` equals `super`, or transitively extends/implements it.
    /// Unknown names are never subtypes of anything but themselves.
    bool is_subtype(std::string_view sub, std::string_view super) const;

    /// Instance field layout of `name` (inherited fields first).
    /// Computed lazily, cached until the pool is mutated.
    const Layout& layout_of(std::string_view name) const;

    /// Static field layout of `name` (declared statics only).
    const Layout& static_layout_of(std::string_view name) const;

    /// Resolves a virtual call on dynamic class `dynamic`: walks the
    /// superclass chain for a non-abstract method `name`+`desc`.
    /// Returns nullptr if unresolved.
    const Method* resolve_virtual(std::string_view dynamic, std::string_view method_name,
                                  std::string_view desc) const;

    /// Resolves a static method: walks the superclass chain from `owner`.
    const Method* resolve_static(std::string_view owner, std::string_view method_name,
                                 std::string_view desc) const;

    /// The class on `owner`'s superclass chain (including `owner`) that
    /// declares static field `field_name`, or nullptr.
    const ClassFile* resolve_static_field(std::string_view owner,
                                          std::string_view field_name) const;

    /// Call after externally mutating a class file's fields/hierarchy.
    /// Drops the memoized layouts and bumps generation().  add/remove and
    /// the mutable accessors call this themselves.
    void invalidate_caches();

    /// Monotonic mutation counter, starting at 1 (so 0 can mean "never
    /// validated" in consumers).  Any value observed here is proof that
    /// name resolution and layouts are unchanged since the same value was
    /// last observed.
    std::uint64_t generation() const noexcept { return generation_; }

private:
    std::map<std::string, std::unique_ptr<ClassFile>, std::less<>> classes_;
    std::uint64_t generation_ = 1;
    mutable std::unordered_map<std::string, Layout> layouts_;
    mutable std::unordered_map<std::string, Layout> static_layouts_;
};

}  // namespace rafda::model
