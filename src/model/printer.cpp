#include "model/printer.hpp"

#include <map>
#include <set>
#include <sstream>

namespace rafda::model {

namespace {

void print_code(std::ostringstream& os, const Method& m) {
    // Collect branch-target pcs and give them stable labels.
    std::set<int> targets;
    for (const Instruction& i : m.code.instrs)
        if (is_branch(i.op)) targets.insert(i.a);
    for (const Handler& h : m.code.handlers) {
        targets.insert(h.start);
        targets.insert(h.end);
        targets.insert(h.target);
    }
    std::map<int, std::string> label_of;
    int n = 0;
    for (int pc : targets) label_of[pc] = "L" + std::to_string(n++);

    int extra = m.code.max_locals - m.param_slots();
    if (extra > 0) os << "    locals " << extra << "\n";

    for (int pc = 0; pc <= static_cast<int>(m.code.instrs.size()); ++pc) {
        auto lit = label_of.find(pc);
        if (lit != label_of.end()) os << "  " << lit->second << ":\n";
        if (pc == static_cast<int>(m.code.instrs.size())) break;
        const Instruction& i = m.code.instrs[pc];
        os << "    ";
        if (is_branch(i.op)) {
            os << op_name(i.op) << " " << label_of.at(i.a);
        } else {
            os << print_instruction(i);
        }
        os << "\n";
    }
    for (const Handler& h : m.code.handlers) {
        os << "    catch " << h.class_name << " from " << label_of.at(h.start) << " to "
           << label_of.at(h.end) << " using " << label_of.at(h.target) << "\n";
    }
}

void print_method(std::ostringstream& os, const Method& m) {
    os << "  ";
    if (m.vis != Visibility::Public) os << visibility_name(m.vis) << " ";
    if (m.is_native) os << "native ";
    if (m.is_abstract) os << "abstract ";
    if (m.is_static && !m.is_clinit()) os << "static ";
    if (m.is_ctor()) {
        os << "ctor " << m.descriptor();
    } else if (m.is_clinit()) {
        os << "clinit";
    } else {
        os << "method " << m.name << " " << m.descriptor();
    }
    if (m.is_native || m.is_abstract) {
        os << "\n";
        return;
    }
    os << " {\n";
    print_code(os, m);
    os << "  }\n";
}

}  // namespace

std::string print_instruction(const Instruction& i) {
    std::ostringstream os;
    os << op_name(i.op);
    switch (i.op) {
        case Op::Const:
            os << " " << const_to_string(i.k);
            break;
        case Op::Load:
        case Op::Store:
            os << " " << i.a;
            break;
        case Op::Conv:
            os << " " << TypeDesc(static_cast<Kind>(i.a)).descriptor();
            break;
        case Op::Goto:
        case Op::IfTrue:
        case Op::IfFalse:
            os << " @" << i.a;
            break;
        case Op::New:
            os << " " << i.owner;
            break;
        case Op::NewArray:
            os << " " << i.desc;
            break;
        case Op::GetField:
        case Op::PutField:
        case Op::GetStatic:
        case Op::PutStatic:
        case Op::InvokeVirtual:
        case Op::InvokeInterface:
        case Op::InvokeStatic:
        case Op::InvokeSpecial:
            os << " " << i.owner << "." << i.member << " " << i.desc;
            break;
        default:
            break;
    }
    return os.str();
}

std::string print_class(const ClassFile& cf) {
    std::ostringstream os;
    if (cf.is_special) os << "special ";
    os << (cf.is_interface ? "interface " : "class ") << cf.name;
    if (!cf.super_name.empty()) os << " extends " << cf.super_name;
    if (!cf.interfaces.empty()) {
        os << (cf.is_interface ? " extends " : " implements ");
        for (std::size_t i = 0; i < cf.interfaces.size(); ++i) {
            if (i) os << ", ";
            os << cf.interfaces[i];
        }
    }
    os << " {\n";
    for (const Field& f : cf.fields) {
        os << "  ";
        if (f.is_static) os << "static ";
        os << "field ";
        if (f.vis != Visibility::Public) os << visibility_name(f.vis) << " ";
        if (f.is_final) os << "final ";
        os << f.name << " " << f.type.descriptor() << "\n";
    }
    for (const Method& m : cf.methods) print_method(os, m);
    os << "}\n";
    return os.str();
}

std::string print_pool(const ClassPool& pool) {
    std::string out;
    for (const ClassFile* cf : pool.all()) {
        out += print_class(*cf);
        out += "\n";
    }
    return out;
}

}  // namespace rafda::model
