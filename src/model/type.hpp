// Type descriptors for the RAFDA class-model IR ("RIR").
//
// The IR plays the role Java bytecode plays in the paper: a typed,
// stack-machine program representation that the transformation pipeline
// rewrites.  Descriptors use a JVM-flavoured syntax:
//
//   V void   Z bool   I int (32-bit)   J long (64-bit)   D double
//   S string (built-in value type)     Lname; reference to class `name`
//
// Method descriptors look like `(JLY;)I` — parameters in parentheses
// followed by the return type.  Unlike the JVM we treat strings as a
// primitive value type; this keeps the transformability analysis focused on
// user classes, mirroring how the paper leaves `java.lang.String` et al. to
// the "special classes" bucket.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rafda::model {

enum class Kind : std::uint8_t { Void, Bool, Int, Long, Double, Str, Ref, Arr };

/// Returns a human-readable name ("int", "ref", ...) for diagnostics.
std::string_view kind_name(Kind k);

/// A single value type: a primitive kind or a reference to a named class.
class TypeDesc {
public:
    TypeDesc() : kind_(Kind::Void) {}
    explicit TypeDesc(Kind kind);
    /// Reference to `class_name`.
    static TypeDesc ref(std::string class_name);
    /// Array with elements of type `elem` (descriptor "[" + elem).
    /// Nested arrays are allowed ("[[I").
    static TypeDesc array(const TypeDesc& elem);

    static const TypeDesc& void_();
    static const TypeDesc& bool_();
    static const TypeDesc& int_();
    static const TypeDesc& long_();
    static const TypeDesc& double_();
    static const TypeDesc& str();

    Kind kind() const noexcept { return kind_; }
    bool is_ref() const noexcept { return kind_ == Kind::Ref; }
    bool is_array() const noexcept { return kind_ == Kind::Arr; }
    bool is_void() const noexcept { return kind_ == Kind::Void; }
    bool is_numeric() const noexcept {
        return kind_ == Kind::Int || kind_ == Kind::Long || kind_ == Kind::Double;
    }
    /// Class name; only valid for references.
    const std::string& class_name() const;

    /// Element type; only valid for arrays.
    TypeDesc element() const;

    /// Serialises to descriptor syntax, e.g. "I" or "LY;".
    std::string descriptor() const;

    /// Parses one descriptor; throws ParseError on malformed input.
    static TypeDesc parse(std::string_view desc);

    bool operator==(const TypeDesc& other) const = default;

private:
    Kind kind_;
    /// For Ref: the class name.  For Arr: the element's descriptor string
    /// (kept as a string so the type stays a simple value).
    std::string class_name_;
};

/// A method signature: parameter types and return type.
class MethodSig {
public:
    MethodSig() = default;
    MethodSig(std::vector<TypeDesc> params, TypeDesc ret)
        : params_(std::move(params)), ret_(std::move(ret)) {}

    const std::vector<TypeDesc>& params() const noexcept { return params_; }
    const TypeDesc& ret() const noexcept { return ret_; }

    /// Serialises to "(...)R" descriptor syntax.
    std::string descriptor() const;

    /// Parses "(...)R"; throws ParseError on malformed input.
    static MethodSig parse(std::string_view desc);

    bool operator==(const MethodSig& other) const = default;

private:
    std::vector<TypeDesc> params_;
    TypeDesc ret_;
};

}  // namespace rafda::model
