// Instruction set of the RIR stack machine.
//
// The set is deliberately Java-bytecode-shaped: field access and method
// invocation are *symbolic* (owner class + member name + descriptor), which
// is exactly the property the paper's transformations rely on — a rewrite
// pass can redirect `getfield X.y` to `invokeinterface X_O_Int.get_y`
// without understanding the surrounding code.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "model/type.hpp"

namespace rafda::model {

enum class Op : std::uint8_t {
    Nop,
    Const,  // push constant k
    Load,   // push local slot a
    Store,  // pop into local slot a
    Dup,
    Pop,
    Swap,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Neg,
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    And,
    Or,
    Not,
    Conv,    // numeric conversion; a = target Kind
    Concat,  // pop two values, push string concatenation
    Goto,    // a = target pc
    IfTrue,  // pop bool; branch to a if true
    IfFalse,
    New,        // owner = class name; push fresh instance
    GetField,   // owner.member : desc — pop receiver, push value
    PutField,   // pop value, pop receiver
    GetStatic,  // push static value
    PutStatic,  // pop value
    InvokeVirtual,
    InvokeInterface,
    InvokeStatic,
    InvokeSpecial,  // constructor invocation
    Return,
    ReturnValue,
    Throw,
    NewArray,  // desc = element type; pops length, pushes array ref
    ALoad,     // pops index, array ref; pushes element
    AStore,    // pops value, index, array ref
    ALen,      // pops array ref; pushes length (int)
};

std::string_view op_name(Op op);
/// Parses a mnemonic; throws ParseError (with `line`) if unknown.
Op op_from_name(std::string_view name, int line);

/// Marker for the null constant.
struct Null {
    bool operator==(const Null&) const = default;
};

/// A constant operand: null, bool, int, long, double or string.
using ConstValue =
    std::variant<Null, bool, std::int32_t, std::int64_t, double, std::string>;

/// Renders a constant in RIR assembly syntax (e.g. `5`, `5L`, `"hi"`).
std::string const_to_string(const ConstValue& k);

/// One instruction.  Unused operand fields stay empty/zero.
struct Instruction {
    Op op = Op::Nop;
    ConstValue k = Null{};  // Const
    int a = 0;              // Load/Store slot, branch target pc, Conv target kind
    std::string owner;      // New / field ops / invoke ops
    std::string member;     // field or method name
    std::string desc;       // field type descriptor or method descriptor

    bool operator==(const Instruction& other) const = default;
};

/// True for the four invoke ops.
bool is_invoke(Op op);
/// True for Goto/IfTrue/IfFalse.
bool is_branch(Op op);

// Convenience constructors, used heavily by code generators.
namespace ins {

Instruction nop();
Instruction const_null();
Instruction const_bool(bool v);
Instruction const_int(std::int32_t v);
Instruction const_long(std::int64_t v);
Instruction const_double(double v);
Instruction const_str(std::string v);
Instruction load(int slot);
Instruction store(int slot);
Instruction dup();
Instruction pop();
Instruction swap();
Instruction add();
Instruction sub();
Instruction mul();
Instruction div();
Instruction rem();
Instruction neg();
Instruction cmp(Op cmp_op);
Instruction conv(Kind target);
Instruction concat();
Instruction go(int target);
Instruction if_true(int target);
Instruction if_false(int target);
Instruction new_(std::string owner);
Instruction get_field(std::string owner, std::string member, const TypeDesc& type);
Instruction put_field(std::string owner, std::string member, const TypeDesc& type);
Instruction get_static(std::string owner, std::string member, const TypeDesc& type);
Instruction put_static(std::string owner, std::string member, const TypeDesc& type);
Instruction invoke_virtual(std::string owner, std::string member, const MethodSig& sig);
Instruction invoke_interface(std::string owner, std::string member, const MethodSig& sig);
Instruction invoke_static(std::string owner, std::string member, const MethodSig& sig);
Instruction invoke_special(std::string owner, std::string member, const MethodSig& sig);
Instruction ret();
Instruction ret_value();
Instruction throw_();
Instruction new_array(const TypeDesc& elem);
Instruction aload();
Instruction astore();
Instruction alen();

}  // namespace ins

}  // namespace rafda::model
