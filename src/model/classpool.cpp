#include "model/classpool.hpp"

#include "support/error.hpp"

namespace rafda::model {

int Layout::index_of(std::string_view field_name) const {
    auto it = index_by_name.find(std::string(field_name));
    if (it == index_by_name.end())
        throw VerifyError("no such field in layout: " + std::string(field_name));
    return it->second;
}

ClassFile& ClassPool::add(ClassFile cf) {
    if (contains(cf.name)) throw VerifyError("duplicate class: " + cf.name);
    std::string name = cf.name;
    auto owned = std::make_unique<ClassFile>(std::move(cf));
    ClassFile& ref = *owned;
    classes_.emplace(std::move(name), std::move(owned));
    invalidate_caches();
    return ref;
}

void ClassPool::remove(std::string_view name) {
    auto it = classes_.find(name);
    if (it == classes_.end()) throw VerifyError("remove of unknown class: " + std::string(name));
    classes_.erase(it);
    invalidate_caches();
}

bool ClassPool::contains(std::string_view name) const {
    return classes_.find(name) != classes_.end();
}

const ClassFile& ClassPool::get(std::string_view name) const {
    const ClassFile* cf = find(name);
    if (!cf) throw VerifyError("unknown class: " + std::string(name));
    return *cf;
}

ClassFile& ClassPool::get_mutable(std::string_view name) {
    ClassFile* cf = find_mutable(name);
    if (!cf) throw VerifyError("unknown class: " + std::string(name));
    return *cf;
}

const ClassFile* ClassPool::find(std::string_view name) const {
    auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : it->second.get();
}

ClassFile* ClassPool::find_mutable(std::string_view name) {
    auto it = classes_.find(name);
    if (it == classes_.end()) return nullptr;
    // Handing out a mutable pointer means the caller may rewrite the class
    // in place; memoized layouts (and any generation-checked cache built on
    // top of this pool) must not outlive that.
    invalidate_caches();
    return it->second.get();
}

std::vector<const ClassFile*> ClassPool::all() const {
    std::vector<const ClassFile*> out;
    out.reserve(classes_.size());
    for (const auto& [_, cf] : classes_) out.push_back(cf.get());
    return out;
}

std::vector<std::string> ClassPool::all_names() const {
    std::vector<std::string> out;
    out.reserve(classes_.size());
    for (const auto& [name, _] : classes_) out.push_back(name);
    return out;
}

bool ClassPool::is_subtype(std::string_view sub, std::string_view super) const {
    if (sub == super) return true;
    const ClassFile* cf = find(sub);
    if (!cf) return false;
    if (!cf->super_name.empty() && is_subtype(cf->super_name, super)) return true;
    for (const std::string& i : cf->interfaces)
        if (is_subtype(i, super)) return true;
    return false;
}

const Layout& ClassPool::layout_of(std::string_view name) const {
    auto it = layouts_.find(std::string(name));
    if (it != layouts_.end()) return it->second;

    const ClassFile& cf = get(name);
    Layout layout;
    if (!cf.super_name.empty()) {
        const Layout& super_layout = layout_of(cf.super_name);
        layout = super_layout;  // inherited fields first
    }
    for (const Field& f : cf.fields) {
        if (f.is_static) continue;
        if (layout.index_by_name.count(f.name))
            throw VerifyError("field shadowing is not supported: " + cf.name + "." + f.name);
        layout.index_by_name.emplace(f.name, layout.size());
        layout.slots.push_back(FieldSlot{f.name, f.type, cf.name});
    }
    return layouts_.emplace(std::string(name), std::move(layout)).first->second;
}

const Layout& ClassPool::static_layout_of(std::string_view name) const {
    auto it = static_layouts_.find(std::string(name));
    if (it != static_layouts_.end()) return it->second;

    const ClassFile& cf = get(name);
    Layout layout;
    for (const Field& f : cf.fields) {
        if (!f.is_static) continue;
        layout.index_by_name.emplace(f.name, layout.size());
        layout.slots.push_back(FieldSlot{f.name, f.type, cf.name});
    }
    return static_layouts_.emplace(std::string(name), std::move(layout)).first->second;
}

const Method* ClassPool::resolve_virtual(std::string_view dynamic,
                                         std::string_view method_name,
                                         std::string_view desc) const {
    for (const ClassFile* cf = find(dynamic); cf;
         cf = cf->super_name.empty() ? nullptr : find(cf->super_name)) {
        const Method* m = cf->find_method(method_name, desc);
        if (m && !m->is_abstract) return m;
    }
    return nullptr;
}

const Method* ClassPool::resolve_static(std::string_view owner,
                                        std::string_view method_name,
                                        std::string_view desc) const {
    for (const ClassFile* cf = find(owner); cf;
         cf = cf->super_name.empty() ? nullptr : find(cf->super_name)) {
        const Method* m = cf->find_method(method_name, desc);
        if (m && m->is_static) return m;
    }
    return nullptr;
}

const ClassFile* ClassPool::resolve_static_field(std::string_view owner,
                                                 std::string_view field_name) const {
    for (const ClassFile* cf = find(owner); cf;
         cf = cf->super_name.empty() ? nullptr : find(cf->super_name)) {
        const Field* f = cf->find_field(field_name);
        if (f && f->is_static) return cf;
    }
    return nullptr;
}

void ClassPool::invalidate_caches() {
    ++generation_;
    layouts_.clear();
    static_layouts_.clear();
}

}  // namespace rafda::model
