#include "runtime/wal.hpp"

#include <array>

#include "support/error.hpp"

namespace rafda::runtime {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

// -- Value codecs -------------------------------------------------------
// vm::Value refs are plain object ids, meaningful relative to the heap
// the WAL belongs to — replay reproduces the same ids, so they round-trip
// verbatim.

enum class VTag : std::uint8_t { Null = 0, Bool, Int, Long, Double, Str, Ref };

void put_value(ByteWriter& w, const vm::Value& v) {
    if (v.is_null()) {
        w.u8(static_cast<std::uint8_t>(VTag::Null));
    } else if (v.is_bool()) {
        w.u8(static_cast<std::uint8_t>(VTag::Bool));
        w.u8(v.as_bool() ? 1 : 0);
    } else if (v.is_int()) {
        w.u8(static_cast<std::uint8_t>(VTag::Int));
        w.i32(v.as_int());
    } else if (v.is_long()) {
        w.u8(static_cast<std::uint8_t>(VTag::Long));
        w.i64(v.as_long());
    } else if (v.is_double()) {
        w.u8(static_cast<std::uint8_t>(VTag::Double));
        w.f64(v.as_double());
    } else if (v.is_str()) {
        w.u8(static_cast<std::uint8_t>(VTag::Str));
        w.str(v.as_str());
    } else {
        w.u8(static_cast<std::uint8_t>(VTag::Ref));
        w.varu64(v.as_ref());
    }
}

vm::Value get_value(ByteReader& r) {
    switch (static_cast<VTag>(r.u8())) {
        case VTag::Null: return vm::Value::null();
        case VTag::Bool: return vm::Value::of_bool(r.u8() != 0);
        case VTag::Int: return vm::Value::of_int(r.i32());
        case VTag::Long: return vm::Value::of_long(r.i64());
        case VTag::Double: return vm::Value::of_double(r.f64());
        case VTag::Str: return vm::Value::of_str(r.str());
        case VTag::Ref: return vm::Value::of_ref(r.varu64());
    }
    throw CodecError("bad WAL value tag");
}

void put_marshalled(ByteWriter& w, const net::MarshalledValue& v) {
    w.u8(static_cast<std::uint8_t>(v.tag));
    switch (v.tag) {
        case net::ValueTag::Null: break;
        case net::ValueTag::Bool: w.u8(v.b ? 1 : 0); break;
        case net::ValueTag::Int: w.i32(v.i); break;
        case net::ValueTag::Long: w.i64(v.j); break;
        case net::ValueTag::Double: w.f64(v.d); break;
        case net::ValueTag::Str: w.str(v.s); break;
        case net::ValueTag::Ref:
            w.i32(v.ref_node);
            w.varu64(v.ref_oid);
            w.str(v.ref_class);
            break;
    }
}

net::MarshalledValue get_marshalled(ByteReader& r) {
    switch (static_cast<net::ValueTag>(r.u8())) {
        case net::ValueTag::Null: return net::MarshalledValue::null();
        case net::ValueTag::Bool: return net::MarshalledValue::of_bool(r.u8() != 0);
        case net::ValueTag::Int: return net::MarshalledValue::of_int(r.i32());
        case net::ValueTag::Long: return net::MarshalledValue::of_long(r.i64());
        case net::ValueTag::Double: return net::MarshalledValue::of_double(r.f64());
        case net::ValueTag::Str: return net::MarshalledValue::of_str(r.str());
        case net::ValueTag::Ref: {
            std::int32_t node = r.i32();
            std::uint64_t oid = r.varu64();
            return net::MarshalledValue::of_ref(node, oid, r.str());
        }
    }
    throw CodecError("bad WAL marshalled tag");
}

void put_reply(ByteWriter& w, const net::CallReply& reply) {
    w.varu64(reply.request_id);
    w.u8(reply.is_fault ? 1 : 0);
    put_marshalled(w, reply.result);
    w.str(reply.fault_class);
    w.str(reply.fault_msg);
}

net::CallReply get_reply(ByteReader& r) {
    net::CallReply reply;
    reply.request_id = r.varu64();
    reply.is_fault = r.u8() != 0;
    reply.result = get_marshalled(r);
    reply.fault_class = r.str();
    reply.fault_msg = r.str();
    return reply;
}

}  // namespace

std::uint32_t wal_crc32(const std::uint8_t* data, std::size_t len) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t k = 0; k < len; ++k)
        c = table[(c ^ data[k]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void Wal::stamp(ByteWriter& w, Kind kind, std::uint64_t t_us) {
    w.u8(static_cast<std::uint8_t>(kind));
    w.varu64(t_us);
}

void Wal::frame(const Bytes& payload) {
    Bytes& sink = in_snapshot_ ? scratch_ : log_;
    ByteWriter header;
    header.u32(static_cast<std::uint32_t>(payload.size()));
    header.u32(wal_crc32(payload.data(), payload.size()));
    sink.insert(sink.end(), header.data().begin(), header.data().end());
    sink.insert(sink.end(), payload.begin(), payload.end());
    if (!in_snapshot_) {
        ++stats_.records;
        if (records_ctr_) records_ctr_->add();
        if (bytes_ctr_) bytes_ctr_->add(8 + payload.size());
    }
}

void Wal::append_alloc(std::uint64_t t_us, const std::string& cls) {
    ByteWriter w;
    stamp(w, Kind::Alloc, t_us);
    w.str(cls);
    frame(w.data());
}

void Wal::append_alloc_array(std::uint64_t t_us, const std::string& elem_desc,
                             std::uint64_t length) {
    ByteWriter w;
    stamp(w, Kind::AllocArray, t_us);
    w.str(elem_desc);
    w.varu64(length);
    frame(w.data());
}

void Wal::append_field_put(std::uint64_t t_us, std::uint64_t oid, std::uint64_t slot,
                           const vm::Value& v) {
    ByteWriter w;
    stamp(w, Kind::FieldPut, t_us);
    w.varu64(oid);
    w.varu64(slot);
    put_value(w, v);
    frame(w.data());
}

void Wal::append_array_put(std::uint64_t t_us, std::uint64_t oid, std::uint64_t index,
                           const vm::Value& v) {
    ByteWriter w;
    stamp(w, Kind::ArrayPut, t_us);
    w.varu64(oid);
    w.varu64(index);
    put_value(w, v);
    frame(w.data());
}

void Wal::append_static_put(std::uint64_t t_us, const std::string& cls,
                            const std::string& field, const vm::Value& v) {
    ByteWriter w;
    stamp(w, Kind::StaticPut, t_us);
    w.str(cls);
    w.str(field);
    put_value(w, v);
    frame(w.data());
}

void Wal::append_class_init(std::uint64_t t_us, const std::string& cls) {
    ByteWriter w;
    stamp(w, Kind::ClassInit, t_us);
    w.str(cls);
    frame(w.data());
}

void Wal::append_singleton(std::uint64_t t_us, const std::string& cls,
                           std::uint64_t oid) {
    ByteWriter w;
    stamp(w, Kind::Singleton, t_us);
    w.str(cls);
    w.varu64(oid);
    frame(w.data());
}

void Wal::append_singleton_drop(std::uint64_t t_us, const std::string& cls) {
    ByteWriter w;
    stamp(w, Kind::SingletonDrop, t_us);
    w.str(cls);
    frame(w.data());
}

void Wal::append_proxy_import(std::uint64_t t_us, std::int32_t origin_node,
                              std::uint64_t origin_oid, const std::string& iface,
                              const std::string& protocol, std::uint64_t local_oid) {
    ByteWriter w;
    stamp(w, Kind::ProxyImport, t_us);
    w.i32(origin_node);
    w.varu64(origin_oid);
    w.str(iface);
    w.str(protocol);
    w.varu64(local_oid);
    frame(w.data());
}

void Wal::append_reply(std::uint64_t t_us, std::uint64_t request_id,
                       const net::CallReply& reply) {
    ByteWriter w;
    stamp(w, Kind::Reply, t_us);
    w.varu64(request_id);
    put_reply(w, reply);
    frame(w.data());
}

void Wal::append_transmute(std::uint64_t t_us, std::uint64_t oid,
                           const std::string& proxy_cls, std::int32_t node,
                           std::uint64_t remote_oid) {
    ByteWriter w;
    stamp(w, Kind::Transmute, t_us);
    w.varu64(oid);
    w.str(proxy_cls);
    w.i32(node);
    w.varu64(remote_oid);
    frame(w.data());
}

void Wal::append_relocate(std::uint64_t t_us, std::uint64_t oid,
                          const std::string& proxy_cls, std::int32_t node,
                          std::uint64_t remote_oid) {
    ByteWriter w;
    stamp(w, Kind::Relocate, t_us);
    w.varu64(oid);
    w.str(proxy_cls);
    w.i32(node);
    w.varu64(remote_oid);
    frame(w.data());
}

void Wal::begin_snapshot() {
    scratch_.clear();
    in_snapshot_ = true;
}

void Wal::commit_snapshot() {
    in_snapshot_ = false;
    snapshot_ = std::move(scratch_);
    scratch_ = Bytes{};
    log_.clear();
    ++stats_.snapshots;
    if (snapshots_ctr_) snapshots_ctr_->add();
    if (bytes_ctr_) bytes_ctr_->add(snapshot_.size());
}

Wal::ReplayResult Wal::replay(const Bytes& stream, WalVisitor& v) {
    ReplayResult result;
    std::size_t pos = 0;
    while (pos + 8 <= stream.size()) {
        const std::uint32_t len = static_cast<std::uint32_t>(stream[pos]) |
                                  static_cast<std::uint32_t>(stream[pos + 1]) << 8 |
                                  static_cast<std::uint32_t>(stream[pos + 2]) << 16 |
                                  static_cast<std::uint32_t>(stream[pos + 3]) << 24;
        const std::uint32_t crc = static_cast<std::uint32_t>(stream[pos + 4]) |
                                  static_cast<std::uint32_t>(stream[pos + 5]) << 8 |
                                  static_cast<std::uint32_t>(stream[pos + 6]) << 16 |
                                  static_cast<std::uint32_t>(stream[pos + 7]) << 24;
        if (pos + 8 + len > stream.size()) break;  // torn frame
        const std::uint8_t* payload = stream.data() + pos + 8;
        if (wal_crc32(payload, len) != crc) break;  // corrupt frame
        // A whole, checksummed record: decode and apply.  A decode error
        // despite a matching CRC means a framing bug, not torn state —
        // surface it.
        Bytes body(payload, payload + len);
        ByteReader r(body);
        const Kind kind = static_cast<Kind>(r.u8());
        const std::uint64_t t = r.varu64();
        switch (kind) {
            case Kind::Alloc: {
                v.on_alloc(t, r.str());
                break;
            }
            case Kind::AllocArray: {
                std::string elem = r.str();
                v.on_alloc_array(t, elem, r.varu64());
                break;
            }
            case Kind::FieldPut: {
                std::uint64_t oid = r.varu64();
                std::uint64_t slot = r.varu64();
                v.on_field_put(t, oid, slot, get_value(r));
                break;
            }
            case Kind::ArrayPut: {
                std::uint64_t oid = r.varu64();
                std::uint64_t idx = r.varu64();
                v.on_array_put(t, oid, idx, get_value(r));
                break;
            }
            case Kind::StaticPut: {
                std::string cls = r.str();
                std::string field = r.str();
                v.on_static_put(t, cls, field, get_value(r));
                break;
            }
            case Kind::ClassInit: {
                v.on_class_init(t, r.str());
                break;
            }
            case Kind::Singleton: {
                std::string cls = r.str();
                v.on_singleton(t, cls, r.varu64());
                break;
            }
            case Kind::SingletonDrop: {
                v.on_singleton_drop(t, r.str());
                break;
            }
            case Kind::ProxyImport: {
                std::int32_t node = r.i32();
                std::uint64_t oid = r.varu64();
                std::string iface = r.str();
                std::string proto = r.str();
                v.on_proxy_import(t, node, oid, iface, proto, r.varu64());
                break;
            }
            case Kind::Reply: {
                std::uint64_t req = r.varu64();
                v.on_reply(t, req, get_reply(r));
                break;
            }
            case Kind::Transmute: {
                std::uint64_t oid = r.varu64();
                std::string cls = r.str();
                std::int32_t node = r.i32();
                v.on_transmute(t, oid, cls, node, r.varu64());
                break;
            }
            case Kind::Relocate: {
                std::uint64_t oid = r.varu64();
                std::string cls = r.str();
                std::int32_t node = r.i32();
                v.on_relocate(t, oid, cls, node, r.varu64());
                break;
            }
            default:
                throw CodecError("unknown WAL record kind " +
                                 std::to_string(static_cast<int>(kind)));
        }
        pos += 8 + len;
        ++result.records;
        result.bytes = pos;
    }
    result.clean = pos == stream.size();
    return result;
}

Wal::ReplayResult Wal::recover(WalVisitor& v) {
    ReplayResult snap = replay(snapshot_, v);
    ReplayResult tail = replay(log_, v);
    ReplayResult total;
    total.records = snap.records + tail.records;
    total.bytes = snap.bytes + tail.bytes;
    total.clean = snap.clean && tail.clean;
    ++stats_.recoveries;
    stats_.replayed += total.records;
    return total;
}

}  // namespace rafda::runtime
