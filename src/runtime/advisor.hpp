// PolicyAdvisor — the "deciding" half of the paper's long-term goal ("a
// complete system for deciding and capturing distribution policy", Sec 4).
//
// The System records which node issues remote calls against each class's
// proxies (System::class_traffic).  The advisor turns that observation into
// placement recommendations: if node n makes the overwhelming share of
// remote calls to instances of A, A's instances (and future placements)
// belong on n.  Recommendations can be inspected, or applied — which
// updates the DistributionPolicy for future make() calls.  Moving existing
// objects remains the caller's choice (migrate_instance/migrate_closure),
// since only the application knows which live objects matter.
#pragma once

#include <string>
#include <vector>

#include "runtime/system.hpp"

namespace rafda::runtime {

struct Recommendation {
    std::string cls;
    net::NodeId objects_on;        // where the called objects live today
    net::NodeId recommended_home;  // the dominant caller
    std::uint64_t remote_calls;    // observed remote calls to this class
    double dominance;              // share of calls on the dominant edge

    bool operator==(const Recommendation&) const = default;
};

class PolicyAdvisor {
public:
    /// `min_calls`: ignore classes with fewer observed remote calls.
    /// `min_dominance`: only recommend when one node makes at least this
    /// share of the traffic (avoids ping-ponging on balanced load).
    explicit PolicyAdvisor(System& system, std::uint64_t min_calls = 16,
                           double min_dominance = 0.6);

    /// Produces recommendations for classes whose instance placement
    /// differs from the dominant caller.  Sorted by remote call volume,
    /// heaviest first.
    std::vector<Recommendation> advise() const;

    /// Applies `recs` to the policy (instance homes) and clears the
    /// traffic counters so the next window starts fresh.  Returns the
    /// number of policy entries changed.
    std::size_t apply(const std::vector<Recommendation>& recs);

private:
    System* system_;
    std::uint64_t min_calls_;
    double min_dominance_;
};

}  // namespace rafda::runtime
