#include "runtime/advisor.hpp"

#include <algorithm>

namespace rafda::runtime {

PolicyAdvisor::PolicyAdvisor(System& system, std::uint64_t min_calls,
                             double min_dominance)
    : system_(&system), min_calls_(min_calls), min_dominance_(min_dominance) {}

std::vector<Recommendation> PolicyAdvisor::advise() const {
    std::vector<Recommendation> out;
    for (const auto& [cls, traffic] : system_->class_traffic()) {
        std::uint64_t total = traffic.total();
        if (total < min_calls_) continue;

        std::pair<net::NodeId, net::NodeId> best_edge{0, 0};
        std::uint64_t best_calls = 0;
        for (const auto& [edge, calls] : traffic.calls) {
            if (calls > best_calls) {
                best_calls = calls;
                best_edge = edge;
            }
        }
        double dominance = static_cast<double>(best_calls) / static_cast<double>(total);
        if (dominance < min_dominance_) continue;
        // Remote traffic only exists when caller != callee node, but keep
        // the guard for robustness.
        if (best_edge.first == best_edge.second) continue;

        out.push_back(Recommendation{cls, best_edge.second, best_edge.first, total,
                                     dominance});
    }
    std::sort(out.begin(), out.end(), [](const Recommendation& a, const Recommendation& b) {
        return a.remote_calls > b.remote_calls;
    });
    return out;
}

std::size_t PolicyAdvisor::apply(const std::vector<Recommendation>& recs) {
    std::size_t changed = 0;
    for (const Recommendation& r : recs) {
        system_->policy().set_instance_home(r.cls, r.recommended_home);
        ++changed;
    }
    if (changed) system_->reset_stats();
    return changed;
}

}  // namespace rafda::runtime
