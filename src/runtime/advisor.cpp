#include "runtime/advisor.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace rafda::runtime {

PolicyAdvisor::PolicyAdvisor(System& system, std::uint64_t min_calls,
                             double min_dominance)
    : system_(&system), min_calls_(min_calls), min_dominance_(min_dominance) {}

std::vector<Recommendation> PolicyAdvisor::advise() const {
    // The advisor's only input is the metrics registry: the
    // `rpc.class_calls.<cls>.<src>.<dst>` counters the proxy dispatchers
    // maintain.  Rebuild the per-class edge map from those names.
    std::map<std::string, System::ClassTraffic> by_class;
    system_->metrics().visit_counters([&](const std::string& name, std::uint64_t value) {
        constexpr const char* kPrefix = "rpc.class_calls.";
        constexpr std::size_t kPrefixLen = 16;
        if (!value || name.compare(0, kPrefixLen, kPrefix) != 0) return;
        const std::size_t dst_dot = name.rfind('.');
        const std::size_t src_dot = name.rfind('.', dst_dot - 1);
        if (src_dot == std::string::npos || src_dot < kPrefixLen) return;
        const std::string cls = name.substr(kPrefixLen, src_dot - kPrefixLen);
        const net::NodeId src = std::stoi(name.substr(src_dot + 1, dst_dot - src_dot - 1));
        const net::NodeId dst = std::stoi(name.substr(dst_dot + 1));
        by_class[cls].calls[{src, dst}] += value;
    });

    std::vector<Recommendation> out;
    for (const auto& [cls, traffic] : by_class) {
        std::uint64_t total = traffic.total();
        if (total < min_calls_) continue;

        std::pair<net::NodeId, net::NodeId> best_edge{0, 0};
        std::uint64_t best_calls = 0;
        for (const auto& [edge, calls] : traffic.calls) {
            if (calls > best_calls) {
                best_calls = calls;
                best_edge = edge;
            }
        }
        double dominance = static_cast<double>(best_calls) / static_cast<double>(total);
        if (dominance < min_dominance_) continue;
        // Remote traffic only exists when caller != callee node, but keep
        // the guard for robustness.
        if (best_edge.first == best_edge.second) continue;

        out.push_back(Recommendation{cls, best_edge.second, best_edge.first, total,
                                     dominance});
    }
    std::sort(out.begin(), out.end(), [](const Recommendation& a, const Recommendation& b) {
        return a.remote_calls > b.remote_calls;
    });
    return out;
}

std::size_t PolicyAdvisor::apply(const std::vector<Recommendation>& recs) {
    std::size_t changed = 0;
    for (const Recommendation& r : recs) {
        system_->policy().set_instance_home(r.cls, r.recommended_home);
        ++changed;
    }
    if (changed) system_->reset_stats();
    return changed;
}

}  // namespace rafda::runtime
