#include "runtime/node.hpp"

#include "runtime/system.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "transform/naming.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {

using transform::naming::interface_to_proxy;
using transform::naming::kProxyNodeField;
using transform::naming::kProxyOidField;
using vm::Value;

Node::Node(System& system, net::NodeId id, const model::ClassPool& pool)
    : system_(&system), id_(id), interp_(pool) {
    vm::bind_prelude_natives(interp_);
}

void Node::advance_clock(std::uint64_t us) {
    if (!us) return;
    clock_us_ += us;
    clock_changed();
}

void Node::reconcile_clock(std::uint64_t t) {
    if (t <= clock_us_) return;
    clock_us_ = t;
    clock_changed();
}

void Node::set_pipeline(bool on) {
    if (!on && pipeline_horizon_us_) {
        reconcile_clock(pipeline_horizon_us_);
        pipeline_horizon_us_ = 0;
        sync_guest_time();
    }
    pipeline_ = on;
}

void Node::reconcile_reply(std::uint64_t t) {
    if (pipeline_) {
        if (t > pipeline_horizon_us_) pipeline_horizon_us_ = t;
        return;
    }
    reconcile_clock(t);
}

void Node::clock_changed() {
    if (clock_gauge_) clock_gauge_->set(static_cast<std::int64_t>(clock_us_));
    system_->network().observe(clock_us_);
}

void Node::sync_guest_time() {
    const std::int64_t now = static_cast<std::int64_t>(clock_us_);
    if (interp_.logical_time() < now)
        interp_.advance_time(now - interp_.logical_time());
}

net::MarshalledValue Node::export_value(const Value& v) {
    using net::MarshalledValue;
    if (v.is_null()) return MarshalledValue::null();
    if (v.is_bool()) return MarshalledValue::of_bool(v.as_bool());
    if (v.is_int()) return MarshalledValue::of_int(v.as_int());
    if (v.is_long()) return MarshalledValue::of_long(v.as_long());
    if (v.is_double()) return MarshalledValue::of_double(v.as_double());
    if (v.is_str()) return MarshalledValue::of_str(v.as_str());

    vm::ObjId oid = v.as_ref();
    if (interp_.heap().get(oid).is_array)
        throw RuntimeError(
            "arrays cannot cross address spaces (see DESIGN.md: the paper defers "
            "arrays; our partial solution keeps them node-local)");
    const std::string& cls = interp_.class_of(oid).name;
    // A proxy re-exports its own target, so references travel transitively.
    if (auto proxy = transform::naming::parse_proxy(cls)) {
        std::int32_t target_node = interp_.get_field(oid, kProxyNodeField).as_int();
        std::int64_t target_oid = interp_.get_field(oid, kProxyOidField).as_long();
        std::string iface = proxy->family == 'O'
                                ? transform::naming::o_int(proxy->original)
                                : transform::naming::c_int(proxy->original);
        return MarshalledValue::of_ref(target_node,
                                       static_cast<std::uint64_t>(target_oid),
                                       std::move(iface));
    }
    if (auto iface = transform::naming::local_to_interface(cls))
        return MarshalledValue::of_ref(id_, oid, *iface);
    throw RuntimeError("cannot marshal reference to non-substitutable class " + cls);
}

Value Node::import_value(const net::MarshalledValue& m, const std::string& protocol) {
    switch (m.tag) {
        case net::ValueTag::Null: return Value::null();
        case net::ValueTag::Bool: return Value::of_bool(m.b);
        case net::ValueTag::Int: return Value::of_int(m.i);
        case net::ValueTag::Long: return Value::of_long(m.j);
        case net::ValueTag::Double: return Value::of_double(m.d);
        case net::ValueTag::Str: return Value::of_str(m.s);
        case net::ValueTag::Ref: return import_ref(m.ref_node, m.ref_oid, m.ref_class, protocol);
    }
    throw RuntimeError("bad marshalled value tag");
}

Value Node::import_ref(net::NodeId node, std::uint64_t oid, const std::string& iface,
                       const std::string& protocol) {
    if (node == id_) return Value::of_ref(oid);
    auto key = std::make_tuple(node, oid, iface, protocol);
    auto it = imported_.find(key);
    if (it != imported_.end()) return Value::of_ref(it->second);

    const std::string proxy_cls = interface_to_proxy(iface, protocol);
    Value proxy = interp_.construct(proxy_cls, "()V", {});
    interp_.set_field(proxy.as_ref(), kProxyNodeField, Value::of_int(node));
    interp_.set_field(proxy.as_ref(), kProxyOidField,
                      Value::of_long(static_cast<std::int64_t>(oid)));
    imported_.emplace(std::move(key), proxy.as_ref());
    if (wal_)
        wal_->append_proxy_import(clock_us_, node, oid, iface, protocol,
                                  proxy.as_ref());
    log_debug("node", "node ", id_, " imported proxy ", proxy_cls, " for (", node, ",",
              oid, ")");
    return proxy;
}

Value Node::local_singleton(const std::string& cls) {
    auto it = singletons_.find(cls);
    if (it != singletons_.end()) return Value::of_ref(it->second);
    const std::string c_int_desc = "L" + transform::naming::c_int(cls) + ";";
    Value me = interp_.call_static(transform::naming::c_local(cls),
                                   transform::naming::kSingletonGetter, "()" + c_int_desc);
    // Record before clinit so initialisation cycles terminate (JVM-style).
    singletons_[cls] = me.as_ref();
    if (wal_) wal_->append_singleton(clock_us_, cls, me.as_ref());
    interp_.call_static(transform::naming::c_factory(cls), "clinit",
                        "(" + c_int_desc + ")V", {me});
    return me;
}

void Node::throw_remote_fault(const std::string& msg) {
    Value fault = interp_.construct(kRemoteFaultClass, "(S)V", {Value::of_str(msg)});
    interp_.throw_guest(fault);
    throw RuntimeError("unreachable");  // throw_guest never returns
}

void Node::rethrow_fault(const net::CallReply& reply) {
    const model::ClassFile* cls = interp_.pool().find(reply.fault_class);
    std::string throw_cls =
        (cls && cls->find_method("<init>", "(S)V")) ? reply.fault_class : "Throwable";
    Value fault =
        interp_.construct(throw_cls, "(S)V", {Value::of_str(reply.fault_msg)});
    interp_.throw_guest(fault);
    throw RuntimeError("unreachable");
}

void Node::apply_restarts(std::uint64_t restarts) {
    if (restarts <= restarts_seen_) return;
    restarts_seen_ = restarts;
    if (wal_) {
        recover_from_wal();
        return;
    }
    if (!reply_cache_.empty())
        log_info("node", "node ", id_, " restarted: dropping ", reply_cache_.size(),
                 " cached replies");
    reply_cache_.clear();
    reply_cache_order_.clear();
}

// ---------------------------------------------------------------------------
// Durability (DESIGN.md §20)

void Node::enable_durability(const DurabilityPolicy& policy) {
    if (wal_) return;
    durability_ = policy;
    wal_ = std::make_unique<Wal>();
    last_snapshot_us_ = clock_us_;
    interp_.set_observer(this);
}

void Node::on_alloc(vm::ObjId, const std::string& cls) {
    wal_->append_alloc(clock_us_, cls);
}

void Node::on_alloc_array(vm::ObjId, const std::string& elem_desc, std::size_t length) {
    wal_->append_alloc_array(clock_us_, elem_desc, length);
}

void Node::on_field_put(vm::ObjId id, std::size_t slot, const vm::Value& v) {
    wal_->append_field_put(clock_us_, id, slot, v);
}

void Node::on_array_put(vm::ObjId id, std::size_t index, const vm::Value& v) {
    wal_->append_array_put(clock_us_, id, index, v);
}

void Node::on_static_put(const std::string& cls, const std::string& field,
                         const vm::Value& v) {
    wal_->append_static_put(clock_us_, cls, field, v);
}

void Node::on_class_init(const std::string& cls) {
    wal_->append_class_init(clock_us_, cls);
}

void Node::cache_reply(std::uint64_t request_id, const net::CallReply& reply,
                       bool journal) {
    const RetryPolicy& rp = system_->reliability();
    while (reply_cache_order_.size() >= rp.dedup_capacity) {
        reply_cache_.erase(reply_cache_order_.front());
        reply_cache_order_.pop_front();
    }
    reply_cache_.emplace(request_id, reply);
    reply_cache_order_.push_back(request_id);
    if (journal && wal_) wal_->append_reply(clock_us_, request_id, reply);
}

void Node::maybe_snapshot() {
    if (!wal_ || !durability_.snapshot_interval_us) return;
    if (clock_us_ - last_snapshot_us_ < durability_.snapshot_interval_us) return;
    take_snapshot();
}

void Node::take_snapshot() {
    if (!wal_) return;
    const std::uint64_t t = clock_us_;
    wal_->begin_snapshot();
    // Heap, in id order: the arena allocates ids sequentially, so replaying
    // these allocations verbatim reproduces every id.  Transmuted objects
    // are checkpointed under their *current* class (a proxy), which is
    // exactly the state a restart must come back to.
    const vm::Heap& heap = interp_.heap();
    for (vm::ObjId id = 1; id <= heap.size(); ++id) {
        const vm::Object& o = heap.get(id);
        if (o.is_array) {
            wal_->append_alloc_array(t, o.elem_type.descriptor(), o.fields.size());
            for (std::size_t i = 0; i < o.fields.size(); ++i)
                wal_->append_array_put(t, id, i, o.fields[i]);
        } else {
            wal_->append_alloc(t, o.cls->name);
            for (std::size_t i = 0; i < o.fields.size(); ++i)
                wal_->append_field_put(t, id, i, o.fields[i]);
        }
    }
    interp_.visit_statics(
        [&](const std::string& cls, const std::string& field, const vm::Value& v) {
            wal_->append_static_put(t, cls, field, v);
        });
    interp_.visit_initialized(
        [&](const std::string& cls) { wal_->append_class_init(t, cls); });
    for (const auto& [cls, oid] : singletons_) wal_->append_singleton(t, cls, oid);
    for (const auto& [key, local_oid] : imported_)
        wal_->append_proxy_import(t, std::get<0>(key), std::get<1>(key),
                                  std::get<2>(key), std::get<3>(key), local_oid);
    // Reply cache in FIFO order so replay reproduces the eviction queue.
    for (std::uint64_t rid : reply_cache_order_)
        wal_->append_reply(t, rid, reply_cache_.at(rid));
    wal_->commit_snapshot();
    last_snapshot_us_ = clock_us_;
    log_debug("node", "node ", id_, " checkpoint: ", wal_->snapshot().size(),
              " bytes, log truncated");
}

/// Applies replayed records to a node being recovered.  Heap records go
/// through the interpreter's restore API (no guest code, no observer —
/// the observer is detached during recovery); bookkeeping records rebuild
/// the node-level maps directly.
struct NodeRecovery final : WalVisitor {
    explicit NodeRecovery(Node& node) : n(node) {}
    Node& n;

    void on_alloc(std::uint64_t, const std::string& cls) override {
        n.interp_.restore_object(cls);
    }
    void on_alloc_array(std::uint64_t, const std::string& elem_desc,
                        std::uint64_t length) override {
        n.interp_.restore_array(elem_desc, static_cast<std::size_t>(length));
    }
    void on_field_put(std::uint64_t, std::uint64_t oid, std::uint64_t slot,
                      const vm::Value& v) override {
        n.interp_.restore_field(static_cast<vm::ObjId>(oid),
                                static_cast<std::size_t>(slot), v);
    }
    void on_array_put(std::uint64_t, std::uint64_t oid, std::uint64_t index,
                      const vm::Value& v) override {
        n.interp_.restore_field(static_cast<vm::ObjId>(oid),
                                static_cast<std::size_t>(index), v);
    }
    void on_static_put(std::uint64_t, const std::string& cls, const std::string& field,
                       const vm::Value& v) override {
        n.interp_.restore_static(cls, field, v);
    }
    void on_class_init(std::uint64_t, const std::string& cls) override {
        n.interp_.mark_initialized(cls);
    }
    void on_singleton(std::uint64_t, const std::string& cls, std::uint64_t oid) override {
        n.singletons_[cls] = static_cast<vm::ObjId>(oid);
    }
    void on_singleton_drop(std::uint64_t, const std::string& cls) override {
        n.singletons_.erase(cls);
    }
    void on_proxy_import(std::uint64_t, std::int32_t origin_node,
                         std::uint64_t origin_oid, const std::string& iface,
                         const std::string& protocol, std::uint64_t local_oid) override {
        n.imported_[std::make_tuple(static_cast<net::NodeId>(origin_node), origin_oid,
                                    iface, protocol)] = static_cast<vm::ObjId>(local_oid);
    }
    void on_reply(std::uint64_t, std::uint64_t request_id,
                  const net::CallReply& reply) override {
        n.cache_reply(request_id, reply, /*journal=*/false);
    }
    void on_transmute(std::uint64_t, std::uint64_t oid, const std::string& proxy_cls,
                      std::int32_t node, std::uint64_t remote_oid) override {
        // Re-applies the Figure 1 substitution a live migration performed:
        // the slot becomes a proxy to the object's new home.
        n.interp_.heap().transmute(
            static_cast<vm::ObjId>(oid), n.interp_.pool().get(proxy_cls),
            {Value::of_int(node),
             Value::of_long(static_cast<std::int64_t>(remote_oid))});
    }
    void on_relocate(std::uint64_t t, std::uint64_t oid, const std::string& proxy_cls,
                     std::int32_t node, std::uint64_t remote_oid) override {
        // Migration-by-recovery moved the object while this node was down;
        // the substitution is identical to a live transmute.
        on_transmute(t, oid, proxy_cls, node, remote_oid);
    }
};

void Node::recover_from_wal() {
    // Crash semantics: everything volatile dies; the durable image is the
    // snapshot plus the log.  The observer is detached so replay does not
    // re-journal the mutations it applies.
    interp_.set_observer(nullptr);
    interp_.reset_vm_state();
    singletons_.clear();
    imported_.clear();
    reply_cache_.clear();
    reply_cache_order_.clear();
    NodeRecovery visitor(*this);
    const Wal::ReplayResult res = wal_->recover(visitor);
    interp_.set_observer(this);
    log_info("node", "node ", id_, " recovered from WAL: ", res.records,
             " records replayed (", res.bytes, " bytes), ", reply_cache_.size(),
             " cached replies restored", res.clean ? "" : "; torn tail discarded");
    system_->note_recovery(id_, res, clock_us_);
}

net::CallReply Node::handle_request(const net::CallRequest& req,
                                    const std::string& protocol) {
    const RetryPolicy& rp = system_->reliability();
    const bool dedup = rp.dedup && rp.dedup_capacity > 0;
    if (dedup) {
        auto it = reply_cache_.find(req.request_id);
        if (it != reply_cache_.end()) {
            // A retry of a request this node already executed: replay the
            // reply.  This is the arm that turns at-most-once into
            // exactly-once — the retried Create/Invoke must NOT run again
            // (it would leak an instance / duplicate a side effect).
            system_->note_dedup_hit(req.request_id, id_, clock_us_);
            return it->second;
        }
    }
    net::CallReply reply;
    reply.request_id = req.request_id;
    // An expired request must not execute: the caller has already given
    // up, and running it anyway would be a side effect nobody awaits.
    // The rejection is not cached — expiry is stable across retries.
    if (req.deadline_us && req.sim_arrival_us > req.deadline_us) {
        system_->note_server_timeout(req.request_id, id_, clock_us_);
        reply.is_fault = true;
        reply.fault_class = kRemoteFaultClass;
        reply.fault_msg = "deadline expired before dispatch on node " +
                          std::to_string(id_);
        return reply;
    }
    try {
        switch (req.kind) {
            case net::RequestKind::Invoke: {
                std::vector<Value> args;
                args.reserve(req.args.size());
                for (const net::MarshalledValue& a : req.args)
                    args.push_back(import_value(a, protocol));
                obs::ScopedSpan span;
                if (system_->tracer().enabled())
                    span = obs::ScopedSpan(system_->tracer(), "vm.execute " + req.method,
                                           id_);
                Value result = interp_.call_virtual(Value::of_ref(req.target_oid),
                                                    req.method, req.desc, std::move(args));
                reply.result = model::MethodSig::parse(req.desc).ret().is_void()
                                   ? net::MarshalledValue::null()
                                   : export_value(result);
                break;
            }
            case net::RequestKind::Create: {
                Value obj = interp_.construct(transform::naming::o_local(req.cls), "()V", {});
                reply.result = export_value(obj);
                break;
            }
            case net::RequestKind::Discover: {
                reply.result = export_value(local_singleton(req.cls));
                break;
            }
        }
    } catch (const vm::GuestException& e) {
        reply.is_fault = true;
        reply.fault_class = e.class_name();
        reply.fault_msg = e.message();
    }
    if (dedup) cache_reply(req.request_id, reply, /*journal=*/true);
    // Request boundaries are the clean checkpoint points: no guest frame
    // is live, so the heap is a consistent cut.
    maybe_snapshot();
    return reply;
}

}  // namespace rafda::runtime
