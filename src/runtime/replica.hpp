// ReplicaManager — read-mostly replication state for the adaptation
// engine (DESIGN.md §19).
//
// A replica is a node-local copy of a remote object's state, installed by
// the adaptation engine when an object's observation window shows a
// read/write ratio above policy.  The proxy dispatcher consults this
// registry on every call *only once replicas exist* (`active()` is an
// empty-map check, so the default path stays untouched): read-only
// methods are served from the local copy, anything else forwards to the
// primary and invalidates every copy (write-invalidate — see the
// consistency contract in DESIGN.md §19).
//
// The read/write classification runs on the ORIGINAL class's bytecode —
// the pre-transformation truth about what a method touches — and is
// conservative: a method is read-only iff every instruction in its body
// (and in every same-class method it invokes, to a fixpoint) only reads.
// Generated property accessors (`get_f`/`set_f`) classify by prefix
// against the original field table.  Anything unknown is a write.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"

namespace rafda::model {
class ClassPool;
}

namespace rafda::runtime {

/// One node-local copy of a primary object.
struct Replica {
    net::NodeId node = 0;    // where the copy lives
    std::uint64_t oid = 0;   // copy's object id on `node`
    bool valid = false;      // false = stale; next read refreshes
};

class ReplicaManager {
public:
    /// The original (pre-transformation) pool the read/write classifier
    /// consults; must outlive the manager.
    void configure(const model::ClassPool* original) { pool_ = original; }

    /// True once any replica exists — the single branch the hot dispatch
    /// path pays while replication is unused.
    bool active() const noexcept { return !entries_.empty(); }

    /// Conservative read-only classification of `method` on original
    /// class `cls` (see file comment).  Memoized per (cls, method).
    bool method_is_readonly(const std::string& cls, const std::string& method) const;

    /// Registers (or overwrites) reader-node `r` as a copy of the primary
    /// at (primary_node, primary_oid) of original class `cls`.
    void put(net::NodeId primary_node, std::uint64_t primary_oid,
             const std::string& cls, Replica r);

    /// The copy held by `reader`, nullptr when none.
    Replica* find(net::NodeId primary_node, std::uint64_t primary_oid,
                  net::NodeId reader);

    bool has_replicas(net::NodeId primary_node, std::uint64_t primary_oid) const {
        return entries_.count({primary_node, primary_oid}) != 0;
    }

    /// Marks every copy of the primary stale; returns the copies that
    /// *transitioned* valid -> stale (already-stale copies are skipped, so
    /// write bursts are charged one invalidation round, not one per write).
    std::vector<Replica*> invalidate(net::NodeId primary_node,
                                     std::uint64_t primary_oid);

    /// Forgets every copy of the primary (migration barrier: the primary
    /// moved, the copies' provenance is gone).
    void drop_primary(net::NodeId primary_node, std::uint64_t primary_oid);

    /// Primaries of original class `cls`, in (node, oid) order — the
    /// local-discover invalidation hook resolves "someone on the home node
    /// just got a raw reference to the singleton of cls" through this.
    std::vector<std::pair<net::NodeId, std::uint64_t>> primaries_of_class(
        const std::string& cls) const;

    /// Copies of one primary in reader order (for tests and `rafdac adapt`).
    void visit(net::NodeId primary_node, std::uint64_t primary_oid,
               const std::function<void(const Replica&)>& fn) const;

    std::size_t total_replicas() const noexcept;

private:
    bool method_is_readonly_rec(const std::string& cls, const std::string& method,
                                std::vector<std::string>& in_progress) const;

    struct Entry {
        std::string cls;
        std::map<net::NodeId, Replica> copies;
    };

    const model::ClassPool* pool_ = nullptr;
    std::map<std::pair<net::NodeId, std::uint64_t>, Entry> entries_;
    mutable std::map<std::string, bool> readonly_cache_;  // "cls.method"
};

}  // namespace rafda::runtime
